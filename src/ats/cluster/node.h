// Cluster nodes: the agent (local ingest + snapshot sender) and the
// aggregator (dedup + validate-before-mutate merge + graceful-degradation
// queries), glued by the FrameOutbox ack/retry/backoff protocol.
//
// Protocol summary
// ----------------
// Agents ingest local traffic into a KMV sketch and, on a cadence, ship
// the CUMULATIVE snapshot up the tree inside a sequence-numbered
// envelope. Cumulative snapshots are what make the protocol self-healing
// under loss: the bottom-k union is idempotent and prefix-absorbing
// (merging a stale snapshot into a newer merge changes nothing), so a
// dropped frame needs no dedicated repair -- any LATER snapshot from the
// same sender carries everything the lost one did. Retries exist to
// bound staleness, not to recover data.
//
//   * Senders keep unacked envelopes in a FrameOutbox and retransmit
//     with capped exponential backoff. Enqueueing a newer snapshot
//     CANCELS unacked older ones (superseded: the new frame absorbs
//     them), which is what keeps bytes-on-wire near one frame per
//     cadence instead of one per attempt.
//   * Aggregators ack every structurally valid data envelope -- applied,
//     duplicate, or stale -- because the ack, not the apply, is what
//     stops the retry loop. Damaged envelopes (kTruncated/kCorruptBody/
//     kBadMagic/kBadVersion) are counted per cause and NOT acked: for a
//     short read or flipped byte the sender's intact retransmission will
//     land. A structurally sound envelope whose PAYLOAD sketch frame
//     fails validation is poison -- no retransmission can fix what the
//     sender itself produced -- so it is acked (to stop the retry), but
//     counted and never merged.
//   * Application is transactional per frame (MergeManyFrames validates
//     everything before mutating), and duplicates/stale frames are
//     skipped idempotently, so the aggregator's merged sketch is ALWAYS
//     a consistent merge of some set of cumulative snapshots. Queries
//     never fail; partial failure surfaces as per-subtree staleness
//     (frames applied vs newest epoch seen, oldest missing epoch), not
//     as wrong answers.
//
// Crash/restart: a crashed agent loses its volatile state (sketch +
// outbox). On restart it replays its durable local key log (the upstream
// ingest log survives the process), reconstructs the identical sketch,
// and continues with a bumped incarnation so in-flight acks and
// duplicates from the previous life are not mistaken for the new one.
#ifndef ATS_CLUSTER_NODE_H_
#define ATS_CLUSTER_NODE_H_

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ats/cluster/envelope.h"
#include "ats/persist/checkpoint.h"
#include "ats/sketch/kmv.h"
#include "ats/util/memory.h"
#include "ats/util/serialize.h"

namespace ats::cluster {

// Retransmission schedule: first retry after `initial_backoff_ticks`,
// doubling per attempt, capped at `max_backoff_ticks`. Retries continue
// until the frame is acked or superseded by a newer snapshot.
struct RetryPolicy {
  uint64_t initial_backoff_ticks = 4;
  uint64_t max_backoff_ticks = 64;
};

// Durable checkpoint cadence for an agent (persist/checkpoint.h). When
// configured, the agent atomically rewrites `path` with its cumulative
// sketch once at least `every_epochs` keys accumulated since the last
// durable checkpoint, then truncates its replay log to the uncovered
// suffix -- which is what bounds both the log's memory and the replay
// work a restart performs. An empty path or every_epochs == 0 disables
// checkpointing (the agent falls back to the unbounded full-log replay).
struct CheckpointPolicy {
  std::string path;
  uint64_t every_epochs = 0;
  bool prefer_mmap = true;  // restore through the zero-copy open path

  bool enabled() const { return every_epochs > 0 && !path.empty(); }
};

// Per-cause rejection counters (FrameFault-keyed) plus the idempotent
// skip counters. `payload_rejected` counts poison frames: envelope
// intact, sketch payload invalid, acked but never merged.
struct RejectCounters {
  uint64_t truncated = 0;
  uint64_t bad_magic = 0;
  uint64_t bad_version = 0;
  uint64_t corrupt_body = 0;
  uint64_t payload_rejected = 0;
  uint64_t duplicate_seq = 0;
  uint64_t stale_epoch = 0;

  uint64_t envelope_rejected() const {
    return truncated + bad_magic + bad_version + corrupt_body;
  }
  void CountEnvelopeFault(FrameFault fault);
};

// Unacked snapshot envelopes awaiting acknowledgment, retried with
// capped exponential backoff; superseded entries are cancelled.
class FrameOutbox {
 public:
  FrameOutbox(uint64_t node_id, const RetryPolicy& policy)
      : node_id_(node_id), policy_(policy) {}

  // Wraps the cumulative snapshot `payload` covering stream position
  // `epoch` in a fresh-sequence envelope, cancels unacked entries with
  // older epochs (the new snapshot absorbs them), and schedules the
  // first transmission at `now`.
  void EnqueueSnapshot(uint64_t epoch, std::string_view payload,
                       uint64_t now);

  // Envelopes due for (re)transmission at `now`; each collected entry
  // schedules its next retry with doubled (capped) backoff.
  std::vector<std::string> CollectDue(uint64_t now);

  // Processes an ack; returns true if it matched an unacked entry.
  // Acks for another incarnation or an unknown seq are ignored.
  bool HandleAck(const EnvelopeView& ack);

  // Crash: volatile state is lost; the next life acks/dedups under a
  // fresh incarnation.
  void Reset(uint64_t new_incarnation);

  bool empty() const { return pending_.empty(); }
  uint64_t incarnation() const { return incarnation_; }

  // Lifetime counters (survive Reset): unique frames enqueued,
  // retransmissions beyond the first send, frames cancelled as
  // superseded, and the payload bytes those cancellations never re-sent.
  uint64_t frames_enqueued() const { return frames_enqueued_; }
  uint64_t retransmissions() const { return retransmissions_; }
  uint64_t superseded_cancelled() const { return superseded_cancelled_; }
  uint64_t superseded_bytes_saved() const { return superseded_bytes_saved_; }

  // Live heap bytes of the unacked entries (util/memory.h convention):
  // the pending map's modeled nodes plus each entry's envelope bytes.
  size_t MemoryFootprint() const {
    size_t total = TreeFootprint(pending_);
    for (const auto& [seq, p] : pending_) total += p.bytes.size();
    return total;
  }

 private:
  struct Pending {
    std::string bytes;  // full envelope, ready to retransmit verbatim
    uint64_t epoch = 0;
    uint64_t next_send = 0;
    uint64_t backoff = 0;
    bool sent_once = false;
  };

  uint64_t node_id_;
  RetryPolicy policy_;
  uint64_t incarnation_ = 0;
  uint64_t next_seq_ = 0;
  std::map<uint64_t, Pending> pending_;  // keyed by seq
  uint64_t frames_enqueued_ = 0;
  uint64_t retransmissions_ = 0;
  uint64_t superseded_cancelled_ = 0;
  uint64_t superseded_bytes_saved_ = 0;
};

// Per-subtree staleness as seen by an aggregator: how far behind this
// child's applied state is relative to the newest epoch the aggregator
// has SEEN from it (even in frames it skipped or could not apply).
struct SubtreeStaleness {
  uint64_t child_id = 0;
  uint64_t frames_applied = 0;
  uint64_t last_applied_epoch = 0;
  uint64_t newest_seen_epoch = 0;
  // First stream position not yet reflected in the merged answer.
  uint64_t oldest_missing_epoch() const { return last_applied_epoch + 1; }
  uint64_t epochs_behind() const {
    return newest_seen_epoch > last_applied_epoch
               ? newest_seen_epoch - last_applied_epoch
               : 0;
  }
};

// Outcome of AggregatorNode::Receive, including the ack (if any) the
// caller must transmit back to `ack_to`.
struct ReceiveOutcome {
  enum class Kind {
    kApplied,           // new epoch, merged transactionally
    kDuplicateSeq,      // retransmission of an already-seen envelope
    kStaleEpoch,        // valid but older than the applied snapshot
    kEnvelopeRejected,  // typed fault counted; NOT acked (retry-able)
    kPayloadRejected,   // poison sketch frame: acked, counted, not merged
    kIgnored,           // an ack or foreign-kind message
  };
  Kind kind = Kind::kIgnored;
  FrameFault fault = FrameFault::kNone;
  bool send_ack = false;
  uint64_t ack_to = 0;
  std::string ack_bytes;
};

// The local sampling node: durable key log + KMV sketch + outbox, plus
// (when configured) cadence checkpointing of the sketch so recovery
// replays a bounded log tail instead of the full history.
class AgentNode {
 public:
  AgentNode(uint64_t id, size_t k, uint64_t hash_salt,
            const RetryPolicy& policy);

  // Enables checkpoint-on-cadence + restart-from-checkpoint. Call once,
  // before any checkpoint could be due; the path must be writable.
  void ConfigureCheckpoint(CheckpointPolicy policy) {
    checkpoint_policy_ = std::move(policy);
  }

  // Appends keys to the durable log; sketches them unless crashed
  // (the log models the upstream ingest pipeline, which outlives the
  // process -- restart replays it).
  void Ingest(std::span<const uint64_t> keys);

  // Checkpoint-on-cadence: when configured, up, and at least
  // `every_epochs` keys past the last durable checkpoint, atomically
  // rewrites the checkpoint file with the cumulative sketch at the
  // current epoch and truncates the replay log to empty (the checkpoint
  // now covers every logged key). A write failure leaves the log -- and
  // therefore durability -- unchanged, and is only counted.
  void MaybeCheckpoint();

  // Serializes the cumulative snapshot into the outbox if the stream
  // advanced since the last emission (no-op while down or idle).
  void EmitSnapshotIfAdvanced(uint64_t now);

  // Envelopes due for (re)transmission; empty while down.
  std::vector<std::string> CollectDue(uint64_t now) {
    return down_ ? std::vector<std::string>{} : outbox_.CollectDue(now);
  }

  // Processes an incoming message (acks). Ignored while down.
  void Receive(std::string_view bytes);

  // Fault injection: the process dies, losing sketch + outbox.
  void Crash(uint64_t now, uint64_t down_ticks);
  // Restarts once the outage elapses, under a bumped incarnation.
  // With a configured checkpoint: restore the last durable checkpoint
  // (through the mmap or buffered open path per the policy), then
  // replay only the log suffix past its epoch. Any checkpoint fault --
  // torn file, flipped byte, wrong family, missing file -- fails closed
  // to a full replay of the remaining durable log. Both paths rebuild
  // state bit-identical to the lost sketch: KMV state is a pure
  // function of the key sequence, and the checkpoint IS the sketch of
  // the truncated prefix.
  void MaybeRestart(uint64_t now);

  bool down() const { return down_; }
  uint64_t id() const { return id_; }
  // Stream position: keys ingested so far. Epochs remain GLOBAL log
  // offsets after truncation: log_ holds [log_base_, epoch()).
  uint64_t epoch() const { return log_base_ + log_.size(); }
  const std::vector<uint64_t>& log() const { return log_; }
  // First stream position still present in the replay log == the epoch
  // the on-disk checkpoint covers (0 before any checkpoint).
  uint64_t log_base() const { return log_base_; }
  const KmvSketch& sketch() const { return sketch_; }
  const FrameOutbox& outbox() const { return outbox_; }
  uint64_t last_emitted_epoch() const { return last_emitted_epoch_; }
  // True when the node still owes its parent a snapshot or an ack.
  bool HasPendingWork() const {
    return down_ || !outbox_.empty() || last_emitted_epoch_ < epoch();
  }
  uint64_t crashes() const { return crashes_; }

  // --- Checkpoint observability --------------------------------------

  const CheckpointPolicy& checkpoint_policy() const {
    return checkpoint_policy_;
  }
  // Keys ingested since the last durable checkpoint: the replay-tail
  // bound a crash right now would pay.
  uint64_t epochs_since_checkpoint() const {
    return epoch() - checkpoint_epoch_;
  }
  uint64_t checkpoint_epoch() const { return checkpoint_epoch_; }
  uint64_t checkpoints_written() const { return checkpoints_written_; }
  uint64_t checkpoint_write_failures() const {
    return checkpoint_write_failures_;
  }
  uint64_t checkpoint_restores() const { return checkpoint_restores_; }
  uint64_t checkpoint_restore_failures() const {
    return checkpoint_restore_failures_;
  }
  // Typed reason of the most recent failed restore (kNone when every
  // restore so far succeeded).
  persist::CheckpointFault last_restore_fault() const {
    return last_restore_fault_;
  }

  // Live heap bytes of the node (util/memory.h convention): sketch,
  // replay log, and unacked outbox entries. Visibly drops when a
  // checkpoint truncates the log.
  size_t MemoryFootprint() const {
    return sketch_.MemoryFootprint() + VectorFootprint(log_) +
           outbox_.MemoryFootprint();
  }

 private:
  uint64_t id_;
  size_t k_;
  uint64_t hash_salt_;
  KmvSketch sketch_;
  std::vector<uint64_t> log_;
  FrameOutbox outbox_;
  uint64_t last_emitted_epoch_ = 0;
  bool down_ = false;
  uint64_t restart_at_ = 0;
  uint64_t crashes_ = 0;
  // Checkpoint state: log_ holds stream positions [log_base_, epoch());
  // everything before log_base_ lives only in the durable checkpoint
  // file, whose covered epoch is checkpoint_epoch_ (== log_base_ except
  // transiently never: truncation happens in the same step as the
  // successful write).
  CheckpointPolicy checkpoint_policy_;
  uint64_t log_base_ = 0;
  uint64_t checkpoint_epoch_ = 0;
  uint64_t checkpoints_written_ = 0;
  uint64_t checkpoint_write_failures_ = 0;
  uint64_t checkpoint_restores_ = 0;
  uint64_t checkpoint_restore_failures_ = 0;
  persist::CheckpointFault last_restore_fault_ =
      persist::CheckpointFault::kNone;
};

// The merge node: validates, dedups, and transactionally applies child
// snapshots; answers queries from the last consistent merged state; and
// (when interior) ships its own cumulative snapshot upward through the
// same outbox protocol.
class AggregatorNode {
 public:
  AggregatorNode(uint64_t id, size_t k, uint64_t hash_salt,
                 const RetryPolicy& policy);

  // Handles one incoming message. Data envelopes are classified with
  // typed reasons, deduped by (sender, incarnation, seq), gated on
  // epoch monotonicity, and applied all-or-nothing through
  // KmvSketch::MergeManyFrames; acks are routed to the outbox. The
  // returned outcome carries the ack to transmit, if any.
  ReceiveOutcome Receive(std::string_view bytes);

  // Interior nodes: enqueue a cumulative snapshot of the merged sketch
  // when any child advanced since the last emission.
  void EmitSnapshotIfAdvanced(uint64_t now);
  std::vector<std::string> CollectDue(uint64_t now) {
    return outbox_.CollectDue(now);
  }

  // --- Graceful-degradation queries: never fail, report staleness ----

  // Distinct-count estimate from the last consistent merged snapshot
  // (0 before any frame has been applied -- an answer, not an error).
  double Estimate() const {
    return merged_.size() == 0 ? 0.0 : merged_.Estimate();
  }
  // Per-child staleness, in child-id order.
  std::vector<SubtreeStaleness> Staleness() const;
  // Sum of applied child epochs: the stream coverage of the answer.
  uint64_t merged_epoch() const;

  const KmvSketch& merged() const { return merged_; }
  std::string SnapshotFrame() const { return merged_.SerializeToString(); }
  const RejectCounters& rejects() const { return rejects_; }
  uint64_t frames_applied() const { return frames_applied_; }
  uint64_t id() const { return id_; }
  const FrameOutbox& outbox() const { return outbox_; }
  uint64_t last_emitted_epoch() const { return last_emitted_epoch_; }
  bool HasPendingWork() const {
    return !outbox_.empty() || last_emitted_epoch_ < merged_epoch();
  }
  // Applied epoch for one child (0 if never heard from).
  uint64_t AppliedEpoch(uint64_t child_id) const;

  // Live heap bytes of the node (util/memory.h convention): merged
  // sketch, per-child dedup state, and unacked outbox entries.
  size_t MemoryFootprint() const {
    size_t total = merged_.MemoryFootprint() + TreeFootprint(children_) +
                   outbox_.MemoryFootprint();
    for (const auto& [id, child] : children_) {
      total += TreeFootprint(child.seen);
    }
    return total;
  }

 private:
  struct ChildState {
    uint64_t frames_applied = 0;
    uint64_t last_applied_epoch = 0;
    uint64_t newest_seen_epoch = 0;
    // Seen (incarnation, seq) pairs, for duplicate detection + re-ack.
    std::set<std::pair<uint64_t, uint64_t>> seen;
  };

  uint64_t id_;
  KmvSketch merged_;
  std::map<uint64_t, ChildState> children_;  // deterministic iteration
  RejectCounters rejects_;
  uint64_t frames_applied_ = 0;
  FrameOutbox outbox_;
  uint64_t last_emitted_epoch_ = 0;
};

}  // namespace ats::cluster

#endif  // ATS_CLUSTER_NODE_H_
