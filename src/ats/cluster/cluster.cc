#include "ats/cluster/cluster.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "ats/util/check.h"

namespace ats::cluster {

namespace {
// Per-agent stream seeds, decorrelated from the transport/chaos seeds.
uint64_t AgentSeed(uint64_t base, uint64_t agent_id) {
  return base + 0x9e3779b97f4a7c15ull * (agent_id + 1);
}
}  // namespace

ClusterSim::ClusterSim(const ClusterConfig& config)
    : config_(config),
      transport_(config.faults, config.seed),
      chaos_rng_(config.seed ^ 0xc8a05c3a5ull) {
  ATS_CHECK(config.num_agents >= 1);
  ATS_CHECK(config.snapshot_every >= 1);

  agents_.reserve(config.num_agents);
  history_.resize(config.num_agents);
  const bool checkpoints = config.checkpoint_every_epochs > 0 &&
                           !config.checkpoint_dir.empty();
  for (uint64_t id = 0; id < config.num_agents; ++id) {
    agents_.push_back(std::make_unique<AgentNode>(
        id, config.k, config.hash_salt, config.retry));
    if (checkpoints) {
      agents_.back()->ConfigureCheckpoint(
          {config.checkpoint_dir + "/agent_" + std::to_string(id) + ".ckp",
           config.checkpoint_every_epochs, config.checkpoint_prefer_mmap});
    }
    switch (config.workload) {
      case ClusterConfig::Workload::kZipf:
        zipf_.push_back(std::make_unique<ZipfGenerator>(
            config.universe, config.zipf_s, AgentSeed(config.seed, id)));
        break;
      case ClusterConfig::Workload::kPitmanYor:
        pitman_yor_.push_back(std::make_unique<PitmanYorStream>(
            config.py_beta, AgentSeed(config.seed, id)));
        break;
      case ClusterConfig::Workload::kUniform:
        uniform_rng_.emplace_back(AgentSeed(config.seed, id));
        break;
    }
  }

  // Build the fan-in tree bottom-up: group the current level's node ids
  // under fresh aggregators until one remains -- the root. fan_in == 0
  // (or >= the level size) collapses to the flat topology.
  std::vector<uint64_t> level(config.num_agents);
  for (uint64_t id = 0; id < config.num_agents; ++id) level[id] = id;
  parent_of_.assign(config.num_agents, 0);
  uint64_t next_id = config.num_agents;
  do {
    const uint64_t fan_in =
        config.fan_in == 0 ? level.size()
                           : std::min<uint64_t>(config.fan_in, level.size());
    std::vector<uint64_t> next_level;
    for (size_t base = 0; base < level.size(); base += fan_in) {
      const uint64_t agg_id = next_id++;
      aggregators_.push_back(std::make_unique<AggregatorNode>(
          agg_id, config.k, config.hash_salt, config.retry));
      parent_of_.push_back(0);  // patched when this node gets a parent
      for (size_t i = base; i < std::min(base + fan_in, level.size()); ++i) {
        parent_of_[level[i]] = agg_id;
      }
      next_level.push_back(agg_id);
    }
    level = std::move(next_level);
  } while (level.size() > 1);
}

void ClusterSim::Tick() {
  ++now_;
  for (auto& agent : agents_) agent->MaybeRestart(now_);
  if (now_ <= config_.ingest_ticks) {
    IngestTick();
    CrashTick();
  }
  DeliverTick();
  if (now_ % config_.snapshot_every == 0) EmitTick();
  SendTick();
}

void ClusterSim::IngestTick() {
  std::vector<uint64_t> keys(config_.keys_per_tick);
  for (uint64_t id = 0; id < config_.num_agents; ++id) {
    for (auto& key : keys) {
      switch (config_.workload) {
        case ClusterConfig::Workload::kZipf:
          key = zipf_[id]->Next();
          break;
        case ClusterConfig::Workload::kPitmanYor:
          key = pitman_yor_[id]->Next();
          break;
        case ClusterConfig::Workload::kUniform:
          key = uniform_rng_[id].NextBelow(config_.universe);
          break;
      }
    }
    agents_[id]->Ingest(keys);
    history_[id].insert(history_[id].end(), keys.begin(), keys.end());
  }
}

void ClusterSim::CrashTick() {
  if (config_.agent_crash_rate <= 0.0) return;
  // One draw per agent per tick regardless of state, so the draw
  // sequence -- and therefore every downstream fault -- is a pure
  // function of the seed.
  for (auto& agent : agents_) {
    const bool crash = chaos_rng_.NextDouble() < config_.agent_crash_rate;
    if (crash && !agent->down()) {
      agent->Crash(now_, config_.crash_down_ticks);
    }
  }
}

void ClusterSim::DeliverTick() {
  for (const Delivery& d : transport_.DeliverDue(now_)) Dispatch(d);
}

void ClusterSim::Dispatch(const Delivery& delivery) {
  if (delivery.to < config_.num_agents) {
    agents_[delivery.to]->Receive(delivery.bytes);
    return;
  }
  const size_t index = delivery.to - config_.num_agents;
  ATS_CHECK(index < aggregators_.size());
  ReceiveOutcome outcome = aggregators_[index]->Receive(delivery.bytes);
  if (outcome.send_ack) {
    // Acks ride the same faulty transport: a lost ack is what exercises
    // the sender-retry + receiver-re-ack path.
    transport_.Send(outcome.ack_to, std::move(outcome.ack_bytes), now_);
  }
}

void ClusterSim::EmitTick() {
  for (auto& agent : agents_) {
    agent->EmitSnapshotIfAdvanced(now_);
    // Checkpoints ride the same cadence: the snapshot the parent gets
    // and the one the disk gets cover the same stream position.
    agent->MaybeCheckpoint();
    // Naive re-ship baseline: a protocol with no acks, no change
    // detection, and no supersession ships every live node's (agents
    // AND interior relays) full snapshot at every cadence point, for as
    // long as the cluster runs -- without acks it never learns that the
    // receiver is up to date, so re-shipping is its only way to bound
    // staleness against possible loss.
    if (!agent->down() && agent->epoch() > 0) {
      naive_reship_bytes_ +=
          kEnvelopeOverhead + agent->sketch().SerializeToString().size();
    }
  }
  // Interior aggregators (every one but the root) relay upward.
  for (size_t i = 0; i + 1 < aggregators_.size(); ++i) {
    aggregators_[i]->EmitSnapshotIfAdvanced(now_);
    if (aggregators_[i]->merged_epoch() > 0) {
      naive_reship_bytes_ +=
          kEnvelopeOverhead +
          aggregators_[i]->merged().SerializeToString().size();
    }
  }
}

void ClusterSim::SendTick() {
  for (auto& agent : agents_) {
    for (std::string& bytes : agent->CollectDue(now_)) {
      transport_.Send(parent_of_[agent->id()], std::move(bytes), now_);
    }
  }
  for (size_t i = 0; i + 1 < aggregators_.size(); ++i) {
    for (std::string& bytes : aggregators_[i]->CollectDue(now_)) {
      transport_.Send(parent_of_[aggregators_[i]->id()], std::move(bytes),
                      now_);
    }
  }
}

bool ClusterSim::Quiescent() const {
  if (!IngestDone() || !transport_.Idle()) return false;
  for (const auto& agent : agents_) {
    if (agent->HasPendingWork()) return false;
  }
  for (size_t i = 0; i + 1 < aggregators_.size(); ++i) {
    if (aggregators_[i]->HasPendingWork()) return false;
  }
  return true;
}

void ClusterSim::RunIngest() {
  while (now_ < config_.ingest_ticks) Tick();
}

bool ClusterSim::RunUntilQuiescent() {
  while (now_ < config_.max_ticks) {
    if (Quiescent()) return true;
    Tick();
  }
  return Quiescent();
}

ClusterMetrics ClusterSim::Metrics() const {
  ClusterMetrics m;
  m.transport = transport_.stats();
  m.root_rejects = root().rejects();
  m.root_frames_applied = root().frames_applied();
  for (const auto& agent : agents_) {
    m.frames_enqueued += agent->outbox().frames_enqueued();
    m.retransmissions += agent->outbox().retransmissions();
    m.superseded_cancelled += agent->outbox().superseded_cancelled();
    m.superseded_bytes_saved += agent->outbox().superseded_bytes_saved();
    m.agent_crashes += agent->crashes();
    m.checkpoints_written += agent->checkpoints_written();
    m.checkpoint_write_failures += agent->checkpoint_write_failures();
    m.checkpoint_restores += agent->checkpoint_restores();
    m.checkpoint_restore_failures += agent->checkpoint_restore_failures();
  }
  for (size_t i = 0; i + 1 < aggregators_.size(); ++i) {
    const FrameOutbox& box = aggregators_[i]->outbox();
    m.frames_enqueued += box.frames_enqueued();
    m.retransmissions += box.retransmissions();
    m.superseded_cancelled += box.superseded_cancelled();
    m.superseded_bytes_saved += box.superseded_bytes_saved();
  }
  m.naive_reship_bytes = naive_reship_bytes_;
  m.ticks = now_;
  m.node_memory_bytes = NodeMemoryFootprint();
  return m;
}

size_t ClusterSim::NodeMemoryFootprint() const {
  size_t total = 0;
  for (const auto& agent : agents_) total += agent->MemoryFootprint();
  for (const auto& agg : aggregators_) total += agg->MemoryFootprint();
  return total;
}

std::string ClusterSim::FaultFreeRootFrame() const {
  std::vector<std::string> frames;
  frames.reserve(agents_.size());
  for (const auto& agent : agents_) {
    KmvSketch sketch(config_.k, 1.0, config_.hash_salt);
    sketch.AddKeys(history_[agent->id()]);
    frames.push_back(sketch.SerializeToString());
  }
  std::vector<std::string_view> views(frames.begin(), frames.end());
  KmvSketch reference(config_.k, 1.0, config_.hash_salt);
  ATS_CHECK(reference.MergeManyFrames(views));
  return reference.SerializeToString();
}

uint64_t ClusterSim::ExactDistinctTotal() const {
  std::unordered_set<uint64_t> distinct;
  for (const auto& history : history_) {
    distinct.insert(history.begin(), history.end());
  }
  return distinct.size();
}

uint64_t ClusterSim::ExactDistinctApplied() const {
  std::unordered_set<uint64_t> distinct;
  for (const auto& agent : agents_) {
    const uint64_t applied = root().AppliedEpoch(agent->id());
    const auto& history = history_[agent->id()];
    ATS_CHECK(applied <= history.size());
    distinct.insert(history.begin(), history.begin() + applied);
  }
  return distinct.size();
}

}  // namespace ats::cluster
