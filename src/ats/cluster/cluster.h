// ClusterSim: the in-process distributed aggregation harness.
//
// N agent nodes ingest synthetic traffic (Zipf / Pitman-Yor / uniform,
// src/ats/workload) and ship cumulative KMV snapshots on a cadence up a
// configurable fan-in tree to a root aggregator, over a FaultyTransport
// that injects drop/duplicate/reorder/delay/corrupt/truncate faults
// deterministically from a seed. Agents can additionally crash (losing
// volatile state) and restart by replaying their durable key log.
//
// Everything runs on a simulated tick clock in ONE thread: a scenario is
// a pure function of its ClusterConfig, so a chaos run replays
// byte-for-byte (the CI determinism check relies on this), and the
// sanitizer legs exercise the protocol logic without scheduling noise.
//
// Per-tick order (fixed -- this ordering IS the determinism contract):
//   1. restarts due this tick (agents in id order)
//   2. ingest, while the ingest phase lasts (agents in id order)
//   3. crash draws, ingest phase only (agents in id order)
//   4. transport deliveries due this tick, acks sent as they are handled
//   5. cadence snapshot emission (agents, then interior aggregators)
//   6. outbox (re)transmissions due this tick
//
// Convergence: because snapshots are cumulative and the bottom-k union
// is idempotent / commutative / prefix-absorbing, ANY schedule of
// losses, duplicates, reorderings, and crash-replays that eventually
// delivers each node's final snapshot converges the root to the
// fault-free flat merge bit-exactly. The harness exposes that reference
// (FaultFreeRootFrame) plus exact-distinct ground truth for
// Horvitz-Thompson accuracy checks at intermediate steps.
#ifndef ATS_CLUSTER_CLUSTER_H_
#define ATS_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ats/cluster/node.h"
#include "ats/cluster/transport.h"
#include "ats/core/random.h"
#include "ats/workload/pitman_yor.h"
#include "ats/workload/zipf.h"

namespace ats::cluster {

struct ClusterConfig {
  uint64_t num_agents = 8;
  // Children per aggregator; 0 = flat (every agent under the root).
  uint64_t fan_in = 0;
  size_t k = 1024;
  uint64_t hash_salt = 0x5eed;
  uint64_t seed = 42;

  enum class Workload { kUniform, kZipf, kPitmanYor };
  Workload workload = Workload::kUniform;
  uint64_t universe = 1 << 16;  // uniform / zipf key space
  double zipf_s = 1.1;
  double py_beta = 0.5;

  uint64_t keys_per_tick = 64;  // per agent
  uint64_t ingest_ticks = 32;
  uint64_t snapshot_every = 4;  // cadence, in ticks

  FaultProfile faults;
  RetryPolicy retry;
  // Per-agent, per-ingest-tick crash probability (crashes stop with the
  // ingest phase so the drain terminates).
  double agent_crash_rate = 0.0;
  uint64_t crash_down_ticks = 8;

  // Durable checkpointing (persist/checkpoint.h): when every_epochs > 0
  // and a directory is given, each agent checkpoints its sketch on the
  // snapshot cadence once that many keys accumulated since the last
  // durable checkpoint, truncating its replay log to the uncovered
  // suffix; restarts then restore-and-replay the bounded tail. The
  // directory must exist and be writable; one file per agent.
  uint64_t checkpoint_every_epochs = 0;
  std::string checkpoint_dir;
  bool checkpoint_prefer_mmap = true;

  // Drain-phase safety valve for RunUntilQuiescent.
  uint64_t max_ticks = 1 << 16;
};

// Snapshot of cluster-wide accounting, for tests and the bench.
struct ClusterMetrics {
  TransportStats transport;
  RejectCounters root_rejects;
  uint64_t root_frames_applied = 0;
  uint64_t frames_enqueued = 0;
  uint64_t retransmissions = 0;
  uint64_t superseded_cancelled = 0;
  uint64_t superseded_bytes_saved = 0;
  // What a protocol that re-ships every live agent's full snapshot at
  // every cadence point (no acks, no change detection, no supersession)
  // would have put on the wire. The bench reports bytes_on_wire against
  // this baseline.
  uint64_t naive_reship_bytes = 0;
  uint64_t agent_crashes = 0;
  uint64_t ticks = 0;
  // Persistence-tier accounting (zero when checkpointing is disabled).
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_write_failures = 0;
  uint64_t checkpoint_restores = 0;
  uint64_t checkpoint_restore_failures = 0;
  // Live heap bytes across every node (agents + aggregators), per the
  // MemoryFootprint convention (util/memory.h).
  uint64_t node_memory_bytes = 0;
};

class ClusterSim {
 public:
  explicit ClusterSim(const ClusterConfig& config);

  // One simulated tick in the fixed order documented above.
  void Tick();

  // True once ingest is over, no agent is down, the transport is empty,
  // and every node has emitted and been acked for its final snapshot --
  // i.e. the root holds its terminal state.
  bool Quiescent() const;

  // Runs the ingest phase (config.ingest_ticks ticks).
  void RunIngest();

  // Ticks until Quiescent() or config.max_ticks elapse; returns whether
  // quiescence was reached.
  bool RunUntilQuiescent();

  bool IngestDone() const { return now_ >= config_.ingest_ticks; }
  uint64_t now() const { return now_; }

  const AggregatorNode& root() const { return *aggregators_.back(); }
  const std::vector<std::unique_ptr<AgentNode>>& agents() const {
    return agents_;
  }
  size_t num_aggregators() const { return aggregators_.size(); }

  ClusterMetrics Metrics() const;

  // ------------------------------ ground truth ------------------------

  // The fault-free reference: a flat MergeManyFrames over every agent's
  // full-history sketch, serialized. Chaos runs must converge the root
  // to these bytes exactly. Computed from the sim's shadow history, not
  // the agents' replay logs: with checkpointing enabled the logs are
  // truncated tails, while the reference needs the whole stream.
  std::string FaultFreeRootFrame() const;

  // Exact distinct count over every agent's full key history.
  uint64_t ExactDistinctTotal() const;

  // Exact distinct count over the history PREFIXES the root has applied
  // (history[0, applied_epoch) per agent) -- the coverage of the root's
  // current answer. Meaningful for the flat topology, where root epochs
  // are per-agent stream offsets.
  uint64_t ExactDistinctApplied() const;

  // Every key agent `id` ever ingested, in order (the sim-side shadow
  // of the agents' -- possibly truncated -- replay logs; ground truth
  // for the checkpointed chaos assertions).
  const std::vector<uint64_t>& History(uint64_t id) const {
    return history_[id];
  }

  // Live heap bytes across every node, per util/memory.h. Excludes the
  // sim's own bookkeeping (shadow history, workload generators).
  size_t NodeMemoryFootprint() const;

 private:
  void IngestTick();
  void CrashTick();
  void DeliverTick();
  void EmitTick();
  void SendTick();
  void Dispatch(const Delivery& delivery);

  ClusterConfig config_;
  uint64_t now_ = 0;
  FaultyTransport transport_;
  Xoshiro256 chaos_rng_;  // crash draws, independent of the transport
  std::vector<std::unique_ptr<AgentNode>> agents_;
  // Built bottom-up in level order; aggregators_.back() is the root.
  std::vector<std::unique_ptr<AggregatorNode>> aggregators_;
  // parent_of_[node id] = destination node id for upward frames.
  std::vector<uint64_t> parent_of_;
  // Workload state, one generator per agent (Zipf/PY are stateful).
  std::vector<std::unique_ptr<ZipfGenerator>> zipf_;
  std::vector<std::unique_ptr<PitmanYorStream>> pitman_yor_;
  std::vector<Xoshiro256> uniform_rng_;
  uint64_t naive_reship_bytes_ = 0;
  // Shadow of every agent's full key stream (appended in lockstep with
  // Ingest, which records keys even while the agent is down). The
  // ground-truth queries read this so they stay exact after the agents'
  // replay logs are truncated by checkpoints.
  std::vector<std::vector<uint64_t>> history_;
};

}  // namespace ats::cluster

#endif  // ATS_CLUSTER_CLUSTER_H_
