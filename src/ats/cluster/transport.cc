#include "ats/cluster/transport.h"

#include "ats/util/check.h"

namespace ats::cluster {

FaultyTransport::FaultyTransport(const FaultProfile& profile, uint64_t seed)
    : profile_(profile), rng_(seed) {
  ATS_CHECK(profile.max_delay_ticks >= profile.min_delay_ticks);
}

void FaultyTransport::Send(uint64_t to, std::string bytes, uint64_t now) {
  ++stats_.messages_sent;
  // Fixed draw order per call: duplicate decision first, then each copy
  // independently draws (corrupt, truncate, drop, delay). Outcomes only
  // consume draws for the faults they trigger, which stays deterministic
  // because the call sequence itself is deterministic.
  const bool duplicate = rng_.NextDouble() < profile_.duplicate_rate;
  if (duplicate) {
    ++stats_.duplicated;
    Transmit(to, bytes, now);  // copy
  }
  Transmit(to, std::move(bytes), now);
}

void FaultyTransport::Transmit(uint64_t to, std::string bytes,
                               uint64_t now) {
  ++stats_.copies_transmitted;
  if (rng_.NextDouble() < profile_.corrupt_rate && !bytes.empty()) {
    ++stats_.corrupted;
    const size_t pos = rng_.NextBelow(bytes.size());
    bytes[pos] = static_cast<char>(bytes[pos] ^
                                   (1u << rng_.NextBelow(8)));
  }
  if (rng_.NextDouble() < profile_.truncate_rate && !bytes.empty()) {
    ++stats_.truncated;
    bytes.resize(rng_.NextBelow(bytes.size()));  // strict prefix
  }
  stats_.bytes_on_wire += bytes.size();
  const bool dropped = rng_.NextDouble() < profile_.drop_rate;
  const uint64_t delay =
      profile_.min_delay_ticks +
      (profile_.max_delay_ticks > profile_.min_delay_ticks
           ? rng_.NextBelow(profile_.max_delay_ticks -
                            profile_.min_delay_ticks + 1)
           : 0);
  if (dropped) {
    ++stats_.dropped;
    return;  // transmitted, never delivered
  }
  in_flight_.emplace(std::make_pair(now + delay, next_copy_id_++),
                     Delivery{to, std::move(bytes)});
}

std::vector<Delivery> FaultyTransport::DeliverDue(uint64_t now) {
  std::vector<Delivery> due;
  auto it = in_flight_.begin();
  while (it != in_flight_.end() && it->first.first <= now) {
    due.push_back(std::move(it->second));
    it = in_flight_.erase(it);
  }
  return due;
}

}  // namespace ats::cluster
