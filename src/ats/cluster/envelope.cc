#include "ats/cluster/envelope.h"

#include <cstring>

namespace ats::cluster {

std::string EncodeEnvelope(EnvelopeKind kind, uint64_t sender,
                           uint64_t incarnation, uint64_t seq,
                           uint64_t epoch, std::string_view payload) {
  ByteWriter w;
  w.WriteU32(kEnvelopeMagic);
  w.WriteU32(kEnvelopeVersion);
  w.WriteU32(static_cast<uint32_t>(kind));
  w.WriteU64(sender);
  w.WriteU64(incarnation);
  w.WriteU64(seq);
  w.WriteU64(epoch);
  w.WriteU64(payload.size());
  std::string bytes = w.Take();
  bytes.append(payload.data(), payload.size());
  const uint32_t checksum = FrameChecksum(bytes);
  bytes.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return bytes;
}

FrameFault DecodeEnvelope(std::string_view bytes, EnvelopeView* out) {
  // Header fields first, in wire order, so the typed reason names the
  // OUTERMOST defect: a frame that is both foreign and damaged reports
  // kBadMagic, and a short read reports kTruncated even when the intact
  // prefix would also fail its checksum.
  if (bytes.size() < kEnvelopeHeaderSize) return FrameFault::kTruncated;
  ByteReader r(bytes);
  const uint32_t magic = *r.ReadU32();
  if (magic != kEnvelopeMagic) return FrameFault::kBadMagic;
  const uint32_t version = *r.ReadU32();
  if (version == 0 || version > kEnvelopeVersion) {
    return FrameFault::kBadVersion;
  }
  const uint32_t kind = *r.ReadU32();
  const uint64_t sender = *r.ReadU64();
  const uint64_t incarnation = *r.ReadU64();
  const uint64_t seq = *r.ReadU64();
  const uint64_t epoch = *r.ReadU64();
  const uint64_t payload_len = *r.ReadU64();
  // The declared length is what upgrades a short read from "checksum
  // mismatch" to kTruncated: fewer bytes present than declared + the
  // trailing checksum means the tail never arrived.
  const uint64_t available = bytes.size() - kEnvelopeHeaderSize;
  if (payload_len > available ||
      available - payload_len < sizeof(uint32_t)) {
    return FrameFault::kTruncated;
  }
  if (available - payload_len > sizeof(uint32_t)) {
    return FrameFault::kCorruptBody;  // trailing junk past the checksum
  }
  if (kind > static_cast<uint32_t>(EnvelopeKind::kAck)) {
    return FrameFault::kCorruptBody;
  }
  const size_t checksum_pos = kEnvelopeHeaderSize + payload_len;
  uint32_t stored;
  std::memcpy(&stored, bytes.data() + checksum_pos, sizeof(stored));
  if (stored != FrameChecksum(bytes.substr(0, checksum_pos))) {
    return FrameFault::kCorruptBody;
  }
  out->kind = static_cast<EnvelopeKind>(kind);
  out->sender = sender;
  out->incarnation = incarnation;
  out->seq = seq;
  out->epoch = epoch;
  out->payload = bytes.substr(kEnvelopeHeaderSize, payload_len);
  return FrameFault::kNone;
}

}  // namespace ats::cluster
