// The transport envelope (magic "ENV1"): the unit of exchange between
// cluster nodes. A serialized sketch frame never travels bare -- it is
// wrapped in a sequence-numbered, checksummed envelope so the receiver
// can (a) verify integrity end-to-end with one checksum over header and
// payload, (b) deduplicate retransmissions idempotently by
// (sender, incarnation, seq), and (c) CLASSIFY damage: an envelope
// declares its payload length, so a short read is distinguishable from
// flipped bytes, which is what lets the retry loop treat kTruncated as
// retry-able while a poison payload frame is acked-and-counted, never
// retried and never merged.
//
// Byte layout (all fields little-endian; normative spec in
// docs/WIRE_FORMAT.md):
//
//   magic   u32 = 0x454e5631 ("ENV1")
//   version u32 = 1
//   kind    u32   (0 = data, 1 = ack)
//   sender  u64   node id of the originator
//   incarnation u64   restart generation of the sender (crash recovery)
//   seq     u64   per-(sender, incarnation) sequence number
//   epoch   u64   stream position the payload snapshot covers
//   payload_len u64
//   payload bytes (a whole serialized sketch frame; empty for acks)
//   checksum u32  FNV-1a over every preceding byte
//
// For an ack, (incarnation, seq, epoch) name the DATA envelope being
// acknowledged and `sender` is the acknowledging aggregator.
#ifndef ATS_CLUSTER_ENVELOPE_H_
#define ATS_CLUSTER_ENVELOPE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "ats/util/serialize.h"

namespace ats::cluster {

inline constexpr uint32_t kEnvelopeMagic = 0x454e5631;  // "ENV1"
inline constexpr uint32_t kEnvelopeVersion = 1;

// Fixed prefix before the payload: magic, version, kind (u32 each) +
// sender, incarnation, seq, epoch, payload_len (u64 each).
inline constexpr size_t kEnvelopeHeaderSize =
    3 * sizeof(uint32_t) + 5 * sizeof(uint64_t);
inline constexpr size_t kEnvelopeOverhead =
    kEnvelopeHeaderSize + sizeof(uint32_t);  // + trailing checksum

enum class EnvelopeKind : uint32_t {
  kData = 0,
  kAck = 1,
};

// Decoded header plus a borrowed view of the payload bytes; must not
// outlive the envelope buffer.
struct EnvelopeView {
  EnvelopeKind kind = EnvelopeKind::kData;
  uint64_t sender = 0;
  uint64_t incarnation = 0;
  uint64_t seq = 0;
  uint64_t epoch = 0;
  std::string_view payload;
};

// Encodes one envelope (header | payload | checksum) into an owned
// buffer.
std::string EncodeEnvelope(EnvelopeKind kind, uint64_t sender,
                           uint64_t incarnation, uint64_t seq,
                           uint64_t epoch, std::string_view payload);

// Decodes and validates `bytes`. Returns FrameFault::kNone and fills
// `out` on success; otherwise a typed reason and `out` is untouched:
//
//   kTruncated   -- shorter than the fixed header, or shorter than the
//                   declared payload length + checksum (short read:
//                   retry-able, the sender's retransmission will parse)
//   kBadMagic    -- not an envelope
//   kBadVersion  -- version 0 or above kEnvelopeVersion
//   kCorruptBody -- bytes beyond the declared length (framing junk), an
//                   unknown kind, or a checksum mismatch (poison: no
//                   retry of these bytes can succeed)
//
// The payload sketch frame is NOT validated here; the receiving
// aggregator vets it via the family validators before merging.
FrameFault DecodeEnvelope(std::string_view bytes, EnvelopeView* out);

}  // namespace ats::cluster

#endif  // ATS_CLUSTER_ENVELOPE_H_
