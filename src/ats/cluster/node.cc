#include "ats/cluster/node.h"

#include <algorithm>

#include "ats/util/check.h"

namespace ats::cluster {

void RejectCounters::CountEnvelopeFault(FrameFault fault) {
  switch (fault) {
    case FrameFault::kTruncated:
      ++truncated;
      break;
    case FrameFault::kBadMagic:
      ++bad_magic;
      break;
    case FrameFault::kBadVersion:
      ++bad_version;
      break;
    case FrameFault::kCorruptBody:
      ++corrupt_body;
      break;
    case FrameFault::kNone:
      break;
  }
}

// ---------------------------------------------------------------- outbox

void FrameOutbox::EnqueueSnapshot(uint64_t epoch, std::string_view payload,
                                  uint64_t now) {
  // Cancel superseded entries first: a cumulative snapshot at a higher
  // epoch absorbs every older one (bottom-k union is prefix-absorbing),
  // so retrying them would only burn wire bytes.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.epoch < epoch) {
      ++superseded_cancelled_;
      superseded_bytes_saved_ += it->second.bytes.size();
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  Pending p;
  p.bytes = EncodeEnvelope(EnvelopeKind::kData, node_id_, incarnation_,
                           next_seq_, epoch, payload);
  p.epoch = epoch;
  p.next_send = now;
  p.backoff = policy_.initial_backoff_ticks;
  pending_.emplace(next_seq_, std::move(p));
  ++next_seq_;
  ++frames_enqueued_;
}

std::vector<std::string> FrameOutbox::CollectDue(uint64_t now) {
  std::vector<std::string> due;
  for (auto& [seq, p] : pending_) {
    if (p.next_send > now) continue;
    due.push_back(p.bytes);
    if (p.sent_once) ++retransmissions_;
    p.sent_once = true;
    p.next_send = now + p.backoff;
    p.backoff = std::min(p.backoff * 2, policy_.max_backoff_ticks);
  }
  return due;
}

bool FrameOutbox::HandleAck(const EnvelopeView& ack) {
  if (ack.incarnation != incarnation_) return false;  // a previous life
  return pending_.erase(ack.seq) > 0;
}

void FrameOutbox::Reset(uint64_t new_incarnation) {
  pending_.clear();
  incarnation_ = new_incarnation;
  next_seq_ = 0;  // seqs are scoped per incarnation
}

// ----------------------------------------------------------------- agent

AgentNode::AgentNode(uint64_t id, size_t k, uint64_t hash_salt,
                     const RetryPolicy& policy)
    : id_(id),
      k_(k),
      hash_salt_(hash_salt),
      sketch_(k, 1.0, hash_salt),
      outbox_(id, policy) {}

void AgentNode::Ingest(std::span<const uint64_t> keys) {
  log_.insert(log_.end(), keys.begin(), keys.end());
  if (!down_) sketch_.AddKeys(keys);
}

void AgentNode::EmitSnapshotIfAdvanced(uint64_t now) {
  if (down_ || epoch() == last_emitted_epoch_) return;
  outbox_.EnqueueSnapshot(epoch(), sketch_.SerializeToString(), now);
  last_emitted_epoch_ = epoch();
}

void AgentNode::Receive(std::string_view bytes) {
  if (down_) return;  // the wire delivered to a dead process
  EnvelopeView view;
  if (DecodeEnvelope(bytes, &view) != FrameFault::kNone) return;
  if (view.kind == EnvelopeKind::kAck) outbox_.HandleAck(view);
}

void AgentNode::MaybeCheckpoint() {
  if (down_ || !checkpoint_policy_.enabled()) return;
  if (epochs_since_checkpoint() < checkpoint_policy_.every_epochs) return;
  const std::string payload = sketch_.SerializeToString();
  if (persist::CheckpointWriter::Write(checkpoint_policy_.path,
                                       persist::SchemeKind::kKmv, epoch(),
                                       payload) !=
      persist::CheckpointFault::kNone) {
    // Durability is unchanged: the previous checkpoint (if any) and the
    // full replay log both survive, so recovery still works -- it just
    // replays a longer tail.
    ++checkpoint_write_failures_;
    return;
  }
  ++checkpoints_written_;
  checkpoint_epoch_ = epoch();
  // The durable file now covers every logged key: the replay log only
  // needs the (empty) suffix past it. This truncation is what bounds
  // log_ growth and the replay work a restart performs.
  log_base_ = epoch();
  log_.clear();
}

void AgentNode::Crash(uint64_t now, uint64_t down_ticks) {
  if (down_) return;
  down_ = true;
  restart_at_ = now + down_ticks;
  ++crashes_;
  // Volatile state dies with the process; the durable log survives.
  sketch_ = KmvSketch(k_, 1.0, hash_salt_);
  last_emitted_epoch_ = 0;
}

void AgentNode::MaybeRestart(uint64_t now) {
  if (!down_ || now < restart_at_) return;
  down_ = false;
  outbox_.Reset(outbox_.incarnation() + 1);
  // Recovery: restore the durable checkpoint when one is configured and
  // every validation layer passes, then replay only the bounded log
  // suffix past its epoch. The rebuilt sketch is bit-identical to the
  // lost one either way -- KMV state is a pure function of the key
  // sequence, and the checkpoint is the (canonically serialized) sketch
  // of the stream prefix it covers.
  size_t replay_from = 0;  // offset into log_
  if (checkpoint_policy_.enabled()) {
    KmvSketch restored(k_, 1.0, hash_salt_);
    uint64_t restored_epoch = 0;
    const persist::CheckpointFault fault = persist::RestoreFromCheckpoint(
        checkpoint_policy_.path, persist::SchemeKind::kKmv, &restored,
        &restored_epoch,
        checkpoint_policy_.prefer_mmap ? persist::OpenMode::kPreferMmap
                                       : persist::OpenMode::kBuffered);
    const bool consistent = fault == persist::CheckpointFault::kNone &&
                            restored.k() == k_ &&
                            restored.hash_salt() == hash_salt_ &&
                            restored_epoch >= log_base_ &&
                            restored_epoch <= epoch();
    if (consistent) {
      sketch_ = std::move(restored);
      replay_from = restored_epoch - log_base_;
      ++checkpoint_restores_;
    } else {
      // Fail closed: ignore the bad file entirely and replay the whole
      // remaining durable log onto the fresh sketch Crash() installed.
      last_restore_fault_ = fault;
      ++checkpoint_restore_failures_;
    }
  }
  sketch_.AddKeys(std::span<const uint64_t>(log_).subspan(replay_from));
}

// ------------------------------------------------------------ aggregator

AggregatorNode::AggregatorNode(uint64_t id, size_t k, uint64_t hash_salt,
                               const RetryPolicy& policy)
    : id_(id), merged_(k, 1.0, hash_salt), outbox_(id, policy) {}

ReceiveOutcome AggregatorNode::Receive(std::string_view bytes) {
  ReceiveOutcome out;
  EnvelopeView view;
  const FrameFault fault = DecodeEnvelope(bytes, &view);
  if (fault != FrameFault::kNone) {
    // Damaged in transit (or foreign). Counted per cause, NOT acked:
    // silence is what makes the sender retransmit the intact bytes.
    rejects_.CountEnvelopeFault(fault);
    out.kind = ReceiveOutcome::Kind::kEnvelopeRejected;
    out.fault = fault;
    return out;
  }
  if (view.kind == EnvelopeKind::kAck) {
    outbox_.HandleAck(view);
    out.kind = ReceiveOutcome::Kind::kIgnored;
    return out;
  }

  ChildState& child = children_[view.sender];
  child.newest_seen_epoch = std::max(child.newest_seen_epoch, view.epoch);
  const auto ack = [&] {
    out.send_ack = true;
    out.ack_to = view.sender;
    out.ack_bytes = EncodeEnvelope(EnvelopeKind::kAck, id_,
                                   view.incarnation, view.seq, view.epoch,
                                   {});
  };

  if (!child.seen.emplace(view.incarnation, view.seq).second) {
    // A retransmission or wire duplicate of an envelope already handled.
    // Re-ack: the previous ack may have been the casualty.
    ++rejects_.duplicate_seq;
    out.kind = ReceiveOutcome::Kind::kDuplicateSeq;
    ack();
    return out;
  }
  if (view.epoch <= child.last_applied_epoch) {
    // Valid but already absorbed by a newer cumulative snapshot (e.g. a
    // delayed copy arriving after its successor). Ack so the sender
    // stops retrying; merging it would be a no-op anyway.
    ++rejects_.stale_epoch;
    out.kind = ReceiveOutcome::Kind::kStaleEpoch;
    ack();
    return out;
  }

  // Validate-before-mutate: MergeManyFrames vets the whole payload frame
  // before touching merged_, so a poison payload leaves the merged state
  // byte-identical.
  const std::string_view frame[] = {view.payload};
  if (!merged_.MergeManyFrames(frame)) {
    // The envelope arrived intact, so these bytes are what the sender
    // MEANT to send: no retransmission can fix them. Ack to stop the
    // retry loop; count with the typed payload reason; never merge.
    ++rejects_.payload_rejected;
    out.kind = ReceiveOutcome::Kind::kPayloadRejected;
    out.fault = KmvSketch::DiagnoseFrame(view.payload);
    ack();
    return out;
  }
  child.last_applied_epoch = view.epoch;
  ++child.frames_applied;
  ++frames_applied_;
  out.kind = ReceiveOutcome::Kind::kApplied;
  ack();
  return out;
}

void AggregatorNode::EmitSnapshotIfAdvanced(uint64_t now) {
  const uint64_t epoch = merged_epoch();
  if (epoch == last_emitted_epoch_) return;
  outbox_.EnqueueSnapshot(epoch, merged_.SerializeToString(), now);
  last_emitted_epoch_ = epoch;
}

std::vector<SubtreeStaleness> AggregatorNode::Staleness() const {
  std::vector<SubtreeStaleness> result;
  result.reserve(children_.size());
  for (const auto& [id, child] : children_) {
    SubtreeStaleness s;
    s.child_id = id;
    s.frames_applied = child.frames_applied;
    s.last_applied_epoch = child.last_applied_epoch;
    s.newest_seen_epoch = child.newest_seen_epoch;
    result.push_back(s);
  }
  return result;
}

uint64_t AggregatorNode::merged_epoch() const {
  uint64_t sum = 0;
  for (const auto& [id, child] : children_) {
    sum += child.last_applied_epoch;
  }
  return sum;
}

uint64_t AggregatorNode::AppliedEpoch(uint64_t child_id) const {
  const auto it = children_.find(child_id);
  return it == children_.end() ? 0 : it->second.last_applied_epoch;
}

}  // namespace ats::cluster
