// FaultyTransport: the in-process chaos layer between cluster nodes.
//
// Messages are opaque byte strings sent to a destination node id and
// delivered after a (possibly jittered) delay on the simulated tick
// clock. Every fault is injected DETERMINISTICALLY from a single seed:
// the same seed and the same Send() call sequence reproduce the same
// drops, duplicates, delays, corruptions, and truncations byte-for-byte,
// which is what makes a chaos scenario replayable in CI (the determinism
// check reruns a scenario and diffs the root's serialized state).
//
// Fault model, applied per Send:
//   * drop      -- the message is transmitted but never delivered
//   * duplicate -- a second copy is scheduled with its own delay
//   * delay     -- each copy's delivery is delayed uniformly in
//                  [min_delay, max_delay] ticks; a jitter window larger
//                  than one tick REORDERS messages naturally
//   * corrupt   -- one random byte of the copy is bit-flipped
//   * truncate  -- the copy is cut to a strict prefix
//
// Corruption and truncation damage the bytes only; the envelope checksum
// and declared length (cluster/envelope.h) are what detect them at the
// receiver, which then refuses to ack, which is what drives the sender's
// retry loop. The transport never interprets the bytes it carries.
#ifndef ATS_CLUSTER_TRANSPORT_H_
#define ATS_CLUSTER_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ats/core/random.h"

namespace ats::cluster {

// Fault rates are probabilities in [0, 1]; delays are in ticks.
struct FaultProfile {
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double corrupt_rate = 0.0;
  double truncate_rate = 0.0;
  uint64_t min_delay_ticks = 1;
  uint64_t max_delay_ticks = 1;  // > min_delay_ticks reorders

  static FaultProfile None() { return FaultProfile{}; }
};

struct Delivery {
  uint64_t to = 0;
  std::string bytes;
};

// Wire accounting. `bytes_on_wire` counts every transmitted copy at its
// transmitted (post-truncation) length, dropped copies included -- the
// link carried them; the receiver just never saw them.
struct TransportStats {
  uint64_t messages_sent = 0;      // Send() calls
  uint64_t copies_transmitted = 0; // after duplication
  uint64_t bytes_on_wire = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t corrupted = 0;
  uint64_t truncated = 0;
};

class FaultyTransport {
 public:
  FaultyTransport(const FaultProfile& profile, uint64_t seed);

  // Transmits `bytes` toward node `to`, applying the fault profile.
  // RNG draws happen in a fixed per-call order, so the fault sequence is
  // a pure function of (seed, call sequence).
  void Send(uint64_t to, std::string bytes, uint64_t now);

  // Pops every delivery due at or before `now`, in deterministic
  // (deliver_at, transmission order) order.
  std::vector<Delivery> DeliverDue(uint64_t now);

  // No deliveries in flight.
  bool Idle() const { return in_flight_.empty(); }

  const TransportStats& stats() const { return stats_; }

 private:
  void Transmit(uint64_t to, std::string bytes, uint64_t now);

  FaultProfile profile_;
  Xoshiro256 rng_;
  TransportStats stats_;
  uint64_t next_copy_id_ = 0;
  // Keyed by (deliver_at, copy id): deterministic iteration order.
  std::map<std::pair<uint64_t, uint64_t>, Delivery> in_flight_;
};

}  // namespace ats::cluster

#endif  // ATS_CLUSTER_TRANSPORT_H_
