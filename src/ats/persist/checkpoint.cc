#include "ats/persist/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "ats/util/serialize.h"

// The POSIX fast path: fsync'd write-rename and the mmap open. Other
// platforms get the buffered fallback below (same validation, weaker
// durability: no fsync barrier between the data and the rename).
#if defined(__unix__) || defined(__APPLE__)
#define ATS_PERSIST_POSIX 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ats::persist {

const char* CheckpointFaultName(CheckpointFault fault) {
  switch (fault) {
    case CheckpointFault::kNone: return "none";
    case CheckpointFault::kIoError: return "io_error";
    case CheckpointFault::kTruncated: return "truncated";
    case CheckpointFault::kBadMagic: return "bad_magic";
    case CheckpointFault::kBadVersion: return "bad_version";
    case CheckpointFault::kBadKind: return "bad_kind";
    case CheckpointFault::kCorruptBody: return "corrupt_body";
    case CheckpointFault::kBadPayload: return "bad_payload";
  }
  return "unknown";
}

std::string EncodeCheckpoint(SchemeKind kind, uint64_t epoch,
                             std::string_view payload) {
  ByteWriter w;
  w.WriteU32(kCheckpointMagic);
  w.WriteU32(kCheckpointVersion);
  w.WriteU32(static_cast<uint32_t>(kind));
  w.WriteU64(epoch);
  w.WriteU64(payload.size());
  std::string bytes = w.Take();
  bytes.append(payload);
  const uint32_t checksum = FrameChecksum(bytes);
  bytes.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return bytes;
}

CheckpointFault DecodeCheckpoint(std::string_view bytes,
                                 CheckpointInfo* out) {
  // Normative rejection order (see the header comment): each layer is
  // checked only once every enclosing layer passed, so one defect maps
  // to one reason regardless of what the damaged bytes beyond it decode
  // to.
  if (bytes.size() < kCheckpointHeaderSize) return CheckpointFault::kTruncated;
  ByteReader r(bytes);
  const uint32_t magic = *r.ReadU32();
  if (magic != kCheckpointMagic) return CheckpointFault::kBadMagic;
  const uint32_t version = *r.ReadU32();
  if (version == 0 || version > kCheckpointVersion) {
    return CheckpointFault::kBadVersion;
  }
  const uint32_t kind = *r.ReadU32();
  if (kind < kMinSchemeKind || kind > kMaxSchemeKind) {
    return CheckpointFault::kBadKind;
  }
  const uint64_t epoch = *r.ReadU64();
  const uint64_t payload_len = *r.ReadU64();
  // Overflow-safe: compare the payload+checksum budget against what is
  // actually present, never header + payload_len (which can wrap).
  const uint64_t available = bytes.size() - kCheckpointHeaderSize;
  if (payload_len > available ||
      available - payload_len < sizeof(uint32_t)) {
    return CheckpointFault::kTruncated;
  }
  if (available - payload_len > sizeof(uint32_t)) {
    return CheckpointFault::kCorruptBody;  // trailing junk
  }
  const std::string_view covered =
      bytes.substr(0, kCheckpointHeaderSize + payload_len);
  uint32_t stored;
  std::memcpy(&stored, bytes.data() + covered.size(), sizeof(stored));
  if (stored != FrameChecksum(covered)) return CheckpointFault::kCorruptBody;
  if (out != nullptr) {
    out->kind = static_cast<SchemeKind>(kind);
    out->epoch = epoch;
    out->payload = bytes.substr(kCheckpointHeaderSize, payload_len);
  }
  return CheckpointFault::kNone;
}

// ---------------------------------------------------------------- writer

#if ATS_PERSIST_POSIX
namespace {

bool WriteAll(int fd, std::string_view bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

// fsync the directory holding `path`, so the rename that installed the
// checkpoint is itself durable. Best-effort by contract: some
// filesystems reject directory fsync; the data fsync already happened.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd < 0) return;
  ::fsync(dfd);
  ::close(dfd);
}

}  // namespace

CheckpointFault CheckpointWriter::Write(const std::string& path,
                                        SchemeKind kind, uint64_t epoch,
                                        std::string_view payload) {
  const std::string bytes = EncodeCheckpoint(kind, epoch, payload);
  const std::string tmp = path + ".tmp";
  // O_TRUNC deliberately reclaims a torn temp file left by a previous
  // crashed writer: the temp name is the ONLY place torn bytes can
  // exist, and no reader opens it.
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return CheckpointFault::kIoError;
  if (!WriteAll(fd, bytes) || ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return CheckpointFault::kIoError;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return CheckpointFault::kIoError;
  }
  // The atomic commit point: after this rename the path names the new
  // complete image; before it, the old one. Never a mixture.
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return CheckpointFault::kIoError;
  }
  SyncParentDir(path);
  return CheckpointFault::kNone;
}
#else
CheckpointFault CheckpointWriter::Write(const std::string& path,
                                        SchemeKind kind, uint64_t epoch,
                                        std::string_view payload) {
  const std::string bytes = EncodeCheckpoint(kind, epoch, payload);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.write(bytes.data(),
                   static_cast<std::streamsize>(bytes.size()))) {
      return CheckpointFault::kIoError;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return CheckpointFault::kIoError;
  }
  return CheckpointFault::kNone;
}
#endif

// ---------------------------------------------------------------- reader

void CheckpointReader::Release() {
#if ATS_PERSIST_POSIX
  if (map_ != nullptr) ::munmap(map_, map_len_);
#endif
  map_ = nullptr;
  map_len_ = 0;
  buffer_.clear();
  payload_ = {};
}

namespace {

// Reads the whole file into `out`; false on any I/O failure.
bool ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return !in.bad();
}

}  // namespace

CheckpointFault CheckpointReader::Open(const std::string& path,
                                       CheckpointReader* out,
                                       OpenMode mode) {
  CheckpointReader reader;
  CheckpointInfo info;

#if ATS_PERSIST_POSIX
  if (mode == OpenMode::kPreferMmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return CheckpointFault::kIoError;
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return CheckpointFault::kIoError;
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      // mmap rejects zero-length maps; classify directly (an empty file
      // is the 0-byte prefix of every checkpoint).
      ::close(fd);
      return CheckpointFault::kTruncated;
    }
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping outlives the descriptor
    if (map != MAP_FAILED) {
      const std::string_view bytes(static_cast<const char*>(map), size);
      const CheckpointFault fault = DecodeCheckpoint(bytes, &info);
      if (fault != CheckpointFault::kNone) {
        ::munmap(map, size);
        return fault;
      }
      reader.map_ = map;
      reader.map_len_ = size;
      reader.kind_ = info.kind;
      reader.epoch_ = info.epoch;
      reader.payload_ = info.payload;
      *out = std::move(reader);
      return CheckpointFault::kNone;
    }
    // mmap unavailable for this file: fall through to the buffered path.
  }
#endif

  if (!ReadWholeFile(path, &reader.buffer_)) {
    return CheckpointFault::kIoError;
  }
  const CheckpointFault fault = DecodeCheckpoint(reader.buffer_, &info);
  if (fault != CheckpointFault::kNone) return fault;
  reader.kind_ = info.kind;
  reader.epoch_ = info.epoch;
  // info.payload views reader.buffer_, which moves WITH the reader
  // (std::string's heap bytes keep their address through the move).
  reader.payload_ = info.payload;
  *out = std::move(reader);
  return CheckpointFault::kNone;
}

}  // namespace ats::persist
