// Persistence tier: CKP1 checkpoint files with torn-write-safe
// replacement and a zero-copy mmap open path.
//
// A checkpoint is one sketch frame (the existing KMV2 / BTK2 / SWN1 /
// TDK1 whole-buffer wire formats, unchanged) wrapped in a CKP1 header
// that makes the FILE self-describing and self-validating:
//
//   offset  size  field
//        0     4  magic      "CKP1" (0x31504b43 little-endian)
//        4     4  version    1
//        8     4  scheme_kind  which sketch family the payload frames
//       12     8  epoch      stream position the payload covers
//       20     8  payload_len
//       28     -  payload    one whole-buffer sketch frame, verbatim
//     28+L     4  checksum   FNV-1a over ALL preceding bytes
//
// Durability contract (CheckpointWriter::Write): the bytes are written
// to `path + ".tmp"`, fsync'd, renamed over `path`, and the parent
// directory fsync'd. A crash -- including SIGKILL -- at ANY byte leaves
// `path` holding either the complete previous checkpoint or the
// complete new one; a torn file can exist only under the temp name,
// which no reader opens. The kill-and-recover tool (tools/) loops this
// claim under real SIGKILLs.
//
// Fail-closed recovery: decoding classifies damage with a typed
// CheckpointFault in a fixed, normative order (documented at
// DecodeCheckpoint below and in docs/WIRE_FORMAT.md), and
// RestoreFromCheckpoint validates EVERYTHING -- header, checksum, and
// the wrapped sketch frame -- before assigning the target, so a failed
// open of a truncated, bit-flipped, or foreign file leaves the
// in-memory target byte-identical.
//
// Zero-copy open: CheckpointReader::OpenView maps the file (PROT_READ,
// private) and exposes the payload as a bounds-checked string_view into
// the mapping, ready for the existing DeserializeView parsers -- no
// eager materialization. Where mmap is unavailable (or fails), the
// reader falls back to one buffered read with identical semantics.
#ifndef ATS_PERSIST_CHECKPOINT_H_
#define ATS_PERSIST_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace ats::persist {

// Which sketch family the wrapped payload frame belongs to. The value
// is part of the wire format -- never renumber.
enum class SchemeKind : uint32_t {
  kKmv = 1,              // KMV2 (sketch/kmv.h)
  kBottomK = 2,          // BTK2 (core/bottom_k.h)
  kSlidingWindow = 3,    // SWN1 (samplers/sliding_window.h)
  kTimeDecay = 4,        // TDK1 (samplers/time_decay.h)
  kMultiStratified = 5,  // MSS1 (samplers/multi_stratified.h)
  kVarianceSized = 6,    // VSZ1 (samplers/variance_sized.h)
  kMultiObjective = 7,   // MOB1 (samplers/multi_objective.h)
  kBudget = 8,           // BGT1 (samplers/budget_sampler.h)
  kPriority = 9,         // PSM2 (core/bottom_k.h)
  kTheta = 10,           // THT2 (sketch/theta.h)
  kGroupDistinct = 11,   // GDS2 (sketch/group_distinct.h)
};

inline constexpr uint32_t kMinSchemeKind = 1;
inline constexpr uint32_t kMaxSchemeKind = 11;

// Why a checkpoint file failed to open. Mirrors FrameFault
// (util/serialize.h) with the file-level causes a wire frame cannot
// have: kIoError (nothing readable to classify) and kBadKind /
// kBadPayload (the wrapper is intact but wraps the wrong family or a
// frame its family rejects).
enum class CheckpointFault : uint8_t {
  kNone = 0,     // opened and validated
  kIoError,      // open/stat/read/map failed; no bytes to classify
  kTruncated,    // shorter than the header, or than the declared length
  kBadMagic,     // not a CKP1 file
  kBadVersion,   // version 0 or from the future
  kBadKind,      // scheme_kind outside [kMin, kMax], or not the expected
  kCorruptBody,  // length/checksum/trailing-byte damage
  kBadPayload,   // wrapper intact; sketch frame failed family validation
};

const char* CheckpointFaultName(CheckpointFault fault);

inline constexpr uint32_t kCheckpointMagic = 0x31504b43u;  // "CKP1"
inline constexpr uint32_t kCheckpointVersion = 1;
inline constexpr size_t kCheckpointHeaderSize =
    3 * sizeof(uint32_t) + 2 * sizeof(uint64_t);  // 28
// Header plus the trailing checksum: file size minus payload size.
inline constexpr size_t kCheckpointOverhead =
    kCheckpointHeaderSize + sizeof(uint32_t);  // 32

// Encodes a complete checkpoint image (header + payload + checksum).
std::string EncodeCheckpoint(SchemeKind kind, uint64_t epoch,
                             std::string_view payload);

// A decoded checkpoint; `payload` points into the caller's bytes.
struct CheckpointInfo {
  SchemeKind kind = SchemeKind::kKmv;
  uint64_t epoch = 0;
  std::string_view payload;
};

// Validates a checkpoint image and extracts its fields. Classification
// is outermost-defect-first, and this order is normative (the fuzz
// sweep pins it): fewer bytes than the 28-byte header -> kTruncated;
// foreign magic -> kBadMagic; version 0 or > kCheckpointVersion ->
// kBadVersion; scheme_kind outside [kMinSchemeKind, kMaxSchemeKind] ->
// kBadKind; fewer bytes than
// header + payload_len + checksum -> kTruncated; MORE bytes than
// declared (trailing junk) -> kCorruptBody; checksum mismatch ->
// kCorruptBody. The wrapped sketch frame is NOT parsed here -- that is
// RestoreFromCheckpoint's last step (-> kBadPayload).
CheckpointFault DecodeCheckpoint(std::string_view bytes,
                                 CheckpointInfo* out);

// Atomic write-rename checkpointing. Stateless: each Write is one
// durable replacement of `path`. Single-writer per path (concurrent
// writers would race on the temp name).
class CheckpointWriter {
 public:
  // Durably replaces `path` with the checkpoint image: write to
  // `path + ".tmp"`, fsync, rename, fsync the parent directory.
  // Returns kNone on success, kIoError on any filesystem failure (the
  // previous checkpoint, if any, is left untouched).
  static CheckpointFault Write(const std::string& path, SchemeKind kind,
                               uint64_t epoch, std::string_view payload);
};

enum class OpenMode : uint8_t {
  kPreferMmap,  // map the file; fall back to a buffered read
  kBuffered,    // always one read into an owned buffer
};

// An opened, fully validated checkpoint. Owns its backing bytes (the
// mapping or the buffer): kind()/epoch()/payload() are valid for the
// reader's lifetime. Move-only.
class CheckpointReader {
 public:
  CheckpointReader() = default;
  CheckpointReader(CheckpointReader&& other) noexcept { Swap(other); }
  CheckpointReader& operator=(CheckpointReader&& other) noexcept {
    if (this != &other) {
      Release();
      Swap(other);
    }
    return *this;
  }
  CheckpointReader(const CheckpointReader&) = delete;
  CheckpointReader& operator=(const CheckpointReader&) = delete;
  ~CheckpointReader() { Release(); }

  // The zero-copy open path: validate, then expose payload() as a view
  // into the private read-only mapping -- hand it straight to the
  // family's DeserializeView. Falls back to OpenBuffered where mmap is
  // unavailable. On any fault `*out` is left untouched.
  static CheckpointFault OpenView(const std::string& path,
                                  CheckpointReader* out) {
    return Open(path, out, OpenMode::kPreferMmap);
  }
  static CheckpointFault OpenBuffered(const std::string& path,
                                      CheckpointReader* out) {
    return Open(path, out, OpenMode::kBuffered);
  }
  static CheckpointFault Open(const std::string& path, CheckpointReader* out,
                              OpenMode mode);

  SchemeKind kind() const { return kind_; }
  uint64_t epoch() const { return epoch_; }
  // The wrapped sketch frame, bounds-checked against the validated
  // declared length. Valid for the reader's lifetime.
  std::string_view payload() const { return payload_; }
  // True when payload() views an mmap'd file (the zero-copy path).
  bool mapped() const { return map_ != nullptr; }

 private:
  void Release();
  void Swap(CheckpointReader& other) {
    std::swap(kind_, other.kind_);
    std::swap(epoch_, other.epoch_);
    std::swap(buffer_, other.buffer_);
    std::swap(map_, other.map_);
    std::swap(map_len_, other.map_len_);
    std::swap(payload_, other.payload_);
  }

  SchemeKind kind_ = SchemeKind::kKmv;
  uint64_t epoch_ = 0;
  std::string buffer_;     // buffered path: owns the file image
  void* map_ = nullptr;    // mmap path: the private read-only mapping
  size_t map_len_ = 0;
  std::string_view payload_;
};

// Validate-before-mutate restore: opens `path`, checks the scheme kind,
// and eagerly parses the wrapped frame through the family's whole-buffer
// Deserialize. `*target` is assigned ONLY when every layer passes -- on
// any fault it is byte-identical to before the call. `Sketch` is any
// family with `static std::optional<Sketch> Deserialize(string_view)`
// (KmvSketch, BottomK, PrioritySampler, SlidingWindowSampler,
// TimeDecaySampler, MultiStratifiedSampler, VarianceSizedSampler,
// MultiObjectiveSampler, BudgetSampler).
template <typename Sketch>
CheckpointFault RestoreFromCheckpoint(const std::string& path,
                                      SchemeKind expected_kind,
                                      Sketch* target,
                                      uint64_t* epoch = nullptr,
                                      OpenMode mode = OpenMode::kPreferMmap) {
  CheckpointReader reader;
  const CheckpointFault fault = CheckpointReader::Open(path, &reader, mode);
  if (fault != CheckpointFault::kNone) return fault;
  if (reader.kind() != expected_kind) return CheckpointFault::kBadKind;
  std::optional<Sketch> parsed = Sketch::Deserialize(reader.payload());
  if (!parsed.has_value()) return CheckpointFault::kBadPayload;
  *target = std::move(*parsed);
  if (epoch != nullptr) *epoch = reader.epoch();
  return CheckpointFault::kNone;
}

}  // namespace ats::persist

#endif  // ATS_PERSIST_CHECKPOINT_H_
