#include "ats/baselines/varopt.h"

#include <algorithm>

#include "ats/util/check.h"

namespace ats {

VarOptSampler::VarOptSampler(size_t k, uint64_t seed) : k_(k), rng_(seed) {
  ATS_CHECK(k >= 1);
}

size_t VarOptSampler::size() const { return large_.size() + small_.size(); }

void VarOptSampler::Add(uint64_t key, double weight) {
  ATS_CHECK(weight > 0.0);
  if (size() < k_) {
    large_.emplace(weight, key);
    return;
  }
  // Overflow step: k+1 items. Find the new threshold tau' solving
  // sum_i min(1, w_i / tau') = k over current adjusted weights (small
  // items all carry tau), then drop exactly one item with probability
  // proportional to 1 - min(1, w_i / tau').
  large_.emplace(weight, key);
  double small_mass = tau_ * static_cast<double>(small_.size());
  std::vector<std::pair<double, uint64_t>> moved;  // demoted large items
  // Demote the smallest "large" items while they fall below the candidate
  // threshold.
  for (;;) {
    const size_t num_large = large_.size();
    ATS_DCHECK(num_large + small_.size() + moved.size() == k_ + 1);
    if (num_large == 0) break;
    const double w_min = large_.begin()->first;
    const bool must_move =
        num_large > k_ ||
        w_min * static_cast<double>(k_ - num_large) < small_mass;
    if (!must_move) break;
    moved.push_back(*large_.begin());
    small_mass += w_min;
    large_.erase(large_.begin());
  }
  const size_t num_large = large_.size();
  ATS_CHECK(num_large < k_ + 1);
  const double tau_new =
      small_mass / static_cast<double>(k_ - num_large);
  ATS_DCHECK(tau_new >= tau_ - 1e-12);

  // Drop one item: old small items each have probability 1 - tau/tau',
  // demoted items 1 - w/tau'; the probabilities sum to exactly 1.
  double u = rng_.NextDouble();
  bool dropped = false;
  for (size_t i = 0; i < moved.size(); ++i) {
    const double q = 1.0 - moved[i].first / tau_new;
    if (u < q) {
      moved.erase(moved.begin() + static_cast<std::ptrdiff_t>(i));
      dropped = true;
      break;
    }
    u -= q;
  }
  if (!dropped && small_.empty()) {
    // Floating-point slack: all drop mass was on demoted items.
    ATS_CHECK(!moved.empty());
    moved.pop_back();
    dropped = true;
  }
  if (!dropped) {
    const double q_old = 1.0 - tau_ / tau_new;
    const size_t idx =
        q_old > 0.0 ? std::min(small_.size() - 1,
                               static_cast<size_t>(u / q_old))
                    : small_.size() - 1;
    small_[idx] = small_.back();
    small_.pop_back();
  }
  for (const auto& [w, moved_key] : moved) small_.push_back(moved_key);
  tau_ = tau_new;
}

std::vector<VarOptSampler::Entry> VarOptSampler::Sample() const {
  std::vector<Entry> out;
  out.reserve(size());
  for (const auto& [w, key] : large_) {
    out.push_back(Entry{key, w, std::max(w, tau_)});
  }
  for (uint64_t key : small_) {
    out.push_back(Entry{key, tau_, tau_});
  }
  return out;
}

double VarOptSampler::EstimateTotal() const {
  double total = tau_ * static_cast<double>(small_.size());
  for (const auto& [w, key] : large_) total += std::max(w, tau_);
  return total;
}

}  // namespace ats
