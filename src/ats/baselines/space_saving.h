// Space-Saving [22] and Unbiased Space-Saving [30] sketches.
//
// Space-Saving keeps exactly `capacity` counters; an untracked arrival
// replaces the minimum counter and inherits its count + 1 (deterministic,
// overestimates). Unbiased Space-Saving replaces the *probabilistic*
// variant: the new item takes over the minimum counter with probability
// 1/(c_min + 1), which makes every count estimate unbiased and supports
// disaggregated subset sums -- it is the conceptual ancestor of the
// adaptive top-k sampler of Section 3.3.
#ifndef ATS_BASELINES_SPACE_SAVING_H_
#define ATS_BASELINES_SPACE_SAVING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "ats/core/random.h"

namespace ats {

class SpaceSavingBase {
 public:
  explicit SpaceSavingBase(size_t capacity);
  virtual ~SpaceSavingBase() = default;

  void Add(uint64_t item);

  // Count estimate (0 if untracked). For classic Space-Saving this is an
  // upper bound; for Unbiased Space-Saving it is unbiased.
  double Estimate(uint64_t item) const;

  // Sum of estimates over a key subset (unbiased for the unbiased variant:
  // the disaggregated subset sum of [30]).
  double EstimatedSubsetCount(
      const std::function<bool(uint64_t)>& in_subset) const;

  std::vector<uint64_t> TopK(size_t k) const;

  size_t size() const { return counts_.size(); }
  size_t capacity() const { return capacity_; }

 protected:
  // Handles an untracked arrival when the sketch is full. `min_item` is a
  // minimum-count item and `min_count` its count.
  virtual void ReplaceMin(uint64_t item, uint64_t min_item,
                          double min_count) = 0;

  void SetCount(uint64_t item, double count);
  void RemoveItem(uint64_t item);

 private:
  size_t capacity_;
  std::unordered_map<uint64_t, double> counts_;
  // count -> item multimap to find a minimum quickly.
  std::multimap<double, uint64_t> by_count_;
  std::unordered_map<uint64_t, std::multimap<double, uint64_t>::iterator>
      handles_;
};

// Classic (deterministic) Space-Saving: new item inherits min_count + 1.
class SpaceSaving : public SpaceSavingBase {
 public:
  explicit SpaceSaving(size_t capacity) : SpaceSavingBase(capacity) {}

 protected:
  void ReplaceMin(uint64_t item, uint64_t min_item,
                  double min_count) override;
};

// Unbiased Space-Saving [30]: new item takes the min counter with
// probability 1/(min_count + 1); estimates are exactly unbiased.
class UnbiasedSpaceSaving : public SpaceSavingBase {
 public:
  UnbiasedSpaceSaving(size_t capacity, uint64_t seed)
      : SpaceSavingBase(capacity), rng_(seed) {}

 protected:
  void ReplaceMin(uint64_t item, uint64_t min_item,
                  double min_count) override;

 private:
  Xoshiro256 rng_;
};

}  // namespace ats

#endif  // ATS_BASELINES_SPACE_SAVING_H_
