// FrequentItems sketch: the Misra-Gries [23] variant with batched purges
// used by Apache DataSketches [1, 2] -- the Figure 3 comparator.
//
// The sketch keeps a map of at most `capacity` counters. When the map
// overflows, a purge subtracts the median counter value from every counter
// and removes the non-positive ones (the batched equivalent of the classic
// decrement-all step, which is what makes updates fast). `offset` tracks
// the cumulative subtracted mass, so each tracked item's count estimate is
// bounded by [count, count + offset]. Following Section 3.3, the effective
// size reported for comparisons is 0.75x the allocated table.
#ifndef ATS_BASELINES_FREQUENT_ITEMS_H_
#define ATS_BASELINES_FREQUENT_ITEMS_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ats {

class FrequentItemsSketch {
 public:
  // `table_size`: allocated hash-table size. The sketch purges when the
  // number of tracked items exceeds 0.75 * table_size (the load factor the
  // paper's comparison uses as the effective size).
  explicit FrequentItemsSketch(size_t table_size);

  void Add(uint64_t item, int64_t count = 1);

  // Upper-bound estimate of the item's count (0 if untracked).
  int64_t EstimateUpper(uint64_t item) const;

  // Lower-bound (guaranteed) estimate.
  int64_t EstimateLower(uint64_t item) const;

  // Top-k items by upper-bound estimate, descending.
  std::vector<uint64_t> TopK(size_t k) const;

  // Number of tracked items.
  size_t size() const { return counts_.size(); }

  // 0.75 * table_size: the effective capacity / reported size.
  size_t EffectiveCapacity() const { return capacity_; }

  int64_t offset() const { return offset_; }

 private:
  void Purge();

  size_t capacity_;
  int64_t offset_ = 0;  // cumulative mass subtracted by purges
  std::unordered_map<uint64_t, int64_t> counts_;
};

}  // namespace ats

#endif  // ATS_BASELINES_FREQUENT_ITEMS_H_
