// Reservoir sampling baselines.
//
// Both are adaptive-threshold samplers in disguise (Section 1.1, [13]):
//  * Uniform reservoir (Algorithm R) == bottom-k over Uniform(0,1)
//    priorities;
//  * Weighted reservoir (Efraimidis-Spirakis A-Res) == bottom-k over
//    priorities U^(1/w), equivalently exponential priorities -ln(U)/w.
// They are used in tests and benches as independent cross-checks of the
// bottom-k machinery.
#ifndef ATS_BASELINES_RESERVOIR_H_
#define ATS_BASELINES_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "ats/core/bottom_k.h"
#include "ats/core/random.h"

namespace ats {

// Classic Algorithm R uniform reservoir.
class ReservoirSampler {
 public:
  ReservoirSampler(size_t k, uint64_t seed);

  void Add(uint64_t key);

  const std::vector<uint64_t>& sample() const { return sample_; }
  int64_t seen() const { return seen_; }

 private:
  size_t k_;
  Xoshiro256 rng_;
  std::vector<uint64_t> sample_;
  int64_t seen_ = 0;
};

// Efraimidis-Spirakis A-Res weighted reservoir: keeps the k items with the
// k smallest exponential priorities -ln(U)/w, i.e. a weighted bottom-k.
class WeightedReservoirSampler {
 public:
  WeightedReservoirSampler(size_t k, uint64_t seed);

  void Add(uint64_t key, double weight);

  // Sampled keys (unspecified order).
  std::vector<uint64_t> SampleKeys() const;

  double Threshold() const { return sketch_.Threshold(); }
  size_t size() const { return sketch_.size(); }

 private:
  BottomK<uint64_t> sketch_;
  Xoshiro256 rng_;
};

}  // namespace ats

#endif  // ATS_BASELINES_RESERVOIR_H_
