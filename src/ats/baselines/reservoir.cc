#include "ats/baselines/reservoir.h"

#include "ats/util/check.h"

namespace ats {

ReservoirSampler::ReservoirSampler(size_t k, uint64_t seed)
    : k_(k), rng_(seed) {
  ATS_CHECK(k >= 1);
}

void ReservoirSampler::Add(uint64_t key) {
  ++seen_;
  if (sample_.size() < k_) {
    sample_.push_back(key);
    return;
  }
  const uint64_t j = rng_.NextBelow(static_cast<uint64_t>(seen_));
  if (j < k_) sample_[j] = key;
}

WeightedReservoirSampler::WeightedReservoirSampler(size_t k, uint64_t seed)
    : sketch_(k), rng_(seed) {}

void WeightedReservoirSampler::Add(uint64_t key, double weight) {
  ATS_CHECK(weight > 0.0);
  sketch_.Offer(rng_.NextExponential() / weight, key);
}

std::vector<uint64_t> WeightedReservoirSampler::SampleKeys() const {
  std::vector<uint64_t> out;
  out.reserve(sketch_.size());
  for (uint64_t key : sketch_.store().payloads()) out.push_back(key);
  return out;
}

}  // namespace ats
