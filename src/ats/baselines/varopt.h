// VarOpt sampling (Cohen, Duffield, Kaplan, Lund, Thorup [7]):
// variance-optimal fixed-size weighted sampling without replacement,
// referenced in Section 1.1 as the other main technique for drawing
// exactly-k weighted samples.
//
// The sketch keeps k items split into "large" items (retained with
// probability 1, carrying their exact weights) and "small" items
// (retained with adjusted weight tau, the threshold solving
// sum_i min(1, w_i/tau) = k). The subset-sum estimator assigns each
// retained item the value max(w_i, tau). VarOpt minimizes the variance of
// subset-sum estimates among all k-size designs (it implements the ideal
// inclusion probabilities min(1, w_i/tau)), so it is the quality bar the
// adaptive bottom-k samplers are measured against in the ablation bench.
#ifndef ATS_BASELINES_VAROPT_H_
#define ATS_BASELINES_VAROPT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "ats/core/random.h"

namespace ats {

class VarOptSampler {
 public:
  struct Entry {
    uint64_t key = 0;
    double weight = 0.0;           // original weight
    double adjusted_weight = 0.0;  // estimator value: max(weight, tau)
  };

  VarOptSampler(size_t k, uint64_t seed);

  // Feeds one weighted item.
  void Add(uint64_t key, double weight);

  // Current threshold tau (0 while underfull).
  double Tau() const { return tau_; }

  size_t size() const;
  size_t k() const { return k_; }

  // The retained sample with adjusted weights; summing adjusted weights
  // over a key subset is an unbiased subset-sum estimate.
  std::vector<Entry> Sample() const;

  // Unbiased estimate of the total weight (== sum of adjusted weights).
  double EstimateTotal() const;

 private:
  size_t k_;
  Xoshiro256 rng_;
  double tau_ = 0.0;
  // Large items (weight > tau), keyed for O(log) smallest-large access.
  std::multimap<double, uint64_t> large_;  // weight -> key
  // Small items (adjusted weight tau each).
  std::vector<uint64_t> small_;
};

}  // namespace ats

#endif  // ATS_BASELINES_VAROPT_H_
