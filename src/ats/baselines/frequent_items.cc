#include "ats/baselines/frequent_items.h"

#include <algorithm>

#include "ats/util/check.h"

namespace ats {

FrequentItemsSketch::FrequentItemsSketch(size_t table_size)
    : capacity_(std::max<size_t>(1, table_size * 3 / 4)) {
  ATS_CHECK(table_size >= 2);
}

void FrequentItemsSketch::Add(uint64_t item, int64_t count) {
  ATS_CHECK(count > 0);
  auto [it, inserted] = counts_.try_emplace(item, 0);
  it->second += count;
  if (inserted && counts_.size() > capacity_) Purge();
}

void FrequentItemsSketch::Purge() {
  // Subtract the (approximate) median counter from everything and drop
  // non-positive counters: the DataSketches batched decrement.
  std::vector<int64_t> values;
  values.reserve(counts_.size());
  for (const auto& [item, c] : counts_) values.push_back(c);
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const int64_t median = std::max<int64_t>(1, values[mid]);
  offset_ += median;
  for (auto it = counts_.begin(); it != counts_.end();) {
    it->second -= median;
    it = it->second <= 0 ? counts_.erase(it) : std::next(it);
  }
}

int64_t FrequentItemsSketch::EstimateUpper(uint64_t item) const {
  const auto it = counts_.find(item);
  return it == counts_.end() ? 0 : it->second + offset_;
}

int64_t FrequentItemsSketch::EstimateLower(uint64_t item) const {
  const auto it = counts_.find(item);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<uint64_t> FrequentItemsSketch::TopK(size_t k) const {
  std::vector<std::pair<int64_t, uint64_t>> items;
  items.reserve(counts_.size());
  for (const auto& [item, c] : counts_) items.emplace_back(c, item);
  const size_t kk = std::min(k, items.size());
  std::partial_sort(items.begin(),
                    items.begin() + static_cast<std::ptrdiff_t>(kk),
                    items.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<uint64_t> out;
  out.reserve(kk);
  for (size_t i = 0; i < kk; ++i) out.push_back(items[i].second);
  return out;
}

}  // namespace ats
