#include "ats/baselines/space_saving.h"

#include <algorithm>

#include "ats/util/check.h"

namespace ats {

SpaceSavingBase::SpaceSavingBase(size_t capacity) : capacity_(capacity) {
  ATS_CHECK(capacity >= 1);
}

void SpaceSavingBase::SetCount(uint64_t item, double count) {
  const auto hit = handles_.find(item);
  if (hit != handles_.end()) by_count_.erase(hit->second);
  counts_[item] = count;
  handles_[item] = by_count_.emplace(count, item);
}

void SpaceSavingBase::RemoveItem(uint64_t item) {
  const auto hit = handles_.find(item);
  ATS_CHECK(hit != handles_.end());
  by_count_.erase(hit->second);
  handles_.erase(hit);
  counts_.erase(item);
}

void SpaceSavingBase::Add(uint64_t item) {
  const auto it = counts_.find(item);
  if (it != counts_.end()) {
    SetCount(item, it->second + 1.0);
    return;
  }
  if (counts_.size() < capacity_) {
    SetCount(item, 1.0);
    return;
  }
  const auto min_it = by_count_.begin();
  ReplaceMin(item, min_it->second, min_it->first);
}

double SpaceSavingBase::Estimate(uint64_t item) const {
  const auto it = counts_.find(item);
  return it == counts_.end() ? 0.0 : it->second;
}

double SpaceSavingBase::EstimatedSubsetCount(
    const std::function<bool(uint64_t)>& in_subset) const {
  double total = 0.0;
  for (const auto& [item, c] : counts_) {
    if (in_subset(item)) total += c;
  }
  return total;
}

std::vector<uint64_t> SpaceSavingBase::TopK(size_t k) const {
  std::vector<uint64_t> out;
  out.reserve(std::min(k, by_count_.size()));
  for (auto it = by_count_.rbegin();
       it != by_count_.rend() && out.size() < k; ++it) {
    out.push_back(it->second);
  }
  return out;
}

void SpaceSaving::ReplaceMin(uint64_t item, uint64_t min_item,
                             double min_count) {
  RemoveItem(min_item);
  SetCount(item, min_count + 1.0);
}

void UnbiasedSpaceSaving::ReplaceMin(uint64_t item, uint64_t min_item,
                                     double min_count) {
  // The min counter grows by 1 unconditionally; ownership transfers to the
  // newcomer with probability 1/(min_count + 1), which makes each item's
  // count estimate unbiased (Unbiased Space-Saving, [30]).
  if (rng_.NextDouble() * (min_count + 1.0) < 1.0) {
    RemoveItem(min_item);
    SetCount(item, min_count + 1.0);
  } else {
    SetCount(min_item, min_count + 1.0);
  }
}

}  // namespace ats
