#include "ats/sketch/theta.h"

#include <algorithm>
#include <utility>

#include "ats/util/check.h"

namespace {
constexpr uint32_t kThetaMagic = 0x54485432;  // "THT2"
constexpr uint32_t kThetaVersion = 1;
}  // namespace

namespace ats {

ThetaSketch::ThetaSketch(size_t k, uint64_t hash_salt)
    : kmv_(k, 1.0, hash_salt) {}

ThetaSketch::ThetaSketch() : union_mode_(true), kmv_(1) {}

void ThetaSketch::AddKey(uint64_t key) {
  ATS_CHECK_MSG(!union_mode_, "cannot add keys to a union result");
  kmv_.AddKey(key);
}

size_t ThetaSketch::AddKeys(std::span<const uint64_t> keys) {
  ATS_CHECK_MSG(!union_mode_, "cannot add keys to a union result");
  return kmv_.AddKeys(keys);
}

double ThetaSketch::Theta() const {
  return union_mode_ ? union_theta_ : kmv_.Threshold();
}

size_t ThetaSketch::size() const {
  return union_mode_ ? union_retained_.size() : kmv_.size();
}

double ThetaSketch::Estimate() const {
  return static_cast<double>(size()) / Theta();
}

std::vector<double> ThetaSketch::RetainedPriorities() const {
  if (union_mode_) return union_retained_;
  std::vector<double> out;
  out.reserve(kmv_.size());
  for (const auto& [priority, key] : kmv_.members()) {
    out.push_back(priority);
  }
  return out;
}

ThetaSketch ThetaSketch::Union(
    const std::vector<const ThetaSketch*>& inputs) {
  return UnionMany(inputs);
}

ThetaSketch ThetaSketch::UnionMany(
    std::span<const ThetaSketch* const> inputs) {
  ATS_CHECK(!inputs.empty());
  ThetaSketch out;
  out.union_theta_ = 1.0;
  for (const ThetaSketch* s : inputs) {
    out.union_theta_ = std::min(out.union_theta_, s->Theta());
  }
  // Gather every retained hash below the global theta, then sort + dedup
  // once. Union-mode inputs are already ascending, so the theta prune is
  // a binary search and the surviving prefix a bulk append; stream-mode
  // inputs contribute their (unsorted) canonical store column filtered
  // with one linear pass.
  std::vector<double>& retained = out.union_retained_;
  for (const ThetaSketch* s : inputs) {
    if (s->union_mode_) {
      const std::vector<double>& rs = s->union_retained_;
      const auto cut =
          std::lower_bound(rs.begin(), rs.end(), out.union_theta_);
      retained.insert(retained.end(), rs.begin(), cut);
    } else {
      const auto& store = s->kmv_.store();
      for (double p : store.priorities()) {
        if (p < out.union_theta_) retained.push_back(p);
      }
    }
  }
  std::sort(retained.begin(), retained.end());
  retained.erase(std::unique(retained.begin(), retained.end()),
                 retained.end());
  return out;
}

void ThetaSketch::Merge(const ThetaSketch& other) {
  if (&other == this) return;
  // Stream sketches must share the key-universe hashing; a union result
  // no longer carries a salt (its inputs were already checked).
  if (!union_mode_ && !other.union_mode_) {
    ATS_CHECK(kmv_.hash_salt() == other.kmv_.hash_salt());
  }
  *this = Union({this, &other});
}

void ThetaSketch::SerializeTo(ByteWriter& w) const {
  WriteSketchHeader(w, kThetaMagic, kThetaVersion);
  w.WriteU32(union_mode_ ? 1 : 0);
  if (!union_mode_) {
    kmv_.SerializeTo(w);
    return;
  }
  w.WriteDouble(union_theta_);
  w.WriteU64(union_retained_.size());
  for (double p : union_retained_) w.WriteDouble(p);
}

std::optional<ThetaSketch> ThetaSketch::Deserialize(ByteReader& r) {
  if (!ReadSketchHeader(r, kThetaMagic, kThetaVersion)) return std::nullopt;
  const auto union_mode = r.ReadU32();
  if (!union_mode) return std::nullopt;
  ThetaSketch sketch;
  if (*union_mode == 0) {
    auto kmv = KmvSketch::Deserialize(r);
    if (!kmv) return std::nullopt;
    sketch.union_mode_ = false;
    sketch.kmv_ = std::move(*kmv);
    return sketch;
  }
  const auto theta = r.ReadDouble();
  const auto count = r.ReadU64();
  if (!theta || !count) return std::nullopt;
  if (!(*theta > 0.0) || *theta > 1.0) return std::nullopt;
  double prev = 0.0;
  for (uint64_t i = 0; i < *count; ++i) {
    const auto p = r.ReadDouble();
    if (!p) return std::nullopt;
    // Ascending, distinct, strictly inside (0, theta).
    if (!(*p > prev) || *p >= *theta) return std::nullopt;
    sketch.union_retained_.push_back(*p);
    prev = *p;
  }
  sketch.union_theta_ = *theta;
  return sketch;
}

}  // namespace ats
