#include "ats/sketch/theta.h"

#include "ats/util/check.h"

namespace ats {

ThetaSketch::ThetaSketch(size_t k, uint64_t hash_salt)
    : kmv_(k, 1.0, hash_salt) {}

ThetaSketch::ThetaSketch() : union_mode_(true), kmv_(1) {}

void ThetaSketch::AddKey(uint64_t key) {
  ATS_CHECK_MSG(!union_mode_, "cannot add keys to a union result");
  kmv_.AddKey(key);
}

double ThetaSketch::Theta() const {
  return union_mode_ ? union_theta_ : kmv_.Threshold();
}

size_t ThetaSketch::size() const {
  return union_mode_ ? union_retained_.size() : kmv_.size();
}

double ThetaSketch::Estimate() const {
  return static_cast<double>(size()) / Theta();
}

std::vector<double> ThetaSketch::RetainedPriorities() const {
  std::vector<double> out;
  if (union_mode_) {
    out.assign(union_retained_.begin(), union_retained_.end());
  } else {
    out.reserve(kmv_.size());
    for (const auto& [priority, key] : kmv_.members()) {
      out.push_back(priority);
    }
  }
  return out;
}

ThetaSketch ThetaSketch::Union(
    const std::vector<const ThetaSketch*>& inputs) {
  ATS_CHECK(!inputs.empty());
  ThetaSketch out;
  out.union_theta_ = 1.0;
  for (const ThetaSketch* s : inputs) {
    out.union_theta_ = std::min(out.union_theta_, s->Theta());
  }
  for (const ThetaSketch* s : inputs) {
    for (double p : s->RetainedPriorities()) {
      if (p < out.union_theta_) out.union_retained_.insert(p);
    }
  }
  return out;
}

}  // namespace ats
