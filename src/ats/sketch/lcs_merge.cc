#include "ats/sketch/lcs_merge.h"

#include <algorithm>

namespace {
constexpr uint32_t kLcsMagic = 0x4c435332;  // "LCS2"
constexpr uint32_t kLcsVersion = 1;
}  // namespace

namespace ats {

LcsSketch LcsSketch::FromKmv(const KmvSketch& kmv) {
  LcsSketch out;
  const double theta = kmv.Threshold();
  for (const auto& [priority, key] : kmv.members()) {
    out.items_.emplace(priority, theta);
  }
  return out;
}

void LcsSketch::Merge(const LcsSketch& other) {
  if (&other == this) return;
  for (const auto& [priority, threshold] : other.items_) {
    auto [it, inserted] = items_.emplace(priority, threshold);
    if (!inserted) it->second = std::max(it->second, threshold);
  }
}

void LcsSketch::SerializeTo(ByteWriter& w) const {
  WriteSketchHeader(w, kLcsMagic, kLcsVersion);
  w.WriteU64(items_.size());
  for (const auto& [priority, threshold] : items_) {
    w.WriteDouble(priority);
    w.WriteDouble(threshold);
  }
}

std::optional<LcsSketch> LcsSketch::Deserialize(ByteReader& r) {
  if (!ReadSketchHeader(r, kLcsMagic, kLcsVersion)) return std::nullopt;
  const auto count = r.ReadU64();
  if (!count) return std::nullopt;
  LcsSketch sketch;
  for (uint64_t i = 0; i < *count; ++i) {
    const auto priority = r.ReadDouble();
    const auto threshold = r.ReadDouble();
    if (!priority || !threshold) return std::nullopt;
    if (*priority <= 0.0 || *threshold <= 0.0 || *priority >= *threshold) {
      return std::nullopt;
    }
    sketch.items_.emplace(*priority, *threshold);
  }
  if (sketch.items_.size() != *count) return std::nullopt;
  return sketch;
}

double LcsSketch::Estimate() const {
  double total = 0.0;
  for (const auto& [priority, threshold] : items_) {
    total += 1.0 / threshold;
  }
  return total;
}

}  // namespace ats
