#include "ats/sketch/lcs_merge.h"

#include <algorithm>

#include "ats/util/serialize.h"

namespace {
constexpr uint32_t kLcsMagic = 0x4c435301;  // "LCS" + version 1
}  // namespace

namespace ats {

LcsSketch LcsSketch::FromKmv(const KmvSketch& kmv) {
  LcsSketch out;
  const double theta = kmv.Threshold();
  for (const auto& [priority, key] : kmv.members()) {
    out.items_.emplace(priority, theta);
  }
  return out;
}

void LcsSketch::Merge(const LcsSketch& other) {
  for (const auto& [priority, threshold] : other.items_) {
    auto [it, inserted] = items_.emplace(priority, threshold);
    if (!inserted) it->second = std::max(it->second, threshold);
  }
}

std::string LcsSketch::SerializeToString() const {
  ByteWriter w;
  w.WriteU32(kLcsMagic);
  w.WriteU64(items_.size());
  for (const auto& [priority, threshold] : items_) {
    w.WriteDouble(priority);
    w.WriteDouble(threshold);
  }
  return w.Take();
}

std::optional<LcsSketch> LcsSketch::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  const auto magic = r.ReadU32();
  if (!magic || *magic != kLcsMagic) return std::nullopt;
  const auto count = r.ReadU64();
  if (!count) return std::nullopt;
  LcsSketch sketch;
  for (uint64_t i = 0; i < *count; ++i) {
    const auto priority = r.ReadDouble();
    const auto threshold = r.ReadDouble();
    if (!priority || !threshold) return std::nullopt;
    if (*priority <= 0.0 || *threshold <= 0.0 || *priority >= *threshold) {
      return std::nullopt;
    }
    sketch.items_.emplace(*priority, *threshold);
  }
  if (!r.AtEnd() || sketch.items_.size() != *count) return std::nullopt;
  return sketch;
}

double LcsSketch::Estimate() const {
  double total = 0.0;
  for (const auto& [priority, threshold] : items_) {
    total += 1.0 / threshold;
  }
  return total;
}

}  // namespace ats
