// KMV / bottom-k distinct-counting sketch (Sections 3.4-3.5; [15], [3]).
//
// Every distinct key hashes to a coordinated priority in (0, 1]; the sketch
// keeps the k smallest distinct hash priorities. The adaptive threshold
// theta is the (k+1)-th smallest distinct priority seen (capped at the
// optional initial threshold), and the distinct-count estimate is the HT
// count  N_hat = (#retained)/theta  -- exact while unsaturated. The
// bottom-k threshold is fully substitutable, so the estimate is unbiased.
//
// The sketch also supports the weighted distinct counting of Section 3.4:
// with WeightedUniform priorities (R = U/w), the same structure samples
// paying users proportionally to spend while N_hat = sum_i 1/F_i(w_i T)
// still estimates the total population.
//
// Retention is delegated to the shared SampleStore (keys are the payload
// column); this class adds coordinated hashing, duplicate suppression,
// and the MergeableSketch wire format.
#ifndef ATS_SKETCH_KMV_H_
#define ATS_SKETCH_KMV_H_

#include <bit>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ats/core/random.h"
#include "ats/core/sample_store.h"
#include "ats/core/threshold.h"
#include "ats/util/memory.h"
#include "ats/util/serialize.h"

namespace ats {

class KmvSketch {
 public:
  // k: sketch capacity. `initial_threshold` (default 1 = the whole unit
  // interval) lets composite sketches start pre-filtered, as the grouped
  // sketch of Section 3.6 requires.
  explicit KmvSketch(size_t k, double initial_threshold = 1.0,
                     uint64_t hash_salt = 0);

  // Feeds one key (duplicates are ignored -- coordinated hashing makes the
  // priority a function of the key). Amortized O(1): acceptance tests the
  // store's chunked bound and accepted priorities are appended, not
  // heap-sifted. Returns true iff the key's priority is accepted below
  // the current bound.
  bool AddKey(uint64_t key);

  // Batched ingest: equivalent to calling AddKey() on each key in order
  // (same state, same acceptance count), but runs the fused
  // hash->priority->pre-filter pipeline: each 64-key block is hashed into
  // a dense priority column and culled against the acceptance bound
  // before the per-key duplicate check. Returns the number of keys whose
  // priority is accepted (duplicates of accepted keys count).
  size_t AddKeys(std::span<const uint64_t> keys);

  // Feeds a pre-computed unit-interval priority directly (used by merges
  // and by weighted variants). Duplicate priorities are treated as
  // duplicate keys.
  bool OfferPriority(double priority, uint64_t key);

  // Current threshold theta in (0, 1].
  double Threshold() const { return store_.Threshold(); }

  // Number of retained distinct priorities.
  size_t size() const { return store_.size(); }

  bool saturated() const { return store_.saturated(); }

  // Live heap bytes of the sketch state (util/memory.h convention): the
  // store's SoA columns plus the modeled duplicate-suppression hash set.
  // O(1), non-canonicalizing.
  size_t MemoryFootprint() const {
    return store_.MemoryFootprint() + HashFootprint(seen_);
  }

  // Unbiased distinct-count estimate: size / theta.
  double Estimate() const;

  // Retained (priority, key) pairs, ascending by priority.
  std::vector<std::pair<double, uint64_t>> members() const;

  // Merges another KMV sketch over the SAME key universe hashing (same
  // salt): the result is the KMV sketch of the union of the streams, with
  // threshold min(theta_a, theta_b, merge evictions). This is the basic
  // bottom-k union baseline of Figure 4. Self-merge is a no-op.
  void Merge(const KmvSketch& other);

  // Threshold-pruned k-way union: observationally identical to merging
  // the inputs with Merge() in span order (same members, same theta --
  // coordinated hashing makes duplicate suppression order-independent),
  // but the global bound min(theta_this, theta_1, ..., theta_S) is taken
  // before any member moves and each input's priority column is
  // block-prefiltered against it, so the S-shard fan-in costs one
  // selection instead of S merge+compaction rounds (see
  // SampleStore::MergeMany). All inputs must share this sketch's hash
  // salt; inputs aliasing `this` are skipped.
  void MergeMany(std::span<const KmvSketch* const> others);

  // Zero-copy view over a whole serialized KMV frame (SerializeToString
  // layout): header and every entry validated once, entries exposed as a
  // bounds-checked span decoded lazily. Only the CANONICAL encoding is
  // accepted -- entries strictly ascending by priority, exactly as
  // SerializeTo emits them (Deserialize additionally tolerates permuted
  // entries; the ascending check is what lets the view reject duplicate
  // priorities without building a hash set). Borrows the frame's bytes.
  class FrameView {
   public:
    size_t k() const { return static_cast<size_t>(k_); }
    uint64_t hash_salt() const { return hash_salt_; }
    double initial_threshold() const { return initial_threshold_; }
    double threshold() const { return threshold_; }
    size_t size() const;
    double priority(size_t i) const;
    uint64_t key(size_t i) const;

   private:
    friend class KmvSketch;
    uint64_t k_ = 0;
    uint64_t hash_salt_ = 0;
    double initial_threshold_ = 1.0;
    double threshold_ = 1.0;
    std::string_view entries_;
  };

  // Parses a SerializeToString frame into a FrameView; nullopt on any
  // input Deserialize rejects plus non-canonical (non-ascending) entry
  // order. Allocates nothing: a hostile frame declaring a huge k cannot
  // reserve memory here (kMaxEagerReserve guards the Deserialize path).
  static std::optional<FrameView> DeserializeView(std::string_view frame);

  // Threshold-pruned k-way union straight off the wire: observationally
  // identical to deserializing every frame and merging the results with
  // Merge() in span order, but zero-copy and pruned at the global min
  // theta before any entry is decoded. Returns false -- leaving the
  // sketch observably unchanged -- if any frame fails validation or
  // carries a foreign hash salt; all frames are vetted before the first
  // one is applied (a salt mismatch is a validation failure here, where
  // the Merge path would ATS_CHECK-abort).
  bool MergeManyFrames(std::span<const std::string_view> frames);

  // Externally lowers theta (threshold composition, grouped merges);
  // purges members at/above the new threshold. The estimate stays a valid
  // HT count at the lowered threshold.
  void LowerThreshold(double t) { store_.LowerThreshold(t); }

  uint64_t hash_salt() const { return hash_salt_; }
  size_t k() const { return store_.k(); }

  const SampleStore<uint64_t>& store() const { return store_; }

  // Wire format for shipping sketches between nodes: versioned magic
  // header plus the full sketch state. Deserialize returns nullopt on
  // corrupt or foreign input.
  void SerializeTo(ByteWriter& w) const;
  static std::optional<KmvSketch> Deserialize(ByteReader& r);
  std::string SerializeToString() const { return SerializeSketch(*this); }
  static std::optional<KmvSketch> Deserialize(std::string_view bytes) {
    return DeserializeSketch<KmvSketch>(bytes);
  }

  // Typed rejection reason for a frame Deserialize would refuse: the
  // structural cause (truncated / foreign magic / future version /
  // checksum), or kCorruptBody when the frame is structurally sound but
  // an interior field or entry fails validation. kNone iff the frame
  // parses. Lets transports and aggregators count rejections per cause
  // and distinguish retry-able short reads from poison frames.
  static FrameFault DiagnoseFrame(std::string_view frame);

  static constexpr uint32_t kWireMagic = 0x4b4d5632;  // "KMV2"
  static constexpr uint32_t kWireVersion = 1;

 private:
  // Rebuilds seen_ from the retained priorities, shedding evicted ones.
  void CompactSeen();

  uint64_t hash_salt_;
  SampleStore<uint64_t> store_;  // priority column + key payload column
  // Priorities accepted below the threshold (bit patterns), for O(1)
  // duplicate-key suppression. May hold stale (since-evicted) priorities:
  // an evicted priority is >= the current threshold, so it is rejected
  // before the set is ever consulted -- staleness is harmless, and
  // OfferPriority compacts the set whenever the stale slack exceeds ~k,
  // keeping memory at O(k).
  std::unordered_set<uint64_t> seen_;
};

static_assert(MergeableSketch<KmvSketch>);

}  // namespace ats

#endif  // ATS_SKETCH_KMV_H_
