// KMV / bottom-k distinct-counting sketch (Sections 3.4-3.5; [15], [3]).
//
// Every distinct key hashes to a coordinated priority in (0, 1]; the sketch
// keeps the k smallest distinct hash priorities. The adaptive threshold
// theta is the (k+1)-th smallest distinct priority seen (capped at the
// optional initial threshold), and the distinct-count estimate is the HT
// count  N_hat = (#retained)/theta  -- exact while unsaturated. The
// bottom-k threshold is fully substitutable, so the estimate is unbiased.
//
// The sketch also supports the weighted distinct counting of Section 3.4:
// with WeightedUniform priorities (R = U/w), the same structure samples
// paying users proportionally to spend while N_hat = sum_i 1/F_i(w_i T)
// still estimates the total population.
#ifndef ATS_SKETCH_KMV_H_
#define ATS_SKETCH_KMV_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ats/core/random.h"
#include "ats/core/threshold.h"

namespace ats {

class KmvSketch {
 public:
  // k: sketch capacity. `initial_threshold` (default 1 = the whole unit
  // interval) lets composite sketches start pre-filtered, as the grouped
  // sketch of Section 3.6 requires.
  explicit KmvSketch(size_t k, double initial_threshold = 1.0,
                     uint64_t hash_salt = 0);

  // Feeds one key (duplicates are ignored -- coordinated hashing makes the
  // priority a function of the key). Returns true iff the key's priority
  // is currently retained.
  bool AddKey(uint64_t key);

  // Feeds a pre-computed unit-interval priority directly (used by merges
  // and by weighted variants). Duplicate priorities are treated as
  // duplicate keys.
  bool OfferPriority(double priority, uint64_t key);

  // Current threshold theta in (0, 1].
  double Threshold() const { return threshold_; }

  // Number of retained distinct priorities.
  size_t size() const { return members_.size(); }

  bool saturated() const { return saturated_; }

  // Unbiased distinct-count estimate: size / theta.
  double Estimate() const;

  // Retained (priority, key) pairs, ascending by priority.
  const std::map<double, uint64_t>& members() const { return members_; }

  // Merges another KMV sketch over the SAME key universe hashing (same
  // salt): the result is the KMV sketch of the union of the streams, with
  // threshold min(theta_a, theta_b, merge evictions). This is the basic
  // bottom-k union baseline of Figure 4.
  void Merge(const KmvSketch& other);

  uint64_t hash_salt() const { return hash_salt_; }
  size_t k() const { return k_; }

  // Wire format for shipping sketches between nodes: magic/version header
  // plus the full sketch state. Deserialize returns nullopt on corrupt or
  // foreign input.
  std::string SerializeToString() const;
  static std::optional<KmvSketch> Deserialize(std::string_view bytes);

 private:
  void EvictTop();

  size_t k_;
  double threshold_;
  bool saturated_ = false;
  uint64_t hash_salt_;
  std::map<double, uint64_t> members_;  // priority -> key, ascending
};

}  // namespace ats

#endif  // ATS_SKETCH_KMV_H_
