// Frequent-groups distinct counting (Section 3.6).
//
// GROUP BY distinct-count queries can create tens of millions of tiny
// sketches. Instead of a bottom-k sketch per group, this structure keeps
//   * m bottom-k (KMV) sketches for the m currently-largest groups, and
//   * one shared "general pool" of (group, hash) samples filtered at the
//     threshold T_max = max over the m promoted groups' thresholds.
// A new item of a promoted group goes to that group's sketch; otherwise it
// enters the pool if its hash priority is below T_max. When a pool group
// accumulates more than k sampled items, it is promoted: the promoted
// group with the LARGEST threshold is demoted (its items move back to the
// pool), so T_max is monotone non-increasing and the pool always holds a
// valid threshold sample. In effect the sampling rate adapts to the top m
// groups: the tolerated error for a small group is a percentage of the
// heavy groups' sizes, and most small groups store no items at all.
//
// Estimates: promoted group -> its KMV estimate; pool group -> (#pool
// items of the group) / T_max, an HT count at threshold T_max.
//
// The per-group sketches are SampleStore-backed KMV sketches, and the
// whole structure satisfies the MergeableSketch interface: Merge() takes
// the union of two grouped sketches (min pool threshold, per-group KMV
// merges) and the wire format nests the member sketches' bytes.
#ifndef ATS_SKETCH_GROUP_DISTINCT_H_
#define ATS_SKETCH_GROUP_DISTINCT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ats/sketch/kmv.h"
#include "ats/util/memory.h"
#include "ats/util/serialize.h"

namespace ats {

class GroupDistinctSketch {
 public:
  // m: number of promoted per-group sketches; k: per-sketch capacity.
  GroupDistinctSketch(size_t m, size_t k, uint64_t hash_salt = 0);

  // Feeds one (group, key) observation.
  void Add(uint64_t group, uint64_t key);

  // One (group, key) observation for the batched path.
  struct Observation {
    uint64_t group;
    uint64_t key;
  };

  // Batched ingest: equivalent to calling Add() on each observation in
  // order, but the per-(group, key) coordinated hash priorities are
  // computed for a whole 64-observation block up front (a dense,
  // vectorizable loop), so the routing stage never re-hashes. Routing
  // itself cannot be block-pre-filtered -- promoted groups accept above
  // the pool threshold -- so each observation still consults its group's
  // sketch, which is an O(1) bound test on the compaction store.
  void AddBatch(std::span<const Observation> observations);

  // Distinct-count estimate for a group (0 when the group has no sampled
  // items -- its true count is below the resolution T_max affords).
  double Estimate(uint64_t group) const;

  // Current pool threshold T_max.
  double PoolThreshold() const { return pool_threshold_; }

  bool IsPromoted(uint64_t group) const {
    return promoted_.contains(group);
  }

  // Total stored items (promoted sketches + pool): the memory cost.
  size_t StoredItems() const;

  // Live heap bytes (util/memory.h convention): the promoted sketches
  // recursively plus the modeled pool containers. O(groups), not
  // O(items): per-sketch footprints are O(1).
  size_t MemoryFootprint() const {
    size_t total = HashFootprint(promoted_) + HashFootprint(pool_);
    for (const auto& [group, sketch] : promoted_) {
      total += sketch.MemoryFootprint();
    }
    for (const auto& [group, priorities] : pool_) {
      total += TreeFootprint(priorities);
    }
    return total;
  }

  size_t NumPromoted() const { return promoted_.size(); }
  size_t PoolSize() const { return pool_.size(); }

  // All groups that currently have at least one sampled item.
  std::vector<uint64_t> GroupsWithSamples() const;

  // Union of two grouped sketches over the same (m, k, salt) parameters:
  // per-group KMV merges for groups promoted on both sides, adoption plus
  // demotion down to m otherwise, and pool union at the min pool
  // threshold. Estimates on the merged sketch remain valid HT counts.
  // Self-merge is a no-op.
  void Merge(const GroupDistinctSketch& other);

  // Threshold-pruned k-way union over the same (m, k, salt) parameters,
  // built on the k-way merge engine: the union pool threshold (min over
  // all inputs) is applied FIRST, so every subsequent per-group fold and
  // pool union filters at the final bound from the start; groups
  // promoted across several inputs are merged with ONE
  // KmvSketch::MergeMany selection each instead of a chain of pairwise
  // merges; and the m-bound demotions run once at the end.
  //
  // Semantics: the same union guarantees as a chain of pairwise Merge
  // calls -- identical pool-completeness/HT-validity invariants and, for
  // every group, an estimate built from the union of its observations.
  // The promoted SET and per-sketch thetas may differ from a particular
  // pairwise chain within the structure's heuristic freedom (pairwise
  // chains already differ between merge orders); the aggregation-tier
  // tests pin exact equality in the demotion-free regime and the
  // invariants under demotion pressure. Inputs aliasing `this` are
  // skipped.
  void MergeMany(std::span<const GroupDistinctSketch* const> others);

  size_t m() const { return m_; }
  size_t k() const { return k_; }
  uint64_t hash_salt() const { return hash_salt_; }

  // Wire format: versioned header, parameters, nested promoted KMV
  // sketches, then the pool.
  void SerializeTo(ByteWriter& w) const;
  static std::optional<GroupDistinctSketch> Deserialize(ByteReader& r);
  std::string SerializeToString() const { return SerializeSketch(*this); }
  static std::optional<GroupDistinctSketch> Deserialize(
      std::string_view bytes) {
    return DeserializeSketch<GroupDistinctSketch>(bytes);
  }

 private:
  // Shared routing core for Add/AddBatch: `priority` is the observation's
  // coordinated hash priority (already computed).
  void AddWithPriority(uint64_t group, uint64_t key, double priority);

  void RecomputePoolThreshold();
  void PurgePool();
  void MaybePromote(uint64_t group);
  // Moves the promoted sketch with the largest threshold back to the pool
  // (keeping only items below the pool threshold).
  void DemoteLargestThreshold();

  size_t m_;
  size_t k_;
  uint64_t hash_salt_;
  double pool_threshold_ = 1.0;
  // Pool insertions since the last RecomputePoolThreshold: bounds how
  // stale (high) the pool threshold may go under the lazy bound-drop
  // refresh trigger (see AddWithPriority).
  size_t pool_inserts_since_refresh_ = 0;
  std::unordered_map<uint64_t, KmvSketch> promoted_;
  // Pool: group -> set of retained hash priorities (dedup per group).
  std::unordered_map<uint64_t, std::set<double>> pool_;
};

static_assert(MergeableSketch<GroupDistinctSketch>);

}  // namespace ats

#endif  // ATS_SKETCH_GROUP_DISTINCT_H_
