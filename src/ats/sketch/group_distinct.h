// Frequent-groups distinct counting (Section 3.6).
//
// GROUP BY distinct-count queries can create tens of millions of tiny
// sketches. Instead of a bottom-k sketch per group, this structure keeps
//   * m bottom-k (KMV) sketches for the m currently-largest groups, and
//   * one shared "general pool" of (group, hash) samples filtered at the
//     threshold T_max = max over the m promoted groups' thresholds.
// A new item of a promoted group goes to that group's sketch; otherwise it
// enters the pool if its hash priority is below T_max. When a pool group
// accumulates more than k sampled items, it is promoted: the promoted
// group with the LARGEST threshold is demoted (its items move back to the
// pool), so T_max is monotone non-increasing and the pool always holds a
// valid threshold sample. In effect the sampling rate adapts to the top m
// groups: the tolerated error for a small group is a percentage of the
// heavy groups' sizes, and most small groups store no items at all.
//
// Estimates: promoted group -> its KMV estimate; pool group -> (#pool
// items of the group) / T_max, an HT count at threshold T_max.
#ifndef ATS_SKETCH_GROUP_DISTINCT_H_
#define ATS_SKETCH_GROUP_DISTINCT_H_

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "ats/sketch/kmv.h"

namespace ats {

class GroupDistinctSketch {
 public:
  // m: number of promoted per-group sketches; k: per-sketch capacity.
  GroupDistinctSketch(size_t m, size_t k, uint64_t hash_salt = 0);

  // Feeds one (group, key) observation.
  void Add(uint64_t group, uint64_t key);

  // Distinct-count estimate for a group (0 when the group has no sampled
  // items -- its true count is below the resolution T_max affords).
  double Estimate(uint64_t group) const;

  // Current pool threshold T_max.
  double PoolThreshold() const { return pool_threshold_; }

  bool IsPromoted(uint64_t group) const {
    return promoted_.contains(group);
  }

  // Total stored items (promoted sketches + pool): the memory cost.
  size_t StoredItems() const;

  size_t NumPromoted() const { return promoted_.size(); }
  size_t PoolSize() const { return pool_.size(); }

  // All groups that currently have at least one sampled item.
  std::vector<uint64_t> GroupsWithSamples() const;

 private:
  void RecomputePoolThreshold();
  void PurgePool();
  void MaybePromote(uint64_t group);

  size_t m_;
  size_t k_;
  uint64_t hash_salt_;
  double pool_threshold_ = 1.0;
  std::unordered_map<uint64_t, KmvSketch> promoted_;
  // Pool: group -> set of retained hash priorities (dedup per group).
  std::unordered_map<uint64_t, std::set<double>> pool_;
};

}  // namespace ats

#endif  // ATS_SKETCH_GROUP_DISTINCT_H_
