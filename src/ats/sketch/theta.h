// Theta sketch baseline (Dasgupta et al. [11]; Sections 3.4-3.5).
//
// A Theta sketch is a (threshold, retained-hash-set) pair. Streams are
// sketched exactly like KMV (theta = (k+1)-th smallest distinct hash), but
// the UNION rule differs from the bottom-k merge: the union threshold is
// theta = min over inputs, and every retained hash below theta is kept --
// the result may hold more than k hashes and is NOT re-capped. The union
// estimate is (#retained)/theta. This "1-goodness" merge is the baseline
// the generalized LCS merge of Section 3.5 (lcs_merge.h) improves upon.
//
// Stream mode delegates retention to the shared SampleStore via the KMV
// sketch; union mode holds the (uncapped) merged retained set directly.
// Merge() applies the Theta union rule pairwise, so the sketch satisfies
// the common MergeableSketch interface and ships between nodes.
#ifndef ATS_SKETCH_THETA_H_
#define ATS_SKETCH_THETA_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ats/sketch/kmv.h"
#include "ats/util/memory.h"
#include "ats/util/serialize.h"

namespace ats {

class ThetaSketch {
 public:
  // Sketches a stream with nominal capacity k (identical to KMV).
  explicit ThetaSketch(size_t k, uint64_t hash_salt = 0);

  void AddKey(uint64_t key);

  // Batched ingest through the fused hash->priority->pre-filter pipeline
  // (KmvSketch::AddKeys): equivalent to an AddKey loop in stream order.
  // Returns the number of keys accepted below the current theta.
  size_t AddKeys(std::span<const uint64_t> keys);

  double Theta() const;
  size_t size() const;

  // Live heap bytes of the sketch state (util/memory.h convention):
  // the wrapped KMV in stream mode, the dense retained vector in union
  // mode. O(1), non-canonicalizing.
  size_t MemoryFootprint() const {
    return kmv_.MemoryFootprint() + VectorFootprint(union_retained_);
  }

  // Distinct-count estimate: (#retained)/theta.
  double Estimate() const;

  // Union of several sketches under the Theta rule (min-theta, keep all
  // below it, no re-capping).
  static ThetaSketch Union(const std::vector<const ThetaSketch*>& inputs);

  // The k-way Theta union engine (Union above and Merge delegate here):
  // the min theta over all inputs is taken first, every input's retained
  // set is pruned against it -- union-mode inputs are sorted, so the
  // prune is one binary search and the tail is never touched -- and the
  // surviving hashes are merged with one sort + dedup pass instead of
  // per-hash ordered-set inserts.
  static ThetaSketch UnionMany(std::span<const ThetaSketch* const> inputs);

  // Pairwise Theta union in place: this becomes the union of this and
  // `other` (the result is in union mode). Self-merge is a no-op.
  void Merge(const ThetaSketch& other);

  bool union_mode() const { return union_mode_; }

  // Retained hash priorities (ascending).
  std::vector<double> RetainedPriorities() const;

  // Wire format: versioned magic header, mode flag, then either the
  // embedded KMV stream sketch or the union (theta, retained set).
  void SerializeTo(ByteWriter& w) const;
  static std::optional<ThetaSketch> Deserialize(ByteReader& r);
  std::string SerializeToString() const { return SerializeSketch(*this); }
  static std::optional<ThetaSketch> Deserialize(std::string_view bytes) {
    return DeserializeSketch<ThetaSketch>(bytes);
  }

 private:
  ThetaSketch();  // for Union / Deserialize results

  // Exactly one of these is active: stream mode wraps a KMV sketch; union
  // mode holds the merged retained set directly -- a sorted, distinct,
  // dense vector (the aggregation tier merges these with linear passes;
  // the previous std::set paid a node allocation per retained hash).
  bool union_mode_ = false;
  KmvSketch kmv_;
  double union_theta_ = 1.0;
  std::vector<double> union_retained_;  // ascending, distinct
};

static_assert(MergeableSketch<ThetaSketch>);

}  // namespace ats

#endif  // ATS_SKETCH_THETA_H_
