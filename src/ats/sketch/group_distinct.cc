#include "ats/sketch/group_distinct.h"

#include <algorithm>

#include "ats/util/check.h"

namespace {
constexpr uint32_t kGroupDistinctMagic = 0x47445332;  // "GDS2"
constexpr uint32_t kGroupDistinctVersion = 1;
}  // namespace

namespace ats {

namespace {

// Per-(group, key) coordinated priority: coordination is only needed
// within a group, so the group id perturbs the salt.
double GroupKeyPriority(uint64_t group, uint64_t key, uint64_t salt) {
  return HashToUnit(HashKey(key, salt ^ Mix64(group)));
}

}  // namespace

GroupDistinctSketch::GroupDistinctSketch(size_t m, size_t k,
                                         uint64_t hash_salt)
    : m_(m), k_(k), hash_salt_(hash_salt) {
  ATS_CHECK(m >= 1);
  ATS_CHECK(k >= 1);
}

void GroupDistinctSketch::Add(uint64_t group, uint64_t key) {
  AddWithPriority(group, key, GroupKeyPriority(group, key, hash_salt_));
}

void GroupDistinctSketch::AddBatch(
    std::span<const Observation> observations) {
  // Hash a whole block into a dense priority column before routing: the
  // per-item salt (group-perturbed) keeps coordination within each group
  // while the straight-line loop vectorizes. Routing consults per-group
  // state, so the block pre-filter of the plain stores does not apply.
  constexpr size_t kBlock = 64;
  double priorities[kBlock];
  size_t i = 0;
  for (; i + kBlock <= observations.size(); i += kBlock) {
    for (size_t j = 0; j < kBlock; ++j) {
      priorities[j] = GroupKeyPriority(observations[i + j].group,
                                       observations[i + j].key, hash_salt_);
    }
    for (size_t j = 0; j < kBlock; ++j) {
      AddWithPriority(observations[i + j].group, observations[i + j].key,
                      priorities[j]);
    }
  }
  for (; i < observations.size(); ++i) {
    Add(observations[i].group, observations[i].key);
  }
}

void GroupDistinctSketch::AddWithPriority(uint64_t group, uint64_t key,
                                          double priority) {
  auto it = promoted_.find(group);
  if (it == promoted_.end() && promoted_.size() < m_) {
    // Bootstrap: the first m distinct groups get their own sketch.
    it = promoted_
             .emplace(group, KmvSketch(k_, pool_threshold_, hash_salt_))
             .first;
  }
  if (it != promoted_.end()) {
    // Track the sketch's O(1) acceptance bound, not its canonical
    // Threshold(): querying the latter would force a store compaction per
    // accepted offer, forfeiting amortized-O(1) ingest. The bound only
    // tightens when the store compacts, which is exactly when the
    // sketch's threshold has dropped in a chunk; between chunks the pool
    // bound is merely stale-HIGH, which keeps the pool complete (every
    // item below it was admitted) and all HT estimates valid --
    // threshold substitutability again.
    const double bound_before = it->second.store().AcceptBound();
    it->second.OfferPriority(priority, key);
    if (it->second.store().AcceptBound() < bound_before &&
        bound_before >= pool_threshold_) {
      // The max-threshold sketch may have shrunk: refresh the pool bound.
      RecomputePoolThreshold();
    }
    return;
  }
  if (priority < pool_threshold_) {
    auto& samples = pool_[group];
    samples.insert(priority);
    if (samples.size() > k_) {
      MaybePromote(group);
    } else if (++pool_inserts_since_refresh_ > k_ + 64) {
      // Staleness backstop. The in-path bound-drop trigger above can be
      // disarmed when a const query canonicalizes the max-threshold
      // sketch OUTSIDE AddWithPriority (its bound then sits below the
      // pool threshold, so no later in-path drop satisfies the trigger).
      // A frozen stale-high pool threshold stays statistically valid but
      // lets the pool absorb items a fresh T_max would reject, so cap
      // the staleness: refresh after every ~k pool insertions.
      RecomputePoolThreshold();
    }
  }
}

void GroupDistinctSketch::MaybePromote(uint64_t group) {
  // Build the newcomer's sketch from its pool items; its items were
  // filtered at (past, larger) pool thresholds, so starting at the current
  // pool threshold is a valid per-sketch threshold.
  KmvSketch sketch(k_, pool_threshold_, hash_salt_);
  for (double p : pool_.at(group)) sketch.OfferPriority(p, /*key=*/0);
  pool_.erase(group);

  DemoteLargestThreshold();
  promoted_.emplace(group, std::move(sketch));

  RecomputePoolThreshold();
}

void GroupDistinctSketch::DemoteLargestThreshold() {
  ATS_CHECK(!promoted_.empty());
  auto victim = promoted_.begin();
  for (auto it = promoted_.begin(); it != promoted_.end(); ++it) {
    if (it->second.Threshold() > victim->second.Threshold()) victim = it;
  }
  // The victim's sketch threshold can exceed the pool threshold after a
  // merge, so keep only the (valid subsample of) items below it.
  auto& samples = pool_[victim->first];
  for (const auto& [priority, key] : victim->second.members()) {
    if (priority < pool_threshold_) samples.insert(priority);
  }
  if (samples.empty()) pool_.erase(victim->first);
  promoted_.erase(victim);
}

void GroupDistinctSketch::RecomputePoolThreshold() {
  pool_inserts_since_refresh_ = 0;
  double t = 1.0;
  if (promoted_.size() >= m_) {
    t = 0.0;
    for (const auto& [group, sketch] : promoted_) {
      t = std::max(t, sketch.Threshold());
    }
  }
  if (t < pool_threshold_) {
    pool_threshold_ = t;
    PurgePool();
  }
}

void GroupDistinctSketch::PurgePool() {
  for (auto it = pool_.begin(); it != pool_.end();) {
    auto& samples = it->second;
    samples.erase(samples.lower_bound(pool_threshold_), samples.end());
    it = samples.empty() ? pool_.erase(it) : std::next(it);
  }
}

void GroupDistinctSketch::Merge(const GroupDistinctSketch& other) {
  if (&other == this) return;
  ATS_CHECK(m_ == other.m_);
  ATS_CHECK(k_ == other.k_);
  ATS_CHECK(hash_salt_ == other.hash_salt_);

  // The union pool threshold is the min of both sides' thresholds: every
  // pool item on either side was filtered at a threshold >= it.
  if (other.pool_threshold_ < pool_threshold_) {
    pool_threshold_ = other.pool_threshold_;
    PurgePool();
  }

  // Promoted sketches: per-group KMV merge when promoted on both sides,
  // otherwise adopt a copy (demotion below re-enforces the m bound).
  for (const auto& [group, sketch] : other.promoted_) {
    auto it = promoted_.find(group);
    if (it != promoted_.end()) {
      it->second.Merge(sketch);
      continue;
    }
    auto [nit, inserted] = promoted_.emplace(group, sketch);
    // Fold any of our pool items for the adopted group into its sketch.
    // Pool items are only complete below the pool threshold, so the
    // sketch's theta must not exceed it or the estimate would undercount.
    auto pl = pool_.find(group);
    if (pl != pool_.end()) {
      nit->second.LowerThreshold(pool_threshold_);
      for (double p : pl->second) nit->second.OfferPriority(p, /*key=*/0);
      pool_.erase(pl);
    }
  }
  while (promoted_.size() > m_) DemoteLargestThreshold();

  // Pool union, filtered at the (already lowered) union threshold.
  for (const auto& [group, samples] : other.pool_) {
    auto pit = promoted_.find(group);
    if (pit != promoted_.end()) {
      // The group is promoted here: its pool items fold into the sketch
      // after capping theta at the pool threshold (same completeness
      // argument as above; offers at/above theta are rejected).
      pit->second.LowerThreshold(pool_threshold_);
      for (double p : samples) pit->second.OfferPriority(p, /*key=*/0);
      continue;
    }
    auto& mine = pool_[group];
    for (double p : samples) {
      if (p < pool_threshold_) mine.insert(p);
    }
    if (mine.empty()) pool_.erase(group);
  }

  RecomputePoolThreshold();
}

void GroupDistinctSketch::MergeMany(
    std::span<const GroupDistinctSketch* const> others) {
  // Pass 1: parameter checks and the union pool threshold. Applying the
  // global min FIRST is the pruning step -- every later fold and pool
  // union filters at the final bound instead of re-filtering per input.
  double t = pool_threshold_;
  bool any_input = false;
  for (const GroupDistinctSketch* o : others) {
    if (o == this) continue;
    ATS_CHECK(m_ == o->m_);
    ATS_CHECK(k_ == o->k_);
    ATS_CHECK(hash_salt_ == o->hash_salt_);
    t = std::min(t, o->pool_threshold_);
    any_input = true;
  }
  if (!any_input) return;
  if (t < pool_threshold_) {
    pool_threshold_ = t;
    PurgePool();
  }

  // Pass 2: gather each group's promoted sketches across ALL inputs, so
  // a group promoted in many inputs costs one k-way selection.
  std::unordered_map<uint64_t, std::vector<const KmvSketch*>> per_group;
  for (const GroupDistinctSketch* o : others) {
    if (o == this) continue;
    for (const auto& [group, sketch] : o->promoted_) {
      per_group[group].push_back(&sketch);
    }
  }
  for (auto& [group, inputs] : per_group) {
    auto it = promoted_.find(group);
    if (it != promoted_.end()) {
      it->second.MergeMany(inputs);
      continue;
    }
    // Adopt: copy the first input's sketch, fold the rest in one k-way
    // merge, then fold any of our pool items for the group. Pool items
    // are only complete below the pool threshold, so the sketch's theta
    // must not exceed it or the estimate would undercount.
    KmvSketch adopted = *inputs.front();
    if (inputs.size() > 1) {
      adopted.MergeMany(std::span(inputs).subspan(1));
    }
    auto pl = pool_.find(group);
    if (pl != pool_.end()) {
      adopted.LowerThreshold(pool_threshold_);
      for (double p : pl->second) adopted.OfferPriority(p, /*key=*/0);
      pool_.erase(pl);
    }
    promoted_.emplace(group, std::move(adopted));
  }
  // The m bound is re-enforced ONCE, after every input's promoted groups
  // have been folded (a pairwise chain demotes between inputs).
  while (promoted_.size() > m_) DemoteLargestThreshold();

  // Pool unions, filtered at the (already-minimal) union threshold.
  for (const GroupDistinctSketch* o : others) {
    if (o == this) continue;
    for (const auto& [group, samples] : o->pool_) {
      auto pit = promoted_.find(group);
      if (pit != promoted_.end()) {
        pit->second.LowerThreshold(pool_threshold_);
        for (double p : samples) pit->second.OfferPriority(p, /*key=*/0);
        continue;
      }
      auto& mine = pool_[group];
      for (double p : samples) {
        if (p < pool_threshold_) mine.insert(p);
      }
      if (mine.empty()) pool_.erase(group);
    }
  }

  RecomputePoolThreshold();
}

double GroupDistinctSketch::Estimate(uint64_t group) const {
  const auto pit = promoted_.find(group);
  if (pit != promoted_.end()) return pit->second.Estimate();
  const auto it = pool_.find(group);
  if (it == pool_.end()) return 0.0;
  return static_cast<double>(it->second.size()) / pool_threshold_;
}

size_t GroupDistinctSketch::StoredItems() const {
  size_t total = 0;
  for (const auto& [group, sketch] : promoted_) total += sketch.size();
  for (const auto& [group, samples] : pool_) total += samples.size();
  return total;
}

std::vector<uint64_t> GroupDistinctSketch::GroupsWithSamples() const {
  std::vector<uint64_t> out;
  for (const auto& [group, sketch] : promoted_) {
    if (sketch.size() > 0) out.push_back(group);
  }
  for (const auto& [group, samples] : pool_) {
    if (!samples.empty()) out.push_back(group);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void GroupDistinctSketch::SerializeTo(ByteWriter& w) const {
  WriteSketchHeader(w, kGroupDistinctMagic, kGroupDistinctVersion);
  w.WriteU64(m_);
  w.WriteU64(k_);
  w.WriteU64(hash_salt_);
  w.WriteDouble(pool_threshold_);
  // Promoted sketches in ascending group order for a canonical encoding.
  std::map<uint64_t, const KmvSketch*> promoted_sorted;
  for (const auto& [group, sketch] : promoted_) {
    promoted_sorted.emplace(group, &sketch);
  }
  w.WriteU64(promoted_sorted.size());
  for (const auto& [group, sketch] : promoted_sorted) {
    w.WriteU64(group);
    sketch->SerializeTo(w);
  }
  std::map<uint64_t, const std::set<double>*> pool_sorted;
  for (const auto& [group, samples] : pool_) {
    pool_sorted.emplace(group, &samples);
  }
  w.WriteU64(pool_sorted.size());
  for (const auto& [group, samples] : pool_sorted) {
    w.WriteU64(group);
    w.WriteU64(samples->size());
    for (double p : *samples) w.WriteDouble(p);
  }
}

std::optional<GroupDistinctSketch> GroupDistinctSketch::Deserialize(
    ByteReader& r) {
  if (!ReadSketchHeader(r, kGroupDistinctMagic, kGroupDistinctVersion)) {
    return std::nullopt;
  }
  const auto m = r.ReadU64();
  const auto k = r.ReadU64();
  const auto salt = r.ReadU64();
  const auto pool_threshold = r.ReadDouble();
  if (!m || !k || !salt.has_value() || !pool_threshold) return std::nullopt;
  if (*m < 1 || *k < 1 || !(*pool_threshold > 0.0) ||
      *pool_threshold > 1.0) {
    return std::nullopt;
  }
  GroupDistinctSketch out(static_cast<size_t>(*m), static_cast<size_t>(*k),
                          *salt);
  out.pool_threshold_ = *pool_threshold;
  const auto num_promoted = r.ReadU64();
  if (!num_promoted || *num_promoted > *m) return std::nullopt;
  for (uint64_t i = 0; i < *num_promoted; ++i) {
    const auto group = r.ReadU64();
    if (!group.has_value()) return std::nullopt;
    auto sketch = KmvSketch::Deserialize(r);
    if (!sketch || sketch->k() != out.k_ ||
        sketch->hash_salt() != out.hash_salt_) {
      return std::nullopt;
    }
    if (!out.promoted_.emplace(*group, std::move(*sketch)).second) {
      return std::nullopt;  // duplicate group
    }
  }
  const auto num_pool = r.ReadU64();
  if (!num_pool) return std::nullopt;
  for (uint64_t i = 0; i < *num_pool; ++i) {
    const auto group = r.ReadU64();
    const auto count = r.ReadU64();
    if (!group.has_value() || !count || *count == 0) return std::nullopt;
    if (out.promoted_.contains(*group) || out.pool_.contains(*group)) {
      return std::nullopt;
    }
    auto& samples = out.pool_[*group];
    double prev = 0.0;
    for (uint64_t j = 0; j < *count; ++j) {
      const auto p = r.ReadDouble();
      if (!p) return std::nullopt;
      // Ascending, distinct, below the pool threshold.
      if (!(*p > prev) || *p >= out.pool_threshold_) return std::nullopt;
      samples.insert(samples.end(), *p);
      prev = *p;
    }
  }
  return out;
}

}  // namespace ats
