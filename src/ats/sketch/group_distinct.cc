#include "ats/sketch/group_distinct.h"

#include <algorithm>

#include "ats/util/check.h"

namespace ats {

namespace {

// Per-(group, key) coordinated priority: coordination is only needed
// within a group, so the group id perturbs the salt.
double GroupKeyPriority(uint64_t group, uint64_t key, uint64_t salt) {
  return HashToUnit(HashKey(key, salt ^ Mix64(group)));
}

}  // namespace

GroupDistinctSketch::GroupDistinctSketch(size_t m, size_t k,
                                         uint64_t hash_salt)
    : m_(m), k_(k), hash_salt_(hash_salt) {
  ATS_CHECK(m >= 1);
  ATS_CHECK(k >= 1);
}

void GroupDistinctSketch::Add(uint64_t group, uint64_t key) {
  const double priority = GroupKeyPriority(group, key, hash_salt_);
  auto it = promoted_.find(group);
  if (it == promoted_.end() && promoted_.size() < m_) {
    // Bootstrap: the first m distinct groups get their own sketch.
    it = promoted_
             .emplace(group, KmvSketch(k_, pool_threshold_, hash_salt_))
             .first;
  }
  if (it != promoted_.end()) {
    const double before = it->second.Threshold();
    it->second.OfferPriority(priority, key);
    if (it->second.Threshold() < before && before >= pool_threshold_) {
      // The max-threshold sketch may have shrunk: refresh the pool bound.
      RecomputePoolThreshold();
    }
    return;
  }
  if (priority < pool_threshold_) {
    auto& samples = pool_[group];
    samples.insert(priority);
    if (samples.size() > k_) MaybePromote(group);
  }
}

void GroupDistinctSketch::MaybePromote(uint64_t group) {
  // Demote the promoted group with the largest threshold.
  auto victim = promoted_.begin();
  for (auto it = promoted_.begin(); it != promoted_.end(); ++it) {
    if (it->second.Threshold() > victim->second.Threshold()) victim = it;
  }
  // Build the newcomer's sketch from its pool items; its items were
  // filtered at (past, larger) pool thresholds, so starting at the current
  // pool threshold is a valid per-sketch threshold.
  KmvSketch sketch(k_, pool_threshold_, hash_salt_);
  for (double p : pool_.at(group)) sketch.OfferPriority(p, /*key=*/0);
  pool_.erase(group);

  // Demoted members return to the pool (subject to the pool threshold,
  // re-checked by PurgePool below).
  auto& demoted_samples = pool_[victim->first];
  for (const auto& [priority, key] : victim->second.members()) {
    demoted_samples.insert(priority);
  }
  promoted_.erase(victim);
  promoted_.emplace(group, std::move(sketch));

  RecomputePoolThreshold();
}

void GroupDistinctSketch::RecomputePoolThreshold() {
  double t = 1.0;
  if (promoted_.size() >= m_) {
    t = 0.0;
    for (const auto& [group, sketch] : promoted_) {
      t = std::max(t, sketch.Threshold());
    }
  }
  if (t < pool_threshold_) {
    pool_threshold_ = t;
    PurgePool();
  }
}

void GroupDistinctSketch::PurgePool() {
  for (auto it = pool_.begin(); it != pool_.end();) {
    auto& samples = it->second;
    samples.erase(samples.lower_bound(pool_threshold_), samples.end());
    it = samples.empty() ? pool_.erase(it) : std::next(it);
  }
}

double GroupDistinctSketch::Estimate(uint64_t group) const {
  const auto pit = promoted_.find(group);
  if (pit != promoted_.end()) return pit->second.Estimate();
  const auto it = pool_.find(group);
  if (it == pool_.end()) return 0.0;
  return static_cast<double>(it->second.size()) / pool_threshold_;
}

size_t GroupDistinctSketch::StoredItems() const {
  size_t total = 0;
  for (const auto& [group, sketch] : promoted_) total += sketch.size();
  for (const auto& [group, samples] : pool_) total += samples.size();
  return total;
}

std::vector<uint64_t> GroupDistinctSketch::GroupsWithSamples() const {
  std::vector<uint64_t> out;
  for (const auto& [group, sketch] : promoted_) {
    if (sketch.size() > 0) out.push_back(group);
  }
  for (const auto& [group, samples] : pool_) {
    if (!samples.empty()) out.push_back(group);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ats
