#include "ats/sketch/kmv.h"

#include "ats/util/check.h"
#include "ats/util/serialize.h"

namespace {
constexpr uint32_t kKmvMagic = 0x4b4d5601;  // "KMV" + version 1
}  // namespace

namespace ats {

KmvSketch::KmvSketch(size_t k, double initial_threshold, uint64_t hash_salt)
    : k_(k), threshold_(initial_threshold), hash_salt_(hash_salt) {
  ATS_CHECK(k >= 1);
  ATS_CHECK(initial_threshold > 0.0 && initial_threshold <= 1.0);
}

bool KmvSketch::AddKey(uint64_t key) {
  return OfferPriority(HashToUnit(HashKey(key, hash_salt_)), key);
}

bool KmvSketch::OfferPriority(double priority, uint64_t key) {
  if (priority >= threshold_) return false;
  const auto it = members_.find(priority);
  if (it != members_.end()) return true;  // duplicate key
  members_.emplace(priority, key);
  if (members_.size() > k_) EvictTop();
  return priority < threshold_;
}

void KmvSketch::EvictTop() {
  const auto top = std::prev(members_.end());
  threshold_ = top->first;
  saturated_ = true;
  members_.erase(top);
}

double KmvSketch::Estimate() const {
  return static_cast<double>(members_.size()) / threshold_;
}

std::string KmvSketch::SerializeToString() const {
  ByteWriter w;
  w.WriteU32(kKmvMagic);
  w.WriteU64(k_);
  w.WriteU64(hash_salt_);
  w.WriteDouble(threshold_);
  w.WriteU32(saturated_ ? 1 : 0);
  w.WriteU64(members_.size());
  for (const auto& [priority, key] : members_) {
    w.WriteDouble(priority);
    w.WriteU64(key);
  }
  return w.Take();
}

std::optional<KmvSketch> KmvSketch::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  const auto magic = r.ReadU32();
  if (!magic || *magic != kKmvMagic) return std::nullopt;
  const auto k = r.ReadU64();
  const auto salt = r.ReadU64();
  const auto threshold = r.ReadDouble();
  const auto saturated = r.ReadU32();
  const auto count = r.ReadU64();
  if (!k || !salt || !threshold || !saturated || !count) return std::nullopt;
  if (*k < 1 || *threshold <= 0.0 || *threshold > 1.0 || *count > *k) {
    return std::nullopt;
  }
  KmvSketch sketch(*k, 1.0, *salt);
  sketch.threshold_ = *threshold;
  sketch.saturated_ = *saturated != 0;
  for (uint64_t i = 0; i < *count; ++i) {
    const auto priority = r.ReadDouble();
    const auto key = r.ReadU64();
    if (!priority || !key.has_value()) return std::nullopt;
    if (*priority <= 0.0 || *priority >= *threshold) return std::nullopt;
    sketch.members_.emplace(*priority, *key);
  }
  if (!r.AtEnd() || sketch.members_.size() != *count) return std::nullopt;
  return sketch;
}

void KmvSketch::Merge(const KmvSketch& other) {
  ATS_CHECK(hash_salt_ == other.hash_salt_);
  if (other.threshold_ < threshold_) {
    threshold_ = other.threshold_;
    saturated_ = saturated_ || other.saturated_;
    // Purge members at/above the lowered threshold.
    while (!members_.empty() &&
           std::prev(members_.end())->first >= threshold_) {
      members_.erase(std::prev(members_.end()));
    }
  }
  for (const auto& [priority, key] : other.members_) {
    OfferPriority(priority, key);
  }
}

}  // namespace ats
