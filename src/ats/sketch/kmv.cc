#include "ats/sketch/kmv.h"

#include <algorithm>
#include <cstring>

#include "ats/util/check.h"

namespace {
constexpr uint32_t kKmvMagic = ats::KmvSketch::kWireMagic;
constexpr uint32_t kKmvVersion = ats::KmvSketch::kWireVersion;

// Wire stride of one (priority, key) frame entry.
constexpr size_t kKmvEntryStride = sizeof(double) + sizeof(uint64_t);
}  // namespace

namespace ats {

KmvSketch::KmvSketch(size_t k, double initial_threshold, uint64_t hash_salt)
    : hash_salt_(hash_salt), store_(k, initial_threshold) {
  ATS_CHECK(initial_threshold > 0.0 && initial_threshold <= 1.0);
}

bool KmvSketch::AddKey(uint64_t key) {
  return OfferPriority(HashToUnit(HashKey(key, hash_salt_)), key);
}

size_t KmvSketch::AddKeys(std::span<const uint64_t> keys) {
  // Fused hash -> priority -> pre-filter pipeline: each 64-key block is
  // hashed into a dense priority column first, culled against the store's
  // acceptance bound with the shared block scan, and only survivors reach
  // the per-item duplicate check (OfferPriority re-checks the live bound).
  size_t retained = 0;
  internal::VisitHashedCandidates(
      keys, hash_salt_, [this] { return store_.AcceptBound(); },
      [&](double priority, uint64_t key) {
        retained += OfferPriority(priority, key) ? 1 : 0;
      });
  return retained;
}

bool KmvSketch::OfferPriority(double priority, uint64_t key) {
  // Test against the O(1) chunked acceptance bound, not the canonical
  // Threshold(): the latter would force a buffer compaction per call,
  // defeating the store's amortized-O(1) ingest.
  if (priority >= store_.AcceptBound()) return false;
  if (!seen_.insert(std::bit_cast<uint64_t>(priority)).second) {
    return true;  // duplicate key: already accepted (it is below theta)
  }
  const bool retained = store_.Offer(priority, key);
  // Dropped priorities in seen_ are harmless (they sit at/above the
  // acceptance bound and are rejected before the set is consulted) but
  // they accumulate over a long stream; rebuilding from the retained set
  // once the slack exceeds ~k keeps memory at O(k) with amortized O(1)
  // cost per accepted offer.
  if (seen_.size() > 2 * store_.k() + 64) CompactSeen();
  return retained;
}

void KmvSketch::CompactSeen() {
  seen_.clear();
  for (double p : store_.priorities()) {
    seen_.insert(std::bit_cast<uint64_t>(p));
  }
}

double KmvSketch::Estimate() const {
  return static_cast<double>(store_.size()) / store_.Threshold();
}

std::vector<std::pair<double, uint64_t>> KmvSketch::members() const {
  std::vector<std::pair<double, uint64_t>> out;
  out.reserve(store_.size());
  for (size_t i : store_.SortedOrder()) {
    out.emplace_back(store_.priorities()[i], store_.payloads()[i]);
  }
  return out;
}

void KmvSketch::Merge(const KmvSketch& other) {
  if (&other == this) return;
  ATS_CHECK(hash_salt_ == other.hash_salt_);
  store_.LowerThreshold(other.Threshold());
  // Per-item offers (not a raw store merge): coordinated hashing means the
  // same key appears with the same priority in both sketches, and
  // OfferPriority suppresses those duplicates.
  for (size_t i = 0; i < other.store_.size(); ++i) {
    OfferPriority(other.store_.priorities()[i], other.store_.payloads()[i]);
  }
  store_.PurgeAboveThreshold();
}

void KmvSketch::MergeMany(std::span<const KmvSketch* const> others) {
  // No real inputs: strict no-op, like the zero-length pairwise chain
  // (the closing purge must only run on behalf of an actual merge).
  bool any_input = false;
  for (const KmvSketch* o : others) any_input |= o != this;
  if (!any_input) return;
  // Pass 1: global acceptance bound. Threshold() canonicalizes each
  // input, so pass 2 scans dense canonical columns.
  double bound = store_.Threshold();
  for (const KmvSketch* o : others) {
    if (o == this) continue;
    ATS_CHECK(hash_salt_ == o->hash_salt_);
    bound = std::min(bound, o->Threshold());
  }
  store_.LowerThreshold(bound);
  // Pass 2: block-prefiltered gather. Only survivors reach the per-item
  // duplicate check (OfferPriority re-checks the live bound, which
  // compactions tighten below the global min as evictions accumulate).
  // Rejected members never touch the seen_ set or the key column --
  // exactly the items a pairwise chain would admit early and purge
  // later.
  for (const KmvSketch* o : others) {
    if (o == this) continue;
    const std::vector<double>& ps = o->store_.priorities();
    const std::vector<uint64_t>& keys = o->store_.payloads();
    size_t i = 0;
    for (; i + internal::kIngestBlock <= ps.size();
         i += internal::kIngestBlock) {
      internal::VisitBlockCandidates(
          ps.data() + i, store_.AcceptBound(),
          [&](size_t j) { OfferPriority(ps[i + j], keys[i + j]); });
    }
    for (; i < ps.size(); ++i) {
      if (ps[i] < store_.AcceptBound()) OfferPriority(ps[i], keys[i]);
    }
  }
  store_.PurgeAboveThreshold();
}

size_t KmvSketch::FrameView::size() const {
  return entries_.size() / kKmvEntryStride;
}

double KmvSketch::FrameView::priority(size_t i) const {
  ATS_DCHECK(i < size());
  double p;
  std::memcpy(&p, entries_.data() + i * kKmvEntryStride, sizeof(p));
  return p;
}

uint64_t KmvSketch::FrameView::key(size_t i) const {
  ATS_DCHECK(i < size());
  uint64_t k;
  std::memcpy(&k,
              entries_.data() + i * kKmvEntryStride + sizeof(double),
              sizeof(k));
  return k;
}

std::optional<KmvSketch::FrameView> KmvSketch::DeserializeView(
    std::string_view frame) {
  auto r = OpenCheckedFrame(frame, kKmvMagic, kKmvVersion);
  if (!r) return std::nullopt;
  const auto k = r->ReadU64();
  const auto salt = r->ReadU64();
  const auto initial = r->ReadDouble();
  const auto threshold = r->ReadDouble();
  const auto count = r->ReadU64();
  if (!k || !salt.has_value() || !initial || !threshold || !count) {
    return std::nullopt;
  }
  if (*k < 1 || !(*initial > 0.0) || *initial > 1.0 ||
      !(*threshold > 0.0) || *threshold > *initial || *count > *k) {
    return std::nullopt;
  }
  // Fixed-stride entry region: one size comparison bounds-checks every
  // entry (oversized or truncated regions are framing errors). The first
  // clause keeps the multiplication overflow-free.
  const std::string_view entries = r->Rest();
  if (*count > entries.size() / kKmvEntryStride ||
      entries.size() != *count * kKmvEntryStride) {
    return std::nullopt;
  }
  FrameView view;
  view.k_ = *k;
  view.hash_salt_ = *salt;
  view.initial_threshold_ = *initial;
  view.threshold_ = *threshold;
  view.entries_ = entries;
  // Canonical encoding only: strictly ascending priorities inside
  // (0, threshold). Ascending order implies distinctness, which is what
  // lets this validation run without the hash set Deserialize builds.
  double prev = 0.0;
  for (size_t i = 0; i < view.size(); ++i) {
    const double p = view.priority(i);
    if (!(p > prev) || p >= *threshold) return std::nullopt;
    prev = p;
  }
  return view;
}

bool KmvSketch::MergeManyFrames(std::span<const std::string_view> frames) {
  std::vector<FrameView> views;
  views.reserve(frames.size());
  for (std::string_view f : frames) {
    auto view = DeserializeView(f);
    if (!view || view->hash_salt() != hash_salt_) return false;
    views.push_back(*view);
  }
  if (views.empty()) return true;  // strict no-op, no closing purge
  double bound = store_.Threshold();
  for (const FrameView& v : views) bound = std::min(bound, v.threshold());
  store_.LowerThreshold(bound);
  alignas(64) double block[internal::kIngestBlock];
  for (const FrameView& v : views) {
    // Canonical frames are ascending, so the global bound cuts each
    // frame to a PREFIX: binary-search it and never decode the tail.
    size_t n = v.size();
    {
      size_t lo = 0, hi = n;
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (v.priority(mid) < bound) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      n = lo;
    }
    size_t i = 0;
    for (; i + internal::kIngestBlock <= n; i += internal::kIngestBlock) {
      for (size_t j = 0; j < internal::kIngestBlock; ++j) {
        block[j] = v.priority(i + j);
      }
      internal::VisitBlockCandidates(
          block, store_.AcceptBound(),
          [&](size_t j) { OfferPriority(block[j], v.key(i + j)); });
    }
    for (; i < n; ++i) {
      const double p = v.priority(i);
      if (p < store_.AcceptBound()) OfferPriority(p, v.key(i));
    }
  }
  store_.PurgeAboveThreshold();
  return true;
}

FrameFault KmvSketch::DiagnoseFrame(std::string_view frame) {
  const FrameFault f = ClassifyFrameBytes(frame, kKmvMagic, kKmvVersion);
  if (f != FrameFault::kNone) return f;
  return Deserialize(frame).has_value() ? FrameFault::kNone
                                        : FrameFault::kCorruptBody;
}

void KmvSketch::SerializeTo(ByteWriter& w) const {
  WriteSketchHeader(w, kKmvMagic, kKmvVersion);
  w.WriteU64(store_.k());
  w.WriteU64(hash_salt_);
  w.WriteDouble(store_.initial_threshold());
  w.WriteDouble(store_.Threshold());
  w.WriteU64(store_.size());
  for (const auto& [priority, key] : members()) {
    w.WriteDouble(priority);
    w.WriteU64(key);
  }
}

std::optional<KmvSketch> KmvSketch::Deserialize(ByteReader& r) {
  if (!ReadSketchHeader(r, kKmvMagic, kKmvVersion)) return std::nullopt;
  const auto k = r.ReadU64();
  const auto salt = r.ReadU64();
  const auto initial = r.ReadDouble();
  const auto threshold = r.ReadDouble();
  const auto count = r.ReadU64();
  if (!k || !salt.has_value() || !initial || !threshold || !count) {
    return std::nullopt;
  }
  if (*k < 1 || !(*initial > 0.0) || *initial > 1.0 ||
      !(*threshold > 0.0) || *threshold > *initial || *count > *k) {
    return std::nullopt;
  }
  KmvSketch sketch(static_cast<size_t>(*k), *initial, *salt);
  for (uint64_t i = 0; i < *count; ++i) {
    const auto priority = r.ReadDouble();
    const auto key = r.ReadU64();
    if (!priority || !key.has_value()) return std::nullopt;
    if (!(*priority > 0.0) || *priority >= *threshold) return std::nullopt;
    if (!sketch.seen_.insert(std::bit_cast<uint64_t>(*priority)).second) {
      return std::nullopt;  // duplicate priority in the wire payload
    }
    sketch.store_.Offer(*priority, *key);
  }
  if (sketch.size() != *count) return std::nullopt;
  sketch.store_.LowerThreshold(*threshold);
  return sketch;
}

}  // namespace ats
