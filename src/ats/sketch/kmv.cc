#include "ats/sketch/kmv.h"

#include "ats/util/check.h"

namespace {
constexpr uint32_t kKmvMagic = 0x4b4d5632;  // "KMV2"
constexpr uint32_t kKmvVersion = 1;
}  // namespace

namespace ats {

KmvSketch::KmvSketch(size_t k, double initial_threshold, uint64_t hash_salt)
    : hash_salt_(hash_salt), store_(k, initial_threshold) {
  ATS_CHECK(initial_threshold > 0.0 && initial_threshold <= 1.0);
}

bool KmvSketch::AddKey(uint64_t key) {
  return OfferPriority(HashToUnit(HashKey(key, hash_salt_)), key);
}

size_t KmvSketch::AddKeys(std::span<const uint64_t> keys) {
  // Fused hash -> priority -> pre-filter pipeline: each 64-key block is
  // hashed into a dense priority column first, culled against the store's
  // acceptance bound with the shared block scan, and only survivors reach
  // the per-item duplicate check (OfferPriority re-checks the live bound).
  size_t retained = 0;
  internal::VisitHashedCandidates(
      keys, hash_salt_, [this] { return store_.AcceptBound(); },
      [&](double priority, uint64_t key) {
        retained += OfferPriority(priority, key) ? 1 : 0;
      });
  return retained;
}

bool KmvSketch::OfferPriority(double priority, uint64_t key) {
  // Test against the O(1) chunked acceptance bound, not the canonical
  // Threshold(): the latter would force a buffer compaction per call,
  // defeating the store's amortized-O(1) ingest.
  if (priority >= store_.AcceptBound()) return false;
  if (!seen_.insert(std::bit_cast<uint64_t>(priority)).second) {
    return true;  // duplicate key: already accepted (it is below theta)
  }
  const bool retained = store_.Offer(priority, key);
  // Dropped priorities in seen_ are harmless (they sit at/above the
  // acceptance bound and are rejected before the set is consulted) but
  // they accumulate over a long stream; rebuilding from the retained set
  // once the slack exceeds ~k keeps memory at O(k) with amortized O(1)
  // cost per accepted offer.
  if (seen_.size() > 2 * store_.k() + 64) CompactSeen();
  return retained;
}

void KmvSketch::CompactSeen() {
  seen_.clear();
  for (double p : store_.priorities()) {
    seen_.insert(std::bit_cast<uint64_t>(p));
  }
}

double KmvSketch::Estimate() const {
  return static_cast<double>(store_.size()) / store_.Threshold();
}

std::vector<std::pair<double, uint64_t>> KmvSketch::members() const {
  std::vector<std::pair<double, uint64_t>> out;
  out.reserve(store_.size());
  for (size_t i : store_.SortedOrder()) {
    out.emplace_back(store_.priorities()[i], store_.payloads()[i]);
  }
  return out;
}

void KmvSketch::Merge(const KmvSketch& other) {
  if (&other == this) return;
  ATS_CHECK(hash_salt_ == other.hash_salt_);
  store_.LowerThreshold(other.Threshold());
  // Per-item offers (not a raw store merge): coordinated hashing means the
  // same key appears with the same priority in both sketches, and
  // OfferPriority suppresses those duplicates.
  for (size_t i = 0; i < other.store_.size(); ++i) {
    OfferPriority(other.store_.priorities()[i], other.store_.payloads()[i]);
  }
  store_.PurgeAboveThreshold();
}

void KmvSketch::SerializeTo(ByteWriter& w) const {
  WriteSketchHeader(w, kKmvMagic, kKmvVersion);
  w.WriteU64(store_.k());
  w.WriteU64(hash_salt_);
  w.WriteDouble(store_.initial_threshold());
  w.WriteDouble(store_.Threshold());
  w.WriteU64(store_.size());
  for (const auto& [priority, key] : members()) {
    w.WriteDouble(priority);
    w.WriteU64(key);
  }
}

std::optional<KmvSketch> KmvSketch::Deserialize(ByteReader& r) {
  if (!ReadSketchHeader(r, kKmvMagic, kKmvVersion)) return std::nullopt;
  const auto k = r.ReadU64();
  const auto salt = r.ReadU64();
  const auto initial = r.ReadDouble();
  const auto threshold = r.ReadDouble();
  const auto count = r.ReadU64();
  if (!k || !salt.has_value() || !initial || !threshold || !count) {
    return std::nullopt;
  }
  if (*k < 1 || !(*initial > 0.0) || *initial > 1.0 ||
      !(*threshold > 0.0) || *threshold > *initial || *count > *k) {
    return std::nullopt;
  }
  KmvSketch sketch(static_cast<size_t>(*k), *initial, *salt);
  for (uint64_t i = 0; i < *count; ++i) {
    const auto priority = r.ReadDouble();
    const auto key = r.ReadU64();
    if (!priority || !key.has_value()) return std::nullopt;
    if (!(*priority > 0.0) || *priority >= *threshold) return std::nullopt;
    if (!sketch.seen_.insert(std::bit_cast<uint64_t>(*priority)).second) {
      return std::nullopt;  // duplicate priority in the wire payload
    }
    sketch.store_.Offer(*priority, *key);
  }
  if (sketch.size() != *count) return std::nullopt;
  sketch.store_.LowerThreshold(*threshold);
  return sketch;
}

}  // namespace ats
