// Generalized LCS merge for distinct counting (Section 3.5, Figure 4).
//
// Merging coordinated bottom-k sketches with the Theta rule (min of the
// thresholds) throws information away: a hash retained by sketch A at
// threshold theta_A > theta_min still certifies inclusion at probability
// theta_A. The LCS sketch of Cohen & Kaplan [9] instead keeps per-item
// thresholds T'_h = max over the input sketches whose sample contains h of
// that sketch's threshold -- a 1-substitutable composition (Theorem 9) --
// and estimates the union as  N_hat = sum_h 1 / T'_h.
//
// Why the max is the correct inclusion probability for every case:
//   * h in both samples: the item is in A and B, so it is retained iff
//     h < max(theta_A, theta_B).
//   * h only in sample A and h < theta_B: the item cannot be in B (it
//     would have been retained), so pi = theta_A.
//   * h only in sample A and h >= theta_B: whether or not the item is in
//     B, theta_B <= h < theta_A forces max = theta_A, so pi = theta_A.
// Merges chain: merging merged sketches takes the per-item max again.
#ifndef ATS_SKETCH_LCS_MERGE_H_
#define ATS_SKETCH_LCS_MERGE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ats/sketch/kmv.h"
#include "ats/util/memory.h"
#include "ats/util/serialize.h"

namespace ats {

class LcsSketch {
 public:
  // Lifts a KMV sketch: every retained hash gets the sketch's threshold.
  static LcsSketch FromKmv(const KmvSketch& kmv);

  // Merges this sketch with another (union semantics): per-item thresholds
  // are maxed for hashes in both samples. Self-merge is a no-op.
  void Merge(const LcsSketch& other);

  // Union distinct-count estimate: sum over retained hashes of 1/T'_h.
  double Estimate() const;

  size_t size() const { return items_.size(); }

  // Live heap bytes of the retained map, modeled per util/memory.h.
  size_t MemoryFootprint() const { return TreeFootprint(items_); }

  // Retained (hash priority -> per-item threshold), ascending by priority.
  const std::map<double, double>& items() const { return items_; }

  // Wire format (per-item thresholds travel with the sample, so merges
  // chain across serialization boundaries).
  void SerializeTo(ByteWriter& w) const;
  static std::optional<LcsSketch> Deserialize(ByteReader& r);
  std::string SerializeToString() const { return SerializeSketch(*this); }
  static std::optional<LcsSketch> Deserialize(std::string_view bytes) {
    return DeserializeSketch<LcsSketch>(bytes);
  }

 private:
  std::map<double, double> items_;  // priority -> per-item threshold
};

static_assert(MergeableSketch<LcsSketch>);

}  // namespace ats

#endif  // ATS_SKETCH_LCS_MERGE_H_
