#include "ats/estimators/distinct.h"

#include "ats/core/ht_estimator.h"

namespace ats {

double EstimateDistinct(std::span<const SampleEntry> sample) {
  return HtCount(sample);
}

double EstimateDistinctInSubset(
    std::span<const SampleEntry> sample,
    const std::function<bool(uint64_t)>& in_subset) {
  double total = 0.0;
  for (const SampleEntry& e : sample) {
    if (in_subset(e.key)) total += 1.0 / e.InclusionProbability();
  }
  return total;
}

}  // namespace ats
