#include "ats/estimators/subset_sum.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ats {

namespace {

EstimateWithError FromEntries(std::span<const SampleEntry> entries) {
  EstimateWithError out;
  out.estimate = HtTotal(entries);
  out.variance = HtVarianceEstimate(entries);
  out.ci_half_width = 1.96 * std::sqrt(std::max(0.0, out.variance));
  return out;
}

std::vector<SampleEntry> Filter(
    std::span<const SampleEntry> sample,
    const std::function<bool(uint64_t)>& in_subset) {
  std::vector<SampleEntry> out;
  for (const SampleEntry& e : sample) {
    if (in_subset(e.key)) out.push_back(e);
  }
  return out;
}

}  // namespace

EstimateWithError EstimateTotal(std::span<const SampleEntry> sample) {
  return FromEntries(sample);
}

EstimateWithError EstimateSubsetSum(
    std::span<const SampleEntry> sample,
    const std::function<bool(uint64_t)>& in_subset) {
  return FromEntries(Filter(sample, in_subset));
}

EstimateWithError EstimateSubsetCount(
    std::span<const SampleEntry> sample,
    const std::function<bool(uint64_t)>& in_subset) {
  std::vector<SampleEntry> counted = Filter(sample, in_subset);
  for (SampleEntry& e : counted) e.value = 1.0;
  return FromEntries(counted);
}

double EstimateSubsetMean(std::span<const SampleEntry> sample,
                          const std::function<bool(uint64_t)>& in_subset) {
  const double sum = EstimateSubsetSum(sample, in_subset).estimate;
  const double count = EstimateSubsetCount(sample, in_subset).estimate;
  return count > 0.0 ? sum / count : 0.0;
}

double PrioritySamplingTotal(std::span<const SampleEntry> sample) {
  double total = 0.0;
  for (const SampleEntry& e : sample) {
    total += e.threshold == kInfiniteThreshold
                 ? e.value
                 : std::max(e.value, 1.0 / e.threshold);
  }
  return total;
}

}  // namespace ats
