// Kendall's tau estimation from 2-substitutable samples (Section 2.6.2).
//
// Kendall's tau over pairs (X_i, Y_i), i in [n]:
//   tau = C(n,2)^{-1} sum_{i<j} sign(X_i - X_j) sign(Y_i - Y_j).
// Under a 2-substitutable adaptive threshold the pseudo-HT estimator
//   tau_hat = C(n,2)^{-1} sum_{i<j sampled} C_ij / (pi_i pi_j)
// is unbiased (Theorem 4 applied to the degree-2 polynomial class). The
// population size n must be known (or estimated by HtCount).
#ifndef ATS_ESTIMATORS_KENDALL_TAU_H_
#define ATS_ESTIMATORS_KENDALL_TAU_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ats/core/threshold.h"

namespace ats {

// One sampled bivariate observation.
struct PairedSampleEntry {
  double x = 0.0;
  double y = 0.0;
  double inclusion_probability = 1.0;  // pi_i = F_i(T_i)
};

// Exact Kendall tau over full data, O(n log n) (merge-sort inversion
// counting). Ties contribute zero, matching the sign-product definition.
double KendallTauExact(std::span<const double> x, std::span<const double> y);

// Unbiased pseudo-HT estimate of Kendall's tau from a sample drawn with a
// 2-substitutable threshold; `population_size` is the true n.
double KendallTauFromSample(std::span<const PairedSampleEntry> sample,
                            int64_t population_size);

// Convenience: builds PairedSampleEntry list from SampleEntry metadata
// plus parallel x/y arrays indexed by entry key.
std::vector<PairedSampleEntry> MakePairedSample(
    std::span<const SampleEntry> sample, std::span<const double> x,
    std::span<const double> y);

// Unbiased estimate of Var(tau_hat | X, Y) under a (>=4)-substitutable
// threshold (the correlated-pairs HT variance of Section 2.6.2):
//
//   Var = C(n,2)^{-2} [ sum_{i!=j} (1-pi_ij)/pi_ij C_ij^2
//         + sum_{(i,j)!=(k,l)} (pi_ijkl - pi_ij pi_kl)/(pi_ij pi_kl)
//                              C_ij C_kl ]
//
// with pi over index sets multiplying the per-item probabilities
// (substitutable thresholds). Terms whose index sets are disjoint vanish
// (pi_ijkl == pi_ij pi_kl), so only pairs sharing an index contribute;
// the estimator replaces each population term by its HT form over
// sampled items. Requires a sample of >= 3 items; O(m^3).
double KendallTauVarianceEstimate(std::span<const PairedSampleEntry> sample,
                                  int64_t population_size);

}  // namespace ats

#endif  // ATS_ESTIMATORS_KENDALL_TAU_H_
