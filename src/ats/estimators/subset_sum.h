// Subset-sum estimation over adaptive threshold samples (Sections 2.2,
// 2.5.1, 2.6.1; Duffield et al. [12]).
//
// Thin, task-oriented wrappers over the core HT machinery: population and
// subset totals, counts, means (ratio estimator), variance estimates and
// normal confidence intervals, plus the classic priority-sampling form
// sum of max(w_i, 1/tau).
#ifndef ATS_ESTIMATORS_SUBSET_SUM_H_
#define ATS_ESTIMATORS_SUBSET_SUM_H_

#include <functional>
#include <span>

#include "ats/core/ht_estimator.h"
#include "ats/core/threshold.h"

namespace ats {

struct EstimateWithError {
  double estimate = 0.0;
  double variance = 0.0;       // unbiased variance estimate
  double ci_half_width = 0.0;  // ~95% normal CI half width
};

// Population total with variance estimate and CI.
EstimateWithError EstimateTotal(std::span<const SampleEntry> sample);

// Subset total restricted by a key predicate.
EstimateWithError EstimateSubsetSum(
    std::span<const SampleEntry> sample,
    const std::function<bool(uint64_t)>& in_subset);

// Estimated number of items in a key subset.
EstimateWithError EstimateSubsetCount(
    std::span<const SampleEntry> sample,
    const std::function<bool(uint64_t)>& in_subset);

// Ratio (Hajek) estimator of the subset mean: subset sum / subset count.
double EstimateSubsetMean(std::span<const SampleEntry> sample,
                          const std::function<bool(uint64_t)>& in_subset);

// The priority-sampling estimator sum_i max(w_i, 1/tau) over a weighted
// bottom-k sample with threshold tau; algebraically equal to the HT total
// when value == weight and priorities are Uniform(0, 1/w).
double PrioritySamplingTotal(std::span<const SampleEntry> sample);

}  // namespace ats

#endif  // ATS_ESTIMATORS_SUBSET_SUM_H_
