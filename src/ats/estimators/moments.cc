#include "ats/estimators/moments.h"

#include <cmath>

#include "ats/core/ht_estimator.h"
#include "ats/util/check.h"

namespace ats {

namespace {

double FallingFactorial(int64_t n, int d) {
  double out = 1.0;
  for (int i = 0; i < d; ++i) out *= static_cast<double>(n - i);
  return out;
}

void FillRatios(CentralMoments& m) {
  m.skewness = m.m2 > 0.0 ? m.m3 / std::pow(m.m2, 1.5) : 0.0;
  m.kurtosis = m.m2 > 0.0 ? m.m4 / (m.m2 * m.m2) : 0.0;
}

}  // namespace

CentralMoments ExactUStatMoments(std::span<const double> values) {
  const int64_t n = static_cast<int64_t>(values.size());
  ATS_CHECK(n >= 4);
  double s1 = 0.0, s2 = 0.0, s3 = 0.0, s4 = 0.0;
  for (double x : values) {
    s1 += x;
    s2 += x * x;
    s3 += x * x * x;
    s4 += x * x * x * x;
  }
  const double dn = static_cast<double>(n);

  CentralMoments m;
  // sum_{i != j} (x_i - x_j)^2 / 2 = n*S2 - S1^2.
  m.m2 = (dn * s2 - s1 * s1) / FallingFactorial(n, 2);

  // Ordered distinct tuple power sums:
  const double p_iij = s2 * s1 - s3;                 // sum_{i!=j} xi^2 xj
  const double p_ijk = s1 * s1 * s1 - 3.0 * s2 * s1 + 2.0 * s3;
  m.m3 = ((dn - 1.0) * (dn - 2.0) * s3 - 3.0 * (dn - 2.0) * p_iij +
          2.0 * p_ijk) /
         FallingFactorial(n, 3);

  const double p_iiij = s3 * s1 - s4;                // sum_{i!=j} xi^3 xj
  // sum_{i!=j!=k} xi^2 xj xk:
  const double p_iijk = s1 * s1 * s2 - 2.0 * s1 * s3 + 2.0 * s4 - s2 * s2;
  // sum over ordered distinct quadruples of xi xj xk xl:
  const double p_ijkl = s1 * s1 * s1 * s1 - 6.0 * s1 * s1 * s2 +
                        3.0 * s2 * s2 + 8.0 * s1 * s3 - 6.0 * s4;
  m.m4 = ((dn - 1.0) * (dn - 2.0) * (dn - 3.0) * s4 -
          4.0 * (dn - 2.0) * (dn - 3.0) * p_iiij +
          6.0 * (dn - 3.0) * p_iijk - 3.0 * p_ijkl) /
         FallingFactorial(n, 4);
  FillRatios(m);
  return m;
}

CentralMoments EstimateCentralMoments(std::span<const SampleEntry> sample,
                                      int64_t population_size) {
  ATS_CHECK(population_size >= 4);
  CentralMoments m;
  m.m2 = PairwiseHtSum(sample,
                       [](const SampleEntry& a, const SampleEntry& b) {
                         const double d = a.value - b.value;
                         return 0.5 * d * d;
                       }) /
         FallingFactorial(population_size, 2);
  m.m3 = TripleHtSum(sample,
                     [](const SampleEntry& a, const SampleEntry& b,
                        const SampleEntry& c) {
                       const double x = a.value, y = b.value, z = c.value;
                       return x * x * x - 3.0 * x * x * y + 2.0 * x * y * z;
                     }) /
         FallingFactorial(population_size, 3);
  m.m4 = QuadrupleHtSum(
             sample,
             [](const SampleEntry& a, const SampleEntry& b,
                const SampleEntry& c, const SampleEntry& d) {
               const double x = a.value, y = b.value, z = c.value,
                            w = d.value;
               return x * x * x * x - 4.0 * x * x * x * y +
                      6.0 * x * x * y * z - 3.0 * x * y * z * w;
             }) /
         FallingFactorial(population_size, 4);
  FillRatios(m);
  return m;
}

}  // namespace ats
