// Generic U-statistic estimation over adaptive threshold samples
// (Sections 2.4, 2.6.2; Halmos [16]).
//
// Any estimable parameter of a distribution equals E h(X_1, ..., X_d) for
// some symmetric kernel h of finite degree d, and Section 2.4 shows that
// U-statistics admit pseudo-HT estimators. This module exposes that
// machinery directly: give it a degree-d kernel and a sample drawn with a
// d-substitutable threshold, and it returns the unbiased estimate of the
// population U-statistic
//
//   U = (n)_d^{-1} * sum over ordered distinct d-tuples h(x_i1, .., x_id)
//
// via  U_hat = (n)_d^{-1} * sum over sampled tuples h(...) / prod pi_i.
//
// The central-moment estimators (moments.h) and Kendall's tau
// (kendall_tau.h) are special cases; this interface covers the rest of
// the family (Gini mean difference, concordance measures, one-sample
// Wilcoxon kernels, ...). Cost is O(m^d) over the sample size m.
#ifndef ATS_ESTIMATORS_USTATISTIC_H_
#define ATS_ESTIMATORS_USTATISTIC_H_

#include <functional>
#include <span>

#include "ats/core/threshold.h"

namespace ats {

// Kernels receive the sampled entries' values.
using Kernel1 = std::function<double(double)>;
using Kernel2 = std::function<double(double, double)>;
using Kernel3 = std::function<double(double, double, double)>;
using Kernel4 = std::function<double(double, double, double, double)>;

// Degree-1 U-statistic (the population mean of h): requires only
// 1-substitutability -- every sampler in the library qualifies.
double UStatistic1(std::span<const SampleEntry> sample,
                   int64_t population_size, const Kernel1& h);

// Degree-2: requires 2-substitutability. The kernel need not be
// symmetric; it is evaluated over ordered pairs.
double UStatistic2(std::span<const SampleEntry> sample,
                   int64_t population_size, const Kernel2& h);

// Degree-3: requires 3-substitutability.
double UStatistic3(std::span<const SampleEntry> sample,
                   int64_t population_size, const Kernel3& h);

// Degree-4: requires 4-substitutability.
double UStatistic4(std::span<const SampleEntry> sample,
                   int64_t population_size, const Kernel4& h);

// Exact population values (ground truth for tests), O(n^d).
double ExactUStatistic1(std::span<const double> values, const Kernel1& h);
double ExactUStatistic2(std::span<const double> values, const Kernel2& h);
double ExactUStatistic3(std::span<const double> values, const Kernel3& h);

// Ready-made kernels.

// Gini mean difference |x - y|: a robust dispersion measure.
double GiniMeanDifferenceKernel(double x, double y);

// Wilcoxon one-sample kernel 1{x + y > 0}: tests symmetry about zero.
double WilcoxonKernel(double x, double y);

}  // namespace ats

#endif  // ATS_ESTIMATORS_USTATISTIC_H_
