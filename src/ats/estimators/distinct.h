// Distinct counting from weighted, coordinated samples (Section 3.4).
//
// The subset-sum and distinct-count problems are usually treated
// separately; a single weighted coordinated priority sample answers both.
// With substitutable per-item thresholds T_i and priorities R_i = U_i/w_i,
//   N_hat    = sum_i Z_i / F_i(T_i)          estimates the distinct count,
//   S_hat(A) = sum_{i in A} w_i Z_i/F_i(T_i) estimates a subset's weight.
// This extends the Theta-sketch framework [11] to non-uniform priorities,
// weighted samples, and per-item thresholds.
#ifndef ATS_ESTIMATORS_DISTINCT_H_
#define ATS_ESTIMATORS_DISTINCT_H_

#include <functional>
#include <span>

#include "ats/core/threshold.h"

namespace ats {

// Distinct-count estimate: sum of 1/pi_i over sampled distinct items.
double EstimateDistinct(std::span<const SampleEntry> sample);

// Distinct count restricted to a key subset (e.g. a demographic subgroup
// of a spend-weighted user sample).
double EstimateDistinctInSubset(
    std::span<const SampleEntry> sample,
    const std::function<bool(uint64_t)>& in_subset);

}  // namespace ats

#endif  // ATS_ESTIMATORS_DISTINCT_H_
