// Unbiased central-moment estimation via U-statistics (Section 2.6.2;
// Halmos [16], Heffernan [17]).
//
// Sample central moments are biased; the classical fix expresses each
// central moment as a U-statistic with a degree-d symmetric kernel. Under
// a d-substitutable adaptive threshold, the pseudo-HT estimate of the
// population U-statistic is unbiased (Theorem 2 / Section 2.4), so the
// adaptive sample can be plugged straight into these estimators.
//
// Estimands are the *finite-population* U-statistics (ordered distinct
// tuples), which converge to the distribution moments:
//   M2 = sum_{i!=j} (x_i-x_j)^2/2              / (n)_2    -> mu_2
//   M3 = sum f3(x_i,x_j,x_k)                   / (n)_3    -> mu_3
//   M4 = sum f4(x_i,x_j,x_k,x_l)               / (n)_4    -> mu_4
// with f3(a,b,c)   = a^3 - 3 a^2 b + 2 a b c
//      f4(a,b,c,d) = a^4 - 4 a^3 b + 6 a^2 b c - 3 a b c d
// ((n)_d is the falling factorial). Skewness and kurtosis follow as the
// ratios M3 / M2^{3/2} and M4 / M2^2.
#ifndef ATS_ESTIMATORS_MOMENTS_H_
#define ATS_ESTIMATORS_MOMENTS_H_

#include <cstdint>
#include <span>

#include "ats/core/threshold.h"

namespace ats {

struct CentralMoments {
  double m2 = 0.0;
  double m3 = 0.0;
  double m4 = 0.0;
  double skewness = 0.0;  // m3 / m2^{3/2}
  double kurtosis = 0.0;  // m4 / m2^2
};

// Exact population U-statistic moments, computed in O(n) via power sums.
// Requires n >= 4.
CentralMoments ExactUStatMoments(std::span<const double> values);

// Pseudo-HT estimates from a sample drawn with a (>=4)-substitutable
// threshold; `population_size` is the true n (>= 4). O(m^4) in the sample
// size m -- intended for modest samples.
CentralMoments EstimateCentralMoments(std::span<const SampleEntry> sample,
                                      int64_t population_size);

}  // namespace ats

#endif  // ATS_ESTIMATORS_MOMENTS_H_
