#include "ats/estimators/kendall_tau.h"

#include <algorithm>
#include <cmath>

#include "ats/util/check.h"

namespace ats {

namespace {

double Sign(double d) { return d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0); }

// Counts inversions in `perm` by merge sort; `buf` is scratch space.
int64_t CountInversions(std::vector<double>& a, std::vector<double>& buf,
                        size_t lo, size_t hi) {
  if (hi - lo < 2) return 0;
  const size_t mid = (lo + hi) / 2;
  int64_t inv = CountInversions(a, buf, lo, mid) +
                CountInversions(a, buf, mid, hi);
  size_t i = lo, j = mid, k = lo;
  while (i < mid && j < hi) {
    if (a[i] <= a[j]) {
      buf[k++] = a[i++];
    } else {
      inv += static_cast<int64_t>(mid - i);
      buf[k++] = a[j++];
    }
  }
  while (i < mid) buf[k++] = a[i++];
  while (j < hi) buf[k++] = a[j++];
  std::copy(buf.begin() + static_cast<std::ptrdiff_t>(lo),
            buf.begin() + static_cast<std::ptrdiff_t>(hi),
            a.begin() + static_cast<std::ptrdiff_t>(lo));
  return inv;
}

}  // namespace

double KendallTauExact(std::span<const double> x, std::span<const double> y) {
  ATS_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;

  // Sort by x; count discordant pairs as inversions in the y sequence.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (x[a] != x[b]) return x[a] < x[b];
    return y[a] < y[b];
  });

  // Tie counting (x-ties, y-ties, and joint) for the sign-product
  // normalization over ALL pairs C(n,2).
  int64_t x_tie_pairs = 0, joint_tie_pairs = 0;
  {
    size_t run = 1, joint_run = 1;
    for (size_t i = 1; i <= n; ++i) {
      if (i < n && x[order[i]] == x[order[i - 1]]) {
        ++run;
        if (y[order[i]] == y[order[i - 1]]) {
          ++joint_run;
        } else {
          joint_tie_pairs +=
              static_cast<int64_t>(joint_run * (joint_run - 1) / 2);
          joint_run = 1;
        }
      } else {
        x_tie_pairs += static_cast<int64_t>(run * (run - 1) / 2);
        joint_tie_pairs +=
            static_cast<int64_t>(joint_run * (joint_run - 1) / 2);
        run = 1;
        joint_run = 1;
      }
    }
  }
  int64_t y_tie_pairs = 0;
  {
    std::vector<double> ys(y.begin(), y.end());
    std::sort(ys.begin(), ys.end());
    size_t run = 1;
    for (size_t i = 1; i <= n; ++i) {
      if (i < n && ys[i] == ys[i - 1]) {
        ++run;
      } else {
        y_tie_pairs += static_cast<int64_t>(run * (run - 1) / 2);
        run = 1;
      }
    }
  }

  std::vector<double> ys(n), buf(n);
  for (size_t i = 0; i < n; ++i) ys[i] = y[order[i]];
  const int64_t discordant = CountInversions(ys, buf, 0, n);
  const int64_t total = static_cast<int64_t>(n) *
                        static_cast<int64_t>(n - 1) / 2;
  // Pairs tied in x or y contribute 0 to the sign product. Concordant =
  // total - discordant - (tied in x or y), with inclusion-exclusion.
  const int64_t tied = x_tie_pairs + y_tie_pairs - joint_tie_pairs;
  const int64_t concordant = total - discordant - tied;
  return static_cast<double>(concordant - discordant) /
         static_cast<double>(total);
}

double KendallTauFromSample(std::span<const PairedSampleEntry> sample,
                            int64_t population_size) {
  ATS_CHECK(population_size >= 2);
  double sum = 0.0;
  for (size_t i = 0; i < sample.size(); ++i) {
    for (size_t j = i + 1; j < sample.size(); ++j) {
      const double c = Sign(sample[i].x - sample[j].x) *
                       Sign(sample[i].y - sample[j].y);
      sum += c / (sample[i].inclusion_probability *
                  sample[j].inclusion_probability);
    }
  }
  const double total_pairs = 0.5 * static_cast<double>(population_size) *
                             static_cast<double>(population_size - 1);
  return sum / total_pairs;
}

double KendallTauVarianceEstimate(std::span<const PairedSampleEntry> sample,
                                  int64_t population_size) {
  ATS_CHECK(population_size >= 2);
  const size_t m = sample.size();
  // Diagonal terms: C_ij^2 (1 - pi_ij) / pi_ij^2 over sampled pairs.
  double total = 0.0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      const double c = Sign(sample[i].x - sample[j].x) *
                       Sign(sample[i].y - sample[j].y);
      const double pij = sample[i].inclusion_probability *
                         sample[j].inclusion_probability;
      total += c * c * (1.0 - pij) / (pij * pij);
    }
  }
  // Cross terms: ordered pairs of pairs sharing exactly one index s
  // (disjoint quadruples vanish under substitutable thresholds):
  //   C_sj C_sl (1 - pi_s) / (pi_s^2 pi_j pi_l).
  for (size_t s = 0; s < m; ++s) {
    const double pis = sample[s].inclusion_probability;
    for (size_t j = 0; j < m; ++j) {
      if (j == s) continue;
      const double csj = Sign(sample[s].x - sample[j].x) *
                         Sign(sample[s].y - sample[j].y);
      if (csj == 0.0) continue;
      for (size_t l = 0; l < m; ++l) {
        if (l == s || l == j) continue;
        const double csl = Sign(sample[s].x - sample[l].x) *
                           Sign(sample[s].y - sample[l].y);
        total += csj * csl * (1.0 - pis) /
                 (pis * pis * sample[j].inclusion_probability *
                  sample[l].inclusion_probability);
      }
    }
  }
  const double num_pairs = 0.5 * static_cast<double>(population_size) *
                           static_cast<double>(population_size - 1);
  return total / (num_pairs * num_pairs);
}

std::vector<PairedSampleEntry> MakePairedSample(
    std::span<const SampleEntry> sample, std::span<const double> x,
    std::span<const double> y) {
  ATS_CHECK(x.size() == y.size());
  std::vector<PairedSampleEntry> out;
  out.reserve(sample.size());
  for (const SampleEntry& e : sample) {
    ATS_CHECK(e.key < x.size());
    PairedSampleEntry p;
    p.x = x[e.key];
    p.y = y[e.key];
    p.inclusion_probability = e.InclusionProbability();
    out.push_back(p);
  }
  return out;
}

}  // namespace ats
