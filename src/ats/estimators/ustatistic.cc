#include "ats/estimators/ustatistic.h"

#include <cmath>

#include "ats/core/ht_estimator.h"
#include "ats/util/check.h"

namespace ats {

namespace {

double FallingFactorial(int64_t n, int d) {
  double out = 1.0;
  for (int i = 0; i < d; ++i) out *= static_cast<double>(n - i);
  return out;
}

}  // namespace

double UStatistic1(std::span<const SampleEntry> sample,
                   int64_t population_size, const Kernel1& h) {
  ATS_CHECK(population_size >= 1);
  double total = 0.0;
  for (const SampleEntry& e : sample) {
    total += h(e.value) / e.InclusionProbability();
  }
  return total / static_cast<double>(population_size);
}

double UStatistic2(std::span<const SampleEntry> sample,
                   int64_t population_size, const Kernel2& h) {
  ATS_CHECK(population_size >= 2);
  const double sum = PairwiseHtSum(
      sample, [&h](const SampleEntry& a, const SampleEntry& b) {
        return h(a.value, b.value);
      });
  return sum / FallingFactorial(population_size, 2);
}

double UStatistic3(std::span<const SampleEntry> sample,
                   int64_t population_size, const Kernel3& h) {
  ATS_CHECK(population_size >= 3);
  const double sum = TripleHtSum(
      sample, [&h](const SampleEntry& a, const SampleEntry& b,
                   const SampleEntry& c) {
        return h(a.value, b.value, c.value);
      });
  return sum / FallingFactorial(population_size, 3);
}

double UStatistic4(std::span<const SampleEntry> sample,
                   int64_t population_size, const Kernel4& h) {
  ATS_CHECK(population_size >= 4);
  const double sum = QuadrupleHtSum(
      sample, [&h](const SampleEntry& a, const SampleEntry& b,
                   const SampleEntry& c, const SampleEntry& d) {
        return h(a.value, b.value, c.value, d.value);
      });
  return sum / FallingFactorial(population_size, 4);
}

double ExactUStatistic1(std::span<const double> values, const Kernel1& h) {
  double total = 0.0;
  for (double x : values) total += h(x);
  return total / static_cast<double>(values.size());
}

double ExactUStatistic2(std::span<const double> values, const Kernel2& h) {
  const size_t n = values.size();
  ATS_CHECK(n >= 2);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) total += h(values[i], values[j]);
    }
  }
  return total / FallingFactorial(static_cast<int64_t>(n), 2);
}

double ExactUStatistic3(std::span<const double> values, const Kernel3& h) {
  const size_t n = values.size();
  ATS_CHECK(n >= 3);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      for (size_t k = 0; k < n; ++k) {
        if (k == i || k == j) continue;
        total += h(values[i], values[j], values[k]);
      }
    }
  }
  return total / FallingFactorial(static_cast<int64_t>(n), 3);
}

double GiniMeanDifferenceKernel(double x, double y) {
  return std::abs(x - y);
}

double WilcoxonKernel(double x, double y) { return x + y > 0.0 ? 1.0 : 0.0; }

}  // namespace ats
