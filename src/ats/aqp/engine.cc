#include "ats/aqp/engine.h"

#include <algorithm>
#include <limits>
#include <cmath>
#include <queue>

#include "ats/util/check.h"

namespace ats {

AqpEngine::AqpEngine(std::vector<Row> rows, uint64_t seed, IngestMode mode) {
  Xoshiro256 rng(seed);
  rows_.reserve(rows.size());
  if (mode == IngestMode::kBatched) {
    // Dense-column build: all uniforms in one batched fill, then one
    // pass dividing by weight. Bit-identical to the reference loop.
    std::vector<double> uniforms(rows.size());
    rng.FillUniformsOpenZero(uniforms);
    for (size_t i = 0; i < rows.size(); ++i) {
      ATS_CHECK(rows[i].weight > 0.0);
      StoredRow s;
      s.priority = uniforms[i] / rows[i].weight;
      s.row = std::move(rows[i]);
      rows_.push_back(std::move(s));
    }
  } else {
    for (Row& r : rows) {
      ATS_CHECK(r.weight > 0.0);
      StoredRow s;
      s.priority = rng.NextDoubleOpenZero() / r.weight;
      s.row = std::move(r);
      rows_.push_back(std::move(s));
    }
  }
  std::sort(rows_.begin(), rows_.end(),
            [](const StoredRow& a, const StoredRow& b) {
              return a.priority < b.priority;
            });
}

AqpQueryResult AqpEngine::QuerySum(
    const std::function<bool(uint64_t)>& predicate, double delta) const {
  ATS_CHECK(delta > 0.0);
  const double target = delta * delta;

  // Matching read rows are split by whether pi = w*t has saturated at 1.
  // Unsaturated rows (w*t < 1) contribute (x/w)/t to the estimate and
  // x^2 (1-pi)/pi^2 = (x^2/w^2)/t^2 - (x^2/w)/t to the UNBIASED variance
  // estimate (the pi^2 form is essential: the plug-in (1-pi)/pi form
  // grossly underestimates the variance at small prefixes and triggers
  // premature stops). Saturated rows contribute x exactly. A min-heap on
  // 1/w migrates rows as the threshold t grows.
  double a_sum = 0.0;   // sum of x/w over unsaturated matches
  double c_sum = 0.0;   // sum of x^2/w over unsaturated matches
  double e_sum = 0.0;   // sum of x^2/w^2 over unsaturated matches
  double b_sum = 0.0;   // sum of x over saturated matches
  using HeapItem = std::pair<double, size_t>;  // (1/w, row index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  // Do not stop before a handful of matches have been seen: with zero or
  // one matching row the variance estimate is degenerate (Section 3.9's
  // caveat about verifying stopping times from inside the sample).
  constexpr size_t kMinMatchesBeforeStop = 10;
  size_t matches = 0;

  AqpQueryResult result;
  for (size_t i = 0; i < rows_.size(); ++i) {
    const StoredRow& s = rows_[i];
    // Threshold after reading rows [0, i]: the next unread priority
    // (+infinity once the table is exhausted: every pi saturates).
    const double t = i + 1 < rows_.size()
                         ? rows_[i + 1].priority
                         : std::numeric_limits<double>::infinity();

    if (predicate(s.row.key)) {
      ++matches;
      const double x = s.row.value;
      const double w = s.row.weight;
      a_sum += x / w;
      c_sum += x * x / w;
      e_sum += x * x / (w * w);
      heap.emplace(1.0 / w, i);
    }
    // Migrate rows whose inclusion probability saturated (w*t >= 1).
    while (!heap.empty() && heap.top().first <= t) {
      const StoredRow& m = rows_[heap.top().second];
      heap.pop();
      const double x = m.row.value;
      const double w = m.row.weight;
      a_sum -= x / w;
      c_sum -= x * x / w;
      e_sum -= x * x / (w * w);
      b_sum += x;
    }

    const double variance = std::max(0.0, e_sum / (t * t) - c_sum / t);
    const bool last = i + 1 == rows_.size();
    if ((variance <= target &&
         (matches >= kMinMatchesBeforeStop || last)) ||
        last) {
      result.estimate = (t == std::numeric_limits<double>::infinity()
                             ? 0.0
                             : a_sum / t) +
                        b_sum;
      result.variance = variance;
      result.threshold = t;
      result.rows_read = i + 1;
      result.exhausted = last;
      return result;
    }
  }
  // Empty table.
  result.exhausted = true;
  return result;
}

}  // namespace ats
