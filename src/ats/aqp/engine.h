// Early-stopping approximate query processing (Section 3.10).
//
// The table stores every row, sorted by priority S_i = U_i / w_i. A query
// with a user-specified standard-error target delta scans rows in priority
// order; after reading a prefix, the effective threshold is the next
// (unread) priority -- a stopping time in the sorted-priority filtration
// (Theorem 8), hence substitutable -- and the scan stops as soon as the
// HT variance estimate of the running answer drops to delta^2. Small
// targets read more rows; crude targets answer after a handful.
#ifndef ATS_AQP_ENGINE_H_
#define ATS_AQP_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "ats/core/random.h"

namespace ats {

struct AqpQueryResult {
  double estimate = 0.0;
  double variance = 0.0;   // HT variance estimate at the stop threshold
  double threshold = 0.0;  // stop threshold
  size_t rows_read = 0;
  bool exhausted = false;  // read the whole table (variance 0)
};

class AqpEngine {
 public:
  struct Row {
    uint64_t key = 0;
    double value = 0.0;
    double weight = 1.0;
  };

  // How the build draws row priorities. Both modes produce a
  // BIT-IDENTICAL table (FillUniformsOpenZero is defined as exactly n
  // consecutive NextDoubleOpenZero draws); kScalarReference exists as
  // the differential oracle for that claim (tests/aqp_test.cc).
  enum class IngestMode {
    kBatched,           // dense uniform column via FillUniformsOpenZero
    kScalarReference,   // one rng draw per row, in the row loop
  };

  // Builds the priority-ordered table (priorities U/w, drawn from `seed`).
  AqpEngine(std::vector<Row> rows, uint64_t seed,
            IngestMode mode = IngestMode::kBatched);

  // SUM(value) over rows whose key satisfies `predicate`, stopping when
  // the estimated standard error is <= delta (absolute).
  AqpQueryResult QuerySum(const std::function<bool(uint64_t)>& predicate,
                          double delta) const;

  size_t table_size() const { return rows_.size(); }

 private:
  struct StoredRow {
    Row row;
    double priority = 0.0;
  };

  std::vector<StoredRow> rows_;  // ascending priority
};

}  // namespace ats

#endif  // ATS_AQP_ENGINE_H_
