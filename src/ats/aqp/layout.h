// Priority-ordered physical layouts for approximate query processing
// (Section 3.10).
//
// Rather than materializing samples, store ALL rows but order them by
// priority, so any prefix of the file is a weighted sample. The
// multi-objective block layout interleaves objectives: block b holds, for
// each objective j, the k rows with smallest objective-j priorities among
// the rows not yet assigned. After reading the first m blocks, objective
// j's sample is every read row with S^j_i below tau_j = the smallest
// objective-j priority among UNREAD rows -- a valid stopping-time
// threshold (Theorem 8) -- and that sample has at least m*k rows.
#ifndef ATS_AQP_LAYOUT_H_
#define ATS_AQP_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "ats/core/random.h"
#include "ats/core/threshold.h"

namespace ats {

struct AqpRow {
  uint64_t key = 0;
  double value = 0.0;                 // the queried metric
  std::vector<double> weights;        // per-objective sampling weights
  std::vector<double> priorities;     // per-objective S^j = U / w^j
};

class MultiObjectiveLayout {
 public:
  // Builds the layout: rows get coordinated priorities (one shared U per
  // row), then are assigned to blocks of k rows per objective.
  MultiObjectiveLayout(std::vector<AqpRow> rows, size_t block_k,
                       uint64_t seed);

  size_t num_blocks() const { return blocks_.size(); }
  size_t num_objectives() const { return num_objectives_; }

  // Rows of the b-th block, in assignment order.
  std::vector<const AqpRow*> Block(size_t b) const;

  // Reads the first m blocks and returns objective j's weighted sample
  // with per-item thresholds (tau_j = min unread priority for j).
  std::vector<SampleEntry> ReadSample(size_t m, size_t objective) const;

  // The threshold tau_j after reading m blocks.
  double ThresholdAfter(size_t m, size_t objective) const;

  // Total rows read by the first m blocks.
  size_t RowsRead(size_t m) const;

 private:
  size_t num_objectives_ = 0;
  std::vector<AqpRow> rows_;
  std::vector<std::vector<size_t>> blocks_;  // row indices per block
};

}  // namespace ats

#endif  // ATS_AQP_LAYOUT_H_
