#include "ats/aqp/layout.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "ats/util/check.h"

namespace ats {

MultiObjectiveLayout::MultiObjectiveLayout(std::vector<AqpRow> rows,
                                           size_t block_k, uint64_t seed)
    : rows_(std::move(rows)) {
  ATS_CHECK(!rows_.empty());
  ATS_CHECK(block_k >= 1);
  num_objectives_ = rows_[0].weights.size();
  ATS_CHECK(num_objectives_ >= 1);

  // Coordinated priorities: one uniform per row shared across objectives.
  Xoshiro256 rng(seed);
  for (AqpRow& row : rows_) {
    ATS_CHECK(row.weights.size() == num_objectives_);
    const double u = rng.NextDoubleOpenZero();
    row.priorities.resize(num_objectives_);
    for (size_t j = 0; j < num_objectives_; ++j) {
      ATS_CHECK(row.weights[j] > 0.0);
      row.priorities[j] = u / row.weights[j];
    }
  }

  // Per-objective ascending priority orders.
  std::vector<std::vector<size_t>> order(num_objectives_);
  for (size_t j = 0; j < num_objectives_; ++j) {
    order[j].resize(rows_.size());
    std::iota(order[j].begin(), order[j].end(), 0);
    std::sort(order[j].begin(), order[j].end(), [&](size_t a, size_t b) {
      return rows_[a].priorities[j] < rows_[b].priorities[j];
    });
  }

  // Greedy block assignment: for each block, each objective claims its
  // block_k smallest-priority unassigned rows.
  std::vector<bool> assigned(rows_.size(), false);
  std::vector<size_t> cursor(num_objectives_, 0);
  size_t remaining = rows_.size();
  while (remaining > 0) {
    std::vector<size_t> block;
    for (size_t j = 0; j < num_objectives_ && remaining > 0; ++j) {
      for (size_t taken = 0; taken < block_k && remaining > 0;) {
        size_t& c = cursor[j];
        if (c >= order[j].size()) break;
        const size_t row = order[j][c++];
        if (assigned[row]) continue;
        assigned[row] = true;
        block.push_back(row);
        --remaining;
        ++taken;
      }
    }
    ATS_CHECK(!block.empty());
    blocks_.push_back(std::move(block));
  }
}

std::vector<const AqpRow*> MultiObjectiveLayout::Block(size_t b) const {
  ATS_CHECK(b < blocks_.size());
  std::vector<const AqpRow*> out;
  out.reserve(blocks_[b].size());
  for (size_t idx : blocks_[b]) out.push_back(&rows_[idx]);
  return out;
}

size_t MultiObjectiveLayout::RowsRead(size_t m) const {
  size_t total = 0;
  for (size_t b = 0; b < std::min(m, blocks_.size()); ++b) {
    total += blocks_[b].size();
  }
  return total;
}

double MultiObjectiveLayout::ThresholdAfter(size_t m, size_t objective) const {
  ATS_CHECK(objective < num_objectives_);
  if (m >= blocks_.size()) return kInfiniteThreshold;
  std::vector<bool> read(rows_.size(), false);
  for (size_t b = 0; b < m; ++b) {
    for (size_t idx : blocks_[b]) read[idx] = true;
  }
  double tau = kInfiniteThreshold;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!read[i]) tau = std::min(tau, rows_[i].priorities[objective]);
  }
  return tau;
}

std::vector<SampleEntry> MultiObjectiveLayout::ReadSample(
    size_t m, size_t objective) const {
  ATS_CHECK(objective < num_objectives_);
  const double tau = ThresholdAfter(m, objective);
  std::vector<SampleEntry> out;
  for (size_t b = 0; b < std::min(m, blocks_.size()); ++b) {
    for (size_t idx : blocks_[b]) {
      const AqpRow& row = rows_[idx];
      if (row.priorities[objective] < tau) {
        SampleEntry e;
        e.key = row.key;
        e.value = row.value;
        e.priority = row.priorities[objective];
        e.threshold = tau;
        e.dist = PriorityDist::WeightedUniform(row.weights[objective]);
        out.push_back(e);
      }
    }
  }
  return out;
}

}  // namespace ats
