#include "ats/samplers/budget_sampler.h"

#include "ats/util/check.h"

namespace ats {

namespace {

bool PriorityLess(const BudgetSampler::Item& a,
                  const BudgetSampler::Item& b) {
  return a.priority < b.priority;
}

}  // namespace

BudgetSampler::BudgetSampler(double budget, uint64_t seed)
    : budget_(budget), rng_(seed), items_(PriorityLess) {
  ATS_CHECK(budget > 0.0);
}

bool BudgetSampler::Add(uint64_t key, double size, double value,
                        double weight) {
  ATS_CHECK(size > 0.0);
  ATS_CHECK(weight > 0.0);
  if (size > budget_) return false;  // can never fit: inclusion prob 0
  Item item;
  item.key = key;
  item.size = size;
  item.value = value;
  item.weight = weight;
  item.priority = rng_.NextDoubleOpenZero() / weight;
  if (item.priority >= threshold_) return false;
  items_.insert(item);
  used_ += size;
  Shrink();
  // The item may have been evicted again immediately (it might itself be
  // the first-overflow item).
  return item.priority < threshold_;
}

void BudgetSampler::Shrink() {
  // Restore the invariant: retained items are the maximal ascending-
  // priority prefix of all stream items whose cumulative size fits within
  // the budget. Removing from the largest priority down terminates at that
  // prefix; the last removed item is the first-overflow item whose
  // priority becomes the new threshold.
  while (used_ > budget_) {
    auto last = std::prev(items_.end());
    used_ -= last->size;
    threshold_ = last->priority;
    items_.erase(last);
  }
}

std::vector<SampleEntry> BudgetSampler::Sample() const {
  std::vector<SampleEntry> out;
  out.reserve(items_.size());
  for (const Item& it : items_) {
    SampleEntry e;
    e.key = it.key;
    e.value = it.value;
    e.priority = it.priority;
    e.threshold = threshold_;
    e.dist = it.weight == 1.0 ? PriorityDist::Uniform()
                              : PriorityDist::WeightedUniform(it.weight);
    out.push_back(e);
  }
  return out;
}

}  // namespace ats
