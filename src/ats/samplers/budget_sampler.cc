#include "ats/samplers/budget_sampler.h"

#include "ats/core/sample_store.h"
#include "ats/util/check.h"

namespace ats {

namespace {

bool PriorityLess(const BudgetSampler::Item& a,
                  const BudgetSampler::Item& b) {
  return a.priority < b.priority;
}

}  // namespace

BudgetSampler::BudgetSampler(double budget, uint64_t seed)
    : budget_(budget), rng_(seed), items_(PriorityLess) {
  ATS_CHECK(budget > 0.0);
}

bool BudgetSampler::Add(uint64_t key, double size, double value,
                        double weight) {
  ATS_CHECK(size > 0.0);
  ATS_CHECK(weight > 0.0);
  if (size > budget_) return false;  // can never fit: inclusion prob 0
  return Insert(key, size, value, weight,
                rng_.NextDoubleOpenZero() / weight);
}

bool BudgetSampler::Insert(uint64_t key, double size, double value,
                           double weight, double priority) {
  if (priority >= threshold_) return false;
  Item item;
  item.key = key;
  item.size = size;
  item.value = value;
  item.weight = weight;
  item.priority = priority;
  items_.insert(item);
  used_ += size;
  Shrink();
  // The item may have been evicted again immediately (it might itself be
  // the first-overflow item).
  return item.priority < threshold_;
}

size_t BudgetSampler::AddBatch(std::span<const BatchItem> items) {
  const size_t n = items.size();
  batch_priorities_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    ATS_CHECK(items[i].size > 0.0);
    ATS_CHECK(items[i].weight > 0.0);
    // Oversized items draw no priority (the scalar path rejects them
    // before its draw); an infinite column entry can never pass the
    // block filter, so they stay invisible downstream too.
    batch_priorities_[i] =
        items[i].size > budget_
            ? kInfiniteThreshold
            : rng_.NextDoubleOpenZero() / items[i].weight;
  }
  size_t accepted = 0;
  const auto offer = [&](size_t i) {
    const BatchItem& it = items[i];
    accepted += Insert(it.key, it.size, it.value, it.weight,
                       batch_priorities_[i])
                    ? 1
                    : 0;
  };
  size_t i = 0;
  for (; i + internal::kIngestBlock <= n; i += internal::kIngestBlock) {
    // Snapshot the threshold per block (it only decreases; Insert
    // re-checks the live value) -- the same pre-filter argument as
    // SampleStore::OfferBatch.
    internal::VisitBlockCandidates(batch_priorities_.data() + i, threshold_,
                                   [&](size_t j) { offer(i + j); });
  }
  for (; i < n; ++i) {
    if (batch_priorities_[i] < threshold_) offer(i);
  }
  return accepted;
}

void BudgetSampler::Shrink() {
  // Restore the invariant: retained items are the maximal ascending-
  // priority prefix of all stream items whose cumulative size fits within
  // the budget. Removing from the largest priority down terminates at that
  // prefix; the last removed item is the first-overflow item whose
  // priority becomes the new threshold.
  while (used_ > budget_) {
    auto last = std::prev(items_.end());
    used_ -= last->size;
    threshold_ = last->priority;
    items_.erase(last);
  }
}

std::vector<SampleEntry> BudgetSampler::Sample() const {
  std::vector<SampleEntry> out;
  out.reserve(items_.size());
  for (const Item& it : items_) {
    SampleEntry e;
    e.key = it.key;
    e.value = it.value;
    e.priority = it.priority;
    e.threshold = threshold_;
    e.dist = it.weight == 1.0 ? PriorityDist::Uniform()
                              : PriorityDist::WeightedUniform(it.weight);
    out.push_back(e);
  }
  return out;
}

}  // namespace ats
