#include "ats/samplers/budget_sampler.h"

#include <cmath>

#include "ats/core/sample_store.h"
#include "ats/util/check.h"

namespace ats {

namespace {

constexpr uint32_t kBudgetMagic = 0x31544742;  // "BGT1"
constexpr uint32_t kBudgetVersion = 1;

bool PriorityLess(const BudgetSampler::Item& a,
                  const BudgetSampler::Item& b) {
  return a.priority < b.priority;
}

// Entry-level wire validation (the cross-entry rules -- ascending
// priorities, cumulative size within budget -- live at the callers):
// size positive, finite, and not oversized (Add rejects size > B before
// drawing, so no genuine frame carries one); value finite; weight a
// positive finite double; priority a positive finite draw strictly
// below the frame threshold (the travel rule).
bool ValidWireItem(double budget, double threshold, double size,
                   double value, double weight, double priority) {
  return size > 0.0 && std::isfinite(size) && size <= budget &&
         std::isfinite(value) && weight > 0.0 && std::isfinite(weight) &&
         priority > 0.0 && std::isfinite(priority) && priority < threshold;
}

}  // namespace

BudgetSampler::BudgetSampler(double budget, uint64_t seed)
    : budget_(budget), rng_(seed), items_(PriorityLess) {
  ATS_CHECK(budget > 0.0);
}

bool BudgetSampler::Add(uint64_t key, double size, double value,
                        double weight) {
  ATS_CHECK(size > 0.0);
  ATS_CHECK(weight > 0.0);
  if (size > budget_) return false;  // can never fit: inclusion prob 0
  return Insert(key, size, value, weight,
                rng_.NextDoubleOpenZero() / weight);
}

bool BudgetSampler::Insert(uint64_t key, double size, double value,
                           double weight, double priority) {
  if (priority >= threshold_) return false;
  Item item;
  item.key = key;
  item.size = size;
  item.value = value;
  item.weight = weight;
  item.priority = priority;
  items_.insert(item);
  used_ += size;
  Shrink();
  // The item may have been evicted again immediately (it might itself be
  // the first-overflow item).
  return item.priority < threshold_;
}

size_t BudgetSampler::AddBatch(std::span<const BatchItem> items) {
  const size_t n = items.size();
  batch_priorities_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    ATS_CHECK(items[i].size > 0.0);
    ATS_CHECK(items[i].weight > 0.0);
    // Oversized items draw no priority (the scalar path rejects them
    // before its draw); an infinite column entry can never pass the
    // block filter, so they stay invisible downstream too.
    batch_priorities_[i] =
        items[i].size > budget_
            ? kInfiniteThreshold
            : rng_.NextDoubleOpenZero() / items[i].weight;
  }
  size_t accepted = 0;
  const auto offer = [&](size_t i) {
    const BatchItem& it = items[i];
    accepted += Insert(it.key, it.size, it.value, it.weight,
                       batch_priorities_[i])
                    ? 1
                    : 0;
  };
  size_t i = 0;
  for (; i + internal::kIngestBlock <= n; i += internal::kIngestBlock) {
    // Snapshot the threshold per block (it only decreases; Insert
    // re-checks the live value) -- the same pre-filter argument as
    // SampleStore::OfferBatch.
    internal::VisitBlockCandidates(batch_priorities_.data() + i, threshold_,
                                   [&](size_t j) { offer(i + j); });
  }
  for (; i < n; ++i) {
    if (batch_priorities_[i] < threshold_) offer(i);
  }
  return accepted;
}

void BudgetSampler::Shrink() {
  // Restore the invariant: retained items are the maximal ascending-
  // priority prefix of all stream items whose cumulative size fits within
  // the budget. Removing from the largest priority down terminates at that
  // prefix; the last removed item is the first-overflow item whose
  // priority becomes the new threshold.
  while (used_ > budget_) {
    auto last = std::prev(items_.end());
    used_ -= last->size;
    threshold_ = last->priority;
    items_.erase(last);
  }
}

std::vector<SampleEntry> BudgetSampler::Sample() const {
  std::vector<SampleEntry> out;
  out.reserve(items_.size());
  for (const Item& it : items_) {
    SampleEntry e;
    e.key = it.key;
    e.value = it.value;
    e.priority = it.priority;
    e.threshold = threshold_;
    e.dist = it.weight == 1.0 ? PriorityDist::Uniform()
                              : PriorityDist::WeightedUniform(it.weight);
    out.push_back(e);
  }
  return out;
}

void BudgetSampler::LowerThresholdAndPurge(double other_threshold) {
  if (other_threshold >= threshold_) return;
  threshold_ = other_threshold;
  while (!items_.empty()) {
    auto last = std::prev(items_.end());
    if (last->priority < threshold_) break;
    used_ -= last->size;
    items_.erase(last);
  }
}

void BudgetSampler::Merge(const BudgetSampler& other) {
  if (&other == this) return;
  ATS_CHECK(other.budget_ == budget_);
  LowerThresholdAndPurge(other.threshold_);
  for (const Item& it : other.items_) {
    Insert(it.key, it.size, it.value, it.weight, it.priority);
  }
}

void BudgetSampler::SerializeTo(ByteWriter& w) const {
  WriteSketchHeader(w, kBudgetMagic, kBudgetVersion);
  w.WriteDouble(budget_);
  w.WriteDouble(threshold_);
  WriteRngState(w, rng_.State());
  w.WriteU64(items_.size());
  for (const Item& it : items_) {
    w.WriteU64(it.key);
    w.WriteDouble(it.size);
    w.WriteDouble(it.value);
    w.WriteDouble(it.weight);
    w.WriteDouble(it.priority);
  }
}

std::optional<BudgetSampler> BudgetSampler::Deserialize(ByteReader& r) {
  if (!ReadSketchHeader(r, kBudgetMagic, kBudgetVersion)) {
    return std::nullopt;
  }
  const auto budget = r.ReadDouble();
  if (!budget || !(*budget > 0.0) || !std::isfinite(*budget)) {
    return std::nullopt;
  }
  const auto threshold = r.ReadDouble();
  // +infinity (never exceeded the budget) is legal; NaN and <= 0 are not.
  if (!threshold || !(*threshold > 0.0)) return std::nullopt;
  const auto rng_state = ReadRngState(r);
  if (!rng_state) return std::nullopt;
  const auto count = r.ReadU64();
  if (!count) return std::nullopt;
  BudgetSampler sampler(*budget, /*seed=*/1);
  sampler.rng_.SetState(*rng_state);
  sampler.threshold_ = *threshold;
  double previous_priority = 0.0;
  for (uint64_t i = 0; i < *count; ++i) {
    const auto key = r.ReadU64();
    const auto size = r.ReadDouble();
    const auto value = r.ReadDouble();
    const auto weight = r.ReadDouble();
    const auto priority = r.ReadDouble();
    if (!key.has_value() || !size || !value || !weight || !priority) {
      return std::nullopt;
    }
    if (!ValidWireItem(*budget, *threshold, *size, *value, *weight,
                       *priority) ||
        *priority < previous_priority ||
        sampler.used_ + *size > *budget) {
      return std::nullopt;
    }
    previous_priority = *priority;
    Item item;
    item.key = *key;
    item.size = *size;
    item.value = *value;
    item.weight = *weight;
    item.priority = *priority;
    // End-hint insert: entries arrive in ascending order, and equal
    // priorities keep their wire order (byte-stability).
    sampler.items_.insert(sampler.items_.end(), item);
    sampler.used_ += *size;
  }
  return sampler;
}

FrameFault BudgetSampler::DiagnoseFrame(std::string_view frame) {
  const FrameFault f = ClassifyFrameBytes(frame, kBudgetMagic, kBudgetVersion);
  if (f != FrameFault::kNone) return f;
  return Deserialize(frame).has_value() ? FrameFault::kNone
                                        : FrameFault::kCorruptBody;
}

std::optional<BudgetSampler::FrameView> BudgetSampler::DeserializeView(
    std::string_view frame) {
  auto r = OpenCheckedFrame(frame, kBudgetMagic, kBudgetVersion);
  if (!r) return std::nullopt;
  const auto budget = r->ReadDouble();
  if (!budget || !(*budget > 0.0) || !std::isfinite(*budget)) {
    return std::nullopt;
  }
  const auto threshold = r->ReadDouble();
  if (!threshold || !(*threshold > 0.0)) return std::nullopt;
  if (!ReadRngState(*r)) return std::nullopt;
  const auto count = r->ReadU64();
  if (!count) return std::nullopt;
  const std::string_view entries = r->Rest();
  // Division-form length check: immune to count * stride overflow.
  if (entries.size() % FrameView::kStride != 0 ||
      *count != entries.size() / FrameView::kStride) {
    return std::nullopt;
  }
  FrameView view;
  view.budget_ = *budget;
  view.threshold_ = *threshold;
  view.entries_ = entries;
  double previous_priority = 0.0;
  double used = 0.0;
  for (size_t i = 0; i < view.size(); ++i) {
    if (!ValidWireItem(*budget, *threshold, view.item_size(i), view.value(i),
                       view.weight(i), view.priority(i)) ||
        view.priority(i) < previous_priority ||
        used + view.item_size(i) > *budget) {
      return std::nullopt;
    }
    previous_priority = view.priority(i);
    used += view.item_size(i);
  }
  return view;
}

bool BudgetSampler::MergeManyFrames(
    std::span<const std::string_view> frames) {
  // Vet every frame before the first one is applied (all-or-nothing).
  std::vector<FrameView> views;
  views.reserve(frames.size());
  for (std::string_view f : frames) {
    auto view = DeserializeView(f);
    if (!view || view->budget() != budget_) return false;
    views.push_back(*view);
  }
  // Apply per frame in span order -- exactly the Merge() rule, so the
  // result matches deserializing each frame and chaining Merge().
  for (const FrameView& v : views) {
    LowerThresholdAndPurge(v.threshold());
    for (size_t i = 0; i < v.size(); ++i) {
      Insert(v.key(i), v.item_size(i), v.value(i), v.weight(i),
             v.priority(i));
    }
  }
  return true;
}

}  // namespace ats
