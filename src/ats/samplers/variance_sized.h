// Variance-sized samples (Section 3.9) and the heuristic streaming version
// justified by the asymptotic theory (Section 6).
//
// Priority sampling bounds the *relative* error of a sum; to bound the
// *absolute* error at Var <= delta^2, the threshold is chosen as the
// stopping point T where the unbiased HT variance estimate first reaches
// delta^2 while scanning thresholds downward:
//
//   Vhat(S_t) = sum_{R_i < t, w_i t < 1} x_i^2 (1 - w_i t) / (w_i t).
//
// Between priority values Vhat is continuous and increasing as t
// decreases, so the stop crosses delta^2 exactly and E Vhat(S_T) = delta^2.
//
// Streaming subtlety (the paper's own caveat): Vhat_n(t) grows with the
// data, so the stopping threshold grows with the stream -- "the stopping
// time may be a larger threshold that includes additional points that are
// not in the sample". A sampler that eagerly discarded everything above
// its current crossing could never raise the threshold again; recovering
// the true stopping time requires oversampling. VarianceSizedSampler
// therefore retains the stream (the maximal oversampling that always
// recovers the exact stopping time) and exposes, at every prefix, the
// exact prefix stopping threshold and the sample below it. Bounded-memory
// deployments pair it with a known data scale (Section 3.10's AQP engine,
// where the scan direction makes the threshold grow naturally).
#ifndef ATS_SAMPLERS_VARIANCE_SIZED_H_
#define ATS_SAMPLERS_VARIANCE_SIZED_H_

#include <cstdint>
#include <vector>

#include "ats/core/random.h"
#include "ats/core/threshold.h"
#include "ats/util/memory.h"

namespace ats {

struct VarianceSizedItem {
  uint64_t key = 0;
  double value = 0.0;   // x_i, the summand
  double weight = 1.0;  // w_i, the sampling weight (priority R = U/w)
  double priority = 0.0;
};

struct VarianceSizedResult {
  double threshold = kInfiniteThreshold;
  std::vector<SampleEntry> sample;
};

// Exact offline stopping threshold over a complete item set: the largest t
// with Vhat(S_t) >= delta_squared. Returns +infinity (and the full sample
// at probability one) when the target cannot be reached by thinning.
VarianceSizedResult SolveVarianceSizedThreshold(
    std::vector<VarianceSizedItem> items, double delta_squared);

// Streaming wrapper: draws priorities internally and maintains the exact
// prefix stopping threshold. The prefix threshold is monotone
// NON-DECREASING in the stream length (more data forces a larger
// threshold for the same absolute target).
class VarianceSizedSampler {
 public:
  VarianceSizedSampler(double delta_squared, uint64_t seed);

  // Feeds one weighted item.
  void Add(uint64_t key, double value, double weight);

  // Exact stopping threshold for the stream so far.
  double Threshold() const;

  // Items below the current stopping threshold, with HT metadata.
  std::vector<SampleEntry> Sample() const;

  // Number of items in the current sample (below the threshold).
  size_t SampleSize() const;

  // HT variance estimate at the current threshold; equals delta^2 exactly
  // whenever the threshold is finite.
  double VarianceEstimate() const;

  size_t stream_size() const { return items_.size(); }

  // Live heap bytes of the retained item column (util/memory.h
  // convention). This sampler keeps the whole stream, so the figure
  // grows linearly -- which is exactly what the accounting should show.
  size_t MemoryFootprint() const { return VectorFootprint(items_); }

 private:
  void Refresh() const;

  double delta_squared_;
  Xoshiro256 rng_;
  std::vector<VarianceSizedItem> items_;
  mutable bool dirty_ = true;
  mutable double threshold_ = kInfiniteThreshold;
};

}  // namespace ats

#endif  // ATS_SAMPLERS_VARIANCE_SIZED_H_
