// Variance-sized samples (Section 3.9) and the heuristic streaming version
// justified by the asymptotic theory (Section 6).
//
// Priority sampling bounds the *relative* error of a sum; to bound the
// *absolute* error at Var <= delta^2, the threshold is chosen as the
// stopping point T where the unbiased HT variance estimate first reaches
// delta^2 while scanning thresholds downward:
//
//   Vhat(S_t) = sum_{R_i < t, w_i t < 1} x_i^2 (1 - w_i t) / (w_i t).
//
// Between priority values Vhat is continuous and increasing as t
// decreases, so the stop crosses delta^2 exactly and E Vhat(S_T) = delta^2.
//
// Streaming subtlety (the paper's own caveat): Vhat_n(t) grows with the
// data, so the stopping threshold grows with the stream -- "the stopping
// time may be a larger threshold that includes additional points that are
// not in the sample". A sampler that eagerly discarded everything above
// its current crossing could never raise the threshold again; recovering
// the true stopping time requires oversampling. VarianceSizedSampler
// therefore retains the stream (the maximal oversampling that always
// recovers the exact stopping time) and exposes, at every prefix, the
// exact prefix stopping threshold and the sample below it. Bounded-memory
// deployments pair it with a known data scale (Section 3.10's AQP engine,
// where the scan direction makes the threshold grow naturally).
#ifndef ATS_SAMPLERS_VARIANCE_SIZED_H_
#define ATS_SAMPLERS_VARIANCE_SIZED_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ats/core/random.h"
#include "ats/core/threshold.h"
#include "ats/util/memory.h"
#include "ats/util/serialize.h"

namespace ats {

struct VarianceSizedItem {
  uint64_t key = 0;
  double value = 0.0;   // x_i, the summand
  double weight = 1.0;  // w_i, the sampling weight (priority R = U/w)
  double priority = 0.0;
};

struct VarianceSizedResult {
  double threshold = kInfiniteThreshold;
  std::vector<SampleEntry> sample;
};

// Exact offline stopping threshold over a complete item set: the largest t
// with Vhat(S_t) >= delta_squared. Returns +infinity (and the full sample
// at probability one) when the target cannot be reached by thinning.
VarianceSizedResult SolveVarianceSizedThreshold(
    std::vector<VarianceSizedItem> items, double delta_squared);

// Streaming wrapper: draws priorities internally and maintains the exact
// prefix stopping threshold. The prefix threshold is monotone
// NON-DECREASING in the stream length (more data forces a larger
// threshold for the same absolute target).
class VarianceSizedSampler {
 public:
  VarianceSizedSampler(double delta_squared, uint64_t seed);

  // Feeds one weighted item.
  void Add(uint64_t key, double value, double weight);

  // Exact stopping threshold for the stream so far.
  double Threshold() const;

  // Items below the current stopping threshold, with HT metadata.
  std::vector<SampleEntry> Sample() const;

  // Number of items in the current sample (below the threshold).
  size_t SampleSize() const;

  // HT variance estimate at the current threshold; equals delta^2 exactly
  // whenever the threshold is finite.
  double VarianceEstimate() const;

  size_t stream_size() const { return items_.size(); }

  // Live heap bytes of the retained item column (util/memory.h
  // convention). This sampler keeps the whole stream, so the figure
  // grows linearly -- which is exactly what the accounting should show.
  size_t MemoryFootprint() const { return VectorFootprint(items_); }

  /// Merges a sampler over a disjoint stream. Because this sampler
  /// retains its whole stream (the maximal oversampling, see the file
  /// comment), the union of two streams is literally the concatenation
  /// of the retained item columns -- the merged prefix threshold then
  /// falls out of the same exact event scan. Both samplers must target
  /// the same delta^2. Self-merge is a no-op.
  void Merge(const VarianceSizedSampler& other);

  // --- Versioned wire format (magic "VSZ1") ---
  //
  // Frame: header, the delta^2 target, RNG state (a restored sampler
  // continues the exact priority stream), then the retained item column
  // in arrival order -- count, then count fixed-stride entries of
  // (key u64, value f64, weight f64, priority f64). Arrival order is
  // canonical, so serialize-deserialize-serialize is byte-stable.

  void SerializeTo(ByteWriter& w) const;
  static std::optional<VarianceSizedSampler> Deserialize(ByteReader& r);
  std::string SerializeToString() const { return SerializeSketch(*this); }
  static std::optional<VarianceSizedSampler> Deserialize(
      std::string_view bytes) {
    return DeserializeSketch<VarianceSizedSampler>(bytes);
  }

  /// Typed rejection reason for a frame Deserialize would refuse:
  /// structural cause first (kTruncated / kBadMagic / kBadVersion /
  /// checksum -> kCorruptBody), kCorruptBody for field- or entry-level
  /// violations, kNone iff the frame parses.
  static FrameFault DiagnoseFrame(std::string_view frame);

  /// Zero-copy read-only view over a whole serialized frame: the outer
  /// checksum/header/field layers are validated (including every entry's
  /// fields), then the fixed-stride entry region is exposed in place.
  /// Borrows the frame's storage; must not outlive it.
  class FrameView {
   public:
    double delta_squared() const { return delta_squared_; }
    size_t size() const { return entries_.size() / kStride; }
    uint64_t key(size_t i) const { return ReadAt<uint64_t>(i, 0); }
    double value(size_t i) const { return ReadAt<double>(i, 8); }
    double weight(size_t i) const { return ReadAt<double>(i, 16); }
    double priority(size_t i) const { return ReadAt<double>(i, 24); }

   private:
    friend class VarianceSizedSampler;
    static constexpr size_t kStride = sizeof(uint64_t) + 3 * sizeof(double);

    template <typename T>
    T ReadAt(size_t i, size_t offset) const {
      T v;
      std::memcpy(&v, entries_.data() + i * kStride + offset, sizeof(T));
      return v;
    }

    double delta_squared_ = 0.0;
    std::string_view entries_;
  };

  /// Parses a SerializeToString buffer; nullopt on exactly the inputs
  /// Deserialize rejects. Allocation-free.
  static std::optional<FrameView> DeserializeView(std::string_view frame);

  /// Merge straight off the wire: observationally identical to
  /// deserializing every frame and merging with Merge() in span order.
  /// Every frame must target this sampler's delta^2. Returns false --
  /// sampler observably unchanged -- if ANY frame fails validation; all
  /// frames are vetted before the first is applied.
  bool MergeManyFrames(std::span<const std::string_view> frames);

 private:
  void Refresh() const;

  double delta_squared_;
  Xoshiro256 rng_;
  std::vector<VarianceSizedItem> items_;
  mutable bool dirty_ = true;
  mutable double threshold_ = kInfiniteThreshold;
};

static_assert(MergeableSketch<VarianceSizedSampler>);

}  // namespace ats

#endif  // ATS_SAMPLERS_VARIANCE_SIZED_H_
