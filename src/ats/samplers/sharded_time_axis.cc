#include "ats/samplers/sharded_time_axis.h"

#include <algorithm>

#include "ats/core/epoch_cache.h"
#include "ats/core/random.h"
#include "ats/core/shard_routing.h"
#include "ats/util/check.h"

namespace ats {

// --- ShardedWindowSampler ----------------------------------------------

ShardedWindowSampler::ShardedWindowSampler(size_t num_shards, size_t k,
                                           double window, uint64_t seed)
    : k_(k),
      window_(window),
      route_salt_(internal::kTimeAxisRouteSalt),
      merged_epochs_(num_shards, 0) {
  ATS_CHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.emplace_back(k, window,
                         seed + internal::kShardSeedStride * s);
  }
}

size_t ShardedWindowSampler::ShardOf(uint64_t id) const {
  return static_cast<size_t>(HashKey(id, route_salt_) % shards_.size());
}

bool ShardedWindowSampler::Arrive(double time, uint64_t id) {
  return shards_[ShardOf(id)].Arrive(time, id);
}

SlidingWindowSampler& ShardedWindowSampler::MergedWindow() {
  const auto epoch_of = [](const SlidingWindowSampler& s) {
    return s.mutation_epoch();
  };
  if (merged_cache_.has_value() &&
      EpochsClean(shards_, merged_epochs_, epoch_of)) {
    return *merged_cache_;
  }
  // Some shard changed since the cached merge: rebuild through the k-way
  // windowed merge (global min improved threshold, one bottom-k
  // selection over the time-sorted union), then re-snapshot the epochs.
  // The merge reads the shards without advancing their expiry, so the
  // snapshot taken afterwards stays valid until the next ingest.
  SlidingWindowSampler merged(k_, window_, /*seed=*/1);
  std::vector<const SlidingWindowSampler*> inputs;
  inputs.reserve(shards_.size());
  for (const SlidingWindowSampler& shard : shards_) {
    inputs.push_back(&shard);
  }
  merged.MergeMany(inputs);
  SnapshotEpochs(shards_, merged_epochs_, epoch_of);
  merged_cache_.emplace(std::move(merged));
  return *merged_cache_;
}

double ShardedWindowSampler::ImprovedThreshold(double now) {
  return MergedWindow().ImprovedThreshold(now);
}

double ShardedWindowSampler::GlThreshold(double now) {
  return MergedWindow().GlThreshold(now);
}

std::vector<SampleEntry> ShardedWindowSampler::ImprovedSample(double now) {
  return MergedWindow().ImprovedSample(now);
}

std::vector<SampleEntry> ShardedWindowSampler::GlSample(double now) {
  return MergedWindow().GlSample(now);
}

size_t ShardedWindowSampler::MergedStoredCount(double now) {
  return MergedWindow().StoredCount(now);
}

// --- ShardedDecaySampler -----------------------------------------------

ShardedDecaySampler::ShardedDecaySampler(size_t num_shards, size_t k,
                                         uint64_t seed)
    : k_(k),
      route_salt_(internal::kTimeAxisRouteSalt),
      batch_scratch_(num_shards),
      merged_epochs_(num_shards, 0) {
  ATS_CHECK(num_shards >= 1);
  ATS_CHECK(k >= 1);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.emplace_back(k, seed + internal::kShardSeedStride * s);
  }
}

size_t ShardedDecaySampler::ShardOf(uint64_t key) const {
  return static_cast<size_t>(HashKey(key, route_salt_) % shards_.size());
}

bool ShardedDecaySampler::Add(uint64_t key, double weight, double value,
                              double time) {
  return shards_[ShardOf(key)].Add(key, weight, value, time);
}

size_t ShardedDecaySampler::AddBatch(
    std::span<const TimeDecaySampler::TimedItem> items) {
  if (shards_.size() == 1) return shards_[0].AddBatch(items);
  for (auto& scratch : batch_scratch_) {
    scratch.clear();
    scratch.reserve(items.size() / shards_.size() + 16);
  }
  for (const TimeDecaySampler::TimedItem& item : items) {
    batch_scratch_[ShardOf(item.key)].push_back(item);
  }
  size_t accepted = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    accepted += shards_[s].AddBatch(batch_scratch_[s]);
  }
  return accepted;
}

const TimeDecaySampler& ShardedDecaySampler::MergedDecay() const {
  const auto epoch_of = [](const TimeDecaySampler& s) {
    return s.mutation_epoch();
  };
  if (merged_cache_.has_value() &&
      EpochsClean(shards_, merged_epochs_, epoch_of)) {
    return *merged_cache_;
  }
  TimeDecaySampler merged(k_, /*seed=*/1);
  std::vector<const TimeDecaySampler*> inputs;
  inputs.reserve(shards_.size());
  for (const TimeDecaySampler& shard : shards_) inputs.push_back(&shard);
  merged.MergeMany(inputs);
  SnapshotEpochs(shards_, merged_epochs_, epoch_of);
  merged_cache_.emplace(std::move(merged));
  return *merged_cache_;
}

double ShardedDecaySampler::LogKeyThreshold() const {
  return MergedDecay().LogKeyThreshold();
}

std::vector<TimeDecaySampler::DecayedEntry> ShardedDecaySampler::SampleAt(
    double now) const {
  return MergedDecay().SampleAt(now);
}

double ShardedDecaySampler::EstimateDecayedTotal(double now) const {
  return MergedDecay().EstimateDecayedTotal(now);
}

size_t ShardedDecaySampler::TotalRetained() const {
  size_t total = 0;
  for (const TimeDecaySampler& shard : shards_) total += shard.size();
  return total;
}

}  // namespace ats
