#include "ats/samplers/time_decay.h"

#include <algorithm>
#include <cmath>

#include "ats/core/simd/fast_log.h"
#include "ats/core/simd/simd_dispatch.h"
#include "ats/util/check.h"

namespace {
constexpr uint32_t kDecayMagic = 0x54444b31;  // "TDK1"
constexpr uint32_t kDecayVersion = 1;
}  // namespace

namespace ats {

TimeDecaySampler::TimeDecaySampler(size_t k, uint64_t seed)
    : sketch_(k), rng_(seed) {}

bool TimeDecaySampler::Add(uint64_t key, double weight, double value,
                           double time) {
  ATS_CHECK(weight > 0.0);
  // One fused log: log(u) - log(w) == log(u / w) up to sub-ulp rounding,
  // and the sampler only needs SOME fixed monotone key function of u/w
  // -- so both Add and AddBatch compute FastLog(u / w) and halve the log
  // work of the naive two-log form. FastLog (not std::log) because its
  // vectorized form matches its scalar form bit-for-bit (fast_log.h), so
  // the batched path below reproduces this loop exactly. The division
  // saturates for weights outside ~[1e-300, 1e300] (u/w overflows to inf
  // or underflows toward 0); FastLog stays finite-or-+inf there and the
  // estimator is unaffected -- such items were never observable anyway.
  const double log_key =
      simd::FastLog(rng_.NextDoubleOpenZero() / weight) - time;
  return sketch_.Offer(log_key, Stored{key, weight, value, time});
}

size_t TimeDecaySampler::AddBatch(std::span<const TimedItem> items) {
  // Tiled so the scratch columns stay cache-resident: a single pass over
  // a large batch would stream ~40 bytes/item of freshly written columns
  // back in from memory in the later passes, which costs more than the
  // vectorized log saves. The tile size keeps log keys + payloads a few
  // hundred KB. Tiling changes nothing observable -- items are processed
  // in the same serial order, so the RNG stream and every acceptance
  // decision stay bit-identical to the Add() loop.
  constexpr size_t kBatchTile = 8192;
  size_t accepted = 0;
  for (size_t base = 0; base < items.size(); base += kBatchTile) {
    const size_t n = std::min(kBatchTile, items.size() - base);
    batch_log_keys_.resize(n);
    batch_payloads_.resize(n);
    // Column pass 1 (scalar: the generator recurrence is serial): draw
    // the uniform column in the same order as the Add() loop and divide
    // by the weight in place (the fused-log form, see Add()).
    for (size_t i = 0; i < n; ++i) {
      const TimedItem& it = items[base + i];
      ATS_CHECK(it.weight > 0.0);
      batch_log_keys_[i] = rng_.NextDoubleOpenZero() / it.weight;
      batch_payloads_[i] = Stored{it.key, it.weight, it.value, it.time};
    }
    // One dispatched vectorized log pass (the AddBatch hot spot: the
    // scalar log call per item dominates ingest), then the serial shift.
    // FastLog's SIMD form is bit-identical to its scalar form, so this
    // equals the Add() loop exactly: FastLog(u / w) - time.
    simd::ActiveKernels().log_span(batch_log_keys_.data(),
                                   batch_log_keys_.data(), n);
    for (size_t i = 0; i < n; ++i) {
      batch_log_keys_[i] -= items[base + i].time;
    }
    accepted += sketch_.OfferBatch(batch_log_keys_, batch_payloads_);
  }
  return accepted;
}

std::vector<TimeDecaySampler::DecayedEntry> TimeDecaySampler::SampleAt(
    double now) const {
  std::vector<DecayedEntry> out;
  out.reserve(sketch_.size());
  const double log_threshold = sketch_.Threshold();
  for (const Stored& s : sketch_.store().payloads()) {
    DecayedEntry d;
    d.key = s.key;
    d.value = s.value;
    d.arrival_time = s.arrival_time;
    d.decayed_weight = s.weight * std::exp(-(now - s.arrival_time));
    // pi = P(K < tau) = min(1, w e^{t_i} tau), computed in log space:
    // log(w) + t_i + log(tau), clamped at 0.
    const double log_pi =
        std::log(s.weight) + s.arrival_time + log_threshold;
    d.inclusion_probability = std::exp(std::min(0.0, log_pi));
    d.ht_value = d.value * d.decayed_weight / d.inclusion_probability;
    out.push_back(d);
  }
  return out;
}

double TimeDecaySampler::EstimateDecayedTotal(double now) const {
  double total = 0.0;
  for (const DecayedEntry& d : SampleAt(now)) total += d.ht_value;
  return total;
}

void TimeDecaySampler::SerializeTo(ByteWriter& w) const {
  WriteSketchHeader(w, kDecayMagic, kDecayVersion);
  WriteRngState(w, rng_.State());
  sketch_.SerializeTo(w);  // the nested BottomK frame carries the sample
}

std::optional<TimeDecaySampler> TimeDecaySampler::Deserialize(
    ByteReader& r) {
  if (!ReadSketchHeader(r, kDecayMagic, kDecayVersion)) {
    return std::nullopt;
  }
  const auto rng_state = ReadRngState(r);
  if (!rng_state) return std::nullopt;
  auto sketch = BottomK<Stored>::Deserialize(r);
  if (!sketch) return std::nullopt;
  TimeDecaySampler sampler(sketch->k(), /*seed=*/1);
  sampler.sketch_ = std::move(*sketch);
  sampler.rng_.SetState(*rng_state);
  return sampler;
}

FrameFault TimeDecaySampler::DiagnoseFrame(std::string_view frame) {
  const FrameFault f = ClassifyFrameBytes(frame, kDecayMagic, kDecayVersion);
  if (f != FrameFault::kNone) return f;
  return Deserialize(frame).has_value() ? FrameFault::kNone
                                        : FrameFault::kCorruptBody;
}

std::optional<TimeDecaySampler::FrameView> TimeDecaySampler::DeserializeView(
    std::string_view frame) {
  auto r = OpenCheckedFrame(frame, kDecayMagic, kDecayVersion);
  if (!r) return std::nullopt;
  if (!ReadRngState(*r)) return std::nullopt;
  // The rest of the body is exactly the embedded bottom-k sample region.
  auto sample = BottomK<Stored>::ViewBody(r->Rest());
  if (!sample) return std::nullopt;
  FrameView view;
  view.sample_ = *sample;
  return view;
}

bool TimeDecaySampler::MergeManyFrames(
    std::span<const std::string_view> frames) {
  // Vet every frame before the first one is applied (all-or-nothing).
  std::vector<BottomK<Stored>::FrameView> views;
  views.reserve(frames.size());
  for (std::string_view f : frames) {
    auto view = DeserializeView(f);
    if (!view) return false;
    views.push_back(view->sample_);
  }
  if (views.empty()) return true;  // strict no-op, like MergeMany({})
  sketch_.MergeValidatedViews(views);
  return true;
}

}  // namespace ats
