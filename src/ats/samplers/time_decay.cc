#include "ats/samplers/time_decay.h"

#include <cmath>

#include "ats/util/check.h"

namespace ats {

TimeDecaySampler::TimeDecaySampler(size_t k, uint64_t seed)
    : sketch_(k), rng_(seed) {}

bool TimeDecaySampler::Add(uint64_t key, double weight, double value,
                           double time) {
  ATS_CHECK(weight > 0.0);
  const double log_key =
      std::log(rng_.NextDoubleOpenZero()) - std::log(weight) - time;
  return sketch_.Offer(log_key, Stored{key, weight, value, time});
}

std::vector<TimeDecaySampler::DecayedEntry> TimeDecaySampler::SampleAt(
    double now) const {
  std::vector<DecayedEntry> out;
  out.reserve(sketch_.size());
  const double log_threshold = sketch_.Threshold();
  for (const Stored& s : sketch_.store().payloads()) {
    DecayedEntry d;
    d.key = s.key;
    d.value = s.value;
    d.arrival_time = s.arrival_time;
    d.decayed_weight = s.weight * std::exp(-(now - s.arrival_time));
    // pi = P(K < tau) = min(1, w e^{t_i} tau), computed in log space:
    // log(w) + t_i + log(tau), clamped at 0.
    const double log_pi =
        std::log(s.weight) + s.arrival_time + log_threshold;
    d.inclusion_probability = std::exp(std::min(0.0, log_pi));
    d.ht_value = d.value * d.decayed_weight / d.inclusion_probability;
    out.push_back(d);
  }
  return out;
}

double TimeDecaySampler::EstimateDecayedTotal(double now) const {
  double total = 0.0;
  for (const DecayedEntry& d : SampleAt(now)) total += d.ht_value;
  return total;
}

}  // namespace ats
