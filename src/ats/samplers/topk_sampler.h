// Adaptive top-k sampling (Section 3.3, Figure 3).
//
// A top-k sketch must return the k most frequent items *whatever* their
// frequencies are, so the right sketch size cannot be chosen in advance
// (unlike the heavy-hitter problem). This sampler learns to downsample
// infrequent items: it keeps a variable-length list of entries
// (item, priority, threshold T_i, post-entry count v_i) with unbiased
// count estimate c_i = 1/T_i + v_i, and maintains the adaptive threshold
//
//   T(t) = smallest priority such that at least k items have c_i > 1/T(t),
//
// i.e. 1/T(t) tracks the k-th largest estimated count. When T(t) drops,
// only infrequent items (c_i <= 1/T) are re-thresholded: those whose
// priority is at/above T are discarded, survivors restart at threshold T.
//
// Unbiasedness through re-thresholding: each infrequent item's priority is
// maintained under the invariant Q_i ~ Uniform(0, 1/c_i) -- the item's
// estimated count acts as its weight, exactly the priority-sampling view
// of Unbiased Space-Saving [30] that this procedure generalizes. Survival
// (Q_i < T) then has probability T * c_i and the surviving estimate 1/T
// satisfies E[new estimate] = c_old, so disaggregated subset sums stay
// unbiased (the substitutability of the rule: zeroing sampled priorities
// changes neither sample nor thresholds).
#ifndef ATS_SAMPLERS_TOPK_SAMPLER_H_
#define ATS_SAMPLERS_TOPK_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "ats/core/random.h"
#include "ats/core/threshold.h"
#include "ats/util/memory.h"

namespace ats {

class TopKSampler {
 public:
  struct ItemState {
    uint64_t item = 0;
    double priority = 0.0;   // Q_i ~ Uniform(0, 1/c_i) invariant
    double threshold = 1.0;  // T_i at entry / last re-threshold
    int64_t count = 0;       // v_i: occurrences after entry
    double Estimate() const { return 1.0 / threshold + count; }
  };

  // k: how many top items to track. `compaction_slack` controls how often
  // the adaptive threshold is refreshed (refresh when the sketch grows by
  // this factor since the last refresh; 1.25 is a good default).
  TopKSampler(size_t k, uint64_t seed, double compaction_slack = 1.25);

  // Processes one stream element.
  void Add(uint64_t item);

  // Processes a batch of stream elements: exactly equivalent to calling
  // Add() on each element in order (same table, same RNG stream, same
  // compaction points). The batched entry point hoists the per-call
  // overhead out of ingest loops; the table lookup dominates, so unlike
  // the store-backed samplers there is no priority column to pre-filter
  // -- entry priorities are drawn only for unseen items, after the
  // lookup. Returns the number of elements that entered as new entries.
  size_t AddBatch(std::span<const uint64_t> items);

  // The current adaptive threshold T(t).
  double Threshold() const { return threshold_; }

  // Number of entries currently stored (the "size" of Figure 3 right).
  size_t size() const { return table_.size(); }

  // Live heap bytes of the counter table, modeled per util/memory.h.
  size_t MemoryFootprint() const { return HashFootprint(table_); }

  // Unbiased estimate of `item`'s count (0 when not in the sketch).
  double EstimatedCount(uint64_t item) const;

  // The k items with largest estimated counts, descending.
  std::vector<uint64_t> TopK() const;

  // All entries, for diagnostics and disaggregated estimation.
  std::vector<ItemState> Entries() const;

  // Sample entries for HT-style disaggregated subset sums: value = the
  // item's unbiased count estimate, inclusion probability already folded
  // in (entries carry pi = 1, since Estimate() is itself the HT value).
  // Summing Estimate() over a key subset estimates that subset's total
  // count unbiasedly.
  double EstimatedSubsetCount(
      const std::function<bool(uint64_t)>& in_subset) const;

  // Forces a threshold refresh (also runs automatically).
  void Compact();

  int64_t total_count() const { return total_; }

 private:
  // One stream element: the shared body of Add and AddBatch. Returns
  // true iff the element entered the table as a new entry.
  bool AddOne(uint64_t item);

  size_t k_;
  double compaction_slack_;
  Xoshiro256 rng_;
  double threshold_ = 1.0;
  std::unordered_map<uint64_t, ItemState> table_;
  size_t compact_at_ = 16;  // size watermark that triggers Compact()
  int64_t total_ = 0;
};

}  // namespace ats

#endif  // ATS_SAMPLERS_TOPK_SAMPLER_H_
