#include "ats/samplers/variance_sized.h"

#include <algorithm>
#include <cmath>

#include "ats/util/check.h"

namespace ats {

namespace {

// Downward event scan over thresholds. Two event types per item: the term
// x^2 (1 - w t)/(w t) activates at t = 1/w (it is zero above, where pi = 1)
// and disappears at t = R (the item leaves the sample). Between events
// Vhat(t) = A/t - C with A = sum x^2/w and C = sum x^2 over active items,
// increasing as t decreases, so the first crossing of delta^2 solves
// t = A / (delta^2 + C). Returns +infinity when no crossing exists.
double FirstCrossing(const std::vector<VarianceSizedItem>& items,
                     double delta_squared) {
  struct Event {
    double t;
    double a_delta;  // change to A when scanning below t
    double c_delta;  // change to C when scanning below t
  };
  std::vector<Event> events;
  events.reserve(2 * items.size());
  for (const VarianceSizedItem& it : items) {
    const double x2 = it.value * it.value;
    events.push_back(Event{1.0 / it.weight, x2 / it.weight, x2});
    events.push_back(Event{it.priority, -x2 / it.weight, -x2});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.t > b.t; });
  double a_sum = 0.0, c_sum = 0.0;
  for (size_t i = 0; i < events.size(); ++i) {
    a_sum += events[i].a_delta;
    c_sum += events[i].c_delta;
    const double t_hi = events[i].t;
    const double t_lo = i + 1 < events.size() ? events[i + 1].t : 0.0;
    if (a_sum <= 0.0) continue;
    const double cross = a_sum / (delta_squared + c_sum);
    // Vhat(t_hi) < delta^2 is an invariant of the scan, so cross < t_hi;
    // the crossing is realized iff it lies above the next event.
    if (cross > t_lo && cross <= t_hi) return cross;
  }
  return kInfiniteThreshold;
}

SampleEntry ToEntry(const VarianceSizedItem& it, double threshold) {
  SampleEntry e = MakeWeightedEntry(it.key, it.weight, it.priority, threshold);
  e.value = it.value;
  return e;
}

}  // namespace

VarianceSizedResult SolveVarianceSizedThreshold(
    std::vector<VarianceSizedItem> items, double delta_squared) {
  ATS_CHECK(delta_squared > 0.0);
  VarianceSizedResult result;
  result.threshold = FirstCrossing(items, delta_squared);
  for (const VarianceSizedItem& it : items) {
    if (it.priority < result.threshold) {
      result.sample.push_back(ToEntry(it, result.threshold));
    }
  }
  return result;
}

VarianceSizedSampler::VarianceSizedSampler(double delta_squared,
                                           uint64_t seed)
    : delta_squared_(delta_squared), rng_(seed) {
  ATS_CHECK(delta_squared > 0.0);
}

void VarianceSizedSampler::Add(uint64_t key, double value, double weight) {
  ATS_CHECK(weight > 0.0);
  VarianceSizedItem item;
  item.key = key;
  item.value = value;
  item.weight = weight;
  item.priority = rng_.NextDoubleOpenZero() / weight;
  items_.push_back(item);
  dirty_ = true;
}

void VarianceSizedSampler::Refresh() const {
  if (!dirty_) return;
  threshold_ = FirstCrossing(items_, delta_squared_);
  dirty_ = false;
}

double VarianceSizedSampler::Threshold() const {
  Refresh();
  return threshold_;
}

std::vector<SampleEntry> VarianceSizedSampler::Sample() const {
  Refresh();
  std::vector<SampleEntry> out;
  for (const VarianceSizedItem& it : items_) {
    if (it.priority < threshold_) out.push_back(ToEntry(it, threshold_));
  }
  return out;
}

size_t VarianceSizedSampler::SampleSize() const {
  Refresh();
  size_t n = 0;
  for (const VarianceSizedItem& it : items_) n += it.priority < threshold_;
  return n;
}

double VarianceSizedSampler::VarianceEstimate() const {
  Refresh();
  double v = 0.0;
  for (const VarianceSizedItem& it : items_) {
    if (it.priority >= threshold_) continue;
    const double pi = std::min(1.0, it.weight * threshold_);
    if (pi < 1.0) v += it.value * it.value * (1.0 - pi) / pi;
  }
  return v;
}

}  // namespace ats
