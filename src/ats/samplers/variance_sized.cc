#include "ats/samplers/variance_sized.h"

#include <algorithm>
#include <cmath>

#include "ats/util/check.h"

namespace ats {

namespace {

constexpr uint32_t kVarianceMagic = 0x315a5356;  // "VSZ1"
constexpr uint32_t kVarianceVersion = 1;

// Entry-level wire validation: the summand must be finite, the weight a
// positive finite double (priorities divide by it), and the priority a
// positive finite draw (U/w with U in (0,1] and finite w is never 0,
// inf, or NaN).
bool ValidWireItem(double value, double weight, double priority) {
  return std::isfinite(value) && weight > 0.0 && std::isfinite(weight) &&
         priority > 0.0 && std::isfinite(priority);
}

// Downward event scan over thresholds. Two event types per item: the term
// x^2 (1 - w t)/(w t) activates at t = 1/w (it is zero above, where pi = 1)
// and disappears at t = R (the item leaves the sample). Between events
// Vhat(t) = A/t - C with A = sum x^2/w and C = sum x^2 over active items,
// increasing as t decreases, so the first crossing of delta^2 solves
// t = A / (delta^2 + C). Returns +infinity when no crossing exists.
double FirstCrossing(const std::vector<VarianceSizedItem>& items,
                     double delta_squared) {
  struct Event {
    double t;
    double a_delta;  // change to A when scanning below t
    double c_delta;  // change to C when scanning below t
  };
  std::vector<Event> events;
  events.reserve(2 * items.size());
  for (const VarianceSizedItem& it : items) {
    const double x2 = it.value * it.value;
    events.push_back(Event{1.0 / it.weight, x2 / it.weight, x2});
    events.push_back(Event{it.priority, -x2 / it.weight, -x2});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.t > b.t; });
  double a_sum = 0.0, c_sum = 0.0;
  for (size_t i = 0; i < events.size(); ++i) {
    a_sum += events[i].a_delta;
    c_sum += events[i].c_delta;
    const double t_hi = events[i].t;
    const double t_lo = i + 1 < events.size() ? events[i + 1].t : 0.0;
    if (a_sum <= 0.0) continue;
    const double cross = a_sum / (delta_squared + c_sum);
    // Vhat(t_hi) < delta^2 is an invariant of the scan, so cross < t_hi;
    // the crossing is realized iff it lies above the next event.
    if (cross > t_lo && cross <= t_hi) return cross;
  }
  return kInfiniteThreshold;
}

SampleEntry ToEntry(const VarianceSizedItem& it, double threshold) {
  SampleEntry e = MakeWeightedEntry(it.key, it.weight, it.priority, threshold);
  e.value = it.value;
  return e;
}

}  // namespace

VarianceSizedResult SolveVarianceSizedThreshold(
    std::vector<VarianceSizedItem> items, double delta_squared) {
  ATS_CHECK(delta_squared > 0.0);
  VarianceSizedResult result;
  result.threshold = FirstCrossing(items, delta_squared);
  for (const VarianceSizedItem& it : items) {
    if (it.priority < result.threshold) {
      result.sample.push_back(ToEntry(it, result.threshold));
    }
  }
  return result;
}

VarianceSizedSampler::VarianceSizedSampler(double delta_squared,
                                           uint64_t seed)
    : delta_squared_(delta_squared), rng_(seed) {
  ATS_CHECK(delta_squared > 0.0);
}

void VarianceSizedSampler::Add(uint64_t key, double value, double weight) {
  ATS_CHECK(weight > 0.0);
  VarianceSizedItem item;
  item.key = key;
  item.value = value;
  item.weight = weight;
  item.priority = rng_.NextDoubleOpenZero() / weight;
  items_.push_back(item);
  dirty_ = true;
}

void VarianceSizedSampler::Refresh() const {
  if (!dirty_) return;
  threshold_ = FirstCrossing(items_, delta_squared_);
  dirty_ = false;
}

double VarianceSizedSampler::Threshold() const {
  Refresh();
  return threshold_;
}

std::vector<SampleEntry> VarianceSizedSampler::Sample() const {
  Refresh();
  std::vector<SampleEntry> out;
  for (const VarianceSizedItem& it : items_) {
    if (it.priority < threshold_) out.push_back(ToEntry(it, threshold_));
  }
  return out;
}

size_t VarianceSizedSampler::SampleSize() const {
  Refresh();
  size_t n = 0;
  for (const VarianceSizedItem& it : items_) n += it.priority < threshold_;
  return n;
}

double VarianceSizedSampler::VarianceEstimate() const {
  Refresh();
  double v = 0.0;
  for (const VarianceSizedItem& it : items_) {
    if (it.priority >= threshold_) continue;
    const double pi = std::min(1.0, it.weight * threshold_);
    if (pi < 1.0) v += it.value * it.value * (1.0 - pi) / pi;
  }
  return v;
}

void VarianceSizedSampler::Merge(const VarianceSizedSampler& other) {
  if (&other == this) return;
  ATS_CHECK(other.delta_squared_ == delta_squared_);
  if (other.items_.empty()) return;
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
  dirty_ = true;
}

void VarianceSizedSampler::SerializeTo(ByteWriter& w) const {
  WriteSketchHeader(w, kVarianceMagic, kVarianceVersion);
  w.WriteDouble(delta_squared_);
  WriteRngState(w, rng_.State());
  w.WriteU64(items_.size());
  for (const VarianceSizedItem& it : items_) {
    w.WriteU64(it.key);
    w.WriteDouble(it.value);
    w.WriteDouble(it.weight);
    w.WriteDouble(it.priority);
  }
}

std::optional<VarianceSizedSampler> VarianceSizedSampler::Deserialize(
    ByteReader& r) {
  if (!ReadSketchHeader(r, kVarianceMagic, kVarianceVersion)) {
    return std::nullopt;
  }
  const auto delta_squared = r.ReadDouble();
  if (!delta_squared || !(*delta_squared > 0.0) ||
      !std::isfinite(*delta_squared)) {
    return std::nullopt;
  }
  const auto rng_state = ReadRngState(r);
  if (!rng_state) return std::nullopt;
  const auto count = r.ReadU64();
  if (!count) return std::nullopt;
  VarianceSizedSampler sampler(*delta_squared, /*seed=*/1);
  sampler.rng_.SetState(*rng_state);
  for (uint64_t i = 0; i < *count; ++i) {
    const auto key = r.ReadU64();
    const auto value = r.ReadDouble();
    const auto weight = r.ReadDouble();
    const auto priority = r.ReadDouble();
    if (!key.has_value() || !value || !weight || !priority) {
      return std::nullopt;
    }
    if (!ValidWireItem(*value, *weight, *priority)) return std::nullopt;
    sampler.items_.push_back(
        VarianceSizedItem{*key, *value, *weight, *priority});
  }
  return sampler;
}

FrameFault VarianceSizedSampler::DiagnoseFrame(std::string_view frame) {
  const FrameFault f =
      ClassifyFrameBytes(frame, kVarianceMagic, kVarianceVersion);
  if (f != FrameFault::kNone) return f;
  return Deserialize(frame).has_value() ? FrameFault::kNone
                                        : FrameFault::kCorruptBody;
}

std::optional<VarianceSizedSampler::FrameView>
VarianceSizedSampler::DeserializeView(std::string_view frame) {
  auto r = OpenCheckedFrame(frame, kVarianceMagic, kVarianceVersion);
  if (!r) return std::nullopt;
  const auto delta_squared = r->ReadDouble();
  if (!delta_squared || !(*delta_squared > 0.0) ||
      !std::isfinite(*delta_squared)) {
    return std::nullopt;
  }
  if (!ReadRngState(*r)) return std::nullopt;
  const auto count = r->ReadU64();
  if (!count) return std::nullopt;
  const std::string_view entries = r->Rest();
  // Division-form length check: immune to count * stride overflow.
  if (entries.size() % FrameView::kStride != 0 ||
      *count != entries.size() / FrameView::kStride) {
    return std::nullopt;
  }
  FrameView view;
  view.delta_squared_ = *delta_squared;
  view.entries_ = entries;
  for (size_t i = 0; i < view.size(); ++i) {
    if (!ValidWireItem(view.value(i), view.weight(i), view.priority(i))) {
      return std::nullopt;
    }
  }
  return view;
}

bool VarianceSizedSampler::MergeManyFrames(
    std::span<const std::string_view> frames) {
  // Vet every frame before the first one is applied (all-or-nothing).
  std::vector<FrameView> views;
  views.reserve(frames.size());
  for (std::string_view f : frames) {
    auto view = DeserializeView(f);
    if (!view || view->delta_squared() != delta_squared_) return false;
    views.push_back(*view);
  }
  for (const FrameView& v : views) {
    for (size_t i = 0; i < v.size(); ++i) {
      items_.push_back(
          VarianceSizedItem{v.key(i), v.value(i), v.weight(i), v.priority(i)});
      dirty_ = true;
    }
  }
  return true;
}

}  // namespace ats
