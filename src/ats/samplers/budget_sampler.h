// Memory-budget sampling with variable item sizes (Section 3.1).
//
// A bottom-k sketch guarantees k items, but when item sizes vary the
// memory footprint varies with them; honoring a hard budget B forces the
// conservative choice k = B / L_max. The budget thresholding rule instead
// takes as many items as fit: order items by ascending priority and accept
// the maximal prefix whose cumulative size is <= B; the threshold is the
// priority of the first item that overflows the budget. Like bottom-k, the
// values of the retained (smaller) priorities are irrelevant to the
// threshold, so it is fully substitutable and the usual HT estimators
// apply whenever B >= L_max (every item has non-zero inclusion
// probability; B >= 2 L_max for the variance estimator).
#ifndef ATS_SAMPLERS_BUDGET_SAMPLER_H_
#define ATS_SAMPLERS_BUDGET_SAMPLER_H_

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "ats/core/random.h"
#include "ats/core/threshold.h"
#include "ats/util/memory.h"

namespace ats {

class BudgetSampler {
 public:
  struct Item {
    uint64_t key = 0;
    double size = 0.0;   // storage cost against the budget
    double value = 0.0;  // aggregation value
    double weight = 1.0; // sampling weight (1 = uniform)
    double priority = 0.0;
  };

  // budget: total size capacity B (> 0).
  BudgetSampler(double budget, uint64_t seed);

  // Feeds one item (size must be positive and should not exceed the
  // budget; oversized items can never be sampled and are rejected).
  // Returns true iff the item is currently retained.
  bool Add(uint64_t key, double size, double value, double weight = 1.0);

  // One batched-ingest input (AddBatch).
  struct BatchItem {
    uint64_t key = 0;
    double size = 0.0;
    double value = 0.0;
    double weight = 1.0;
  };

  // Batched ingest: exactly equivalent to calling Add() on each item in
  // order (same retained set, threshold, and RNG stream), but priorities
  // are drawn into a dense column and each 64-item block is culled
  // against the current threshold with the shared branch-free compare
  // scan (the budget threshold only ever decreases, so items culled
  // against the block-start snapshot would also be rejected one at a
  // time with no state change; survivors re-check the live threshold).
  // Returns the number of items accepted at their insertion instant.
  size_t AddBatch(std::span<const BatchItem> items);

  // Current adaptive threshold: priority of the first item (ascending
  // priority order over the whole stream) that would overflow the budget;
  // +infinity until the budget has ever been exceeded.
  double Threshold() const { return threshold_; }

  // Total size of retained items (always <= budget).
  double UsedBudget() const { return used_; }

  size_t size() const { return items_.size(); }

  // Live heap bytes of the retained multiset, modeled per
  // util/memory.h; excludes the reusable AddBatch scratch column.
  size_t MemoryFootprint() const { return TreeFootprint(items_); }
  double budget() const { return budget_; }

  // Sample entries for HT estimation. Weighted items carry
  // WeightedUniform(w) priorities; uniform items carry Uniform priorities.
  std::vector<SampleEntry> Sample() const;

 private:
  void Shrink();
  // The insertion tail shared by Add and AddBatch: threshold re-check,
  // multiset insert, budget shrink. Returns true iff the item is still
  // retained after the shrink.
  bool Insert(uint64_t key, double size, double value, double weight,
              double priority);

  double budget_;
  Xoshiro256 rng_;
  double threshold_ = kInfiniteThreshold;
  double used_ = 0.0;
  // Retained items ordered by ascending priority.
  std::multiset<Item, bool (*)(const Item&, const Item&)> items_;
  // Priority column scratch for AddBatch (reused across calls).
  std::vector<double> batch_priorities_;
};

}  // namespace ats

#endif  // ATS_SAMPLERS_BUDGET_SAMPLER_H_
