// Memory-budget sampling with variable item sizes (Section 3.1).
//
// A bottom-k sketch guarantees k items, but when item sizes vary the
// memory footprint varies with them; honoring a hard budget B forces the
// conservative choice k = B / L_max. The budget thresholding rule instead
// takes as many items as fit: order items by ascending priority and accept
// the maximal prefix whose cumulative size is <= B; the threshold is the
// priority of the first item that overflows the budget. Like bottom-k, the
// values of the retained (smaller) priorities are irrelevant to the
// threshold, so it is fully substitutable and the usual HT estimators
// apply whenever B >= L_max (every item has non-zero inclusion
// probability; B >= 2 L_max for the variance estimator).
#ifndef ATS_SAMPLERS_BUDGET_SAMPLER_H_
#define ATS_SAMPLERS_BUDGET_SAMPLER_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ats/core/random.h"
#include "ats/core/threshold.h"
#include "ats/util/memory.h"
#include "ats/util/serialize.h"

namespace ats {

class BudgetSampler {
 public:
  struct Item {
    uint64_t key = 0;
    double size = 0.0;   // storage cost against the budget
    double value = 0.0;  // aggregation value
    double weight = 1.0; // sampling weight (1 = uniform)
    double priority = 0.0;
  };

  // budget: total size capacity B (> 0).
  BudgetSampler(double budget, uint64_t seed);

  // Feeds one item (size must be positive and should not exceed the
  // budget; oversized items can never be sampled and are rejected).
  // Returns true iff the item is currently retained.
  bool Add(uint64_t key, double size, double value, double weight = 1.0);

  // One batched-ingest input (AddBatch).
  struct BatchItem {
    uint64_t key = 0;
    double size = 0.0;
    double value = 0.0;
    double weight = 1.0;
  };

  // Batched ingest: exactly equivalent to calling Add() on each item in
  // order (same retained set, threshold, and RNG stream), but priorities
  // are drawn into a dense column and each 64-item block is culled
  // against the current threshold with the shared branch-free compare
  // scan (the budget threshold only ever decreases, so items culled
  // against the block-start snapshot would also be rejected one at a
  // time with no state change; survivors re-check the live threshold).
  // Returns the number of items accepted at their insertion instant.
  size_t AddBatch(std::span<const BatchItem> items);

  // Current adaptive threshold: priority of the first item (ascending
  // priority order over the whole stream) that would overflow the budget;
  // +infinity until the budget has ever been exceeded.
  double Threshold() const { return threshold_; }

  // Total size of retained items (always <= budget).
  double UsedBudget() const { return used_; }

  size_t size() const { return items_.size(); }

  // Live heap bytes of the retained multiset, modeled per
  // util/memory.h; excludes the reusable AddBatch scratch column.
  size_t MemoryFootprint() const { return TreeFootprint(items_); }
  double budget() const { return budget_; }

  // Sample entries for HT estimation. Weighted items carry
  // WeightedUniform(w) priorities; uniform items carry Uniform priorities.
  std::vector<SampleEntry> Sample() const;

  /// Merges a sampler over a disjoint stream, per the budget union rule:
  /// the merged threshold starts at min of the two (items lost above
  /// either threshold are unknowable), survivors above it are purged,
  /// then the other sampler's retained items are re-offered in ascending
  /// priority order with the budget shrink re-applied. Both samplers
  /// must share the budget B. Self-merge is a no-op.
  void Merge(const BudgetSampler& other);

  // --- Versioned wire format (magic "BGT1") ---
  //
  // Frame: header, budget B, current threshold, RNG state, then the
  // retained items in ascending priority order -- count, then count
  // fixed-stride entries of (key u64, size f64, value f64, weight f64,
  // priority f64). Ascending multiset order is canonical (equal
  // priorities keep their relative order through a round trip, since
  // multiset::insert places equals last), so
  // serialize-deserialize-serialize is byte-stable. Entries must be
  // non-decreasing in priority, strictly below the threshold, with
  // positive sizes that cumulatively fit the budget.

  void SerializeTo(ByteWriter& w) const;
  static std::optional<BudgetSampler> Deserialize(ByteReader& r);
  std::string SerializeToString() const { return SerializeSketch(*this); }
  static std::optional<BudgetSampler> Deserialize(std::string_view bytes) {
    return DeserializeSketch<BudgetSampler>(bytes);
  }

  /// Typed rejection reason for a frame Deserialize would refuse:
  /// structural cause first (kTruncated / kBadMagic / kBadVersion /
  /// checksum -> kCorruptBody), kCorruptBody for field- or entry-level
  /// violations, kNone iff the frame parses.
  static FrameFault DiagnoseFrame(std::string_view frame);

  /// Zero-copy read-only view over a whole serialized frame: every
  /// layer validated (including the per-entry rules above), the
  /// fixed-stride entry region exposed in place. Borrows the frame's
  /// storage; must not outlive it.
  class FrameView {
   public:
    double budget() const { return budget_; }
    double threshold() const { return threshold_; }
    size_t size() const { return entries_.size() / kStride; }
    uint64_t key(size_t i) const { return ReadAt<uint64_t>(i, 0); }
    double item_size(size_t i) const { return ReadAt<double>(i, 8); }
    double value(size_t i) const { return ReadAt<double>(i, 16); }
    double weight(size_t i) const { return ReadAt<double>(i, 24); }
    double priority(size_t i) const { return ReadAt<double>(i, 32); }

   private:
    friend class BudgetSampler;
    static constexpr size_t kStride = sizeof(uint64_t) + 4 * sizeof(double);

    template <typename T>
    T ReadAt(size_t i, size_t offset) const {
      T v;
      std::memcpy(&v, entries_.data() + i * kStride + offset, sizeof(T));
      return v;
    }

    double budget_ = 0.0;
    double threshold_ = kInfiniteThreshold;
    std::string_view entries_;
  };

  /// Parses a SerializeToString buffer; nullopt on exactly the inputs
  /// Deserialize rejects. Allocation-free.
  static std::optional<FrameView> DeserializeView(std::string_view frame);

  /// Merge straight off the wire: observationally identical to
  /// deserializing every frame and merging with Merge() in span order.
  /// Every frame must carry this sampler's budget. Returns false --
  /// sampler observably unchanged -- if ANY frame fails validation; all
  /// frames are vetted before the first is applied.
  bool MergeManyFrames(std::span<const std::string_view> frames);

 private:
  void Shrink();
  // The shared first half of the merge rule: adopt the lower threshold
  // and purge retained items no longer strictly below it.
  void LowerThresholdAndPurge(double other_threshold);
  // The insertion tail shared by Add and AddBatch: threshold re-check,
  // multiset insert, budget shrink. Returns true iff the item is still
  // retained after the shrink.
  bool Insert(uint64_t key, double size, double value, double weight,
              double priority);

  double budget_;
  Xoshiro256 rng_;
  double threshold_ = kInfiniteThreshold;
  double used_ = 0.0;
  // Retained items ordered by ascending priority.
  std::multiset<Item, bool (*)(const Item&, const Item&)> items_;
  // Priority column scratch for AddBatch (reused across calls).
  std::vector<double> batch_priorities_;
};

static_assert(MergeableSketch<BudgetSampler>);

}  // namespace ats

#endif  // ATS_SAMPLERS_BUDGET_SAMPLER_H_
