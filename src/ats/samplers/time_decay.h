// Time-decayed sampling via priority-threshold duality (Section 2.9).
//
// Under exponential decay the weight of an item decays as
// w_i(t) = w_i * exp(-(t - t_i)). Re-drawing priorities as weights change
// would be impractical; the duality of Section 2.9 instead keeps priorities
// fixed and lets the threshold grow: the item is in the time-t sample iff
//
//   U_i / w_i(t) < T(t)   <=>   U_i / (w_i e^{t_i}) < e^{-t} T(t),
//
// so the decay-invariant key  K_i = U_i / (w_i e^{t_i})  (stored in log
// space to avoid overflow) admits an ordinary bottom-k sketch whose
// threshold automatically tracks the decayed weights. The retained items
// are always the k currently-heaviest decayed-weight sample.
//
// Because the log-keys are absolute (no clock in the retention rule), the
// sampler is a plain bottom-k on the shared SampleStore core and inherits
// the whole mergeable-sketch machinery: samplers over disjoint streams
// merge by the bottom-k union rule, MergeMany runs the threshold-pruned
// k-way engine, and the versioned wire frame (magic "TDK1") carries the
// RNG state plus the embedded bottom-k sample region.
#ifndef ATS_SAMPLERS_TIME_DECAY_H_
#define ATS_SAMPLERS_TIME_DECAY_H_

#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ats/core/bottom_k.h"
#include "ats/core/random.h"
#include "ats/util/serialize.h"

namespace ats {

// One retained time-decay item: everything but the log-space
// decay-invariant key, which lives in the store's priority column.
// Namespace-scope (not nested) so its wire codec below is complete
// before the sampler's frame view embeds a BottomK view over it.
struct DecayedStored {
  uint64_t key;
  double weight;
  double value;
  double arrival_time;
};

// Wire codec for the decayed payload, so the sample region nests inside
// the generic BottomK frame (one copy of the entry validation logic).
// Weight must be a positive finite double; times and values must be
// finite (NaNs would poison every decayed query downstream).
template <>
struct PayloadCodec<DecayedStored> {
  static constexpr size_t kWireSize = sizeof(uint64_t) + 3 * sizeof(double);
  static void Write(ByteWriter& w, const DecayedStored& s) {
    w.WriteU64(s.key);
    w.WriteDouble(s.weight);
    w.WriteDouble(s.value);
    w.WriteDouble(s.arrival_time);
  }
  static std::optional<DecayedStored> Read(ByteReader& r) {
    const auto key = r.ReadU64();
    const auto weight = r.ReadDouble();
    const auto value = r.ReadDouble();
    const auto time = r.ReadDouble();
    if (!key.has_value() || !weight || !value || !time) return std::nullopt;
    if (!(*weight > 0.0) || !std::isfinite(*weight) ||
        !std::isfinite(*value) || !std::isfinite(*time)) {
      return std::nullopt;
    }
    return DecayedStored{*key, *weight, *value, *time};
  }
};

class TimeDecaySampler {
 public:
  using Stored = DecayedStored;

  struct DecayedEntry {
    uint64_t key = 0;
    double value = 0.0;
    double arrival_time = 0.0;
    double decayed_weight = 0.0;       // w_i e^{-(now - t_i)}
    double inclusion_probability = 0.0;
    double ht_value = 0.0;             // value * decayed_weight / pi
  };

  // One batched-ingest input (AddBatch).
  struct TimedItem {
    uint64_t key = 0;
    double weight = 1.0;
    double value = 0.0;
    double time = 0.0;
  };

  /// k: sample size bound; decay rate is fixed at 1 (rescale time for other
  /// rates).
  TimeDecaySampler(size_t k, uint64_t seed);

  /// Feeds one item at time `time` (non-decreasing). Returns true iff the
  /// item is accepted below the store's current (chunked) acceptance
  /// bound; the next compaction may still drop it if k smaller log-keys
  /// exist (see sample_store.h -- the sample exposed by SampleAt is
  /// unaffected by the chunking). Thread-safety: mutating call.
  bool Add(uint64_t key, double weight, double value, double time);

  /// Batched ingest: exactly equivalent to calling Add() on each item in
  /// order (same state, same RNG stream, same acceptance count), but the
  /// log-keys are computed into a dense column first and offered through
  /// the store's block-prefiltered batch path. Returns the number of
  /// accepted items. Thread-safety: mutating call.
  size_t AddBatch(std::span<const TimedItem> items);

  /// The adaptive threshold on the log-key scale (log of the (k+1)-th
  /// smallest decay-invariant key). Canonicalizes the store first.
  double LogKeyThreshold() const { return sketch_.Threshold(); }

  size_t size() const { return sketch_.size(); }

  /// Live heap bytes of the decayed sample state (util/memory.h
  /// convention); excludes the reusable AddBatch scratch columns.
  size_t MemoryFootprint() const { return sketch_.MemoryFootprint(); }
  size_t k() const { return sketch_.k(); }

  /// Observable-mutation counter of the backing store; query-side caches
  /// (ShardedDecaySampler) snapshot it to skip re-merging clean shards.
  uint64_t mutation_epoch() const {
    return sketch_.store().mutation_epoch();
  }

  /// The sample evaluated at time `now` >= every arrival time: decayed
  /// weights, inclusion probabilities, and HT terms for estimating the
  /// decayed total sum_i value_i * w_i e^{-(now - t_i)}.
  std::vector<DecayedEntry> SampleAt(double now) const;

  /// HT estimate of the decayed total at time `now`.
  double EstimateDecayedTotal(double now) const;

  /// Merges a sampler over a disjoint stream: the bottom-k union over the
  /// decay-invariant keys. Self-merge is a no-op.
  void Merge(const TimeDecaySampler& other) {
    sketch_.Merge(other.sketch_);
  }

  /// Threshold-pruned k-way merge: observationally identical to merging
  /// the inputs with Merge() in span order (see SampleStore::MergeMany);
  /// inputs aliasing `this` are skipped.
  void MergeMany(std::span<const TimeDecaySampler* const> inputs) {
    std::vector<const BottomK<Stored>*> sketches;
    sketches.reserve(inputs.size());
    for (const TimeDecaySampler* in : inputs) {
      sketches.push_back(&in->sketch_);
    }
    sketch_.MergeMany(sketches);
  }

  // --- Versioned wire format (magic "TDK1") ---
  //
  // Outer frame: header, RNG state (a restored sampler continues the
  // exact priority stream), then the embedded bottom-k sample region
  // (log-key priorities + Stored payloads). Only entries strictly below
  // the log-key threshold travel, per the PR-3 tie rule.

  void SerializeTo(ByteWriter& w) const;
  static std::optional<TimeDecaySampler> Deserialize(ByteReader& r);
  std::string SerializeToString() const { return SerializeSketch(*this); }
  static std::optional<TimeDecaySampler> Deserialize(
      std::string_view bytes) {
    return DeserializeSketch<TimeDecaySampler>(bytes);
  }

  /// Typed rejection reason for a frame Deserialize would refuse:
  /// structural cause first (kTruncated / kBadMagic / kBadVersion /
  /// checksum -> kCorruptBody), kCorruptBody for field- or entry-level
  /// violations, kNone iff the frame parses.
  static FrameFault DiagnoseFrame(std::string_view frame);

  /// Zero-copy read-only view over a whole serialized frame: the outer
  /// checksum/header/RNG fields are validated, then the embedded sample
  /// region is exposed through the generic bottom-k frame view. Borrows
  /// the frame's storage; must not outlive it.
  class FrameView {
   public:
    size_t k() const { return sample_.k(); }
    double log_key_threshold() const { return sample_.threshold(); }
    size_t size() const { return sample_.size(); }
    double log_key(size_t i) const { return sample_.priority(i); }
    Stored stored(size_t i) const { return sample_.payload(i); }

   private:
    friend class TimeDecaySampler;
    BottomK<Stored>::FrameView sample_;
  };

  /// Parses a SerializeToString buffer; nullopt on exactly the inputs
  /// Deserialize rejects. Allocation-free.
  static std::optional<FrameView> DeserializeView(std::string_view frame);

  /// Threshold-pruned k-way merge straight off the wire: observationally
  /// identical to deserializing every frame and merging with Merge() in
  /// span order. Returns false -- sampler observably unchanged -- if ANY
  /// frame fails validation; all frames are vetted before the first is
  /// applied.
  bool MergeManyFrames(std::span<const std::string_view> frames);

 private:
  BottomK<Stored> sketch_;  // ordered by log K_i = log U_i - log w_i - t_i
  Xoshiro256 rng_;
  // Scratch columns for AddBatch (reused across calls).
  std::vector<double> batch_log_keys_;
  std::vector<Stored> batch_payloads_;
};

static_assert(MergeableSketch<TimeDecaySampler>);

}  // namespace ats

#endif  // ATS_SAMPLERS_TIME_DECAY_H_
