// Time-decayed sampling via priority-threshold duality (Section 2.9).
//
// Under exponential decay the weight of an item decays as
// w_i(t) = w_i * exp(-(t - t_i)). Re-drawing priorities as weights change
// would be impractical; the duality of Section 2.9 instead keeps priorities
// fixed and lets the threshold grow: the item is in the time-t sample iff
//
//   U_i / w_i(t) < T(t)   <=>   U_i / (w_i e^{t_i}) < e^{-t} T(t),
//
// so the decay-invariant key  K_i = U_i / (w_i e^{t_i})  (stored in log
// space to avoid overflow) admits an ordinary bottom-k sketch whose
// threshold automatically tracks the decayed weights. The retained items
// are always the k currently-heaviest decayed-weight sample.
#ifndef ATS_SAMPLERS_TIME_DECAY_H_
#define ATS_SAMPLERS_TIME_DECAY_H_

#include <cstdint>
#include <vector>

#include "ats/core/bottom_k.h"
#include "ats/core/random.h"

namespace ats {

class TimeDecaySampler {
 public:
  struct DecayedEntry {
    uint64_t key = 0;
    double value = 0.0;
    double arrival_time = 0.0;
    double decayed_weight = 0.0;       // w_i e^{-(now - t_i)}
    double inclusion_probability = 0.0;
    double ht_value = 0.0;             // value * decayed_weight / pi
  };

  // k: sample size bound; decay rate is fixed at 1 (rescale time for other
  // rates).
  TimeDecaySampler(size_t k, uint64_t seed);

  // Feeds one item at time `time` (non-decreasing). Returns true iff the
  // item is accepted below the store's current (chunked) acceptance
  // bound; the next compaction may still drop it if k smaller log-keys
  // exist (see sample_store.h -- the sample exposed by SampleAt is
  // unaffected by the chunking).
  bool Add(uint64_t key, double weight, double value, double time);

  // The adaptive threshold on the log-key scale (log of the (k+1)-th
  // smallest decay-invariant key).
  double LogKeyThreshold() const { return sketch_.Threshold(); }

  size_t size() const { return sketch_.size(); }

  // The sample evaluated at time `now` >= every arrival time: decayed
  // weights, inclusion probabilities, and HT terms for estimating the
  // decayed total sum_i value_i * w_i e^{-(now - t_i)}.
  std::vector<DecayedEntry> SampleAt(double now) const;

  // HT estimate of the decayed total at time `now`.
  double EstimateDecayedTotal(double now) const;

 private:
  struct Stored {
    uint64_t key;
    double weight;
    double value;
    double arrival_time;
  };

  BottomK<Stored> sketch_;  // ordered by log K_i = log U_i - log w_i - t_i
  Xoshiro256 rng_;
};

}  // namespace ats

#endif  // ATS_SAMPLERS_TIME_DECAY_H_
