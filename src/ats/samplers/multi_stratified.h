// Multi-stratified sampling (Section 3.7).
//
// A single sample that is simultaneously a stratified sample along several
// key dimensions (e.g. by country AND by age). Each (dimension, stratum)
// pair maintains a bottom-k threshold tau_s; an item's threshold is the
// MAX of its strata thresholds, so it is retained while it sits in the
// bottom-k of at least one of its strata. The max of substitutable
// thresholds is 1-substitutable, and Theorem 6 upgrades the composite rule
// to full substitutability, so plain HT estimators apply with
// pi_i = F(max_s tau_s).
//
// Budget control: ShrinkToBudget(B) repeatedly picks the stratum with the
// most retained members and decrements its threshold to the next smaller
// priority (evicting one member) until at most B distinct items remain --
// the dynamic per-stratum-k rule of Section 3.7.
#ifndef ATS_SAMPLERS_MULTI_STRATIFIED_H_
#define ATS_SAMPLERS_MULTI_STRATIFIED_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ats/core/random.h"
#include "ats/core/threshold.h"
#include "ats/util/memory.h"
#include "ats/util/serialize.h"

namespace ats {

class MultiStratifiedSampler {
 public:
  // One stratum key per dimension.
  using StrataKeys = std::vector<uint64_t>;

  // num_dimensions >= 1, k >= 1 items per stratum (initially).
  MultiStratifiedSampler(size_t num_dimensions, size_t k, uint64_t seed);

  // Feeds one item. `strata` must have num_dimensions entries. Returns
  // true iff the item is currently retained.
  bool Add(uint64_t key, const StrataKeys& strata, double value);

  // Evicts items (largest-member-stratum first) until at most
  // `max_items` distinct items remain.
  void ShrinkToBudget(size_t max_items);

  // Number of distinct retained items.
  size_t size() const { return items_.size(); }

  // Live heap bytes (util/memory.h convention): the item table and
  // stratum map shells plus each item's strata-key column and each
  // stratum's member set. O(items + strata).
  size_t MemoryFootprint() const {
    size_t total = HashFootprint(items_) + TreeFootprint(strata_);
    for (const auto& [key, item] : items_) {
      total += VectorFootprint(item.strata);
    }
    for (const auto& [id, stratum] : strata_) {
      total += TreeFootprint(stratum.members);
    }
    return total;
  }

  // Current threshold of a stratum (+infinity while underfull).
  double StratumThreshold(size_t dimension, uint64_t stratum) const;

  // Number of retained members of a stratum.
  size_t StratumSize(size_t dimension, uint64_t stratum) const;

  // Sample entries: per-item threshold = max over the item's strata
  // thresholds; uniform priorities.
  std::vector<SampleEntry> Sample() const;

  size_t num_dimensions() const { return num_dimensions_; }

  /// Merges a sampler over a disjoint (key-disjoint) stream: strata are
  /// composed by min threshold and min capacity, then the union of the
  /// retained items is re-offered in ascending priority order, which
  /// rebuilds every stratum's bottom-capacity membership under the
  /// composed bounds. Both samplers must share num_dimensions and the
  /// initial k. Self-merge is a no-op.
  void Merge(const MultiStratifiedSampler& other);

  // --- Versioned wire format (magic "MSS1") ---
  //
  // Frame: header, num_dimensions, k, RNG state, then the stratum table
  // in ascending (dimension, stratum key) order -- count, then
  // fixed-stride entries of (dimension u64, stratum_key u64,
  // threshold f64, capacity u64, member_count u64) -- then the item
  // table in ascending key order: count, then fixed-stride entries of
  // (key u64, value f64, priority f64, num_dimensions stratum keys).
  // Both orders are canonical, so serialize-deserialize-serialize is
  // byte-stable. Memberships do not travel: an item is a member of a
  // stratum exactly when its priority lies strictly below the stratum
  // threshold, and the reader validates the reconstruction against the
  // serialized per-stratum member counts (a genuinely tied state --
  // probability zero under continuous draws -- fails closed).

  void SerializeTo(ByteWriter& w) const;
  static std::optional<MultiStratifiedSampler> Deserialize(ByteReader& r);
  std::string SerializeToString() const { return SerializeSketch(*this); }
  static std::optional<MultiStratifiedSampler> Deserialize(
      std::string_view bytes) {
    return DeserializeSketch<MultiStratifiedSampler>(bytes);
  }

  /// Typed rejection reason for a frame Deserialize would refuse:
  /// structural cause first (kTruncated / kBadMagic / kBadVersion /
  /// checksum -> kCorruptBody), kCorruptBody for field- or entry-level
  /// violations, kNone iff the frame parses.
  static FrameFault DiagnoseFrame(std::string_view frame);

  /// Read-only view over a whole serialized frame: every layer
  /// validated (including the membership-count reconstruction check),
  /// the two fixed-stride regions exposed in place. Borrows the frame's
  /// storage; must not outlive it.
  class FrameView {
   public:
    size_t num_dimensions() const { return num_dimensions_; }
    size_t k() const { return k_; }

    size_t num_strata() const { return strata_.size() / kStratumStride; }
    size_t stratum_dimension(size_t i) const {
      return static_cast<size_t>(StratumAt<uint64_t>(i, 0));
    }
    uint64_t stratum_key(size_t i) const { return StratumAt<uint64_t>(i, 8); }
    double stratum_threshold(size_t i) const {
      return StratumAt<double>(i, 16);
    }
    size_t stratum_capacity(size_t i) const {
      return static_cast<size_t>(StratumAt<uint64_t>(i, 24));
    }
    size_t stratum_member_count(size_t i) const {
      return static_cast<size_t>(StratumAt<uint64_t>(i, 32));
    }

    size_t num_items() const { return items_.size() / item_stride(); }
    uint64_t item_key(size_t i) const { return ItemAt<uint64_t>(i, 0); }
    double item_value(size_t i) const { return ItemAt<double>(i, 8); }
    double item_priority(size_t i) const { return ItemAt<double>(i, 16); }
    uint64_t item_stratum(size_t i, size_t dimension) const {
      return ItemAt<uint64_t>(i, 24 + dimension * sizeof(uint64_t));
    }

   private:
    friend class MultiStratifiedSampler;
    static constexpr size_t kStratumStride =
        3 * sizeof(uint64_t) + sizeof(double) + sizeof(uint64_t);

    size_t item_stride() const {
      return 2 * sizeof(double) + (1 + num_dimensions_) * sizeof(uint64_t);
    }
    template <typename T>
    T StratumAt(size_t i, size_t offset) const {
      T v;
      std::memcpy(&v, strata_.data() + i * kStratumStride + offset,
                  sizeof(T));
      return v;
    }
    template <typename T>
    T ItemAt(size_t i, size_t offset) const {
      T v;
      std::memcpy(&v, items_.data() + i * item_stride() + offset, sizeof(T));
      return v;
    }

    size_t num_dimensions_ = 0;
    size_t k_ = 0;
    std::array<uint64_t, 4> rng_state_ = {1, 0, 0, 0};
    std::string_view strata_;
    std::string_view items_;
  };

  /// Parses a SerializeToString buffer; nullopt on exactly the inputs
  /// Deserialize rejects.
  static std::optional<FrameView> DeserializeView(std::string_view frame);

  /// Merge straight off the wire: observationally identical to
  /// deserializing every frame and merging with Merge() in span order
  /// (it is exactly that chain, after vetting). Every frame must carry
  /// this sampler's num_dimensions and k; streams must be key-disjoint
  /// (Merge's precondition). Returns false -- sampler observably
  /// unchanged -- if ANY frame fails validation; all frames are vetted
  /// before the first is applied.
  bool MergeManyFrames(std::span<const std::string_view> frames);

 private:
  struct ItemData {
    double value = 0.0;
    double priority = 0.0;
    StrataKeys strata;
    int memberships = 0;  // number of strata whose bottom-k contains it
  };

  struct Stratum {
    // Members ordered by priority (ascending); values are item keys.
    std::set<std::pair<double, uint64_t>> members;
    double threshold = kInfiniteThreshold;
    size_t capacity = 0;  // current k for this stratum
  };

  using StratumId = std::pair<size_t, uint64_t>;  // (dimension, stratum key)

  // Offers an item to one stratum; maintains capacity and thresholds.
  void OfferToStratum(const StratumId& id, double priority, uint64_t key);

  // Evicts the largest-priority member of a stratum, lowering its
  // threshold; drops the item globally when its membership count hits 0.
  void EvictTop(Stratum& stratum);

  // Parses a bare (un-checksummed) MSS1 body spanning the whole of
  // `body`; shared by the eager and view paths so the validation logic
  // exists once.
  static std::optional<FrameView> ViewBody(std::string_view body);

  // Rebuilds a sampler from a fully validated frame view.
  static MultiStratifiedSampler FromValidatedView(const FrameView& view);

  size_t num_dimensions_;
  size_t k_;
  Xoshiro256 rng_;
  std::map<StratumId, Stratum> strata_;
  std::unordered_map<uint64_t, ItemData> items_;
};

static_assert(MergeableSketch<MultiStratifiedSampler>);

}  // namespace ats

#endif  // ATS_SAMPLERS_MULTI_STRATIFIED_H_
