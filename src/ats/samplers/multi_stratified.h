// Multi-stratified sampling (Section 3.7).
//
// A single sample that is simultaneously a stratified sample along several
// key dimensions (e.g. by country AND by age). Each (dimension, stratum)
// pair maintains a bottom-k threshold tau_s; an item's threshold is the
// MAX of its strata thresholds, so it is retained while it sits in the
// bottom-k of at least one of its strata. The max of substitutable
// thresholds is 1-substitutable, and Theorem 6 upgrades the composite rule
// to full substitutability, so plain HT estimators apply with
// pi_i = F(max_s tau_s).
//
// Budget control: ShrinkToBudget(B) repeatedly picks the stratum with the
// most retained members and decrements its threshold to the next smaller
// priority (evicting one member) until at most B distinct items remain --
// the dynamic per-stratum-k rule of Section 3.7.
#ifndef ATS_SAMPLERS_MULTI_STRATIFIED_H_
#define ATS_SAMPLERS_MULTI_STRATIFIED_H_

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "ats/core/random.h"
#include "ats/core/threshold.h"
#include "ats/util/memory.h"

namespace ats {

class MultiStratifiedSampler {
 public:
  // One stratum key per dimension.
  using StrataKeys = std::vector<uint64_t>;

  // num_dimensions >= 1, k >= 1 items per stratum (initially).
  MultiStratifiedSampler(size_t num_dimensions, size_t k, uint64_t seed);

  // Feeds one item. `strata` must have num_dimensions entries. Returns
  // true iff the item is currently retained.
  bool Add(uint64_t key, const StrataKeys& strata, double value);

  // Evicts items (largest-member-stratum first) until at most
  // `max_items` distinct items remain.
  void ShrinkToBudget(size_t max_items);

  // Number of distinct retained items.
  size_t size() const { return items_.size(); }

  // Live heap bytes (util/memory.h convention): the item table and
  // stratum map shells plus each item's strata-key column and each
  // stratum's member set. O(items + strata).
  size_t MemoryFootprint() const {
    size_t total = HashFootprint(items_) + TreeFootprint(strata_);
    for (const auto& [key, item] : items_) {
      total += VectorFootprint(item.strata);
    }
    for (const auto& [id, stratum] : strata_) {
      total += TreeFootprint(stratum.members);
    }
    return total;
  }

  // Current threshold of a stratum (+infinity while underfull).
  double StratumThreshold(size_t dimension, uint64_t stratum) const;

  // Number of retained members of a stratum.
  size_t StratumSize(size_t dimension, uint64_t stratum) const;

  // Sample entries: per-item threshold = max over the item's strata
  // thresholds; uniform priorities.
  std::vector<SampleEntry> Sample() const;

  size_t num_dimensions() const { return num_dimensions_; }

 private:
  struct ItemData {
    double value = 0.0;
    double priority = 0.0;
    StrataKeys strata;
    int memberships = 0;  // number of strata whose bottom-k contains it
  };

  struct Stratum {
    // Members ordered by priority (ascending); values are item keys.
    std::set<std::pair<double, uint64_t>> members;
    double threshold = kInfiniteThreshold;
    size_t capacity = 0;  // current k for this stratum
  };

  using StratumId = std::pair<size_t, uint64_t>;  // (dimension, stratum key)

  // Offers an item to one stratum; maintains capacity and thresholds.
  void OfferToStratum(const StratumId& id, double priority, uint64_t key);

  // Evicts the largest-priority member of a stratum, lowering its
  // threshold; drops the item globally when its membership count hits 0.
  void EvictTop(Stratum& stratum);

  size_t num_dimensions_;
  size_t k_;
  Xoshiro256 rng_;
  std::map<StratumId, Stratum> strata_;
  std::unordered_map<uint64_t, ItemData> items_;
};

}  // namespace ats

#endif  // ATS_SAMPLERS_MULTI_STRATIFIED_H_
