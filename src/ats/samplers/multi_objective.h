// Multi-objective weighted sampling (Section 3.8).
//
// Queries may weight items differently (e.g. by profit or by revenue). One
// coordinated sample serves every objective: each item draws a single
// uniform U_i, and objective j sees the priority R_i^j = U_i / w_i^j. A
// bottom-k sketch per objective (k = B / c under a budget B split across c
// objectives, following Cohen [6]) retains the union of the per-objective
// samples. Because the priorities share U_i, highly correlated weights
// produce highly overlapping sketches: the combined size is <= c*k and
// approaches k as weights become scalar multiples of each other, which is
// the behavior the Section 3.8 bench measures.
#ifndef ATS_SAMPLERS_MULTI_OBJECTIVE_H_
#define ATS_SAMPLERS_MULTI_OBJECTIVE_H_

#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "ats/core/bottom_k.h"
#include "ats/core/random.h"
#include "ats/core/threshold.h"
#include "ats/util/memory.h"
#include "ats/util/serialize.h"

namespace ats {

// One retained item under a single objective's sketch. Namespace-scope
// (not nested) so its wire codec below is complete before the sampler's
// frame view embeds BottomK views over it.
struct MultiObjectiveStored {
  uint64_t key;
  double value;
  double weight;  // weight under this sketch's objective
};

// Wire codec for the per-objective payload, so each objective's sample
// region nests inside the generic BottomK frame (one copy of the entry
// validation logic). Weight must be a positive finite double; the value
// must be finite.
template <>
struct PayloadCodec<MultiObjectiveStored> {
  static constexpr size_t kWireSize = sizeof(uint64_t) + 2 * sizeof(double);
  static void Write(ByteWriter& w, const MultiObjectiveStored& s) {
    w.WriteU64(s.key);
    w.WriteDouble(s.value);
    w.WriteDouble(s.weight);
  }
  static std::optional<MultiObjectiveStored> Read(ByteReader& r) {
    const auto key = r.ReadU64();
    const auto value = r.ReadDouble();
    const auto weight = r.ReadDouble();
    if (!key.has_value() || !value || !weight) return std::nullopt;
    if (!std::isfinite(*value) || !(*weight > 0.0) ||
        !std::isfinite(*weight)) {
      return std::nullopt;
    }
    return MultiObjectiveStored{*key, *value, *weight};
  }
};

class MultiObjectiveSampler {
 public:
  using Stored = MultiObjectiveStored;

  struct Item {
    uint64_t key = 0;
    double value = 0.0;
    std::vector<double> weights;  // one per objective
  };

  // num_objectives >= 1; k: per-objective bottom-k size.
  MultiObjectiveSampler(size_t num_objectives, size_t k, uint64_t seed);

  // Feeds one item with its per-objective weights (size must equal
  // num_objectives; all weights > 0). `value` is the aggregation value.
  void Add(uint64_t key, const std::vector<double>& weights, double value);

  // Number of distinct items retained by at least one objective's sketch:
  // the actual storage cost of the combined sketch.
  size_t CombinedSize() const;

  // Per-objective adaptive threshold (on the R^j = U/w^j scale).
  double Threshold(size_t objective) const;

  // Sample entries for objective j, for HT estimation of sums weighted by
  // that objective (entry value = item value, weight = w^j).
  std::vector<SampleEntry> Sample(size_t objective) const;

  size_t num_objectives() const { return sketches_.size(); }

  // Live heap bytes across the per-objective sketches (util/memory.h
  // convention): the sketch shells plus each store's columns.
  size_t MemoryFootprint() const {
    size_t total = VectorFootprint(sketches_);
    for (const auto& sketch : sketches_) total += sketch.MemoryFootprint();
    return total;
  }

  /// Merges a sampler over a disjoint stream: objective-wise bottom-k
  /// union (the shared-uniform coordination is per stream, so the union
  /// rule applies independently per objective). Both samplers must have
  /// the same objective count. Self-merge is a no-op.
  void Merge(const MultiObjectiveSampler& other);

  // --- Versioned wire format (magic "MOB1") ---
  //
  // Frame: header, objective count, per-objective k, RNG state, then one
  // length-prefixed embedded BTK2 sample region per objective (the
  // nested bottom-k body bytes, verbatim). Every nested region must
  // declare the frame's k. Nested regions are in objective order, so
  // serialize-deserialize-serialize is byte-stable.

  void SerializeTo(ByteWriter& w) const;
  static std::optional<MultiObjectiveSampler> Deserialize(ByteReader& r);
  std::string SerializeToString() const { return SerializeSketch(*this); }
  static std::optional<MultiObjectiveSampler> Deserialize(
      std::string_view bytes) {
    return DeserializeSketch<MultiObjectiveSampler>(bytes);
  }

  /// Typed rejection reason for a frame Deserialize would refuse:
  /// structural cause first (kTruncated / kBadMagic / kBadVersion /
  /// checksum -> kCorruptBody), kCorruptBody for field- or entry-level
  /// violations, kNone iff the frame parses.
  static FrameFault DiagnoseFrame(std::string_view frame);

  /// Read-only view over a whole serialized frame: outer layers
  /// validated, then each objective's sample region exposed through the
  /// generic bottom-k frame view (one small vector of views is the only
  /// allocation). Borrows the frame's storage; must not outlive it.
  class FrameView {
   public:
    size_t num_objectives() const { return objectives_.size(); }
    size_t k() const { return k_; }
    const BottomK<Stored>::FrameView& objective(size_t j) const {
      return objectives_[j];
    }

   private:
    friend class MultiObjectiveSampler;
    size_t k_ = 0;
    std::vector<BottomK<Stored>::FrameView> objectives_;
  };

  /// Parses a SerializeToString buffer; nullopt on exactly the inputs
  /// Deserialize rejects.
  static std::optional<FrameView> DeserializeView(std::string_view frame);

  /// Objective-wise threshold-pruned merge straight off the wire:
  /// observationally identical to deserializing every frame and merging
  /// with Merge() in span order. Every frame must carry this sampler's
  /// objective count. Returns false -- sampler observably unchanged --
  /// if ANY frame fails validation; all frames are vetted before the
  /// first is applied.
  bool MergeManyFrames(std::span<const std::string_view> frames);

 private:
  std::vector<BottomK<Stored>> sketches_;
  Xoshiro256 rng_;
};

static_assert(MergeableSketch<MultiObjectiveSampler>);

}  // namespace ats

#endif  // ATS_SAMPLERS_MULTI_OBJECTIVE_H_
