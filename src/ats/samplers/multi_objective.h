// Multi-objective weighted sampling (Section 3.8).
//
// Queries may weight items differently (e.g. by profit or by revenue). One
// coordinated sample serves every objective: each item draws a single
// uniform U_i, and objective j sees the priority R_i^j = U_i / w_i^j. A
// bottom-k sketch per objective (k = B / c under a budget B split across c
// objectives, following Cohen [6]) retains the union of the per-objective
// samples. Because the priorities share U_i, highly correlated weights
// produce highly overlapping sketches: the combined size is <= c*k and
// approaches k as weights become scalar multiples of each other, which is
// the behavior the Section 3.8 bench measures.
#ifndef ATS_SAMPLERS_MULTI_OBJECTIVE_H_
#define ATS_SAMPLERS_MULTI_OBJECTIVE_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "ats/core/bottom_k.h"
#include "ats/core/random.h"
#include "ats/core/threshold.h"
#include "ats/util/memory.h"

namespace ats {

class MultiObjectiveSampler {
 public:
  struct Item {
    uint64_t key = 0;
    double value = 0.0;
    std::vector<double> weights;  // one per objective
  };

  // num_objectives >= 1; k: per-objective bottom-k size.
  MultiObjectiveSampler(size_t num_objectives, size_t k, uint64_t seed);

  // Feeds one item with its per-objective weights (size must equal
  // num_objectives; all weights > 0). `value` is the aggregation value.
  void Add(uint64_t key, const std::vector<double>& weights, double value);

  // Number of distinct items retained by at least one objective's sketch:
  // the actual storage cost of the combined sketch.
  size_t CombinedSize() const;

  // Per-objective adaptive threshold (on the R^j = U/w^j scale).
  double Threshold(size_t objective) const;

  // Sample entries for objective j, for HT estimation of sums weighted by
  // that objective (entry value = item value, weight = w^j).
  std::vector<SampleEntry> Sample(size_t objective) const;

  size_t num_objectives() const { return sketches_.size(); }

  // Live heap bytes across the per-objective sketches (util/memory.h
  // convention): the sketch shells plus each store's columns.
  size_t MemoryFootprint() const {
    size_t total = VectorFootprint(sketches_);
    for (const auto& sketch : sketches_) total += sketch.MemoryFootprint();
    return total;
  }

 private:
  struct Stored {
    uint64_t key;
    double value;
    double weight;  // weight under this sketch's objective
  };

  std::vector<BottomK<Stored>> sketches_;
  Xoshiro256 rng_;
};

}  // namespace ats

#endif  // ATS_SAMPLERS_MULTI_OBJECTIVE_H_
