#include "ats/samplers/multi_stratified.h"

#include <algorithm>

#include "ats/util/check.h"

namespace ats {

MultiStratifiedSampler::MultiStratifiedSampler(size_t num_dimensions,
                                               size_t k, uint64_t seed)
    : num_dimensions_(num_dimensions), k_(k), rng_(seed) {
  ATS_CHECK(num_dimensions >= 1);
  ATS_CHECK(k >= 1);
}

bool MultiStratifiedSampler::Add(uint64_t key, const StrataKeys& strata,
                                 double value) {
  ATS_CHECK(strata.size() == num_dimensions_);
  ATS_CHECK(!items_.contains(key));
  const double priority = rng_.NextDoubleOpenZero();
  auto [it, inserted] =
      items_.emplace(key, ItemData{value, priority, strata, 0});
  ATS_CHECK(inserted);
  for (size_t d = 0; d < num_dimensions_; ++d) {
    OfferToStratum({d, strata[d]}, priority, key);
  }
  if (it->second.memberships == 0) {
    items_.erase(it);
    return false;
  }
  return true;
}

void MultiStratifiedSampler::OfferToStratum(const StratumId& id,
                                            double priority, uint64_t key) {
  auto [sit, created] = strata_.try_emplace(id);
  Stratum& s = sit->second;
  if (created) s.capacity = k_;
  if (priority >= s.threshold) return;
  if (s.members.size() < s.capacity) {
    s.members.emplace(priority, key);
    ++items_.at(key).memberships;
    return;
  }
  if (s.capacity == 0) return;
  const auto top = std::prev(s.members.end());
  if (priority >= top->first) {
    // New (capacity+1)-th smallest: becomes the stratum threshold.
    s.threshold = std::min(s.threshold, priority);
    return;
  }
  s.members.emplace(priority, key);
  ++items_.at(key).memberships;
  EvictTop(s);
}

void MultiStratifiedSampler::EvictTop(Stratum& stratum) {
  ATS_CHECK(!stratum.members.empty());
  const auto top = std::prev(stratum.members.end());
  const auto [priority, key] = *top;
  stratum.threshold = std::min(stratum.threshold, priority);
  stratum.members.erase(top);
  ItemData& item = items_.at(key);
  if (--item.memberships == 0) items_.erase(key);
}

void MultiStratifiedSampler::ShrinkToBudget(size_t max_items) {
  while (items_.size() > max_items) {
    // Pick the stratum with the most retained members and decrement its
    // threshold to the next smaller priority (= evict its top member).
    Stratum* best = nullptr;
    for (auto& [id, s] : strata_) {
      if (s.members.empty()) continue;
      if (best == nullptr || s.members.size() > best->members.size()) {
        best = &s;
      }
    }
    ATS_CHECK_MSG(best != nullptr, "budget unreachable: no members left");
    if (best->capacity > 0) best->capacity = best->members.size() - 1;
    EvictTop(*best);
  }
}

double MultiStratifiedSampler::StratumThreshold(size_t dimension,
                                                uint64_t stratum) const {
  const auto it = strata_.find({dimension, stratum});
  return it == strata_.end() ? kInfiniteThreshold : it->second.threshold;
}

size_t MultiStratifiedSampler::StratumSize(size_t dimension,
                                           uint64_t stratum) const {
  const auto it = strata_.find({dimension, stratum});
  return it == strata_.end() ? 0 : it->second.members.size();
}

std::vector<SampleEntry> MultiStratifiedSampler::Sample() const {
  std::vector<SampleEntry> out;
  out.reserve(items_.size());
  for (const auto& [key, item] : items_) {
    double threshold = 0.0;
    for (size_t d = 0; d < num_dimensions_; ++d) {
      threshold = std::max(
          threshold, StratumThreshold(d, item.strata[d]));
    }
    out.push_back(MakeUniformEntry(key, item.value, item.priority, threshold));
  }
  return out;
}

}  // namespace ats
