#include "ats/samplers/multi_stratified.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ats/util/check.h"

namespace ats {

namespace {

constexpr uint32_t kStratifiedMagic = 0x3153534d;  // "MSS1"
constexpr uint32_t kStratifiedVersion = 1;

}  // namespace

MultiStratifiedSampler::MultiStratifiedSampler(size_t num_dimensions,
                                               size_t k, uint64_t seed)
    : num_dimensions_(num_dimensions), k_(k), rng_(seed) {
  ATS_CHECK(num_dimensions >= 1);
  ATS_CHECK(k >= 1);
}

bool MultiStratifiedSampler::Add(uint64_t key, const StrataKeys& strata,
                                 double value) {
  ATS_CHECK(strata.size() == num_dimensions_);
  ATS_CHECK(!items_.contains(key));
  const double priority = rng_.NextDoubleOpenZero();
  auto [it, inserted] =
      items_.emplace(key, ItemData{value, priority, strata, 0});
  ATS_CHECK(inserted);
  for (size_t d = 0; d < num_dimensions_; ++d) {
    OfferToStratum({d, strata[d]}, priority, key);
  }
  if (it->second.memberships == 0) {
    items_.erase(it);
    return false;
  }
  return true;
}

void MultiStratifiedSampler::OfferToStratum(const StratumId& id,
                                            double priority, uint64_t key) {
  auto [sit, created] = strata_.try_emplace(id);
  Stratum& s = sit->second;
  if (created) s.capacity = k_;
  if (priority >= s.threshold) return;
  if (s.members.size() < s.capacity) {
    s.members.emplace(priority, key);
    ++items_.at(key).memberships;
    return;
  }
  if (s.capacity == 0) return;
  const auto top = std::prev(s.members.end());
  if (priority >= top->first) {
    // New (capacity+1)-th smallest: becomes the stratum threshold.
    s.threshold = std::min(s.threshold, priority);
    return;
  }
  s.members.emplace(priority, key);
  ++items_.at(key).memberships;
  EvictTop(s);
}

void MultiStratifiedSampler::EvictTop(Stratum& stratum) {
  ATS_CHECK(!stratum.members.empty());
  const auto top = std::prev(stratum.members.end());
  const auto [priority, key] = *top;
  stratum.threshold = std::min(stratum.threshold, priority);
  stratum.members.erase(top);
  ItemData& item = items_.at(key);
  if (--item.memberships == 0) items_.erase(key);
}

void MultiStratifiedSampler::ShrinkToBudget(size_t max_items) {
  while (items_.size() > max_items) {
    // Pick the stratum with the most retained members and decrement its
    // threshold to the next smaller priority (= evict its top member).
    Stratum* best = nullptr;
    for (auto& [id, s] : strata_) {
      if (s.members.empty()) continue;
      if (best == nullptr || s.members.size() > best->members.size()) {
        best = &s;
      }
    }
    ATS_CHECK_MSG(best != nullptr, "budget unreachable: no members left");
    if (best->capacity > 0) best->capacity = best->members.size() - 1;
    EvictTop(*best);
  }
}

double MultiStratifiedSampler::StratumThreshold(size_t dimension,
                                                uint64_t stratum) const {
  const auto it = strata_.find({dimension, stratum});
  return it == strata_.end() ? kInfiniteThreshold : it->second.threshold;
}

size_t MultiStratifiedSampler::StratumSize(size_t dimension,
                                           uint64_t stratum) const {
  const auto it = strata_.find({dimension, stratum});
  return it == strata_.end() ? 0 : it->second.members.size();
}

std::vector<SampleEntry> MultiStratifiedSampler::Sample() const {
  std::vector<SampleEntry> out;
  out.reserve(items_.size());
  for (const auto& [key, item] : items_) {
    double threshold = 0.0;
    for (size_t d = 0; d < num_dimensions_; ++d) {
      threshold = std::max(
          threshold, StratumThreshold(d, item.strata[d]));
    }
    out.push_back(MakeUniformEntry(key, item.value, item.priority, threshold));
  }
  return out;
}

void MultiStratifiedSampler::Merge(const MultiStratifiedSampler& other) {
  if (&other == this) return;
  ATS_CHECK(other.num_dimensions_ == num_dimensions_);
  ATS_CHECK(other.k_ == k_);
  // 1) Compose strata: items lost above either side's threshold are
  // unknowable, so the merged bound is the min; likewise the budget
  // rule's capacity only ever shrinks, so the min capacity governs.
  for (const auto& [id, s] : other.strata_) {
    auto [sit, created] = strata_.try_emplace(id);
    Stratum& mine = sit->second;
    if (created) mine.capacity = k_;
    mine.threshold = std::min(mine.threshold, s.threshold);
    mine.capacity = std::min(mine.capacity, s.capacity);
  }
  // 2) The union of the retained items, ascending by priority (keys
  // break exact ties deterministically).
  std::vector<std::pair<double, uint64_t>> order;
  order.reserve(items_.size() + other.items_.size());
  for (const auto& [key, item] : items_) {
    order.emplace_back(item.priority, key);
  }
  for (const auto& [key, item] : other.items_) {
    ATS_CHECK_MSG(!items_.contains(key),
                  "Merge requires key-disjoint streams");
    order.emplace_back(item.priority, key);
    items_.emplace(key, item);
  }
  std::sort(order.begin(), order.end());
  // 3) Rebuild every membership under the composed bounds: clear the
  // member sets and re-offer ascending. Ascending order means a full
  // stratum only ever lowers its threshold (EvictTop never fires), which
  // is exactly the bottom-capacity of the union below the composed bound.
  for (auto& [id, s] : strata_) s.members.clear();
  for (auto& [key, item] : items_) item.memberships = 0;
  for (const auto& [priority, key] : order) {
    const StrataKeys& strata = items_.at(key).strata;
    for (size_t d = 0; d < num_dimensions_; ++d) {
      OfferToStratum({d, strata[d]}, priority, key);
    }
  }
  // 4) Items that landed in no stratum are not retained.
  for (auto it = items_.begin(); it != items_.end();) {
    it = it->second.memberships == 0 ? items_.erase(it) : std::next(it);
  }
}

void MultiStratifiedSampler::SerializeTo(ByteWriter& w) const {
  WriteSketchHeader(w, kStratifiedMagic, kStratifiedVersion);
  w.WriteU64(num_dimensions_);
  w.WriteU64(k_);
  WriteRngState(w, rng_.State());
  w.WriteU64(strata_.size());
  for (const auto& [id, s] : strata_) {  // std::map: ascending (dim, key)
    w.WriteU64(id.first);
    w.WriteU64(id.second);
    w.WriteDouble(s.threshold);
    w.WriteU64(s.capacity);
    w.WriteU64(s.members.size());
  }
  std::vector<uint64_t> keys;
  keys.reserve(items_.size());
  for (const auto& [key, item] : items_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());  // canonical item order
  w.WriteU64(keys.size());
  for (uint64_t key : keys) {
    const ItemData& item = items_.at(key);
    w.WriteU64(key);
    w.WriteDouble(item.value);
    w.WriteDouble(item.priority);
    for (uint64_t stratum_key : item.strata) w.WriteU64(stratum_key);
  }
}

std::optional<MultiStratifiedSampler::FrameView>
MultiStratifiedSampler::ViewBody(std::string_view body) {
  ByteReader r(body);
  if (!ReadSketchHeader(r, kStratifiedMagic, kStratifiedVersion)) {
    return std::nullopt;
  }
  const auto num_dimensions = r.ReadU64();
  const auto k = r.ReadU64();
  if (!num_dimensions || !k) return std::nullopt;
  if (*num_dimensions < 1 || *k < 1) return std::nullopt;
  const auto rng_state = ReadRngState(r);
  if (!rng_state) return std::nullopt;
  const auto num_strata = r.ReadU64();
  if (!num_strata) return std::nullopt;
  FrameView view;
  view.num_dimensions_ = static_cast<size_t>(*num_dimensions);
  view.k_ = static_cast<size_t>(*k);
  view.rng_state_ = *rng_state;
  const std::string_view after_strata_count = r.Rest();
  // Division-form bounds check: immune to count * stride overflow.
  if (*num_strata > after_strata_count.size() / FrameView::kStratumStride) {
    return std::nullopt;
  }
  const size_t strata_bytes =
      static_cast<size_t>(*num_strata) * FrameView::kStratumStride;
  view.strata_ = after_strata_count.substr(0, strata_bytes);
  r.Skip(strata_bytes);
  const auto num_items = r.ReadU64();
  if (!num_items) return std::nullopt;
  const std::string_view item_region = r.Rest();
  const size_t item_stride = view.item_stride();
  if (item_region.size() % item_stride != 0 ||
      *num_items != item_region.size() / item_stride) {
    return std::nullopt;
  }
  view.items_ = item_region;
  // Stratum table: strictly ascending (dimension, stratum key), every
  // dimension in range, thresholds in (0, 1] or +infinity (priorities
  // are NextDoubleOpenZero draws), capacity within the initial k,
  // member count within the capacity.
  for (size_t i = 0; i < view.num_strata(); ++i) {
    if (view.stratum_dimension(i) >= view.num_dimensions_) {
      return std::nullopt;
    }
    if (i > 0) {
      const auto prev = std::make_pair(view.stratum_dimension(i - 1),
                                       view.stratum_key(i - 1));
      const auto cur =
          std::make_pair(view.stratum_dimension(i), view.stratum_key(i));
      if (!(prev < cur)) return std::nullopt;
    }
    const double t = view.stratum_threshold(i);
    if (!(t > 0.0) || (t > 1.0 && t != kInfiniteThreshold)) {
      return std::nullopt;
    }
    if (view.stratum_capacity(i) > view.k_ ||
        view.stratum_member_count(i) > view.stratum_capacity(i)) {
      return std::nullopt;
    }
  }
  // Item table: strictly ascending keys, finite values, priorities in
  // (0, 1], every stratum reference resolving to a table entry. The
  // membership reconstruction (priority strictly below the stratum
  // threshold) must hit every serialized member count exactly, and every
  // item must be a member somewhere -- otherwise it would not be
  // retained.
  std::vector<uint64_t> counted(view.num_strata(), 0);
  const auto find_stratum = [&view](size_t dimension,
                                    uint64_t key) -> std::optional<size_t> {
    size_t lo = 0, hi = view.num_strata();
    const auto target = std::make_pair(dimension, key);
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      const auto at =
          std::make_pair(view.stratum_dimension(mid), view.stratum_key(mid));
      if (at < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == view.num_strata()) return std::nullopt;
    const auto at =
        std::make_pair(view.stratum_dimension(lo), view.stratum_key(lo));
    if (at != target) return std::nullopt;
    return lo;
  };
  for (size_t i = 0; i < view.num_items(); ++i) {
    if (i > 0 && view.item_key(i) <= view.item_key(i - 1)) {
      return std::nullopt;
    }
    if (!std::isfinite(view.item_value(i))) return std::nullopt;
    const double p = view.item_priority(i);
    if (!(p > 0.0) || p > 1.0) return std::nullopt;
    bool member_somewhere = false;
    for (size_t d = 0; d < view.num_dimensions_; ++d) {
      const auto s = find_stratum(d, view.item_stratum(i, d));
      if (!s) return std::nullopt;
      if (p < view.stratum_threshold(*s)) {
        ++counted[*s];
        member_somewhere = true;
      }
    }
    if (!member_somewhere) return std::nullopt;
  }
  for (size_t i = 0; i < view.num_strata(); ++i) {
    if (counted[i] != view.stratum_member_count(i)) return std::nullopt;
  }
  return view;
}

MultiStratifiedSampler MultiStratifiedSampler::FromValidatedView(
    const FrameView& view) {
  MultiStratifiedSampler sampler(view.num_dimensions(), view.k(),
                                 /*seed=*/1);
  sampler.rng_.SetState(view.rng_state_);
  for (size_t i = 0; i < view.num_strata(); ++i) {
    Stratum s;
    s.threshold = view.stratum_threshold(i);
    s.capacity = view.stratum_capacity(i);
    sampler.strata_.emplace(
        StratumId{view.stratum_dimension(i), view.stratum_key(i)},
        std::move(s));
  }
  for (size_t i = 0; i < view.num_items(); ++i) {
    ItemData item;
    item.value = view.item_value(i);
    item.priority = view.item_priority(i);
    item.strata.reserve(view.num_dimensions());
    for (size_t d = 0; d < view.num_dimensions(); ++d) {
      item.strata.push_back(view.item_stratum(i, d));
    }
    const uint64_t key = view.item_key(i);
    // Rebuild memberships by the wire rule the view already validated.
    for (size_t d = 0; d < view.num_dimensions(); ++d) {
      Stratum& s = sampler.strata_.at({d, item.strata[d]});
      if (item.priority < s.threshold) {
        s.members.emplace(item.priority, key);
        ++item.memberships;
      }
    }
    sampler.items_.emplace(key, std::move(item));
  }
  return sampler;
}

std::optional<MultiStratifiedSampler> MultiStratifiedSampler::Deserialize(
    ByteReader& r) {
  const std::string_view body = r.Rest();
  const auto view = ViewBody(body);
  if (!view) return std::nullopt;
  r.Skip(body.size());  // ViewBody consumed the whole body
  return FromValidatedView(*view);
}

FrameFault MultiStratifiedSampler::DiagnoseFrame(std::string_view frame) {
  const FrameFault f =
      ClassifyFrameBytes(frame, kStratifiedMagic, kStratifiedVersion);
  if (f != FrameFault::kNone) return f;
  return Deserialize(frame).has_value() ? FrameFault::kNone
                                        : FrameFault::kCorruptBody;
}

std::optional<MultiStratifiedSampler::FrameView>
MultiStratifiedSampler::DeserializeView(std::string_view frame) {
  const auto body = CheckedFrameBody(frame);
  if (!body) return std::nullopt;
  return ViewBody(*body);
}

bool MultiStratifiedSampler::MergeManyFrames(
    std::span<const std::string_view> frames) {
  // Vet every frame before the first one is applied (all-or-nothing),
  // then apply as the literal Merge() chain in span order.
  std::vector<MultiStratifiedSampler> parsed;
  parsed.reserve(frames.size());
  for (std::string_view f : frames) {
    auto sampler = Deserialize(f);
    if (!sampler || sampler->num_dimensions_ != num_dimensions_ ||
        sampler->k_ != k_) {
      return false;
    }
    parsed.push_back(std::move(*sampler));
  }
  for (const MultiStratifiedSampler& s : parsed) Merge(s);
  return true;
}

}  // namespace ats
