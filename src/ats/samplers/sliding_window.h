// Sliding-window sampling in bounded space (Section 3.2, Figures 1-2).
//
// Implements the Gemulla & Lehner (G&L) [14] bounded-space scheme,
// re-expressed as the paper's two-stage adaptive thresholding procedure,
// and BOTH final thresholds over the *identical* stored state:
//
//  * Storage stage. The sampler keeps "current" examples C(t) from the
//    window (t - window, t] and "expired" examples X(t) from
//    (t - 2*window, t - window]. A new item x_n gets the initial threshold
//    T_n = 1 if |C| < k, else the k-th smallest of C's priorities and R_n.
//    Items with R_n >= T_n are discarded. When an insertion pushes |C|
//    above k, every current threshold is lowered to min(T_i, T_n), which
//    evicts the largest-priority item. Items that leave the window move to
//    X with their priority and final per-item threshold; X is trimmed at
//    two window lengths.
//
//  * Final threshold, G&L: T_GL = k-th smallest priority among C u X.
//    Correct but conservative - it discards roughly half the usable points.
//
//  * Final threshold, improved (this paper): T_imp = min_{i in C(t)} T_i.
//    The storage stage is a sequential 1-substitutable rule and min
//    composition preserves 1-substitutability (Theorem 9); the min is
//    constant across the window so Theorem 6 upgrades it to full
//    substitutability. Same sketch, roughly twice the usable sample.
//
// Retention lives on the shared SampleStore core: the current set C(t) is
// a SampleStore<WindowItem> whose priority column carries R_i and whose
// payload column carries (id, time, per-item threshold T_i). Window
// expiry is the store's ExtractIf hook (a stable time partition -- the
// columns are always in arrival == time order), the min-update on
// eviction is ForEachMutablePayload, and the capacity eviction itself is
// the same bottom-k selection the store's compaction uses. That puts the
// windowed sampler on the identical retention engine as the sketches, so
// it inherits the mergeable-sketch wire format and the k-way
// aggregation below.
//
// Merging (distributed windows): samplers over DISJOINT key partitions of
// one stream, sharing the time axis, merge by min threshold composition
// (Theorem 9): the union of the current sets under the common bound
// t = min of both sides' improved thresholds at the merge instant,
// re-capped at k by the usual bottom-k rule when the union overflows
// (every per-item threshold is min-updated with the final bound, which
// leaves the improved threshold -- already the min over all items --
// unchanged); expired sets are unioned in time order and trimmed at two
// windows, so the G&L threshold of the merged sampler is computed over
// the full union. Unlike the sketches' threshold-pruned one-shot engine,
// the windowed rule is clock-SENSITIVE -- improved thresholds recover as
// old constraints expire -- so there is no clock-free global bound to
// hoist: MergeMany/MergeManyFrames are DEFINED as the pairwise chain in
// span order (one shared snapshot/selection core per input, frames all
// validated before the first is applied) and differential-tested
// bit-identical to the explicit Merge chain (window_mergeable_test.cc).
#ifndef ATS_SAMPLERS_SLIDING_WINDOW_H_
#define ATS_SAMPLERS_SLIDING_WINDOW_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ats/core/random.h"
#include "ats/core/sample_store.h"
#include "ats/core/threshold.h"
#include "ats/util/memory.h"
#include "ats/util/serialize.h"

namespace ats {

class SlidingWindowSampler {
 public:
  struct StoredItem {
    uint64_t id = 0;
    double time = 0.0;
    double priority = 0.0;
    double threshold = 1.0;  // per-item threshold T_i(t), min-updated
  };

  /// k: target sample size / space bound per window; window: Delta.
  SlidingWindowSampler(size_t k, double window, uint64_t seed);

  /// Feeds an arrival (times must be non-decreasing). Returns true iff the
  /// item was stored. The priority is drawn internally from Uniform(0,1).
  /// Thread-safety: mutating call -- external synchronization required.
  //
  /// Defined inline: at the rate == k operating point the whole per-
  /// arrival path is a handful of compares and two column push_backs,
  /// and the call overhead itself is measurable against the deque
  /// baseline it is benchmarked against (BM_WindowArriveBoundary).
  bool Arrive(double time, uint64_t id) {
    ExpireUntil(time);
    const double priority = rng_.NextDoubleOpenZero();
    if (current_.size() - dead_prefix_ >= k_) {
      return ArriveAtFullSample(time, priority, id);
    }
    // Underfull: initial threshold 1. The store's acceptance bound is
    // pinned at 1.0 forever (eviction is manual), so Offer IS the
    // R_n < T_n test.
    return current_.Offer(priority, WindowItem{id, time, 1.0});
  }

  // --- Queries (all advance expiry to `now`) ---
  //
  // Queries mutate the representation (items move current -> expired and
  // expired items age out), so like ingest they must not run concurrently
  // with each other or with Arrive on the same sampler. `now` must be
  // non-decreasing across calls.

  /// G&L final threshold: k-th smallest priority among current u expired.
  double GlThreshold(double now);

  /// Improved final threshold: min over current items' per-item thresholds.
  double ImprovedThreshold(double now);

  /// Uniform samples from the window (t - window, now] under each final
  /// threshold. Entries carry Uniform priorities and the final threshold.
  std::vector<SampleEntry> GlSample(double now);
  std::vector<SampleEntry> ImprovedSample(double now);

  /// Number of stored (current + expired) items: the space actually used.
  size_t StoredCount(double now);

  /// Live heap bytes of the windowed state (util/memory.h convention):
  /// the current store's SoA columns plus the expired column, including
  /// the not-yet-extracted dead prefix and the not-yet-erased dropped
  /// head (they occupy real bytes until the deferred cleanup runs).
  /// O(1), non-canonicalizing -- never advances expiry.
  size_t MemoryFootprint() const {
    return current_.MemoryFootprint() + VectorFootprint(expired_);
  }

  /// Current items (after expiry at `now`), for the Figure 1 threshold
  /// trace. Sorted by arrival time.
  std::vector<StoredItem> CurrentItems(double now);

  size_t k() const { return k_; }
  double window() const { return window_; }

  /// Latest time observed (arrivals, queries, merges). Serialization and
  /// merging canonicalize expiry at this instant.
  double last_time() const { return last_time_; }

  /// Monotone counter covering every observable mutation (accepted
  /// arrivals, evictions, expiry movement, merges). Query-side caches
  /// (ShardedWindowSampler) snapshot it to skip re-merging clean shards.
  uint64_t mutation_epoch() const {
    return current_.mutation_epoch() + aux_epoch_;
  }

  /// Merges a sampler over a disjoint key partition of the same timeline
  /// (windows must match; ATS_CHECK enforced). Equivalent to
  /// MergeMany({&other}); self-merge is a no-op.
  void Merge(const SlidingWindowSampler& other);

  /// K-way merge: bit-identical to merging the inputs one by one with
  /// Merge() in span order (differential-tested) -- the windowed rule is
  /// clock-sensitive, so the chain IS the definition (see the file
  /// comment). Inputs aliasing `this` are skipped; with no real inputs
  /// this is a strict no-op.
  void MergeMany(std::span<const SlidingWindowSampler* const> inputs);

  // --- Versioned wire format (magic "SWN1") ---
  //
  // The frame carries k, window, last_time, the RNG state (a restored
  // sampler continues the exact priority stream), and the current +
  // expired entry regions in time order. Per-item validation admits
  // priority == threshold ties: storage keeps the item whose priority
  // became the eviction bound even though it is outside the strict
  // threshold sample (see docs/WIRE_FORMAT.md).

  /// Appends the wire frame. Canonicalizes nothing: entries are written
  /// as stored; Deserialize re-runs expiry at last_time.
  void SerializeTo(ByteWriter& w) const;
  static std::optional<SlidingWindowSampler> Deserialize(ByteReader& r);
  std::string SerializeToString() const { return SerializeSketch(*this); }
  static std::optional<SlidingWindowSampler> Deserialize(
      std::string_view bytes) {
    return DeserializeSketch<SlidingWindowSampler>(bytes);
  }

  /// Typed rejection reason for a frame Deserialize would refuse:
  /// structural cause first (kTruncated / kBadMagic / kBadVersion /
  /// checksum -> kCorruptBody), kCorruptBody for field- or entry-level
  /// violations, kNone iff the frame parses.
  static FrameFault DiagnoseFrame(std::string_view frame);

  /// Zero-copy read-only view over a whole serialized frame (checksum
  /// included). Parsing validates everything Deserialize validates but
  /// materializes nothing; the view borrows the frame's storage and must
  /// not outlive it.
  class FrameView {
   public:
    size_t k() const { return static_cast<size_t>(k_); }
    double window() const { return window_; }
    double last_time() const { return last_time_; }
    size_t current_count() const { return current_count_; }
    size_t expired_count() const { return expired_count_; }

    /// Entry i in [0, current_count + expired_count): current region
    /// first, then expired, each in time order.
    StoredItem entry(size_t i) const;

   private:
    friend class SlidingWindowSampler;
    static constexpr size_t kStride = sizeof(uint64_t) + 3 * sizeof(double);

    uint64_t k_ = 0;
    double window_ = 0.0;
    double last_time_ = 0.0;
    size_t current_count_ = 0;
    size_t expired_count_ = 0;
    std::string_view entries_;
  };

  /// Parses a SerializeToString buffer into a FrameView; nullopt on
  /// exactly the inputs Deserialize rejects. Allocation-free: hostile
  /// capacity claims cannot reserve memory here.
  static std::optional<FrameView> DeserializeView(std::string_view frame);

  /// Threshold-pruned k-way merge straight off the wire: observationally
  /// identical to deserializing every frame and merging the results with
  /// Merge() in span order. Returns false -- leaving the sampler
  /// observably unchanged -- if ANY frame fails validation or carries a
  /// mismatched window; all frames are vetted before the first one is
  /// applied.
  bool MergeManyFrames(std::span<const std::string_view> frames);

 private:
  // Store payload: everything about a stored item except its priority,
  // which lives in the store's priority column.
  struct WindowItem {
    uint64_t id = 0;
    double time = 0.0;
    double threshold = 1.0;
  };

  // One input of the shared merge core: a filtered view of a sampler or
  // frame at the global merge instant `now` (current: time in
  // (now - w, now]; expired: time in (now - 2w, now - w]).
  struct WindowSnapshot {
    std::vector<StoredItem> current;
    std::vector<StoredItem> expired;
  };

  // The expiry hot path: pure MARKING. Entries leaving the window only
  // advance dead_prefix_ (no copy, no pop -- they stay parked in the
  // column prefix); entries of expired_ aging past two windows only
  // advance expired_head_. The physical work (copying the dead prefix
  // into expired_, erasing both prefixes) is batched into
  // CleanupDeadPrefix / the erase below at every k-th marking, so one
  // arrival at the rate == k boundary costs two compares and two
  // increments here -- the regime where the classic deque design's O(1)
  // pop_front used to win (BM_WindowArriveBoundary).
  void ExpireUntil(double now) {
    if (now > last_time_) last_time_ = now;
    const double cutoff = last_time_ - window_;
    const auto& payloads = current_.payloads();
    if (dead_prefix_ < payloads.size() &&
        payloads[dead_prefix_].time <= cutoff) {
      ++aux_epoch_;
      do {
        ++dead_prefix_;
      } while (dead_prefix_ < payloads.size() &&
               payloads[dead_prefix_].time <= cutoff);
      if (dead_prefix_ >= k_) CleanupDeadPrefix();
    }
    DropExpired();
  }

  // Marks expired_ entries older than two windows dropped (head advance)
  // and reclaims the dropped prefix once it reaches k.
  void DropExpired() {
    const double drop = last_time_ - 2.0 * window_;
    if (expired_head_ < expired_.size() &&
        expired_[expired_head_].time <= drop) {
      ++aux_epoch_;
      do {
        ++expired_head_;
      } while (expired_head_ < expired_.size() &&
               expired_[expired_head_].time <= drop);
      if (expired_head_ >= k_) {
        expired_.erase(expired_.begin(),
                       expired_.begin() +
                           static_cast<std::ptrdiff_t>(expired_head_));
        expired_head_ = 0;
      }
    }
  }

  // The live (not yet dropped) expired items X(t), oldest first.
  std::span<const StoredItem> ExpiredItems() const {
    return std::span<const StoredItem>(expired_.data() + expired_head_,
                                       expired_.size() - expired_head_);
  }

  // The saturated-sample arrival path: O(k) threshold scan, min-update,
  // and eviction. Out of line -- only the underfull/reject path above is
  // latency-critical per arrival.
  bool ArriveAtFullSample(double time, double priority, uint64_t id);
  // Expiry advance for QUERY paths: ExpireUntil plus the physical
  // extraction, plus a re-drop -- items that aged past two windows while
  // parked in the dead prefix surface in expired_ only at extraction
  // time, so one more head scan makes the exposed expired set exact.
  void FlushExpiry(double now);
  // Stored item i reassembled from the parallel store columns.
  StoredItem ItemAt(size_t i) const;
  // Physically extracts the dead (logically expired) column prefix:
  // bulk-copies it into expired_, then erases it from the columns.
  // Amortized O(1) per expired item: runs when the prefix reaches k, or
  // piggybacks on paths that are O(k) anyway (queries, evictions,
  // merges, never the accept path of the boundary regime).
  void CleanupDeadPrefix();
  std::vector<SampleEntry> SampleWithThreshold(double threshold) const;
  // Improved threshold over the store as-is (no expiry advance).
  double CurrentMinThreshold() const;
  // Snapshot of a (possibly lazily expired) sampler at global time `now`.
  WindowSnapshot SnapshotAt(double now) const;
  static WindowSnapshot SnapshotOfView(const FrameView& view, double now);
  // The pairwise merge core shared by Merge, MergeMany, and
  // MergeManyFrames: folds one input snapshot (already filtered at
  // `now`) into `this`.
  void MergeOneSnapshot(WindowSnapshot snap, double now);

  size_t k_;
  double window_;
  Xoshiro256 rng_;
  // Current items C(t): priority column + WindowItem payloads, always in
  // arrival (== time) order. Capacity eviction is manual (the acceptance
  // rule needs the evicting threshold first), and the store is sized at
  // 2k so that its own priority-ordered compaction never fires on the
  // at most k live + k dead-prefix entries it buffers (see the ctor).
  SampleStore<WindowItem> current_;
  // Leading column entries that have logically expired but are not yet
  // copied into expired_ or physically extracted; every column reader
  // starts past this index. See ExpireUntil / CleanupDeadPrefix.
  size_t dead_prefix_ = 0;
  // Expired items X(t), ordered by time; the live range starts at
  // expired_head_ (dropped entries are marked, then batch-erased -- same
  // deferral as the dead prefix, and a vector + head index beats a deque
  // here: no per-16-item block allocator traffic on the hot path).
  std::vector<StoredItem> expired_;
  size_t expired_head_ = 0;
  double last_time_;
  // Observable mutations not visible in the store's epoch (expired-side
  // changes, time advancement); see mutation_epoch().
  uint64_t aux_epoch_ = 0;
};

static_assert(MergeableSketch<SlidingWindowSampler>);

}  // namespace ats

#endif  // ATS_SAMPLERS_SLIDING_WINDOW_H_
