// Sliding-window sampling in bounded space (Section 3.2, Figures 1-2).
//
// Implements the Gemulla & Lehner (G&L) [14] bounded-space scheme,
// re-expressed as the paper's two-stage adaptive thresholding procedure,
// and BOTH final thresholds over the *identical* stored state:
//
//  * Storage stage. The sampler keeps "current" examples C(t) from the
//    window (t - window, t] and "expired" examples X(t) from
//    (t - 2*window, t - window]. A new item x_n gets the initial threshold
//    T_n = 1 if |C| < k, else the k-th smallest of C's priorities and R_n.
//    Items with R_n >= T_n are discarded. When an insertion pushes |C|
//    above k, every current threshold is lowered to min(T_i, T_n), which
//    evicts the largest-priority item. Items that leave the window move to
//    X with their priority and final per-item threshold; X is trimmed at
//    two window lengths.
//
//  * Final threshold, G&L: T_GL = k-th smallest priority among C u X.
//    Correct but conservative - it discards roughly half the usable points.
//
//  * Final threshold, improved (this paper): T_imp = min_{i in C(t)} T_i.
//    The storage stage is a sequential 1-substitutable rule and min
//    composition preserves 1-substitutability (Theorem 9); the min is
//    constant across the window so Theorem 6 upgrades it to full
//    substitutability. Same sketch, roughly twice the usable sample.
#ifndef ATS_SAMPLERS_SLIDING_WINDOW_H_
#define ATS_SAMPLERS_SLIDING_WINDOW_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "ats/core/random.h"
#include "ats/core/threshold.h"

namespace ats {

class SlidingWindowSampler {
 public:
  struct StoredItem {
    uint64_t id = 0;
    double time = 0.0;
    double priority = 0.0;
    double threshold = 1.0;  // per-item threshold T_i(t), min-updated
  };

  // k: target sample size / space bound per window; window: Delta.
  SlidingWindowSampler(size_t k, double window, uint64_t seed);

  // Feeds an arrival (times must be non-decreasing). Returns true iff the
  // item was stored. The priority is drawn internally from Uniform(0,1).
  bool Arrive(double time, uint64_t id);

  // --- Queries (all advance expiry to `now`) ---

  // G&L final threshold: k-th smallest priority among current u expired.
  double GlThreshold(double now);

  // Improved final threshold: min over current items' per-item thresholds.
  double ImprovedThreshold(double now);

  // Uniform samples from the window (t - window, now] under each final
  // threshold. Entries carry Uniform priorities and the final threshold.
  std::vector<SampleEntry> GlSample(double now);
  std::vector<SampleEntry> ImprovedSample(double now);

  // Number of stored (current + expired) items: the space actually used.
  size_t StoredCount(double now);

  // Current items (after expiry at `now`), for the Figure 1 threshold
  // trace. Sorted by arrival time.
  std::vector<StoredItem> CurrentItems(double now);

  size_t k() const { return k_; }
  double window() const { return window_; }

 private:
  void ExpireUntil(double now);
  std::vector<SampleEntry> SampleWithThreshold(double threshold) const;

  size_t k_;
  double window_;
  Xoshiro256 rng_;
  // Both deques are ordered by arrival time (ascending).
  std::deque<StoredItem> current_;
  std::deque<StoredItem> expired_;
};

}  // namespace ats

#endif  // ATS_SAMPLERS_SLIDING_WINDOW_H_
