#include "ats/samplers/multi_objective.h"

#include "ats/util/check.h"

namespace ats {

MultiObjectiveSampler::MultiObjectiveSampler(size_t num_objectives, size_t k,
                                             uint64_t seed)
    : rng_(seed) {
  ATS_CHECK(num_objectives >= 1);
  sketches_.reserve(num_objectives);
  for (size_t j = 0; j < num_objectives; ++j) sketches_.emplace_back(k);
}

void MultiObjectiveSampler::Add(uint64_t key,
                                const std::vector<double>& weights,
                                double value) {
  ATS_CHECK(weights.size() == sketches_.size());
  // One shared uniform per item coordinates the per-objective priorities.
  const double u = rng_.NextDoubleOpenZero();
  for (size_t j = 0; j < sketches_.size(); ++j) {
    ATS_CHECK(weights[j] > 0.0);
    sketches_[j].Offer(u / weights[j], Stored{key, value, weights[j]});
  }
}

size_t MultiObjectiveSampler::CombinedSize() const {
  std::unordered_set<uint64_t> keys;
  for (const auto& sketch : sketches_) {
    for (const auto& e : sketch.entries()) keys.insert(e.payload.key);
  }
  return keys.size();
}

double MultiObjectiveSampler::Threshold(size_t objective) const {
  ATS_CHECK(objective < sketches_.size());
  return sketches_[objective].Threshold();
}

std::vector<SampleEntry> MultiObjectiveSampler::Sample(
    size_t objective) const {
  ATS_CHECK(objective < sketches_.size());
  const auto& sketch = sketches_[objective];
  std::vector<SampleEntry> out;
  out.reserve(sketch.size());
  for (const auto& e : sketch.entries()) {
    SampleEntry s;
    s.key = e.payload.key;
    s.value = e.payload.value;
    s.priority = e.priority;
    s.threshold = sketch.Threshold();
    s.dist = PriorityDist::WeightedUniform(e.payload.weight);
    out.push_back(s);
  }
  return out;
}

}  // namespace ats
