#include "ats/samplers/multi_objective.h"

#include <algorithm>

#include "ats/util/check.h"

namespace {
constexpr uint32_t kMultiObjectiveMagic = 0x31424f4d;  // "MOB1"
constexpr uint32_t kMultiObjectiveVersion = 1;
}  // namespace

namespace ats {

MultiObjectiveSampler::MultiObjectiveSampler(size_t num_objectives, size_t k,
                                             uint64_t seed)
    : rng_(seed) {
  ATS_CHECK(num_objectives >= 1);
  sketches_.reserve(num_objectives);
  for (size_t j = 0; j < num_objectives; ++j) sketches_.emplace_back(k);
}

void MultiObjectiveSampler::Add(uint64_t key,
                                const std::vector<double>& weights,
                                double value) {
  ATS_CHECK(weights.size() == sketches_.size());
  // One shared uniform per item coordinates the per-objective priorities.
  const double u = rng_.NextDoubleOpenZero();
  for (size_t j = 0; j < sketches_.size(); ++j) {
    ATS_CHECK(weights[j] > 0.0);
    sketches_[j].Offer(u / weights[j], Stored{key, value, weights[j]});
  }
}

size_t MultiObjectiveSampler::CombinedSize() const {
  std::unordered_set<uint64_t> keys;
  for (const auto& sketch : sketches_) {
    for (const Stored& item : sketch.store().payloads()) {
      keys.insert(item.key);
    }
  }
  return keys.size();
}

double MultiObjectiveSampler::Threshold(size_t objective) const {
  ATS_CHECK(objective < sketches_.size());
  return sketches_[objective].Threshold();
}

std::vector<SampleEntry> MultiObjectiveSampler::Sample(
    size_t objective) const {
  ATS_CHECK(objective < sketches_.size());
  const auto& sketch = sketches_[objective];
  std::vector<SampleEntry> out;
  out.reserve(sketch.size());
  const auto& store = sketch.store();
  for (size_t i = 0; i < store.size(); ++i) {
    const Stored& item = store.payloads()[i];
    SampleEntry s;
    s.key = item.key;
    s.value = item.value;
    s.priority = store.priorities()[i];
    s.threshold = sketch.Threshold();
    s.dist = PriorityDist::WeightedUniform(item.weight);
    out.push_back(s);
  }
  return out;
}

void MultiObjectiveSampler::Merge(const MultiObjectiveSampler& other) {
  if (&other == this) return;
  ATS_CHECK(other.sketches_.size() == sketches_.size());
  for (size_t j = 0; j < sketches_.size(); ++j) {
    sketches_[j].Merge(other.sketches_[j]);
  }
}

void MultiObjectiveSampler::SerializeTo(ByteWriter& w) const {
  WriteSketchHeader(w, kMultiObjectiveMagic, kMultiObjectiveVersion);
  w.WriteU64(sketches_.size());
  w.WriteU64(sketches_.front().k());
  WriteRngState(w, rng_.State());
  for (const BottomK<Stored>& sketch : sketches_) {
    // Length-prefixed nested body: the reader can hand each objective's
    // segment to the nested parser without trusting its self-description.
    ByteWriter nested;
    sketch.SerializeTo(nested);
    w.WriteU64(nested.bytes().size());
    w.WriteBytes(nested.bytes());
  }
}

std::optional<MultiObjectiveSampler> MultiObjectiveSampler::Deserialize(
    ByteReader& r) {
  if (!ReadSketchHeader(r, kMultiObjectiveMagic, kMultiObjectiveVersion)) {
    return std::nullopt;
  }
  const auto num_objectives = r.ReadU64();
  const auto k = r.ReadU64();
  if (!num_objectives || !k) return std::nullopt;
  if (*num_objectives < 1 || *k < 1) return std::nullopt;
  const auto rng_state = ReadRngState(r);
  if (!rng_state) return std::nullopt;
  MultiObjectiveSampler sampler(1, static_cast<size_t>(*k), /*seed=*/1);
  sampler.rng_.SetState(*rng_state);
  sampler.sketches_.clear();
  for (uint64_t j = 0; j < *num_objectives; ++j) {
    const auto body_len = r.ReadU64();
    if (!body_len) return std::nullopt;
    const std::string_view rest = r.Rest();
    if (*body_len > rest.size()) return std::nullopt;
    ByteReader nested(rest.substr(0, static_cast<size_t>(*body_len)));
    auto sketch = BottomK<Stored>::Deserialize(nested);
    if (!sketch || !nested.AtEnd() || sketch->k() != *k) return std::nullopt;
    sampler.sketches_.push_back(std::move(*sketch));
    r.Skip(static_cast<size_t>(*body_len));
  }
  return sampler;
}

FrameFault MultiObjectiveSampler::DiagnoseFrame(std::string_view frame) {
  const FrameFault f =
      ClassifyFrameBytes(frame, kMultiObjectiveMagic, kMultiObjectiveVersion);
  if (f != FrameFault::kNone) return f;
  return Deserialize(frame).has_value() ? FrameFault::kNone
                                        : FrameFault::kCorruptBody;
}

std::optional<MultiObjectiveSampler::FrameView>
MultiObjectiveSampler::DeserializeView(std::string_view frame) {
  auto r = OpenCheckedFrame(frame, kMultiObjectiveMagic,
                            kMultiObjectiveVersion);
  if (!r) return std::nullopt;
  const auto num_objectives = r->ReadU64();
  const auto k = r->ReadU64();
  if (!num_objectives || !k) return std::nullopt;
  if (*num_objectives < 1 || *k < 1) return std::nullopt;
  if (!ReadRngState(*r)) return std::nullopt;
  FrameView view;
  view.k_ = static_cast<size_t>(*k);
  view.objectives_.reserve(static_cast<size_t>(
      std::min<uint64_t>(*num_objectives, 1024)));
  for (uint64_t j = 0; j < *num_objectives; ++j) {
    const auto body_len = r->ReadU64();
    if (!body_len) return std::nullopt;
    const std::string_view rest = r->Rest();
    if (*body_len > rest.size()) return std::nullopt;
    auto nested =
        BottomK<Stored>::ViewBody(rest.substr(0, static_cast<size_t>(*body_len)));
    if (!nested || nested->k() != *k) return std::nullopt;
    view.objectives_.push_back(*nested);
    r->Skip(static_cast<size_t>(*body_len));
  }
  if (!r->AtEnd()) return std::nullopt;
  return view;
}

bool MultiObjectiveSampler::MergeManyFrames(
    std::span<const std::string_view> frames) {
  // Vet every frame before the first one is applied (all-or-nothing).
  std::vector<FrameView> views;
  views.reserve(frames.size());
  for (std::string_view f : frames) {
    auto view = DeserializeView(f);
    if (!view || view->num_objectives() != sketches_.size()) return false;
    views.push_back(std::move(*view));
  }
  if (views.empty()) return true;  // strict no-op, like MergeMany({})
  // Objective-wise threshold-pruned application: observationally equal
  // to the per-frame Merge() chain, objective by objective.
  std::vector<BottomK<Stored>::FrameView> per_objective;
  per_objective.reserve(views.size());
  for (size_t j = 0; j < sketches_.size(); ++j) {
    per_objective.clear();
    for (const FrameView& v : views) per_objective.push_back(v.objective(j));
    sketches_[j].MergeValidatedViews(per_objective);
  }
  return true;
}

}  // namespace ats
