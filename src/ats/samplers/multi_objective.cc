#include "ats/samplers/multi_objective.h"

#include "ats/util/check.h"

namespace ats {

MultiObjectiveSampler::MultiObjectiveSampler(size_t num_objectives, size_t k,
                                             uint64_t seed)
    : rng_(seed) {
  ATS_CHECK(num_objectives >= 1);
  sketches_.reserve(num_objectives);
  for (size_t j = 0; j < num_objectives; ++j) sketches_.emplace_back(k);
}

void MultiObjectiveSampler::Add(uint64_t key,
                                const std::vector<double>& weights,
                                double value) {
  ATS_CHECK(weights.size() == sketches_.size());
  // One shared uniform per item coordinates the per-objective priorities.
  const double u = rng_.NextDoubleOpenZero();
  for (size_t j = 0; j < sketches_.size(); ++j) {
    ATS_CHECK(weights[j] > 0.0);
    sketches_[j].Offer(u / weights[j], Stored{key, value, weights[j]});
  }
}

size_t MultiObjectiveSampler::CombinedSize() const {
  std::unordered_set<uint64_t> keys;
  for (const auto& sketch : sketches_) {
    for (const Stored& item : sketch.store().payloads()) {
      keys.insert(item.key);
    }
  }
  return keys.size();
}

double MultiObjectiveSampler::Threshold(size_t objective) const {
  ATS_CHECK(objective < sketches_.size());
  return sketches_[objective].Threshold();
}

std::vector<SampleEntry> MultiObjectiveSampler::Sample(
    size_t objective) const {
  ATS_CHECK(objective < sketches_.size());
  const auto& sketch = sketches_[objective];
  std::vector<SampleEntry> out;
  out.reserve(sketch.size());
  const auto& store = sketch.store();
  for (size_t i = 0; i < store.size(); ++i) {
    const Stored& item = store.payloads()[i];
    SampleEntry s;
    s.key = item.key;
    s.value = item.value;
    s.priority = store.priorities()[i];
    s.threshold = sketch.Threshold();
    s.dist = PriorityDist::WeightedUniform(item.weight);
    out.push_back(s);
  }
  return out;
}

}  // namespace ats
