// Sharded ingestion front-ends for the time-axis samplers: the
// ShardedSampler pattern (hash-partitioned independent shards, query-side
// k-way aggregation behind a mutation-epoch cache) applied to sliding
// windows and time-decayed samples.
//
// Both front-ends route each item to one of S shards by a salted key
// hash, so the per-shard streams are disjoint key partitions sharing the
// stream's time axis. Each shard is an ordinary full-capacity sampler on
// its own SampleStore; ingest into distinct shards touches no shared
// state. Queries aggregate the shards through the samplers' MergeMany --
// the threshold-pruned k-way engine -- into a cached merged sampler that
// is rebuilt only when some shard's mutation epoch moved since the cache
// was taken; between ingest batches, repeated queries are cache reads.
//
// Validity: the merged windowed sample is the min-composed union of valid
// per-shard window samples (Theorem 9 + Theorem 6; see
// sliding_window.h), and the merged decayed sample is the bottom-k union
// over absolute decay-invariant keys. Per-shard priorities are drawn
// from independent per-shard RNGs, so the merged samples are valid (HT
// estimates stay unbiased) but not bit-identical to a particular
// single-sampler run -- the same contract as ShardedSampler's
// independent-priority mode.
//
// Thread-safety: ingest routed through Arrive/Add/AddBatch mutates one
// shard plus (lazily) nothing else, but the ROUTER is not synchronized --
// feed it from one thread, or partition upstream and drive the shard
// samplers directly. Queries touch every shard and refresh the shared
// cache: run them from one thread, never concurrently with ingest.
// Query times must be non-decreasing (windows expire monotonically).
#ifndef ATS_SAMPLERS_SHARDED_TIME_AXIS_H_
#define ATS_SAMPLERS_SHARDED_TIME_AXIS_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ats/core/threshold.h"
#include "ats/samplers/sliding_window.h"
#include "ats/samplers/time_decay.h"
#include "ats/util/memory.h"

namespace ats {

class ShardedWindowSampler {
 public:
  /// num_shards independent SlidingWindowSampler shards, each with full
  /// capacity k over the same window length (per-shard k keeps the merged
  /// bottom-k selection exact at the merge bound).
  ShardedWindowSampler(size_t num_shards, size_t k, double window,
                       uint64_t seed = 1);

  /// Shard index for an item id (salted hash, independent of the shards'
  /// priority streams).
  size_t ShardOf(uint64_t id) const;

  /// Routes one arrival to its shard (times non-decreasing stream-wide).
  bool Arrive(double time, uint64_t id);

  // --- Queries (merged across shards; cached between ingest batches) ---

  /// Improved final threshold of the merged windowed sample at `now`.
  double ImprovedThreshold(double now);
  /// G&L final threshold of the merged windowed sample at `now`.
  double GlThreshold(double now);
  std::vector<SampleEntry> ImprovedSample(double now);
  std::vector<SampleEntry> GlSample(double now);
  /// Stored items (current + expired) in the merged sampler at `now`.
  size_t MergedStoredCount(double now);

  size_t num_shards() const { return shards_.size(); }
  size_t k() const { return k_; }
  double window() const { return window_; }
  const SlidingWindowSampler& shard(size_t i) const { return shards_[i]; }

  /// Live heap bytes across the shards plus the engaged merge cache
  /// (util/memory.h convention). O(S), non-canonicalizing.
  size_t MemoryFootprint() const {
    size_t total = VectorFootprint(shards_);
    for (const auto& s : shards_) total += s.MemoryFootprint();
    if (merged_cache_.has_value()) {
      total += merged_cache_->MemoryFootprint();
    }
    return total + VectorFootprint(merged_epochs_);
  }

 private:
  /// The merged sampler, rebuilt through SlidingWindowSampler::MergeMany
  /// only when some shard's mutation epoch moved since the cached merge
  /// (the dirty-epoch cache). Mutable-by-convention: refreshed from
  /// single-threaded query context only.
  SlidingWindowSampler& MergedWindow();

  size_t k_;
  double window_;
  uint64_t route_salt_;
  std::vector<SlidingWindowSampler> shards_;
  std::optional<SlidingWindowSampler> merged_cache_;
  std::vector<uint64_t> merged_epochs_;
};

class ShardedDecaySampler {
 public:
  /// num_shards independent TimeDecaySampler shards, each with full
  /// capacity k.
  ShardedDecaySampler(size_t num_shards, size_t k, uint64_t seed = 1);

  /// Shard index for a key (salted hash).
  size_t ShardOf(uint64_t key) const;

  /// Routes one item to its shard.
  bool Add(uint64_t key, double weight, double value, double time);

  /// Batched ingest: partitions the batch into per-shard runs and feeds
  /// each shard through its block-prefiltered AddBatch. Returns the
  /// number of accepted items.
  size_t AddBatch(std::span<const TimeDecaySampler::TimedItem> items);

  // --- Queries (merged across shards; cached between ingest batches) ---

  /// Merged adaptive threshold on the log-key scale.
  double LogKeyThreshold() const;
  /// Merged decayed sample evaluated at `now`.
  std::vector<TimeDecaySampler::DecayedEntry> SampleAt(double now) const;
  /// HT estimate of the decayed total at `now` from the merged sample.
  double EstimateDecayedTotal(double now) const;

  size_t num_shards() const { return shards_.size(); }
  size_t k() const { return k_; }
  /// Total items retained across shards (>= merged sample size).
  size_t TotalRetained() const;
  const TimeDecaySampler& shard(size_t i) const { return shards_[i]; }

  /// Live heap bytes across the shards plus the engaged merge cache
  /// (util/memory.h convention); excludes the reusable batch scratch.
  size_t MemoryFootprint() const {
    size_t total = VectorFootprint(shards_);
    for (const auto& s : shards_) total += s.MemoryFootprint();
    if (merged_cache_.has_value()) {
      total += merged_cache_->MemoryFootprint();
    }
    return total + VectorFootprint(merged_epochs_);
  }

 private:
  /// Dirty-epoch merge cache, same contract as ShardedSampler's: rebuilt
  /// under const from single-threaded query context only.
  const TimeDecaySampler& MergedDecay() const;

  size_t k_;
  uint64_t route_salt_;
  std::vector<TimeDecaySampler> shards_;
  // Per-shard scratch buffers reused across AddBatch calls.
  std::vector<std::vector<TimeDecaySampler::TimedItem>> batch_scratch_;
  mutable std::optional<TimeDecaySampler> merged_cache_;
  mutable std::vector<uint64_t> merged_epochs_;
};

}  // namespace ats

#endif  // ATS_SAMPLERS_SHARDED_TIME_AXIS_H_
