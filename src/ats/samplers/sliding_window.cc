#include "ats/samplers/sliding_window.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>

#include "ats/util/check.h"

namespace {

constexpr uint32_t kWindowMagic = 0x53574e31;  // "SWN1"
constexpr uint32_t kWindowVersion = 1;

// Field offsets inside one 32-byte wire entry (id, time, priority,
// threshold; see docs/WIRE_FORMAT.md).
constexpr size_t kEntryTimeOffset = 8;
constexpr size_t kEntryPriorityOffset = 16;
constexpr size_t kEntryThresholdOffset = 24;

double ReadEntryDouble(std::string_view entries, size_t offset) {
  double v;
  std::memcpy(&v, entries.data() + offset, sizeof(v));
  return v;
}

}  // namespace

namespace ats {

SlidingWindowSampler::SlidingWindowSampler(size_t k, double window,
                                           uint64_t seed)
    : k_(k),
      window_(window),
      rng_(seed),
      // Uniform priorities live in (0, 1]; the store bound stays at 1.0
      // forever because eviction is manual (see Arrive). The store is
      // sized at TWICE the sampler's k: it holds at most k live plus k
      // dead-prefix entries (see ExpireUntil), and the store's own
      // priority-ordered compaction -- which fires whenever a
      // canonicalizing accessor sees more than its k entries -- must
      // never run on windowed state (it would evict by priority, not by
      // time).
      current_(2 * k, 1.0),
      last_time_(-std::numeric_limits<double>::infinity()) {
  ATS_CHECK(k >= 1);
  ATS_CHECK(window > 0.0);
}

void SlidingWindowSampler::CleanupDeadPrefix() {
  if (dead_prefix_ == 0) return;
  // The dead entries are a physical prefix, in time order, and OLDER
  // than everything already in expired_ was when it was copied -- so the
  // bulk copy appends in time order, and the reclamation is two ranged
  // erases (memmoves), not a per-element ExtractIf pass. Batching the
  // copy here (instead of copying item-by-item as each expires) is what
  // keeps the rate == k boundary at parity with a deque front-pop design
  // (bench_window.cc, BM_WindowArriveBoundary).
  const auto& payloads = current_.payloads();
  const auto& priorities = current_.priorities();
  expired_.reserve(expired_.size() + dead_prefix_);
  for (size_t i = 0; i < dead_prefix_; ++i) {
    expired_.push_back(StoredItem{payloads[i].id, payloads[i].time,
                                  priorities[i], payloads[i].threshold});
  }
  current_.DropFront(dead_prefix_);
  dead_prefix_ = 0;
}

void SlidingWindowSampler::FlushExpiry(double now) {
  ExpireUntil(now);
  CleanupDeadPrefix();
  // Entries that aged past two windows while parked in the dead prefix
  // reached expired_ only in the extraction above; one more drop scan
  // makes the exposed expired set exact.
  DropExpired();
}

bool SlidingWindowSampler::ArriveAtFullSample(double time, double priority,
                                              uint64_t id) {
  // Initial threshold at a full sample: the k-th smallest of the k
  // current priorities together with the new one. With m1 the largest
  // and m2 the second largest current priority, that is m1 if the
  // newcomer is above m1, otherwise max(m2, priority). The live current
  // set is the column region past the dead prefix.
  double m1 = 0.0, m2 = 0.0;
  {
    const auto& priorities = current_.priorities();
    for (size_t i = dead_prefix_; i < priorities.size(); ++i) {
      const double p = priorities[i];
      if (p > m1) {
        m2 = m1;
        m1 = p;
      } else if (p > m2) {
        m2 = p;
      }
    }
  }
  const double initial_threshold =
      priority >= m1 ? m1 : std::max(m2, priority);
  if (priority >= initial_threshold) return false;

  // The insertion will push |C| above k: lower every current threshold
  // to min(T_i, T_n) and evict the (first) largest-priority item -- its
  // priority is >= the new threshold. Both run on the physically clean
  // store (evictions are O(k) anyway, so the deferred prefix cleanup
  // rides along) and BEFORE the store sees the newcomer, so the store
  // never exceeds k entries here and its own compaction stays idle.
  CleanupDeadPrefix();
  current_.ForEachMutablePayload(
      [initial_threshold](double, WindowItem& item) {
        item.threshold = std::min(item.threshold, initial_threshold);
      });
  const auto& priorities = current_.priorities();
  size_t evict = 0;
  for (size_t i = 1; i < priorities.size(); ++i) {
    if (priorities[i] > priorities[evict]) evict = i;
  }
  ATS_DCHECK(priorities[evict] >= initial_threshold);
  size_t index = 0;
  current_.ExtractIf(
      [&index, evict](double, const WindowItem&) {
        return index++ == evict;
      },
      [](double, WindowItem&&) {});
  current_.Offer(priority, WindowItem{id, time, initial_threshold});
  return true;
}

SlidingWindowSampler::StoredItem SlidingWindowSampler::ItemAt(
    size_t i) const {
  const WindowItem& item = current_.payloads()[i];
  return StoredItem{item.id, item.time, current_.priorities()[i],
                    item.threshold};
}

double SlidingWindowSampler::GlThreshold(double now) {
  FlushExpiry(now);
  const auto expired = ExpiredItems();
  std::vector<double> priorities;
  priorities.reserve(current_.size() + expired.size());
  priorities.assign(current_.priorities().begin(),
                    current_.priorities().end());
  for (const StoredItem& it : expired) priorities.push_back(it.priority);
  if (priorities.size() < k_) return 1.0;
  std::nth_element(priorities.begin(),
                   priorities.begin() + static_cast<std::ptrdiff_t>(k_ - 1),
                   priorities.end());
  return priorities[k_ - 1];
}

double SlidingWindowSampler::CurrentMinThreshold() const {
  double t = 1.0;
  const auto& payloads = current_.payloads();
  for (size_t i = dead_prefix_; i < payloads.size(); ++i) {
    t = std::min(t, payloads[i].threshold);
  }
  return t;
}

double SlidingWindowSampler::ImprovedThreshold(double now) {
  FlushExpiry(now);
  return CurrentMinThreshold();
}

std::vector<SampleEntry> SlidingWindowSampler::SampleWithThreshold(
    double threshold) const {
  std::vector<SampleEntry> out;
  const auto& priorities = current_.priorities();
  const auto& payloads = current_.payloads();
  for (size_t i = 0; i < payloads.size(); ++i) {
    if (priorities[i] < threshold) {
      out.push_back(MakeUniformEntry(payloads[i].id, 1.0, priorities[i],
                                     threshold));
    }
  }
  return out;
}

std::vector<SampleEntry> SlidingWindowSampler::GlSample(double now) {
  return SampleWithThreshold(GlThreshold(now));
}

std::vector<SampleEntry> SlidingWindowSampler::ImprovedSample(double now) {
  return SampleWithThreshold(ImprovedThreshold(now));
}

size_t SlidingWindowSampler::StoredCount(double now) {
  FlushExpiry(now);
  return current_.size() + ExpiredItems().size();
}

std::vector<SlidingWindowSampler::StoredItem>
SlidingWindowSampler::CurrentItems(double now) {
  FlushExpiry(now);
  std::vector<StoredItem> out;
  out.reserve(current_.size());
  for (size_t i = 0; i < current_.size(); ++i) {
    out.push_back(ItemAt(i));
  }
  return out;
}

// --- Merging ----------------------------------------------------------

SlidingWindowSampler::WindowSnapshot SlidingWindowSampler::SnapshotAt(
    double now) const {
  WindowSnapshot snap;
  const double cut_window = now - window_;
  const double cut_drop = now - 2.0 * window_;
  // Expired items are older than any dead-prefix or lazily-expiring
  // current item, so the append order expired_, dead prefix, current
  // spill-over keeps time order.
  for (const StoredItem& it : ExpiredItems()) {
    if (it.time > cut_drop && it.time <= cut_window) {
      snap.expired.push_back(it);
    }
  }
  // Dead-prefix entries are logically expired items not yet copied into
  // expired_ (see ExpireUntil); they belong to the expired region.
  for (size_t i = 0; i < dead_prefix_; ++i) {
    const StoredItem it = ItemAt(i);
    if (it.time > cut_drop && it.time <= cut_window) {
      snap.expired.push_back(it);
    }
  }
  for (size_t i = dead_prefix_; i < current_.size(); ++i) {
    const StoredItem it = ItemAt(i);
    if (it.time <= cut_drop) continue;
    (it.time <= cut_window ? snap.expired : snap.current).push_back(it);
  }
  return snap;
}

SlidingWindowSampler::WindowSnapshot SlidingWindowSampler::SnapshotOfView(
    const FrameView& view, double now) {
  WindowSnapshot snap;
  const double cut_window = now - view.window();
  const double cut_drop = now - 2.0 * view.window();
  for (size_t i = view.current_count();
       i < view.current_count() + view.expired_count(); ++i) {
    const StoredItem it = view.entry(i);
    if (it.time > cut_drop && it.time <= cut_window) {
      snap.expired.push_back(it);
    }
  }
  for (size_t i = 0; i < view.current_count(); ++i) {
    const StoredItem it = view.entry(i);
    if (it.time <= cut_drop) continue;
    (it.time <= cut_window ? snap.expired : snap.current).push_back(it);
  }
  return snap;
}

void SlidingWindowSampler::MergeOneSnapshot(WindowSnapshot snap,
                                            double now) {
  FlushExpiry(now);
  ++aux_epoch_;
  // Min threshold composition (Theorem 9): the common bound is the min
  // of both sides' improved thresholds at the merge instant.
  double bound = CurrentMinThreshold();
  for (const StoredItem& it : snap.current) {
    bound = std::min(bound, it.threshold);
  }
  // Candidates: the time-sorted union of the current sets, self first
  // for equal times (stable), matching the accumulation order of every
  // earlier merge so priority ties resolve deterministically.
  std::vector<StoredItem> candidates;
  candidates.reserve(current_.size());
  for (size_t i = 0; i < current_.size(); ++i) {
    candidates.push_back(ItemAt(i));
  }
  candidates.insert(candidates.end(), snap.current.begin(),
                    snap.current.end());
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const StoredItem& a, const StoredItem& b) {
                     return a.time < b.time;
                   });
  std::erase_if(candidates, [bound](const StoredItem& it) {
    return it.priority >= bound;
  });
  // Re-cap at k with the usual bottom-k selection (ties at the pivot
  // kept first-arrived-first, mirroring the store's compaction).
  double t_final = bound;
  if (candidates.size() > k_) {
    std::vector<double> scratch;
    scratch.reserve(candidates.size());
    for (const StoredItem& it : candidates) scratch.push_back(it.priority);
    const auto nth = scratch.begin() + static_cast<std::ptrdiff_t>(k_);
    std::nth_element(scratch.begin(), nth, scratch.end());
    const double pivot = *nth;
    t_final = std::min(bound, pivot);
    size_t below = 0;
    for (const StoredItem& it : candidates) below += it.priority < pivot;
    size_t ties_needed = k_ - below;
    std::vector<StoredItem> kept;
    kept.reserve(k_);
    for (const StoredItem& it : candidates) {
      if (it.priority < pivot) {
        kept.push_back(it);
      } else if (it.priority == pivot && ties_needed > 0) {
        --ties_needed;
        kept.push_back(it);
      }
    }
    candidates = std::move(kept);
  }
  // Min-compose the per-item thresholds with the final bound. The
  // improved threshold (min over items) already equals t_final, so this
  // changes no query result; it keeps per-item state consistent with
  // what a single sampler's eviction chain records.
  for (StoredItem& it : candidates) {
    it.threshold = std::min(it.threshold, t_final);
  }
  // Rebuild the current store (time order preserved by construction).
  current_.ExtractIf([](double, const WindowItem&) { return true; },
                     [](double, WindowItem&&) {});
  for (const StoredItem& it : candidates) {
    current_.Offer(it.priority, WindowItem{it.id, it.time, it.threshold});
  }
  // Union the expired sets in time order; they feed the G&L threshold of
  // the merged sampler. Self expiry at `now` already trimmed both sides
  // (the snapshot was filtered at `now`).
  const auto expired_live = ExpiredItems();
  std::vector<StoredItem> merged_expired(expired_live.begin(),
                                         expired_live.end());
  merged_expired.insert(merged_expired.end(), snap.expired.begin(),
                        snap.expired.end());
  std::stable_sort(merged_expired.begin(), merged_expired.end(),
                   [](const StoredItem& a, const StoredItem& b) {
                     return a.time < b.time;
                   });
  expired_ = std::move(merged_expired);
  expired_head_ = 0;
}

void SlidingWindowSampler::MergeMany(
    std::span<const SlidingWindowSampler* const> inputs) {
  // The windowed merge is inherently clock-sensitive: improved
  // thresholds RECOVER as old constraints expire, so there is no
  // clock-free global bound to hoist the way SampleStore::MergeMany
  // does. K-way aggregation is therefore DEFINED as the pairwise chain
  // in span order -- one shared snapshot/selection core per input, each
  // step at the ratcheting clock max -- and the differential test pins
  // MergeMany to the explicit Merge chain bit-for-bit. Inputs aliasing
  // `this` are skipped; with no real inputs this is a strict no-op
  // (expiry must not advance, ties at thresholds must survive).
  for (const SlidingWindowSampler* in : inputs) {
    if (in == this) continue;
    ATS_CHECK(in->window_ == window_);
    const double now = std::max(last_time_, in->last_time_);
    MergeOneSnapshot(in->SnapshotAt(now), now);
  }
}

void SlidingWindowSampler::Merge(const SlidingWindowSampler& other) {
  const SlidingWindowSampler* input = &other;
  MergeMany(std::span<const SlidingWindowSampler* const>(&input, 1));
}

// --- Wire format ------------------------------------------------------

void SlidingWindowSampler::SerializeTo(ByteWriter& w) const {
  WriteSketchHeader(w, kWindowMagic, kWindowVersion);
  w.WriteU64(k_);
  w.WriteDouble(window_);
  w.WriteDouble(last_time_);
  WriteRngState(w, rng_.State());
  // The live current region starts past the dead prefix (those entries
  // travel in the expired region below). Serialization is const -- it
  // cannot flush the lazily-marked state -- so the expired region is the
  // live expired_ range plus the uncopied dead prefix, each filtered at
  // the two-window drop cutoff (entries can age past it while parked;
  // the reader's per-entry range validation rejects them otherwise).
  const double drop_cut = last_time_ - 2.0 * window_;
  const auto expired_live = ExpiredItems();
  size_t skip_expired = 0;
  while (skip_expired < expired_live.size() &&
         expired_live[skip_expired].time <= drop_cut) {
    ++skip_expired;
  }
  const auto& payloads = current_.payloads();
  size_t skip_dead = 0;
  while (skip_dead < dead_prefix_ &&
         payloads[skip_dead].time <= drop_cut) {
    ++skip_dead;
  }
  w.WriteU64(current_.size() - dead_prefix_);
  w.WriteU64((expired_live.size() - skip_expired) +
             (dead_prefix_ - skip_dead));
  const auto write_entry = [&w](const StoredItem& it) {
    w.WriteU64(it.id);
    w.WriteDouble(it.time);
    w.WriteDouble(it.priority);
    w.WriteDouble(it.threshold);
  };
  for (size_t i = dead_prefix_; i < current_.size(); ++i) {
    write_entry(ItemAt(i));
  }
  // Expired region in time order: expired_ entries predate everything
  // still parked in the dead prefix.
  for (size_t i = skip_expired; i < expired_live.size(); ++i) {
    write_entry(expired_live[i]);
  }
  for (size_t i = skip_dead; i < dead_prefix_; ++i) {
    write_entry(ItemAt(i));
  }
}

namespace {

// Shared per-entry validation for Deserialize and DeserializeView. The
// sampler's invariants are tight enough to check field-by-field:
// priorities are open-unit-interval draws below a threshold in (0, 1];
// priority == threshold ties are legal storage (the item whose priority
// became an eviction bound stays stored; see docs/WIRE_FORMAT.md).
// Entries must sit inside their region's time range and arrive in
// non-decreasing time order. NaNs fail the comparisons by construction.
bool ValidWindowEntry(const SlidingWindowSampler::StoredItem& it,
                      double region_min, double region_max,
                      double prev_time) {
  if (!(it.priority > 0.0) || !(it.priority < 1.0)) return false;
  if (!(it.threshold > 0.0) || !(it.threshold <= 1.0)) return false;
  if (!(it.priority <= it.threshold)) return false;
  if (!(it.time > region_min) || !(it.time <= region_max)) return false;
  if (!(it.time >= prev_time)) return false;
  return true;
}

}  // namespace

std::optional<SlidingWindowSampler> SlidingWindowSampler::Deserialize(
    ByteReader& r) {
  if (!ReadSketchHeader(r, kWindowMagic, kWindowVersion)) {
    return std::nullopt;
  }
  const auto k = r.ReadU64();
  const auto window = r.ReadDouble();
  const auto last_time = r.ReadDouble();
  if (!k || !window || !last_time) return std::nullopt;
  if (*k < 1 || !(*window > 0.0) || !std::isfinite(*window)) {
    return std::nullopt;
  }
  // last_time may be -infinity (a sampler that never saw an arrival),
  // never NaN or +infinity.
  if (std::isnan(*last_time) ||
      *last_time == std::numeric_limits<double>::infinity()) {
    return std::nullopt;
  }
  const auto rng_state = ReadRngState(r);
  if (!rng_state) return std::nullopt;
  const auto current_count = r.ReadU64();
  const auto expired_count = r.ReadU64();
  if (!current_count || !expired_count) return std::nullopt;
  if (*current_count > *k) return std::nullopt;

  SlidingWindowSampler out(static_cast<size_t>(*k), *window, /*seed=*/1);
  out.rng_.SetState(*rng_state);
  out.last_time_ = *last_time;
  const auto read_entry = [&r]() -> std::optional<StoredItem> {
    const auto id = r.ReadU64();
    const auto time = r.ReadDouble();
    const auto priority = r.ReadDouble();
    const auto threshold = r.ReadDouble();
    if (!id.has_value() || !time || !priority || !threshold) {
      return std::nullopt;
    }
    return StoredItem{*id, *time, *priority, *threshold};
  };
  double prev = -std::numeric_limits<double>::infinity();
  for (uint64_t i = 0; i < *current_count; ++i) {
    const auto it = read_entry();
    if (!it ||
        !ValidWindowEntry(*it, *last_time - *window, *last_time, prev)) {
      return std::nullopt;
    }
    prev = it->time;
    out.current_.Offer(it->priority,
                       WindowItem{it->id, it->time, it->threshold});
  }
  prev = -std::numeric_limits<double>::infinity();
  for (uint64_t i = 0; i < *expired_count; ++i) {
    const auto it = read_entry();
    if (!it || !ValidWindowEntry(*it, *last_time - 2.0 * *window,
                                 *last_time - *window, prev)) {
      return std::nullopt;
    }
    prev = it->time;
    out.expired_.push_back(*it);
  }
  return out;
}

SlidingWindowSampler::StoredItem SlidingWindowSampler::FrameView::entry(
    size_t i) const {
  ATS_DCHECK(i < current_count_ + expired_count_);
  const std::string_view e = entries_.substr(i * kStride, kStride);
  StoredItem it;
  uint64_t id;
  std::memcpy(&id, e.data(), sizeof(id));
  it.id = id;
  it.time = ReadEntryDouble(e, kEntryTimeOffset);
  it.priority = ReadEntryDouble(e, kEntryPriorityOffset);
  it.threshold = ReadEntryDouble(e, kEntryThresholdOffset);
  return it;
}

FrameFault SlidingWindowSampler::DiagnoseFrame(std::string_view frame) {
  const FrameFault f =
      ClassifyFrameBytes(frame, kWindowMagic, kWindowVersion);
  if (f != FrameFault::kNone) return f;
  return Deserialize(frame).has_value() ? FrameFault::kNone
                                        : FrameFault::kCorruptBody;
}

std::optional<SlidingWindowSampler::FrameView>
SlidingWindowSampler::DeserializeView(std::string_view frame) {
  auto r = OpenCheckedFrame(frame, kWindowMagic, kWindowVersion);
  if (!r) return std::nullopt;
  const auto k = r->ReadU64();
  const auto window = r->ReadDouble();
  const auto last_time = r->ReadDouble();
  if (!k || !window || !last_time) return std::nullopt;
  if (*k < 1 || !(*window > 0.0) || !std::isfinite(*window)) {
    return std::nullopt;
  }
  if (std::isnan(*last_time) ||
      *last_time == std::numeric_limits<double>::infinity()) {
    return std::nullopt;
  }
  if (!ReadRngState(*r)) return std::nullopt;
  const auto current_count = r->ReadU64();
  const auto expired_count = r->ReadU64();
  if (!current_count || !expired_count) return std::nullopt;
  if (*current_count > *k) return std::nullopt;
  // Fixed-stride entry region: one size comparison bounds-checks every
  // entry; the division-first clauses keep the arithmetic overflow-free.
  const std::string_view entries = r->Rest();
  const size_t max_entries = entries.size() / FrameView::kStride;
  if (*current_count > max_entries || *expired_count > max_entries ||
      *current_count + *expired_count > max_entries ||
      entries.size() != (*current_count + *expired_count) *
                            FrameView::kStride) {
    return std::nullopt;
  }
  FrameView view;
  view.k_ = *k;
  view.window_ = *window;
  view.last_time_ = *last_time;
  view.current_count_ = static_cast<size_t>(*current_count);
  view.expired_count_ = static_cast<size_t>(*expired_count);
  view.entries_ = entries;
  double prev = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < view.current_count_; ++i) {
    const StoredItem it = view.entry(i);
    if (!ValidWindowEntry(it, *last_time - *window, *last_time, prev)) {
      return std::nullopt;
    }
    prev = it.time;
  }
  prev = -std::numeric_limits<double>::infinity();
  for (size_t i = view.current_count_;
       i < view.current_count_ + view.expired_count_; ++i) {
    const StoredItem it = view.entry(i);
    if (!ValidWindowEntry(it, *last_time - 2.0 * *window,
                          *last_time - *window, prev)) {
      return std::nullopt;
    }
    prev = it.time;
  }
  return view;
}

bool SlidingWindowSampler::MergeManyFrames(
    std::span<const std::string_view> frames) {
  // Validate every frame before the first one is applied; a window
  // mismatch is as fatal as a parse failure (merging different window
  // lengths has no defined semantics).
  std::vector<FrameView> views;
  views.reserve(frames.size());
  for (std::string_view f : frames) {
    auto view = DeserializeView(f);
    if (!view || view->window() != window_) return false;
    views.push_back(*view);
  }
  // Fold the validated views through the pairwise core in span order --
  // observationally identical to Deserialize + Merge per frame, without
  // materializing a sampler per frame. An empty list is a strict no-op.
  for (const FrameView& v : views) {
    const double now = std::max(last_time_, v.last_time());
    MergeOneSnapshot(SnapshotOfView(v, now), now);
  }
  return true;
}

}  // namespace ats
