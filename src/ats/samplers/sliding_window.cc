#include "ats/samplers/sliding_window.h"

#include <algorithm>
#include <cstddef>

#include "ats/util/check.h"

namespace ats {

SlidingWindowSampler::SlidingWindowSampler(size_t k, double window,
                                           uint64_t seed)
    : k_(k), window_(window), rng_(seed) {
  ATS_CHECK(k >= 1);
  ATS_CHECK(window > 0.0);
}

void SlidingWindowSampler::ExpireUntil(double now) {
  // Current -> expired at one window length.
  while (!current_.empty() && current_.front().time <= now - window_) {
    expired_.push_back(current_.front());
    current_.pop_front();
  }
  // Expired items are dropped at two window lengths.
  while (!expired_.empty() && expired_.front().time <= now - 2.0 * window_) {
    expired_.pop_front();
  }
}

bool SlidingWindowSampler::Arrive(double time, uint64_t id) {
  ExpireUntil(time);
  const double priority = rng_.NextDoubleOpenZero();

  // Initial threshold: 1 while the current sample is underfull, else the
  // k-th smallest of the current priorities together with the new one.
  double initial_threshold = 1.0;
  if (current_.size() >= k_) {
    // k-th smallest of (k current priorities) u {priority}: with m1 the
    // largest and m2 the second largest current priority, it is m1 if the
    // newcomer is above m1, otherwise max(m2, priority).
    double m1 = 0.0, m2 = 0.0;
    for (const StoredItem& it : current_) {
      if (it.priority > m1) {
        m2 = m1;
        m1 = it.priority;
      } else if (it.priority > m2) {
        m2 = it.priority;
      }
    }
    initial_threshold = priority >= m1 ? m1 : std::max(m2, priority);
  }

  if (priority >= initial_threshold) return false;

  current_.push_back(StoredItem{id, time, priority, initial_threshold});
  if (current_.size() > k_) {
    // Lower every current threshold to min(T_i, T_n); this evicts exactly
    // the largest-priority item (its priority is >= the new threshold).
    size_t evict = 0;
    for (size_t i = 0; i < current_.size(); ++i) {
      current_[i].threshold =
          std::min(current_[i].threshold, initial_threshold);
      if (current_[i].priority > current_[evict].priority) evict = i;
    }
    ATS_DCHECK(current_[evict].priority >= initial_threshold ||
               current_.size() <= k_);
    current_.erase(current_.begin() + static_cast<std::ptrdiff_t>(evict));
  }
  return true;
}

double SlidingWindowSampler::GlThreshold(double now) {
  ExpireUntil(now);
  std::vector<double> priorities;
  priorities.reserve(current_.size() + expired_.size());
  for (const StoredItem& it : current_) priorities.push_back(it.priority);
  for (const StoredItem& it : expired_) priorities.push_back(it.priority);
  if (priorities.size() < k_) return 1.0;
  std::nth_element(priorities.begin(),
                   priorities.begin() + static_cast<std::ptrdiff_t>(k_ - 1),
                   priorities.end());
  return priorities[k_ - 1];
}

double SlidingWindowSampler::ImprovedThreshold(double now) {
  ExpireUntil(now);
  double t = 1.0;
  for (const StoredItem& it : current_) t = std::min(t, it.threshold);
  return t;
}

std::vector<SampleEntry> SlidingWindowSampler::SampleWithThreshold(
    double threshold) const {
  std::vector<SampleEntry> out;
  for (const StoredItem& it : current_) {
    if (it.priority < threshold) {
      out.push_back(MakeUniformEntry(it.id, 1.0, it.priority, threshold));
    }
  }
  return out;
}

std::vector<SampleEntry> SlidingWindowSampler::GlSample(double now) {
  return SampleWithThreshold(GlThreshold(now));
}

std::vector<SampleEntry> SlidingWindowSampler::ImprovedSample(double now) {
  return SampleWithThreshold(ImprovedThreshold(now));
}

size_t SlidingWindowSampler::StoredCount(double now) {
  ExpireUntil(now);
  return current_.size() + expired_.size();
}

std::vector<SlidingWindowSampler::StoredItem>
SlidingWindowSampler::CurrentItems(double now) {
  ExpireUntil(now);
  return {current_.begin(), current_.end()};
}

}  // namespace ats
