#include "ats/samplers/topk_sampler.h"

#include <algorithm>
#include <cstddef>

#include "ats/util/check.h"

namespace ats {

TopKSampler::TopKSampler(size_t k, uint64_t seed, double compaction_slack)
    : k_(k), compaction_slack_(compaction_slack), rng_(seed) {
  ATS_CHECK(k >= 1);
  ATS_CHECK(compaction_slack > 1.0);
}

void TopKSampler::Add(uint64_t item) { AddOne(item); }

size_t TopKSampler::AddBatch(std::span<const uint64_t> items) {
  size_t entered = 0;
  for (const uint64_t item : items) entered += AddOne(item) ? 1 : 0;
  return entered;
}

bool TopKSampler::AddOne(uint64_t item) {
  ++total_;
  auto it = table_.find(item);
  if (it != table_.end()) {
    ItemState& s = it->second;
    // Count increment c -> c+1: rescale the priority to keep the invariant
    // Q ~ Uniform(0, 1/c). Frequent items' priorities shrink, making them
    // progressively harder to evict.
    const double c_old = s.Estimate();
    ++s.count;
    s.priority *= c_old / s.Estimate();
    return false;
  }
  const double u = rng_.NextDoubleOpenZero();
  if (u < threshold_) {
    // Enter the sample: estimate 1/T, priority U | U < T ~ Uniform(0, T).
    table_.emplace(item, ItemState{item, u, threshold_, 0});
    if (table_.size() >= compact_at_) Compact();
    return true;
  }
  return false;
}

void TopKSampler::Compact() {
  if (table_.size() > k_) {
    // 1/T tracks the k-th largest estimated count.
    std::vector<double> estimates;
    estimates.reserve(table_.size());
    for (const auto& [item, s] : table_) estimates.push_back(s.Estimate());
    std::nth_element(estimates.begin(),
                     estimates.begin() + static_cast<std::ptrdiff_t>(k_ - 1),
                     estimates.end(), std::greater<double>());
    const double kth = estimates[k_ - 1];
    const double t_new = std::min(threshold_, 1.0 / kth);
    if (t_new < threshold_) {
      threshold_ = t_new;
      // Re-threshold infrequent items only: survival test Q_i < T, then
      // restart at threshold T with v = 0.
      for (auto it = table_.begin(); it != table_.end();) {
        ItemState& s = it->second;
        if (s.Estimate() > kth) {  // frequent: untouched
          ++it;
          continue;
        }
        if (s.priority >= threshold_) {
          it = table_.erase(it);
        } else {
          s.threshold = threshold_;
          s.count = 0;
          ++it;
        }
      }
    }
  }
  compact_at_ = std::max<size_t>(
      16, static_cast<size_t>(static_cast<double>(table_.size()) *
                              compaction_slack_));
}

double TopKSampler::EstimatedCount(uint64_t item) const {
  const auto it = table_.find(item);
  return it == table_.end() ? 0.0 : it->second.Estimate();
}

std::vector<uint64_t> TopKSampler::TopK() const {
  std::vector<const ItemState*> states;
  states.reserve(table_.size());
  for (const auto& [item, s] : table_) states.push_back(&s);
  const size_t kk = std::min(k_, states.size());
  std::partial_sort(states.begin(), states.begin() + static_cast<std::ptrdiff_t>(kk),
                    states.end(), [](const ItemState* a, const ItemState* b) {
                      if (a->Estimate() != b->Estimate()) {
                        return a->Estimate() > b->Estimate();
                      }
                      return a->item < b->item;
                    });
  std::vector<uint64_t> out;
  out.reserve(kk);
  for (size_t i = 0; i < kk; ++i) out.push_back(states[i]->item);
  return out;
}

std::vector<TopKSampler::ItemState> TopKSampler::Entries() const {
  std::vector<ItemState> out;
  out.reserve(table_.size());
  for (const auto& [item, s] : table_) out.push_back(s);
  return out;
}

double TopKSampler::EstimatedSubsetCount(
    const std::function<bool(uint64_t)>& in_subset) const {
  double total = 0.0;
  for (const auto& [item, s] : table_) {
    if (in_subset(item)) total += s.Estimate();
  }
  return total;
}

}  // namespace ats
