#include "ats/util/stats.h"

#include <algorithm>
#include <cmath>

#include "ats/util/check.h"

namespace ats {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::PopulationVariance() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::SampleVariance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::StdDev() const { return std::sqrt(SampleVariance()); }

double RunningStat::Rmse(double center) const {
  if (count_ == 0) return 0.0;
  const double bias = mean_ - center;
  return std::sqrt(PopulationVariance() + bias * bias);
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  ATS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double KsStatisticUniform(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  for (double& x : xs) x = std::clamp(x, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  double d = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double cdf_lo = static_cast<double>(i) / n;
    const double cdf_hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(xs[i] - cdf_lo, cdf_hi - xs[i]));
  }
  return d;
}

double KsPValue(double statistic, size_t n) {
  if (n == 0) return 1.0;
  const double en = std::sqrt(static_cast<double>(n));
  const double lambda = (en + 0.12 + 0.11 / en) * statistic;
  // Asymptotic Kolmogorov series, truncated; standard numerical recipe.
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * lambda * lambda * j * j);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

double ChiSquareUniform(const std::vector<int64_t>& counts) {
  if (counts.empty()) return 0.0;
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double expected =
      static_cast<double>(total) / static_cast<double>(counts.size());
  double stat = 0.0;
  for (int64_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    stat += d * d / expected;
  }
  return stat;
}

double ChiSquareCritical999(int df) {
  ATS_CHECK(df >= 1);
  // Wilson-Hilferty: chi2_p(df) ~ df * (1 - 2/(9 df) + z_p sqrt(2/(9 df)))^3
  const double z999 = 3.0902;  // standard normal 99.9% quantile
  const double d = static_cast<double>(df);
  const double a = 2.0 / (9.0 * d);
  const double cube = 1.0 - a + z999 * std::sqrt(a);
  return d * cube * cube * cube;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  ATS_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace ats
