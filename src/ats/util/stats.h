// Small statistics toolkit used by estimators, tests, and benches:
// numerically stable running moments, quantiles, and distribution tests
// (chi-square and Kolmogorov-Smirnov uniformity checks).
#ifndef ATS_UTIL_STATS_H_
#define ATS_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ats {

// Welford-style accumulator for mean / variance / min / max.
class RunningStat {
 public:
  void Add(double x);

  // Merges another accumulator (parallel Welford / Chan et al.).
  void Merge(const RunningStat& other);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  // Population variance (divide by n). Zero for n < 1.
  double PopulationVariance() const;
  // Sample variance (divide by n-1). Zero for n < 2.
  double SampleVariance() const;
  double StdDev() const;
  // Root-mean-square of the accumulated values around `center`.
  double Rmse(double center) const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exact empirical quantile (linear interpolation) of a copy of `xs`.
// q must be in [0, 1]. Returns 0 for empty input.
double Quantile(std::vector<double> xs, double q);

// One-sample Kolmogorov-Smirnov statistic against Uniform(0,1).
// Input values are clamped to [0,1]. Returns sup |F_n(x) - x|.
double KsStatisticUniform(std::vector<double> xs);

// Approximate KS p-value via the asymptotic Kolmogorov distribution.
double KsPValue(double statistic, size_t n);

// Chi-square statistic for observed counts vs. equal expected counts.
// Returns the statistic; degrees of freedom is counts.size() - 1.
double ChiSquareUniform(const std::vector<int64_t>& counts);

// Upper-tail critical value of chi-square at ~99.9% confidence via the
// Wilson-Hilferty cube approximation. Good to a few percent for df >= 3.
double ChiSquareCritical999(int df);

// Pearson correlation of two equal-length vectors. Returns 0 for n < 2.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace ats

#endif  // ATS_UTIL_STATS_H_
