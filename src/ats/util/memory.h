// Live-heap accounting helpers behind the MemoryFootprint() convention.
//
// Every sampler, sketch, and front-end in the library reports
// MemoryFootprint(): the heap bytes its CURRENT state occupies, summed
// recursively through owned components (SampleStore columns, shard
// vectors, cluster node logs and outboxes). The convention, in one
// place so every implementation agrees:
//
//   * Size, not capacity. Contiguous columns count size() * sizeof(T):
//     the bytes holding live state. Allocator slack (vector capacity
//     beyond size, including SampleStore's up-front 2k reservation) is
//     a constant that would mask the signal the number exists to carry
//     -- growth under ingest and the drop at compaction/truncation.
//     For SampleStore's SoA columns this makes the figure EXACT per
//     retained-or-buffered entry.
//   * Reusable scratch is excluded. Batch scratch columns and merge
//     buffers are amortization machinery, not state; they are reported
//     by nothing.
//   * Node containers are modeled, not measured. std::map/set/multiset
//     and std::unordered_* do not expose their allocations, so the
//     helpers below charge the conventional node layouts (payload plus
//     pointer overhead). The model is deterministic and monotone in the
//     element count, which is what the accounting tests pin down.
//   * O(1)-per-component and non-canonicalizing: calling
//     MemoryFootprint() never compacts, merges, or otherwise disturbs
//     representation state, so it is safe on any query path.
#ifndef ATS_UTIL_MEMORY_H_
#define ATS_UTIL_MEMORY_H_

#include <cstddef>
#include <vector>

namespace ats {

// Heap bytes of a contiguous column's live region (size, not capacity).
template <typename T>
size_t VectorFootprint(const std::vector<T>& v) {
  return v.size() * sizeof(T);
}

// Model of one node-based ordered container (std::map / std::set /
// std::multiset): per node, the payload plus three tree pointers and a
// color/balance word.
inline size_t TreeFootprint(size_t count, size_t value_bytes) {
  return count * (value_bytes + 4 * sizeof(void*));
}

template <typename Container>
size_t TreeFootprint(const Container& c) {
  return TreeFootprint(c.size(), sizeof(typename Container::value_type));
}

// Model of std::unordered_{map,set}: the bucket array of head pointers
// plus, per element, the payload, the chain pointer, and the cached
// hash word.
inline size_t HashFootprint(size_t count, size_t buckets,
                            size_t value_bytes) {
  return buckets * sizeof(void*) + count * (value_bytes + 2 * sizeof(void*));
}

template <typename Container>
size_t HashFootprint(const Container& c) {
  return HashFootprint(c.size(), c.bucket_count(),
                       sizeof(typename Container::value_type));
}

}  // namespace ats

#endif  // ATS_UTIL_MEMORY_H_
