// Byte-buffer serialization and the common mergeable-sketch interface.
//
// Every sketch that ships between nodes (KMV / Theta / LCS / grouped /
// priority samples) speaks the same tiny wire protocol: fixed-width
// little-endian fields behind a versioned magic header, written through
// ByteWriter and validated field-by-field through ByteReader (every
// accessor returns nullopt on truncation so corrupt inputs fail cleanly
// instead of crashing).
//
// The MergeableSketch concept pins down the contract those sketches share:
//   * SerializeTo(ByteWriter&)       -- append wire bytes (embeddable)
//   * static Deserialize(ByteReader&) -- parse + validate, nullopt on junk
//   * Merge(const T&)                -- union with another instance
// Sketches satisfying the concept compose: a container sketch can embed a
// member sketch's bytes verbatim, and the generic SerializeSketch /
// DeserializeSketch helpers provide whole-buffer (exact-length) framing.
#ifndef ATS_UTIL_SERIALIZE_H_
#define ATS_UTIL_SERIALIZE_H_

#include <array>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace ats {

// Appends POD values to a byte string.
class ByteWriter {
 public:
  void WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
  void WriteDouble(double v) { Append(&v, sizeof(v)); }
  // Raw byte append, for container formats embedding a length-prefixed
  // nested body serialized into a scratch writer.
  void WriteBytes(std::string_view bytes) {
    Append(bytes.data(), bytes.size());
  }

  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  void Append(const void* p, size_t n) {
    bytes_.append(static_cast<const char*>(p), n);
  }
  std::string bytes_;
};

// Reads POD values back; every accessor returns nullopt on truncation so
// corrupt inputs fail cleanly instead of crashing.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::optional<uint32_t> ReadU32() { return Read<uint32_t>(); }
  std::optional<uint64_t> ReadU64() { return Read<uint64_t>(); }
  std::optional<double> ReadDouble() { return Read<double>(); }

  bool AtEnd() const { return pos_ == bytes_.size(); }

  // Advances past `n` bytes without reading them; false (position
  // unchanged) when fewer than `n` remain. Container formats use this to
  // step over a length-prefixed nested body after handing the segment to
  // the nested parser.
  bool Skip(size_t n) {
    if (pos_ + n > bytes_.size()) return false;
    pos_ += n;
    return true;
  }

  // The unconsumed tail. Zero-copy frame views use this to take the
  // fixed-stride entry region after reading the prefix fields, without
  // hand-deriving byte offsets that must track the field list.
  std::string_view Rest() const { return bytes_.substr(pos_); }

 private:
  template <typename T>
  std::optional<T> Read() {
    if (pos_ + sizeof(T) > bytes_.size()) return std::nullopt;
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

// --- Versioned magic header -------------------------------------------

// Every sketch wire format starts with an 8-byte header: a 4-byte magic
// tag identifying the sketch family, then a 4-byte format version.
inline void WriteSketchHeader(ByteWriter& w, uint32_t magic,
                              uint32_t version) {
  w.WriteU32(magic);
  w.WriteU32(version);
}

// Consumes and validates a header. Returns the version on success;
// nullopt on truncation, foreign magic, version 0, or a version newer
// than `max_version` (a reader never parses formats from the future).
inline std::optional<uint32_t> ReadSketchHeader(ByteReader& r,
                                                uint32_t magic,
                                                uint32_t max_version) {
  const auto m = r.ReadU32();
  if (!m || *m != magic) return std::nullopt;
  const auto v = r.ReadU32();
  if (!v || *v == 0 || *v > max_version) return std::nullopt;
  return v;
}

// --- PRNG state fields ------------------------------------------------

// Samplers whose priority stream must continue deterministically after a
// round trip (PrioritySampler, TimeDecaySampler, SlidingWindowSampler)
// carry their 4x64-bit Xoshiro256 state on the wire. One writer/reader
// pair keeps the field layout and the validation in a single place.
inline void WriteRngState(ByteWriter& w,
                          const std::array<uint64_t, 4>& state) {
  for (uint64_t word : state) w.WriteU64(word);
}

// Reads the 4-word state; nullopt on truncation or the all-zero state
// (Xoshiro256's invalid fixed point -- the stream degenerates to constant
// zeros, so no genuine serializer emits it).
inline std::optional<std::array<uint64_t, 4>> ReadRngState(ByteReader& r) {
  std::array<uint64_t, 4> state;
  uint64_t state_or = 0;
  for (uint64_t& word : state) {
    const auto v = r.ReadU64();
    if (!v) return std::nullopt;
    word = *v;
    state_or |= word;
  }
  if (state_or == 0) return std::nullopt;
  return state;
}

// --- The common mergeable-sketch interface ----------------------------

template <typename T>
concept MergeableSketch =
    requires(T t, const T& other, ByteWriter& w, ByteReader& r) {
      { std::as_const(t).SerializeTo(w) } -> std::same_as<void>;
      { T::Deserialize(r) } -> std::same_as<std::optional<T>>;
      { t.Merge(other) } -> std::same_as<void>;
    };

// --- Typed frame-rejection reasons ------------------------------------

// Why a wire frame failed validation. The transport tier uses this to
// separate retry-able damage from poison: a kTruncated frame is a short
// read (the sender's retransmission of the intact bytes will parse), a
// kCorruptBody frame is garbage that no retry fixes, and kBadMagic /
// kBadVersion are protocol mismatches worth alarming on rather than
// retrying. Rejection counters keyed by this enum make the difference
// observable per cause instead of collapsing to one opaque `false`.
enum class FrameFault : uint8_t {
  kNone = 0,     // frame is valid
  kTruncated,    // fewer bytes than the format requires (short read)
  kBadMagic,     // frame is not from this family
  kBadVersion,   // version 0 or from the future
  kCorruptBody,  // structurally framed but checksum/field/entry invalid
};

constexpr const char* FrameFaultName(FrameFault fault) {
  switch (fault) {
    case FrameFault::kNone: return "none";
    case FrameFault::kTruncated: return "truncated";
    case FrameFault::kBadMagic: return "bad_magic";
    case FrameFault::kBadVersion: return "bad_version";
    case FrameFault::kCorruptBody: return "corrupt_body";
  }
  return "unknown";
}

// FNV-1a over a byte span; the whole-buffer framing below appends it so
// any flipped byte is caught, not only the ones field validation can see.
inline uint32_t FrameChecksum(std::string_view bytes) {
  uint32_t h = 2166136261u;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

// Whole-buffer framing: serialize a sketch into an owned byte string with
// a trailing checksum over the sketch bytes (nested sketches embedded via
// SerializeTo are covered by the outer frame).
template <MergeableSketch T>
std::string SerializeSketch(const T& sketch) {
  ByteWriter w;
  sketch.SerializeTo(w);
  std::string bytes = w.Take();
  const uint32_t checksum = FrameChecksum(bytes);
  bytes.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return bytes;
}

// Verifies and strips the trailing frame checksum, returning the body
// bytes (nullopt on truncation or mismatch).
inline std::optional<std::string_view> CheckedFrameBody(
    std::string_view frame) {
  if (frame.size() < sizeof(uint32_t)) return std::nullopt;
  const std::string_view body = frame.substr(0, frame.size() - 4);
  uint32_t stored;
  std::memcpy(&stored, frame.data() + body.size(), sizeof(stored));
  if (stored != FrameChecksum(body)) return std::nullopt;
  return body;
}

// Opens a whole-buffer frame for zero-copy viewing: checksum verified
// and stripped, sketch header consumed and validated. The returned
// reader is positioned at the first post-header field; Rest() after the
// prefix reads yields the entry region. Shared by every
// DeserializeView so the checksum/header machinery exists once.
inline std::optional<ByteReader> OpenCheckedFrame(std::string_view frame,
                                                  uint32_t magic,
                                                  uint32_t max_version) {
  const auto body = CheckedFrameBody(frame);
  if (!body) return std::nullopt;
  ByteReader r(*body);
  if (!ReadSketchHeader(r, magic, max_version)) return std::nullopt;
  return r;
}

// Whole-buffer parsing: the checksum must match and the sketch must
// consume the buffer exactly (trailing junk is a framing error, not a
// valid message).
template <MergeableSketch T>
std::optional<T> DeserializeSketch(std::string_view bytes) {
  const auto body = CheckedFrameBody(bytes);
  if (!body) return std::nullopt;
  ByteReader r(*body);
  auto sketch = T::Deserialize(r);
  if (!sketch.has_value() || !r.AtEnd()) return std::nullopt;
  return sketch;
}

// Structural triage of a whole-buffer frame against a family's magic and
// version ceiling, in header order: too short to even hold the 8-byte
// header plus the trailing checksum -> kTruncated; foreign magic ->
// kBadMagic; version 0 or above `max_version` -> kBadVersion; checksum
// mismatch -> kCorruptBody. A bare sketch frame carries no declared
// length, so a mid-body short read is indistinguishable from flipped
// bytes here and reports kCorruptBody; the transport envelope
// (cluster/envelope.h) declares its payload length and is where short
// reads classify as kTruncated. Returns kNone when the structural layers
// pass -- body-level field validation may still reject the frame, which
// callers report as kCorruptBody (see the family DiagnoseFrame methods).
inline FrameFault ClassifyFrameBytes(std::string_view frame, uint32_t magic,
                                     uint32_t max_version) {
  constexpr size_t kHeaderAndChecksum = 3 * sizeof(uint32_t);
  if (frame.size() < kHeaderAndChecksum) return FrameFault::kTruncated;
  ByteReader r(frame);
  const auto m = r.ReadU32();
  if (*m != magic) return FrameFault::kBadMagic;
  const auto v = r.ReadU32();
  if (*v == 0 || *v > max_version) return FrameFault::kBadVersion;
  if (!CheckedFrameBody(frame)) return FrameFault::kCorruptBody;
  return FrameFault::kNone;
}

// DeserializeSketch with a typed rejection reason: on failure, `fault`
// (if non-null) is set to the structural cause, or kCorruptBody when the
// frame is structurally sound but body validation rejected it. On
// success `fault` is kNone.
template <MergeableSketch T>
std::optional<T> DeserializeSketchDiagnosed(std::string_view bytes,
                                            uint32_t magic,
                                            uint32_t max_version,
                                            FrameFault* fault) {
  auto sketch = DeserializeSketch<T>(bytes);
  if (sketch.has_value()) {
    if (fault) *fault = FrameFault::kNone;
    return sketch;
  }
  if (fault) {
    const FrameFault f = ClassifyFrameBytes(bytes, magic, max_version);
    *fault = f == FrameFault::kNone ? FrameFault::kCorruptBody : f;
  }
  return std::nullopt;
}

}  // namespace ats

#endif  // ATS_UTIL_SERIALIZE_H_
