// Minimal byte-buffer serialization used by the sketches that get shipped
// between nodes (KMV / Theta / LCS). Fixed-width little-endian encoding,
// header-checked, no allocations beyond the output string.
#ifndef ATS_UTIL_SERIALIZE_H_
#define ATS_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

namespace ats {

// Appends POD values to a byte string.
class ByteWriter {
 public:
  void WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
  void WriteDouble(double v) { Append(&v, sizeof(v)); }

  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  void Append(const void* p, size_t n) {
    bytes_.append(static_cast<const char*>(p), n);
  }
  std::string bytes_;
};

// Reads POD values back; every accessor returns nullopt on truncation so
// corrupt inputs fail cleanly instead of crashing.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::optional<uint32_t> ReadU32() { return Read<uint32_t>(); }
  std::optional<uint64_t> ReadU64() { return Read<uint64_t>(); }
  std::optional<double> ReadDouble() { return Read<double>(); }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  template <typename T>
  std::optional<T> Read() {
    if (pos_ + sizeof(T) > bytes_.size()) return std::nullopt;
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace ats

#endif  // ATS_UTIL_SERIALIZE_H_
