#include "ats/util/table.h"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "ats/util/check.h"

namespace ats {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  ATS_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddNumericRow(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(FormatDouble(c, precision));
  AddRow(std::move(row));
}

std::string Table::ToText() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << "+";
    for (size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::Print(bool csv) const {
  const std::string out = csv ? ToCsv() : ToText();
  std::fwrite(out.data(), 1, out.size(), stdout);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

bool HasCsvFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

}  // namespace ats
