// Aligned console-table / CSV printer used by the bench binaries so each
// experiment prints the same rows/series the paper's figures plot.
#ifndef ATS_UTIL_TABLE_H_
#define ATS_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace ats {

// Collects rows of cells and renders them either as an aligned text table
// or as CSV. Cells are formatted by the caller (AddRow with strings) or via
// the convenience numeric overloads.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Formats doubles with `precision` significant digits.
  void AddNumericRow(const std::vector<double>& cells, int precision = 6);

  // Renders an aligned, boxed text table.
  std::string ToText() const;

  // Renders comma-separated values (header + rows).
  std::string ToCsv() const;

  // Prints ToCsv() when `csv` is true, else ToText(), to stdout.
  void Print(bool csv = false) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given number of significant digits.
std::string FormatDouble(double v, int precision = 6);

// True when argv contains "--csv": benches use this to switch output mode.
bool HasCsvFlag(int argc, char** argv);

}  // namespace ats

#endif  // ATS_UTIL_TABLE_H_
