// Lightweight invariant-checking macros for the ATS library.
//
// The library does not use exceptions (Google style). Invariant violations
// abort with a source location and message. ATS_DCHECK compiles out in
// NDEBUG builds and is used on hot paths.
#ifndef ATS_UTIL_CHECK_H_
#define ATS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define ATS_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ATS_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define ATS_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ATS_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define ATS_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define ATS_DCHECK(cond) ATS_CHECK(cond)
#endif

#endif  // ATS_UTIL_CHECK_H_
