// Runtime dispatch: detect the best level once, honor ATS_SIMD_LEVEL,
// and publish the active kernel table through one atomic pointer.
#include "ats/core/simd/simd_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "ats/core/simd/kernels.h"

namespace ats::simd {
namespace {

SimdLevel DetectLevel() {
#if ATS_SIMD_X86
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  // SSE2 is part of the x86-64 baseline; no need to probe for it.
  return SimdLevel::kSse2;
#else
  return SimdLevel::kSse2;
#endif
#else
  return SimdLevel::kScalar;
#endif
}

const KernelTable& TableFor(SimdLevel level) {
  switch (level) {
#if ATS_SIMD_X86
    case SimdLevel::kAvx2:
      return internal::Avx2Kernels();
    case SimdLevel::kSse2:
      return internal::Sse2Kernels();
#endif
    default:
      return internal::ScalarKernels();
  }
}

// Parses ATS_SIMD_LEVEL; anything unset/empty/unrecognized means
// "detected best" so a typo degrades to normal operation, not scalar.
SimdLevel InitialLevel() {
  const SimdLevel best = DetectedSimdLevel();
  const char* env = std::getenv("ATS_SIMD_LEVEL");
  if (env == nullptr || env[0] == '\0') return best;
  SimdLevel requested = best;
  if (std::strcmp(env, "scalar") == 0) {
    requested = SimdLevel::kScalar;
  } else if (std::strcmp(env, "sse2") == 0) {
    requested = SimdLevel::kSse2;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = SimdLevel::kAvx2;
  }
  return requested <= best ? requested : best;
}

struct DispatchState {
  std::atomic<const KernelTable*> table;
  std::atomic<int> level;

  DispatchState() {
    const SimdLevel initial = InitialLevel();
    table.store(&TableFor(initial), std::memory_order_release);
    level.store(static_cast<int>(initial), std::memory_order_release);
  }
};

DispatchState& State() {
  static DispatchState state;
  return state;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kSse2:
      return "sse2";
    default:
      return "scalar";
  }
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected = DetectLevel();
  return detected;
}

SimdLevel ActiveSimdLevel() {
  return static_cast<SimdLevel>(
      State().level.load(std::memory_order_acquire));
}

bool SetSimdLevel(SimdLevel level) {
  const SimdLevel best = DetectedSimdLevel();
  const bool honored = level <= best;
  const SimdLevel effective = honored ? level : best;
  DispatchState& state = State();
  state.table.store(&TableFor(effective), std::memory_order_release);
  state.level.store(static_cast<int>(effective),
                    std::memory_order_release);
  return honored;
}

const KernelTable& ActiveKernels() {
  return *State().table.load(std::memory_order_acquire);
}

}  // namespace ats::simd
