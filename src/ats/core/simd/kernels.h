// Internal: per-level kernel tables wired together by simd_dispatch.cc.
// Each kernels_*.cc translation unit owns one table; the AVX2 unit is
// compiled with -mavx2 regardless of the global architecture flags, so
// its table must only be DEREFERENCED after runtime detection says the
// CPU can execute it (simd_dispatch.cc guarantees that).
#ifndef ATS_CORE_SIMD_KERNELS_H_
#define ATS_CORE_SIMD_KERNELS_H_

#include "ats/core/simd/simd_dispatch.h"

// The SSE2/AVX2 units are x86-64 only; on other architectures only the
// scalar table exists and dispatch never looks past it.
#if defined(__x86_64__) || defined(_M_X64)
#define ATS_SIMD_X86 1
#else
#define ATS_SIMD_X86 0
#endif

namespace ats::simd::internal {

const KernelTable& ScalarKernels();
#if ATS_SIMD_X86
const KernelTable& Sse2Kernels();
const KernelTable& Avx2Kernels();
#endif

}  // namespace ats::simd::internal

#endif  // ATS_CORE_SIMD_KERNELS_H_
