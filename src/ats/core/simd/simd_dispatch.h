// Runtime-dispatched SIMD kernel tier for the sampling hot paths.
//
// Three kernels sit under every batched ingest loop in the library:
//
//   * prefilter_mask64 -- the 64-wide block pre-filter: one bit per item,
//     set iff priority < bound. This is the compare scan behind
//     SampleStore::OfferBatch, the MergeMany/MergeValidatedViews gather
//     passes, and every sampler's block-prefiltered AddBatch.
//   * hash_priority_mask64 -- the fused hash -> priority -> pre-filter
//     block: Mix64 key hashing, hash -> unit-interval conversion, and the
//     threshold compare in one pass (VisitHashedCandidates; the batched
//     front-ends of KMV/Theta/GroupDistinct and every keyed store).
//   * log_span -- elementwise natural log via the FastLog reference
//     (fast_log.h): the log-free exponential-priority path used by
//     Xoshiro256::NextExponential/FillExponentials and the time-decay
//     sampler's log-key columns.
//
// Dispatch model: one implementation table per level --
//   kAvx2 > kSse2 > kScalar
// -- selected ONCE from CPUID (via compiler builtins) the first time a
// kernel is called, overridable for testing with the ATS_SIMD_LEVEL
// environment variable ("scalar" | "sse2" | "avx2") or programmatically
// with SetSimdLevel. Requesting a level above what the CPU supports
// falls back to the best available level (so a forced-AVX2 CI leg skips
// gracefully on a runner without AVX2). On non-x86 builds only kScalar
// exists.
//
// Exactness contract (differential-tested at every available level in
// tests/simd_kernels_test.cc):
//   * prefilter_mask64 / hash_priority_mask64: BIT-EXACT across levels.
//     Integer hashing is exact arithmetic; the hash -> double conversion
//     is exact (the 53-bit value converts without rounding); the compare
//     follows IEEE `<` semantics (NaN never a candidate).
//   * log_span: BIT-EXACT across levels -- every level evaluates the
//     FastLog operation sequence, which is plain IEEE +,-,*,/ in fixed
//     order (no FMA; the build sets -ffp-contract=off), so scalar and
//     SIMD lanes agree bit-for-bit. Against libm's correctly-rounded
//     log the shared result is within 2 ulp (see fast_log.h).
//
// Thread-safety: ActiveKernels()/ActiveSimdLevel() are safe to call
// concurrently (one atomic acquire load after first-use init).
// SetSimdLevel is a test/bench hook: do not flip levels while another
// thread is mid-ingest -- kernels themselves are pure functions, so the
// only hazard is a torn A/B perf comparison, not data corruption.
#ifndef ATS_CORE_SIMD_SIMD_DISPATCH_H_
#define ATS_CORE_SIMD_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>

namespace ats::simd {

enum class SimdLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

// Stable lowercase name ("scalar" | "sse2" | "avx2"): bench JSON context,
// env-var parsing, log lines.
const char* SimdLevelName(SimdLevel level);

// Best level this CPU supports (computed once).
SimdLevel DetectedSimdLevel();

// Level currently driving ActiveKernels(). First call resolves
// ATS_SIMD_LEVEL (unset/empty/unknown values mean "detected best").
SimdLevel ActiveSimdLevel();

// Re-points the kernel table. A request above DetectedSimdLevel() clamps
// to the detected best and returns false (the forced-AVX2 CI leg uses
// this to skip gracefully); otherwise returns true.
bool SetSimdLevel(SimdLevel level);

// One resolved kernel set. All pointers are always non-null.
struct KernelTable {
  // Bit j of the result is set iff priorities[j] < bound, j in [0, 64).
  // `priorities` need not be aligned.
  uint64_t (*prefilter_mask64)(const double* priorities, double bound);
  // For j in [0, 64): priorities_out[j] = HashToUnit(HashKey(keys[j],
  // salt)); bit j of the result is set iff priorities_out[j] < bound.
  // Bit-exact vs the scalar HashKey/HashToUnit composition.
  uint64_t (*hash_priority_mask64)(const uint64_t* keys, uint64_t salt,
                                   double bound, double* priorities_out);
  // out[i] = FastLog(x[i]) for i in [0, n). In-place (out == x) allowed.
  void (*log_span)(const double* x, double* out, size_t n);
};

// The active table (atomic acquire load; init on first use).
const KernelTable& ActiveKernels();

// RAII level override for tests and A/B benches: clamps like
// SetSimdLevel, restores the previous level on destruction.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : previous_(ActiveSimdLevel()) {
    SetSimdLevel(level);
  }
  ~ScopedSimdLevel() { SetSimdLevel(previous_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel previous_;
};

}  // namespace ats::simd

#endif  // ATS_CORE_SIMD_SIMD_DISPATCH_H_
