// Scalar reference for the log kernel of the SIMD tier.
//
// FastLog is a branch-minimized port of the fdlibm/musl natural-log core
// (argument reduction to m in [sqrt(2)/2, sqrt(2)), the classic degree-7
// atanh-series polynomial, hi/lo-split ln2 reconstruction). It exists so
// the library can compute exponential priorities without calling libm's
// `log` in the hot path, and -- crucially -- so the vectorized log
// kernels (kernels_sse2.cc / kernels_avx2.cc) have a reference they can
// match BIT-FOR-BIT: every operation below is a plain IEEE-754 double
// +, -, *, / in a fixed order (no FMA, and the library builds with
// -ffp-contract=off so the compiler cannot contract one in), so a SIMD
// lane executing the same operation sequence produces the identical
// bits on every x86-64 implementation. The dispatch-level differential
// test (tests/simd_kernels_test.cc) pins exactly that.
//
// Exactness contract (the "documented ULP bounds" of the kernel API):
//   * FastLog(x) == the vectorized log kernels, bit-identical, for every
//     admissible x at every dispatch level.
//   * |FastLog(x) - log(x)| <= 2 ulp of the correctly rounded result
//     (empirically < 1 ulp over 10^7 random draws; the polynomial error
//     bound is 2^-58.45 per fdlibm's analysis and the reconstruction
//     adds at most ~1 ulp). Asserted against libm in the kernel test.
//   * Domain: (0, +inf]. Denormals are pre-scaled by 2^54 (exact);
//     FastLog(+inf) == +inf; FastLog(1.0) == +0.0 exactly. x <= 0 and
//     NaN are OUTSIDE the domain (callers validate weights > 0 and feed
//     uniforms from (0, 1]); the result is then unspecified.
#ifndef ATS_CORE_SIMD_FAST_LOG_H_
#define ATS_CORE_SIMD_FAST_LOG_H_

#include <bit>
#include <cstdint>
#include <limits>

namespace ats::simd {

// fdlibm atanh-series coefficients: log(1+f) = f - f^2/2 + s*(hfsq+R)
// with s = f/(2+f), z = s^2, R = z*(Lg1 + z*Lg2 + ... ).
inline constexpr double kLg1 = 6.666666666666735130e-01;
inline constexpr double kLg2 = 3.999999999940941908e-01;
inline constexpr double kLg3 = 2.857142874366239149e-01;
inline constexpr double kLg4 = 2.222219843214978396e-01;
inline constexpr double kLg5 = 1.818357216161805012e-01;
inline constexpr double kLg6 = 1.531383769920937332e-01;
inline constexpr double kLg7 = 1.479819860511658591e-01;
// ln2 split so k*ln2 reconstructs to < 1 ulp for |k| <= 1100.
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
// Smallest normal double; inputs below it are pre-scaled by 2^54.
inline constexpr double kMinNormal = 0x1.0p-1022;
inline constexpr double kTwo54 = 0x1.0p54;

inline double FastLog(double x) {
  const double orig = x;
  // Denormal pre-scale (exact: multiplying a denormal by 2^54 loses no
  // bits). The vector kernels express this branch as a compare + blend;
  // either control form computes the identical value per element.
  int64_t k_adjust = 0;
  if (x < kMinNormal) {
    x *= kTwo54;
    k_adjust = -54;
  }
  uint64_t ix = std::bit_cast<uint64_t>(x);
  // High 32-bit word carries the exponent and top mantissa bits.
  const int64_t hx = static_cast<int64_t>(ix >> 32);
  int64_t k = (hx >> 20) - 1023 + k_adjust;
  const int64_t mant_hi = hx & 0xfffff;
  // Round the mantissa into [sqrt(2)/2, sqrt(2)): when the mantissa is
  // in the upper part of [1, 2), borrow one from the exponent so f stays
  // small on both sides of 1.
  const int64_t i = (mant_hi + 0x95f64) & 0x100000;
  const uint64_t new_hi =
      static_cast<uint64_t>(mant_hi | (i ^ 0x3ff00000));
  ix = (new_hi << 32) | (ix & 0xffffffffULL);
  x = std::bit_cast<double>(ix);
  k += i >> 20;

  const double f = x - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  const double t1 = w * (kLg2 + w * (kLg4 + w * kLg6));
  const double t2 = z * (kLg1 + w * (kLg3 + w * (kLg5 + w * kLg7)));
  const double r = t2 + t1;
  const double hfsq = 0.5 * f * f;
  const double dk = static_cast<double>(k);
  const double result =
      dk * kLn2Hi - ((hfsq - (s * (hfsq + r) + dk * kLn2Lo)) - f);
  // +inf must stay +inf (the reduction above would fold it to 1024*ln2).
  // Weights are only checked > 0, so +inf is an admissible input.
  return orig == std::numeric_limits<double>::infinity() ? orig : result;
}

}  // namespace ats::simd

#endif  // ATS_CORE_SIMD_FAST_LOG_H_
