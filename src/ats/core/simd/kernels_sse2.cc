// SSE2 kernel table: 2-lane implementations of the same kernels as the
// AVX2 unit, restricted to the x86-64 baseline ISA (blends emulated with
// and/andnot/or, no SSE4.1). Operation order matches fast_log.h and the
// scalar hash pipeline exactly, so results are bit-identical to both the
// scalar and the AVX2 levels.
#include "ats/core/simd/kernels.h"

#if ATS_SIMD_X86

#include <emmintrin.h>

#include <cstddef>
#include <cstdint>

#include "ats/core/simd/fast_log.h"

namespace ats::simd::internal {
namespace {

inline __m128d Blend(__m128d a, __m128d b, __m128d mask) {
  return _mm_or_pd(_mm_and_pd(mask, b), _mm_andnot_pd(mask, a));
}

inline __m128i MulLo64(__m128i a, __m128i b) {
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i cross =
      _mm_add_epi64(_mm_mul_epu32(_mm_srli_epi64(a, 32), b),
                    _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

inline __m128i Mix64x2(__m128i x) {
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 33));
  x = MulLo64(x, _mm_set1_epi64x(0xff51afd7ed558ccdULL));
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 33));
  x = MulLo64(x, _mm_set1_epi64x(0xc4ceb9fe1a85ec53ULL));
  return _mm_xor_si128(x, _mm_srli_epi64(x, 33));
}

inline __m128d U64ToDouble(__m128i v) {
  const __m128i magic = _mm_set1_epi64x(0x4330000000000000LL);
  const __m128d magic_d = _mm_set1_pd(0x1.0p52);
  const __m128d hi = _mm_sub_pd(
      _mm_castsi128_pd(_mm_or_si128(_mm_srli_epi64(v, 32), magic)),
      magic_d);
  const __m128d lo = _mm_sub_pd(
      _mm_castsi128_pd(_mm_or_si128(
          _mm_and_si128(v, _mm_set1_epi64x(0xffffffffLL)), magic)),
      magic_d);
  return _mm_add_pd(_mm_mul_pd(hi, _mm_set1_pd(0x1.0p32)), lo);
}

uint64_t Sse2PrefilterMask64(const double* priorities, double bound) {
  const __m128d b = _mm_set1_pd(bound);
  uint64_t mask = 0;
  for (size_t v = 0; v < 32; ++v) {
    const __m128d p = _mm_loadu_pd(priorities + 2 * v);
    const int bits = _mm_movemask_pd(_mm_cmplt_pd(p, b));
    mask |= static_cast<uint64_t>(bits) << (2 * v);
  }
  return mask;
}

uint64_t Sse2HashPriorityMask64(const uint64_t* keys, uint64_t salt,
                                double bound, double* priorities_out) {
  const __m128i salt_add = _mm_set1_epi64x(
      static_cast<int64_t>(0x9e3779b97f4a7c15ULL * (salt + 1)));
  const __m128d b = _mm_set1_pd(bound);
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d scale = _mm_set1_pd(0x1.0p-53);
  uint64_t mask = 0;
  for (size_t v = 0; v < 32; ++v) {
    __m128i h = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(keys + 2 * v));
    h = Mix64x2(_mm_add_epi64(h, salt_add));
    const __m128d p = _mm_mul_pd(
        _mm_add_pd(U64ToDouble(_mm_srli_epi64(h, 11)), one), scale);
    _mm_storeu_pd(priorities_out + 2 * v, p);
    const int bits = _mm_movemask_pd(_mm_cmplt_pd(p, b));
    mask |= static_cast<uint64_t>(bits) << (2 * v);
  }
  return mask;
}

inline __m128d FastLogX2(__m128d x) {
  const __m128d orig = x;
  const __m128d denorm = _mm_cmplt_pd(x, _mm_set1_pd(kMinNormal));
  x = Blend(x, _mm_mul_pd(x, _mm_set1_pd(kTwo54)), denorm);
  const __m128i k_adjust =
      _mm_and_si128(_mm_castpd_si128(denorm), _mm_set1_epi64x(-54));
  __m128i ix = _mm_castpd_si128(x);
  const __m128i hx = _mm_srli_epi64(ix, 32);
  __m128i k = _mm_add_epi64(
      _mm_sub_epi64(_mm_srli_epi64(hx, 20), _mm_set1_epi64x(1023)),
      k_adjust);
  const __m128i mant_hi = _mm_and_si128(hx, _mm_set1_epi64x(0xfffff));
  const __m128i i = _mm_and_si128(
      _mm_add_epi64(mant_hi, _mm_set1_epi64x(0x95f64)),
      _mm_set1_epi64x(0x100000));
  const __m128i new_hi = _mm_or_si128(
      mant_hi, _mm_xor_si128(i, _mm_set1_epi64x(0x3ff00000)));
  ix = _mm_or_si128(_mm_slli_epi64(new_hi, 32),
                    _mm_and_si128(ix, _mm_set1_epi64x(0xffffffffLL)));
  x = _mm_castsi128_pd(ix);
  k = _mm_add_epi64(k, _mm_srli_epi64(i, 20));

  const __m128d one = _mm_set1_pd(1.0);
  const __m128d f = _mm_sub_pd(x, one);
  const __m128d s = _mm_div_pd(f, _mm_add_pd(_mm_set1_pd(2.0), f));
  const __m128d z = _mm_mul_pd(s, s);
  const __m128d w = _mm_mul_pd(z, z);
  const __m128d t1 = _mm_mul_pd(
      w, _mm_add_pd(
             _mm_set1_pd(kLg2),
             _mm_mul_pd(w, _mm_add_pd(_mm_set1_pd(kLg4),
                                      _mm_mul_pd(
                                          w, _mm_set1_pd(kLg6))))));
  const __m128d t2 = _mm_mul_pd(
      z, _mm_add_pd(
             _mm_set1_pd(kLg1),
             _mm_mul_pd(
                 w, _mm_add_pd(
                        _mm_set1_pd(kLg3),
                        _mm_mul_pd(
                            w, _mm_add_pd(
                                   _mm_set1_pd(kLg5),
                                   _mm_mul_pd(
                                       w, _mm_set1_pd(kLg7))))))));
  const __m128d r = _mm_add_pd(t2, t1);
  const __m128d hfsq = _mm_mul_pd(_mm_mul_pd(_mm_set1_pd(0.5), f), f);
  const __m128d dk = _mm_sub_pd(
      _mm_castsi128_pd(
          _mm_or_si128(_mm_add_epi64(k, _mm_set1_epi64x(1075)),
                       _mm_set1_epi64x(0x4330000000000000LL))),
      _mm_set1_pd(0x1.0p52 + 1075.0));
  const __m128d result = _mm_sub_pd(
      _mm_mul_pd(dk, _mm_set1_pd(kLn2Hi)),
      _mm_sub_pd(
          _mm_sub_pd(hfsq,
                     _mm_add_pd(_mm_mul_pd(s, _mm_add_pd(hfsq, r)),
                                _mm_mul_pd(dk, _mm_set1_pd(kLn2Lo)))),
          f));
  const __m128d inf_mask =
      _mm_cmpeq_pd(orig, _mm_set1_pd(__builtin_inf()));
  return Blend(result, orig, inf_mask);
}

void Sse2LogSpan(const double* x, double* out, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, FastLogX2(_mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = FastLog(x[i]);
}

}  // namespace

const KernelTable& Sse2Kernels() {
  static constexpr KernelTable kTable{
      Sse2PrefilterMask64,
      Sse2HashPriorityMask64,
      Sse2LogSpan,
  };
  return kTable;
}

}  // namespace ats::simd::internal

#endif  // ATS_SIMD_X86
