// Scalar reference kernels: the semantics every SIMD level is pinned to.
// This translation unit is compiled WITHOUT auto-vectorization (see the
// per-file flags in CMakeLists.txt) so the forced-scalar dispatch level
// measures a genuine scalar loop, not whatever the optimizer invents --
// that is the baseline the bench tier's speedup claims are made against.
#include "ats/core/simd/kernels.h"

#include <cstddef>
#include <cstdint>

#include "ats/core/random.h"
#include "ats/core/simd/fast_log.h"

namespace ats::simd::internal {
namespace {

uint64_t ScalarPrefilterMask64(const double* priorities, double bound) {
  uint64_t mask = 0;
  for (size_t j = 0; j < 64; ++j) {
    mask |= static_cast<uint64_t>(priorities[j] < bound) << j;
  }
  return mask;
}

uint64_t ScalarHashPriorityMask64(const uint64_t* keys, uint64_t salt,
                                  double bound, double* priorities_out) {
  uint64_t mask = 0;
  for (size_t j = 0; j < 64; ++j) {
    const double p = HashToUnit(HashKey(keys[j], salt));
    priorities_out[j] = p;
    mask |= static_cast<uint64_t>(p < bound) << j;
  }
  return mask;
}

void ScalarLogSpan(const double* x, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = FastLog(x[i]);
}

}  // namespace

const KernelTable& ScalarKernels() {
  static constexpr KernelTable kTable{
      ScalarPrefilterMask64,
      ScalarHashPriorityMask64,
      ScalarLogSpan,
  };
  return kTable;
}

}  // namespace ats::simd::internal
