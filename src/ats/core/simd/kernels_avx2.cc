// AVX2 kernel table: 4-lane implementations of the pre-filter mask, the
// fused hash->priority->pre-filter block, and the FastLog span.
//
// This translation unit is compiled with -mavx2 regardless of the global
// architecture flags (see CMakeLists.txt); simd_dispatch.cc only selects
// the table after runtime detection confirms the CPU executes AVX2.
//
// Exactness: the integer pipeline (Mix64 via the 32x32 cross-product
// 64-bit multiply) is exact arithmetic; the uint64 -> double conversion
// splits into hi*2^32 + lo, each half converted through the 2^52 magic
// bias -- every step exact for values < 2^53, so the result is
// bit-identical to the scalar static_cast. The log kernel evaluates the
// FastLog operation sequence with plain vmulpd/vaddpd/vdivpd (no FMA),
// so each lane reproduces the scalar reference bit-for-bit.
#include "ats/core/simd/kernels.h"

#if ATS_SIMD_X86

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "ats/core/simd/fast_log.h"

namespace ats::simd::internal {
namespace {

// 64x64 -> low 64 multiply (AVX2 has no vpmullq): lo product plus the
// two 32-bit cross products shifted up. The high cross term overflows
// out of the low 64 bits and is dropped, exactly like scalar uint64*.
inline __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

// Mix64 (MurmurHash3 fmix64), 4 lanes, bit-exact vs random.h.
inline __m256i Mix64x4(__m256i x) {
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = MulLo64(x, _mm256_set1_epi64x(0xff51afd7ed558ccdULL));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = MulLo64(x, _mm256_set1_epi64x(0xc4ceb9fe1a85ec53ULL));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
}

// Exact uint64 -> double for values < 2^53: hi/lo 32-bit halves through
// the 2^52 bias trick, recombined as hi*2^32 + lo (every step exact).
inline __m256d U64ToDouble(__m256i v) {
  const __m256i magic = _mm256_set1_epi64x(0x4330000000000000LL);  // 2^52
  const __m256d magic_d = _mm256_set1_pd(0x1.0p52);
  const __m256d hi = _mm256_sub_pd(
      _mm256_castsi256_pd(
          _mm256_or_si256(_mm256_srli_epi64(v, 32), magic)),
      magic_d);
  const __m256d lo = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(
          _mm256_and_si256(v, _mm256_set1_epi64x(0xffffffffLL)), magic)),
      magic_d);
  return _mm256_add_pd(_mm256_mul_pd(hi, _mm256_set1_pd(0x1.0p32)), lo);
}

uint64_t Avx2PrefilterMask64(const double* priorities, double bound) {
  const __m256d b = _mm256_set1_pd(bound);
  uint64_t mask = 0;
  for (size_t v = 0; v < 16; ++v) {
    const __m256d p = _mm256_loadu_pd(priorities + 4 * v);
    const int bits =
        _mm256_movemask_pd(_mm256_cmp_pd(p, b, _CMP_LT_OQ));
    mask |= static_cast<uint64_t>(bits) << (4 * v);
  }
  return mask;
}

uint64_t Avx2HashPriorityMask64(const uint64_t* keys, uint64_t salt,
                                double bound, double* priorities_out) {
  // HashKey(key, salt) = Mix64(key + 0x9e3779b97f4a7c15 * (salt + 1)).
  const __m256i salt_add =
      _mm256_set1_epi64x(static_cast<int64_t>(
          0x9e3779b97f4a7c15ULL * (salt + 1)));
  const __m256d b = _mm256_set1_pd(bound);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d scale = _mm256_set1_pd(0x1.0p-53);
  uint64_t mask = 0;
  for (size_t v = 0; v < 16; ++v) {
    __m256i h = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + 4 * v));
    h = Mix64x4(_mm256_add_epi64(h, salt_add));
    // HashToUnit: ((double)(h >> 11) + 1.0) * 2^-53, exact conversion.
    const __m256d p = _mm256_mul_pd(
        _mm256_add_pd(U64ToDouble(_mm256_srli_epi64(h, 11)), one), scale);
    _mm256_storeu_pd(priorities_out + 4 * v, p);
    const int bits =
        _mm256_movemask_pd(_mm256_cmp_pd(p, b, _CMP_LT_OQ));
    mask |= static_cast<uint64_t>(bits) << (4 * v);
  }
  return mask;
}

// FastLog (fast_log.h), 4 lanes, identical operation order. Branches
// become compare + blend; per element the computed value is the same.
inline __m256d FastLogX4(__m256d x) {
  const __m256d orig = x;
  // Denormal pre-scale.
  const __m256d denorm =
      _mm256_cmp_pd(x, _mm256_set1_pd(kMinNormal), _CMP_LT_OQ);
  x = _mm256_blendv_pd(x, _mm256_mul_pd(x, _mm256_set1_pd(kTwo54)),
                       denorm);
  const __m256i k_adjust = _mm256_and_si256(
      _mm256_castpd_si256(denorm), _mm256_set1_epi64x(-54));
  __m256i ix = _mm256_castpd_si256(x);
  const __m256i hx = _mm256_srli_epi64(ix, 32);
  __m256i k = _mm256_add_epi64(
      _mm256_sub_epi64(_mm256_srli_epi64(hx, 20),
                       _mm256_set1_epi64x(1023)),
      k_adjust);
  const __m256i mant_hi =
      _mm256_and_si256(hx, _mm256_set1_epi64x(0xfffff));
  const __m256i i = _mm256_and_si256(
      _mm256_add_epi64(mant_hi, _mm256_set1_epi64x(0x95f64)),
      _mm256_set1_epi64x(0x100000));
  const __m256i new_hi = _mm256_or_si256(
      mant_hi, _mm256_xor_si256(i, _mm256_set1_epi64x(0x3ff00000)));
  ix = _mm256_or_si256(
      _mm256_slli_epi64(new_hi, 32),
      _mm256_and_si256(ix, _mm256_set1_epi64x(0xffffffffLL)));
  x = _mm256_castsi256_pd(ix);
  k = _mm256_add_epi64(k, _mm256_srli_epi64(i, 20));

  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d f = _mm256_sub_pd(x, one);
  const __m256d s =
      _mm256_div_pd(f, _mm256_add_pd(_mm256_set1_pd(2.0), f));
  const __m256d z = _mm256_mul_pd(s, s);
  const __m256d w = _mm256_mul_pd(z, z);
  const __m256d t1 = _mm256_mul_pd(
      w, _mm256_add_pd(
             _mm256_set1_pd(kLg2),
             _mm256_mul_pd(
                 w, _mm256_add_pd(_mm256_set1_pd(kLg4),
                                  _mm256_mul_pd(
                                      w, _mm256_set1_pd(kLg6))))));
  const __m256d t2 = _mm256_mul_pd(
      z,
      _mm256_add_pd(
          _mm256_set1_pd(kLg1),
          _mm256_mul_pd(
              w, _mm256_add_pd(
                     _mm256_set1_pd(kLg3),
                     _mm256_mul_pd(
                         w, _mm256_add_pd(
                                _mm256_set1_pd(kLg5),
                                _mm256_mul_pd(
                                    w, _mm256_set1_pd(kLg7))))))));
  const __m256d r = _mm256_add_pd(t2, t1);
  const __m256d hfsq =
      _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(0.5), f), f);
  // dk = (double)k, exact via the 2^52 bias trick; k + 1075 >= 1 always.
  const __m256d dk = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(
          _mm256_add_epi64(k, _mm256_set1_epi64x(1075)),
          _mm256_set1_epi64x(0x4330000000000000LL))),
      _mm256_set1_pd(0x1.0p52 + 1075.0));
  const __m256d result = _mm256_sub_pd(
      _mm256_mul_pd(dk, _mm256_set1_pd(kLn2Hi)),
      _mm256_sub_pd(
          _mm256_sub_pd(
              hfsq,
              _mm256_add_pd(
                  _mm256_mul_pd(s, _mm256_add_pd(hfsq, r)),
                  _mm256_mul_pd(dk, _mm256_set1_pd(kLn2Lo)))),
          f));
  // +inf passthrough.
  const __m256d inf_mask = _mm256_cmp_pd(
      orig, _mm256_set1_pd(__builtin_inf()), _CMP_EQ_OQ);
  return _mm256_blendv_pd(result, orig, inf_mask);
}

void Avx2LogSpan(const double* x, double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, FastLogX4(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = FastLog(x[i]);
}

}  // namespace

const KernelTable& Avx2Kernels() {
  static constexpr KernelTable kTable{
      Avx2PrefilterMask64,
      Avx2HashPriorityMask64,
      Avx2LogSpan,
  };
  return kTable;
}

}  // namespace ats::simd::internal

#endif  // ATS_SIMD_X86
