#include "ats/core/sharded_sampler.h"

#include "ats/core/epoch_cache.h"
#include "ats/core/random.h"
#include "ats/core/shard_routing.h"
#include "ats/util/check.h"

namespace ats {

ShardedSampler::ShardedSampler(size_t num_shards, size_t k,
                               bool coordinated, uint64_t seed)
    : k_(k),
      route_salt_(internal::kShardRouteSalt),
      batch_scratch_(num_shards),
      merged_epochs_(num_shards, 0) {
  ATS_CHECK(num_shards >= 1);
  ATS_CHECK(k >= 1);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.emplace_back(k, seed + internal::kShardSeedStride * s,
                         coordinated);
  }
}

size_t ShardedSampler::ShardOf(uint64_t key) const {
  return static_cast<size_t>(HashKey(key, route_salt_) % shards_.size());
}

void ShardedSampler::Add(uint64_t key, double weight) {
  shards_[ShardOf(key)].Add(key, weight);
}

size_t ShardedSampler::AddBatch(std::span<const Item> items) {
  if (shards_.size() == 1) return shards_[0].AddBatch(items);
  for (auto& scratch : batch_scratch_) {
    scratch.clear();
    scratch.reserve(items.size() / shards_.size() + 16);
  }
  for (const Item& item : items) {
    batch_scratch_[ShardOf(item.key)].push_back(item);
  }
  size_t retained = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    retained += shards_[s].AddBatch(batch_scratch_[s]);
  }
  return retained;
}

size_t ShardedSampler::AddShardBatch(size_t shard,
                                     std::span<const Item> items) {
  ATS_CHECK(shard < shards_.size());
#ifndef NDEBUG
  for (const Item& item : items) ATS_DCHECK(ShardOf(item.key) == shard);
#endif
  return shards_[shard].AddBatch(items);
}

const BottomK<ShardedSampler::Item>& ShardedSampler::MergeShards() const {
  const auto epoch_of = [](const PrioritySampler& s) {
    return s.sketch().store().mutation_epoch();
  };
  if (merged_cache_.has_value() &&
      EpochsClean(shards_, merged_epochs_, epoch_of)) {
    return *merged_cache_;
  }
  // Some shard changed since the cached union: rebuild through the
  // threshold-pruned k-way engine (one global bound, block-prefiltered
  // shard columns, a single final selection -- see SampleStore::
  // MergeMany), then re-snapshot the epochs. MergeMany canonicalizes
  // the shards but never bumps their epochs, so the snapshot taken
  // after the merge stays valid until the next ingest.
  BottomK<Item> merged(k_);
  std::vector<const BottomK<Item>*> inputs;
  inputs.reserve(shards_.size());
  for (const PrioritySampler& shard : shards_) {
    inputs.push_back(&shard.sketch());
  }
  merged.MergeMany(inputs);
  SnapshotEpochs(shards_, merged_epochs_, epoch_of);
  merged_cache_.emplace(std::move(merged));
  return *merged_cache_;
}

std::vector<SampleEntry> ShardedSampler::Sample() const {
  return MakeWeightedSample(MergeShards().store());
}

double ShardedSampler::MergedThreshold() const {
  return MergeShards().Threshold();
}

ShardedSampler::MergedSample ShardedSampler::Merged() const {
  const BottomK<Item>& merged = MergeShards();
  return {MakeWeightedSample(merged.store()), merged.Threshold()};
}

size_t ShardedSampler::TotalRetained() const {
  size_t total = 0;
  for (const PrioritySampler& shard : shards_) total += shard.size();
  return total;
}

}  // namespace ats
