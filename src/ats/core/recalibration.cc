#include "ats/core/recalibration.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ats/core/threshold.h"
#include "ats/util/check.h"

namespace ats {

std::vector<double> RecalibratedThresholds(const ThresholdingRule& rule,
                                           std::vector<double> priorities,
                                           const std::vector<size_t>& lambda,
                                           double floor) {
  for (size_t i : lambda) {
    ATS_CHECK(i < priorities.size());
    priorities[i] = floor;
  }
  return rule(priorities);
}

bool SubsetSubstitutableHere(const ThresholdingRule& rule,
                             const std::vector<double>& priorities,
                             const std::vector<size_t>& lambda, double floor,
                             double tol) {
  const std::vector<double> original = rule(priorities);
  ATS_CHECK(original.size() == priorities.size());
  // The condition only constrains realizations where all of lambda is
  // sampled under the original thresholds.
  for (size_t i : lambda) {
    if (!(priorities[i] < original[i])) return true;  // vacuous
  }
  const std::vector<double> recal =
      RecalibratedThresholds(rule, priorities, lambda, floor);
  for (size_t i : lambda) {
    if (std::abs(recal[i] - original[i]) > tol) return false;
  }
  return true;
}

SubstitutabilityReport CheckSubstitutability(const ThresholdingRule& rule,
                                             size_t n, int trials,
                                             size_t max_subset_size,
                                             uint64_t seed, double floor) {
  Xoshiro256 rng(seed);
  SubstitutabilityReport report;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> priorities(n);
    for (double& p : priorities) p = rng.NextDoubleOpenZero();
    const std::vector<double> thresholds = rule(priorities);
    ATS_CHECK(thresholds.size() == n);
    std::vector<size_t> sampled;
    for (size_t i = 0; i < n; ++i) {
      if (priorities[i] < thresholds[i]) sampled.push_back(i);
    }
    if (sampled.empty()) continue;
    // Random subset of the realized sample, size 1..max_subset_size.
    const size_t subset_size = 1 + static_cast<size_t>(rng.NextBelow(
                                       std::min(max_subset_size,
                                                sampled.size())));
    std::vector<size_t> lambda;
    for (size_t j = 0; j < subset_size; ++j) {
      lambda.push_back(sampled[rng.NextBelow(sampled.size())]);
    }
    std::sort(lambda.begin(), lambda.end());
    lambda.erase(std::unique(lambda.begin(), lambda.end()), lambda.end());
    ++report.trials;
    if (!SubsetSubstitutableHere(rule, priorities, lambda, floor)) {
      ++report.violations;
    }
  }
  return report;
}

namespace {

// Broadcasts one scalar threshold to all n items.
std::vector<double> Broadcast(double t, size_t n) {
  return std::vector<double>(n, t);
}

}  // namespace

ThresholdingRule BottomKRule(size_t k) {
  return [k](const std::vector<double>& priorities) {
    const size_t n = priorities.size();
    if (n <= k) return Broadcast(kInfiniteThreshold, n);
    std::vector<double> sorted = priorities;
    std::nth_element(sorted.begin(), sorted.begin() + k, sorted.end());
    return Broadcast(sorted[k], n);  // (k+1)-th smallest
  };
}

ThresholdingRule BudgetRule(std::vector<double> sizes, double budget) {
  return [sizes = std::move(sizes),
          budget](const std::vector<double>& priorities) {
    const size_t n = priorities.size();
    ATS_CHECK(sizes.size() == n);
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return priorities[a] < priorities[b];
    });
    double used = 0.0;
    for (size_t i : order) {
      used += sizes[i];
      if (used > budget) return Broadcast(priorities[i], n);
    }
    return Broadcast(kInfiniteThreshold, n);
  };
}

ThresholdingRule SequentialBottomKRule(size_t k) {
  return [k](const std::vector<double>& priorities) {
    const size_t n = priorities.size();
    std::vector<double> thresholds(n, kInfiniteThreshold);
    std::vector<double> heap;  // max-heap of the k smallest prefix priorities
    double prefix_threshold = kInfiniteThreshold;
    for (size_t i = 0; i < n; ++i) {
      thresholds[i] = prefix_threshold;
      // Update the prefix bottom-k state with priority i.
      const double p = priorities[i];
      if (p < prefix_threshold) {
        if (heap.size() < k) {
          heap.push_back(p);
          std::push_heap(heap.begin(), heap.end());
        } else if (p < heap.front()) {
          std::pop_heap(heap.begin(), heap.end());
          prefix_threshold = std::min(prefix_threshold, heap.back());
          heap.back() = p;
          std::push_heap(heap.begin(), heap.end());
        } else {
          prefix_threshold = std::min(prefix_threshold, p);
        }
      }
    }
    return thresholds;
  };
}

ThresholdingRule ExcludeGroupRule(std::vector<bool> group) {
  return [group = std::move(group)](const std::vector<double>& priorities) {
    ATS_CHECK(group.size() == priorities.size());
    double t = kInfiniteThreshold;
    for (size_t i = 0; i < priorities.size(); ++i) {
      if (group[i]) t = std::min(t, priorities[i]);
    }
    return std::vector<double>(priorities.size(), t);
  };
}

}  // namespace ats
