// Shared bottom-k sample store: the single retention engine behind every
// adaptive-threshold sampler and sketch in the library (Sections 2.5, 2.7).
//
// The store keeps the k items with smallest priorities seen so far in
// structure-of-arrays layout -- a `priority[]` column and a parallel
// `payload[]` column kept in lockstep. The adaptive threshold is the
// (k+1)-th smallest priority ever offered (capped at an optional initial
// threshold), which is fully substitutable (Theorem 6), so HT estimators
// can treat it as fixed.
//
// Ingestion discipline: because the threshold is substitutable, it does
// not have to be lowered on every eviction -- lowering it in *chunks* is
// equally valid (the retained set at any published bound is still an
// exact threshold sample at that bound). The store exploits this with the
// compaction scheme production theta/KMV sketches use:
//
//   * Accepted candidates (priority < the current acceptance bound) are
//     APPENDED to a 2k overflow buffer -- no heap, no sifting, amortized
//     O(1) per accepted item.
//   * When the buffer fills, it is compacted: std::nth_element on a
//     scratch copy of the priority column finds the (k+1)-th smallest
//     priority, that value becomes the new acceptance bound, and a single
//     gather pass keeps exactly the k smallest entries (ties at the pivot
//     resolved first-arrived-first-kept). Payloads are permuted in the
//     same pass, so rejected items still never touch payload memory.
//
// Between compactions the buffer may hold up to 2k entries; every
// OBSERVABLE accessor (Threshold, size, priorities, Merge, serialization,
// ...) first canonicalizes -- compacts down to at most k -- so callers
// always see exactly the state a per-offer scalar reference (retain the k
// smallest, threshold = (k+1)-th smallest ever) would have produced: same
// retained priority multiset, same threshold, including priority ties and
// the underfull warm-up phase. `AcceptBound()` exposes the raw chunked
// bound for hot-path pre-filtering without forcing a compaction.
//
// Why structure-of-arrays: the ingest hot path touches only priorities.
// Once the store saturates, the overwhelming majority of offers fail the
// `priority < bound` test and must be rejected as cheaply as possible; a
// dense double column lets the batched path scan candidates with
// branch-free vectorizable compares.
//
// Thread-safety: canonicalization mutates the representation (never the
// observable state) through `mutable` members, so the canonicalizing
// `const` accessors are NOT safe to call concurrently on the SAME store.
// The explicit contract is Canonicalize(): call it once after ingest
// quiesces, and until the next mutating call every `const` accessor is a
// pure read (the compaction early-out leaves the representation
// untouched), so concurrent readers are safe. Distinct stores (one per
// shard) remain independent, which is what the sharded front-end relies
// on. mutation_epoch() lets query-side caches detect whether a store has
// observably changed without forcing a canonicalization.
//
// Every container that previously hand-rolled its own heap + threshold
// (BottomK, PrioritySampler, KmvSketch, ThetaSketch via KMV, ...)
// delegates retention to this class.
#ifndef ATS_CORE_SAMPLE_STORE_H_
#define ATS_CORE_SAMPLE_STORE_H_

#include <algorithm>
#include <bit>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ats/core/random.h"
#include "ats/core/simd/simd_dispatch.h"
#include "ats/core/threshold.h"
#include "ats/util/check.h"

namespace ats {

namespace internal {

// Index permutation sorting `priorities` ascending. Non-template helper
// shared by every SortedEntries()-style accessor (sample_store.cc).
std::vector<size_t> AscendingPriorityOrder(
    const std::vector<double>& priorities);

// Bound on eager capacity reservation. Capacity k is a logical limit, not
// a storage promise: wire formats carry arbitrary k, so reserving k (or
// the 2k compaction buffer) up front would let a hostile message allocate
// (or throw) unboundedly.
inline constexpr size_t kMaxEagerReserve = 1 << 16;

// Width of the batched-ingest pre-filter blocks. The AVX2 scan packs one
// candidate bit per block item into a uint64_t, so the block cannot grow
// past 64 without reworking the bitmap.
inline constexpr size_t kIngestBlock = 64;
static_assert(kIngestBlock <= 64,
              "VisitBlockCandidates packs candidates into a 64-bit mask");

// Visits the indices j in [0, 64) whose priority is below the threshold
// snapshot `t`, in ascending order. This is THE batched-ingest pre-filter:
// one implementation of the SIMD-friendly block scan, shared by
// SampleStore::OfferBatch and the fused hashing front-ends
// (HashedBatchOffer, KmvSketch::AddKeys). Callers re-check the live bound
// per candidate (Offer does this), so using a snapshot is
// behavior-preserving: the bound only decreases, and items culled against
// the snapshot would also be rejected, with no state change, one at a
// time.
template <typename Visit>
inline void VisitBlockCandidates(const double* priorities, double t,
                                 Visit&& visit) {
  // Runtime-dispatched compare scan (src/ats/core/simd/): one candidate
  // bit per item, packed into a uint64_t. Set bits are visited in
  // ascending index (stream) order -- required for exact equivalence
  // with a scalar Offer loop when priorities tie (which payload survives
  // is order-dependent). The kernel's IEEE `<` matches the scalar
  // compare bit-for-bit at every dispatch level (NaN never a candidate).
  uint64_t mask = simd::ActiveKernels().prefilter_mask64(priorities, t);
  while (mask != 0) {
    const size_t j = static_cast<size_t>(std::countr_zero(mask));
    mask &= mask - 1;
    visit(j);
  }
}

// Fused hash -> priority -> pre-filter pipeline over a span of keys: for
// each 64-key block, the runtime-dispatched hash_priority_mask64 kernel
// (src/ats/core/simd/) hashes the keys, writes the coordinated
// unit-interval priorities into a dense column, and culls the block
// against `bound()` in one pass; only surviving (priority, key) pairs
// reach `visit` -- in stream order, exactly like a scalar hash-then-offer
// loop (the kernel is bit-exact vs HashToUnit(HashKey(...)) at every
// dispatch level). `bound` is re-read per block (and per tail item) so
// compactions triggered by accepted candidates tighten the filter for
// subsequent blocks.
template <typename BoundFn, typename Visit>
inline void VisitHashedCandidates(std::span<const uint64_t> keys,
                                  uint64_t salt, BoundFn&& bound,
                                  Visit&& visit) {
  alignas(64) double priorities[kIngestBlock];
  size_t i = 0;
  for (; i + kIngestBlock <= keys.size(); i += kIngestBlock) {
    uint64_t mask = simd::ActiveKernels().hash_priority_mask64(
        keys.data() + i, salt, bound(), priorities);
    while (mask != 0) {
      const size_t j = static_cast<size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      visit(priorities[j], keys[i + j]);
    }
  }
  for (; i < keys.size(); ++i) {
    const double p = HashToUnit(HashKey(keys[i], salt));
    if (p < bound()) visit(p, keys[i]);
  }
}

}  // namespace internal

template <typename Payload>
class SampleStore {
 public:
  /// k: retention capacity. `initial_threshold` pre-filters the stream
  /// (KMV-style sketches start at 1.0, the top of the unit interval;
  /// grouped sketches start at the current pool threshold; plain bottom-k
  /// starts unbounded).
  explicit SampleStore(size_t k,
                       double initial_threshold = kInfiniteThreshold)
      : k_(k),
        capacity_(2 * k),
        initial_threshold_(initial_threshold),
        threshold_(initial_threshold) {
    ATS_CHECK(k >= 1);
    ATS_CHECK(initial_threshold > 0.0);
    const size_t reserve = std::min(capacity_, internal::kMaxEagerReserve);
    priority_.reserve(reserve);
    payload_.reserve(reserve);
  }

  /// Offers one item. Returns true iff the item is ACCEPTED: its priority
  /// is below the current acceptance bound and it enters the candidate
  /// buffer. Amortized O(1): an accept is an append; every 2k-th accept
  /// pays one O(k) nth_element compaction. Thread-safety: mutating call
  /// -- never run concurrently with any other access to the same store
  /// (distinct stores are fully independent).
  //
  /// Acceptance is chunked: between compactions the bound sits at the
  /// (k+1)-th smallest priority as of the LAST compaction, so an accepted
  /// item may still be dropped by the next compaction if k smaller
  /// priorities exist. The retained set and threshold observed through the
  /// canonicalizing accessors are nevertheless exactly those of a
  /// per-offer reference (see file comment).
  /// NOTE: this is Accept() plus the epoch bump, written out rather than
  /// wrapped: a wrapper (measurably) degrades how the scalar path inlines
  /// into callers' reject-heavy loops, and the batched paths must NOT
  /// bump per accept -- they bump once per call so their block-scan inner
  /// loops inline the epoch-free Accept().
  bool Offer(double priority, Payload payload) {
    if (priority >= threshold_) return false;
    priority_.push_back(priority);
    payload_.push_back(std::move(payload));
    ++mutation_epoch_;
    if (priority_.size() >= capacity_) CompactToK();
    return true;
  }

  /// Batched ingest hot path. Exactly equivalent to calling Offer() on each
  /// (priority, payload) pair in order -- same final state, same acceptance
  /// count -- but pre-filters each 64-item block against the current
  /// acceptance bound with a branch-free compare scan over the priority
  /// column, so rejected items never reach the buffer or touch payload
  /// memory.
  //
  /// Correctness of the pre-filter: the bound only decreases, so items
  /// culled against the block-start snapshot `t` would also be rejected
  /// (with no state change) by a scalar Offer; survivors re-check the live
  /// bound inside Offer. Thread-safety: mutating call, same contract as
  /// Offer.
  size_t OfferBatch(std::span<const double> priorities,
                    std::span<const Payload> payloads) {
    ATS_CHECK(priorities.size() == payloads.size());
    const size_t n = priorities.size();
    size_t accepted = 0;
    size_t i = 0;
    for (; i + internal::kIngestBlock <= n; i += internal::kIngestBlock) {
      internal::VisitBlockCandidates(
          priorities.data() + i, threshold_, [&](size_t j) {
            accepted += Accept(priorities[i + j], payloads[i + j]) ? 1 : 0;
          });
    }
    for (; i < n; ++i) {
      accepted += Accept(priorities[i], payloads[i]) ? 1 : 0;
    }
    // Once per batch, and only when something was accepted: an
    // all-rejected batch changes nothing observable, and bumping anyway
    // would invalidate query caches in exactly the saturated steady
    // state they target. The inner loop stays epoch-free (see Offer).
    if (accepted > 0) ++mutation_epoch_;
    return accepted;
  }

  /// Fused batched front-end for keyed stores (Payload == uint64_t): for
  /// each 64-key block, computes the coordinated hash priorities into a
  /// dense column, culls the block against the acceptance bound, and
  /// appends the survivors. Exactly equivalent to
  ///   for (key : keys) Offer(HashToUnit(HashKey(key, salt)), key);
  /// in order, including the acceptance count. Keys are NOT deduplicated;
  /// key-coordinated duplicate suppression lives in KmvSketch.
  size_t HashedBatchOffer(std::span<const uint64_t> keys,
                          uint64_t hash_salt = 0)
    requires std::same_as<Payload, uint64_t>
  {
    size_t accepted = 0;
    internal::VisitHashedCandidates(
        keys, hash_salt, [this] { return threshold_; },
        [&](double priority, uint64_t key) {
          accepted += Accept(priority, key) ? 1 : 0;
        });
    // Same epoch discipline as OfferBatch: once per batch, accepts only.
    if (accepted > 0) ++mutation_epoch_;
    return accepted;
  }

  /// Explicitly canonicalizes the representation: compacts the overflow
  /// buffer down to at most k entries and tightens the acceptance bound to
  /// the canonical adaptive threshold. Observable state is unchanged --
  /// this is the same (logically const) compaction every observable
  /// accessor performs implicitly. Call it once after ingest quiesces to
  /// make subsequent `const` accessors pure reads (safe for concurrent
  /// readers; see the thread-safety note in the file comment).
  void Canonicalize() const { CompactToK(); }

  /// Monotone counter bumped by every mutating call that may change the
  /// OBSERVABLE state (accepted offers, threshold lowering, merges,
  /// purges). Canonicalization never bumps it: it changes only the
  /// representation. Query-side caches (ShardedSampler) snapshot this to
  /// skip re-merging clean shards between ingest batches.
  uint64_t mutation_epoch() const { return mutation_epoch_; }

  /// The adaptive threshold: min(initial threshold, (k+1)-th smallest
  /// priority ever offered). Canonicalizes (compacts the overflow buffer)
  /// first, so the value matches the scalar reference at any point.
  /// Thread-safety: canonicalizing const accessor -- a pure read only
  /// after an explicit Canonicalize() (see the file comment); otherwise
  /// it may mutate the representation and must not race with anything.
  double Threshold() const {
    CompactToK();
    return threshold_;
  }

  /// The raw chunked acceptance bound: Threshold() <= AcceptBound(), with
  /// equality whenever the store is canonical. O(1) -- this is the value
  /// hot ingest paths (KmvSketch::OfferPriority, the block pre-filter)
  /// test against without forcing a compaction. Any retained-set snapshot
  /// taken together with this bound is a valid threshold sample at the
  /// bound (threshold substitutability), so estimators MAY use it; the
  /// canonical Threshold() is simply tighter.
  double AcceptBound() const { return threshold_; }

  /// True once the threshold has dropped below the initial threshold, i.e.
  /// at least one offer has been squeezed out by capacity.
  bool saturated() const {
    CompactToK();
    return threshold_ < initial_threshold_;
  }

  /// Largest retained priority (the k-th smallest seen). Only valid when
  /// size() > 0. O(k): the canonical buffer is unordered between
  /// compactions, so this scans the priority column.
  double MaxRetainedPriority() const {
    CompactToK();
    ATS_CHECK(!priority_.empty());
    return *std::max_element(priority_.begin(), priority_.end());
  }

  /// Canonical retained count (<= k).
  size_t size() const {
    CompactToK();
    return priority_.size();
  }

  /// Raw candidate-buffer occupancy (may exceed k between compactions).
  /// O(1); monitoring / memory-heuristic use only.
  size_t BufferedSize() const { return priority_.size(); }

  /// Live heap bytes of the SoA columns -- EXACT per buffered entry:
  /// BufferedSize() * (sizeof(double) + sizeof(Payload)). O(1) and
  /// non-canonicalizing (never compacts), so it is safe on any path and
  /// visibly grows with the candidate buffer and drops at compaction.
  /// Excludes allocator slack and the reusable compaction scratch, per
  /// the convention in util/memory.h.
  size_t MemoryFootprint() const {
    return priority_.size() * sizeof(double) +
           payload_.size() * sizeof(Payload);
  }

  size_t k() const { return k_; }
  double initial_threshold() const { return initial_threshold_; }

  /// Raw columns in unspecified order. priorities()[i] pairs with
  /// payloads()[i]. Canonicalized: at most k entries, exactly the scalar
  /// reference's retained multiset.
  const std::vector<double>& priorities() const {
    CompactToK();
    return priority_;
  }
  const std::vector<Payload>& payloads() const {
    CompactToK();
    return payload_;
  }

  /// Index permutation visiting entries in ascending-priority order.
  std::vector<size_t> SortedOrder() const {
    CompactToK();
    return internal::AscendingPriorityOrder(priority_);
  }

  /// Merges another store over a disjoint stream: the result is the store
  /// of the concatenated streams. The threshold is the min of both
  /// thresholds and of any priority squeezed out while merging. Merging a
  /// store with itself is a no-op (the union of a stream with itself).
  //
  /// This per-item pairwise path is the k-way engine's reference
  /// semantics; aggregation fan-ins should use MergeMany instead.
  /// Thread-safety: mutates `this` AND canonicalizes `other` -- neither
  /// side may be touched concurrently.
  void Merge(const SampleStore& other) {
    if (&other == this) return;
    ++mutation_epoch_;
    initial_threshold_ =
        std::min(initial_threshold_, other.initial_threshold_);
    other.CompactToK();
    LowerThreshold(other.threshold_);
    for (size_t i = 0; i < other.priority_.size(); ++i) {
      Accept(other.priority_[i], other.payload_[i]);
    }
    // Offers above may have lowered the threshold further; restore the
    // invariant "retained iff priority < threshold".
    PurgeAboveThreshold();
  }

  /// Threshold-pruned k-way merge: observationally identical to merging
  /// the inputs one by one with Merge() in span order (same retained
  /// multiset, same threshold, same warm-up/tie behavior -- proven by the
  /// randomized differential test in merge_many_test.cc), but it runs the
  /// aggregation as ONE selection instead of S sequential merge+compaction
  /// rounds:
  //
  ///   1. One pass over the inputs takes the global acceptance bound
  ///      T0 = min(own threshold, all input thresholds) BEFORE any item
  ///      moves, so every input is filtered at the final bound from the
  ///      start -- in the S-shard fan-in a ~1/S fraction of each input
  ///      survives instead of everything from the early inputs.
  ///   2. Each input's canonical priority column is then culled with the
  ///      64-wide block pre-filter (the batched-ingest scan); survivors
  ///      are appended through Offer, whose 2k-buffer compactions tighten
  ///      the bound below T0 as squeezed-out priorities accumulate, so
  ///      later inputs are pruned even harder.
  ///   3. A final purge restores "retained iff priority < threshold".
  //
  /// Why this equals the sequential chain: the store's bound is monotone
  /// non-increasing and both paths end at the same final threshold
  ///   T = min(T0, (k+1)-th smallest candidate priority below T0),
  /// because every candidate REJECTED along either path was >= the bound
  /// in force at that moment >= T, so rejections never disturb the
  /// (k+1)-th order statistic; and after the closing purge both paths
  /// retain exactly the candidates with priority < T (at most k of them,
  /// since T is capped by the (k+1)-th smallest). Inputs aliasing `this`
  /// are skipped, matching the pairwise self-merge no-op.
  void MergeMany(std::span<const SampleStore* const> inputs) {
    // No real inputs (empty span, or only aliases of `this`): strict
    // no-op, exactly like the zero-length pairwise chain. The closing
    // purge must not run here -- it would drop retained entries tied AT
    // the threshold, which only a merge is entitled to do.
    bool any_input = false;
    for (const SampleStore* in : inputs) any_input |= in != this;
    if (!any_input) return;
    ++mutation_epoch_;
    CompactToK();
    double bound = threshold_;
    for (const SampleStore* in : inputs) {
      if (in == this) continue;
      in->CompactToK();
      initial_threshold_ =
          std::min(initial_threshold_, in->initial_threshold_);
      bound = std::min(bound, in->threshold_);
    }
    LowerThreshold(bound);
    for (const SampleStore* in : inputs) {
      if (in == this) continue;
      const std::vector<double>& ps = in->priority_;
      const std::vector<Payload>& pl = in->payload_;
      size_t i = 0;
      for (; i + internal::kIngestBlock <= ps.size();
           i += internal::kIngestBlock) {
        // Snapshot bound per block (it only decreases; Offer re-checks
        // the live value), same argument as OfferBatch.
        internal::VisitBlockCandidates(
            ps.data() + i, threshold_,
            [&](size_t j) { Accept(ps[i + j], pl[i + j]); });
      }
      for (; i < ps.size(); ++i) {
        if (ps[i] < threshold_) Accept(ps[i], pl[i]);
      }
    }
    PurgeAboveThreshold();
  }

  /// Removes retained entries with priority >= Threshold(). Needed after
  /// merges or external threshold reductions.
  void PurgeAboveThreshold() {
    ++mutation_epoch_;
    CompactToK();
    if (threshold_ == kInfiniteThreshold) return;
    FilterColumns([t = threshold_](double p) { return p < t; });
  }

  /// Externally lowers the threshold (threshold composition, merges);
  /// drops buffered entries that fall outside. Does not force a
  /// compaction: the filtered buffer is still a valid candidate set at
  /// the lowered bound.
  void LowerThreshold(double t) {
    if (t >= threshold_) return;
    ++mutation_epoch_;
    threshold_ = t;
    FilterColumns([t](double p) { return p < t; });
  }

  /// Time-axis hook: stable extraction of retained entries. Canonicalizes,
  /// then visits every entry in arrival order; entries for which
  /// `remove(priority, const Payload&)` returns true are handed to
  /// `consume(priority, Payload&&)` -- still in arrival order -- and
  /// dropped; the survivors keep their arrival order and column lockstep.
  /// Returns the number of entries extracted.
  ///
  /// The threshold is deliberately NOT touched: extraction models a change
  /// of the underlying population (window expiry, stratum retirement), and
  /// only the calling sampler knows what the acceptance rule over the
  /// remaining population is. Bumps the mutation epoch iff something was
  /// removed. Thread-safety: mutating call -- never run concurrently with
  /// any other access to the same store.
  template <typename Remove, typename Consume>
  size_t ExtractIf(Remove&& remove, Consume&& consume) {
    CompactToK();
    size_t w = 0;
    for (size_t i = 0; i < priority_.size(); ++i) {
      if (remove(priority_[i], std::as_const(payload_[i]))) {
        consume(priority_[i], std::move(payload_[i]));
      } else {
        if (w != i) {
          priority_[w] = priority_[i];
          payload_[w] = std::move(payload_[i]);
        }
        ++w;
      }
    }
    const size_t removed = priority_.size() - w;
    priority_.resize(w);
    payload_.resize(w);
    if (removed > 0) ++mutation_epoch_;
    return removed;
  }

  /// Time-axis hook: drops the first `n` retained entries (arrival
  /// order), equivalent to ExtractIf removing exactly the prefix but
  /// without per-element lambda dispatch: one ranged vector::erase per
  /// column (a memmove for the POD priority column). This is the sliding
  /// window's dead-prefix reclamation hot path at the rate == k boundary,
  /// where every arrival expires one predecessor. Like ExtractIf, the
  /// threshold is deliberately not touched. Bumps the mutation epoch iff
  /// n > 0. Thread-safety: mutating call -- never run concurrently with
  /// any other access to the same store.
  void DropFront(size_t n) {
    CompactToK();
    ATS_CHECK(n <= priority_.size());
    if (n == 0) return;
    priority_.erase(priority_.begin(),
                    priority_.begin() + static_cast<ptrdiff_t>(n));
    payload_.erase(payload_.begin(),
                   payload_.begin() + static_cast<ptrdiff_t>(n));
    ++mutation_epoch_;
  }

  /// Time-axis hook: visits every canonical payload mutably, in arrival
  /// order, as `fn(priority, Payload&)`. Used by samplers that keep
  /// per-item thresholds inside the payload (sliding window min-updates
  /// them on eviction). Priorities are read-only: changing a priority
  /// would invalidate the retention invariant, so it is not offered.
  /// Always bumps the mutation epoch (the caller is assumed to change
  /// observable payload state). Thread-safety: mutating call -- never run
  /// concurrently with any other access to the same store.
  template <typename Fn>
  void ForEachMutablePayload(Fn&& fn) {
    CompactToK();
    ++mutation_epoch_;
    for (size_t i = 0; i < priority_.size(); ++i) {
      fn(priority_[i], payload_[i]);
    }
  }

 private:
  /// The epoch-free accept core shared by Offer and every batched/merge
  /// ingest loop: bound test, two column appends, compaction at 2k.
  bool Accept(double priority, Payload payload) {
    if (priority >= threshold_) return false;
    priority_.push_back(priority);
    payload_.push_back(std::move(payload));
    if (priority_.size() >= capacity_) CompactToK();
    return true;
  }

  /// In-place stable filter over the parallel columns: keeps the entries
  /// whose priority satisfies `keep` (which may be stateful), preserving
  /// arrival order and priority/payload lockstep. Logically const -- the
  /// single place the columns are compacted/moved.
  template <typename Keep>
  void FilterColumns(Keep&& keep) const {
    size_t w = 0;
    for (size_t i = 0; i < priority_.size(); ++i) {
      if (keep(priority_[i])) {
        if (w != i) {
          priority_[w] = priority_[i];
          payload_[w] = std::move(payload_[i]);
        }
        ++w;
      }
    }
    priority_.resize(w);
    payload_.resize(w);
  }

  /// Compacts the candidate buffer down to the k smallest entries and
  /// tightens the acceptance bound to the (k+1)-th smallest buffered
  /// priority. No-op when the buffer already holds <= k entries, so the
  /// canonicalizing accessors are O(1) between ingest bursts.
  //
  /// The buffer always contains EVERY item ever offered below the current
  /// bound (minus entries dropped by earlier compactions, all of which
  /// were >= the bound at that time and hence >= the final threshold), so
  /// the (k+1)-th smallest buffered priority IS the (k+1)-th smallest
  /// priority ever offered -- the scalar reference's threshold.
  //
  /// Ties at the pivot are kept first-arrived-first (the later duplicates
  /// are exactly the offers a per-offer reference would have rejected at
  /// a full store). Logically const: mutates only the representation.
  void CompactToK() const {
    const size_t n = priority_.size();
    if (n <= k_) return;
    scratch_.assign(priority_.begin(), priority_.end());
    const auto nth = scratch_.begin() + static_cast<std::ptrdiff_t>(k_);
    std::nth_element(scratch_.begin(), nth, scratch_.end());
    const double pivot = *nth;  // the (k+1)-th smallest buffered priority
    threshold_ = std::min(threshold_, pivot);
    // Gather the k smallest in arrival order: everything strictly below
    // the pivot plus the first ties AT the pivot filling up to k.
    size_t below = 0;
    for (const double p : priority_) below += p < pivot ? 1 : 0;
    FilterColumns([pivot, ties_needed = k_ - below](double p) mutable {
      if (p < pivot) return true;
      if (p == pivot && ties_needed > 0) {
        --ties_needed;
        return true;
      }
      return false;
    });
  }

  size_t k_;
  /// Candidate-buffer capacity (2k): compaction runs every k accepts and
  /// costs O(2k), i.e. amortized O(1) per accepted item.
  size_t capacity_;
  double initial_threshold_;
  /// The chunked acceptance bound; equals the canonical adaptive threshold
  /// whenever the buffer holds <= k entries. Mutable (with the columns):
  /// canonicalization under const accessors changes the representation,
  /// never the observable state.
  mutable double threshold_;
  /// Parallel candidate columns; size <= capacity_, <= k when canonical.
  mutable std::vector<double> priority_;
  mutable std::vector<Payload> payload_;
  /// Compaction scratch for the nth_element pivot scan (reused across
  /// compactions to avoid per-compaction allocation).
  mutable std::vector<double> scratch_;
  /// Observable-mutation counter (see mutation_epoch()). Deliberately NOT
  /// mutable: canonicalization under const accessors must not bump it, or
  /// query-side caches would self-invalidate.
  uint64_t mutation_epoch_ = 0;
};

}  // namespace ats

#endif  // ATS_CORE_SAMPLE_STORE_H_
