// Shared bottom-k sample store: the single retention engine behind every
// adaptive-threshold sampler and sketch in the library (Sections 2.5, 2.7).
//
// The store keeps the k items with smallest priorities seen so far in
// structure-of-arrays layout -- a `priority[]` column and a parallel
// `payload[]` column kept in lockstep by a manual binary max-heap. The
// adaptive threshold is the (k+1)-th smallest priority ever offered
// (capped at an optional initial threshold), which is fully substitutable
// (Theorem 6), so HT estimators can treat it as fixed.
//
// Why structure-of-arrays: the ingest hot path touches only priorities.
// Once the store saturates, the overwhelming majority of offers fail the
// `priority < threshold` test and must be rejected as cheaply as possible;
// a dense double column lets the batched path scan candidates with
// branch-free vectorizable compares and never pull payload bytes into
// cache for rejected items.
//
// Every container that previously hand-rolled its own heap + threshold
// (BottomK, PrioritySampler, KmvSketch, ThetaSketch via KMV, ...) now
// delegates retention to this class.
#ifndef ATS_CORE_SAMPLE_STORE_H_
#define ATS_CORE_SAMPLE_STORE_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ats/core/threshold.h"
#include "ats/util/check.h"

namespace ats {

namespace internal {

// Index permutation sorting `priorities` ascending. Non-template helper
// shared by every SortedEntries()-style accessor (sample_store.cc).
std::vector<size_t> AscendingPriorityOrder(
    const std::vector<double>& priorities);

// Bound on eager capacity reservation. Capacity k is a logical limit, not
// a storage promise: wire formats carry arbitrary k, so reserving k
// up front would let a hostile message allocate (or throw) unboundedly.
inline constexpr size_t kMaxEagerReserve = 1 << 16;

// Visits the indices j in [0, 64) whose priority is below the threshold
// snapshot `t`, in ascending order. This is THE batched-ingest pre-filter:
// one implementation of the SIMD-friendly block scan, shared by
// SampleStore::OfferBatch and the hashing front-ends (KmvSketch::AddKeys).
// Callers re-check the live threshold per candidate (Offer does this),
// so using a snapshot is behavior-preserving: the threshold only
// decreases, and items culled against the snapshot would also be
// rejected, with no state change, one at a time.
template <typename Visit>
inline void VisitBlockCandidates(const double* priorities, double t,
                                 Visit&& visit) {
#if defined(__AVX2__)
  // Candidate bitmap; the variable shift maps to vpsllvq, so the whole
  // scan vectorizes. Set bits are visited in ascending index (stream)
  // order -- required for exact equivalence with a scalar Offer loop
  // when priorities tie (which payload survives is order-dependent).
  uint64_t mask = 0;
  for (size_t j = 0; j < 64; ++j) {
    mask |= static_cast<uint64_t>(priorities[j] < t) << j;
  }
  while (mask != 0) {
    const size_t j = static_cast<size_t>(std::countr_zero(mask));
    mask &= mask - 1;
    visit(j);
  }
#else
  // Without AVX2 variable shifts, an any-hit OR-reduction (a plain SSE
  // compare reduction) decides whether the block can be skipped
  // wholesale; candidate blocks are rare once the store saturates.
  int any = 0;
  for (size_t j = 0; j < 64; ++j) {
    any |= priorities[j] < t;
  }
  if (any) {
    for (size_t j = 0; j < 64; ++j) {
      if (priorities[j] < t) visit(j);
    }
  }
#endif
}

}  // namespace internal

template <typename Payload>
class SampleStore {
 public:
  // k: retention capacity. `initial_threshold` pre-filters the stream
  // (KMV-style sketches start at 1.0, the top of the unit interval;
  // grouped sketches start at the current pool threshold; plain bottom-k
  // starts unbounded).
  explicit SampleStore(size_t k,
                       double initial_threshold = kInfiniteThreshold)
      : k_(k),
        initial_threshold_(initial_threshold),
        threshold_(initial_threshold) {
    ATS_CHECK(k >= 1);
    ATS_CHECK(initial_threshold > 0.0);
    const size_t reserve = std::min(k, internal::kMaxEagerReserve);
    priority_.reserve(reserve);
    payload_.reserve(reserve);
  }

  // Offers one item. Returns true iff the item is retained. O(log k).
  bool Offer(double priority, Payload payload) {
    if (priority >= threshold_) return false;
    const size_t n = priority_.size();
    if (n < k_) {
      priority_.push_back(priority);
      payload_.push_back(std::move(payload));
      SiftUp(n);
      return true;
    }
    if (priority >= priority_[0]) {
      // Not among the k smallest: it is a new (k+1)-th candidate.
      threshold_ = std::min(threshold_, priority);
      return false;
    }
    // Evict the current max; the evicted priority becomes the threshold.
    threshold_ = std::min(threshold_, priority_[0]);
    priority_[0] = priority;
    payload_[0] = std::move(payload);
    SiftDown(0);
    return true;
  }

  // Batched ingest hot path. Exactly equivalent to calling Offer() on each
  // (priority, payload) pair in order -- same final state, same acceptance
  // count -- but pre-filters each 64-item block against the current
  // threshold with a branch-free compare scan over the priority column, so
  // rejected items never reach the heap or touch payload memory.
  //
  // Correctness of the pre-filter: the threshold only decreases, so items
  // culled against the block-start snapshot `t` would also be rejected
  // (with no state change) by a scalar Offer; survivors re-check the live
  // threshold inside Offer.
  size_t OfferBatch(std::span<const double> priorities,
                    std::span<const Payload> payloads) {
    ATS_CHECK(priorities.size() == payloads.size());
    const size_t n = priorities.size();
    size_t accepted = 0;
    size_t i = 0;
    // Warm-up: while underfull, (almost) everything is accepted anyway.
    while (i < n && priority_.size() < k_) {
      accepted += Offer(priorities[i], payloads[i]) ? 1 : 0;
      ++i;
    }
    // Full 64-item blocks through the vector-friendly pre-filter.
    for (; i + 64 <= n; i += 64) {
      internal::VisitBlockCandidates(
          priorities.data() + i, threshold_, [&](size_t j) {
            accepted += Offer(priorities[i + j], payloads[i + j]) ? 1 : 0;
          });
    }
    // Tail.
    for (; i < n; ++i) {
      accepted += Offer(priorities[i], payloads[i]) ? 1 : 0;
    }
    return accepted;
  }

  // The adaptive threshold: min(initial threshold, (k+1)-th smallest
  // priority ever offered).
  double Threshold() const { return threshold_; }

  // True once the threshold has dropped below the initial threshold, i.e.
  // at least one offer has been squeezed out by capacity.
  bool saturated() const { return threshold_ < initial_threshold_; }

  // Largest retained priority. Only valid when size() > 0.
  double MaxRetainedPriority() const {
    ATS_CHECK(!priority_.empty());
    return priority_[0];
  }

  size_t size() const { return priority_.size(); }
  size_t k() const { return k_; }
  double initial_threshold() const { return initial_threshold_; }

  // Raw columns in heap order. priorities()[i] pairs with payloads()[i].
  const std::vector<double>& priorities() const { return priority_; }
  const std::vector<Payload>& payloads() const { return payload_; }

  // Index permutation visiting entries in ascending-priority order.
  std::vector<size_t> SortedOrder() const {
    return internal::AscendingPriorityOrder(priority_);
  }

  // Merges another store over a disjoint stream: the result is the store
  // of the concatenated streams. The threshold is the min of both
  // thresholds and of any priority evicted while merging. Merging a store
  // with itself is a no-op (the union of a stream with itself).
  void Merge(const SampleStore& other) {
    if (&other == this) return;
    initial_threshold_ =
        std::min(initial_threshold_, other.initial_threshold_);
    LowerThreshold(other.threshold_);
    for (size_t i = 0; i < other.priority_.size(); ++i) {
      if (other.priority_[i] < threshold_) {
        Offer(other.priority_[i], other.payload_[i]);
      }
    }
    // Offers above may have lowered the threshold further; restore the
    // invariant "retained iff priority < threshold".
    PurgeAboveThreshold();
  }

  // Removes retained entries with priority >= Threshold(). Needed after
  // merges or external threshold reductions.
  void PurgeAboveThreshold() {
    if (threshold_ == kInfiniteThreshold) return;
    size_t w = 0;
    for (size_t i = 0; i < priority_.size(); ++i) {
      if (priority_[i] < threshold_) {
        if (w != i) {
          priority_[w] = priority_[i];
          payload_[w] = std::move(payload_[i]);
        }
        ++w;
      }
    }
    priority_.resize(w);
    payload_.resize(w);
    Heapify();
  }

  // Externally lowers the threshold (threshold composition, merges);
  // purges entries that fall outside.
  void LowerThreshold(double t) {
    if (t < threshold_) {
      threshold_ = t;
      PurgeAboveThreshold();
    }
  }

 private:
  void SiftUp(size_t i) {
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (priority_[parent] >= priority_[i]) break;
      std::swap(priority_[parent], priority_[i]);
      std::swap(payload_[parent], payload_[i]);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    const size_t n = priority_.size();
    for (;;) {
      size_t largest = i;
      const size_t l = 2 * i + 1;
      const size_t r = 2 * i + 2;
      if (l < n && priority_[l] > priority_[largest]) largest = l;
      if (r < n && priority_[r] > priority_[largest]) largest = r;
      if (largest == i) return;
      std::swap(priority_[largest], priority_[i]);
      std::swap(payload_[largest], payload_[i]);
      i = largest;
    }
  }

  void Heapify() {
    const size_t n = priority_.size();
    if (n < 2) return;
    for (size_t i = n / 2; i-- > 0;) SiftDown(i);
  }

  size_t k_;
  double initial_threshold_;
  double threshold_;
  // Parallel columns forming a max-heap on priority; size <= k_.
  std::vector<double> priority_;
  std::vector<Payload> payload_;
};

}  // namespace ats

#endif  // ATS_CORE_SAMPLE_STORE_H_
