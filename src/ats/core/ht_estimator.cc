#include "ats/core/ht_estimator.h"

#include <cmath>

#include "ats/util/check.h"

namespace ats {

namespace {

double Inclusion(const SampleEntry& e) {
  const double pi = e.InclusionProbability();
  ATS_CHECK_MSG(pi > 0.0, "sample entry with zero inclusion probability");
  return pi;
}

}  // namespace

double HtTotal(std::span<const SampleEntry> sample) {
  double total = 0.0;
  for (const SampleEntry& e : sample) total += e.value / Inclusion(e);
  return total;
}

double HtSubsetSum(std::span<const SampleEntry> sample,
                   const std::function<bool(uint64_t)>& in_subset) {
  double total = 0.0;
  for (const SampleEntry& e : sample) {
    if (in_subset(e.key)) total += e.value / Inclusion(e);
  }
  return total;
}

double HtCount(std::span<const SampleEntry> sample) {
  double total = 0.0;
  for (const SampleEntry& e : sample) total += 1.0 / Inclusion(e);
  return total;
}

double HtVarianceEstimate(std::span<const SampleEntry> sample) {
  double v = 0.0;
  for (const SampleEntry& e : sample) {
    const double pi = Inclusion(e);
    v += e.value * e.value * (1.0 - pi) / (pi * pi);
  }
  return v;
}

double FixedThresholdVariance(std::span<const double> values,
                              std::span<const PriorityDist> dists, double t) {
  ATS_CHECK(values.size() == dists.size());
  double v = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double pi = dists[i].Cdf(t);
    ATS_CHECK_MSG(pi > 0.0, "item with zero inclusion probability");
    v += values[i] * values[i] * (1.0 - pi) / pi;
  }
  return v;
}

double HtConfidenceHalfWidth95(std::span<const SampleEntry> sample) {
  return 1.96 * std::sqrt(HtVarianceEstimate(sample));
}

double PairwiseHtSum(
    std::span<const SampleEntry> sample,
    const std::function<double(const SampleEntry&, const SampleEntry&)>& h) {
  double total = 0.0;
  for (size_t i = 0; i < sample.size(); ++i) {
    const double pi = Inclusion(sample[i]);
    for (size_t j = 0; j < sample.size(); ++j) {
      if (i == j) continue;
      total += h(sample[i], sample[j]) / (pi * Inclusion(sample[j]));
    }
  }
  return total;
}

double TripleHtSum(
    std::span<const SampleEntry> sample,
    const std::function<double(const SampleEntry&, const SampleEntry&,
                               const SampleEntry&)>& h) {
  double total = 0.0;
  const size_t m = sample.size();
  for (size_t i = 0; i < m; ++i) {
    const double pi = Inclusion(sample[i]);
    for (size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      const double pij = pi * Inclusion(sample[j]);
      for (size_t k = 0; k < m; ++k) {
        if (k == i || k == j) continue;
        total += h(sample[i], sample[j], sample[k]) /
                 (pij * Inclusion(sample[k]));
      }
    }
  }
  return total;
}

double QuadrupleHtSum(
    std::span<const SampleEntry> sample,
    const std::function<double(const SampleEntry&, const SampleEntry&,
                               const SampleEntry&, const SampleEntry&)>& h) {
  double total = 0.0;
  const size_t m = sample.size();
  for (size_t i = 0; i < m; ++i) {
    const double pi = Inclusion(sample[i]);
    for (size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      const double pij = pi * Inclusion(sample[j]);
      for (size_t k = 0; k < m; ++k) {
        if (k == i || k == j) continue;
        const double pijk = pij * Inclusion(sample[k]);
        for (size_t l = 0; l < m; ++l) {
          if (l == i || l == j || l == k) continue;
          total += h(sample[i], sample[j], sample[k], sample[l]) /
                   (pijk * Inclusion(sample[l]));
        }
      }
    }
  }
  return total;
}

}  // namespace ats
