#include "ats/core/sample_store.h"

#include <numeric>

namespace ats {
namespace internal {

std::vector<size_t> AscendingPriorityOrder(
    const std::vector<double>& priorities) {
  std::vector<size_t> order(priorities.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&priorities](size_t a, size_t b) {
    return priorities[a] < priorities[b];
  });
  return order;
}

}  // namespace internal
}  // namespace ats
