#include "ats/core/random.h"

#include <cmath>

#include "ats/core/simd/fast_log.h"
#include "ats/core/simd/simd_dispatch.h"
#include "ats/util/check.h"

namespace ats {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Xoshiro256::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::NextDoubleOpenZero() {
  return (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
}

uint64_t Xoshiro256::NextBelow(uint64_t n) {
  ATS_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = std::numeric_limits<uint64_t>::max() -
                         std::numeric_limits<uint64_t>::max() % n;
  uint64_t x;
  do {
    x = Next();
  } while (x >= limit);
  return x % n;
}

double Xoshiro256::NextExponential() {
  return -simd::FastLog(NextDoubleOpenZero());
}

void Xoshiro256::FillExponentials(std::span<double> out) {
  // Draw the uniform column first (scalar: the generator recurrence is
  // serial), then one dispatched log over the whole span. FastLog is
  // bit-identical at every dispatch level, so this matches a loop of
  // NextExponential() exactly.
  for (double& v : out) v = NextDoubleOpenZero();
  simd::ActiveKernels().log_span(out.data(), out.data(), out.size());
  for (double& v : out) v = -v;
}

void Xoshiro256::FillUniformsOpenZero(std::span<double> out) {
  for (double& v : out) v = NextDoubleOpenZero();
}

double Xoshiro256::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * m;
  have_gaussian_ = true;
  return u * m;
}

uint64_t HashBytes(std::string_view bytes, uint64_t salt) {
  uint64_t h = 0xcbf29ce484222325ULL ^ Mix64(salt);
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace ats
