// Threshold abstractions (Sections 2.1, 2.3).
//
// A *fixed* threshold t samples item i independently iff R_i < t, giving a
// Poisson sampling design with inclusion probability F_i(t). An *adaptive*
// threshold T_i = tau_i(R | D) may depend on the data and on other items'
// priorities; the paper's machinery (recalibration, substitutability) says
// when estimators built for fixed thresholds stay valid.
//
// Concretely, samplers in this library hand each retained item a
// SampleEntry carrying its priority, its priority distribution, and the
// per-item threshold in force; all estimators consume spans of entries and
// never need to know which sampler produced them. That is the practical
// payoff of threshold substitutability: "code just one set of estimators
// while the underlying sampling schemes can be easily changed" (Section 7).
#ifndef ATS_CORE_THRESHOLD_H_
#define ATS_CORE_THRESHOLD_H_

#include <cstdint>
#include <limits>

#include "ats/core/priority.h"

namespace ats {

// Sentinel threshold meaning "everything below it is sampled" (probability
// one for uniform-family priorities).
inline constexpr double kInfiniteThreshold =
    std::numeric_limits<double>::infinity();

// One sampled item as consumed by the estimators.
//
// `value` is the quantity being aggregated (e.g. the summand x_i for subset
// sums, or 1.0 for counts). `key` identifies the item for subset predicates
// and joins. The pseudo-inclusion probability is dist.Cdf(threshold).
struct SampleEntry {
  uint64_t key = 0;
  double value = 0.0;
  double priority = 0.0;
  double threshold = kInfiniteThreshold;
  PriorityDist dist = PriorityDist::Uniform();

  // Pseudo-inclusion probability pi_i = F_i(T_i) used by HT estimators.
  double InclusionProbability() const { return dist.Cdf(threshold); }
};

// Convenience: builds an entry for the ubiquitous weighted-uniform case
// (priority sampling), where value == weight.
inline SampleEntry MakeWeightedEntry(uint64_t key, double weight,
                                     double priority, double threshold) {
  SampleEntry e;
  e.key = key;
  e.value = weight;
  e.priority = priority;
  e.threshold = threshold;
  e.dist = PriorityDist::WeightedUniform(weight);
  return e;
}

// Convenience: uniform-priority entry (distinct counting and unweighted
// sampling).
inline SampleEntry MakeUniformEntry(uint64_t key, double value,
                                    double priority, double threshold) {
  SampleEntry e;
  e.key = key;
  e.value = value;
  e.priority = priority;
  e.threshold = threshold;
  e.dist = PriorityDist::Uniform();
  return e;
}

}  // namespace ats

#endif  // ATS_CORE_THRESHOLD_H_
