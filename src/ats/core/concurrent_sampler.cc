#include "ats/core/concurrent_sampler.h"

namespace ats {
namespace internal {

// Every MergeShards mirrors its sequential front-end's merge exactly
// (same accumulator construction, same k-way engine, same seed for the
// merged time-axis samplers), then canonicalizes the result so every
// const accessor on the published snapshot is a pure read -- that is
// what lets any number of reader threads share one snapshot.

PriorityScenario::Merged PriorityScenario::MergeShards(
    const Config& config, std::span<const Shard* const> shards) {
  BottomK<Item> merged(config.k);
  std::vector<const BottomK<Item>*> inputs;
  inputs.reserve(shards.size());
  for (const Shard* shard : shards) inputs.push_back(&shard->sketch());
  merged.MergeMany(inputs);
  merged.store().Canonicalize();
  return merged;
}

KmvScenario::Merged KmvScenario::MergeShards(
    const Config& config, std::span<const Shard* const> shards) {
  KmvSketch merged(config.k, /*initial_threshold=*/1.0, config.hash_salt);
  std::vector<const KmvSketch*> inputs;
  inputs.reserve(shards.size());
  for (const Shard* shard : shards) inputs.push_back(shard);
  merged.MergeMany(inputs);
  merged.store().Canonicalize();
  return merged;
}

WindowScenario::Merged WindowScenario::MergeShards(
    const Config& config, std::span<const Shard* const> shards) {
  // Seed 1, matching ShardedWindowSampler::MergedWindow: the merged
  // sampler never draws priorities, but identical construction keeps
  // the concurrent and sequential front-ends bit-equivalent.
  SlidingWindowSampler merged(config.k, config.window, /*seed=*/1);
  std::vector<const SlidingWindowSampler*> inputs;
  inputs.reserve(shards.size());
  for (const Shard* shard : shards) inputs.push_back(shard);
  merged.MergeMany(inputs);
  return merged;
}

DecayScenario::Merged DecayScenario::MergeShards(
    const Config& config, std::span<const Shard* const> shards) {
  TimeDecaySampler merged(config.k, /*seed=*/1);
  std::vector<const TimeDecaySampler*> inputs;
  inputs.reserve(shards.size());
  for (const Shard* shard : shards) inputs.push_back(shard);
  merged.MergeMany(inputs);
  // Canonicalize through the threshold accessor: TimeDecaySampler does
  // not expose its store mutably, and the threshold read compacts it.
  merged.LogKeyThreshold();
  return merged;
}

}  // namespace internal

template class ConcurrentSampler<internal::PriorityScenario>;
template class ConcurrentSampler<internal::KmvScenario>;
template class ConcurrentSampler<internal::WindowScenario>;
template class ConcurrentSampler<internal::DecayScenario>;

// --- ConcurrentPrioritySampler -----------------------------------------

ConcurrentPrioritySampler::ConcurrentPrioritySampler(size_t num_shards,
                                                     size_t k,
                                                     bool coordinated,
                                                     uint64_t seed)
    : core_(num_shards, {k, coordinated, seed}) {
  ATS_CHECK(k >= 1);
}

size_t ConcurrentPrioritySampler::ShardOf(uint64_t key) const {
  return core_.ShardOf(key);
}

void ConcurrentPrioritySampler::Add(uint64_t key, double weight) {
  core_.Add(Item{key, weight});
}

size_t ConcurrentPrioritySampler::AddBatch(std::span<const Item> items) {
  return core_.AddBatch(items);
}

size_t ConcurrentPrioritySampler::AddShardBatch(
    size_t shard, std::span<const Item> items) {
  return core_.AddShardBatch(shard, items);
}

ConcurrentPrioritySampler::Writer ConcurrentPrioritySampler::RegisterWriter() {
  return core_.RegisterWriter();
}

void ConcurrentPrioritySampler::Drain() { core_.Drain(); }

ConcurrentPrioritySampler::MergedSample ConcurrentPrioritySampler::Merged()
    const {
  const auto snapshot = core_.Snapshot();
  return {MakeWeightedSample(snapshot->store()), snapshot->Threshold()};
}

std::vector<SampleEntry> ConcurrentPrioritySampler::Sample() const {
  return MakeWeightedSample(core_.Snapshot()->store());
}

double ConcurrentPrioritySampler::MergedThreshold() const {
  return core_.Snapshot()->Threshold();
}

std::shared_ptr<const BottomK<ConcurrentPrioritySampler::Item>>
ConcurrentPrioritySampler::Snapshot() const {
  return core_.Snapshot();
}

size_t ConcurrentPrioritySampler::TotalRetained() const {
  return core_.TotalRetained();
}

// --- ConcurrentKmvSketch -----------------------------------------------

ConcurrentKmvSketch::ConcurrentKmvSketch(size_t num_shards, size_t k,
                                         uint64_t hash_salt)
    : core_(num_shards, {k, hash_salt}) {
  ATS_CHECK(k >= 1);
}

size_t ConcurrentKmvSketch::ShardOf(uint64_t key) const {
  return core_.ShardOf(key);
}

void ConcurrentKmvSketch::AddKey(uint64_t key) { core_.Add(key); }

size_t ConcurrentKmvSketch::AddKeys(std::span<const uint64_t> keys) {
  return core_.AddBatch(keys);
}

size_t ConcurrentKmvSketch::AddShardKeys(size_t shard,
                                         std::span<const uint64_t> keys) {
  return core_.AddShardBatch(shard, keys);
}

ConcurrentKmvSketch::Writer ConcurrentKmvSketch::RegisterWriter() {
  return core_.RegisterWriter();
}

void ConcurrentKmvSketch::Drain() { core_.Drain(); }

double ConcurrentKmvSketch::Estimate() const {
  return core_.Snapshot()->Estimate();
}

double ConcurrentKmvSketch::Threshold() const {
  return core_.Snapshot()->Threshold();
}

size_t ConcurrentKmvSketch::MergedSize() const {
  return core_.Snapshot()->size();
}

std::shared_ptr<const KmvSketch> ConcurrentKmvSketch::Snapshot() const {
  return core_.Snapshot();
}

size_t ConcurrentKmvSketch::TotalRetained() const {
  return core_.TotalRetained();
}

// --- ConcurrentWindowSampler -------------------------------------------

ConcurrentWindowSampler::ConcurrentWindowSampler(size_t num_shards,
                                                 size_t k, double window,
                                                 uint64_t seed)
    : core_(num_shards, {k, window, seed}) {
  ATS_CHECK(k >= 1);
  ATS_CHECK(window > 0.0);
}

size_t ConcurrentWindowSampler::ShardOf(uint64_t id) const {
  return core_.ShardOf(id);
}

bool ConcurrentWindowSampler::Arrive(double time, uint64_t id) {
  return core_.Add(Arrival{time, id}) > 0;
}

size_t ConcurrentWindowSampler::AddBatch(
    std::span<const Arrival> arrivals) {
  return core_.AddBatch(arrivals);
}

size_t ConcurrentWindowSampler::AddShardBatch(
    size_t shard, std::span<const Arrival> arrivals) {
  return core_.AddShardBatch(shard, arrivals);
}

ConcurrentWindowSampler::Writer ConcurrentWindowSampler::RegisterWriter() {
  return core_.RegisterWriter();
}

void ConcurrentWindowSampler::Drain() { core_.Drain(); }

double ConcurrentWindowSampler::ImprovedThreshold(double now) const {
  SlidingWindowSampler merged = *core_.Snapshot();
  return merged.ImprovedThreshold(now);
}

double ConcurrentWindowSampler::GlThreshold(double now) const {
  SlidingWindowSampler merged = *core_.Snapshot();
  return merged.GlThreshold(now);
}

std::vector<SampleEntry> ConcurrentWindowSampler::ImprovedSample(
    double now) const {
  SlidingWindowSampler merged = *core_.Snapshot();
  return merged.ImprovedSample(now);
}

std::vector<SampleEntry> ConcurrentWindowSampler::GlSample(
    double now) const {
  SlidingWindowSampler merged = *core_.Snapshot();
  return merged.GlSample(now);
}

size_t ConcurrentWindowSampler::MergedStoredCount(double now) const {
  SlidingWindowSampler merged = *core_.Snapshot();
  return merged.StoredCount(now);
}

std::shared_ptr<const SlidingWindowSampler>
ConcurrentWindowSampler::Snapshot() const {
  return core_.Snapshot();
}

// --- ConcurrentDecaySampler --------------------------------------------

ConcurrentDecaySampler::ConcurrentDecaySampler(size_t num_shards, size_t k,
                                               uint64_t seed)
    : core_(num_shards, {k, seed}) {
  ATS_CHECK(k >= 1);
}

size_t ConcurrentDecaySampler::ShardOf(uint64_t key) const {
  return core_.ShardOf(key);
}

bool ConcurrentDecaySampler::Add(uint64_t key, double weight, double value,
                                 double time) {
  return core_.Add(TimedItem{key, weight, value, time}) > 0;
}

size_t ConcurrentDecaySampler::AddBatch(std::span<const TimedItem> items) {
  return core_.AddBatch(items);
}

size_t ConcurrentDecaySampler::AddShardBatch(
    size_t shard, std::span<const TimedItem> items) {
  return core_.AddShardBatch(shard, items);
}

ConcurrentDecaySampler::Writer ConcurrentDecaySampler::RegisterWriter() {
  return core_.RegisterWriter();
}

void ConcurrentDecaySampler::Drain() { core_.Drain(); }

double ConcurrentDecaySampler::LogKeyThreshold() const {
  return core_.Snapshot()->LogKeyThreshold();
}

std::vector<TimeDecaySampler::DecayedEntry> ConcurrentDecaySampler::SampleAt(
    double now) const {
  return core_.Snapshot()->SampleAt(now);
}

double ConcurrentDecaySampler::EstimateDecayedTotal(double now) const {
  return core_.Snapshot()->EstimateDecayedTotal(now);
}

std::shared_ptr<const TimeDecaySampler> ConcurrentDecaySampler::Snapshot()
    const {
  return core_.Snapshot();
}

size_t ConcurrentDecaySampler::TotalRetained() const {
  return core_.TotalRetained();
}

}  // namespace ats
