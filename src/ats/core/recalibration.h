// Threshold recalibration and substitutability checking (Sections 2.5-2.6).
//
// Given an adaptive thresholding rule tau (a function of the full priority
// vector), the recalibrated rule with respect to an index set lambda is
//
//   tau~^lambda(R_-lambda) = inf_r { tau(r) : r_-lambda = R_-lambda },
//
// i.e. the smallest threshold achievable by moving the priorities indexed
// by lambda. For non-decreasing rules the infimum is attained by driving
// those priorities to the bottom of their support (Section 2.5), which is
// how RecalibratedThresholds computes it.
//
// A threshold is *substitutable* when the recalibrated threshold equals the
// original whenever every item of lambda is sampled; then fixed-threshold
// estimators carry over unchanged (Theorem 4). This header provides a
// randomized checker used by the test suite and the ablation bench to
// verify substitutability of every thresholding rule the library ships --
// and to demonstrate non-substitutability of deliberately broken rules
// (such as the "exclude all females" example of Section 2.3).
#ifndef ATS_CORE_RECALIBRATION_H_
#define ATS_CORE_RECALIBRATION_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "ats/core/random.h"

namespace ats {

// A thresholding rule: maps the full vector of priorities to per-item
// thresholds. Rules must be deterministic functions of the priorities (any
// data dependence is baked into the closure).
using ThresholdingRule =
    std::function<std::vector<double>(const std::vector<double>&)>;

// Evaluates the recalibrated thresholds T~^lambda by setting priorities at
// the indices in `lambda` to `floor` (0 for non-negative priorities,
// -infinity in general) and re-applying the rule. Exact for non-decreasing
// rules.
std::vector<double> RecalibratedThresholds(const ThresholdingRule& rule,
                                           std::vector<double> priorities,
                                           const std::vector<size_t>& lambda,
                                           double floor = 0.0);

// True iff, for this realization, every index in `lambda` is sampled
// (R_i < T_i) and the recalibrated thresholds at lambda equal the original
// thresholds (within `tol`). Vacuously true when some lambda index is not
// sampled, matching the definition in Section 2.6.
bool SubsetSubstitutableHere(const ThresholdingRule& rule,
                             const std::vector<double>& priorities,
                             const std::vector<size_t>& lambda,
                             double floor = 0.0, double tol = 0.0);

struct SubstitutabilityReport {
  int trials = 0;        // randomized (priorities, subset) trials executed
  int violations = 0;    // trials where recalibration changed a threshold
  bool substitutable() const { return violations == 0; }
};

// Randomized substitutability verification (the practical form of
// Theorem 6): draws `trials` i.i.d. Uniform(0,1) priority vectors of length
// n, picks random subsets of the realized sample up to `max_subset_size`,
// and checks SubsetSubstitutableHere for each. A rule that passes many
// trials with d-sized subsets is empirically d-substitutable.
SubstitutabilityReport CheckSubstitutability(const ThresholdingRule& rule,
                                             size_t n, int trials,
                                             size_t max_subset_size,
                                             uint64_t seed = 7,
                                             double floor = 0.0);

// Canonical rules used by tests and the ablation bench. Each returns the
// same threshold for every item (broadcast to a vector).

// Bottom-k rule: threshold = (k+1)-th smallest priority (+infinity when
// fewer than k+1 items). Fully substitutable.
ThresholdingRule BottomKRule(size_t k);

// Budget rule of Section 3.1: items sorted by ascending priority are taken
// while cumulative `sizes` fit within `budget`; the threshold is the
// priority of the first item that overflows. Fully substitutable.
ThresholdingRule BudgetRule(std::vector<double> sizes, double budget);

// Sequential "ever in the bottom-k" rule of Section 2.7: item i's threshold
// is the bottom-k threshold of the prefix R_1..R_{i-1} (+infinity for the
// first k items). 1-substitutable but not 2-substitutable.
ThresholdingRule SequentialBottomKRule(size_t k);

// Deliberately non-substitutable rule from Section 2.3: threshold = the
// minimum priority among items whose `group` flag is set (excludes that
// whole group). Used to demonstrate detection of invalid designs.
ThresholdingRule ExcludeGroupRule(std::vector<bool> group);

}  // namespace ats

#endif  // ATS_CORE_RECALIBRATION_H_
