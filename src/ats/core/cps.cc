#include "ats/core/cps.h"

#include <algorithm>
#include <cmath>

#include "ats/util/check.h"

namespace ats {

ConditionalPoissonSampler::ConditionalPoissonSampler(
    std::vector<double> working_probabilities, size_t k)
    : p_(std::move(working_probabilities)), k_(k) {
  ATS_CHECK(k_ >= 1 && k_ <= p_.size());
  for (double p : p_) ATS_CHECK(p > 0.0 && p < 1.0);
  BuildTailTable();
  ATS_CHECK_MSG(tail_[0][k_] > 0.0, "sample size k has zero probability");
}

void ConditionalPoissonSampler::BuildTailTable() {
  const size_t n = p_.size();
  // tail_[i][j], j in [0, min(k, n-i)]: Poisson-binomial tail DP.
  tail_.assign(n + 1, std::vector<double>(k_ + 1, 0.0));
  tail_[n][0] = 1.0;
  for (size_t i = n; i-- > 0;) {
    for (size_t j = 0; j <= k_; ++j) {
      double v = (1.0 - p_[i]) * tail_[i + 1][j];
      if (j > 0) v += p_[i] * tail_[i + 1][j - 1];
      tail_[i][j] = v;
    }
  }
}

std::vector<size_t> ConditionalPoissonSampler::Draw(Xoshiro256& rng) const {
  // Sequential conditional draw: include item i with probability
  //   p_i * P(need-1 of the rest) / P(need of items i..n-1).
  std::vector<size_t> sample;
  sample.reserve(k_);
  size_t need = k_;
  for (size_t i = 0; i < p_.size() && need > 0; ++i) {
    const double denom = tail_[i][need];
    ATS_DCHECK(denom > 0.0);
    const double include = p_[i] * tail_[i + 1][need - 1] / denom;
    if (rng.NextDouble() < include) {
      sample.push_back(i);
      --need;
    }
  }
  ATS_CHECK(need == 0);
  return sample;
}

const std::vector<double>&
ConditionalPoissonSampler::InclusionProbabilities() const {
  if (!inclusion_.empty()) return inclusion_;
  const size_t n = p_.size();
  inclusion_.resize(n);
  // pi_i = p_i * P(k-1 successes among the others) / P(k successes).
  // Leave-one-out counts via a forward DP combined with the tail table:
  // head[j] = P(exactly j of items 0..i-1 included).
  std::vector<double> head(k_ + 1, 0.0);
  head[0] = 1.0;
  const double total = tail_[0][k_];
  for (size_t i = 0; i < n; ++i) {
    // P(k-1 among others) = sum_j head[j] * tail_{i+1}[k-1-j].
    double others = 0.0;
    for (size_t j = 0; j + 1 <= k_; ++j) {
      others += head[j] * tail_[i + 1][k_ - 1 - j];
    }
    inclusion_[i] = p_[i] * others / total;
    // Advance the head DP over item i.
    for (size_t j = k_; j > 0; --j) {
      head[j] = head[j] * (1.0 - p_[i]) + head[j - 1] * p_[i];
    }
    head[0] *= 1.0 - p_[i];
  }
  return inclusion_;
}

std::vector<double> CpsWorkingProbabilities(
    const std::vector<double>& target_inclusion, size_t k, double tol,
    int max_iterations) {
  const size_t n = target_inclusion.size();
  ATS_CHECK(k >= 1 && k <= n);
  double target_sum = 0.0;
  for (double t : target_inclusion) {
    ATS_CHECK(t > 0.0 && t < 1.0);
    target_sum += t;
  }
  ATS_CHECK_MSG(std::abs(target_sum - double(k)) < 1e-6,
                "target inclusion probabilities must sum to k");
  // Fixed point on working probabilities: p <- p * target / realized.
  std::vector<double> p = target_inclusion;
  for (int it = 0; it < max_iterations; ++it) {
    ConditionalPoissonSampler sampler(p, k);
    const auto& realized = sampler.InclusionProbabilities();
    double err = 0.0;
    for (size_t i = 0; i < n; ++i) {
      err = std::max(err, std::abs(realized[i] - target_inclusion[i]));
    }
    if (err < tol) break;
    for (size_t i = 0; i < n; ++i) {
      const double odds = p[i] / (1.0 - p[i]) * target_inclusion[i] /
                          std::max(realized[i], 1e-12);
      p[i] = std::clamp(odds / (1.0 + odds), 1e-9, 1.0 - 1e-9);
    }
  }
  return p;
}

}  // namespace ats
