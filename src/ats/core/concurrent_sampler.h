// Concurrent ingestion tier: internally thread-safe streaming front-ends
// with epoch-snapshot queries and a wait-free writer-local write path.
//
// Everything below tier 4 treats thread-parallelism as the caller's
// problem: ShardedSampler::AddShardBatch is only safe when callers
// hand-partition shards across their own threads, and every query API
// must be quiesced against ingest. ConcurrentSampler<Scenario> closes
// that gap. It owns S shards -- each an ordinary full-capacity sampler
// over a disjoint hash partition of the key space -- and offers two
// write paths plus one read protocol:
//
// Locked write path (Add / AddBatch / AddShardBatch). An ingest call
// partitions its batch into per-shard runs, takes each touched shard's
// stripe lock, feeds the run through the shard's batched ingest path
// (the fused hash->priority->pre-filter pipeline of sample_store.h),
// and release-publishes the shard's mutation epoch into a per-shard
// atomic slot (PublishedEpochs). Distinct shards never contend; two
// writers hitting the same shard serialize only for that run. Shard
// state is always current, so TotalRetained and footprint reads need no
// reconciliation.
//
// Wait-free write path (RegisterWriter). A registered writer owns a
// private block of per-shard mini-samplers (writer_local.h) and ingests
// into it with ZERO shared-state writes except two release-ordered
// atomics: the block mailbox and the writer's epoch counter. No mutex,
// no CAS loop, no contention with other writers or readers -- each
// ingest is a bounded number of steps regardless of what any other
// thread does. The mergeable-sample algebra makes the deferral sound: a
// mini-sampler over a writer's substream merges EXACTLY into the
// authoritative shard (threshold-pruned MergeMany, the same engine the
// cluster tier trusts), so reconciliation can happen lazily at epoch
// boundaries -- a reader that finds the cache dirty drains every
// writer's published block into the shards (Drain() forces the same
// thing deterministically) -- instead of on every batch. Drain order is
// canonical: writers in registration order, shards ascending, so a
// quiesced drain is reproducible.
//
// Reader protocol. A query loads the current snapshot pointer -- a raw
// std::atomic<const SnapshotState*>, genuinely lock-free (statically
// asserted; the previously documented std::atomic<std::shared_ptr>
// scheme was NOT: libstdc++ implements it with a per-object lock, and
// its atomic free functions with a shared mutex pool, so the old "lock-
// free shared_ptr load" claim was false) -- and validates it against
// the published shard epochs and writer epochs with acquire loads. On a
// clean cache the whole read is the pointer load, a refcount upgrade
// through enable_shared_from_this, and O(S + W) atomic compares: no
// lock is ever acquired (the lock-counting probe and the TSan suite pin
// this), so clean reads never block writers and writers never block
// reads. When an epoch moved, ONE reader rebuilds (a rebuild mutex
// serializes rebuilders only): it drains the writer-local blocks,
// copies each shard under that shard's lock -- a locked-path writer
// waits at most the O(k) copy of its own shard, never the merge -- runs
// the threshold-pruned k-way merge over the copies, canonicalizes, and
// publishes the new snapshot. Retired snapshots park in a graveyard
// that is reclaimed only when a seq_cst reader-in-flight counter reads
// zero, so a reader that already loaded the raw pointer can always
// finish its refcount upgrade safely.
//
// Snapshot semantics. Because the per-shard streams are disjoint key
// partitions and every drained mini is a sample of one writer's
// substream prefix, any snapshot is a valid merged sample of a stream
// the system actually ingested -- "epoch consistency". With
// coordinated (hash-derived) priorities the snapshot taken after
// writers quiesce and drain is EXACTLY the single-store sample of the
// concatenated stream (same argument as sharded_sampler.h), which the
// concurrent-equivalence differential tests pin down for both write
// paths. Scenarios that draw priorities from per-sampler RNGs
// (independent-mode bottom-k, window, decay) stay statistically exact
// under writer-local ingest -- every mini generation gets a fresh
// derived seed (WriterLocalSalt), never a replayed stream -- but are
// bit-identical to the sequential reference only for a single
// registered writer's first block generation (salt 0), which is what
// the differential tests use.
//
// Scenarios. The template is instantiated for every sampling scenario
// in the library through small trait structs (routing key, per-shard
// ingest, epoch accessor, k-way merge, mini construction/absorption);
// the concrete front-ends below -- ConcurrentPrioritySampler,
// ConcurrentKmvSketch, ConcurrentWindowSampler, ConcurrentDecaySampler
// -- wrap the existing sharded layouts (same routing salts, same
// per-shard seeds, same merge), so the concurrent and sequential
// front-ends are bit-equivalent over the same per-shard streams.
#ifndef ATS_CORE_CONCURRENT_SAMPLER_H_
#define ATS_CORE_CONCURRENT_SAMPLER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "ats/core/epoch_cache.h"
#include "ats/core/random.h"
#include "ats/core/shard_routing.h"
#include "ats/core/sharded_sampler.h"
#include "ats/core/writer_local.h"
#include "ats/samplers/sliding_window.h"
#include "ats/samplers/time_decay.h"
#include "ats/sketch/kmv.h"
#include "ats/util/check.h"

namespace ats {

namespace internal {

/// lock_guard that counts the acquisition. Every mutex acquisition in
/// the concurrent tier goes through this, so the clean-read probe test
/// can assert that a clean Snapshot() acquires NOTHING.
class CountedLockGuard {
 public:
  CountedLockGuard(std::mutex& mu, std::atomic<uint64_t>& counter)
      : lock_(mu) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::lock_guard<std::mutex> lock_;
};

}  // namespace internal

/// Generic internally thread-safe sharded front-end. `Scenario` is a
/// trait struct binding the template to one sampling scheme:
///
///   struct Scenario {
///     using Shard = ...;    // per-shard sampler (copyable)
///     using Item = ...;     // one ingest record
///     using Merged = ...;   // merged snapshot type
///     struct Config {...};  // construction parameters (k, seed, ...)
///     static constexpr uint64_t kRouteSalt;           // shard routing
///     static Shard MakeShard(const Config&, size_t shard);
///     static Shard MakeLocalShard(const Config&, size_t shard,
///                                 uint64_t writer_salt);  // mini-store
///     static uint64_t RouteKey(const Item&);
///     static size_t Ingest(Shard&, std::span<const Item>);
///     static void AbsorbMany(Shard&, std::span<const Shard* const>);
///     static uint64_t Epoch(const Shard&);  // O(1), non-canonicalizing
///     static Merged MergeShards(const Config&,
///                               std::span<const Shard* const>);
///     static size_t Retained(const Shard&);  // optional
///   };
///
/// Thread-safety contract (every public method unless noted): safe to
/// call from any number of threads concurrently with any other method.
/// Writer handles must not outlive the sampler they were registered on.
template <typename Scenario>
class ConcurrentSampler {
 public:
  using Config = typename Scenario::Config;
  using Item = typename Scenario::Item;
  using Shard = typename Scenario::Shard;
  using Merged = typename Scenario::Merged;

  /// Builds `num_shards` independent shard samplers from `config`.
  /// Construction itself is single-threaded (the object may be shared
  /// across threads once the constructor returns).
  ConcurrentSampler(size_t num_shards, const Config& config)
      : config_(config), published_(num_shards) {
    ATS_CHECK(num_shards >= 1);
    shards_.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      shards_.push_back(
          std::make_unique<ShardSlot>(Scenario::MakeShard(config, s)));
      published_.Publish(s, Scenario::Epoch(shards_.back()->sampler));
    }
  }

  /// Shard index for a routing key. Pure function of immutable state --
  /// safe from any thread, never blocks.
  size_t ShardOf(uint64_t key) const {
    return static_cast<size_t>(HashKey(key, Scenario::kRouteSalt) %
                               shards_.size());
  }

  /// Routes one item to its shard and ingests it under that shard's
  /// lock. Returns the number of accepted items (0 or 1).
  size_t Add(const Item& item) {
    return AddShardBatch(ShardOf(Scenario::RouteKey(item)),
                         std::span<const Item>(&item, 1));
  }

  /// Routed batched ingest: partitions the batch into per-shard runs
  /// (order-preserving), then ingests each run under its shard's lock.
  /// Writers touching disjoint shards proceed in parallel; two writers
  /// hitting the same shard serialize per run. The partition scratch is
  /// thread-local and reused across calls -- steady state performs no
  /// allocation. Returns the number of accepted items.
  size_t AddBatch(std::span<const Item> items) {
    if (shards_.size() == 1) return AddShardBatch(0, items);
    // Per-thread routing scratch, grown to the largest shard count this
    // thread has routed for and retained until thread exit. `touched`
    // lists exactly the runs left non-empty by the previous call, so
    // clearing is O(touched), not O(S).
    static thread_local std::vector<std::vector<Item>> runs;
    static thread_local std::vector<uint32_t> touched;
    if (runs.size() < shards_.size()) runs.resize(shards_.size());
    for (const uint32_t s : touched) runs[s].clear();
    touched.clear();
    for (const Item& item : items) {
      const size_t s = ShardOf(Scenario::RouteKey(item));
      if (runs[s].empty()) touched.push_back(static_cast<uint32_t>(s));
      runs[s].push_back(item);
    }
    size_t accepted = 0;
    for (const uint32_t s : touched) {
      accepted += AddShardBatch(s, runs[s]);
    }
    return accepted;
  }

  /// Feeds a pre-partitioned run straight into one shard under its lock
  /// (the per-thread shard-ownership entry point: S writer threads that
  /// partition upstream never contend at all). Every item must route to
  /// `shard` (checked in debug builds). Returns the accepted count.
  size_t AddShardBatch(size_t shard, std::span<const Item> items) {
    ATS_CHECK(shard < shards_.size());
#ifndef NDEBUG
    for (const Item& item : items) {
      ATS_DCHECK(ShardOf(Scenario::RouteKey(item)) == shard);
    }
#endif
    ShardSlot& slot = *shards_[shard];
    internal::CountedLockGuard lock(slot.mu, lock_acquisitions_);
    const size_t accepted = Scenario::Ingest(slot.sampler, items);
    published_.Publish(shard, Scenario::Epoch(slot.sampler));
    return accepted;
  }

  // --- Wait-free writer-local ingest ----------------------------------

 private:
  // Defined below with the other private types; declared here so the
  // Writer class's member signatures can name it.
  struct Block;

 public:
  class Writer;

  /// Registers a wait-free writer handle. Thread-safe and lock-free;
  /// at most internal::kMaxWriterSlots registrations per sampler
  /// lifetime (slots are never reused). The handle is movable, must be
  /// used by one thread at a time, and must not outlive the sampler.
  /// Destroying the handle retires the writer; anything it published
  /// but was not yet drained is picked up by the next drain -- items
  /// are never lost, even when a writer goes away with pending state.
  Writer RegisterWriter() {
    auto reg = writers_.Register();
    return Writer(this, reg.slot, reg.index);
  }

  /// Merges every registered writer's published mini-stores into the
  /// authoritative shards, deterministically (registration order,
  /// shards ascending). Dirty snapshots trigger the same drain; this
  /// entry point exists so tests and quiesce points can force it.
  /// Thread-safe; never blocks writer-local ingest (writers are
  /// wait-free throughout a drain -- a writer that finds both its block
  /// slots empty simply starts a fresh block).
  void Drain() {
    internal::CountedLockGuard drain(drain_mu_, lock_acquisitions_);
    DrainLocked();
  }

  /// One writer's wait-free ingest handle. Ingest calls perform no
  /// lock acquisition and no shared-state writes except the mailbox
  /// store and the epoch publish (writer_local.h); the per-shard
  /// routing scratch lives in the handle and is reused across calls,
  /// so steady-state ingest (block recycled through the mailbox or
  /// spare slot) performs no allocation at all.
  class Writer {
   public:
    Writer(Writer&& other) noexcept
        : owner_(other.owner_),
          slot_(other.slot_),
          index_(other.index_),
          next_epoch_(other.next_epoch_),
          runs_(std::move(other.runs_)),
          touched_(std::move(other.touched_)) {
      other.slot_ = nullptr;
    }
    Writer(const Writer&) = delete;
    Writer& operator=(const Writer&) = delete;
    Writer& operator=(Writer&&) = delete;

    ~Writer() {
      if (slot_ == nullptr) return;
      // Retire: bump the epoch so the next drain/snapshot re-examines
      // this slot and absorbs anything still sitting in the mailbox.
      slot_->epoch.store(++next_epoch_, std::memory_order_release);
      slot_ = nullptr;
    }

    /// Ingests one item. Returns the number accepted by the
    /// mini-sampler (0 or 1).
    size_t Add(const Item& item) {
      return AddBatch(std::span<const Item>(&item, 1));
    }

    /// Routed batched ingest into this writer's private mini-stores.
    /// Wait-free: no locks, no CAS loops, no waiting on any other
    /// thread. Returns the number of items accepted by the minis (an
    /// upper bound on what survives the drain merge, exactly like a
    /// shard count before the k-way re-cap).
    size_t AddBatch(std::span<const Item> items) {
      ATS_CHECK(slot_ != nullptr);
      if (items.empty()) return 0;
      Block* block = TakeBlock();
      const size_t num_shards = owner_->shards_.size();
      size_t accepted = 0;
      bool changed = false;
      if (num_shards == 1) {
        const uint64_t before = Scenario::Epoch(block->minis[0]);
        accepted = Scenario::Ingest(block->minis[0], items);
        changed = Scenario::Epoch(block->minis[0]) != before;
      } else {
        if (runs_.size() < num_shards) runs_.resize(num_shards);
        for (const uint32_t s : touched_) runs_[s].clear();
        touched_.clear();
        for (const Item& item : items) {
          const size_t s = owner_->ShardOf(Scenario::RouteKey(item));
          if (runs_[s].empty()) {
            touched_.push_back(static_cast<uint32_t>(s));
          }
          runs_[s].push_back(item);
        }
        for (const uint32_t s : touched_) {
          const uint64_t before = Scenario::Epoch(block->minis[s]);
          accepted += Scenario::Ingest(block->minis[s], runs_[s]);
          changed |= Scenario::Epoch(block->minis[s]) != before;
        }
      }
      // Publish the block BEFORE the epoch (both release): a drainer
      // that observes the new epoch and then finds the mailbox
      // non-null is guaranteed to see this batch's minis. The mailbox
      // is necessarily empty here -- only this writer stores into it,
      // and TakeBlock emptied it.
      slot_->mailbox.store(block, std::memory_order_release);
      if (changed) {
        slot_->epoch.store(++next_epoch_, std::memory_order_release);
      }
      return accepted;
    }

   private:
    friend class ConcurrentSampler;
    using Slot = typename internal::WriterLocalRegistry<Block>::Slot;

    Writer(ConcurrentSampler* owner, Slot* slot, size_t index)
        : owner_(owner), slot_(slot), index_(index) {}

    Block* TakeBlock() {
      auto* block = slot_->mailbox.exchange(nullptr,
                                            std::memory_order_acquire);
      if (block == nullptr) {
        block = slot_->spare.exchange(nullptr, std::memory_order_acquire);
      }
      // Both empty only while a drain holds the block: start fresh (the
      // only allocating path; steady state recycles).
      if (block == nullptr) block = owner_->NewBlock(*slot_, index_);
      return block;
    }

    ConcurrentSampler* owner_;
    Slot* slot_;
    size_t index_;
    uint64_t next_epoch_ = 0;
    // Reusable routing scratch (satellite of the same allocation-free
    // discipline as the locked path's thread-local scratch).
    std::vector<std::vector<Item>> runs_;
    std::vector<uint32_t> touched_;
  };

  /// The merged snapshot. Clean cache (no shard epoch and no writer
  /// epoch moved since the cached snapshot was built): a lock-free raw
  /// atomic pointer load, a refcount upgrade, and O(S + W) atomic
  /// epoch compares -- NO lock acquisition (asserted by the
  /// lock-counting probe test), so clean reads never block writers.
  /// Dirty cache: one reader drains the writer-local blocks and
  /// rebuilds (copy each shard under its lock, merge the copies
  /// lock-free, publish) while other readers wait on the rebuild mutex
  /// only. The returned snapshot is immutable and canonicalized: every
  /// const accessor on it is a pure read, so any number of threads may
  /// query one snapshot concurrently. It stays valid (and internally
  /// consistent) for as long as the pointer is held, no matter how much
  /// ingest happens after.
  std::shared_ptr<const Merged> Snapshot() const {
    auto state = AcquireSnapshot();
    if (state == nullptr || !published_.Matches(state->epochs) ||
        !WriterEpochsMatch(state->writer_epochs)) {
      state = RebuildSnapshot();
    }
    // Aliasing pointer: shares ownership of the whole snapshot state,
    // points at the merged sampler inside it.
    return std::shared_ptr<const Merged>(state, &state->merged);
  }

  /// Total items currently retained across the authoritative shards
  /// (>= the merged sample size; the merge re-caps at k). Excludes
  /// writer-local items not yet drained -- call Drain() first for a
  /// full count. Takes each shard's lock in turn, so the total is a
  /// sum of per-shard instants, not one global instant.
  size_t TotalRetained() const
    requires requires(const Shard& s) { Scenario::Retained(s); }
  {
    size_t total = 0;
    for (const auto& slot : shards_) {
      internal::CountedLockGuard lock(slot->mu, lock_acquisitions_);
      total += Scenario::Retained(slot->sampler);
    }
    return total;
  }

  size_t num_shards() const { return shards_.size(); }
  const Config& config() const { return config_; }

  /// Live heap bytes across the shard slots plus the currently
  /// published snapshot (util/memory.h convention). Excludes
  /// writer-local blocks in flight (they are private to their writer or
  /// the drainer and cannot be inspected safely). Takes each shard's
  /// lock in turn -- like TotalRetained, the total is a sum of
  /// per-shard instants, not one global instant. Thread-safe like every
  /// other public method.
  size_t MemoryFootprint() const {
    size_t total = shards_.size() * sizeof(ShardSlot);
    for (const auto& slot : shards_) {
      internal::CountedLockGuard lock(slot->mu, lock_acquisitions_);
      total += slot->sampler.MemoryFootprint();
    }
    const auto state = AcquireSnapshot();
    if (state != nullptr) {
      total += state->merged.MemoryFootprint() +
               (state->epochs.size() + state->writer_epochs.size()) *
                   sizeof(uint64_t);
    }
    return total;
  }

  // --- Introspection probes (tests) ------------------------------------

  /// Total mutex acquisitions ever performed by this sampler, across
  /// every path (shard stripes, rebuild, drain). The clean-read probe
  /// test asserts this does not move across clean Snapshot() calls.
  uint64_t LockAcquisitionsForTest() const {
    return lock_acquisitions_.load(std::memory_order_relaxed);
  }

  /// Runtime confirmation that the snapshot publication pointer is
  /// lock-free on this platform (the static_assert below pins the
  /// platforms we compile for; this is the belt to that suspender).
  bool SnapshotPublicationIsLockFree() const {
    return current_.is_lock_free() && readers_in_flight_.is_lock_free();
  }

 private:
  /// One shard behind its stripe lock. Heap-allocated (stable address,
  /// std::mutex is immovable) and cache-line aligned so two shards'
  /// lock words never share a line.
  struct alignas(64) ShardSlot {
    explicit ShardSlot(Shard s) : sampler(std::move(s)) {}
    mutable std::mutex mu;
    Shard sampler;
  };

  /// One writer's private per-shard mini-samplers. minis[s] is dirty
  /// iff its epoch moved off base_epochs[s] (recorded at construction /
  /// reset), so the drain skips untouched shards without any flags.
  struct Block {
    std::vector<Shard> minis;
    std::vector<uint64_t> base_epochs;
  };

  /// An immutable published snapshot: the merged sampler plus the
  /// shard- and writer-epoch vectors it was built at (the validation
  /// tokens). enable_shared_from_this is what lets a reader upgrade
  /// the raw published pointer back to shared ownership without any
  /// atomic<shared_ptr> machinery.
  struct SnapshotState : std::enable_shared_from_this<SnapshotState> {
    SnapshotState(Merged m, std::vector<uint64_t> e,
                  std::vector<uint64_t> w)
        : merged(std::move(m)),
          epochs(std::move(e)),
          writer_epochs(std::move(w)) {}
    Merged merged;
    std::vector<uint64_t> epochs;
    std::vector<uint64_t> writer_epochs;
  };

  // The publication scheme exists to fix the non-lock-free
  // atomic<shared_ptr>; it had better be lock-free itself.
  static_assert(std::atomic<const SnapshotState*>::is_always_lock_free,
                "snapshot publication must be lock-free");
  static_assert(std::atomic<uint64_t>::is_always_lock_free,
                "epoch publication must be lock-free");

  /// Lock-free snapshot acquisition: announce the read (seq_cst), load
  /// the raw pointer (seq_cst), upgrade to shared ownership, retract.
  /// The seq_cst store-load pairing with PublishCurrent/TryReclaim is
  /// what makes the upgrade safe: a reclaimer that observed zero
  /// readers in flight is guaranteed (in the single total order) that
  /// any later reader's pointer load sees the CURRENT snapshot, never
  /// a graveyard entry -- so no reader ever upgrades a pointer whose
  /// control block could be mid-destruction.
  std::shared_ptr<const SnapshotState> AcquireSnapshot() const {
    readers_in_flight_.fetch_add(1, std::memory_order_seq_cst);
    const SnapshotState* raw = current_.load(std::memory_order_seq_cst);
    std::shared_ptr<const SnapshotState> state;
    if (raw != nullptr) state = raw->weak_from_this().lock();
    readers_in_flight_.fetch_sub(1, std::memory_order_release);
    return state;
  }

  /// True iff every registered writer's published epoch equals the
  /// snapshot's recorded (fully drained) epoch. Lock-free.
  bool WriterEpochsMatch(const std::vector<uint64_t>& snap) const {
    const size_t n = writers_.count();
    if (snap.size() != n) return false;
    for (size_t w = 0; w < n; ++w) {
      if (writers_.slot(w).epoch.load(std::memory_order_acquire) !=
          snap[w]) {
        return false;
      }
    }
    return true;
  }

  /// Allocates a fresh block for `slot` with generation-salted minis
  /// (see WriterLocalSalt: generation 0 of writer 0 mirrors the
  /// authoritative shard seeds exactly).
  Block* NewBlock(typename internal::WriterLocalRegistry<Block>::Slot& slot,
                  size_t writer_index) const {
    const uint64_t generation =
        slot.generation.fetch_add(1, std::memory_order_relaxed);
    const uint64_t salt =
        internal::WriterLocalSalt(writer_index, generation);
    auto block = std::make_unique<Block>();
    block->minis.reserve(shards_.size());
    block->base_epochs.reserve(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      block->minis.push_back(Scenario::MakeLocalShard(config_, s, salt));
      block->base_epochs.push_back(Scenario::Epoch(block->minis.back()));
    }
    return block.release();
  }

  /// Drains every writer's published block into the authoritative
  /// shards through the threshold-pruned MergeMany engine. Requires
  /// drain_mu_. Wait-free for writers throughout: the only
  /// writer-shared state touched is the mailbox/spare exchanges.
  void DrainLocked() const {
    const size_t writer_count = writers_.count();
    if (writer_count == 0) return;
    auto& taken = drain_taken_;
    taken.clear();
    for (size_t w = 0; w < writer_count; ++w) {
      auto& slot = writers_.slot(w);
      const uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
      if (epoch == slot.drained_epoch) continue;
      Block* block =
          slot.mailbox.exchange(nullptr, std::memory_order_acquire);
      // Null mailbox: the writer is mid-batch holding the block. Its
      // items ride in that block and will be re-published, so leaving
      // drained_epoch stale (and the snapshot dirty) until the next
      // drain loses nothing. Only a captured block justifies recording
      // the epoch as absorbed.
      if (block == nullptr) continue;
      slot.drained_epoch = epoch;
      taken.push_back(TakenBlock{block, w});
    }
    if (taken.empty()) return;
    // Shards ascending, and per shard the minis in writer-registration
    // order: the canonical drain order (MergeMany is observationally
    // a fold in span order, so a quiesced drain is reproducible).
    auto& minis = drain_minis_;
    for (size_t s = 0; s < shards_.size(); ++s) {
      minis.clear();
      for (const TakenBlock& t : taken) {
        if (Scenario::Epoch(t.block->minis[s]) != t.block->base_epochs[s]) {
          minis.push_back(&t.block->minis[s]);
        }
      }
      if (minis.empty()) continue;
      ShardSlot& shard = *shards_[s];
      internal::CountedLockGuard lock(shard.mu, lock_acquisitions_);
      Scenario::AbsorbMany(shard.sampler, minis);
      published_.Publish(s, Scenario::Epoch(shard.sampler));
    }
    // Reset the drained minis with fresh generation salts (a reused
    // RNG stream would replay its draws) and recycle the blocks
    // through the spare slots.
    for (const TakenBlock& t : taken) {
      auto& slot = writers_.slot(t.writer);
      const uint64_t generation =
          slot.generation.fetch_add(1, std::memory_order_relaxed);
      const uint64_t salt =
          internal::WriterLocalSalt(t.writer, generation);
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (Scenario::Epoch(t.block->minis[s]) == t.block->base_epochs[s]) {
          continue;  // untouched mini: keep it (and its unused RNG)
        }
        t.block->minis[s] = Scenario::MakeLocalShard(config_, s, salt);
        t.block->base_epochs[s] = Scenario::Epoch(t.block->minis[s]);
      }
      Block* prev =
          slot.spare.exchange(t.block, std::memory_order_acq_rel);
      // A previous spare the writer never picked up is redundant now.
      delete prev;
    }
  }

  std::shared_ptr<const SnapshotState> RebuildSnapshot() const {
    internal::CountedLockGuard rebuild(rebuild_mu_, lock_acquisitions_);
    // Double-check under the rebuild lock: another reader may have
    // published a fresh snapshot while this one waited.
    if (current_owner_ != nullptr &&
        published_.Matches(current_owner_->epochs) &&
        WriterEpochsMatch(current_owner_->writer_epochs)) {
      return current_owner_;
    }
    TryReclaimRetired();
    std::vector<Shard> copies;
    copies.reserve(shards_.size());
    std::vector<uint64_t> epochs;
    epochs.reserve(shards_.size());
    std::vector<uint64_t> writer_epochs;
    {
      internal::CountedLockGuard drain(drain_mu_, lock_acquisitions_);
      DrainLocked();
      // Record what the drain actually absorbed: a writer caught
      // mid-batch keeps drained < published, which leaves the new
      // snapshot conservatively dirty until its batch is drained.
      const size_t writer_count = writers_.count();
      writer_epochs.reserve(writer_count);
      for (size_t w = 0; w < writer_count; ++w) {
        writer_epochs.push_back(writers_.slot(w).drained_epoch);
      }
      // Copy each shard under its own lock -- a locked-path writer is
      // blocked at most for the O(k) copy of its shard, never for the
      // merge -- recording the epoch the copy is consistent with.
      for (const auto& slot : shards_) {
        internal::CountedLockGuard lock(slot->mu, lock_acquisitions_);
        epochs.push_back(Scenario::Epoch(slot->sampler));
        copies.push_back(slot->sampler);
      }
    }
    // Merge the copies lock-free (the threshold-pruned k-way engine via
    // the scenario), then publish.
    std::vector<const Shard*> inputs;
    inputs.reserve(copies.size());
    for (const Shard& copy : copies) inputs.push_back(&copy);
    auto next = std::make_shared<SnapshotState>(
        Scenario::MergeShards(config_, inputs), std::move(epochs),
        std::move(writer_epochs));
    PublishCurrent(next);
    return next;
  }

  /// Publishes `next` as the current snapshot. Requires rebuild_mu_.
  /// The displaced snapshot parks in the graveyard until no reader is
  /// mid-acquisition (see AcquireSnapshot for the seq_cst argument).
  void PublishCurrent(std::shared_ptr<const SnapshotState> next) const {
    if (current_owner_ != nullptr) {
      graveyard_.push_back(std::move(current_owner_));
    }
    current_owner_ = std::move(next);
    current_.store(current_owner_.get(), std::memory_order_seq_cst);
    TryReclaimRetired();
  }

  /// Drops graveyard references when no reader is between its
  /// in-flight announcement and its pointer upgrade. Requires
  /// rebuild_mu_ (graveyard entries are non-current by construction,
  /// so a reader observed NOT in flight can only ever load the current
  /// snapshot). The graveyard grows only while readers are
  /// continuously mid-acquisition across rebuilds, which bounds it by
  /// the rebuild rate, not the read rate.
  void TryReclaimRetired() const {
    if (!graveyard_.empty() &&
        readers_in_flight_.load(std::memory_order_seq_cst) == 0) {
      graveyard_.clear();
    }
  }

  struct TakenBlock {
    Block* block;
    size_t writer;
  };

  Config config_;
  std::vector<std::unique_ptr<ShardSlot>> shards_;
  /// Per-shard atomic epochs (the lock-free cache validation); see
  /// epoch_cache.h. Mutable: a drain triggered from a const Snapshot()
  /// republishes shard epochs.
  mutable PublishedEpochs published_;
  /// Writer-local registration and block-handoff state.
  mutable internal::WriterLocalRegistry<Block> writers_;
  /// Serializes snapshot rebuilds (readers only; writers never take it).
  mutable std::mutex rebuild_mu_;
  /// Serializes drains (a rebuilding reader or an explicit Drain()).
  mutable std::mutex drain_mu_;
  /// Drain scratch, guarded by drain_mu_ (reused across drains).
  mutable std::vector<TakenBlock> drain_taken_;
  mutable std::vector<const Shard*> drain_minis_;
  /// The lock-free publication pair: the raw current-snapshot pointer
  /// and the reader-in-flight counter (see AcquireSnapshot).
  mutable std::atomic<const SnapshotState*> current_{nullptr};
  mutable std::atomic<uint64_t> readers_in_flight_{0};
  /// Owning reference to the current snapshot and the retired ones a
  /// mid-acquisition reader might still upgrade. Guarded by rebuild_mu_.
  mutable std::shared_ptr<const SnapshotState> current_owner_;
  mutable std::vector<std::shared_ptr<const SnapshotState>> graveyard_;
  /// Every mutex acquisition anywhere in this sampler (probe).
  mutable std::atomic<uint64_t> lock_acquisitions_{0};
};

namespace internal {

/// Scenario: weighted bottom-k priority sampling (the ShardedSampler
/// shard layout -- same per-shard seeds, same merge).
struct PriorityScenario {
  struct Config {
    size_t k;
    bool coordinated;
    uint64_t seed;
  };
  using Shard = PrioritySampler;
  using Item = PrioritySampler::Item;
  using Merged = BottomK<Item>;
  static constexpr uint64_t kRouteSalt = kShardRouteSalt;
  static Shard MakeShard(const Config& config, size_t shard) {
    return PrioritySampler(config.k,
                           config.seed + kShardSeedStride * shard,
                           config.coordinated);
  }
  static Shard MakeLocalShard(const Config& config, size_t shard,
                              uint64_t writer_salt) {
    return PrioritySampler(
        config.k, config.seed + kShardSeedStride * shard + writer_salt,
        config.coordinated);
  }
  static uint64_t RouteKey(const Item& item) { return item.key; }
  static size_t Ingest(Shard& shard, std::span<const Item> items) {
    return shard.AddBatch(items);
  }
  static void AbsorbMany(Shard& into,
                         std::span<const Shard* const> minis) {
    into.MergeMany(minis);
  }
  static uint64_t Epoch(const Shard& shard) {
    return shard.sketch().store().mutation_epoch();
  }
  static size_t Retained(const Shard& shard) { return shard.size(); }
  static Merged MergeShards(const Config& config,
                            std::span<const Shard* const> shards);
};

/// Scenario: KMV/Theta distinct counting. Every shard -- and every
/// writer-local mini -- hashes with the SAME salt (coordinated by
/// construction), so duplicate keys ingested by different writers
/// collapse at the drain merge (duplicate priorities are duplicate
/// keys) and the merged union is exactly the single-sketch union.
struct KmvScenario {
  struct Config {
    size_t k;
    uint64_t hash_salt;
  };
  using Shard = KmvSketch;
  using Item = uint64_t;
  using Merged = KmvSketch;
  static constexpr uint64_t kRouteSalt = kShardRouteSalt;
  static Shard MakeShard(const Config& config, size_t /*shard*/) {
    return KmvSketch(config.k, /*initial_threshold=*/1.0,
                     config.hash_salt);
  }
  static Shard MakeLocalShard(const Config& config, size_t shard,
                              uint64_t /*writer_salt*/) {
    return MakeShard(config, shard);  // hash-coordinated: salt-free
  }
  static uint64_t RouteKey(uint64_t key) { return key; }
  static size_t Ingest(Shard& shard, std::span<const uint64_t> keys) {
    return shard.AddKeys(keys);
  }
  static void AbsorbMany(Shard& into,
                         std::span<const Shard* const> minis) {
    into.MergeMany(minis);
  }
  static uint64_t Epoch(const Shard& shard) {
    return shard.store().mutation_epoch();
  }
  static size_t Retained(const Shard& shard) { return shard.size(); }
  static Merged MergeShards(const Config& config,
                            std::span<const Shard* const> shards);
};

/// Scenario: sliding-window sampling (the ShardedWindowSampler shard
/// layout). Per SAMPLER, arrival times must be non-decreasing. On the
/// locked path that means: one routing writer, or several writers
/// owning disjoint shards (AddShardBatch) each in time order -- two
/// routed locked writers interleave whole runs per shard and can hand
/// a shard out-of-order times (tolerated silently; the sample would be
/// quietly biased). The WRITER-LOCAL path has no such footgun: each
/// mini sees exactly one writer's arrivals in that writer's own order,
/// so any number of registered writers is valid as long as each one's
/// own stream is time-ordered; the drain merge handles cross-writer
/// time skew the same way the cluster merge does.
struct WindowScenario {
  struct Config {
    size_t k;
    double window;
    uint64_t seed;
  };
  struct Arrival {
    double time;
    uint64_t id;
  };
  using Shard = SlidingWindowSampler;
  using Item = Arrival;
  using Merged = SlidingWindowSampler;
  static constexpr uint64_t kRouteSalt = kTimeAxisRouteSalt;
  static Shard MakeShard(const Config& config, size_t shard) {
    return SlidingWindowSampler(config.k, config.window,
                                config.seed + kShardSeedStride * shard);
  }
  static Shard MakeLocalShard(const Config& config, size_t shard,
                              uint64_t writer_salt) {
    return SlidingWindowSampler(
        config.k, config.window,
        config.seed + kShardSeedStride * shard + writer_salt);
  }
  static uint64_t RouteKey(const Arrival& arrival) { return arrival.id; }
  static size_t Ingest(Shard& shard, std::span<const Arrival> items) {
    size_t stored = 0;
    for (const Arrival& a : items) {
      stored += shard.Arrive(a.time, a.id) ? 1 : 0;
    }
    return stored;
  }
  static void AbsorbMany(Shard& into,
                         std::span<const Shard* const> minis) {
    into.MergeMany(minis);
  }
  static uint64_t Epoch(const Shard& shard) {
    return shard.mutation_epoch();
  }
  static Merged MergeShards(const Config& config,
                            std::span<const Shard* const> shards);
};

/// Scenario: time-decayed sampling (the ShardedDecaySampler shard
/// layout). Per SAMPLER, item times must be non-decreasing -- the same
/// ingest-pattern contract as WindowScenario, with the same resolution:
/// writer-local ingest makes any number of registered writers valid
/// (each mini sees one writer's own time order), while the locked
/// routed path requires one writer or disjoint shard ownership. (The
/// keyed scenarios have no such constraint: any number of writers on
/// either path is always valid for bottom-k and KMV.)
struct DecayScenario {
  struct Config {
    size_t k;
    uint64_t seed;
  };
  using Shard = TimeDecaySampler;
  using Item = TimeDecaySampler::TimedItem;
  using Merged = TimeDecaySampler;
  static constexpr uint64_t kRouteSalt = kTimeAxisRouteSalt;
  static Shard MakeShard(const Config& config, size_t shard) {
    return TimeDecaySampler(config.k,
                            config.seed + kShardSeedStride * shard);
  }
  static Shard MakeLocalShard(const Config& config, size_t shard,
                              uint64_t writer_salt) {
    return TimeDecaySampler(
        config.k, config.seed + kShardSeedStride * shard + writer_salt);
  }
  static uint64_t RouteKey(const Item& item) { return item.key; }
  static size_t Ingest(Shard& shard, std::span<const Item> items) {
    return shard.AddBatch(items);
  }
  static void AbsorbMany(Shard& into,
                         std::span<const Shard* const> minis) {
    into.MergeMany(minis);
  }
  static uint64_t Epoch(const Shard& shard) {
    return shard.mutation_epoch();
  }
  static size_t Retained(const Shard& shard) { return shard.size(); }
  static Merged MergeShards(const Config& config,
                            std::span<const Shard* const> shards);
};

}  // namespace internal

// Instantiated once in concurrent_sampler.cc; the concrete front-ends
// below are the intended entry points.
extern template class ConcurrentSampler<internal::PriorityScenario>;
extern template class ConcurrentSampler<internal::KmvScenario>;
extern template class ConcurrentSampler<internal::WindowScenario>;
extern template class ConcurrentSampler<internal::DecayScenario>;

/// Internally thread-safe weighted bottom-k (priority sampling)
/// front-end: the concurrent counterpart of ShardedSampler, with the
/// identical shard layout. With coordinated priorities (the default)
/// the merged snapshot after writers quiesce (and drain, for
/// writer-local ingest) is EXACTLY the single-store sample of the
/// concatenated stream -- on both write paths.
class ConcurrentPrioritySampler {
 public:
  using Item = PrioritySampler::Item;
  using MergedSample = ShardedSampler::MergedSample;
  using Writer = ConcurrentSampler<internal::PriorityScenario>::Writer;

  /// num_shards: lock stripes / independent shard samplers. k: sample
  /// capacity of every shard and of the merged sample. `coordinated`
  /// selects hash-derived priorities (required for exact single-store
  /// equivalence); `seed` drives per-shard RNGs in independent mode.
  ConcurrentPrioritySampler(size_t num_shards, size_t k,
                            bool coordinated = true, uint64_t seed = 1);

  /// Shard index for a key. Thread-safe, never blocks.
  size_t ShardOf(uint64_t key) const;

  /// Ingests one weighted item under its shard's lock. Thread-safe
  /// against all other methods.
  void Add(uint64_t key, double weight);

  /// Routed batched ingest (see ConcurrentSampler::AddBatch).
  /// Thread-safe against all other methods; returns the accepted count.
  size_t AddBatch(std::span<const Item> items);

  /// Pre-partitioned single-shard ingest: the zero-contention entry
  /// point for writers that partition upstream. Thread-safe; every item
  /// must route to `shard` (checked in debug builds).
  size_t AddShardBatch(size_t shard, std::span<const Item> items);

  /// Registers a wait-free writer-local ingest handle (see
  /// ConcurrentSampler::RegisterWriter). Thread-safe.
  Writer RegisterWriter();

  /// Deterministically merges all published writer-local mini-stores
  /// into the shards (see ConcurrentSampler::Drain). Thread-safe.
  void Drain();

  /// Merged sample + threshold from one epoch-consistent snapshot.
  /// Thread-safe; clean-cache calls acquire no lock and never block
  /// writers.
  MergedSample Merged() const;

  /// Merged sample entries only (one snapshot). Thread-safe.
  std::vector<SampleEntry> Sample() const;

  /// Merged adaptive threshold only (one snapshot). Thread-safe.
  double MergedThreshold() const;

  /// The epoch-consistent merged bottom-k snapshot itself; immutable
  /// and safely shareable across reader threads. Thread-safe.
  std::shared_ptr<const BottomK<Item>> Snapshot() const;

  /// Items retained across shards (per-shard instants; excludes
  /// undrained writer-local items). Thread-safe.
  size_t TotalRetained() const;

  /// Live heap bytes across shards plus the published snapshot, per
  /// util/memory.h. Thread-safe (sum of per-shard instants, like
  /// TotalRetained).
  size_t MemoryFootprint() const { return core_.MemoryFootprint(); }

  /// Probes (tests): total mutex acquisitions, and the runtime
  /// lock-freedom check on the snapshot publication atomics.
  uint64_t LockAcquisitionsForTest() const {
    return core_.LockAcquisitionsForTest();
  }
  bool SnapshotPublicationIsLockFree() const {
    return core_.SnapshotPublicationIsLockFree();
  }

  size_t num_shards() const { return core_.num_shards(); }
  size_t k() const { return core_.config().k; }

 private:
  ConcurrentSampler<internal::PriorityScenario> core_;
};

/// Internally thread-safe KMV distinct-counting front-end (and, through
/// KMV's theta duality, the concurrent entry point for Theta-style
/// distinct unions): shards share one hash salt, so the merged snapshot
/// is exactly the single-sketch union of the concatenated key stream --
/// on both write paths (writer-local duplicates collapse at the drain).
class ConcurrentKmvSketch {
 public:
  using Writer = ConcurrentSampler<internal::KmvScenario>::Writer;

  ConcurrentKmvSketch(size_t num_shards, size_t k, uint64_t hash_salt = 0);

  /// Shard index for a key. Thread-safe, never blocks.
  size_t ShardOf(uint64_t key) const;

  /// Ingests one key under its shard's lock. Thread-safe.
  void AddKey(uint64_t key);

  /// Routed batched ingest through each shard's fused hash pipeline.
  /// Thread-safe; returns the number of accepted priorities.
  size_t AddKeys(std::span<const uint64_t> keys);

  /// Pre-partitioned single-shard ingest. Thread-safe.
  size_t AddShardKeys(size_t shard, std::span<const uint64_t> keys);

  /// Wait-free writer-local ingest handle. Thread-safe.
  Writer RegisterWriter();

  /// Merges all published writer-local mini-sketches. Thread-safe.
  void Drain();

  /// Unbiased distinct-count estimate from one snapshot. Thread-safe.
  double Estimate() const;

  /// Merged threshold theta from one snapshot. Thread-safe.
  double Threshold() const;

  /// Retained distinct priorities in the merged snapshot. Thread-safe.
  size_t MergedSize() const;

  /// The epoch-consistent merged sketch; immutable, shareable across
  /// readers. Thread-safe.
  std::shared_ptr<const KmvSketch> Snapshot() const;

  /// Retained priorities across shards (>= MergedSize; excludes
  /// undrained writer-local priorities). Thread-safe.
  size_t TotalRetained() const;

  /// Live heap bytes across shards plus the published snapshot, per
  /// util/memory.h. Thread-safe (sum of per-shard instants, like
  /// TotalRetained).
  size_t MemoryFootprint() const { return core_.MemoryFootprint(); }

  /// Probes (tests); see ConcurrentPrioritySampler.
  uint64_t LockAcquisitionsForTest() const {
    return core_.LockAcquisitionsForTest();
  }
  bool SnapshotPublicationIsLockFree() const {
    return core_.SnapshotPublicationIsLockFree();
  }

  size_t num_shards() const { return core_.num_shards(); }
  size_t k() const { return core_.config().k; }

 private:
  ConcurrentSampler<internal::KmvScenario> core_;
};

/// Internally thread-safe sliding-window front-end: the concurrent
/// counterpart of ShardedWindowSampler (identical shard layout, seeds,
/// and merge). Arrival times must be non-decreasing PER SAMPLER. On
/// the locked path that leaves two safe ingest patterns: a SINGLE
/// thread driving the routed Arrive/AddBatch, or several writers
/// owning DISJOINT shards via AddShardBatch (each feeding its shards
/// in time order). The writer-local path (RegisterWriter) lifts the
/// restriction: each registered writer's mini-samplers see only that
/// writer's arrivals in its own order, so any number of concurrent
/// registered writers is valid provided each one's own stream is
/// time-ordered. Queries evaluate one epoch-consistent snapshot at
/// `now` on a private O(k) copy (window queries advance expiry, so the
/// shared snapshot itself is never mutated); `now` should be >= the
/// times already ingested, as with the sequential sampler.
class ConcurrentWindowSampler {
 public:
  using Arrival = internal::WindowScenario::Arrival;
  using Writer = ConcurrentSampler<internal::WindowScenario>::Writer;

  ConcurrentWindowSampler(size_t num_shards, size_t k, double window,
                          uint64_t seed = 1);

  /// Shard index for an item id. Thread-safe, never blocks.
  size_t ShardOf(uint64_t id) const;

  /// Ingests one arrival under its shard's lock. Thread-safe; returns
  /// true iff the item was stored.
  bool Arrive(double time, uint64_t id);

  /// Routed batched ingest (order-preserving per shard). Thread-safe.
  size_t AddBatch(std::span<const Arrival> arrivals);

  /// Pre-partitioned single-shard ingest. Thread-safe.
  size_t AddShardBatch(size_t shard, std::span<const Arrival> arrivals);

  /// Wait-free writer-local ingest handle; the writer's own arrivals
  /// must be time-ordered. Thread-safe.
  Writer RegisterWriter();

  /// Merges all published writer-local mini-samplers. Thread-safe.
  void Drain();

  /// Improved final threshold of the merged windowed sample at `now`.
  /// Thread-safe.
  double ImprovedThreshold(double now) const;

  /// G&L final threshold of the merged windowed sample at `now`.
  /// Thread-safe.
  double GlThreshold(double now) const;

  /// Merged samples under each final threshold at `now`. Thread-safe.
  std::vector<SampleEntry> ImprovedSample(double now) const;
  std::vector<SampleEntry> GlSample(double now) const;

  /// Stored items (current + expired) in the merged snapshot at `now`.
  /// Thread-safe.
  size_t MergedStoredCount(double now) const;

  /// The epoch-consistent merged window sampler. Immutable: query it by
  /// copying (queries advance expiry). Thread-safe.
  std::shared_ptr<const SlidingWindowSampler> Snapshot() const;

  /// Live heap bytes across shards plus the published snapshot, per
  /// util/memory.h. Thread-safe (sum of per-shard instants, like
  /// TotalRetained).
  size_t MemoryFootprint() const { return core_.MemoryFootprint(); }

  /// Probes (tests); see ConcurrentPrioritySampler.
  uint64_t LockAcquisitionsForTest() const {
    return core_.LockAcquisitionsForTest();
  }
  bool SnapshotPublicationIsLockFree() const {
    return core_.SnapshotPublicationIsLockFree();
  }

  size_t num_shards() const { return core_.num_shards(); }
  size_t k() const { return core_.config().k; }
  double window() const { return core_.config().window; }

 private:
  ConcurrentSampler<internal::WindowScenario> core_;
};

/// Internally thread-safe time-decay front-end: the concurrent
/// counterpart of ShardedDecaySampler (identical shard layout, seeds,
/// and merge). Per sampler, item times must be non-decreasing -- the
/// same ingest-pattern contract as ConcurrentWindowSampler, with the
/// same writer-local resolution: registered writers each feed their own
/// time-ordered stream, in any number, concurrently.
class ConcurrentDecaySampler {
 public:
  using TimedItem = TimeDecaySampler::TimedItem;
  using Writer = ConcurrentSampler<internal::DecayScenario>::Writer;

  ConcurrentDecaySampler(size_t num_shards, size_t k, uint64_t seed = 1);

  /// Shard index for a key. Thread-safe, never blocks.
  size_t ShardOf(uint64_t key) const;

  /// Ingests one item under its shard's lock. Thread-safe; returns true
  /// iff the item was accepted below the shard's acceptance bound.
  bool Add(uint64_t key, double weight, double value, double time);

  /// Routed batched ingest (order-preserving per shard). Thread-safe.
  size_t AddBatch(std::span<const TimedItem> items);

  /// Pre-partitioned single-shard ingest. Thread-safe.
  size_t AddShardBatch(size_t shard, std::span<const TimedItem> items);

  /// Wait-free writer-local ingest handle; the writer's own items must
  /// be time-ordered. Thread-safe.
  Writer RegisterWriter();

  /// Merges all published writer-local mini-samplers. Thread-safe.
  void Drain();

  /// Merged adaptive threshold on the log-key scale, from one snapshot.
  /// Thread-safe.
  double LogKeyThreshold() const;

  /// Merged decayed sample at `now` (>= every ingested time), from one
  /// snapshot. Thread-safe.
  std::vector<TimeDecaySampler::DecayedEntry> SampleAt(double now) const;

  /// HT estimate of the decayed total at `now`, from one snapshot.
  /// Thread-safe.
  double EstimateDecayedTotal(double now) const;

  /// The epoch-consistent merged decay sampler; immutable and pure-read
  /// queryable across threads. Thread-safe.
  std::shared_ptr<const TimeDecaySampler> Snapshot() const;

  /// Items retained across shards (per-shard instants; excludes
  /// undrained writer-local items). Thread-safe.
  size_t TotalRetained() const;

  /// Live heap bytes across shards plus the published snapshot, per
  /// util/memory.h. Thread-safe (sum of per-shard instants, like
  /// TotalRetained).
  size_t MemoryFootprint() const { return core_.MemoryFootprint(); }

  /// Probes (tests); see ConcurrentPrioritySampler.
  uint64_t LockAcquisitionsForTest() const {
    return core_.LockAcquisitionsForTest();
  }
  bool SnapshotPublicationIsLockFree() const {
    return core_.SnapshotPublicationIsLockFree();
  }

  size_t num_shards() const { return core_.num_shards(); }
  size_t k() const { return core_.config().k; }

 private:
  ConcurrentSampler<internal::DecayScenario> core_;
};

}  // namespace ats

#endif  // ATS_CORE_CONCURRENT_SAMPLER_H_
