// Concurrent ingestion tier: internally thread-safe streaming front-ends
// with epoch-snapshot queries.
//
// Everything below tier 4 treats thread-parallelism as the caller's
// problem: ShardedSampler::AddShardBatch is only safe when callers
// hand-partition shards across their own threads, and every query API
// must be quiesced against ingest. ConcurrentSampler<Scenario> closes
// that gap. It owns S shards -- each an ordinary full-capacity sampler
// over a disjoint hash partition of the key space -- behind
// thread-striped shard locks (one stripe per shard), so any number of
// writer threads may ingest through the routing entry points
// concurrently, and it serves readers CONSISTENT merged snapshots
// through an atomic epoch protocol layered on the mutation-epoch merge
// cache the sequential front-ends already use (epoch_cache.h).
//
// Writer protocol. An ingest call partitions its batch into per-shard
// runs, then takes each touched shard's lock, feeds the run through the
// shard's batched ingest path (the fused hash->priority->pre-filter
// pipeline of sample_store.h), reads the shard's mutation epoch under
// the lock, and release-publishes it into a per-shard atomic slot
// (PublishedEpochs). Distinct shards never contend; two writers hitting
// the same shard serialize only for that run.
//
// Reader protocol. A query loads the current snapshot (an immutable,
// shared merged sampler plus the per-shard epoch vector it was built
// at) and validates it against the published atomic epochs WITHOUT
// touching any lock: on a clean cache, reads never block writers and
// writers never block reads. When some epoch moved, ONE reader rebuilds
// (a rebuild mutex serializes readers only): it copies each shard's
// state under that shard's lock -- a writer waits at most the O(k) copy
// of its own shard, never the merge -- then runs the threshold-pruned
// k-way merge over the copies lock-free, canonicalizes the result so
// every subsequent accessor is a pure read, and atomically publishes
// the new snapshot.
//
// Snapshot semantics. Because the per-shard streams are disjoint key
// partitions, any combination of per-shard prefixes IS a valid prefix
// of some interleaving of the writers' streams, so every snapshot is a
// valid merged sample of a stream the system actually ingested --
// "epoch consistency". With coordinated priorities the snapshot taken
// after writers quiesce is EXACTLY the single-store sample of the
// concatenated stream (same argument as sharded_sampler.h), which is
// what the concurrent-equivalence differential tests pin down.
//
// Scenarios. The template is instantiated for every sampling scenario
// in the library through small trait structs (routing key, per-shard
// ingest, epoch accessor, k-way merge); the concrete front-ends below
// -- ConcurrentPrioritySampler (bottom-k / weighted priority sampling),
// ConcurrentKmvSketch (KMV/Theta distinct counting),
// ConcurrentWindowSampler, ConcurrentDecaySampler -- wrap the existing
// ShardedSampler / ShardedWindowSampler / ShardedDecaySampler shard
// layouts (same routing salts, same per-shard seeds, same merge), so
// the concurrent and sequential front-ends are bit-equivalent over the
// same per-shard streams.
#ifndef ATS_CORE_CONCURRENT_SAMPLER_H_
#define ATS_CORE_CONCURRENT_SAMPLER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "ats/core/epoch_cache.h"
#include "ats/core/random.h"
#include "ats/core/shard_routing.h"
#include "ats/core/sharded_sampler.h"
#include "ats/samplers/sliding_window.h"
#include "ats/samplers/time_decay.h"
#include "ats/sketch/kmv.h"
#include "ats/util/check.h"

namespace ats {

/// Generic internally thread-safe sharded front-end. `Scenario` is a
/// trait struct binding the template to one sampling scheme:
///
///   struct Scenario {
///     using Shard = ...;    // per-shard sampler (copyable)
///     using Item = ...;     // one ingest record
///     using Merged = ...;   // merged snapshot type
///     struct Config {...};  // construction parameters (k, seed, ...)
///     static constexpr uint64_t kRouteSalt;           // shard routing
///     static Shard MakeShard(const Config&, size_t shard);
///     static uint64_t RouteKey(const Item&);
///     static size_t Ingest(Shard&, std::span<const Item>);
///     static uint64_t Epoch(const Shard&);  // O(1), non-canonicalizing
///     static Merged MergeShards(const Config&,
///                               std::span<const Shard* const>);
///     static size_t Retained(const Shard&);  // optional
///   };
///
/// Thread-safety contract (every public method unless noted): safe to
/// call from any number of threads concurrently with any other method.
template <typename Scenario>
class ConcurrentSampler {
 public:
  using Config = typename Scenario::Config;
  using Item = typename Scenario::Item;
  using Shard = typename Scenario::Shard;
  using Merged = typename Scenario::Merged;

  /// Builds `num_shards` independent shard samplers from `config`.
  /// Construction itself is single-threaded (the object may be shared
  /// across threads once the constructor returns).
  ConcurrentSampler(size_t num_shards, const Config& config)
      : config_(config), published_(num_shards) {
    ATS_CHECK(num_shards >= 1);
    shards_.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      shards_.push_back(
          std::make_unique<ShardSlot>(Scenario::MakeShard(config, s)));
      published_.Publish(s, Scenario::Epoch(shards_.back()->sampler));
    }
  }

  /// Shard index for a routing key. Pure function of immutable state --
  /// safe from any thread, never blocks.
  size_t ShardOf(uint64_t key) const {
    return static_cast<size_t>(HashKey(key, Scenario::kRouteSalt) %
                               shards_.size());
  }

  /// Routes one item to its shard and ingests it under that shard's
  /// lock. Returns the number of accepted items (0 or 1).
  size_t Add(const Item& item) {
    return AddShardBatch(ShardOf(Scenario::RouteKey(item)),
                         std::span<const Item>(&item, 1));
  }

  /// Routed batched ingest: partitions the batch into per-shard runs
  /// (order-preserving), then ingests each run under its shard's lock.
  /// Writers touching disjoint shards proceed in parallel; two writers
  /// hitting the same shard serialize per run. Returns the number of
  /// accepted items.
  size_t AddBatch(std::span<const Item> items) {
    if (shards_.size() == 1) return AddShardBatch(0, items);
    std::vector<std::vector<Item>> runs(shards_.size());
    const size_t expect = items.size() / shards_.size() + 16;
    for (auto& run : runs) run.reserve(expect);
    for (const Item& item : items) {
      runs[ShardOf(Scenario::RouteKey(item))].push_back(item);
    }
    size_t accepted = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!runs[s].empty()) accepted += AddShardBatch(s, runs[s]);
    }
    return accepted;
  }

  /// Feeds a pre-partitioned run straight into one shard under its lock
  /// (the per-thread shard-ownership entry point: S writer threads that
  /// partition upstream never contend at all). Every item must route to
  /// `shard` (checked in debug builds). Returns the accepted count.
  size_t AddShardBatch(size_t shard, std::span<const Item> items) {
    ATS_CHECK(shard < shards_.size());
#ifndef NDEBUG
    for (const Item& item : items) {
      ATS_DCHECK(ShardOf(Scenario::RouteKey(item)) == shard);
    }
#endif
    ShardSlot& slot = *shards_[shard];
    std::lock_guard<std::mutex> lock(slot.mu);
    const size_t accepted = Scenario::Ingest(slot.sampler, items);
    published_.Publish(shard, Scenario::Epoch(slot.sampler));
    return accepted;
  }

  /// The merged snapshot. Clean cache (no shard's published epoch moved
  /// since the cached snapshot was built): a lock-free shared_ptr load
  /// plus S atomic epoch compares -- never blocks writers. Dirty cache:
  /// one reader rebuilds (copy each shard under its lock, merge the
  /// copies lock-free, publish) while other readers wait on the rebuild
  /// mutex only. The returned snapshot is immutable and canonicalized:
  /// every const accessor on it is a pure read, so any number of
  /// threads may query one snapshot concurrently. It stays valid (and
  /// internally consistent) for as long as the pointer is held, no
  /// matter how much ingest happens after.
  std::shared_ptr<const Merged> Snapshot() const {
    auto state = snapshot_.load(std::memory_order_acquire);
    if (state == nullptr || !published_.Matches(state->epochs)) {
      state = RebuildSnapshot();
    }
    // Aliasing pointer: shares ownership of the whole snapshot state,
    // points at the merged sampler inside it.
    return std::shared_ptr<const Merged>(state, &state->merged);
  }

  /// Total items currently retained across shards (>= the merged sample
  /// size; the merge re-caps at k). Takes each shard's lock in turn, so
  /// the total is a sum of per-shard instants, not one global instant.
  size_t TotalRetained() const
    requires requires(const Shard& s) { Scenario::Retained(s); }
  {
    size_t total = 0;
    for (const auto& slot : shards_) {
      std::lock_guard<std::mutex> lock(slot->mu);
      total += Scenario::Retained(slot->sampler);
    }
    return total;
  }

  size_t num_shards() const { return shards_.size(); }
  const Config& config() const { return config_; }

  /// Live heap bytes across the shard slots plus the currently published
  /// snapshot (util/memory.h convention). Takes each shard's lock in
  /// turn -- like TotalRetained, the total is a sum of per-shard
  /// instants, not one global instant. Thread-safe like every other
  /// public method.
  size_t MemoryFootprint() const {
    size_t total = shards_.size() * sizeof(ShardSlot);
    for (const auto& slot : shards_) {
      std::lock_guard<std::mutex> lock(slot->mu);
      total += slot->sampler.MemoryFootprint();
    }
    const auto state = snapshot_.load(std::memory_order_acquire);
    if (state != nullptr) {
      total += state->merged.MemoryFootprint() +
               state->epochs.size() * sizeof(uint64_t);
    }
    return total;
  }

 private:
  /// One shard behind its stripe lock. Heap-allocated (stable address,
  /// std::mutex is immovable) and cache-line aligned so two shards'
  /// lock words never share a line.
  struct alignas(64) ShardSlot {
    explicit ShardSlot(Shard s) : sampler(std::move(s)) {}
    mutable std::mutex mu;
    Shard sampler;
  };

  /// An immutable published snapshot: the merged sampler plus the
  /// per-shard epoch vector it was built at (the validation token).
  struct SnapshotState {
    Merged merged;
    std::vector<uint64_t> epochs;
  };

  std::shared_ptr<const SnapshotState> RebuildSnapshot() const {
    std::lock_guard<std::mutex> rebuild(rebuild_mu_);
    // Double-check under the rebuild lock: another reader may have
    // published a fresh snapshot while this one waited.
    auto state = snapshot_.load(std::memory_order_acquire);
    if (state != nullptr && published_.Matches(state->epochs)) return state;
    // Copy each shard under its own lock -- a writer is blocked at most
    // for the O(k) copy of its shard, never for the merge -- recording
    // the epoch the copy is consistent with.
    std::vector<Shard> copies;
    copies.reserve(shards_.size());
    std::vector<uint64_t> epochs;
    epochs.reserve(shards_.size());
    for (const auto& slot : shards_) {
      std::lock_guard<std::mutex> lock(slot->mu);
      epochs.push_back(Scenario::Epoch(slot->sampler));
      copies.push_back(slot->sampler);
    }
    // Merge the copies lock-free (the threshold-pruned k-way engine via
    // the scenario), then publish.
    std::vector<const Shard*> inputs;
    inputs.reserve(copies.size());
    for (const Shard& copy : copies) inputs.push_back(&copy);
    auto next = std::make_shared<const SnapshotState>(
        SnapshotState{Scenario::MergeShards(config_, inputs),
                      std::move(epochs)});
    snapshot_.store(next, std::memory_order_release);
    return next;
  }

  Config config_;
  std::vector<std::unique_ptr<ShardSlot>> shards_;
  /// Per-shard atomic epochs (the lock-free cache validation); see
  /// epoch_cache.h.
  PublishedEpochs published_;
  /// Serializes snapshot rebuilds (readers only; writers never take it).
  mutable std::mutex rebuild_mu_;
  mutable std::atomic<std::shared_ptr<const SnapshotState>> snapshot_{
      nullptr};
};

namespace internal {

/// Scenario: weighted bottom-k priority sampling (the ShardedSampler
/// shard layout -- same per-shard seeds, same merge).
struct PriorityScenario {
  struct Config {
    size_t k;
    bool coordinated;
    uint64_t seed;
  };
  using Shard = PrioritySampler;
  using Item = PrioritySampler::Item;
  using Merged = BottomK<Item>;
  static constexpr uint64_t kRouteSalt = kShardRouteSalt;
  static Shard MakeShard(const Config& config, size_t shard) {
    return PrioritySampler(config.k,
                           config.seed + kShardSeedStride * shard,
                           config.coordinated);
  }
  static uint64_t RouteKey(const Item& item) { return item.key; }
  static size_t Ingest(Shard& shard, std::span<const Item> items) {
    return shard.AddBatch(items);
  }
  static uint64_t Epoch(const Shard& shard) {
    return shard.sketch().store().mutation_epoch();
  }
  static size_t Retained(const Shard& shard) { return shard.size(); }
  static Merged MergeShards(const Config& config,
                            std::span<const Shard* const> shards);
};

/// Scenario: KMV/Theta distinct counting. Every shard hashes with the
/// SAME salt (coordinated by construction), so the merged union is
/// exactly the single-sketch union.
struct KmvScenario {
  struct Config {
    size_t k;
    uint64_t hash_salt;
  };
  using Shard = KmvSketch;
  using Item = uint64_t;
  using Merged = KmvSketch;
  static constexpr uint64_t kRouteSalt = kShardRouteSalt;
  static Shard MakeShard(const Config& config, size_t /*shard*/) {
    return KmvSketch(config.k, /*initial_threshold=*/1.0,
                     config.hash_salt);
  }
  static uint64_t RouteKey(uint64_t key) { return key; }
  static size_t Ingest(Shard& shard, std::span<const uint64_t> keys) {
    return shard.AddKeys(keys);
  }
  static uint64_t Epoch(const Shard& shard) {
    return shard.store().mutation_epoch();
  }
  static size_t Retained(const Shard& shard) { return shard.size(); }
  static Merged MergeShards(const Config& config,
                            std::span<const Shard* const> shards);
};

/// Scenario: sliding-window sampling (the ShardedWindowSampler shard
/// layout). Per shard, arrival times must be non-decreasing: ONE
/// routing writer keeps that automatically; several routed writers
/// interleave whole runs per shard, so concurrent windowed writers
/// must own disjoint shards (AddShardBatch) or coordinate time ranges
/// themselves (see ConcurrentWindowSampler).
struct WindowScenario {
  struct Config {
    size_t k;
    double window;
    uint64_t seed;
  };
  struct Arrival {
    double time;
    uint64_t id;
  };
  using Shard = SlidingWindowSampler;
  using Item = Arrival;
  using Merged = SlidingWindowSampler;
  static constexpr uint64_t kRouteSalt = kTimeAxisRouteSalt;
  static Shard MakeShard(const Config& config, size_t shard) {
    return SlidingWindowSampler(config.k, config.window,
                                config.seed + kShardSeedStride * shard);
  }
  static uint64_t RouteKey(const Arrival& arrival) { return arrival.id; }
  static size_t Ingest(Shard& shard, std::span<const Arrival> items) {
    size_t stored = 0;
    for (const Arrival& a : items) {
      stored += shard.Arrive(a.time, a.id) ? 1 : 0;
    }
    return stored;
  }
  static uint64_t Epoch(const Shard& shard) {
    return shard.mutation_epoch();
  }
  static Merged MergeShards(const Config& config,
                            std::span<const Shard* const> shards);
};

/// Scenario: time-decayed sampling (the ShardedDecaySampler shard
/// layout).
struct DecayScenario {
  struct Config {
    size_t k;
    uint64_t seed;
  };
  using Shard = TimeDecaySampler;
  using Item = TimeDecaySampler::TimedItem;
  using Merged = TimeDecaySampler;
  static constexpr uint64_t kRouteSalt = kTimeAxisRouteSalt;
  static Shard MakeShard(const Config& config, size_t shard) {
    return TimeDecaySampler(config.k,
                            config.seed + kShardSeedStride * shard);
  }
  static uint64_t RouteKey(const Item& item) { return item.key; }
  static size_t Ingest(Shard& shard, std::span<const Item> items) {
    return shard.AddBatch(items);
  }
  static uint64_t Epoch(const Shard& shard) {
    return shard.mutation_epoch();
  }
  static size_t Retained(const Shard& shard) { return shard.size(); }
  static Merged MergeShards(const Config& config,
                            std::span<const Shard* const> shards);
};

}  // namespace internal

// Instantiated once in concurrent_sampler.cc; the concrete front-ends
// below are the intended entry points.
extern template class ConcurrentSampler<internal::PriorityScenario>;
extern template class ConcurrentSampler<internal::KmvScenario>;
extern template class ConcurrentSampler<internal::WindowScenario>;
extern template class ConcurrentSampler<internal::DecayScenario>;

/// Internally thread-safe weighted bottom-k (priority sampling)
/// front-end: the concurrent counterpart of ShardedSampler, with the
/// identical shard layout. With coordinated priorities (the default)
/// the merged snapshot after writers quiesce is EXACTLY the
/// single-store sample of the concatenated stream.
class ConcurrentPrioritySampler {
 public:
  using Item = PrioritySampler::Item;
  using MergedSample = ShardedSampler::MergedSample;

  /// num_shards: lock stripes / independent shard samplers. k: sample
  /// capacity of every shard and of the merged sample. `coordinated`
  /// selects hash-derived priorities (required for exact single-store
  /// equivalence); `seed` drives per-shard RNGs in independent mode.
  ConcurrentPrioritySampler(size_t num_shards, size_t k,
                            bool coordinated = true, uint64_t seed = 1);

  /// Shard index for a key. Thread-safe, never blocks.
  size_t ShardOf(uint64_t key) const;

  /// Ingests one weighted item under its shard's lock. Thread-safe
  /// against all other methods.
  void Add(uint64_t key, double weight);

  /// Routed batched ingest (see ConcurrentSampler::AddBatch).
  /// Thread-safe against all other methods; returns the accepted count.
  size_t AddBatch(std::span<const Item> items);

  /// Pre-partitioned single-shard ingest: the zero-contention entry
  /// point for writers that partition upstream. Thread-safe; every item
  /// must route to `shard` (checked in debug builds).
  size_t AddShardBatch(size_t shard, std::span<const Item> items);

  /// Merged sample + threshold from one epoch-consistent snapshot.
  /// Thread-safe; clean-cache calls never block writers.
  MergedSample Merged() const;

  /// Merged sample entries only (one snapshot). Thread-safe.
  std::vector<SampleEntry> Sample() const;

  /// Merged adaptive threshold only (one snapshot). Thread-safe.
  double MergedThreshold() const;

  /// The epoch-consistent merged bottom-k snapshot itself; immutable
  /// and safely shareable across reader threads. Thread-safe.
  std::shared_ptr<const BottomK<Item>> Snapshot() const;

  /// Items retained across shards (per-shard instants). Thread-safe.
  size_t TotalRetained() const;

  /// Live heap bytes across shards plus the published snapshot, per
  /// util/memory.h. Thread-safe (sum of per-shard instants, like
  /// TotalRetained).
  size_t MemoryFootprint() const { return core_.MemoryFootprint(); }

  size_t num_shards() const { return core_.num_shards(); }
  size_t k() const { return core_.config().k; }

 private:
  ConcurrentSampler<internal::PriorityScenario> core_;
};

/// Internally thread-safe KMV distinct-counting front-end (and, through
/// KMV's theta duality, the concurrent entry point for Theta-style
/// distinct unions): shards share one hash salt, so the merged snapshot
/// is exactly the single-sketch union of the concatenated key stream.
class ConcurrentKmvSketch {
 public:
  ConcurrentKmvSketch(size_t num_shards, size_t k, uint64_t hash_salt = 0);

  /// Shard index for a key. Thread-safe, never blocks.
  size_t ShardOf(uint64_t key) const;

  /// Ingests one key under its shard's lock. Thread-safe.
  void AddKey(uint64_t key);

  /// Routed batched ingest through each shard's fused hash pipeline.
  /// Thread-safe; returns the number of accepted priorities.
  size_t AddKeys(std::span<const uint64_t> keys);

  /// Pre-partitioned single-shard ingest. Thread-safe.
  size_t AddShardKeys(size_t shard, std::span<const uint64_t> keys);

  /// Unbiased distinct-count estimate from one snapshot. Thread-safe.
  double Estimate() const;

  /// Merged threshold theta from one snapshot. Thread-safe.
  double Threshold() const;

  /// Retained distinct priorities in the merged snapshot. Thread-safe.
  size_t MergedSize() const;

  /// The epoch-consistent merged sketch; immutable, shareable across
  /// readers. Thread-safe.
  std::shared_ptr<const KmvSketch> Snapshot() const;

  /// Retained priorities across shards (>= MergedSize). Thread-safe.
  size_t TotalRetained() const;

  /// Live heap bytes across shards plus the published snapshot, per
  /// util/memory.h. Thread-safe (sum of per-shard instants, like
  /// TotalRetained).
  size_t MemoryFootprint() const { return core_.MemoryFootprint(); }

  size_t num_shards() const { return core_.num_shards(); }
  size_t k() const { return core_.config().k; }

 private:
  ConcurrentSampler<internal::KmvScenario> core_;
};

/// Internally thread-safe sliding-window front-end: the concurrent
/// counterpart of ShardedWindowSampler (identical shard layout, seeds,
/// and merge). Arrival times must be non-decreasing PER SHARD. Every
/// entry point is lock-safe from any thread, but only two ingest
/// patterns preserve that time invariant: a SINGLE thread driving the
/// routed Arrive/AddBatch, or several writers owning DISJOINT shards
/// via AddShardBatch (each feeding its shards in time order -- the
/// pattern the concurrent-equivalence tests use). Two writers pushing
/// routed batches concurrently interleave whole runs per shard, which
/// can hand a shard out-of-order times; the shard tolerates the
/// regression silently (expiry is judged at its max time seen), so the
/// windowed sample would be quietly biased -- partition upstream
/// instead. Queries evaluate one epoch-consistent snapshot at `now` on
/// a private O(k) copy (window queries advance expiry, so the shared
/// snapshot itself is never mutated); `now` should be >= the times
/// already ingested, as with the sequential sampler.
class ConcurrentWindowSampler {
 public:
  using Arrival = internal::WindowScenario::Arrival;

  ConcurrentWindowSampler(size_t num_shards, size_t k, double window,
                          uint64_t seed = 1);

  /// Shard index for an item id. Thread-safe, never blocks.
  size_t ShardOf(uint64_t id) const;

  /// Ingests one arrival under its shard's lock. Thread-safe; returns
  /// true iff the item was stored.
  bool Arrive(double time, uint64_t id);

  /// Routed batched ingest (order-preserving per shard). Thread-safe.
  size_t AddBatch(std::span<const Arrival> arrivals);

  /// Pre-partitioned single-shard ingest. Thread-safe.
  size_t AddShardBatch(size_t shard, std::span<const Arrival> arrivals);

  /// Improved final threshold of the merged windowed sample at `now`.
  /// Thread-safe.
  double ImprovedThreshold(double now) const;

  /// G&L final threshold of the merged windowed sample at `now`.
  /// Thread-safe.
  double GlThreshold(double now) const;

  /// Merged samples under each final threshold at `now`. Thread-safe.
  std::vector<SampleEntry> ImprovedSample(double now) const;
  std::vector<SampleEntry> GlSample(double now) const;

  /// Stored items (current + expired) in the merged snapshot at `now`.
  /// Thread-safe.
  size_t MergedStoredCount(double now) const;

  /// The epoch-consistent merged window sampler. Immutable: query it by
  /// copying (queries advance expiry). Thread-safe.
  std::shared_ptr<const SlidingWindowSampler> Snapshot() const;

  /// Live heap bytes across shards plus the published snapshot, per
  /// util/memory.h. Thread-safe (sum of per-shard instants, like
  /// TotalRetained).
  size_t MemoryFootprint() const { return core_.MemoryFootprint(); }

  size_t num_shards() const { return core_.num_shards(); }
  size_t k() const { return core_.config().k; }
  double window() const { return core_.config().window; }

 private:
  ConcurrentSampler<internal::WindowScenario> core_;
};

/// Internally thread-safe time-decay front-end: the concurrent
/// counterpart of ShardedDecaySampler (identical shard layout, seeds,
/// and merge). Per shard, item times must be non-decreasing -- the
/// same ingest-pattern contract as ConcurrentWindowSampler: one routed
/// writer, or several writers owning disjoint shards in time order.
/// (The keyed scenarios have no such constraint: any number of routed
/// writers is always valid for bottom-k and KMV.)
class ConcurrentDecaySampler {
 public:
  using TimedItem = TimeDecaySampler::TimedItem;

  ConcurrentDecaySampler(size_t num_shards, size_t k, uint64_t seed = 1);

  /// Shard index for a key. Thread-safe, never blocks.
  size_t ShardOf(uint64_t key) const;

  /// Ingests one item under its shard's lock. Thread-safe; returns true
  /// iff the item was accepted below the shard's acceptance bound.
  bool Add(uint64_t key, double weight, double value, double time);

  /// Routed batched ingest (order-preserving per shard). Thread-safe.
  size_t AddBatch(std::span<const TimedItem> items);

  /// Pre-partitioned single-shard ingest. Thread-safe.
  size_t AddShardBatch(size_t shard, std::span<const TimedItem> items);

  /// Merged adaptive threshold on the log-key scale, from one snapshot.
  /// Thread-safe.
  double LogKeyThreshold() const;

  /// Merged decayed sample at `now` (>= every ingested time), from one
  /// snapshot. Thread-safe.
  std::vector<TimeDecaySampler::DecayedEntry> SampleAt(double now) const;

  /// HT estimate of the decayed total at `now`, from one snapshot.
  /// Thread-safe.
  double EstimateDecayedTotal(double now) const;

  /// The epoch-consistent merged decay sampler; immutable and pure-read
  /// queryable across threads. Thread-safe.
  std::shared_ptr<const TimeDecaySampler> Snapshot() const;

  /// Items retained across shards (per-shard instants). Thread-safe.
  size_t TotalRetained() const;

  /// Live heap bytes across shards plus the published snapshot, per
  /// util/memory.h. Thread-safe (sum of per-shard instants, like
  /// TotalRetained).
  size_t MemoryFootprint() const { return core_.MemoryFootprint(); }

  size_t num_shards() const { return core_.num_shards(); }
  size_t k() const { return core_.config().k; }

 private:
  ConcurrentSampler<internal::DecayScenario> core_;
};

}  // namespace ats

#endif  // ATS_CORE_CONCURRENT_SAMPLER_H_
