// Threshold composition (Section 2.8, Theorem 9).
//
// Composing thresholding rules preserves the substitutability properties
// the paper's estimators need:
//   * pointwise MIN of fully (or d-) substitutable rules stays fully (d-)
//     substitutable;
//   * pointwise MAX of 1-substitutable rules stays 1-substitutable
//     (and, when the composed threshold is constant across items, Theorem 6
//     upgrades this to full substitutability).
// These combinators power the multi-stratified sampler (max of per-stratum
// bottom-k), the sliding-window improvement (min of per-item thresholds),
// and sketch merges (max for LCS unions).
#ifndef ATS_CORE_COMPOSITION_H_
#define ATS_CORE_COMPOSITION_H_

#include <vector>

#include "ats/core/recalibration.h"

namespace ats {

// Pointwise minimum of per-item threshold vectors (equal lengths).
std::vector<double> ComposeMin(const std::vector<double>& a,
                               const std::vector<double>& b);

// Pointwise maximum of per-item threshold vectors (equal lengths).
std::vector<double> ComposeMax(const std::vector<double>& a,
                               const std::vector<double>& b);

// Rule combinator: item-wise min of the rules' thresholds. Preserves full
// and d-substitutability (Theorem 9).
ThresholdingRule MinRule(std::vector<ThresholdingRule> rules);

// Rule combinator: item-wise max of the rules' thresholds. Preserves
// 1-substitutability (Theorem 9).
ThresholdingRule MaxRule(std::vector<ThresholdingRule> rules);

// Rule that broadcasts the global minimum of another rule's thresholds to
// every item. Used by the improved sliding-window threshold: taking the min
// over the current window makes the threshold constant, and a constant
// 1-substitutable threshold is fully substitutable by Theorem 6.
ThresholdingRule GlobalMinRule(ThresholdingRule rule);

}  // namespace ats

#endif  // ATS_CORE_COMPOSITION_H_
