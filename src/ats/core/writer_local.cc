#include "ats/core/writer_local.h"

#include "ats/core/random.h"
#include "ats/core/shard_routing.h"

namespace ats::internal {

uint64_t WriterLocalSalt(uint64_t writer, uint64_t generation) {
  if (writer == 0 && generation == 0) return 0;
  // Mix (writer, generation) through the keyed hash so mini seeds never
  // collide with the kShardSeedStride lattice of the authoritative
  // shards; |1 keeps the salt nonzero (0 is reserved for the
  // bit-equivalent first generation above).
  return HashKey((writer << 32) | generation, kWriterLocalSeedSalt) | 1;
}

}  // namespace ats::internal
