// Conditional Poisson Sampling (Section 2.2; Tillé [28]).
//
// CPS is the fixed-size design the paper motivates adaptive thresholds
// against: condition a Poisson design with working probabilities p_i on
// the sample size being exactly k. It is the maximum-entropy design for
// its inclusion probabilities, but no streaming algorithm exists -- exact
// sampling and inclusion probabilities need O(n k) dynamic programming
// over the Poisson-binomial distribution, and that is precisely why
// bottom-k style adaptive thresholds matter in practice.
//
// This implementation is exact and intended for moderate n (thousands):
// it provides the reference design for tests and for the ablation bench
// that compares bottom-k sampling against CPS inclusion probabilities and
// cost.
#ifndef ATS_CORE_CPS_H_
#define ATS_CORE_CPS_H_

#include <cstdint>
#include <vector>

#include "ats/core/random.h"

namespace ats {

class ConditionalPoissonSampler {
 public:
  // Working probabilities p_i in (0, 1); sample size k <= n.
  ConditionalPoissonSampler(std::vector<double> working_probabilities,
                            size_t k);

  // Draws one exact CPS sample (indices into the probability vector,
  // ascending). O(n k) per draw after O(n k) setup.
  std::vector<size_t> Draw(Xoshiro256& rng) const;

  // Exact first-order inclusion probabilities pi_i = P(i in sample).
  // O(n^2 k) once, cached.
  const std::vector<double>& InclusionProbabilities() const;

  size_t n() const { return p_.size(); }
  size_t k() const { return k_; }

 private:
  // tail_[i][j] = P(exactly j of items i..n-1 are included) under the
  // independent Poisson design.
  void BuildTailTable();

  std::vector<double> p_;
  size_t k_;
  std::vector<std::vector<double>> tail_;
  mutable std::vector<double> inclusion_;  // lazily computed
};

// Solves for CPS working probabilities that realize the PPS targets
// pi_i = k * w_i / sum(w) (clipped at 1), via fixed-point iteration on
// the working odds. Returns working probabilities usable with
// ConditionalPoissonSampler so that its realized inclusion probabilities
// match `target_inclusion` to within `tol`.
std::vector<double> CpsWorkingProbabilities(
    const std::vector<double>& target_inclusion, size_t k,
    double tol = 1e-8, int max_iterations = 200);

}  // namespace ats

#endif  // ATS_CORE_CPS_H_
