// Bottom-k sketch: the canonical substitutable adaptive threshold
// (Section 2.5.1).
//
// The sketch retains the k items with smallest priorities seen so far; the
// adaptive threshold is the (k+1)-th smallest priority. Recalibrating any
// sampled item's priority to -infinity leaves the threshold unchanged, so
// the threshold is fully substitutable (Theorem 6) and the plain HT
// estimator with pi_i = F_i(T) is unbiased (Corollary 3). With
// WeightedUniform priorities this is exactly priority sampling [12]; with
// hashed Uniform priorities it is the KMV distinct-counting sketch.
//
// Retention (compaction buffer + threshold bookkeeping) lives in the
// shared SampleStore; this header is the entry-oriented facade plus the
// weighted PrioritySampler built on it.
#ifndef ATS_CORE_BOTTOM_K_H_
#define ATS_CORE_BOTTOM_K_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ats/core/priority.h"
#include "ats/core/sample_store.h"
#include "ats/core/threshold.h"
#include "ats/util/check.h"
#include "ats/util/serialize.h"

namespace ats {

// Writes/reads a bottom-k payload on the wire. Specialize for payload
// types that need to cross serialization boundaries.
template <typename Payload>
struct PayloadCodec;

template <>
struct PayloadCodec<uint64_t> {
  static void Write(ByteWriter& w, uint64_t v) { w.WriteU64(v); }
  static std::optional<uint64_t> Read(ByteReader& r) { return r.ReadU64(); }
};

// Generic bottom-k container over (priority, payload) pairs, backed by the
// shared SampleStore.
//
// Offer() is amortized O(1) (append into the store's compaction buffer);
// Threshold() canonicalizes first and equals the (k+1)-th smallest
// priority ever offered once k+1 distinct offers have been seen
// (+infinity before that).
template <typename Payload>
class BottomK {
 public:
  struct Entry {
    double priority;
    Payload payload;
    friend bool operator<(const Entry& a, const Entry& b) {
      return a.priority < b.priority;
    }
  };

  explicit BottomK(size_t k) : store_(k) {}

  // Offers an item. Returns true iff the item is accepted below the
  // store's current (chunked) acceptance bound and enters the candidate
  // buffer; the next compaction may still drop it if k smaller priorities
  // exist. The canonical retained set and threshold are unaffected by
  // the chunking (see sample_store.h).
  bool Offer(double priority, Payload payload) {
    return store_.Offer(priority, std::move(payload));
  }

  // Batched offers: equivalent to a scalar Offer loop (same state, same
  // acceptance count) but pre-filtered against the acceptance bound in
  // the store's column scan. Returns the number of accepted items.
  size_t OfferBatch(std::span<const double> priorities,
                    std::span<const Payload> payloads) {
    return store_.OfferBatch(priorities, payloads);
  }

  // The adaptive threshold: (k+1)-th smallest priority seen, or +infinity
  // while fewer than k+1 items have been offered.
  double Threshold() const { return store_.Threshold(); }

  // Largest retained priority (the k-th smallest seen). Only valid when
  // size() > 0.
  double MaxRetainedPriority() const { return store_.MaxRetainedPriority(); }

  size_t size() const { return store_.size(); }
  size_t k() const { return store_.k(); }
  bool saturated() const { return store_.saturated(); }

  // Retained entries in unspecified order, materialized from the store's
  // canonical columns.
  std::vector<Entry> entries() const {
    std::vector<Entry> out;
    out.reserve(store_.size());
    for (size_t i = 0; i < store_.size(); ++i) {
      out.push_back(Entry{store_.priorities()[i], store_.payloads()[i]});
    }
    return out;
  }

  // Retained entries sorted by ascending priority.
  std::vector<Entry> SortedEntries() const {
    std::vector<Entry> out;
    out.reserve(store_.size());
    for (size_t i : store_.SortedOrder()) {
      out.push_back(Entry{store_.priorities()[i], store_.payloads()[i]});
    }
    return out;
  }

  // Merges another bottom-k sketch over a disjoint stream: the result is
  // the bottom-k sketch of the concatenated streams. The threshold is the
  // min of both thresholds and of any priority evicted while merging.
  // Merging a sketch with itself is a no-op (aliasing-safe).
  void Merge(const BottomK& other) { store_.Merge(other.store_); }

  // Removes retained entries with priority >= Threshold(). Needed after
  // merges or external threshold reductions.
  void PurgeAboveThreshold() { store_.PurgeAboveThreshold(); }

  // Externally lowers the threshold (used by threshold composition); purges
  // entries that fall outside.
  void LowerThreshold(double t) { store_.LowerThreshold(t); }

  SampleStore<Payload>& store() { return store_; }
  const SampleStore<Payload>& store() const { return store_; }

  // Wire format (requires a PayloadCodec<Payload> specialization).
  void SerializeTo(ByteWriter& w) const {
    WriteSketchHeader(w, kMagic, kVersion);
    w.WriteU64(store_.k());
    w.WriteDouble(store_.Threshold());
    w.WriteU64(store_.size());
    for (size_t i = 0; i < store_.size(); ++i) {
      w.WriteDouble(store_.priorities()[i]);
      PayloadCodec<Payload>::Write(w, store_.payloads()[i]);
    }
  }

  static std::optional<BottomK> Deserialize(ByteReader& r) {
    if (!ReadSketchHeader(r, kMagic, kVersion)) return std::nullopt;
    const auto k = r.ReadU64();
    const auto threshold = r.ReadDouble();
    const auto count = r.ReadU64();
    if (!k || !threshold || !count) return std::nullopt;
    // Priorities live on the whole real line (e.g. log-space keys in the
    // time-decay sampler), so only NaN thresholds are invalid here.
    if (*k < 1 || std::isnan(*threshold) || *count > *k) return std::nullopt;
    BottomK sketch(static_cast<size_t>(*k));
    for (uint64_t i = 0; i < *count; ++i) {
      const auto priority = r.ReadDouble();
      const auto payload = PayloadCodec<Payload>::Read(r);
      if (!priority || !payload.has_value()) return std::nullopt;
      if (!(*priority < *threshold)) return std::nullopt;
      sketch.Offer(*priority, *payload);
    }
    if (sketch.size() != *count) return std::nullopt;
    sketch.LowerThreshold(*threshold);
    return sketch;
  }

  std::string SerializeToString() const { return SerializeSketch(*this); }
  static std::optional<BottomK> Deserialize(std::string_view bytes) {
    return DeserializeSketch<BottomK>(bytes);
  }

 private:
  static constexpr uint32_t kMagic = 0x42544b32;  // "BTK2"
  static constexpr uint32_t kVersion = 1;

  SampleStore<Payload> store_;
};

static_assert(MergeableSketch<BottomK<uint64_t>>);

// Priority sampling (weighted bottom-k) over keyed, weighted items.
//
// Each item draws priority R = U/w (coordinated via its key hash when
// `coordinated` is true, independent otherwise). The sample supports
// unbiased subset-sum estimation through estimators/subset_sum.h.
class PrioritySampler {
 public:
  struct Item {
    uint64_t key;
    double weight;
  };

  // `seed` drives independent priorities; ignored when coordinated.
  PrioritySampler(size_t k, uint64_t seed = 1, bool coordinated = false);

  // Feeds one weighted item.
  void Add(uint64_t key, double weight);

  // Feeds a batch of weighted items: equivalent to calling Add() on each
  // item in order (bit-identical state, including the RNG stream in
  // independent mode), but priorities are computed into a dense column and
  // offered through the store's pre-filtered batch path. Returns the
  // number of retained items.
  size_t AddBatch(std::span<const Item> items);

  // Current adaptive threshold tau.
  double Threshold() const { return sketch_.Threshold(); }

  size_t size() const { return sketch_.size(); }

  // Sample entries (with per-item inclusion probabilities) for estimators.
  std::vector<SampleEntry> Sample() const;

  const BottomK<Item>& sketch() const { return sketch_; }

  // Merges a sampler over a disjoint stream (same k recommended); the
  // merged sample is the bottom-k of the concatenated streams. Safe for
  // self-merge (no-op).
  void Merge(const PrioritySampler& other);

  // Wire format. The RNG state travels with the sample so a restored
  // independent sampler continues the exact same priority stream.
  void SerializeTo(ByteWriter& w) const;
  static std::optional<PrioritySampler> Deserialize(ByteReader& r);
  std::string SerializeToString() const { return SerializeSketch(*this); }
  static std::optional<PrioritySampler> Deserialize(std::string_view bytes) {
    return DeserializeSketch<PrioritySampler>(bytes);
  }

 private:
  BottomK<Item> sketch_;
  Xoshiro256 rng_;
  bool coordinated_;
  // Scratch column for AddBatch (reused across calls to avoid allocation).
  std::vector<double> batch_priorities_;
};

static_assert(MergeableSketch<PrioritySampler>);

// Wire codec for weighted items, so PrioritySampler's sample nests inside
// the generic BottomK frame (one copy of the entry validation logic).
template <>
struct PayloadCodec<PrioritySampler::Item> {
  static void Write(ByteWriter& w, const PrioritySampler::Item& item) {
    w.WriteU64(item.key);
    w.WriteDouble(item.weight);
  }
  static std::optional<PrioritySampler::Item> Read(ByteReader& r) {
    const auto key = r.ReadU64();
    const auto weight = r.ReadDouble();
    if (!key.has_value() || !weight || !(*weight > 0.0)) {
      return std::nullopt;
    }
    return PrioritySampler::Item{*key, *weight};
  }
};

// Estimator-ready entries (with inclusion probabilities at the store's
// threshold) from a weighted-item store. Shared by PrioritySampler and
// the sharded front-end.
std::vector<SampleEntry> MakeWeightedSample(
    const SampleStore<PrioritySampler::Item>& store);

}  // namespace ats

#endif  // ATS_CORE_BOTTOM_K_H_
