// Bottom-k sketch: the canonical substitutable adaptive threshold
// (Section 2.5.1).
//
// The sketch retains the k items with smallest priorities seen so far; the
// adaptive threshold is the (k+1)-th smallest priority. Recalibrating any
// sampled item's priority to -infinity leaves the threshold unchanged, so
// the threshold is fully substitutable (Theorem 6) and the plain HT
// estimator with pi_i = F_i(T) is unbiased (Corollary 3). With
// WeightedUniform priorities this is exactly priority sampling [12]; with
// hashed Uniform priorities it is the KMV distinct-counting sketch.
//
// Retention (compaction buffer + threshold bookkeeping) lives in the
// shared SampleStore; this header is the entry-oriented facade plus the
// weighted PrioritySampler built on it.
#ifndef ATS_CORE_BOTTOM_K_H_
#define ATS_CORE_BOTTOM_K_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ats/core/priority.h"
#include "ats/core/sample_store.h"
#include "ats/core/threshold.h"
#include "ats/util/check.h"
#include "ats/util/serialize.h"

namespace ats {

// Writes/reads a bottom-k payload on the wire. Specialize for payload
// types that need to cross serialization boundaries. `kWireSize` is the
// fixed encoded size in bytes; the zero-copy frame view relies on it to
// bounds-check a whole entry region with one size comparison.
template <typename Payload>
struct PayloadCodec;

template <>
struct PayloadCodec<uint64_t> {
  static constexpr size_t kWireSize = sizeof(uint64_t);
  static void Write(ByteWriter& w, uint64_t v) { w.WriteU64(v); }
  static std::optional<uint64_t> Read(ByteReader& r) { return r.ReadU64(); }
};

// Generic bottom-k container over (priority, payload) pairs, backed by the
// shared SampleStore.
//
// Offer() is amortized O(1) (append into the store's compaction buffer);
// Threshold() canonicalizes first and equals the (k+1)-th smallest
// priority ever offered once k+1 distinct offers have been seen
// (+infinity before that).
template <typename Payload>
class BottomK {
 public:
  struct Entry {
    double priority;
    Payload payload;
    friend bool operator<(const Entry& a, const Entry& b) {
      return a.priority < b.priority;
    }
  };

  explicit BottomK(size_t k) : store_(k) {}

  // Offers an item. Returns true iff the item is accepted below the
  // store's current (chunked) acceptance bound and enters the candidate
  // buffer; the next compaction may still drop it if k smaller priorities
  // exist. The canonical retained set and threshold are unaffected by
  // the chunking (see sample_store.h).
  bool Offer(double priority, Payload payload) {
    return store_.Offer(priority, std::move(payload));
  }

  // Batched offers: equivalent to a scalar Offer loop (same state, same
  // acceptance count) but pre-filtered against the acceptance bound in
  // the store's column scan. Returns the number of accepted items.
  size_t OfferBatch(std::span<const double> priorities,
                    std::span<const Payload> payloads) {
    return store_.OfferBatch(priorities, payloads);
  }

  // The adaptive threshold: (k+1)-th smallest priority seen, or +infinity
  // while fewer than k+1 items have been offered.
  double Threshold() const { return store_.Threshold(); }

  // Largest retained priority (the k-th smallest seen). Only valid when
  // size() > 0.
  double MaxRetainedPriority() const { return store_.MaxRetainedPriority(); }

  size_t size() const { return store_.size(); }
  size_t k() const { return store_.k(); }
  bool saturated() const { return store_.saturated(); }

  // Live heap bytes of the sample state (util/memory.h convention):
  // exactly the store's SoA columns. O(1), non-canonicalizing.
  size_t MemoryFootprint() const { return store_.MemoryFootprint(); }

  // Retained entries in unspecified order, materialized from the store's
  // canonical columns.
  std::vector<Entry> entries() const {
    std::vector<Entry> out;
    out.reserve(store_.size());
    for (size_t i = 0; i < store_.size(); ++i) {
      out.push_back(Entry{store_.priorities()[i], store_.payloads()[i]});
    }
    return out;
  }

  // Retained entries sorted by ascending priority.
  std::vector<Entry> SortedEntries() const {
    std::vector<Entry> out;
    out.reserve(store_.size());
    for (size_t i : store_.SortedOrder()) {
      out.push_back(Entry{store_.priorities()[i], store_.payloads()[i]});
    }
    return out;
  }

  // Merges another bottom-k sketch over a disjoint stream: the result is
  // the bottom-k sketch of the concatenated streams. The threshold is the
  // min of both thresholds and of any priority evicted while merging.
  // Merging a sketch with itself is a no-op (aliasing-safe).
  void Merge(const BottomK& other) { store_.Merge(other.store_); }

  // Threshold-pruned k-way union: observationally identical to merging
  // the inputs with Merge() in span order, but the global acceptance
  // bound (min of all input thresholds) is taken first and each input is
  // block-prefiltered against it, finishing in a single selection
  // instead of S sequential merge+compaction rounds (see
  // SampleStore::MergeMany). Inputs aliasing `this` are skipped.
  void MergeMany(std::span<const BottomK* const> others) {
    std::vector<const SampleStore<Payload>*> stores;
    stores.reserve(others.size());
    for (const BottomK* o : others) stores.push_back(&o->store_);
    store_.MergeMany(stores);  // skips the store aliasing `this`
  }

  // Removes retained entries with priority >= Threshold(). Needed after
  // merges or external threshold reductions.
  void PurgeAboveThreshold() { store_.PurgeAboveThreshold(); }

  // Externally lowers the threshold (used by threshold composition); purges
  // entries that fall outside.
  void LowerThreshold(double t) { store_.LowerThreshold(t); }

  SampleStore<Payload>& store() { return store_; }
  const SampleStore<Payload>& store() const { return store_; }

  // Wire format (requires a PayloadCodec<Payload> specialization).
  // Only entries strictly below the threshold travel: after a
  // duplicate-priority warm-up (and before any purge) the canonical
  // retained set may hold entries tied AT the threshold, which are not
  // members of the threshold sample at that bound -- and which the
  // strict `priority < threshold` wire validation would rightly reject,
  // making the frame unparseable.
  void SerializeTo(ByteWriter& w) const {
    WriteSketchHeader(w, kMagic, kVersion);
    w.WriteU64(store_.k());
    const double t = store_.Threshold();
    w.WriteDouble(t);
    uint64_t count = 0;
    for (size_t i = 0; i < store_.size(); ++i) {
      count += store_.priorities()[i] < t ? 1 : 0;
    }
    w.WriteU64(count);
    for (size_t i = 0; i < store_.size(); ++i) {
      if (!(store_.priorities()[i] < t)) continue;
      w.WriteDouble(store_.priorities()[i]);
      PayloadCodec<Payload>::Write(w, store_.payloads()[i]);
    }
  }

  static std::optional<BottomK> Deserialize(ByteReader& r) {
    if (!ReadSketchHeader(r, kMagic, kVersion)) return std::nullopt;
    const auto k = r.ReadU64();
    const auto threshold = r.ReadDouble();
    const auto count = r.ReadU64();
    if (!k || !threshold || !count) return std::nullopt;
    // Priorities live on the whole real line (e.g. log-space keys in the
    // time-decay sampler), so only NaN thresholds are invalid here.
    if (*k < 1 || std::isnan(*threshold) || *count > *k) return std::nullopt;
    BottomK sketch(static_cast<size_t>(*k));
    for (uint64_t i = 0; i < *count; ++i) {
      const auto priority = r.ReadDouble();
      const auto payload = PayloadCodec<Payload>::Read(r);
      if (!priority || !payload.has_value()) return std::nullopt;
      if (!(*priority < *threshold)) return std::nullopt;
      sketch.Offer(*priority, *payload);
    }
    if (sketch.size() != *count) return std::nullopt;
    sketch.LowerThreshold(*threshold);
    return sketch;
  }

  std::string SerializeToString() const { return SerializeSketch(*this); }
  static std::optional<BottomK> Deserialize(std::string_view bytes) {
    return DeserializeSketch<BottomK>(bytes);
  }

  // Typed rejection reason for a frame Deserialize would refuse:
  // structural cause first (truncated / foreign magic / future version /
  // checksum), kCorruptBody for field- or entry-level violations, kNone
  // iff the frame parses. Per-cause rejection counters in the transport
  // tier are built on this.
  static FrameFault DiagnoseFrame(std::string_view frame) {
    const FrameFault f = ClassifyFrameBytes(frame, kMagic, kVersion);
    if (f != FrameFault::kNone) return f;
    return Deserialize(frame).has_value() ? FrameFault::kNone
                                          : FrameFault::kCorruptBody;
  }

  // Zero-copy read-only view over a whole serialized frame (the
  // SerializeToString layout, trailing checksum included). Parsing
  // validates everything Deserialize validates -- checksum, header,
  // field ranges, every entry -- but materializes nothing: the entry
  // region stays a bounds-checked span over the caller's bytes, decoded
  // lazily per access. This is what lets MergeManyFrames aggregate a
  // large fan-in of wire sketches without ever building the per-frame
  // vectors a Deserialize+Merge chain would (each frame's bytes are
  // copied at most once: accepted survivors into the accumulator).
  //
  // The view borrows the frame's storage; it must not outlive the bytes.
  class FrameView {
   public:
    size_t k() const { return static_cast<size_t>(k_); }
    double threshold() const { return threshold_; }
    size_t size() const { return entries_.size() / kStride; }

    double priority(size_t i) const {
      ATS_DCHECK(i < size());
      double p;
      std::memcpy(&p, entries_.data() + i * kStride, sizeof(p));
      return p;
    }

    Payload payload(size_t i) const {
      ATS_DCHECK(i < size());
      ByteReader r(entries_.substr(i * kStride + sizeof(double),
                                   PayloadCodec<Payload>::kWireSize));
      return *PayloadCodec<Payload>::Read(r);  // validated by Parse
    }

   private:
    friend class BottomK;
    static constexpr size_t kStride =
        sizeof(double) + PayloadCodec<Payload>::kWireSize;

    uint64_t k_ = 0;
    double threshold_ = kInfiniteThreshold;
    std::string_view entries_;
  };

  // Parses `frame` (a SerializeToString buffer) into a FrameView.
  // Returns nullopt on exactly the inputs Deserialize rejects: bad
  // checksum, truncation, foreign magic or future version, k < 1, NaN
  // threshold, count > k, an entry at/above the threshold, an invalid
  // payload, or trailing bytes. A frame declaring a huge k is fine as
  // long as its entry count is consistent -- the view allocates nothing,
  // so hostile capacity claims cannot reserve memory here (the
  // kMaxEagerReserve cap protects the Deserialize path the same way).
  static std::optional<FrameView> DeserializeView(std::string_view frame) {
    const auto body = CheckedFrameBody(frame);
    if (!body) return std::nullopt;
    return ViewBody(*body);
  }

  // Parses a bare (un-checksummed) BottomK body -- exactly the bytes
  // SerializeTo appends, which must span the whole of `body` -- into a
  // FrameView. For container formats that embed the sample region inside
  // their own checked frame (TimeDecaySampler): the container's
  // DeserializeView verifies the outer checksum and hands the tail here.
  // Validation is identical to DeserializeView's.
  static std::optional<FrameView> ViewBody(std::string_view body) {
    ByteReader r(body);
    if (!ReadSketchHeader(r, kMagic, kVersion)) return std::nullopt;
    const auto k = r.ReadU64();
    const auto threshold = r.ReadDouble();
    const auto count = r.ReadU64();
    if (!k || !threshold || !count) return std::nullopt;
    if (*k < 1 || std::isnan(*threshold) || *count > *k) return std::nullopt;
    FrameView view;
    view.k_ = *k;
    view.threshold_ = *threshold;
    // Fixed-stride entry region: one size comparison bounds-checks every
    // entry (an oversized or truncated region is a framing error); the
    // first clause keeps the multiplication overflow-free.
    const std::string_view entries = r.Rest();
    if (*count > entries.size() / FrameView::kStride ||
        entries.size() != *count * FrameView::kStride) {
      return std::nullopt;
    }
    view.entries_ = entries;
    for (size_t i = 0; i < view.size(); ++i) {
      const double p = view.priority(i);
      if (!(p < view.threshold_)) return std::nullopt;  // NaN included
      ByteReader pr(view.entries_.substr(
          i * FrameView::kStride + sizeof(double),
          PayloadCodec<Payload>::kWireSize));
      if (!PayloadCodec<Payload>::Read(pr).has_value()) return std::nullopt;
    }
    return view;
  }

  // Threshold-pruned k-way union straight off the wire: observationally
  // identical to deserializing every frame and merging the results with
  // Merge() in span order, but zero-copy (see FrameView) and pruned by
  // the global min threshold before any entry is decoded into the store.
  // Returns false -- leaving the sketch observably unchanged -- if ANY
  // frame fails validation; all frames are vetted before the first one
  // is applied.
  bool MergeManyFrames(std::span<const std::string_view> frames) {
    std::vector<FrameView> views;
    views.reserve(frames.size());
    for (std::string_view f : frames) {
      auto view = DeserializeView(f);
      if (!view) return false;
      views.push_back(*view);
    }
    // No inputs: strict no-op, like a zero-length Deserialize+Merge
    // chain (the closing purge below would otherwise drop retained
    // entries tied AT the threshold, which no pairwise merge ran to
    // justify).
    if (views.empty()) return true;
    MergeValidatedViews(views);
    return true;
  }

  // The mutation half of MergeManyFrames: applies frame views that have
  // ALREADY passed DeserializeView/ViewBody validation (global min bound
  // first, block-prefiltered gather, closing purge). For container
  // sketches (TimeDecaySampler) that vet their own outer frames before
  // delegating; the span must be non-empty (the all-frames-invalid /
  // no-frames cases are the caller's strict no-op).
  void MergeValidatedViews(std::span<const FrameView> views) {
    double bound = store_.Threshold();
    for (const FrameView& v : views) bound = std::min(bound, v.threshold());
    store_.LowerThreshold(bound);
    alignas(64) double block[internal::kIngestBlock];
    for (const FrameView& v : views) {
      const size_t n = v.size();
      size_t i = 0;
      for (; i + internal::kIngestBlock <= n;
           i += internal::kIngestBlock) {
        // Gather the block's priorities into a dense column, then reuse
        // the batched-ingest pre-filter; only survivors decode payloads.
        for (size_t j = 0; j < internal::kIngestBlock; ++j) {
          block[j] = v.priority(i + j);
        }
        internal::VisitBlockCandidates(
            block, store_.AcceptBound(),
            [&](size_t j) { store_.Offer(block[j], v.payload(i + j)); });
      }
      for (; i < n; ++i) {
        const double p = v.priority(i);
        if (p < store_.AcceptBound()) store_.Offer(p, v.payload(i));
      }
    }
    store_.PurgeAboveThreshold();
  }

 private:
  static constexpr uint32_t kMagic = 0x42544b32;  // "BTK2"
  static constexpr uint32_t kVersion = 1;

  SampleStore<Payload> store_;
};

static_assert(MergeableSketch<BottomK<uint64_t>>);

// One weighted item retained by PrioritySampler. Namespace-scope (not
// nested) so its wire codec below is complete before the sampler's frame
// view embeds a BottomK view over it.
struct WeightedStored {
  uint64_t key;
  double weight;
};

// Wire codec for weighted items, so PrioritySampler's sample nests inside
// the generic BottomK frame (one copy of the entry validation logic).
template <>
struct PayloadCodec<WeightedStored> {
  static constexpr size_t kWireSize = sizeof(uint64_t) + sizeof(double);
  static void Write(ByteWriter& w, const WeightedStored& item) {
    w.WriteU64(item.key);
    w.WriteDouble(item.weight);
  }
  static std::optional<WeightedStored> Read(ByteReader& r) {
    const auto key = r.ReadU64();
    const auto weight = r.ReadDouble();
    if (!key.has_value() || !weight || !(*weight > 0.0)) {
      return std::nullopt;
    }
    return WeightedStored{*key, *weight};
  }
};

// Priority sampling (weighted bottom-k) over keyed, weighted items.
//
// Each item draws priority R = U/w (coordinated via its key hash when
// `coordinated` is true, independent otherwise). The sample supports
// unbiased subset-sum estimation through estimators/subset_sum.h.
class PrioritySampler {
 public:
  using Item = WeightedStored;

  // `seed` drives independent priorities; ignored when coordinated.
  PrioritySampler(size_t k, uint64_t seed = 1, bool coordinated = false);

  // Feeds one weighted item.
  void Add(uint64_t key, double weight);

  // Feeds a batch of weighted items: equivalent to calling Add() on each
  // item in order (bit-identical state, including the RNG stream in
  // independent mode), but priorities are computed into a dense column and
  // offered through the store's pre-filtered batch path. Returns the
  // number of retained items.
  size_t AddBatch(std::span<const Item> items);

  // Current adaptive threshold tau.
  double Threshold() const { return sketch_.Threshold(); }

  size_t size() const { return sketch_.size(); }

  // Live heap bytes of the sample state (util/memory.h convention);
  // excludes the reusable AddBatch scratch column.
  size_t MemoryFootprint() const { return sketch_.MemoryFootprint(); }

  // Sample entries (with per-item inclusion probabilities) for estimators.
  std::vector<SampleEntry> Sample() const;

  const BottomK<Item>& sketch() const { return sketch_; }

  // Merges a sampler over a disjoint stream (same k recommended); the
  // merged sample is the bottom-k of the concatenated streams. Safe for
  // self-merge (no-op).
  void Merge(const PrioritySampler& other);

  // Threshold-pruned k-way union: observationally identical to folding
  // `others` with Merge() in span order (RNG state and coordination
  // flags do not participate in a merge), but pruned by the global min
  // threshold first (see SampleStore::MergeMany). Inputs aliasing
  // `this` are skipped. The concurrent tier's writer-local drain runs
  // through this.
  void MergeMany(std::span<const PrioritySampler* const> others);

  // Wire format. The RNG state travels with the sample so a restored
  // independent sampler continues the exact same priority stream.
  void SerializeTo(ByteWriter& w) const;
  static std::optional<PrioritySampler> Deserialize(ByteReader& r);
  std::string SerializeToString() const { return SerializeSketch(*this); }
  static std::optional<PrioritySampler> Deserialize(std::string_view bytes) {
    return DeserializeSketch<PrioritySampler>(bytes);
  }

  // Typed rejection reason for a frame Deserialize would refuse:
  // structural cause first (kTruncated / kBadMagic / kBadVersion /
  // checksum -> kCorruptBody), kCorruptBody for field- or entry-level
  // violations, kNone iff the frame parses.
  static FrameFault DiagnoseFrame(std::string_view frame);

  // Zero-copy read-only view over a whole serialized frame: the outer
  // checksum/header/flag/RNG fields are validated, then the embedded
  // sample region is exposed through the generic bottom-k frame view.
  // Borrows the frame's storage; must not outlive it.
  class FrameView {
   public:
    bool coordinated() const { return coordinated_; }
    size_t k() const { return sample_.k(); }
    double threshold() const { return sample_.threshold(); }
    size_t size() const { return sample_.size(); }
    double priority(size_t i) const { return sample_.priority(i); }
    Item item(size_t i) const { return sample_.payload(i); }

   private:
    friend class PrioritySampler;
    bool coordinated_ = false;
    BottomK<Item>::FrameView sample_;
  };

  // Parses a SerializeToString buffer; nullopt on exactly the inputs
  // Deserialize rejects. Allocation-free.
  static std::optional<FrameView> DeserializeView(std::string_view frame);

  // Threshold-pruned k-way merge straight off the wire: observationally
  // identical to deserializing every frame and merging with Merge() in
  // span order (frame RNG state and coordination flags do not
  // participate in a merge). Returns false -- sampler observably
  // unchanged -- if ANY frame fails validation; all frames are vetted
  // before the first is applied.
  bool MergeManyFrames(std::span<const std::string_view> frames);

 private:
  BottomK<Item> sketch_;
  Xoshiro256 rng_;
  bool coordinated_;
  // Scratch column for AddBatch (reused across calls to avoid allocation).
  std::vector<double> batch_priorities_;
};

static_assert(MergeableSketch<PrioritySampler>);

// Estimator-ready entries (with inclusion probabilities at the store's
// threshold) from a weighted-item store. Shared by PrioritySampler and
// the sharded front-end.
std::vector<SampleEntry> MakeWeightedSample(
    const SampleStore<PrioritySampler::Item>& store);

}  // namespace ats

#endif  // ATS_CORE_BOTTOM_K_H_
