// Bottom-k sketch: the canonical substitutable adaptive threshold
// (Section 2.5.1).
//
// The sketch retains the k items with smallest priorities seen so far; the
// adaptive threshold is the (k+1)-th smallest priority. Recalibrating any
// sampled item's priority to -infinity leaves the threshold unchanged, so
// the threshold is fully substitutable (Theorem 6) and the plain HT
// estimator with pi_i = F_i(T) is unbiased (Corollary 3). With
// WeightedUniform priorities this is exactly priority sampling [12]; with
// hashed Uniform priorities it is the KMV distinct-counting sketch.
#ifndef ATS_CORE_BOTTOM_K_H_
#define ATS_CORE_BOTTOM_K_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "ats/core/priority.h"
#include "ats/core/threshold.h"
#include "ats/util/check.h"

namespace ats {

// Generic bottom-k container over (priority, payload) pairs.
//
// Offer() is O(log k); Threshold() is O(1). The threshold starts at
// +infinity and becomes finite once k+1 distinct offers have been seen,
// after which it equals the (k+1)-th smallest priority ever offered.
template <typename Payload>
class BottomK {
 public:
  struct Entry {
    double priority;
    Payload payload;
    friend bool operator<(const Entry& a, const Entry& b) {
      return a.priority < b.priority;  // max-heap orders by priority
    }
  };

  explicit BottomK(size_t k) : k_(k) { ATS_CHECK(k >= 1); }

  // Offers an item. Returns true iff the item is retained (i.e. its
  // priority is below the current threshold and it enters the sketch).
  bool Offer(double priority, Payload payload) {
    if (priority >= threshold_) return false;
    if (heap_.size() < k_) {
      heap_.push_back(Entry{priority, std::move(payload)});
      std::push_heap(heap_.begin(), heap_.end());
      return true;
    }
    if (priority >= heap_.front().priority) {
      // Not among the k smallest: its priority is a new (k+1)-th candidate.
      threshold_ = std::min(threshold_, priority);
      return false;
    }
    // Evict the current max; the evicted priority becomes the threshold.
    std::pop_heap(heap_.begin(), heap_.end());
    threshold_ = std::min(threshold_, heap_.back().priority);
    heap_.back() = Entry{priority, std::move(payload)};
    std::push_heap(heap_.begin(), heap_.end());
    return true;
  }

  // The adaptive threshold: (k+1)-th smallest priority seen, or +infinity
  // while fewer than k+1 items have been offered.
  double Threshold() const { return threshold_; }

  // Largest retained priority (the k-th smallest seen). Only valid when
  // size() > 0.
  double MaxRetainedPriority() const {
    ATS_CHECK(!heap_.empty());
    return heap_.front().priority;
  }

  size_t size() const { return heap_.size(); }
  size_t k() const { return k_; }
  bool saturated() const { return threshold_ != kInfiniteThreshold; }

  // Retained entries in unspecified (heap) order.
  const std::vector<Entry>& entries() const { return heap_; }

  // Retained entries sorted by ascending priority.
  std::vector<Entry> SortedEntries() const {
    std::vector<Entry> out = heap_;
    std::sort(out.begin(), out.end(),
              [](const Entry& a, const Entry& b) {
                return a.priority < b.priority;
              });
    return out;
  }

  // Merges another bottom-k sketch over a disjoint stream: the result is
  // the bottom-k sketch of the concatenated streams. The threshold is the
  // min of both thresholds and of any priority evicted while merging.
  void Merge(const BottomK& other) {
    threshold_ = std::min(threshold_, other.threshold_);
    for (const Entry& e : other.heap_) {
      if (e.priority < threshold_) Offer(e.priority, e.payload);
    }
    // Offers above may have raised nothing; entries at/above threshold must
    // be purged so the invariant "retained iff priority < threshold" holds.
    PurgeAboveThreshold();
  }

  // Removes retained entries with priority >= Threshold(). Needed after
  // merges or external threshold reductions.
  void PurgeAboveThreshold() {
    if (threshold_ == kInfiniteThreshold) return;
    std::vector<Entry> kept;
    kept.reserve(heap_.size());
    for (Entry& e : heap_) {
      if (e.priority < threshold_) kept.push_back(std::move(e));
    }
    heap_ = std::move(kept);
    std::make_heap(heap_.begin(), heap_.end());
  }

  // Externally lowers the threshold (used by threshold composition); purges
  // entries that fall outside.
  void LowerThreshold(double t) {
    if (t < threshold_) {
      threshold_ = t;
      PurgeAboveThreshold();
    }
  }

 private:
  size_t k_;
  double threshold_ = kInfiniteThreshold;
  std::vector<Entry> heap_;  // max-heap on priority; size <= k_
};

// Priority sampling (weighted bottom-k) over keyed, weighted items.
//
// Each item draws priority R = U/w (coordinated via its key hash when
// `coordinated` is true, independent otherwise). The sample supports
// unbiased subset-sum estimation through estimators/subset_sum.h.
class PrioritySampler {
 public:
  struct Item {
    uint64_t key;
    double weight;
  };

  // `seed` drives independent priorities; ignored when coordinated.
  PrioritySampler(size_t k, uint64_t seed = 1, bool coordinated = false);

  // Feeds one weighted item.
  void Add(uint64_t key, double weight);

  // Current adaptive threshold tau.
  double Threshold() const { return sketch_.Threshold(); }

  size_t size() const { return sketch_.size(); }

  // Sample entries (with per-item inclusion probabilities) for estimators.
  std::vector<SampleEntry> Sample() const;

  const BottomK<Item>& sketch() const { return sketch_; }

 private:
  BottomK<Item> sketch_;
  Xoshiro256 rng_;
  bool coordinated_;
};

}  // namespace ats

#endif  // ATS_CORE_BOTTOM_K_H_
