#include "ats/core/bottom_k.h"

namespace ats {

PrioritySampler::PrioritySampler(size_t k, uint64_t seed, bool coordinated)
    : sketch_(k), rng_(seed), coordinated_(coordinated) {}

void PrioritySampler::Add(uint64_t key, double weight) {
  const PriorityDist dist = PriorityDist::WeightedUniform(weight);
  const double priority = coordinated_ ? dist.FromHash(HashKey(key))
                                       : dist.Sample(rng_);
  sketch_.Offer(priority, Item{key, weight});
}

std::vector<SampleEntry> PrioritySampler::Sample() const {
  std::vector<SampleEntry> out;
  out.reserve(sketch_.size());
  const double t = sketch_.Threshold();
  for (const auto& e : sketch_.entries()) {
    out.push_back(
        MakeWeightedEntry(e.payload.key, e.payload.weight, e.priority, t));
  }
  return out;
}

}  // namespace ats
