#include "ats/core/bottom_k.h"

#include <array>

namespace {
constexpr uint32_t kPrioritySamplerMagic = 0x50534d32;  // "PSM2"
constexpr uint32_t kPrioritySamplerVersion = 1;
}  // namespace

namespace ats {

PrioritySampler::PrioritySampler(size_t k, uint64_t seed, bool coordinated)
    : sketch_(k), rng_(seed), coordinated_(coordinated) {}

void PrioritySampler::Add(uint64_t key, double weight) {
  const PriorityDist dist = PriorityDist::WeightedUniform(weight);
  const double priority = coordinated_ ? dist.FromHash(HashKey(key))
                                       : dist.Sample(rng_);
  sketch_.Offer(priority, Item{key, weight});
}

size_t PrioritySampler::AddBatch(std::span<const Item> items) {
  batch_priorities_.resize(items.size());
  if (coordinated_) {
    for (size_t i = 0; i < items.size(); ++i) {
      batch_priorities_[i] = PriorityDist::WeightedUniform(items[i].weight)
                                 .FromHash(HashKey(items[i].key));
    }
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      batch_priorities_[i] =
          PriorityDist::WeightedUniform(items[i].weight).Sample(rng_);
    }
  }
  return sketch_.OfferBatch(batch_priorities_, items);
}

std::vector<SampleEntry> PrioritySampler::Sample() const {
  return MakeWeightedSample(sketch_.store());
}

std::vector<SampleEntry> MakeWeightedSample(
    const SampleStore<PrioritySampler::Item>& store) {
  std::vector<SampleEntry> out;
  out.reserve(store.size());
  const double t = store.Threshold();
  for (size_t i = 0; i < store.size(); ++i) {
    const PrioritySampler::Item& item = store.payloads()[i];
    out.push_back(
        MakeWeightedEntry(item.key, item.weight, store.priorities()[i], t));
  }
  return out;
}

void PrioritySampler::Merge(const PrioritySampler& other) {
  sketch_.Merge(other.sketch_);
}

void PrioritySampler::MergeMany(
    std::span<const PrioritySampler* const> others) {
  std::vector<const BottomK<Item>*> inputs;
  inputs.reserve(others.size());
  for (const PrioritySampler* other : others) {
    inputs.push_back(&other->sketch_);
  }
  sketch_.MergeMany(inputs);  // skips the sketch aliasing `this`
}

void PrioritySampler::SerializeTo(ByteWriter& w) const {
  WriteSketchHeader(w, kPrioritySamplerMagic, kPrioritySamplerVersion);
  w.WriteU32(coordinated_ ? 1 : 0);
  WriteRngState(w, rng_.State());
  sketch_.SerializeTo(w);  // the nested BottomK frame carries the sample
}

std::optional<PrioritySampler> PrioritySampler::Deserialize(ByteReader& r) {
  if (!ReadSketchHeader(r, kPrioritySamplerMagic,
                        kPrioritySamplerVersion)) {
    return std::nullopt;
  }
  const auto coordinated = r.ReadU32();
  if (!coordinated) return std::nullopt;
  const auto rng_state = ReadRngState(r);
  if (!rng_state) return std::nullopt;
  auto sketch = BottomK<Item>::Deserialize(r);
  if (!sketch) return std::nullopt;
  PrioritySampler sampler(sketch->k(), /*seed=*/1, *coordinated != 0);
  sampler.sketch_ = std::move(*sketch);
  sampler.rng_.SetState(*rng_state);
  return sampler;
}

FrameFault PrioritySampler::DiagnoseFrame(std::string_view frame) {
  const FrameFault f = ClassifyFrameBytes(frame, kPrioritySamplerMagic,
                                          kPrioritySamplerVersion);
  if (f != FrameFault::kNone) return f;
  return Deserialize(frame).has_value() ? FrameFault::kNone
                                        : FrameFault::kCorruptBody;
}

std::optional<PrioritySampler::FrameView> PrioritySampler::DeserializeView(
    std::string_view frame) {
  auto r = OpenCheckedFrame(frame, kPrioritySamplerMagic,
                            kPrioritySamplerVersion);
  if (!r) return std::nullopt;
  const auto coordinated = r->ReadU32();
  if (!coordinated) return std::nullopt;
  if (!ReadRngState(*r)) return std::nullopt;
  // The rest of the body is exactly the embedded bottom-k sample region.
  auto sample = BottomK<Item>::ViewBody(r->Rest());
  if (!sample) return std::nullopt;
  FrameView view;
  view.coordinated_ = *coordinated != 0;
  view.sample_ = *sample;
  return view;
}

bool PrioritySampler::MergeManyFrames(
    std::span<const std::string_view> frames) {
  // Vet every frame before the first one is applied (all-or-nothing).
  std::vector<BottomK<Item>::FrameView> views;
  views.reserve(frames.size());
  for (std::string_view f : frames) {
    auto view = DeserializeView(f);
    if (!view) return false;
    views.push_back(view->sample_);
  }
  if (views.empty()) return true;  // strict no-op, like MergeMany({})
  sketch_.MergeValidatedViews(views);
  return true;
}

}  // namespace ats
