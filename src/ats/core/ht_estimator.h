// Horvitz-Thompson and pseudo-HT estimation over adaptive threshold
// samples (Sections 2.2, 2.5, 2.6.1).
//
// All estimators consume spans of SampleEntry and use the per-item
// pseudo-inclusion probability pi_i = F_i(T_i). By Theorem 4 / Corollary 5
// these fixed-threshold estimators are unbiased whenever the producing
// sampler's threshold is substitutable (all samplers in this library are,
// and tests verify it); the degree-d estimators (pairwise and higher) need
// d-substitutability.
#ifndef ATS_CORE_HT_ESTIMATOR_H_
#define ATS_CORE_HT_ESTIMATOR_H_

#include <functional>
#include <span>
#include <vector>

#include "ats/core/threshold.h"

namespace ats {

// HT estimate of the population total sum_i x_i from a sample:
// sum over sampled i of value_i / pi_i (Corollary 3).
double HtTotal(std::span<const SampleEntry> sample);

// HT estimate of a subset sum: only entries whose key satisfies `in_subset`
// contribute (the "zero out items outside the subset" device of [12]).
double HtSubsetSum(std::span<const SampleEntry> sample,
                   const std::function<bool(uint64_t)>& in_subset);

// HT estimate of the number of (weighted) items: sum of 1/pi_i.
double HtCount(std::span<const SampleEntry> sample);

// Unbiased estimate of Var(theta_hat) for the HT total under a fixed (or
// substitutable adaptive) threshold:  sum_i Z_i x_i^2 (1-pi_i)/pi_i^2
// (Section 2.6.1; valid when the sample has >= 2 items for bottom-k).
double HtVarianceEstimate(std::span<const SampleEntry> sample);

// True variance of the fixed-threshold HT total over a known population:
// sum_i x_i^2 (1 - F_i(t)) / F_i(t). `dists` and `values` are parallel.
double FixedThresholdVariance(std::span<const double> values,
                              std::span<const PriorityDist> dists, double t);

// Normal-approximation confidence interval half-width at ~95% for the HT
// total, from the variance estimate.
double HtConfidenceHalfWidth95(std::span<const SampleEntry> sample);

// Pseudo-HT estimate of a pairwise population sum
//   sum_{i != j} h(x_i, x_j)
// from sampled items (Theorem 2 with |lambda| = 2):
//   sum over sampled pairs i != j of h_ij / (pi_i pi_j).
// Requires a 2-substitutable threshold. O(m^2) over the sample.
double PairwiseHtSum(
    std::span<const SampleEntry> sample,
    const std::function<double(const SampleEntry&, const SampleEntry&)>& h);

// Pseudo-HT estimate of sum over ordered triples of distinct items.
// Requires 3-substitutability. O(m^3).
double TripleHtSum(
    std::span<const SampleEntry> sample,
    const std::function<double(const SampleEntry&, const SampleEntry&,
                               const SampleEntry&)>& h);

// Pseudo-HT estimate of sum over ordered quadruples of distinct items.
// Requires 4-substitutability. O(m^4); intended for modest sample sizes.
double QuadrupleHtSum(
    std::span<const SampleEntry> sample,
    const std::function<double(const SampleEntry&, const SampleEntry&,
                               const SampleEntry&, const SampleEntry&)>& h);

}  // namespace ats

#endif  // ATS_CORE_HT_ESTIMATOR_H_
