// Shared shard-routing constants for the sharded and concurrent
// front-ends. The sequential front-ends (ShardedSampler,
// ShardedWindowSampler, ShardedDecaySampler) and their concurrent
// counterparts (concurrent_sampler.h) must route keys identically and
// derive per-shard seeds identically: that is what makes a concurrent
// front-end bit-equivalent to its sequential sibling over the same
// stream, which the differential tests rely on.
#ifndef ATS_CORE_SHARD_ROUTING_H_
#define ATS_CORE_SHARD_ROUTING_H_

#include <cstdint>

namespace ats::internal {

// Salt for the shard-routing hash of the keyed front-ends. Distinct from
// the (salt-0) priority hash so the routing decision is independent of
// the priority value.
inline constexpr uint64_t kShardRouteSalt = 0x5ca1ab1e0ddba11ULL;

// Salt for the time-axis front-ends; distinct from every priority salt
// so routing never biases per-shard priorities.
inline constexpr uint64_t kTimeAxisRouteSalt = 0x7e11ca7a11afe77ULL;

// Per-shard seed stride: shard s of a front-end constructed with `seed`
// is seeded with seed + s * kShardSeedStride (the 64-bit golden ratio,
// so per-shard seeds never collide for realistic shard counts).
inline constexpr uint64_t kShardSeedStride = 0x9e3779b97f4a7c15ULL;

// Salt for writer-local mini-sampler seed derivation (writer_local.h):
// mini (writer w, generation g, shard s) is seeded with
// seed + s * kShardSeedStride + WriterLocalSalt(w, g), hashed with this
// salt so mini seeds fall off the authoritative per-shard seed lattice.
// Distinct from every routing salt: seed derivation must never correlate
// with the routing decision.
inline constexpr uint64_t kWriterLocalSeedSalt = 0xd1f7ab1e5eed5a17ULL;

}  // namespace ats::internal

#endif  // ATS_CORE_SHARD_ROUTING_H_
