// Priority distributions (Section 2.1 of the paper).
//
// Each item x_i carries an independent random "priority" R_i with CDF F_i.
// The item is sampled iff R_i < T_i for a (possibly adaptive) threshold
// T_i, so its pseudo-inclusion probability is F_i(T_i). This header
// provides the priority families used throughout the paper:
//
//  * UniformPriority        R = U ~ Uniform(0,1);         F(t) = clamp(t,0,1)
//  * WeightedUniformPriority R = U/w ~ Uniform(0,1/w);    F(t) = min(1, w t)
//    (the priority-sampling / PPS family [12]; weight w > 0)
//  * ExponentialPriority    R ~ Exponential(rate w);      F(t) = 1 - e^{-wt}
//    (bottom-k order sampling with exponential ranks; asymptotically
//    equivalent to WeightedUniformPriority by Theorem 12)
//
// The priority-threshold duality of Section 2.9: an item with priority
// R = F^{-1}(U) and threshold T is included iff U < F(T), so rescaling
// priorities is equivalent to rescaling thresholds. PriorityDist exposes
// Cdf / InverseCdf so samplers can work on either side of the duality.
#ifndef ATS_CORE_PRIORITY_H_
#define ATS_CORE_PRIORITY_H_

#include <algorithm>
#include <cmath>

#include "ats/core/random.h"
#include "ats/util/check.h"

namespace ats {

// Kind discriminator for the closed set of priority families the library
// ships. A small tagged value type (rather than a virtual hierarchy) keeps
// priorities trivially copyable and cheap to store per sample entry.
enum class PriorityFamily {
  kUniform,           // R ~ Uniform(0, 1)
  kWeightedUniform,   // R ~ Uniform(0, 1/w)
  kExponential,       // R ~ Exponential(rate w)
};

// A per-item priority distribution. Value type: copyable, 16 bytes.
class PriorityDist {
 public:
  // Uniform(0,1): the unweighted / distinct-counting case.
  static PriorityDist Uniform() {
    return PriorityDist(PriorityFamily::kUniform, 1.0);
  }

  // Uniform(0, 1/weight): priority sampling with the given weight.
  static PriorityDist WeightedUniform(double weight) {
    ATS_CHECK(weight > 0.0);
    return PriorityDist(PriorityFamily::kWeightedUniform, weight);
  }

  // Exponential with the given rate (larger rate => smaller priorities =>
  // more likely sampled).
  static PriorityDist Exponential(double rate) {
    ATS_CHECK(rate > 0.0);
    return PriorityDist(PriorityFamily::kExponential, rate);
  }

  PriorityFamily family() const { return family_; }
  double weight() const { return weight_; }

  // CDF F(t) = P(R < t). Clamped to [0, 1].
  double Cdf(double t) const {
    if (t <= 0.0) return 0.0;
    switch (family_) {
      case PriorityFamily::kUniform:
        return std::min(t, 1.0);
      case PriorityFamily::kWeightedUniform:
        return std::min(weight_ * t, 1.0);
      case PriorityFamily::kExponential:
        return -std::expm1(-weight_ * t);
    }
    return 0.0;  // unreachable
  }

  // Inverse CDF: F^{-1}(u) for u in [0, 1).
  double InverseCdf(double u) const {
    ATS_DCHECK(u >= 0.0 && u <= 1.0);
    switch (family_) {
      case PriorityFamily::kUniform:
        return u;
      case PriorityFamily::kWeightedUniform:
        return u / weight_;
      case PriorityFamily::kExponential:
        return -std::log1p(-u) / weight_;
    }
    return 0.0;  // unreachable
  }

  // Draws a priority using the generator. Never returns exactly 0 so
  // downstream code may divide by priorities.
  double Sample(Xoshiro256& rng) const {
    return InverseCdf(rng.NextDoubleOpenZero());
  }

  // Draws the coordinated priority determined by a 64-bit item hash: the
  // same (hash, distribution) pair always yields the same priority. This is
  // the mechanism behind coordinated samples, distinct counting, and merges.
  double FromHash(uint64_t hash) const { return InverseCdf(HashToUnit(hash)); }

 private:
  PriorityDist(PriorityFamily family, double weight)
      : family_(family), weight_(weight) {}

  PriorityFamily family_;
  double weight_;
};

}  // namespace ats

#endif  // ATS_CORE_PRIORITY_H_
