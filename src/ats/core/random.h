// Deterministic random-number and hashing utilities.
//
// Adaptive threshold sampling relies on two distinct sources of randomness:
//
//  * Per-stream pseudo-random priorities (e.g. Uniform(0,1) draws). These
//    use Xoshiro256++, seeded via SplitMix64, so every experiment is
//    reproducible from a single 64-bit seed.
//  * Hash-derived priorities for *coordinated* samples: the same item must
//    map to the same priority in every sketch (distinct counting, merges,
//    distributed sampling). These use a strong 64-bit finalizer over the
//    item key plus a sketch-family salt.
#ifndef ATS_CORE_RANDOM_H_
#define ATS_CORE_RANDOM_H_

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <string_view>

namespace ats {

// SplitMix64: tiny generator used for seeding and cheap stateless hashing.
// Passes BigCrush when used as a 64-bit mixer. See Vigna (2015).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256++: the library's workhorse PRNG. Satisfies the C++
// UniformRandomBitGenerator concept so it composes with <random>.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  result_type operator()() { return Next(); }

  uint64_t Next();

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  // Uniform double in (0, 1]: never returns 0, so 1/x and -log(x) are safe.
  double NextDoubleOpenZero();

  // Generator state snapshot/restore, used to serialize samplers whose
  // priority stream must continue deterministically after a round trip.
  std::array<uint64_t, 4> State() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void SetState(const std::array<uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state[i];
    have_gaussian_ = false;
    cached_gaussian_ = 0.0;
  }

  // Uniform integer in [0, n).
  uint64_t NextBelow(uint64_t n);

  // Standard exponential deviate (rate 1). Log-free hot path: uses the
  // FastLog kernel (src/ats/core/simd/fast_log.h, within 2 ulp of libm)
  // instead of std::log.
  double NextExponential();

  // Fills `out` with standard exponential deviates: bit-identical to
  // out.size() consecutive NextExponential() calls (same stream
  // consumption, same values), but draws the uniform column first and
  // runs the runtime-dispatched vectorized log kernel over it.
  void FillExponentials(std::span<double> out);

  // Fills `out` with uniforms in (0, 1]: bit-identical to out.size()
  // consecutive NextDoubleOpenZero() calls. The batched-ingest entry
  // points use this to draw a dense priority column up front instead of
  // interleaving generator calls with per-row work.
  void FillUniformsOpenZero(std::span<double> out);

  // Standard normal deviate via Marsaglia polar method.
  double NextGaussian();

 private:
  uint64_t s_[4];
  bool have_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Stateless 64-bit mix (MurmurHash3 fmix64). Good avalanche behaviour;
// used to derive coordinated priorities from item identities.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Hash of a byte string (FNV-1a folded through Mix64). Deterministic across
// runs and platforms.
uint64_t HashBytes(std::string_view bytes, uint64_t salt = 0);

// Hash of an integer key with a salt.
inline uint64_t HashKey(uint64_t key, uint64_t salt = 0) {
  return Mix64(key + 0x9e3779b97f4a7c15ULL * (salt + 1));
}

// Maps a 64-bit hash to a double in (0, 1]: the canonical "hash priority"
// for coordinated/distinct-count samples. Open at zero so estimators may
// divide by the priority.
inline double HashToUnit(uint64_t h) {
  // 2^-64 * (h + 1): h = 2^64-1 maps to 1.0, h = 0 maps to 2^-64 > 0.
  return (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
}

}  // namespace ats

#endif  // ATS_CORE_RANDOM_H_
