// Writer-local wait-free ingest machinery for the concurrent tier
// (concurrent_sampler.h).
//
// The striped-lock write path serializes two writers that hit the same
// shard. This header provides the alternative the mergeable-sample
// algebra makes sound: every registered writer owns a private BLOCK of
// per-shard mini-samplers and ingests into it with no shared-state
// writes at all except two release-ordered atomics (a single-slot block
// mailbox and a per-writer epoch counter). Because per-shard samples
// over disjoint substreams merge exactly (the threshold-pruned MergeMany
// engine of sample_store.h), the minis can be reconciled into the
// authoritative shards lazily -- at epoch boundaries, by whichever
// reader finds the cache dirty -- instead of on every batch.
//
// Block handoff protocol (per writer slot):
//   * The writer takes its block with mailbox.exchange(nullptr), falls
//     back to spare.exchange(nullptr), and allocates a fresh block only
//     when both are empty (which happens only while a drain is holding
//     the block -- steady state never allocates). It ingests into the
//     block's minis with zero shared writes, then release-stores the
//     block back into the mailbox and release-stores an incremented
//     epoch. Every step is wait-free: one exchange, one store each.
//   * The drainer (under the owner's drain lock) acquire-loads the
//     epoch, and only if it moved past the recorded drained epoch,
//     exchanges the mailbox. A null mailbox means the writer is
//     mid-batch holding the block; the items are not lost -- they ride
//     in the block the writer will re-publish -- so the drainer simply
//     leaves the drained epoch stale and retries on the next drain.
//     Taken blocks are merged into the shards, reset with a fresh
//     generation salt, and recycled through the spare slot.
//
// The ordering contract that makes the epoch a valid dirtiness token:
// the writer stores the mailbox BEFORE bumping the epoch (both
// release), and the drainer loads the epoch BEFORE exchanging the
// mailbox (both acquire). A drainer that observes epoch E and then a
// non-null mailbox therefore observes every batch published up to E,
// and records drained==E only in that case.
#ifndef ATS_CORE_WRITER_LOCAL_H_
#define ATS_CORE_WRITER_LOCAL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "ats/util/check.h"

namespace ats::internal {

/// Hard cap on writer registrations per sampler lifetime. Slots are
/// never reused (a retired slot keeps its final epoch so snapshot
/// validation stays race-free), so this bounds TOTAL registrations,
/// not just concurrent ones. The slot array (~64 B/slot) is allocated
/// lazily on the first registration; samplers that only use the locked
/// path pay nothing.
inline constexpr size_t kMaxWriterSlots = 256;

/// Seed perturbation for writer-local mini-samplers, defined in
/// writer_local.cc. Generation 0 of writer 0 returns 0 -- those minis
/// are seeded exactly like the authoritative shards, which is what
/// keeps a single writer-local writer bit-equivalent to the sequential
/// sharded reference. Every other (writer, generation) pair returns a
/// distinct nonzero salt so no two mini-samplers ever replay the same
/// priority stream (a reset mini continuing its old RNG would repeat
/// its draws and bias independent-priority scenarios).
uint64_t WriterLocalSalt(uint64_t writer, uint64_t generation);

/// Registration and cross-thread handoff state for writer-local ingest.
/// `Block` is the owner's per-writer mini-store bundle; the registry
/// only ever touches it as an opaque pointer (it deletes leftover
/// blocks on destruction, so Block must be complete at that point).
template <typename Block>
class WriterLocalRegistry {
 public:
  /// One writer's coordination state, padded so two writers' hot
  /// atomics never share a cache line.
  struct alignas(64) Slot {
    /// The writer's published block (null while the writer or a drain
    /// holds it). Writer: exchange-to-take, store-to-publish. Drainer:
    /// exchange-to-take only.
    std::atomic<Block*> mailbox{nullptr};
    /// Recycled empty block (drainer stores, writer takes).
    std::atomic<Block*> spare{nullptr};
    /// Monotone batch counter, release-published by the writer AFTER
    /// the mailbox store; the snapshot-dirtiness token.
    std::atomic<uint64_t> epoch{0};
    /// Mini-sampler generation counter; drives WriterLocalSalt.
    std::atomic<uint64_t> generation{0};
    /// Last epoch whose published content was fully merged into the
    /// authoritative shards. Guarded by the owner's drain lock.
    uint64_t drained_epoch = 0;
  };

  WriterLocalRegistry() = default;
  WriterLocalRegistry(const WriterLocalRegistry&) = delete;
  WriterLocalRegistry& operator=(const WriterLocalRegistry&) = delete;

  ~WriterLocalRegistry() {
    SlotArray* arr = slots_.load(std::memory_order_acquire);
    if (arr == nullptr) return;
    const size_t n = count();
    for (size_t i = 0; i < n; ++i) {
      delete arr->slots[i].mailbox.load(std::memory_order_acquire);
      delete arr->slots[i].spare.load(std::memory_order_acquire);
    }
    delete arr;
  }

  struct Registration {
    Slot* slot;
    size_t index;
  };

  /// Claims the next slot. Thread-safe and lock-free (one CAS on the
  /// lazy array, one fetch_add); checks the lifetime registration cap.
  Registration Register() {
    SlotArray* arr = slots_.load(std::memory_order_acquire);
    if (arr == nullptr) {
      SlotArray* fresh = new SlotArray();
      if (slots_.compare_exchange_strong(arr, fresh,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        arr = fresh;
      } else {
        delete fresh;  // another thread won; `arr` holds the winner
      }
    }
    const size_t index = count_.fetch_add(1, std::memory_order_acq_rel);
    ATS_CHECK(index < kMaxWriterSlots);
    return Registration{&arr->slots[index], index};
  }

  /// Number of slots ever registered. Safe from any thread.
  size_t count() const {
    const size_t n = count_.load(std::memory_order_acquire);
    return n < kMaxWriterSlots ? n : kMaxWriterSlots;
  }

  /// Slot `i` (i < count()). The returned reference is stable for the
  /// registry's lifetime; the atomics inside are safe from any thread.
  Slot& slot(size_t i) const {
    return slots_.load(std::memory_order_acquire)->slots[i];
  }

 private:
  // Slots are preconstructed in one fixed array so a freshly registered
  // slot needs no publication step beyond the count increment.
  struct SlotArray {
    Slot slots[kMaxWriterSlots];
  };

  std::atomic<SlotArray*> slots_{nullptr};
  std::atomic<size_t> count_{0};
};

}  // namespace ats::internal

#endif  // ATS_CORE_WRITER_LOCAL_H_
