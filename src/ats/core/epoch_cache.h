// Helpers for the mutation-epoch dirty-cache pattern shared by the
// sharded front-ends (ShardedSampler, ShardedWindowSampler,
// ShardedDecaySampler): a cached merged result stays valid while every
// shard's mutation epoch still matches the snapshot taken when the
// cache was built. Keeping the check and the snapshot in one place
// means a future change to the invalidation rule lands in every
// front-end at once.
#ifndef ATS_CORE_EPOCH_CACHE_H_
#define ATS_CORE_EPOCH_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ats {

// True iff every shard's epoch equals its snapshot entry. `epoch_of`
// maps a shard to its current mutation epoch.
template <typename Shards, typename EpochOf>
bool EpochsClean(const Shards& shards,
                 const std::vector<uint64_t>& snapshot, EpochOf&& epoch_of) {
  size_t i = 0;
  for (const auto& shard : shards) {
    if (epoch_of(shard) != snapshot[i++]) return false;
  }
  return true;
}

// Re-snapshots every shard's epoch; call right after rebuilding the
// cached merge (the merge reads but never observably mutates the
// shards, so a snapshot taken afterwards stays valid until the next
// ingest).
template <typename Shards, typename EpochOf>
void SnapshotEpochs(const Shards& shards, std::vector<uint64_t>& snapshot,
                    EpochOf&& epoch_of) {
  snapshot.clear();
  for (const auto& shard : shards) snapshot.push_back(epoch_of(shard));
}

}  // namespace ats

#endif  // ATS_CORE_EPOCH_CACHE_H_
