// Helpers for the mutation-epoch dirty-cache pattern shared by the
// sharded front-ends (ShardedSampler, ShardedWindowSampler,
// ShardedDecaySampler): a cached merged result stays valid while every
// shard's mutation epoch still matches the snapshot taken when the
// cache was built. Keeping the check and the snapshot in one place
// means a future change to the invalidation rule lands in every
// front-end at once.
//
// The single-threaded front-ends read shard epochs directly
// (EpochsClean / SnapshotEpochs below). The concurrent front-end
// (concurrent_sampler.h) cannot: a reader polling a shard's
// mutation_epoch() while a writer ingests is a data race. It instead
// uses the atomic epoch protocol at the bottom of this header --
// PublishedEpochs, an array of per-shard atomics that writers update
// with release stores after every locked mutation (and the drain after
// every writer-local absorption) and readers poll with acquire loads to
// validate a cached snapshot without touching any shard lock. The
// wait-free writer-local path layers a SECOND epoch axis on the same
// idea: each registered writer release-publishes a private batch
// counter (writer_local.h), and a snapshot is clean only when both the
// per-shard AND the per-writer epochs still match the vectors recorded
// at build time.
#ifndef ATS_CORE_EPOCH_CACHE_H_
#define ATS_CORE_EPOCH_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ats {

// True iff every shard's epoch equals its snapshot entry. `epoch_of`
// maps a shard to its current mutation epoch.
template <typename Shards, typename EpochOf>
bool EpochsClean(const Shards& shards,
                 const std::vector<uint64_t>& snapshot, EpochOf&& epoch_of) {
  size_t i = 0;
  for (const auto& shard : shards) {
    if (epoch_of(shard) != snapshot[i++]) return false;
  }
  return true;
}

// Re-snapshots every shard's epoch; call right after rebuilding the
// cached merge (the merge reads but never observably mutates the
// shards, so a snapshot taken afterwards stays valid until the next
// ingest).
template <typename Shards, typename EpochOf>
void SnapshotEpochs(const Shards& shards, std::vector<uint64_t>& snapshot,
                    EpochOf&& epoch_of) {
  snapshot.clear();
  for (const auto& shard : shards) snapshot.push_back(epoch_of(shard));
}

// --- Atomic epoch protocol (the concurrent front-end) -----------------

/// One shard's published epoch, padded to its own cache line so adjacent
/// shards' publications never false-share: each writer thread touches
/// only its shard's line on the ingest hot path.
struct alignas(64) PublishedEpochSlot {
  std::atomic<uint64_t> value{0};
};

/// Per-shard epochs published across threads. Writers call Publish with
/// the shard's mutation epoch (read under the shard's lock) after every
/// mutating batch -- a release store, so a reader that observes the new
/// epoch also observes the writes it covers. Readers validate a cached
/// snapshot with Matches (acquire loads): if every published epoch still
/// equals the snapshot's epoch vector, no shard has observably changed
/// since the snapshot was built and the cache may be returned without
/// taking any lock -- this is what keeps clean-cache reads from ever
/// blocking writers.
class PublishedEpochs {
 public:
  explicit PublishedEpochs(size_t num_shards)
      : slots_(std::make_unique<PublishedEpochSlot[]>(num_shards)),
        size_(num_shards) {}

  /// Release-stores shard `i`'s epoch. Call after the mutation, while
  /// still holding (or having just released) the shard's lock.
  void Publish(size_t i, uint64_t epoch) {
    slots_[i].value.store(epoch, std::memory_order_release);
  }

  /// Acquire-loads shard `i`'s last published epoch.
  uint64_t Load(size_t i) const {
    return slots_[i].value.load(std::memory_order_acquire);
  }

  /// True iff every published epoch equals its snapshot entry (the
  /// lock-free cache validation; false on size mismatch).
  bool Matches(const std::vector<uint64_t>& snapshot) const {
    if (snapshot.size() != size_) return false;
    for (size_t i = 0; i < size_; ++i) {
      if (Load(i) != snapshot[i]) return false;
    }
    return true;
  }

  size_t size() const { return size_; }

 private:
  std::unique_ptr<PublishedEpochSlot[]> slots_;
  size_t size_;
};

}  // namespace ats

#endif  // ATS_CORE_EPOCH_CACHE_H_
