#include "ats/core/composition.h"

#include <algorithm>

#include "ats/core/threshold.h"
#include "ats/util/check.h"

namespace ats {

std::vector<double> ComposeMin(const std::vector<double>& a,
                               const std::vector<double>& b) {
  ATS_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = std::min(a[i], b[i]);
  return out;
}

std::vector<double> ComposeMax(const std::vector<double>& a,
                               const std::vector<double>& b) {
  ATS_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = std::max(a[i], b[i]);
  return out;
}

ThresholdingRule MinRule(std::vector<ThresholdingRule> rules) {
  ATS_CHECK(!rules.empty());
  return [rules = std::move(rules)](const std::vector<double>& priorities) {
    std::vector<double> t = rules[0](priorities);
    for (size_t r = 1; r < rules.size(); ++r) {
      t = ComposeMin(t, rules[r](priorities));
    }
    return t;
  };
}

ThresholdingRule MaxRule(std::vector<ThresholdingRule> rules) {
  ATS_CHECK(!rules.empty());
  return [rules = std::move(rules)](const std::vector<double>& priorities) {
    std::vector<double> t = rules[0](priorities);
    for (size_t r = 1; r < rules.size(); ++r) {
      t = ComposeMax(t, rules[r](priorities));
    }
    return t;
  };
}

ThresholdingRule GlobalMinRule(ThresholdingRule rule) {
  return [rule = std::move(rule)](const std::vector<double>& priorities) {
    std::vector<double> t = rule(priorities);
    double m = kInfiniteThreshold;
    for (double x : t) m = std::min(m, x);
    std::fill(t.begin(), t.end(), m);
    return t;
  };
}

}  // namespace ats
