// Sharded ingestion front-end for priority sampling (Section 2.5).
//
// Heavy streams are ingested by hash-partitioning keys across S
// independent per-shard bottom-k samplers; each shard only ever touches
// its own SampleStore, so shards can be fed from S threads (or S nodes)
// with no synchronization. Because the shards use coordinated priorities
// (priority = hash(key)-derived, Section 2.5) and the key partition makes
// the per-shard streams disjoint, merging the per-shard samples with the
// bottom-k union rule reproduces EXACTLY the sample and threshold a
// single k-capacity store would have produced over the whole stream:
// every one of the global bottom-k priorities is necessarily among its
// own shard's bottom-k, and the merge threshold (min of shard thresholds
// and merge evictions) recovers the global (k+1)-th smallest priority.
// Substitutability (Theorem 6) then makes the merged threshold usable by
// the plain HT estimators unchanged.
//
// In independent-priority mode the merged sample is a valid bottom-k
// sample of the stream (unbiased HT estimates), just not bit-identical to
// a particular single-store run.
//
// Queries aggregate the shards through the threshold-pruned k-way merge
// engine (SampleStore::MergeMany): one pass takes the global bound (min
// of shard thresholds), each shard's candidate column is block-filtered
// against it, and a single selection finishes the union -- instead of S
// sequential pairwise merge+compaction rounds. The merged result is
// cached against the shards' mutation epochs, so repeated queries
// between ingest batches re-canonicalize and re-merge nothing.
//
// Thread-safety: per-shard ingest (AddShardBatch with distinct shard
// indices) is lock-free safe. Query APIs (Sample, Merged,
// MergedThreshold, TotalRetained, shard) touch EVERY shard: they may
// canonicalize any shard's compaction store (an explicit
// SampleStore::Canonicalize from query context) and refresh the shared
// merge cache, i.e. they mutate representation state under const -- run
// queries from one thread, not concurrently with each other or with
// ingest into ANY shard. Quiesce all ingest threads before querying;
// once a query has run and no further ingest happens, repeated queries
// are pure cache reads.
#ifndef ATS_CORE_SHARDED_SAMPLER_H_
#define ATS_CORE_SHARDED_SAMPLER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ats/core/bottom_k.h"
#include "ats/core/threshold.h"
#include "ats/util/memory.h"

namespace ats {

class ShardedSampler {
 public:
  using Item = PrioritySampler::Item;

  /// num_shards: number of independent per-shard samplers. k: sample
  /// capacity -- of every shard AND of the merged sample (per-shard k
  /// guarantees the merged bottom-k is exact; see header comment).
  /// `coordinated` selects hash-derived priorities (default; required for
  /// exact equivalence with a coordinated single store); `seed` drives
  /// per-shard RNGs in independent mode.
  ShardedSampler(size_t num_shards, size_t k, bool coordinated = true,
                 uint64_t seed = 1);

  /// Routes one item to its shard.
  void Add(uint64_t key, double weight);

  /// Batched ingest: partitions the batch into per-shard runs, then feeds
  /// each shard through the fused batch pipeline (priorities for the whole
  /// run are computed into a dense column, block-filtered against the
  /// shard's acceptance bound, and accepted candidates appended to its
  /// compaction buffer in amortized O(1)). Returns the number of accepted
  /// items.
  size_t AddBatch(std::span<const Item> items);

  /// Feeds a pre-partitioned run straight into one shard, through the same
  /// fused batch pipeline -- no per-key hash->Offer round trips. Every
  /// item must route to `shard` (checked in debug builds). Because each
  /// shard owns an independent store, concurrent calls for DIFFERENT shard
  /// indices are safe -- this is the entry point for S ingest threads.
  size_t AddShardBatch(size_t shard, std::span<const Item> items);

  /// Shard index for a key (a salted hash independent of the priority
  /// hash, so shard routing does not bias per-shard priorities).
  size_t ShardOf(uint64_t key) const;

  /// Merged bottom-k sample of the whole stream with per-item inclusion
  /// probabilities at the merged threshold; feeds the usual estimators.
  std::vector<SampleEntry> Sample() const;

  /// The merged adaptive threshold (the global (k+1)-th smallest priority
  /// in coordinated mode).
  double MergedThreshold() const;

  /// Sample and threshold from a single shard-union pass; use this when
  /// both are needed per query (Sample() + MergedThreshold() would merge
  /// twice).
  struct MergedSample {
    std::vector<SampleEntry> entries;
    double threshold;
  };
  MergedSample Merged() const;

  size_t num_shards() const { return shards_.size(); }
  size_t k() const { return k_; }

  /// Total items currently retained across all shards (>= merged sample
  /// size; the merge re-caps at k).
  size_t TotalRetained() const;

  /// Live heap bytes across the shards plus the engaged merge cache
  /// (util/memory.h convention); excludes the reusable batch scratch.
  /// O(S), non-canonicalizing -- never rebuilds the cache.
  size_t MemoryFootprint() const {
    size_t total = VectorFootprint(shards_);
    for (const PrioritySampler& s : shards_) total += s.MemoryFootprint();
    if (merged_cache_.has_value()) {
      total += merged_cache_->MemoryFootprint();
    }
    return total + VectorFootprint(merged_epochs_);
  }

  const PrioritySampler& shard(size_t i) const { return shards_[i]; }

 private:
  /// Returns the k-capacity union of all shard stores, rebuilt through
  /// the k-way merge engine only when some shard's mutation epoch moved
  /// since the cached union was taken (the dirty-epoch cache).
  const BottomK<Item>& MergeShards() const;

  size_t k_;
  uint64_t route_salt_;
  std::vector<PrioritySampler> shards_;
  /// Per-shard scratch buffers reused across AddBatch calls.
  std::vector<std::vector<Item>> batch_scratch_;
  /// Query-side merge cache: the shard union plus the per-shard
  /// SampleStore::mutation_epoch() snapshot it was built at. Mutable with
  /// the same contract as the stores' canonicalization: refreshed under
  /// const from single-threaded query context, never from ingest.
  mutable std::optional<BottomK<Item>> merged_cache_;
  mutable std::vector<uint64_t> merged_epochs_;
};

}  // namespace ats

#endif  // ATS_CORE_SHARDED_SAMPLER_H_
