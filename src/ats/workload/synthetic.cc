#include "ats/workload/synthetic.h"

#include <algorithm>
#include <cmath>

#include "ats/util/check.h"

namespace ats {

std::vector<WeightedItem> MakeWeightedPopulation(size_t n, uint64_t seed,
                                                 bool value_equals_weight,
                                                 double sigma) {
  Xoshiro256 rng(seed);
  std::vector<WeightedItem> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i].key = i;
    out[i].weight = std::exp(sigma * rng.NextGaussian());
    out[i].value = value_equals_weight
                       ? out[i].weight
                       : std::exp(sigma * rng.NextGaussian());
  }
  return out;
}

std::vector<BivariatePoint> MakeCorrelatedGaussian(size_t n, double rho,
                                                   uint64_t seed) {
  ATS_CHECK(rho >= -1.0 && rho <= 1.0);
  Xoshiro256 rng(seed);
  std::vector<BivariatePoint> out(n);
  const double c = std::sqrt(1.0 - rho * rho);
  for (auto& p : out) {
    const double z1 = rng.NextGaussian();
    const double z2 = rng.NextGaussian();
    p.x = z1;
    p.y = rho * z1 + c * z2;
  }
  return out;
}

std::vector<std::vector<double>> MakeObjectiveWeights(size_t n,
                                                      size_t num_objectives,
                                                      double mix,
                                                      uint64_t seed,
                                                      double sigma) {
  ATS_CHECK(mix >= 0.0 && mix <= 1.0);
  ATS_CHECK(num_objectives >= 1);
  Xoshiro256 rng(seed);
  std::vector<std::vector<double>> weights(
      num_objectives, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    const double shared = rng.NextGaussian();
    for (size_t j = 0; j < num_objectives; ++j) {
      const double own = rng.NextGaussian();
      weights[j][i] =
          std::exp(sigma * ((1.0 - mix) * own + mix * shared));
    }
  }
  return weights;
}

SetPair MakeSetPairWithJaccard(size_t size_a, size_t size_b, double jaccard,
                               uint64_t seed) {
  ATS_CHECK(jaccard >= 0.0 && jaccard < 1.0);
  // |A ∩ B| = J/(1+J) * (|A| + |B|); requires the result <= min(|A|, |B|).
  const double total = static_cast<double>(size_a + size_b);
  size_t inter =
      static_cast<size_t>(std::llround(jaccard / (1.0 + jaccard) * total));
  inter = std::min({inter, size_a, size_b});

  // Unique ids: derive disjoint ranges from a seeded base so repeated
  // trials (different seeds) use different key universes.
  const uint64_t base = Mix64(seed) & 0x0fffffffffffffffULL;
  SetPair out;
  out.a.reserve(size_a);
  out.b.reserve(size_b);
  uint64_t next = base;
  for (size_t i = 0; i < inter; ++i) {
    out.a.push_back(next);
    out.b.push_back(next);
    ++next;
  }
  for (size_t i = inter; i < size_a; ++i) out.a.push_back(next++);
  for (size_t i = inter; i < size_b; ++i) out.b.push_back(next++);
  out.intersection_size = inter;
  out.union_size = size_a + size_b - inter;
  return out;
}

}  // namespace ats
