#include "ats/workload/arrivals.h"

#include <algorithm>

#include "ats/util/check.h"

namespace ats {

RateProfile::RateProfile(std::vector<double> breakpoints,
                         std::vector<double> rates)
    : breakpoints_(std::move(breakpoints)), rates_(std::move(rates)) {
  ATS_CHECK(!breakpoints_.empty());
  ATS_CHECK(breakpoints_.size() == rates_.size());
  ATS_CHECK(breakpoints_.front() == 0.0);
  for (size_t i = 1; i < breakpoints_.size(); ++i) {
    ATS_CHECK(breakpoints_[i] > breakpoints_[i - 1]);
  }
  for (double r : rates_) ATS_CHECK(r > 0.0);
}

RateProfile RateProfile::Constant(double rate) {
  return RateProfile({0.0}, {rate});
}

RateProfile RateProfile::WithSpike(double base_rate, double spike_start,
                                   double spike_end, double spike_factor) {
  ATS_CHECK(spike_start > 0.0 && spike_end > spike_start);
  return RateProfile({0.0, spike_start, spike_end},
                     {base_rate, base_rate * spike_factor, base_rate});
}

double RateProfile::RateAt(double t) const {
  const auto it =
      std::upper_bound(breakpoints_.begin(), breakpoints_.end(), t);
  const size_t idx = static_cast<size_t>(it - breakpoints_.begin());
  return rates_[idx == 0 ? 0 : idx - 1];
}

ArrivalProcess::ArrivalProcess(RateProfile profile, double max_rate,
                               uint64_t seed)
    : profile_(std::move(profile)), max_rate_(max_rate), rng_(seed) {
  ATS_CHECK(max_rate_ > 0.0);
}

Arrival ArrivalProcess::Next() {
  // Thinning (Lewis & Shedler): candidate arrivals at the max rate are
  // accepted with probability rate(t)/max_rate.
  for (;;) {
    now_ += rng_.NextExponential() / max_rate_;
    const double accept = profile_.RateAt(now_) / max_rate_;
    ATS_DCHECK(accept <= 1.0 + 1e-12);
    if (rng_.NextDouble() < accept) {
      return Arrival{now_, next_id_++};
    }
  }
}

std::vector<Arrival> ArrivalProcess::Until(double horizon) {
  std::vector<Arrival> out;
  for (;;) {
    const Arrival a = Next();
    if (a.time >= horizon) break;
    out.push_back(a);
  }
  return out;
}

}  // namespace ats
