// Zipf-distributed item generator: P(item = i) proportional to
// 1 / (i+1)^s over a universe of n items. Used by the frequent-items,
// grouped-distinct, and throughput workloads.
#ifndef ATS_WORKLOAD_ZIPF_H_
#define ATS_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "ats/core/random.h"

namespace ats {

class ZipfGenerator {
 public:
  // n >= 1 items, exponent s >= 0 (s = 0 is uniform).
  ZipfGenerator(size_t n, double s, uint64_t seed);

  // Draws the next item id in [0, n). Item 0 is the most frequent.
  uint64_t Next();

  // Exact probability of item i.
  double Probability(uint64_t i) const;

  size_t universe() const { return cdf_.size(); }

 private:
  Xoshiro256 rng_;
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1
};

}  // namespace ats

#endif  // ATS_WORKLOAD_ZIPF_H_
