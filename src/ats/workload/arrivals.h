// Timestamped arrival processes for sliding-window experiments
// (Section 3.2, Figures 1-2).
//
// Items arrive with Poisson inter-arrival times whose rate follows a
// user-supplied piecewise-constant profile, e.g. a steady 1000 items/s
// baseline with a transient spike.
#ifndef ATS_WORKLOAD_ARRIVALS_H_
#define ATS_WORKLOAD_ARRIVALS_H_

#include <cstdint>
#include <vector>

#include "ats/core/random.h"

namespace ats {

struct Arrival {
  double time = 0.0;
  uint64_t id = 0;
};

// A piecewise-constant rate profile: rate(t) = segments' rate for the
// segment containing t (the final segment extends to +infinity).
class RateProfile {
 public:
  // `breakpoints` are segment start times (first must be 0, ascending);
  // `rates` are items/sec per segment (same length, all > 0).
  RateProfile(std::vector<double> breakpoints, std::vector<double> rates);

  // Constant-rate profile.
  static RateProfile Constant(double rate);

  // Baseline rate with a multiplicative spike over [spike_start, spike_end).
  static RateProfile WithSpike(double base_rate, double spike_start,
                               double spike_end, double spike_factor);

  double RateAt(double t) const;

 private:
  std::vector<double> breakpoints_;
  std::vector<double> rates_;
};

// Generates Poisson arrivals under a rate profile by thinning against the
// profile's maximum rate.
class ArrivalProcess {
 public:
  ArrivalProcess(RateProfile profile, double max_rate, uint64_t seed);

  // Next arrival (times strictly increasing; ids dense from 0).
  Arrival Next();

  // All arrivals up to time `horizon`.
  std::vector<Arrival> Until(double horizon);

 private:
  RateProfile profile_;
  double max_rate_;
  Xoshiro256 rng_;
  double now_ = 0.0;
  uint64_t next_id_ = 0;
};

}  // namespace ats

#endif  // ATS_WORKLOAD_ARRIVALS_H_
