// Synthetic variable-size survey responses (Section 3.1).
//
// The paper's Section 3.1 example uses the 2020 Kaggle data science survey:
// responses serialized as strings with maximum length 5113 characters and
// mean length 1265. That dataset is proprietary/not shipped, so this module
// generates a synthetic equivalent matched to those statistics (documented
// in DESIGN.md): a mixture of short, partially-completed categorical
// responses and long free-text responses, rescaled so the realized mean and
// max match the paper's 1265 / 5113 figures. The Section 3.1 experiment
// only depends on the item *size* distribution, which this preserves.
#ifndef ATS_WORKLOAD_SURVEY_H_
#define ATS_WORKLOAD_SURVEY_H_

#include <cstdint>
#include <vector>

#include "ats/core/random.h"

namespace ats {

struct SurveyResponse {
  uint64_t id = 0;
  double size = 0.0;   // serialized length in characters
  double value = 1.0;  // analysis value (e.g. 1 for counts)
};

class SurveyGenerator {
 public:
  // Target statistics default to the paper's Kaggle figures.
  explicit SurveyGenerator(uint64_t seed, double max_size = 5113.0,
                           double mean_size = 1265.0);

  SurveyResponse Next();

  // Generates n responses and rescales sizes so the empirical mean and max
  // match the targets exactly (the deterministic calibration used by the
  // Section 3.1 bench).
  std::vector<SurveyResponse> Generate(size_t n);

  double max_size() const { return max_size_; }
  double mean_size() const { return mean_size_; }

 private:
  double RawSize();

  Xoshiro256 rng_;
  double max_size_;
  double mean_size_;
  uint64_t next_id_ = 0;
};

}  // namespace ats

#endif  // ATS_WORKLOAD_SURVEY_H_
