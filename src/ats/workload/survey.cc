#include "ats/workload/survey.h"

#include <algorithm>
#include <cmath>

#include "ats/util/check.h"

namespace ats {

SurveyGenerator::SurveyGenerator(uint64_t seed, double max_size,
                                 double mean_size)
    : rng_(seed), max_size_(max_size), mean_size_(mean_size) {
  ATS_CHECK(max_size_ > mean_size_ && mean_size_ > 0.0);
}

double SurveyGenerator::RawSize() {
  // Mixture: 60% partially-completed categorical rows (short, roughly
  // uniform), 40% rows with free-text answers (lognormal body). Raw sizes
  // are later rescaled to the target mean/max.
  if (rng_.NextDouble() < 0.6) {
    return 50.0 + 900.0 * rng_.NextDouble();
  }
  const double body = std::exp(7.0 + 0.6 * rng_.NextGaussian());
  return 400.0 + body;
}

SurveyResponse SurveyGenerator::Next() {
  SurveyResponse r;
  r.id = next_id_++;
  r.size = std::min(RawSize(), 4.0 * mean_size_ + 53.0);
  r.value = 1.0;
  return r;
}

std::vector<SurveyResponse> SurveyGenerator::Generate(size_t n) {
  ATS_CHECK(n >= 2);
  std::vector<SurveyResponse> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  // Affine calibration size -> a*size + b so the empirical mean and max hit
  // the targets exactly; sizes stay positive because the raw min exceeds
  // the (raw mean - raw max gap) pullback for these mixtures.
  double mean = 0.0, mx = 0.0;
  for (const auto& r : out) {
    mean += r.size;
    mx = std::max(mx, r.size);
  }
  mean /= static_cast<double>(n);
  const double a = (max_size_ - mean_size_) / (mx - mean);
  const double b = mean_size_ - a * mean;
  for (auto& r : out) r.size = std::max(1.0, a * r.size + b);
  return out;
}

}  // namespace ats
