#include "ats/workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "ats/util/check.h"

namespace ats {

ZipfGenerator::ZipfGenerator(size_t n, double s, uint64_t seed) : rng_(seed) {
  ATS_CHECK(n >= 1);
  ATS_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -s);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfGenerator::Probability(uint64_t i) const {
  ATS_CHECK(i < cdf_.size());
  if (i == 0) return cdf_[0];
  return cdf_[i] - cdf_[i - 1];
}

}  // namespace ats
