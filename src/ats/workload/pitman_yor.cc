#include "ats/workload/pitman_yor.h"

#include <algorithm>

#include "ats/util/check.h"

namespace ats {

PitmanYorStream::PitmanYorStream(double beta, uint64_t seed)
    : beta_(beta), rng_(seed) {
  ATS_CHECK(beta >= 0.0 && beta < 1.0);
}

uint64_t PitmanYorStream::Next() {
  const int64_t t = total_ + 1;
  ++total_;
  uint64_t item;
  if (counts_.empty()) {
    item = 0;
    counts_.push_back(0);
  } else {
    const double c = static_cast<double>(counts_.size());
    const double p_new = (1.0 + beta_ * c) / static_cast<double>(t);
    if (rng_.NextDouble() < p_new) {
      item = counts_.size();
      counts_.push_back(0);
    } else {
      // Existing item j with probability proportional to (n_j - beta).
      // Rejection sampling: propose j proportional to n_j by picking a
      // uniform past observation (O(1)), accept with prob (n_j-beta)/n_j.
      // Expected retries are bounded by 1/(1-beta).
      for (;;) {
        const uint64_t j = observations_[rng_.NextBelow(observations_.size())];
        const double nj = static_cast<double>(counts_[j]);
        if (rng_.NextDouble() < (nj - beta_) / nj) {
          item = j;
          break;
        }
      }
    }
  }
  ++counts_[item];
  observations_.push_back(item);
  return item;
}

int64_t PitmanYorStream::Count(uint64_t item) const {
  if (item >= counts_.size()) return 0;
  return counts_[item];
}

std::vector<uint64_t> PitmanYorStream::TopItems(size_t k) const {
  std::vector<uint64_t> ids(counts_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  const size_t kk = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + kk, ids.end(),
                    [&](uint64_t a, uint64_t b) {
                      if (counts_[a] != counts_[b]) {
                        return counts_[a] > counts_[b];
                      }
                      return a < b;
                    });
  ids.resize(kk);
  return ids;
}

}  // namespace ats
