// Synthetic data generators for the estimator and sketch experiments:
//   * weighted populations (for subset-sum / PPS sampling),
//   * correlated bivariate data (Kendall tau, Section 2.6.2),
//   * correlated multi-objective weights (Section 3.8),
//   * pairs of key sets with a target Jaccard similarity (Figure 4).
#ifndef ATS_WORKLOAD_SYNTHETIC_H_
#define ATS_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "ats/core/random.h"

namespace ats {

struct WeightedItem {
  uint64_t key = 0;
  double weight = 1.0;  // sampling weight (and PPS size)
  double value = 0.0;   // aggregation value
};

// A weighted population with heavy-ish tailed weights (lognormal) and
// values equal to weights (the PPS-optimal case) or independent.
std::vector<WeightedItem> MakeWeightedPopulation(size_t n, uint64_t seed,
                                                 bool value_equals_weight,
                                                 double sigma = 1.0);

// Bivariate Gaussian sample with correlation rho; used as ground truth for
// Kendall's tau (population tau = 2/pi * asin(rho)).
struct BivariatePoint {
  double x = 0.0;
  double y = 0.0;
};
std::vector<BivariatePoint> MakeCorrelatedGaussian(size_t n, double rho,
                                                   uint64_t seed);

// Per-item weights for c objectives with pairwise correlation controlled by
// `mix` in [0, 1]: weight_j(i) = exp(sigma * ((1-mix) * g_j + mix * g)),
// where g is shared across objectives and g_j are independent. mix = 1
// yields identical (scalar-multiple) weights, mix = 0 independent ones.
std::vector<std::vector<double>> MakeObjectiveWeights(size_t n,
                                                      size_t num_objectives,
                                                      double mix,
                                                      uint64_t seed,
                                                      double sigma = 1.0);

// Two key sets with |A| = size_a, |B| = size_b and Jaccard similarity
// approximately `jaccard` (exact intersection size is rounded). Keys are
// globally unique 64-bit ids.
struct SetPair {
  std::vector<uint64_t> a;
  std::vector<uint64_t> b;
  size_t union_size = 0;
  size_t intersection_size = 0;
};
SetPair MakeSetPairWithJaccard(size_t size_a, size_t size_b, double jaccard,
                               uint64_t seed);

}  // namespace ats

#endif  // ATS_WORKLOAD_SYNTHETIC_H_
