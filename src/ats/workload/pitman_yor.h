// Pitman-Yor(1, beta) preferential-attachment stream generator
// (Section 3.3, Figure 3).
//
// The t-th item of the stream is a brand-new item with probability
// (1 + beta * C_t) / t, where C_t is the number of unique items seen so
// far; otherwise it equals the j-th existing unique item with probability
// (n_tj - beta) / t where n_tj counts occurrences of item j among the
// first t-1 items. beta in [0, 1): larger beta yields heavier tails (less
// separation between frequent and infrequent items).
#ifndef ATS_WORKLOAD_PITMAN_YOR_H_
#define ATS_WORKLOAD_PITMAN_YOR_H_

#include <cstdint>
#include <vector>

#include "ats/core/random.h"

namespace ats {

class PitmanYorStream {
 public:
  // beta in [0, 1). Item ids are dense, starting at 0, in discovery order.
  PitmanYorStream(double beta, uint64_t seed);

  // Draws the next item of the stream.
  uint64_t Next();

  // Number of occurrences of `item` so far.
  int64_t Count(uint64_t item) const;

  // Number of unique items so far.
  size_t NumUnique() const { return counts_.size(); }

  // Total stream length so far.
  int64_t TotalCount() const { return total_; }

  // Item ids sorted by descending true frequency (ties by id). This is the
  // ground truth for top-k evaluation.
  std::vector<uint64_t> TopItems(size_t k) const;

  const std::vector<int64_t>& counts() const { return counts_; }

 private:
  double beta_;
  Xoshiro256 rng_;
  std::vector<int64_t> counts_;        // counts_[j] = occurrences of item j
  std::vector<uint64_t> observations_; // full stream, for O(1) CRP proposals
  int64_t total_ = 0;
};

}  // namespace ats

#endif  // ATS_WORKLOAD_PITMAN_YOR_H_
