#!/usr/bin/env python3
"""Unit tests for bench/compare_bench.py.

Covers the comparison semantics CI relies on -- regression detection,
tolerance, benchmarks present in only one file -- and in particular the
base-missing skip path (--missing-baseline-ok) that lets CI compare
every BENCH_*.json suite the head produces even when the base revision
predates a suite (e.g. BENCH_concurrent.json).

Run directly (python3 tools/test_compare_bench.py) or through CTest,
which registers it when a Python interpreter is found.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "bench",
    "compare_bench.py")


def run_tool(args):
    return subprocess.run(
        [sys.executable, TOOL] + args, capture_output=True, text=True)


def write_bench_json(path, name_to_items_per_second, context=None):
    doc = {
        "benchmarks": [
            {"name": name, "run_type": "iteration", "items_per_second": v}
            for name, v in name_to_items_per_second.items()
        ]
    }
    if context is not None:
        doc["context"] = context
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def path(self, name):
        return os.path.join(self.tmp.name, name)

    def test_missing_baseline_skips_cleanly_with_flag(self):
        current = self.path("current.json")
        write_bench_json(current, {"BM_ConcurrentIngest/8": 1e6})
        result = run_tool(
            [self.path("nonexistent.json"), current, "--missing-baseline-ok"])
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("skipping comparison", result.stdout)

    def test_missing_baseline_is_an_error_without_flag(self):
        current = self.path("current.json")
        write_bench_json(current, {"BM_X": 1e6})
        result = run_tool([self.path("nonexistent.json"), current])
        self.assertEqual(result.returncode, 2)

    def test_regression_past_threshold_fails(self):
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(base, {"BM_X": 100.0, "BM_Y": 100.0})
        write_bench_json(cur, {"BM_X": 80.0, "BM_Y": 100.0})  # -20%
        result = run_tool([base, cur, "--max-regression", "0.15"])
        self.assertEqual(result.returncode, 1)
        self.assertIn("BM_X", result.stderr)

    def test_within_tolerance_passes(self):
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(base, {"BM_X": 100.0})
        write_bench_json(cur, {"BM_X": 90.0})  # -10% < 15%
        result = run_tool([base, cur, "--max-regression", "0.15"])
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_one_sided_benchmarks_are_never_fatal(self):
        # A benchmark added in the head (baseline-missing) or retired in
        # the head (current-missing) must not fail the comparison.
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(base, {"BM_Common": 100.0, "BM_Retired": 50.0})
        write_bench_json(cur, {"BM_Common": 100.0, "BM_New": 50.0})
        result = run_tool([base, cur])
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("baseline-only", result.stdout)
        self.assertIn("new", result.stdout)

    def test_mismatched_fault_profile_is_an_input_error(self):
        # Two BENCH_cluster.json runs measured under different chaos
        # profiles are different experiments: the comparison must refuse
        # (exit 2, like malformed input), never report a ratio.
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(
            base, {"BM_ClusterChaosFlat": 100.0},
            context={"ats_cluster_fault_profile": "drop=0.05,dup=0.02"})
        write_bench_json(
            cur, {"BM_ClusterChaosFlat": 500.0},
            context={"ats_cluster_fault_profile": "drop=0.00,dup=0.00"})
        result = run_tool([base, cur])
        self.assertEqual(result.returncode, 2)
        self.assertIn("ats_cluster_fault_profile", result.stderr)
        self.assertIn("different workloads", result.stderr)

    def test_matching_fault_profile_compares_normally(self):
        profile = {"ats_cluster_fault_profile": "drop=0.05,dup=0.02"}
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(base, {"BM_ClusterChaosFlat": 100.0},
                         context=profile)
        write_bench_json(cur, {"BM_ClusterChaosFlat": 60.0},
                         context=profile)  # -40%: a real regression
        result = run_tool([base, cur, "--max-regression", "0.15"])
        self.assertEqual(result.returncode, 1)

    def test_fault_profile_in_only_one_file_is_comparable(self):
        # A suite that gained the identity key since the base revision
        # (or a non-cluster suite with no such key at all) compares
        # normally.
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(base, {"BM_X": 100.0})
        write_bench_json(
            cur, {"BM_X": 100.0},
            context={"ats_cluster_fault_profile": "drop=0.05"})
        result = run_tool([base, cur])
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_malformed_input_is_an_input_error(self):
        base, cur = self.path("base.json"), self.path("cur.json")
        with open(base, "w", encoding="utf-8") as f:
            f.write("not json{")
        write_bench_json(cur, {"BM_X": 1.0})
        result = run_tool([base, cur])
        self.assertEqual(result.returncode, 2)

    # --- num_cpus identity for the concurrent suite ---------------------

    def test_concurrent_num_cpus_mismatch_is_an_input_error(self):
        # Thread-scaling numbers from a 1-cpu local run vs a multi-core
        # CI run are different experiments: refuse, like a fault-profile
        # mismatch.
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(base, {"BM_ConcurrentIngest/8/real_time": 100.0},
                         context={"num_cpus": 1})
        write_bench_json(cur, {"BM_ConcurrentIngest/8/real_time": 500.0},
                         context={"num_cpus": 16})
        result = run_tool([base, cur])
        self.assertEqual(result.returncode, 2)
        self.assertIn("num_cpus", result.stderr)
        self.assertIn("different workloads", result.stderr)

    def test_non_concurrent_num_cpus_mismatch_is_comparable(self):
        # Core count is noise, not identity, for single-thread suites.
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(base, {"BM_Throughput": 100.0},
                         context={"num_cpus": 1})
        write_bench_json(cur, {"BM_Throughput": 100.0},
                         context={"num_cpus": 16})
        result = run_tool([base, cur])
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_concurrent_num_cpus_in_only_one_file_is_comparable(self):
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(base, {"BM_ConcurrentIngest/8": 100.0})
        write_bench_json(cur, {"BM_ConcurrentIngest/8": 100.0},
                         context={"num_cpus": 16})
        result = run_tool([base, cur])
        self.assertEqual(result.returncode, 0, result.stderr)

    # --- --require-scaling ----------------------------------------------

    def scaling_doc(self, path, per_thread, num_cpus):
        write_bench_json(
            path,
            {
                f"BM_ConcurrentWriterLocalIngest/{t}/real_time": v
                for t, v in per_thread.items()
            },
            context={"num_cpus": num_cpus})

    def test_scaling_gate_passes_when_met(self):
        cur = self.path("cur.json")
        # 8 writers on 16 cpus: required >= 4.0x; 5.0x passes.
        self.scaling_doc(cur, {1: 100.0, 8: 500.0}, num_cpus=16)
        result = run_tool([
            self.path("nonexistent.json"), cur, "--missing-baseline-ok",
            "--require-scaling", "BM_ConcurrentWriterLocalIngest"])
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("scaling BM_ConcurrentWriterLocalIngest/8", result.stdout)

    def test_scaling_gate_fails_when_unmet(self):
        cur = self.path("cur.json")
        # 8 writers on 16 cpus: required >= 4.0x; 2.0x fails -- and the
        # gate must fire even though the baseline comparison was skipped.
        self.scaling_doc(cur, {1: 100.0, 8: 200.0}, num_cpus=16)
        result = run_tool([
            self.path("nonexistent.json"), cur, "--missing-baseline-ok",
            "--require-scaling", "BM_ConcurrentWriterLocalIngest"])
        self.assertEqual(result.returncode, 1)
        self.assertIn("scaling requirement", result.stderr)

    def test_scaling_requirement_is_capped_by_num_cpus(self):
        cur = self.path("cur.json")
        # 16 writers on 4 cpus: required >= 0.5*min(16,4) = 2.0x, not 8x.
        self.scaling_doc(cur, {1: 100.0, 16: 210.0}, num_cpus=4)
        result = run_tool([
            self.path("nonexistent.json"), cur, "--missing-baseline-ok",
            "--require-scaling", "BM_ConcurrentWriterLocalIngest"])
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_scaling_gate_skips_on_one_cpu(self):
        cur = self.path("cur.json")
        self.scaling_doc(cur, {1: 100.0, 8: 100.0}, num_cpus=1)
        result = run_tool([
            self.path("nonexistent.json"), cur, "--missing-baseline-ok",
            "--require-scaling", "BM_ConcurrentWriterLocalIngest"])
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("skipped", result.stdout)

    def test_scaling_gate_with_no_matching_benchmarks_fails(self):
        # A typo'd prefix (or a head that silently dropped the sweep)
        # must not pass as a vacuous success.
        cur = self.path("cur.json")
        write_bench_json(cur, {"BM_Other/8": 100.0},
                         context={"num_cpus": 16})
        result = run_tool([
            self.path("nonexistent.json"), cur, "--missing-baseline-ok",
            "--require-scaling", "BM_ConcurrentWriterLocalIngest"])
        self.assertEqual(result.returncode, 1)
        self.assertIn("no benchmarks named", result.stderr)


if __name__ == "__main__":
    unittest.main()
