#!/usr/bin/env python3
"""Unit tests for bench/compare_bench.py.

Covers the comparison semantics CI relies on -- regression detection,
tolerance, benchmarks present in only one file -- and in particular the
base-missing skip path (--missing-baseline-ok) that lets CI compare
every BENCH_*.json suite the head produces even when the base revision
predates a suite (e.g. BENCH_concurrent.json).

Run directly (python3 tools/test_compare_bench.py) or through CTest,
which registers it when a Python interpreter is found.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "bench",
    "compare_bench.py")


def run_tool(args):
    return subprocess.run(
        [sys.executable, TOOL] + args, capture_output=True, text=True)


def write_bench_json(path, name_to_items_per_second, context=None):
    doc = {
        "benchmarks": [
            {"name": name, "run_type": "iteration", "items_per_second": v}
            for name, v in name_to_items_per_second.items()
        ]
    }
    if context is not None:
        doc["context"] = context
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def path(self, name):
        return os.path.join(self.tmp.name, name)

    def test_missing_baseline_skips_cleanly_with_flag(self):
        current = self.path("current.json")
        write_bench_json(current, {"BM_ConcurrentIngest/8": 1e6})
        result = run_tool(
            [self.path("nonexistent.json"), current, "--missing-baseline-ok"])
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("skipping comparison", result.stdout)

    def test_missing_baseline_is_an_error_without_flag(self):
        current = self.path("current.json")
        write_bench_json(current, {"BM_X": 1e6})
        result = run_tool([self.path("nonexistent.json"), current])
        self.assertEqual(result.returncode, 2)

    def test_regression_past_threshold_fails(self):
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(base, {"BM_X": 100.0, "BM_Y": 100.0})
        write_bench_json(cur, {"BM_X": 80.0, "BM_Y": 100.0})  # -20%
        result = run_tool([base, cur, "--max-regression", "0.15"])
        self.assertEqual(result.returncode, 1)
        self.assertIn("BM_X", result.stderr)

    def test_within_tolerance_passes(self):
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(base, {"BM_X": 100.0})
        write_bench_json(cur, {"BM_X": 90.0})  # -10% < 15%
        result = run_tool([base, cur, "--max-regression", "0.15"])
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_one_sided_benchmarks_are_never_fatal(self):
        # A benchmark added in the head (baseline-missing) or retired in
        # the head (current-missing) must not fail the comparison.
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(base, {"BM_Common": 100.0, "BM_Retired": 50.0})
        write_bench_json(cur, {"BM_Common": 100.0, "BM_New": 50.0})
        result = run_tool([base, cur])
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("baseline-only", result.stdout)
        self.assertIn("new", result.stdout)

    def test_mismatched_fault_profile_is_an_input_error(self):
        # Two BENCH_cluster.json runs measured under different chaos
        # profiles are different experiments: the comparison must refuse
        # (exit 2, like malformed input), never report a ratio.
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(
            base, {"BM_ClusterChaosFlat": 100.0},
            context={"ats_cluster_fault_profile": "drop=0.05,dup=0.02"})
        write_bench_json(
            cur, {"BM_ClusterChaosFlat": 500.0},
            context={"ats_cluster_fault_profile": "drop=0.00,dup=0.00"})
        result = run_tool([base, cur])
        self.assertEqual(result.returncode, 2)
        self.assertIn("ats_cluster_fault_profile", result.stderr)
        self.assertIn("different workloads", result.stderr)

    def test_matching_fault_profile_compares_normally(self):
        profile = {"ats_cluster_fault_profile": "drop=0.05,dup=0.02"}
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(base, {"BM_ClusterChaosFlat": 100.0},
                         context=profile)
        write_bench_json(cur, {"BM_ClusterChaosFlat": 60.0},
                         context=profile)  # -40%: a real regression
        result = run_tool([base, cur, "--max-regression", "0.15"])
        self.assertEqual(result.returncode, 1)

    def test_fault_profile_in_only_one_file_is_comparable(self):
        # A suite that gained the identity key since the base revision
        # (or a non-cluster suite with no such key at all) compares
        # normally.
        base, cur = self.path("base.json"), self.path("cur.json")
        write_bench_json(base, {"BM_X": 100.0})
        write_bench_json(
            cur, {"BM_X": 100.0},
            context={"ats_cluster_fault_profile": "drop=0.05"})
        result = run_tool([base, cur])
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_malformed_input_is_an_input_error(self):
        base, cur = self.path("base.json"), self.path("cur.json")
        with open(base, "w", encoding="utf-8") as f:
            f.write("not json{")
        write_bench_json(cur, {"BM_X": 1.0})
        result = run_tool([base, cur])
        self.assertEqual(result.returncode, 2)


if __name__ == "__main__":
    unittest.main()
