#!/usr/bin/env python3
"""Wire-format documentation completeness checker.

Every frame magic declared in src/ats (``... kFooMagic = 0x...;``) and
every checkpoint ``SchemeKind`` enumerator must have normative coverage
in docs/WIRE_FORMAT.md:

  * the magic's 4-char ASCII name must appear in a ``##`` section
    heading (shared headings like "THT2 / LCS2 / GDS2" count),
  * the magic's hex constant must appear in the document (the family
    table or the section's offset table),
  * each SchemeKind value must have a ``| <kind> |`` row in the CKP1
    kind table,
  * the documented kBadKind bound must match [kMinSchemeKind,
    kMaxSchemeKind] from checkpoint.h.

Exits non-zero listing every gap, so the docs CI job fails when a new
frame lands without its spec.  Run from anywhere:

    python3 tools/check_wire_docs.py
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "ats"
DOC = REPO / "docs" / "WIRE_FORMAT.md"
CHECKPOINT_H = SRC / "persist" / "checkpoint.h"

# Every magic declaration names its ASCII tag in a trailing comment
# (the tag cannot be decoded from the literal alone: byte order in the
# hex spelling is not uniform across families, only the u32 compare
# matters on the wire).  The checker reads the tag from that comment and
# treats a missing comment as an error in its own right.
MAGIC_RE = re.compile(
    r"\bk\w*Magic\s*=\s*(0x[0-9a-fA-F]{8})u?\s*;"
    r"(?:\s*//\s*\"(\w{4})\")?")
ENUM_RE = re.compile(r"enum class SchemeKind[^{]*\{(.*?)\};", re.DOTALL)
ENUMERATOR_RE = re.compile(r"\bk(\w+)\s*=\s*(\d+)")
BOUND_RE = re.compile(r"\bk(Min|Max)SchemeKind\s*=\s*(\d+)\s*;")


def collect_magics():
    magics = {}    # ascii tag -> (hex literal, declaring file)
    unnamed = []   # (hex literal, declaring file) with no tag comment
    for path in sorted(SRC.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        for match in MAGIC_RE.finditer(path.read_text()):
            hex_literal = match.group(1).lower()
            name = match.group(2)
            origin = path.relative_to(REPO)
            if name is None:
                unnamed.append((hex_literal, origin))
            else:
                magics.setdefault(name, (hex_literal, origin))
    return magics, unnamed


def collect_scheme_kinds():
    text = CHECKPOINT_H.read_text()
    enum_body = ENUM_RE.search(text)
    if enum_body is None:
        sys.exit(f"error: no SchemeKind enum in {CHECKPOINT_H}")
    kinds = {int(v): n for n, v in ENUMERATOR_RE.findall(enum_body.group(1))}
    bounds = {m.group(1): int(m.group(2)) for m in BOUND_RE.finditer(text)}
    return kinds, bounds.get("Min"), bounds.get("Max")


def main():
    doc = DOC.read_text()
    headings = " ".join(
        line for line in doc.splitlines() if line.startswith("##")
    )
    problems = []

    magics, unnamed = collect_magics()
    if not magics:
        problems.append("scanner found no frame magics under src/ats "
                        "(pattern drift? fix MAGIC_RE)")
    for hex_literal, origin in unnamed:
        problems.append(
            f"{origin}: magic {hex_literal} has no // \"XXXX\" tag comment "
            f"(the checker needs it to match the doc section)")
    for name, (hex_literal, origin) in sorted(magics.items()):
        if name not in headings:
            problems.append(
                f"{name} ({origin}): no '## ...{name}...' section heading "
                f"in {DOC.relative_to(REPO)}")
        if hex_literal not in doc.lower():
            problems.append(
                f"{name} ({origin}): magic {hex_literal} not documented "
                f"in {DOC.relative_to(REPO)}")

    kinds, lo, hi = collect_scheme_kinds()
    if not kinds:
        problems.append("scanner found no SchemeKind enumerators "
                        "(pattern drift? fix ENUMERATOR_RE)")
    for value, name in sorted(kinds.items()):
        if not re.search(rf"^\|\s*{value}\s*\|", doc, re.MULTILINE):
            problems.append(
                f"SchemeKind::k{name} = {value}: no '| {value} | ...' row "
                f"in the CKP1 kind table")
    if lo is not None and hi is not None:
        if f"[{lo}, {hi}]" not in doc:
            problems.append(
                f"documented kBadKind bound does not mention [{lo}, {hi}] "
                f"(checkpoint.h says kMin/kMaxSchemeKind = {lo}/{hi})")

    if problems:
        print("check_wire_docs: WIRE_FORMAT.md is incomplete:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(f"check_wire_docs: {len(magics)} frame magics and "
          f"{len(kinds)} scheme kinds all documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
