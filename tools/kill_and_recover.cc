// Kill-and-recover integration harness for the persistence tier: the
// torn-write claim of CheckpointWriter::Write under REAL SIGKILLs, not
// simulated faults.
//
// Each cycle forks a writer child that ingests a deterministic stream
// and checkpoints its sketch in a tight loop; the parent sleeps a
// random sliver of the cycle and SIGKILLs the child -- landing the
// kill anywhere: mid-write of the temp file, between fsync and rename,
// inside rename, or after the commit. The survivor invariant checked
// after every kill, through BOTH open paths:
//
//   the checkpoint path holds either (a) nothing yet (the kill landed
//   before the first commit ever completed: open reports kIoError), or
//   (b) one COMPLETE, validated checkpoint of the right scheme kind
//   whose payload is byte-identical to the canonical sketch of an
//   epoch the writer actually reached. Never a torn file observable as
//   valid, and never a validation fault other than missing-file.
//
// The loop runs per family: the KMV sketch (the original cycle) and
// the TimeDecaySampler (a non-KMV family whose TDK1 frame nests a
// bottom-k region), so the durability claim is exercised against two
// structurally different payloads and scheme kinds.
//
// Exit status 0 iff every cycle upheld the invariant and, per family,
// at least one kill landed after a commit (so the harness demonstrably
// exercised the recover-from-survivor path). Registered in ctest (UNIX
// only), so the ASan/UBSan legs run it too.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#if !defined(__unix__) && !defined(__APPLE__)
int main() {
  std::printf("kill_and_recover: POSIX only, skipping\n");
  return 0;
}
#else

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "ats/core/random.h"
#include "ats/persist/checkpoint.h"
#include "ats/samplers/time_decay.h"
#include "ats/sketch/kmv.h"

namespace {

constexpr int kCyclesPerFamily = 16;
constexpr size_t kSketchK = 64;
constexpr uint64_t kSalt = 0x5eed;
constexpr int kBatch = 64;  // items per checkpoint; epochs are multiples

// A family plugs into the harness with a fixed-shape sketch and a
// deterministic Feed step: identical (rng seed, step) sequences yield
// byte-identical sketches, so the parent can rebuild the one true
// prefix frame for any surviving epoch.
struct KmvFamily {
  using Sketch = ats::KmvSketch;
  static constexpr ats::persist::SchemeKind kKind =
      ats::persist::SchemeKind::kKmv;
  static constexpr const char* kName = "kmv";
  static Sketch Make() { return ats::KmvSketch(kSketchK, 1.0, kSalt); }
  static void Feed(Sketch& s, ats::Xoshiro256& rng, uint64_t /*step*/) {
    s.AddKey(rng.Next());
  }
};

struct TimeDecayFamily {
  using Sketch = ats::TimeDecaySampler;
  static constexpr ats::persist::SchemeKind kKind =
      ats::persist::SchemeKind::kTimeDecay;
  static constexpr const char* kName = "time_decay";
  static Sketch Make() { return ats::TimeDecaySampler(kSketchK, kSalt); }
  static void Feed(Sketch& s, ats::Xoshiro256& rng, uint64_t step) {
    const double weight = 0.5 + rng.NextDoubleOpenZero();
    s.Add(rng.Next(), weight, /*value=*/weight,
          /*time=*/0.001 * static_cast<double>(step));
  }
};

// The writer child: deterministic ingest, checkpoint after every batch,
// forever (until killed).
template <typename Family>
[[noreturn]] void WriterChild(const std::string& path) {
  typename Family::Sketch sketch = Family::Make();
  ats::Xoshiro256 rng(1);
  uint64_t epoch = 0;
  for (;;) {
    for (int i = 0; i < kBatch; ++i) {
      Family::Feed(sketch, rng, epoch);
      ++epoch;
    }
    ats::persist::CheckpointWriter::Write(path, Family::kKind, epoch,
                                          sketch.SerializeToString());
    // No pacing: back-to-back write-rename cycles maximize the chance
    // the SIGKILL lands inside the commit sequence.
  }
}

// Rebuilds the reference frame for `epoch` steps of the child's stream.
template <typename Family>
std::string ReferenceFrame(uint64_t epoch) {
  typename Family::Sketch sketch = Family::Make();
  ats::Xoshiro256 rng(1);
  for (uint64_t i = 0; i < epoch; ++i) Family::Feed(sketch, rng, i);
  return sketch.SerializeToString();
}

// Validates the survivor through one open path. Returns false (after
// printing why) on any invariant violation; sets *committed when a
// complete checkpoint was present.
template <typename Family>
bool CheckSurvivor(const std::string& path, ats::persist::OpenMode mode,
                   int cycle, bool* committed) {
  using ats::persist::CheckpointFault;
  ats::persist::CheckpointReader reader;
  const CheckpointFault fault =
      ats::persist::CheckpointReader::Open(path, &reader, mode);
  if (fault == CheckpointFault::kIoError) {
    // Legal only while no commit ever completed: rename is atomic, so
    // once a checkpoint exists the path never stops resolving.
    if (*committed) {
      std::printf("FAIL %s cycle %d: checkpoint vanished after a commit\n",
                  Family::kName, cycle);
      return false;
    }
    return true;
  }
  if (fault != CheckpointFault::kNone) {
    std::printf("FAIL %s cycle %d: survivor rejected: %s\n", Family::kName,
                cycle, ats::persist::CheckpointFaultName(fault));
    return false;
  }
  *committed = true;
  if (reader.kind() != Family::kKind) {
    std::printf("FAIL %s cycle %d: survivor has foreign scheme kind %u\n",
                Family::kName, cycle,
                static_cast<unsigned>(reader.kind()));
    return false;
  }
  if (reader.epoch() == 0 || reader.epoch() % kBatch != 0) {
    std::printf("FAIL %s cycle %d: impossible epoch %" PRIu64 "\n",
                Family::kName, cycle, reader.epoch());
    return false;
  }
  // The payload must be the exact canonical sketch of that prefix --
  // a torn or mixed image cannot fake this.
  if (std::string(reader.payload()) !=
      ReferenceFrame<Family>(reader.epoch())) {
    std::printf("FAIL %s cycle %d: payload != reference at epoch %" PRIu64
                "\n",
                Family::kName, cycle, reader.epoch());
    return false;
  }
  return true;
}

// Runs the full kill loop for one family. Returns false on any
// invariant violation or if no cycle ever observed a commit.
template <typename Family>
bool RunFamily(const std::string& dir, ats::Xoshiro256& delay_rng) {
  const std::string path =
      dir + "/victim_" + std::string(Family::kName) + ".ckp";
  bool committed = false;  // has any cycle ever observed a commit
  int committed_cycles = 0;
  for (int cycle = 0; cycle < kCyclesPerFamily; ++cycle) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return false;
    }
    if (pid == 0) {
      WriterChild<Family>(path);  // never returns
    }
    // Sleep 0..4ms: spans everything from "before the first write"
    // to "dozens of commits deep".
    ::usleep(static_cast<useconds_t>(delay_rng.NextBelow(4000)));
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      std::printf("FAIL %s cycle %d: child did not die by SIGKILL\n",
                  Family::kName, cycle);
      return false;
    }
    if (!CheckSurvivor<Family>(path, ats::persist::OpenMode::kPreferMmap,
                               cycle, &committed) ||
        !CheckSurvivor<Family>(path, ats::persist::OpenMode::kBuffered,
                               cycle, &committed)) {
      return false;
    }
    if (committed) ++committed_cycles;
  }

  if (committed_cycles == 0) {
    std::printf(
        "FAIL %s: no cycle ever observed a committed checkpoint; the "
        "harness never exercised recovery\n",
        Family::kName);
    return false;
  }
  std::printf("kill_and_recover[%s]: %d cycles OK (%d with a survivor)\n",
              Family::kName, kCyclesPerFamily, committed_cycles);
  return true;
}

}  // namespace

int main() {
  char dir_template[] = "/tmp/ats_kill_recover_XXXXXX";
  const char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }

  ats::Xoshiro256 delay_rng(0xdead);
  if (!RunFamily<KmvFamily>(dir, delay_rng)) return 1;
  if (!RunFamily<TimeDecayFamily>(dir, delay_rng)) return 1;
  return 0;
}
#endif
