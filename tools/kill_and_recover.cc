// Kill-and-recover integration harness for the persistence tier: the
// torn-write claim of CheckpointWriter::Write under REAL SIGKILLs, not
// simulated faults.
//
// Each cycle forks a writer child that ingests a deterministic key
// stream and checkpoints its sketch in a tight loop; the parent sleeps
// a random sliver of the cycle and SIGKILLs the child -- landing the
// kill anywhere: mid-write of the temp file, between fsync and rename,
// inside rename, or after the commit. The survivor invariant checked
// after every kill, through BOTH open paths:
//
//   the checkpoint path holds either (a) nothing yet (the kill landed
//   before the first commit ever completed: open reports kIoError), or
//   (b) one COMPLETE, validated checkpoint whose payload parses and
//   whose epoch is one the writer actually reached. Never a torn file
//   observable as valid, and never a validation fault other than
//   missing-file.
//
// Exit status 0 iff every cycle upheld the invariant and at least one
// kill landed after a commit (so the harness demonstrably exercised
// the recover-from-survivor path). Registered in ctest (UNIX only), so
// the ASan/UBSan legs run it too.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#if !defined(__unix__) && !defined(__APPLE__)
int main() {
  std::printf("kill_and_recover: POSIX only, skipping\n");
  return 0;
}
#else

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "ats/core/random.h"
#include "ats/persist/checkpoint.h"
#include "ats/sketch/kmv.h"

namespace {

constexpr int kCycles = 30;
constexpr size_t kSketchK = 64;
constexpr uint64_t kSalt = 0x5eed;

// The writer child: deterministic ingest, checkpoint after every batch,
// forever (until killed). Same stream every cycle, so the parent can
// validate any surviving epoch against the one true prefix sketch.
[[noreturn]] void WriterChild(const std::string& path) {
  ats::KmvSketch sketch(kSketchK, 1.0, kSalt);
  ats::Xoshiro256 rng(1);
  uint64_t epoch = 0;
  for (;;) {
    for (int i = 0; i < 64; ++i) {
      sketch.AddKey(rng.Next());
      ++epoch;
    }
    ats::persist::CheckpointWriter::Write(
        path, ats::persist::SchemeKind::kKmv, epoch,
        sketch.SerializeToString());
    // No pacing: back-to-back write-rename cycles maximize the chance
    // the SIGKILL lands inside the commit sequence.
  }
}

// Rebuilds the reference sketch for `epoch` keys of the child's stream.
std::string ReferenceFrame(uint64_t epoch) {
  ats::KmvSketch sketch(kSketchK, 1.0, kSalt);
  ats::Xoshiro256 rng(1);
  for (uint64_t i = 0; i < epoch; ++i) sketch.AddKey(rng.Next());
  return sketch.SerializeToString();
}

// Validates the survivor through one open path. Returns false (after
// printing why) on any invariant violation; sets *committed when a
// complete checkpoint was present.
bool CheckSurvivor(const std::string& path, ats::persist::OpenMode mode,
                   int cycle, bool* committed) {
  using ats::persist::CheckpointFault;
  ats::persist::CheckpointReader reader;
  const CheckpointFault fault =
      ats::persist::CheckpointReader::Open(path, &reader, mode);
  if (fault == CheckpointFault::kIoError) {
    // Legal only while no commit ever completed: rename is atomic, so
    // once a checkpoint exists the path never stops resolving.
    if (*committed) {
      std::printf("FAIL cycle %d: checkpoint vanished after a commit\n",
                  cycle);
      return false;
    }
    return true;
  }
  if (fault != CheckpointFault::kNone) {
    std::printf("FAIL cycle %d: survivor rejected: %s\n", cycle,
                ats::persist::CheckpointFaultName(fault));
    return false;
  }
  *committed = true;
  if (reader.epoch() == 0 || reader.epoch() % 64 != 0) {
    std::printf("FAIL cycle %d: impossible epoch %" PRIu64 "\n", cycle,
                reader.epoch());
    return false;
  }
  // The payload must be the exact canonical sketch of that prefix --
  // a torn or mixed image cannot fake this.
  if (std::string(reader.payload()) != ReferenceFrame(reader.epoch())) {
    std::printf("FAIL cycle %d: payload != reference at epoch %" PRIu64
                "\n",
                cycle, reader.epoch());
    return false;
  }
  return true;
}

}  // namespace

int main() {
  char dir_template[] = "/tmp/ats_kill_recover_XXXXXX";
  const char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string path = std::string(dir) + "/victim.ckp";

  ats::Xoshiro256 delay_rng(0xdead);
  bool committed = false;  // has any cycle ever observed a commit
  int committed_cycles = 0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      WriterChild(path);  // never returns
    }
    // Sleep 0..4ms: spans everything from "before the first write"
    // to "dozens of commits deep".
    ::usleep(static_cast<useconds_t>(delay_rng.NextBelow(4000)));
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      std::printf("FAIL cycle %d: child did not die by SIGKILL\n", cycle);
      return 1;
    }
    if (!CheckSurvivor(path, ats::persist::OpenMode::kPreferMmap, cycle,
                       &committed) ||
        !CheckSurvivor(path, ats::persist::OpenMode::kBuffered, cycle,
                       &committed)) {
      return 1;
    }
    if (committed) ++committed_cycles;
  }

  if (committed_cycles == 0) {
    std::printf(
        "FAIL: no cycle ever observed a committed checkpoint; the "
        "harness never exercised recovery\n");
    return 1;
  }
  std::printf("kill_and_recover: %d cycles OK (%d with a survivor)\n",
              kCycles, committed_cycles);
  return 0;
}
#endif
