#!/usr/bin/env python3
"""Checks that intra-repo markdown links resolve.

Scans every *.md file in the repository for inline links/images
(``[text](target)``) and verifies that relative targets exist on disk.
For targets inside another markdown file, ``#anchor`` fragments are
checked against the GitHub-style slugs of that file's headings.

External links (http/https/mailto) are ignored -- this is a hygiene
check for the repo's own documentation tier, not a crawler. Exits
non-zero with one line per broken link.

Usage: tools/check_md_links.py [repo_root]
"""
import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_DIRS = {".git", "build", "build-release", "third_party", ".claude"}


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, strip punctuation, dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md_path: str) -> set:
    with open(md_path, encoding="utf-8") as f:
        content = f.read()
    return {github_slug(h) for h in HEADING_RE.findall(content)}


def check_file(md_path: str, root: str) -> list:
    errors = []
    with open(md_path, encoding="utf-8") as f:
        content = f.read()
    # Fenced code blocks routinely contain example link-like syntax.
    content = re.sub(r"```.*?```", "", content, flags=re.DOTALL)
    for target in LINK_RE.findall(content):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        target, _, fragment = target.partition("#")
        if not target:  # same-file anchor
            resolved = md_path
        else:
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), target))
        rel = os.path.relpath(md_path, root)
        if not os.path.exists(resolved):
            errors.append(f"{rel}: broken link -> {target}")
            continue
        if fragment and resolved.endswith(".md"):
            if fragment not in anchors_of(resolved):
                errors.append(
                    f"{rel}: missing anchor -> {target or '.'}#{fragment}")
    return errors


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = []
    checked = 0
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                checked += 1
                errors.extend(check_file(os.path.join(dirpath, name), root))
    for err in errors:
        print(err)
    print(f"checked {checked} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
