// Approximate query processing with early stopping (Section 3.10): store
// the whole table sorted by sampling priority, then answer SUM queries at
// user-chosen accuracy, reading only as many rows as each target needs.
//
// Build & run:  ./build/examples/aqp_session
#include <cmath>
#include <cstdio>
#include <vector>

#include "ats/aqp/engine.h"

int main() {
  // An orders table: 200k rows, amount ~ lognormal, weighted by amount
  // (PPS layout: big orders sort early and are always read first).
  const size_t n = 200000;
  ats::Xoshiro256 rng(7);
  std::vector<ats::AqpEngine::Row> rows(n);
  double truth_all = 0.0, truth_segment = 0.0;
  for (size_t i = 0; i < n; ++i) {
    rows[i].key = i;
    rows[i].weight = std::exp(0.7 * rng.NextGaussian());
    rows[i].value = rows[i].weight;
    truth_all += rows[i].value;
    if (i % 7 == 0) truth_segment += rows[i].value;
  }
  ats::AqpEngine engine(std::move(rows), /*seed=*/11);

  std::printf("table: %zu rows, priority-ordered (build once, query at any "
              "accuracy)\n\n",
              engine.table_size());
  std::printf("%-34s %-12s %-10s %-12s %-10s\n", "query", "target +-",
              "rows read", "estimate", "true");
  struct Q {
    const char* name;
    double delta;
    bool segment;
  };
  const Q queries[] = {
      {"SUM(amount) rough", 3000.0, false},
      {"SUM(amount) normal", 800.0, false},
      {"SUM(amount) precise", 200.0, false},
      {"SUM(amount) WHERE key%7=0 rough", 1200.0, true},
      {"SUM(amount) WHERE key%7=0 precise", 150.0, true},
  };
  for (const Q& q : queries) {
    const auto pred = q.segment
                          ? std::function<bool(uint64_t)>(
                                [](uint64_t k) { return k % 7 == 0; })
                          : std::function<bool(uint64_t)>(
                                [](uint64_t) { return true; });
    const auto r = engine.QuerySum(pred, q.delta);
    std::printf("%-34s %-12.0f %-10zu %-12.0f %-10.0f\n", q.name, q.delta,
                r.rows_read, r.estimate,
                q.segment ? truth_segment : truth_all);
  }
  std::printf("\nCrude answers read a few thousand rows; precise ones read "
              "more -- the user tunes accuracy at query time.\n");
  return 0;
}
