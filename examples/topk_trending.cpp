// Trending items (Section 3.3): find the top-10 most frequent items of a
// skewed stream WITHOUT knowing the frequency distribution in advance,
// and answer disaggregated follow-up queries ("how many impressions did
// the even-numbered topic group get?") from the same sketch.
//
// Build & run:  ./build/examples/topk_trending
#include <cstdio>

#include "ats/samplers/topk_sampler.h"
#include "ats/workload/pitman_yor.h"

int main() {
  // A preferential-attachment stream: new pages keep appearing, popular
  // pages keep getting more popular (beta = 0.7: fairly heavy tail).
  ats::PitmanYorStream stream(/*beta=*/0.7, /*seed=*/42);
  ats::TopKSampler sampler(/*k=*/10, /*seed=*/43);

  const int stream_len = 500000;
  for (int i = 0; i < stream_len; ++i) sampler.Add(stream.Next());

  std::printf("top-10 pages by estimated views (stream of %d views over "
              "%zu pages):\n",
              stream_len, stream.NumUnique());
  std::printf("%-6s %-10s %-12s %-10s\n", "rank", "page", "estimate",
              "true");
  int rank = 1;
  for (uint64_t page : sampler.TopK()) {
    std::printf("%-6d %-10llu %-12.0f %-10lld\n", rank++,
                static_cast<unsigned long long>(page),
                sampler.EstimatedCount(page),
                static_cast<long long>(stream.Count(page)));
  }

  // Disaggregated subset sum (Section 3.3): total views of even pages --
  // the sketch supports further aggregation with unbiased estimates.
  const double even_est =
      sampler.EstimatedSubsetCount([](uint64_t page) { return page % 2 == 0; });
  int64_t even_true = 0;
  for (size_t p = 0; p < stream.NumUnique(); p += 2) {
    even_true += stream.Count(p);
  }
  std::printf("\nviews on even-numbered pages: estimate %.0f (true %lld)\n",
              even_est, static_cast<long long>(even_true));
  std::printf("sketch size adapted to %zu entries (threshold %.2g)\n",
              sampler.size(), sampler.Threshold());
  return 0;
}
