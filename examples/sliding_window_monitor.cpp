// Sliding-window monitoring (Section 3.2): keep a bounded-space uniform
// sample of the last window of a traffic stream whose rate spikes, using
// the G&L sketch with the paper's improved final threshold.
//
// The monitor prints, once per simulated second, the usable sample size
// under both final thresholds and an HT estimate of the window's item
// count -- all from the identical stored state.
//
// Build & run:  ./build/examples/sliding_window_monitor
#include <cstdio>

#include "ats/core/ht_estimator.h"
#include "ats/samplers/sliding_window.h"
#include "ats/workload/arrivals.h"

int main() {
  const size_t k = 200;          // space budget (current window)
  const double window = 1.0;     // seconds
  ats::SlidingWindowSampler sampler(k, window, /*seed=*/7);

  // Traffic at 2000 items/s with a 5x burst during seconds 4-5.
  ats::RateProfile profile = ats::RateProfile::WithSpike(2000.0, 4.0, 5.0,
                                                         5.0);
  ats::ArrivalProcess arrivals(profile, 10000.0, 8);

  std::printf("time  rate   stored  usable(G&L)  usable(improved)  "
              "window count est (rate*window now)\n");
  double next_report = 1.0;
  for (const ats::Arrival& a : arrivals.Until(8.0)) {
    sampler.Arrive(a.time, a.id);
    if (a.time >= next_report) {
      const auto gl = sampler.GlSample(a.time);
      const auto imp = sampler.ImprovedSample(a.time);
      // The improved sample is a uniform sample of the window at a known
      // threshold: HT with value 1 estimates the window's item count.
      const double count_est = ats::HtCount(imp);
      std::printf("%4.1f  %5.0f  %6zu  %11zu  %16zu  %9.0f (%5.0f)\n",
                  a.time, profile.RateAt(a.time),
                  sampler.StoredCount(a.time), gl.size(), imp.size(),
                  count_est, profile.RateAt(a.time) * window);
      next_report += 1.0;
    }
  }
  std::printf("\nSame sketch, two final thresholds: the improved rule "
              "roughly doubles the usable sample.\n");
  return 0;
}
