// Sampling variable-size survey responses under a hard memory budget
// (Section 3.1), with a multi-stratified companion sample (Section 3.7).
//
// Scenario: survey responses vary from short categorical rows to long
// free-text answers (sizes calibrated to the paper's Kaggle statistics).
// A fixed-k bottom-k sample must assume every item is maximal; the budget
// sampler adapts its threshold to the realized sizes and fits ~4x more
// responses into the same budget. A second, multi-stratified sample
// guarantees representation by region AND by experience level.
//
// Build & run:  ./build/examples/survey_budget
#include <cstdio>

#include "ats/core/ht_estimator.h"
#include "ats/samplers/budget_sampler.h"
#include "ats/samplers/multi_stratified.h"
#include "ats/workload/survey.h"

int main() {
  ats::SurveyGenerator gen(/*seed=*/3);
  const auto responses = gen.Generate(30000);
  const double budget = 50.0 * gen.max_size();  // room for 50 maximal items

  // --- Budget sampler: utilize the whole budget ---
  ats::BudgetSampler sampler(budget, /*seed=*/5);
  for (const auto& r : responses) sampler.Add(r.id, r.size, 1.0);

  const size_t conservative_k = static_cast<size_t>(budget / gen.max_size());
  std::printf("budget = %.0f chars (max item %.0f, mean %.0f)\n", budget,
              gen.max_size(), gen.mean_size());
  std::printf("  conservative bottom-k sample: %zu responses\n",
              conservative_k);
  std::printf("  adaptive budget sample:       %zu responses "
              "(%.0f%% budget used)\n",
              sampler.size(), 100.0 * sampler.UsedBudget() / budget);

  const double count_est = ats::HtCount(sampler.Sample());
  std::printf("  estimated population size:    %.0f (true %zu)\n\n",
              count_est, responses.size());

  // --- Multi-stratified sample: by region and by experience ---
  ats::MultiStratifiedSampler strat(/*num_dimensions=*/2, /*k=*/10,
                                    /*seed=*/9);
  ats::Xoshiro256 demo_rng(11);
  for (const auto& r : responses) {
    const uint64_t region = demo_rng.NextBelow(6);
    const uint64_t experience = demo_rng.NextBelow(4);
    strat.Add(r.id, {region, experience}, r.size);
  }
  strat.ShrinkToBudget(80);
  std::printf("multi-stratified companion sample (6 regions x 4 levels, "
              "budget 80): %zu responses\n",
              strat.size());
  std::printf("  per-region sizes:");
  for (uint64_t region = 0; region < 6; ++region) {
    std::printf(" %zu", strat.StratumSize(0, region));
  }
  std::printf("\n  per-level sizes: ");
  for (uint64_t level = 0; level < 4; ++level) {
    std::printf(" %zu", strat.StratumSize(1, level));
  }
  const double mean_size_est = ats::HtTotal(strat.Sample()) /
                               ats::HtCount(strat.Sample());
  std::printf("\n  estimated mean response size from stratified sample: "
              "%.0f chars (true %.0f)\n",
              mean_size_est, gen.mean_size());
  return 0;
}
