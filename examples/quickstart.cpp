// Quickstart: the core adaptive-threshold-sampling workflow in ~60 lines.
//
//  1. Stream weighted items through a priority sampler (weighted bottom-k
//     with the substitutable (k+1)-th smallest-priority threshold).
//  2. Estimate population and subset totals with the plain HT estimator
//     -- no custom estimator needed, exactly the paper's selling point.
//  3. Attach variance estimates and confidence intervals.
//
// Build & run:  ./build/examples/quickstart
#include <cmath>
#include <cstdio>

#include "ats/core/bottom_k.h"
#include "ats/estimators/subset_sum.h"

int main() {
  // A revenue stream: 100k transactions, lognormal amounts. Transactions
  // from "region A" are the keys divisible by 3.
  ats::Xoshiro256 data_rng(2024);
  const size_t n = 100000;

  // Keep a sample of only 500 transactions, weighted by amount (PPS).
  ats::PrioritySampler sampler(/*k=*/500, /*seed=*/1);

  double true_total = 0.0, true_region_a = 0.0;
  for (uint64_t id = 0; id < n; ++id) {
    const double amount = std::exp(1.0 + 0.8 * data_rng.NextGaussian());
    sampler.Add(id, amount);
    true_total += amount;
    if (id % 3 == 0) true_region_a += amount;
  }

  // All estimators consume the same SampleEntry records; the adaptive
  // threshold is treated as if it were fixed (threshold substitution).
  const auto sample = sampler.Sample();

  const auto total = ats::EstimateTotal(sample);
  std::printf("total revenue:   estimate %12.0f  (true %12.0f)  +-%.0f\n",
              total.estimate, true_total, total.ci_half_width);

  const auto region_a = ats::EstimateSubsetSum(
      sample, [](uint64_t id) { return id % 3 == 0; });
  std::printf("region A:        estimate %12.0f  (true %12.0f)  +-%.0f\n",
              region_a.estimate, true_region_a, region_a.ci_half_width);

  const auto region_count = ats::EstimateSubsetCount(
      sample, [](uint64_t id) { return id % 3 == 0; });
  std::printf("region A count:  estimate %12.0f  (true %12.0f)\n",
              region_count.estimate, std::floor((n + 2) / 3.0));

  std::printf("\nsample size %zu of %zu items; adaptive threshold %.3g\n",
              sample.size(), n, sampler.Threshold());
  const bool covered =
      std::abs(total.estimate - true_total) <= total.ci_half_width;
  std::printf("95%% CI %s the true total.\n",
              covered ? "covers" : "misses (expected ~5%% of runs)");
  return 0;
}
