// Checkpoint and restart (the persistence tier, src/ats/persist): a
// node sketches a key stream, checkpoints on a cadence, dies -- losing
// every in-memory byte -- and recovers by restoring the last durable
// checkpoint through the zero-copy mmap open path, then replaying only
// the short log tail the checkpoint had not yet absorbed. The recovered
// sketch is BIT-IDENTICAL to one that never crashed, so the estimate is
// identical too; and a corrupted checkpoint is rejected with a typed
// reason, falling back to full-log replay instead of a wrong answer.
//
// Build & run:  ./build/examples/checkpoint_restart
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ats/cluster/node.h"
#include "ats/core/random.h"
#include "ats/persist/checkpoint.h"
#include "ats/sketch/kmv.h"

int main() {
  using namespace ats;
  using cluster::AgentNode;

  const std::string path = "/tmp/ats_checkpoint_restart_demo.ckp";

  // An agent with checkpoint-on-cadence: every 4096 ingested keys the
  // node atomically rewrites `path` with its cumulative sketch and
  // truncates its replay log to empty -- the log stays bounded by the
  // cadence instead of growing with the stream.
  AgentNode agent(/*id=*/1, /*k=*/1024, /*salt=*/2022,
                  cluster::RetryPolicy{});
  agent.ConfigureCheckpoint({path, /*every_epochs=*/4096,
                             /*prefer_mmap=*/true});

  Xoshiro256 rng(7);
  std::vector<uint64_t> batch(512);
  for (int b = 0; b < 50; ++b) {  // 25600 keys; last checkpoint at 24576
    for (auto& k : batch) k = rng.NextBelow(40000);
    agent.Ingest(batch);
    agent.MaybeCheckpoint();
  }

  const std::string before_crash = agent.sketch().SerializeToString();
  std::printf("ingested %llu keys, estimate %.0f distinct\n",
              static_cast<unsigned long long>(agent.epoch()),
              agent.sketch().Estimate());
  std::printf("checkpoints written: %llu; replay log holds only the "
              "%zu-key tail past epoch %llu\n\n",
              static_cast<unsigned long long>(agent.checkpoints_written()),
              agent.log().size(),
              static_cast<unsigned long long>(agent.checkpoint_epoch()));

  // The crash: the process dies. Sketch and outbox are gone; only the
  // checkpoint file and the durable log tail survive.
  agent.Crash(/*now=*/0, /*down_ticks=*/0);
  std::printf("CRASH -- in-memory sketch lost\n");

  // Recovery: restore the checkpoint (mmap + validate + deserialize),
  // then replay the log suffix past its covered epoch.
  agent.MaybeRestart(/*now=*/0);
  std::printf("restored from checkpoint (%llu restore, %llu failures), "
              "replayed %llu-key tail\n",
              static_cast<unsigned long long>(agent.checkpoint_restores()),
              static_cast<unsigned long long>(
                  agent.checkpoint_restore_failures()),
              static_cast<unsigned long long>(agent.epoch() -
                                              agent.checkpoint_epoch()));
  std::printf("estimate after recovery: %.0f  (bit-identical state: %s)\n\n",
              agent.sketch().Estimate(),
              agent.sketch().SerializeToString() == before_crash ? "yes"
                                                                 : "NO");

  // Fail-closed: flip one byte in the checkpoint file. The open path
  // classifies the damage with a typed reason and refuses to restore --
  // the target sketch is left untouched, never half-assigned.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] ^= 0x04;
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  KmvSketch victim(1024, 1.0, 2022);
  const std::string untouched = victim.SerializeToString();
  const persist::CheckpointFault fault = persist::RestoreFromCheckpoint(
      path, persist::SchemeKind::kKmv, &victim);
  std::printf("bit-flipped checkpoint rejected: \"%s\" "
              "(target untouched: %s)\n\n",
              persist::CheckpointFaultName(fault),
              victim.SerializeToString() == untouched ? "yes" : "NO");

  // An agent facing that poisoned file fails closed the same way: the
  // typed rejection makes it ignore the file entirely and replay its
  // durable log instead -- slower, never wrong. (This agent never
  // reached its cadence, so its log still holds the whole stream; once
  // a checkpoint truncates the log, the atomic write-rename in
  // CheckpointWriter is what guarantees the file stays whole.)
  AgentNode skeptic(/*id=*/2, /*k=*/1024, /*salt=*/2022,
                    cluster::RetryPolicy{});
  skeptic.ConfigureCheckpoint({path, /*every_epochs=*/1u << 30,
                               /*prefer_mmap=*/true});
  Xoshiro256 rng2(7);
  for (int b = 0; b < 50; ++b) {
    for (auto& k : batch) k = rng2.NextBelow(40000);
    skeptic.Ingest(batch);
  }
  const std::string skeptic_before = skeptic.sketch().SerializeToString();
  skeptic.Crash(/*now=*/1, /*down_ticks=*/0);
  skeptic.MaybeRestart(/*now=*/1);
  std::printf("agent facing the poisoned file: restore rejected "
              "(reason \"%s\"), full-log replay bit-identical: %s\n",
              persist::CheckpointFaultName(skeptic.last_restore_fault()),
              skeptic.sketch().SerializeToString() == skeptic_before
                  ? "yes"
                  : "NO");
  return 0;
}
