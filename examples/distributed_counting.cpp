// Distributed distinct counting (Sections 3.4-3.5), now over the cluster
// harness (src/ats/cluster): agent nodes sketch their local key streams
// and ship cumulative KMV snapshots up a fan-in tree of aggregators, on
// a faulty wire. Frames travel in checksummed, sequence-numbered ENV1
// envelopes; aggregators ack, senders retry with capped exponential
// backoff, and damaged frames are rejected with typed reasons -- so the
// root converges to the fault-free merge even though the transport here
// is injecting drops, delays, and byte corruption.
//
// Build & run:  ./build/examples/distributed_counting
#include <cstdio>

#include "ats/cluster/cluster.h"

int main() {
  using namespace ats::cluster;

  ClusterConfig config;
  config.num_agents = 12;
  config.fan_in = 4;  // 12 agents -> 3 aggregators -> root
  config.k = 1024;
  config.seed = 2022;
  config.workload = ClusterConfig::Workload::kZipf;
  config.universe = 200000;
  config.zipf_s = 0.9;
  config.keys_per_tick = 512;
  config.ingest_ticks = 64;
  config.snapshot_every = 8;
  // The injected fault: a lossy, jittery, occasionally corrupting wire.
  config.faults.drop_rate = 0.15;
  config.faults.corrupt_rate = 0.05;
  config.faults.max_delay_ticks = 4;
  // First retry only after the worst-case round trip (send jitter + ack
  // jitter), so retransmissions mean actual loss, not impatience.
  config.retry.initial_backoff_ticks = 10;

  ClusterSim sim(config);
  std::printf("cluster: %llu agents, fan-in %llu, %zu aggregators\n",
              static_cast<unsigned long long>(config.num_agents),
              static_cast<unsigned long long>(config.fan_in),
              sim.num_aggregators());
  std::printf("faults:  drop %.0f%%, corrupt %.0f%%, delay jitter up to "
              "%llu ticks\n\n",
              100.0 * config.faults.drop_rate,
              100.0 * config.faults.corrupt_rate,
              static_cast<unsigned long long>(config.faults.max_delay_ticks));

  // Mid-ingest the root already answers -- from its last consistent
  // merged snapshot, with per-subtree staleness alongside.
  std::printf("%6s  %12s  %12s  %s\n", "tick", "root estimate",
              "exact so far", "subtree staleness (epochs behind)");
  while (!sim.IngestDone()) {
    sim.Tick();
    if (sim.now() % 16 != 0) continue;
    std::printf("%6llu  %12.0f  %12llu  ",
                static_cast<unsigned long long>(sim.now()),
                sim.root().Estimate(),
                static_cast<unsigned long long>(sim.ExactDistinctTotal()));
    for (const SubtreeStaleness& s : sim.root().Staleness()) {
      std::printf("[%llu: %llu] ",
                  static_cast<unsigned long long>(s.child_id),
                  static_cast<unsigned long long>(s.epochs_behind()));
    }
    std::printf("\n");
  }

  if (!sim.RunUntilQuiescent()) {
    std::fprintf(stderr, "cluster failed to drain!\n");
    return 1;
  }

  const ClusterMetrics m = sim.Metrics();
  const double est = sim.root().Estimate();
  const double truth = static_cast<double>(sim.ExactDistinctTotal());
  std::printf("\nafter drain (%llu ticks):\n",
              static_cast<unsigned long long>(m.ticks));
  std::printf("  true distinct keys:     %.0f\n", truth);
  std::printf("  root estimate:          %.0f  (%.2f%% error)\n", est,
              100.0 * (est - truth) / truth);
  std::printf("  converged bit-exactly:  %s\n",
              sim.root().SnapshotFrame() == sim.FaultFreeRootFrame()
                  ? "yes"
                  : "NO");
  std::printf("  frames applied at root: %llu  (retransmissions: %llu)\n",
              static_cast<unsigned long long>(m.root_frames_applied),
              static_cast<unsigned long long>(m.retransmissions));
  std::printf("  rejected at root:       %llu truncated, %llu corrupt "
              "(typed, counted, never merged)\n",
              static_cast<unsigned long long>(m.root_rejects.truncated),
              static_cast<unsigned long long>(m.root_rejects.corrupt_body));
  std::printf("  bytes on wire:          %llu  (naive re-ship every "
              "cadence: %llu)\n",
              static_cast<unsigned long long>(m.transport.bytes_on_wire),
              static_cast<unsigned long long>(m.naive_reship_bytes));
  std::printf(
      "\nCumulative snapshots make the union self-healing: a dropped or\n"
      "corrupted frame needs no repair, because any later snapshot from\n"
      "the same agent absorbs it (Sections 3.4-3.5 union algebra).\n");
  return 0;
}
