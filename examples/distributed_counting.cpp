// Distributed distinct counting (Sections 3.4-3.5): worker nodes sketch
// their local key streams, serialize the sketches over the wire, and a
// coordinator merges them with the generalized LCS rule -- retaining each
// node's own (larger) threshold per item instead of collapsing everything
// to the global minimum like a Theta union would.
//
// Build & run:  ./build/examples/distributed_counting
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "ats/core/random.h"
#include "ats/sketch/kmv.h"
#include "ats/sketch/lcs_merge.h"
#include "ats/sketch/theta.h"

int main() {
  const size_t k = 256;
  const uint64_t salt = 7;  // all nodes must hash identically
  const int num_nodes = 12;

  // Workers: node 0 is a hot shard with many distinct users; the others
  // see small, partially overlapping slices.
  std::vector<std::string> wire_messages;
  std::set<uint64_t> truth;
  size_t bytes_shipped = 0;
  for (int node = 0; node < num_nodes; ++node) {
    ats::KmvSketch sketch(k, 1.0, salt);
    ats::Xoshiro256 rng(100 + static_cast<uint64_t>(node));
    const int local_users = node == 0 ? 500000 : 3000;
    for (int i = 0; i < local_users; ++i) {
      const uint64_t user =
          node == 0 ? rng.NextBelow(400000)
                    : 400000 + rng.NextBelow(20000);  // tail shards overlap
      sketch.AddKey(user);
      truth.insert(user);
    }
    wire_messages.push_back(sketch.SerializeToString());
    bytes_shipped += wire_messages.back().size();
  }

  // Coordinator: deserialize and LCS-merge.
  ats::LcsSketch merged;
  for (const std::string& bytes : wire_messages) {
    const auto sketch = ats::KmvSketch::Deserialize(bytes);
    if (!sketch) {
      std::fprintf(stderr, "corrupt sketch message!\n");
      return 1;
    }
    merged.Merge(ats::LcsSketch::FromKmv(*sketch));
  }

  std::printf("nodes: %d, bytes shipped: %zu (vs %zu raw user ids)\n",
              num_nodes, bytes_shipped, truth.size() * 8);
  std::printf("true distinct users:      %zu\n", truth.size());
  std::printf("LCS-merged estimate:      %.0f  (%.2f%% error)\n",
              merged.Estimate(),
              100.0 * (merged.Estimate() - double(truth.size())) /
                  double(truth.size()));
  std::printf("retained sample size:     %zu hashes with per-item "
              "thresholds\n",
              merged.size());
  std::printf(
      "\nThe hot shard's threshold dominates a Theta union; LCS keeps the\n"
      "small shards' items at their own (near-1) thresholds, so the tail\n"
      "shards are counted almost exactly (Section 3.5).\n");
  return 0;
}
