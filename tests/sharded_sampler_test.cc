// Tests for ats/core/sharded_sampler.h: the hash-partitioned parallel
// ingestion front-end. The load-bearing property (Section 2.5): with
// coordinated priorities, the sharded-then-merged sample and threshold
// are EXACTLY those of single-store ingestion, so estimates agree to the
// last bit; with independent priorities the estimates stay unbiased.
#include "ats/core/sharded_sampler.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ats/core/ht_estimator.h"
#include "ats/core/random.h"
#include "ats/util/stats.h"
#include "ats/workload/synthetic.h"

namespace ats {
namespace {

std::vector<ShardedSampler::Item> MakeStream(size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<ShardedSampler::Item> out(n);
  uint64_t key = 0;
  for (auto& item : out) {
    item.key = key++;
    item.weight = std::exp(0.5 * rng.NextGaussian());
  }
  return out;
}

std::vector<std::pair<double, uint64_t>> SortedSample(
    const std::vector<SampleEntry>& sample) {
  std::vector<std::pair<double, uint64_t>> out;
  out.reserve(sample.size());
  for (const auto& e : sample) out.emplace_back(e.priority, e.key);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ShardedSampler, CoordinatedShardingMatchesSingleStoreExactly) {
  const size_t k = 100;
  const auto stream = MakeStream(20000, 11);

  PrioritySampler single(k, /*seed=*/1, /*coordinated=*/true);
  for (const auto& item : stream) single.Add(item.key, item.weight);

  for (size_t num_shards : {1u, 2u, 4u, 7u}) {
    ShardedSampler sharded(num_shards, k);
    sharded.AddBatch(stream);

    const auto merged = sharded.Merged();
    EXPECT_DOUBLE_EQ(merged.threshold, single.Threshold())
        << "S=" << num_shards;
    EXPECT_DOUBLE_EQ(sharded.MergedThreshold(), merged.threshold);
    EXPECT_EQ(SortedSample(merged.entries), SortedSample(single.Sample()))
        << "S=" << num_shards;
    // Same estimates, to the bit.
    EXPECT_DOUBLE_EQ(HtTotal(merged.entries), HtTotal(single.Sample()))
        << "S=" << num_shards;
  }
}

TEST(ShardedSampler, ScalarAndBatchedIngestAgree) {
  const auto stream = MakeStream(5000, 13);
  ShardedSampler scalar(4, 64), batched(4, 64);
  for (const auto& item : stream) scalar.Add(item.key, item.weight);
  batched.AddBatch(stream);
  EXPECT_DOUBLE_EQ(batched.MergedThreshold(), scalar.MergedThreshold());
  EXPECT_EQ(SortedSample(batched.Sample()), SortedSample(scalar.Sample()));
}

TEST(ShardedSampler, ShardsPartitionTheKeySpace) {
  ShardedSampler sharded(8, 32);
  const auto stream = MakeStream(4000, 17);
  sharded.AddBatch(stream);
  // Each retained key lives in exactly the shard its hash routes to.
  std::set<uint64_t> seen;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    for (const auto& e : sharded.shard(s).Sample()) {
      EXPECT_EQ(sharded.ShardOf(e.key), s);
      EXPECT_TRUE(seen.insert(e.key).second) << "key in two shards";
    }
  }
  EXPECT_EQ(sharded.TotalRetained(), seen.size());
}

TEST(ShardedSampler, MergedSampleSizeIsK) {
  const size_t k = 50;
  ShardedSampler sharded(4, k);
  const auto stream = MakeStream(10000, 19);
  sharded.AddBatch(stream);
  EXPECT_EQ(sharded.Sample().size(), k);
  // Per-shard stores hold up to k each; the merge re-caps at k.
  EXPECT_GE(sharded.TotalRetained(), k);
}

TEST(ShardedSampler, IndependentModeHtTotalIsUnbiased) {
  const auto population = MakeWeightedPopulation(600, 23, true);
  double truth = 0.0;
  std::vector<ShardedSampler::Item> stream;
  for (const auto& it : population) {
    truth += it.weight;
    stream.push_back({it.key, it.weight});
  }

  RunningStat estimates;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    ShardedSampler sharded(4, 40, /*coordinated=*/false,
                           /*seed=*/1000 + static_cast<uint64_t>(t));
    sharded.AddBatch(stream);
    estimates.Add(HtTotal(sharded.Sample()));
  }
  const double se = estimates.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(estimates.mean(), truth, 4.0 * se + 1e-9);
}

TEST(ShardedSampler, ParallelShardIngestMatchesSequential) {
  // Pre-partition the stream and feed each shard from its own thread via
  // AddShardBatch; the result must equal sequential AddBatch ingestion.
  const auto stream = MakeStream(8000, 27);
  const size_t num_shards = 4;
  ShardedSampler sequential(num_shards, 64), parallel(num_shards, 64);
  sequential.AddBatch(stream);

  std::vector<std::vector<ShardedSampler::Item>> parts(num_shards);
  for (const auto& item : stream) {
    parts[parallel.ShardOf(item.key)].push_back(item);
  }
  std::vector<std::thread> workers;
  for (size_t s = 0; s < num_shards; ++s) {
    workers.emplace_back(
        [&parallel, &parts, s] { parallel.AddShardBatch(s, parts[s]); });
  }
  for (auto& worker : workers) worker.join();

  EXPECT_DOUBLE_EQ(parallel.MergedThreshold(),
                   sequential.MergedThreshold());
  EXPECT_EQ(SortedSample(parallel.Sample()),
            SortedSample(sequential.Sample()));
}

}  // namespace
}  // namespace ats
