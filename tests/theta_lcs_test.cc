// Tests for ats/sketch/theta.h and ats/sketch/lcs_merge.h (Section 3.5,
// Figure 4): union estimates, the LCS variance advantage, and chaining.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ats/sketch/kmv.h"
#include "ats/sketch/lcs_merge.h"
#include "ats/sketch/theta.h"
#include "ats/util/stats.h"
#include "ats/workload/synthetic.h"

namespace ats {
namespace {

TEST(Theta, SingleStreamMatchesKmv) {
  ThetaSketch theta(64);
  KmvSketch kmv(64);
  for (uint64_t i = 0; i < 5000; ++i) {
    theta.AddKey(i);
    kmv.AddKey(i);
  }
  EXPECT_DOUBLE_EQ(theta.Estimate(), kmv.Estimate());
  EXPECT_DOUBLE_EQ(theta.Theta(), kmv.Threshold());
}

TEST(Theta, AddKeysMatchesScalarAddKeyLoop) {
  std::vector<uint64_t> keys(5000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i % 3000;
  ThetaSketch batched(64), scalar(64);
  batched.AddKeys(keys);
  for (uint64_t key : keys) scalar.AddKey(key);
  EXPECT_DOUBLE_EQ(batched.Theta(), scalar.Theta());
  EXPECT_EQ(batched.size(), scalar.size());
  EXPECT_EQ(batched.RetainedPriorities(), scalar.RetainedPriorities());
}

TEST(Theta, UnionEstimatesUnionSize) {
  const auto sets = MakeSetPairWithJaccard(20000, 40000, 0.1, 1);
  ThetaSketch a(128), b(128);
  for (uint64_t key : sets.a) a.AddKey(key);
  for (uint64_t key : sets.b) b.AddKey(key);
  const ThetaSketch u = ThetaSketch::Union({&a, &b});
  EXPECT_NEAR(u.Estimate(), double(sets.union_size),
              4.0 * double(sets.union_size) / std::sqrt(128.0));
  // Theta union threshold is the min of the inputs.
  EXPECT_DOUBLE_EQ(u.Theta(), std::min(a.Theta(), b.Theta()));
  // Union can retain more than k hashes (no re-capping).
  EXPECT_GE(u.size(), 128u);
}

TEST(Lcs, FromKmvMatchesKmvEstimate) {
  KmvSketch kmv(64);
  for (uint64_t i = 0; i < 3000; ++i) kmv.AddKey(i);
  const LcsSketch lcs = LcsSketch::FromKmv(kmv);
  EXPECT_NEAR(lcs.Estimate(), kmv.Estimate(), 1e-9);
  EXPECT_EQ(lcs.size(), kmv.size());
}

TEST(Lcs, UnionIsUnbiased) {
  const size_t k = 128;
  RunningStat est;
  const int trials = 200;
  size_t union_size = 0;
  for (int t = 0; t < trials; ++t) {
    const auto sets =
        MakeSetPairWithJaccard(10000, 20000, 0.15, 100 + t);
    union_size = sets.union_size;
    KmvSketch a(k, 1.0, static_cast<uint64_t>(t)),
        b(k, 1.0, static_cast<uint64_t>(t));
    for (uint64_t key : sets.a) a.AddKey(key);
    for (uint64_t key : sets.b) b.AddKey(key);
    LcsSketch u = LcsSketch::FromKmv(a);
    u.Merge(LcsSketch::FromKmv(b));
    est.Add(u.Estimate());
  }
  const double se = est.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(est.mean(), double(union_size), 4.0 * se);
}

TEST(Lcs, BeatsThetaAndBottomKVariance) {
  // The Figure 4 ordering at moderate Jaccard: LCS error below both the
  // bottom-k merge and the Theta union.
  const size_t k = 100;
  RunningStat lcs_err, theta_err, bottomk_err;
  const int trials = 250;
  for (int t = 0; t < trials; ++t) {
    const auto sets = MakeSetPairWithJaccard(20000, 40000, 0.05, 500 + t);
    const double n = double(sets.union_size);
    const uint64_t salt = static_cast<uint64_t>(t) + 1;

    KmvSketch ka(k, 1.0, salt), kb(k, 1.0, salt);
    ThetaSketch ta(k, salt), tb(k, salt);
    for (uint64_t key : sets.a) {
      ka.AddKey(key);
      ta.AddKey(key);
    }
    for (uint64_t key : sets.b) {
      kb.AddKey(key);
      tb.AddKey(key);
    }
    LcsSketch lcs = LcsSketch::FromKmv(ka);
    lcs.Merge(LcsSketch::FromKmv(kb));
    lcs_err.Add((lcs.Estimate() - n) / n);

    theta_err.Add((ThetaSketch::Union({&ta, &tb}).Estimate() - n) / n);

    KmvSketch merged = ka;
    merged.Merge(kb);
    bottomk_err.Add((merged.Estimate() - n) / n);
  }
  EXPECT_LT(lcs_err.StdDev(), theta_err.StdDev());
  EXPECT_LT(lcs_err.StdDev(), bottomk_err.StdDev());
}

TEST(Lcs, ChainedMergesStayAccurate) {
  // Merge 20 sketches of disjoint sets; chained LCS merges estimate the
  // total with the dominant-set property of Section 3.5.
  const size_t k = 100;
  LcsSketch total;
  double truth = 0.0;
  for (int s = 0; s < 20; ++s) {
    KmvSketch sketch(k, 1.0, 7);
    const uint64_t base = static_cast<uint64_t>(s) << 40;
    const size_t n = 1000 * (static_cast<size_t>(s) + 1);
    for (uint64_t i = 0; i < n; ++i) sketch.AddKey(base + i);
    truth += double(n);
    total.Merge(LcsSketch::FromKmv(sketch));
  }
  EXPECT_NEAR(total.Estimate(), truth, 0.15 * truth);
}

TEST(Lcs, DominantSetMergeErrorScalesWithLargeSetOnly) {
  // Section 3.5's example shape: one large set union many small sets. The
  // small sets are counted EXACTLY by LCS (their sketches are
  // unsaturated, per-item threshold 1), so only the large sketch
  // contributes error. The Theta union, in contrast, downsamples
  // everything to the min threshold.
  const size_t k = 100;
  const size_t large_n = 100000, small_sets = 200, small_n = 50;
  RunningStat lcs_err, theta_err;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    const uint64_t salt = static_cast<uint64_t>(t) + 1;
    KmvSketch large(k, 1.0, salt);
    ThetaSketch large_theta(k, salt);
    for (uint64_t i = 0; i < large_n; ++i) {
      const uint64_t key = (1ULL << 50) + i;
      large.AddKey(key);
      large_theta.AddKey(key);
    }
    LcsSketch lcs = LcsSketch::FromKmv(large);
    std::vector<ThetaSketch> small_thetas;
    small_thetas.reserve(small_sets);
    for (size_t s = 0; s < small_sets; ++s) {
      KmvSketch small(k, 1.0, salt);
      ThetaSketch small_theta(k, salt);
      for (uint64_t i = 0; i < small_n; ++i) {
        const uint64_t key = (static_cast<uint64_t>(s) << 20) + i;
        small.AddKey(key);
        small_theta.AddKey(key);
      }
      lcs.Merge(LcsSketch::FromKmv(small));
      small_thetas.push_back(std::move(small_theta));
    }
    std::vector<const ThetaSketch*> inputs = {&large_theta};
    for (const auto& s : small_thetas) inputs.push_back(&s);
    const double truth = double(large_n + small_sets * small_n);
    lcs_err.Add((lcs.Estimate() - truth) / truth);
    theta_err.Add((ThetaSketch::Union(inputs).Estimate() - truth) / truth);
  }
  EXPECT_LT(lcs_err.StdDev(), theta_err.StdDev());
}

}  // namespace
}  // namespace ats
