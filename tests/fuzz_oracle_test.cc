// Randomized oracle tests: long random operation sequences checked
// against brute-force reference implementations and structural
// invariants. These sweep parts of the state space the targeted unit
// tests do not reach (interleaved merges, saturation boundaries,
// adversarial weight sequences, hostile wire bytes against randomized
// sampler states across every frame family).
#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "ats/baselines/varopt.h"
#include "ats/cluster/envelope.h"
#include "ats/cluster/node.h"
#include "ats/core/bottom_k.h"
#include "ats/core/simd/simd_dispatch.h"
#include "ats/persist/checkpoint.h"
#include "ats/samplers/budget_sampler.h"
#include "ats/samplers/multi_objective.h"
#include "ats/samplers/multi_stratified.h"
#include "ats/samplers/sliding_window.h"
#include "ats/samplers/time_decay.h"
#include "ats/samplers/variance_sized.h"
#include "ats/sketch/kmv.h"
#include "ats/sketch/lcs_merge.h"
#include "ats/util/stats.h"

namespace ats {
namespace {

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, BottomKMatchesBruteForceUnderRandomMerges) {
  Xoshiro256 rng(GetParam());
  const size_t k = 1 + rng.NextBelow(12);
  // Random number of shards, random offers, then a random merge order.
  const size_t shards = 2 + rng.NextBelow(4);
  std::vector<BottomK<uint64_t>> sketches(shards, BottomK<uint64_t>(k));
  std::vector<double> all;
  uint64_t id = 0;
  for (int op = 0; op < 600; ++op) {
    const double p = rng.NextDoubleOpenZero();
    all.push_back(p);
    sketches[rng.NextBelow(shards)].Offer(p, id++);
  }
  // Merge in random order.
  while (sketches.size() > 1) {
    const size_t a = rng.NextBelow(sketches.size());
    size_t b = rng.NextBelow(sketches.size());
    while (b == a) b = rng.NextBelow(sketches.size());
    sketches[std::min(a, b)].Merge(sketches[std::max(a, b)]);
    sketches.erase(sketches.begin() +
                   static_cast<std::ptrdiff_t>(std::max(a, b)));
  }
  std::sort(all.begin(), all.end());
  const auto& merged = sketches[0];
  ASSERT_EQ(merged.size(), std::min(k, all.size()));
  const auto entries = merged.SortedEntries();
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(entries[i].priority, all[i]);
  }
  if (all.size() > k) {
    EXPECT_DOUBLE_EQ(merged.Threshold(), all[k]);
  }
}

TEST_P(FuzzSweep, KmvMatchesExactDistinctOracle) {
  Xoshiro256 rng(GetParam() * 31 + 5);
  const size_t k = 8 + rng.NextBelow(64);
  KmvSketch sketch(k, 1.0, GetParam());
  std::set<uint64_t> oracle;
  // Duplicates, bursts, and re-visits.
  for (int op = 0; op < 3000; ++op) {
    const uint64_t key = rng.NextBelow(700);
    sketch.AddKey(key);
    oracle.insert(key);
    // Invariants at every step:
    ASSERT_LE(sketch.size(), k);
    ASSERT_LE(sketch.size(), oracle.size());
  }
  // Unsaturated => exact; saturated => within 6 standard errors.
  if (!sketch.saturated()) {
    EXPECT_DOUBLE_EQ(sketch.Estimate(), double(oracle.size()));
  } else {
    const double n = double(oracle.size());
    EXPECT_NEAR(sketch.Estimate(), n, 6.0 * n / std::sqrt(double(k)));
  }
}

TEST_P(FuzzSweep, LcsMergeOrderInvariance) {
  // LCS merges must commute and associate: any merge order over the same
  // sketches yields the same estimate.
  const uint64_t salt = GetParam() + 1;
  Xoshiro256 rng(GetParam() * 17 + 3);
  std::vector<LcsSketch> parts;
  for (int s = 0; s < 5; ++s) {
    KmvSketch sketch(16 + rng.NextBelow(32), 1.0, salt);
    const int n = 100 + static_cast<int>(rng.NextBelow(2000));
    for (int i = 0; i < n; ++i) {
      sketch.AddKey(rng.NextBelow(5000));
    }
    parts.push_back(LcsSketch::FromKmv(sketch));
  }
  LcsSketch forward;
  for (const auto& p : parts) forward.Merge(p);
  LcsSketch backward;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    backward.Merge(*it);
  }
  // Pairwise tree order.
  LcsSketch left = parts[0], right = parts[3];
  left.Merge(parts[1]);
  left.Merge(parts[2]);
  right.Merge(parts[4]);
  left.Merge(right);
  EXPECT_DOUBLE_EQ(forward.Estimate(), backward.Estimate());
  EXPECT_DOUBLE_EQ(forward.Estimate(), left.Estimate());
  EXPECT_EQ(forward.size(), backward.size());
}

TEST_P(FuzzSweep, VarOptInvariantsUnderAdversarialWeights) {
  Xoshiro256 rng(GetParam() * 101 + 7);
  const size_t k = 5 + rng.NextBelow(20);
  VarOptSampler sampler(k, GetParam() + 9);
  double total = 0.0;
  double prev_tau = 0.0;
  for (int op = 0; op < 1500; ++op) {
    // Adversarial mix: occasional huge weights, runs of tiny ones.
    double w;
    const uint64_t kind = rng.NextBelow(10);
    if (kind == 0) {
      w = 1e6 * rng.NextDoubleOpenZero();
    } else if (kind < 4) {
      w = 1e-6 * rng.NextDoubleOpenZero();
    } else {
      w = rng.NextDoubleOpenZero();
    }
    total += w;
    sampler.Add(static_cast<uint64_t>(op), w);
    ASSERT_LE(sampler.size(), k);
    ASSERT_GE(sampler.Tau(), prev_tau - 1e-12);  // tau monotone
    prev_tau = sampler.Tau();
    ASSERT_NEAR(sampler.EstimateTotal(), total, 1e-6 * total);
  }
}

TEST_P(FuzzSweep, MultiStratifiedInvariantsUnderRandomStreams) {
  Xoshiro256 rng(GetParam() * 13 + 1);
  const size_t dims = 1 + rng.NextBelow(3);
  const size_t k = 2 + rng.NextBelow(6);
  MultiStratifiedSampler sampler(dims, k, GetParam() + 2);
  for (uint64_t i = 0; i < 2000; ++i) {
    MultiStratifiedSampler::StrataKeys strata(dims);
    for (auto& s : strata) s = rng.NextBelow(6);
    sampler.Add(i, strata, 1.0);
    if (i % 97 == 96) sampler.ShrinkToBudget(3 * k);
  }
  // Invariants: every sampled entry has priority below its composite
  // threshold and positive inclusion probability.
  for (const auto& e : sampler.Sample()) {
    ASSERT_LT(e.priority, e.threshold);
    ASSERT_GT(e.InclusionProbability(), 0.0);
  }
}

// --- Hostile-input parity, table-driven over every frame kind ---------
//
// The hostility contract -- every strict prefix and every single-bit
// corruption of a valid frame must fail cleanly through BOTH parse
// paths (eager Deserialize and zero-copy DeserializeView), and an
// invalid frame inside a MergeManyFrames fan-in must leave the target
// byte-identical -- is enforced over RANDOMIZED sampler states for
// every registered frame kind. Adding a wire format means adding ONE
// registry row; the sweep then covers it at every seed automatically.
// (tools/check_wire_docs.py separately fails CI if a registered magic
// has no WIRE_FORMAT.md section.)

SlidingWindowSampler RandomWindowSampler(uint64_t seed) {
  Xoshiro256 rng(seed);
  SlidingWindowSampler sampler(/*k=*/8, /*window=*/1.0, seed + 99);
  const int arrivals = 30 + static_cast<int>(rng.NextBelow(120));
  double time = 0.0;
  for (int i = 0; i < arrivals; ++i) {
    time += 0.02 * rng.NextDoubleOpenZero();
    sampler.Arrive(time, seed * 100000 + static_cast<uint64_t>(i));
  }
  return sampler;
}

TimeDecaySampler RandomDecaySampler(uint64_t seed) {
  Xoshiro256 rng(seed);
  TimeDecaySampler sampler(/*k=*/8, seed + 7);
  const int items = 30 + static_cast<int>(rng.NextBelow(120));
  double time = 0.0;
  for (int i = 0; i < items; ++i) {
    time += 0.05 * rng.NextDoubleOpenZero();
    sampler.Add(seed * 100000 + static_cast<uint64_t>(i),
                std::exp(0.5 * rng.NextGaussian()), 1.0, time);
  }
  return sampler;
}

BottomK<uint64_t> RandomBottomK(uint64_t seed) {
  Xoshiro256 rng(seed);
  BottomK<uint64_t> sketch(8);
  const int offers = 30 + static_cast<int>(rng.NextBelow(120));
  for (int i = 0; i < offers; ++i) {
    sketch.Offer(rng.NextDoubleOpenZero(),
                 seed * 100000 + static_cast<uint64_t>(i));
  }
  return sketch;
}

PrioritySampler RandomPrioritySampler(uint64_t seed) {
  Xoshiro256 rng(seed);
  PrioritySampler sampler(/*k=*/8, seed + 3,
                          /*coordinated=*/seed % 2 == 0);
  const int items = 30 + static_cast<int>(rng.NextBelow(120));
  for (int i = 0; i < items; ++i) {
    sampler.Add(seed * 100000 + static_cast<uint64_t>(i),
                std::exp(0.5 * rng.NextGaussian()));
  }
  return sampler;
}

KmvSketch RandomKmvSketch(uint64_t seed) {
  Xoshiro256 rng(seed);
  KmvSketch sketch(8, 1.0, /*hash_salt=*/0x5eed);
  const int keys = 30 + static_cast<int>(rng.NextBelow(120));
  for (int i = 0; i < keys; ++i) sketch.AddKey(rng.Next());
  return sketch;
}

MultiStratifiedSampler RandomStratifiedSampler(uint64_t seed) {
  Xoshiro256 rng(seed);
  MultiStratifiedSampler sampler(/*num_dimensions=*/2, /*k=*/4, seed + 5);
  const int items = 30 + static_cast<int>(rng.NextBelow(80));
  for (int i = 0; i < items; ++i) {
    const uint64_t key = seed * 100000 + static_cast<uint64_t>(i);
    sampler.Add(key, {key % 3, key % 5}, 1.0 + rng.NextDouble());
  }
  return sampler;
}

VarianceSizedSampler RandomVarianceSampler(uint64_t seed) {
  Xoshiro256 rng(seed);
  VarianceSizedSampler sampler(/*delta_squared=*/0.5, seed + 11);
  const int items = 30 + static_cast<int>(rng.NextBelow(80));
  for (int i = 0; i < items; ++i) {
    const double weight = std::exp(0.5 * rng.NextGaussian());
    sampler.Add(seed * 100000 + static_cast<uint64_t>(i), weight, weight);
  }
  return sampler;
}

MultiObjectiveSampler RandomObjectiveSampler(uint64_t seed) {
  Xoshiro256 rng(seed);
  MultiObjectiveSampler sampler(/*num_objectives=*/2, /*k=*/6, seed + 13);
  const int items = 30 + static_cast<int>(rng.NextBelow(80));
  for (int i = 0; i < items; ++i) {
    sampler.Add(seed * 100000 + static_cast<uint64_t>(i),
                {std::exp(0.4 * rng.NextGaussian()),
                 std::exp(0.4 * rng.NextGaussian())},
                1.0 + rng.NextDouble());
  }
  return sampler;
}

BudgetSampler RandomBudgetSampler(uint64_t seed) {
  Xoshiro256 rng(seed);
  BudgetSampler sampler(/*budget=*/12.0, seed + 17);
  const int items = 30 + static_cast<int>(rng.NextBelow(80));
  for (int i = 0; i < items; ++i) {
    sampler.Add(seed * 100000 + static_cast<uint64_t>(i),
                /*size=*/0.5 + rng.NextDoubleOpenZero(),
                /*value=*/rng.NextDouble(),
                /*weight=*/std::exp(0.5 * rng.NextGaussian()));
  }
  return sampler;
}

// One registered frame kind: how to build a randomized valid frame and
// how to run each parse path. `check_merge_fail_closed` feeds a good
// and a corrupted frame through MergeManyFrames and asserts the target
// stays byte-identical (all-or-nothing).
struct FrameKindEntry {
  const char* name;
  std::function<std::string(uint64_t)> make_frame;
  std::function<bool(std::string_view)> parse_eager;
  std::function<bool(std::string_view)> parse_view;
  std::function<void(uint64_t, const std::string&)> check_merge_fail_closed;
};

template <typename Sketch, typename MakeSampler>
FrameKindEntry RegisterFrameKind(const char* name, MakeSampler make) {
  FrameKindEntry entry;
  entry.name = name;
  entry.make_frame = [make](uint64_t seed) {
    return make(seed).SerializeToString();
  };
  entry.parse_eager = [](std::string_view bytes) {
    return Sketch::Deserialize(bytes).has_value();
  };
  entry.parse_view = [](std::string_view bytes) {
    return Sketch::DeserializeView(bytes).has_value();
  };
  entry.check_merge_fail_closed = [make](uint64_t seed,
                                         const std::string& good) {
    Sketch target = make(seed);
    const std::string before = target.SerializeToString();
    std::string corrupt = good;
    corrupt[corrupt.size() / 2] =
        static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x10);
    const std::vector<std::string_view> frames{good, corrupt};
    EXPECT_FALSE(target.MergeManyFrames(frames));
    EXPECT_EQ(target.SerializeToString(), before);
  };
  return entry;
}

// The registry: one row per versioned frame kind. Shape parameters are
// FIXED per row (only contents are randomized) so the frames in a
// MergeManyFrames fan-in are always merge-compatible.
std::vector<FrameKindEntry> FrameKindRegistry() {
  return {
      RegisterFrameKind<KmvSketch>("KMV2", RandomKmvSketch),
      RegisterFrameKind<BottomK<uint64_t>>("BTK2", RandomBottomK),
      RegisterFrameKind<PrioritySampler>("PSM2", RandomPrioritySampler),
      RegisterFrameKind<SlidingWindowSampler>("SWN1", RandomWindowSampler),
      RegisterFrameKind<TimeDecaySampler>("TDK1", RandomDecaySampler),
      RegisterFrameKind<MultiStratifiedSampler>("MSS1",
                                                RandomStratifiedSampler),
      RegisterFrameKind<VarianceSizedSampler>("VSZ1",
                                              RandomVarianceSampler),
      RegisterFrameKind<MultiObjectiveSampler>("MOB1",
                                               RandomObjectiveSampler),
      RegisterFrameKind<BudgetSampler>("BGT1", RandomBudgetSampler),
  };
}

// Every strict prefix and every single-bit flip of `frame` must be
// rejected by both `parse_eager` and `parse_view` (the FNV-1a frame
// checksum chain is bijective per byte, so ANY one-byte change alters
// it); the intact frame must parse through both.
template <typename ParseEager, typename ParseView>
void ExpectHostileBytesFailCleanly(const std::string& frame,
                                   ParseEager&& parse_eager,
                                   ParseView&& parse_view) {
  for (size_t len = 0; len < frame.size(); ++len) {
    const std::string_view prefix(frame.data(), len);
    EXPECT_FALSE(parse_eager(prefix)) << "prefix length " << len;
    EXPECT_FALSE(parse_view(prefix)) << "prefix length " << len;
  }
  for (size_t pos = 0; pos < frame.size(); ++pos) {
    std::string bad = frame;
    bad[pos] = static_cast<char>(bad[pos] ^ (1 << (pos % 8)));
    EXPECT_FALSE(parse_eager(bad)) << "flipped bit in byte " << pos;
    EXPECT_FALSE(parse_view(bad)) << "flipped bit in byte " << pos;
  }
  EXPECT_TRUE(parse_eager(frame));
  EXPECT_TRUE(parse_view(frame));
}

TEST_P(FuzzSweep, RegisteredFrameKindsHostileBytesFailCleanly) {
  for (const FrameKindEntry& entry : FrameKindRegistry()) {
    SCOPED_TRACE(entry.name);
    const std::string frame = entry.make_frame(GetParam() * 37 + 11);
    ExpectHostileBytesFailCleanly(frame, entry.parse_eager,
                                  entry.parse_view);
    entry.check_merge_fail_closed(GetParam() * 41 + 3, frame);
  }
}

TEST_P(FuzzSweep, RegisteredFrameKindsRejectTruncatedMergeTails) {
  // A truncated (not bit-flipped) frame in the fan-in: the same
  // all-or-nothing contract, hitting the length-validation paths
  // rather than the checksum.
  for (const FrameKindEntry& entry : FrameKindRegistry()) {
    SCOPED_TRACE(entry.name);
    const std::string frame = entry.make_frame(GetParam() * 53 + 29);
    std::string corrupt = frame;
    corrupt.resize(corrupt.size() - 1 - GetParam() % 8);
    EXPECT_FALSE(entry.parse_eager(corrupt));
    EXPECT_FALSE(entry.parse_view(corrupt));
  }
}

TEST_P(FuzzSweep, VectorizedIngestMatchesScalarDispatchAtEverySeed) {
  // The randomized KMV + decay workloads, replayed through every SIMD
  // dispatch level the host supports: the resulting sampler state must
  // be byte-identical to the forced-scalar run (the kernels are pinned
  // bit-exact in simd_kernels_test.cc; this sweeps them through the full
  // randomized ingest paths -- batched hashing, block pre-filter,
  // log-key columns -- under hostile sizes and duplicate patterns).
  std::vector<simd::SimdLevel> levels = {simd::SimdLevel::kScalar};
  if (simd::DetectedSimdLevel() >= simd::SimdLevel::kSse2)
    levels.push_back(simd::SimdLevel::kSse2);
  if (simd::DetectedSimdLevel() >= simd::SimdLevel::kAvx2)
    levels.push_back(simd::SimdLevel::kAvx2);

  std::string kmv_ref, decay_ref;
  for (simd::SimdLevel level : levels) {
    simd::ScopedSimdLevel scoped(level);

    Xoshiro256 rng(GetParam() * 71 + 13);
    const size_t k = 8 + rng.NextBelow(64);
    KmvSketch sketch(k, 1.0, GetParam());
    std::vector<uint64_t> keys(500 + rng.NextBelow(600));
    for (auto& key : keys) key = rng.NextBelow(900);
    // Uneven batch splits exercise every block-tail length.
    size_t i = 0;
    while (i < keys.size()) {
      const size_t len =
          std::min(keys.size() - i, 1 + rng.NextBelow(150));
      sketch.AddKeys(std::span(keys.data() + i, len));
      i += len;
    }

    TimeDecaySampler decay(1 + rng.NextBelow(40), GetParam() * 7 + 1);
    std::vector<TimeDecaySampler::TimedItem> items(
        300 + rng.NextBelow(400));
    double t = 0.0;
    for (size_t j = 0; j < items.size(); ++j) {
      t += rng.NextDouble();
      items[j] = {j, 0.0625 + rng.NextDouble() * 16.0, 1.0, t};
    }
    decay.AddBatch(items);

    const std::string kmv_state = sketch.SerializeToString();
    const std::string decay_state = decay.SerializeToString();
    if (level == simd::SimdLevel::kScalar) {
      kmv_ref = kmv_state;
      decay_ref = decay_state;
    } else {
      EXPECT_EQ(kmv_state, kmv_ref)
          << "level=" << simd::SimdLevelName(level);
      EXPECT_EQ(decay_state, decay_ref)
          << "level=" << simd::SimdLevelName(level);
    }
  }
}

TEST_P(FuzzSweep, EnvelopeHostileBytesFailClosedWithTypedReasons) {
  // The cluster envelope (ENV1) under the same hostility contract as
  // the sketch frames, strengthened: every strict prefix and every
  // single-bit flip must not merely FAIL but fail with the RIGHT typed
  // reason for the byte region it damages, and an aggregator fed every
  // hostile mutation must keep its merged state byte-identical.
  Xoshiro256 rng(GetParam() * 101 + 13);
  KmvSketch payload_sketch(4 + rng.NextBelow(12), 1.0, /*salt=*/21);
  const int keys = 30 + static_cast<int>(rng.NextBelow(200));
  for (int i = 0; i < keys; ++i) payload_sketch.AddKey(rng.Next());
  const std::string payload = payload_sketch.SerializeToString();
  const std::string frame = cluster::EncodeEnvelope(
      cluster::EnvelopeKind::kData, /*sender=*/5, /*incarnation=*/0,
      /*seq=*/rng.NextBelow(100), /*epoch=*/keys, payload);

  // An aggregator with applied state: the victim for the sweep. Seed it
  // with a DIFFERENT sender so the hostile frames target fresh state.
  cluster::AggregatorNode victim(/*id=*/900, payload_sketch.k(),
                                 /*salt=*/21, cluster::RetryPolicy{});
  ASSERT_EQ(victim
                .Receive(cluster::EncodeEnvelope(
                    cluster::EnvelopeKind::kData, /*sender=*/1, 0, 0,
                    /*epoch=*/keys, payload))
                .kind,
            cluster::ReceiveOutcome::Kind::kApplied);
  const std::string before = victim.SnapshotFrame();
  uint64_t hostile_inputs = 0;

  const auto expect_fault = [&](std::string_view bytes, FrameFault want,
                                const char* what, size_t pos) {
    cluster::EnvelopeView view;
    EXPECT_EQ(cluster::DecodeEnvelope(bytes, &view), want)
        << what << " at byte " << pos;
    const auto outcome = victim.Receive(bytes);
    EXPECT_EQ(outcome.kind,
              cluster::ReceiveOutcome::Kind::kEnvelopeRejected)
        << what << " at byte " << pos;
    EXPECT_EQ(outcome.fault, want) << what << " at byte " << pos;
    EXPECT_FALSE(outcome.send_ack);
    ++hostile_inputs;
  };

  // Every strict prefix is a short read.
  for (size_t len = 0; len < frame.size(); ++len) {
    expect_fault(std::string_view(frame.data(), len),
                 FrameFault::kTruncated, "prefix", len);
  }

  // Every single-bit flip classifies by the byte region it lands in.
  constexpr size_t kLenOffset = 44;  // payload_len field, per the spec
  const size_t checksum_pos = cluster::kEnvelopeHeaderSize + payload.size();
  ByteReader len_reader(
      std::string_view(frame).substr(kLenOffset, sizeof(uint64_t)));
  const uint64_t declared_len = *len_reader.ReadU64();
  for (size_t pos = 0; pos < frame.size(); ++pos) {
    const int bit = static_cast<int>(pos % 8);
    std::string bad = frame;
    bad[pos] = static_cast<char>(bad[pos] ^ (1 << bit));
    FrameFault want;
    if (pos < 4) {
      want = FrameFault::kBadMagic;
    } else if (pos < 8) {
      want = FrameFault::kBadVersion;
    } else if (pos < kLenOffset) {
      // kind / sender / incarnation / seq / epoch: caught by the kind
      // range check or the whole-envelope checksum.
      want = FrameFault::kCorruptBody;
    } else if (pos < cluster::kEnvelopeHeaderSize) {
      // payload_len: growing the declared length claims bytes that
      // never arrived (a short read); shrinking it leaves trailing
      // junk past the checksum (framing corruption).
      const uint64_t shift = 8 * (pos - kLenOffset) + bit;
      const bool grew = shift < 64 && !((declared_len >> shift) & 1);
      want = grew ? FrameFault::kTruncated : FrameFault::kCorruptBody;
    } else {
      // Payload or trailing checksum: checksum mismatch.
      want = FrameFault::kCorruptBody;
      static_cast<void>(checksum_pos);
    }
    expect_fault(bad, want, "bit flip", pos);
  }

  // Fail CLOSED: after the whole sweep the aggregator's merged state is
  // byte-identical and every hostile input was counted, per cause.
  EXPECT_EQ(victim.SnapshotFrame(), before);
  EXPECT_EQ(victim.rejects().envelope_rejected(), hostile_inputs);
  EXPECT_EQ(victim.rejects().payload_rejected, 0u);

  // The intact frame still decodes and applies.
  cluster::EnvelopeView view;
  ASSERT_EQ(cluster::DecodeEnvelope(frame, &view), FrameFault::kNone);
  EXPECT_EQ(view.payload, payload);
  EXPECT_EQ(victim.Receive(frame).kind,
            cluster::ReceiveOutcome::Kind::kApplied);
}

TEST_P(FuzzSweep, CheckpointHostileFilesFailClosedWithTypedReasons) {
  // The crash-recovery tier under the same hostility contract as the
  // wire frames, applied to WRITTEN FILES: every prefix truncation and
  // every single-bit flip of a valid CKP1 checkpoint must be rejected
  // through BOTH open paths (the mmap view and the buffered read) with
  // the typed reason the damaged byte region mandates -- and a failed
  // RestoreFromCheckpoint must leave the in-memory target sketch
  // byte-identical.
  namespace persist = ats::persist;
  using persist::CheckpointFault;

  Xoshiro256 rng(GetParam() * 131 + 7);
  KmvSketch sketch(4 + rng.NextBelow(8), 1.0, /*salt=*/33);
  const int keys = 30 + static_cast<int>(rng.NextBelow(170));
  for (int i = 0; i < keys; ++i) sketch.AddKey(rng.Next());
  const std::string image = persist::EncodeCheckpoint(
      persist::SchemeKind::kKmv, static_cast<uint64_t>(keys),
      sketch.SerializeToString());

  const std::string path = ::testing::TempDir() + "ats_fuzz_ckp_" +
                           std::to_string(GetParam()) + ".ckp";
  // The victim for the fail-closed checks: distinct state from the
  // checkpointed sketch, so any partial restore would be visible.
  KmvSketch pristine(6, 1.0, /*salt=*/33);
  for (int i = 0; i < 64; ++i) pristine.AddKey(rng.Next());
  const std::string before = pristine.SerializeToString();

  const auto expect_fault = [&](std::string_view bytes, CheckpointFault want,
                                const char* what, size_t pos) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.write(bytes.data(),
                            static_cast<std::streamsize>(bytes.size())));
    }
    persist::CheckpointReader reader;
    EXPECT_EQ(persist::CheckpointReader::OpenView(path, &reader), want)
        << what << " at byte " << pos;
    EXPECT_EQ(persist::CheckpointReader::OpenBuffered(path, &reader), want)
        << what << " at byte " << pos;
    KmvSketch victim = pristine;
    EXPECT_EQ(persist::RestoreFromCheckpoint(
                  path, persist::SchemeKind::kKmv, &victim),
              want)
        << what << " at byte " << pos;
    EXPECT_EQ(victim.SerializeToString(), before)
        << what << " at byte " << pos;
  };

  // Every strict prefix is a torn or short file.
  for (size_t len = 0; len < image.size(); ++len) {
    expect_fault(std::string_view(image.data(), len),
                 CheckpointFault::kTruncated, "prefix", len);
  }

  // Every single-bit flip classifies by the header field (or body) the
  // byte belongs to -- the order documented at DecodeCheckpoint.
  ByteReader len_reader(
      std::string_view(image).substr(20, sizeof(uint64_t)));
  const uint64_t declared_len = *len_reader.ReadU64();
  for (size_t pos = 0; pos < image.size(); ++pos) {
    const int bit = static_cast<int>(pos % 8);
    std::string bad = image;
    bad[pos] = static_cast<char>(bad[pos] ^ (1 << bit));
    CheckpointFault want;
    if (pos < 4) {
      want = CheckpointFault::kBadMagic;
    } else if (pos < 8) {
      want = CheckpointFault::kBadVersion;
    } else if (pos < 12) {
      // scheme_kind: out of [kMinSchemeKind, kMaxSchemeKind] is
      // kBadKind; a flip that lands on
      // another valid kind falls through to the checksum.
      const uint32_t flipped =
          static_cast<uint32_t>(persist::SchemeKind::kKmv) ^
          (1u << (8 * (pos - 8) + bit));
      want = (flipped >= persist::kMinSchemeKind &&
              flipped <= persist::kMaxSchemeKind)
                 ? CheckpointFault::kCorruptBody
                 : CheckpointFault::kBadKind;
    } else if (pos < 20) {
      want = CheckpointFault::kCorruptBody;  // epoch: checksum mismatch
    } else if (pos < persist::kCheckpointHeaderSize) {
      // payload_len: growing the declared length claims bytes the file
      // does not hold (a torn tail); shrinking leaves trailing junk.
      const uint64_t shift = 8 * (pos - 20) + static_cast<uint64_t>(bit);
      const bool grew = shift < 64 && !((declared_len >> shift) & 1);
      want = grew ? CheckpointFault::kTruncated
                  : CheckpointFault::kCorruptBody;
    } else {
      want = CheckpointFault::kCorruptBody;  // payload or checksum
    }
    expect_fault(bad, want, "bit flip", pos);
  }

  // The intact image still opens through both paths and restores the
  // exact sketch.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.write(image.data(),
                          static_cast<std::streamsize>(image.size())));
  }
  for (const auto mode :
       {persist::OpenMode::kPreferMmap, persist::OpenMode::kBuffered}) {
    KmvSketch restored(1, 1.0, 0);
    uint64_t epoch = 0;
    ASSERT_EQ(persist::RestoreFromCheckpoint(
                  path, persist::SchemeKind::kKmv, &restored, &epoch, mode),
              CheckpointFault::kNone);
    EXPECT_EQ(epoch, static_cast<uint64_t>(keys));
    EXPECT_EQ(restored.SerializeToString(), sketch.SerializeToString());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ats
