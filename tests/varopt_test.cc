// Tests for ats/baselines/varopt.h (variance-optimal sampling [7]).
#include "ats/baselines/varopt.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "ats/core/bottom_k.h"
#include "ats/core/ht_estimator.h"
#include "ats/util/stats.h"
#include "ats/workload/synthetic.h"

namespace ats {
namespace {

TEST(VarOpt, SizeIsExactlyK) {
  VarOptSampler sampler(10, 1);
  Xoshiro256 rng(2);
  for (uint64_t i = 0; i < 500; ++i) {
    sampler.Add(i, std::exp(rng.NextGaussian()));
    ASSERT_LE(sampler.size(), 10u);
  }
  EXPECT_EQ(sampler.size(), 10u);
}

TEST(VarOpt, UnderfullIsExact) {
  VarOptSampler sampler(20, 1);
  double truth = 0.0;
  for (uint64_t i = 0; i < 10; ++i) {
    sampler.Add(i, 1.0 + double(i));
    truth += 1.0 + double(i);
  }
  EXPECT_DOUBLE_EQ(sampler.EstimateTotal(), truth);
  EXPECT_EQ(sampler.Tau(), 0.0);
}

TEST(VarOpt, TotalEstimatePreservedExactly) {
  // VarOpt's signature invariant: the total-weight estimate equals the
  // exact running total after every update.
  VarOptSampler sampler(25, 3);
  Xoshiro256 rng(4);
  double truth = 0.0;
  for (uint64_t i = 0; i < 2000; ++i) {
    const double w = std::exp(rng.NextGaussian());
    truth += w;
    sampler.Add(i, w);
    ASSERT_NEAR(sampler.EstimateTotal(), truth, 1e-6 * truth);
  }
}

TEST(VarOpt, DuplicateKeysNeverRetainedTwice) {
  VarOptSampler sampler(15, 5);
  Xoshiro256 rng(6);
  for (uint64_t i = 0; i < 1000; ++i) {
    sampler.Add(i, std::exp(rng.NextGaussian()));
  }
  std::set<uint64_t> keys;
  for (const auto& e : sampler.Sample()) {
    EXPECT_TRUE(keys.insert(e.key).second);
    EXPECT_GE(e.adjusted_weight, sampler.Tau() - 1e-12);
  }
}

struct VoParam {
  size_t k;
  uint64_t seed;
};

class VarOptSubsetTest : public ::testing::TestWithParam<VoParam> {};

TEST_P(VarOptSubsetTest, SubsetSumsAreUnbiased) {
  const auto [k, seed] = GetParam();
  const auto population = MakeWeightedPopulation(500, 77, true);
  double subset_truth = 0.0;
  for (const auto& it : population) {
    if (it.key % 3 == 0) subset_truth += it.weight;
  }
  RunningStat est;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    VarOptSampler sampler(k, seed + static_cast<uint64_t>(t) * 13);
    for (const auto& it : population) sampler.Add(it.key, it.weight);
    double e = 0.0;
    for (const auto& entry : sampler.Sample()) {
      if (entry.key % 3 == 0) e += entry.adjusted_weight;
    }
    est.Add(e);
  }
  const double se = est.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(est.mean(), subset_truth, 4.0 * se) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sweep, VarOptSubsetTest,
                         ::testing::Values(VoParam{10, 1}, VoParam{30, 2},
                                           VoParam{80, 3}));

TEST(VarOpt, BeatsPrioritySamplingVariance) {
  // VarOpt is variance-optimal for subset sums at fixed k; priority
  // sampling pays a small premium (~ one extra "effective" sample).
  const auto population = MakeWeightedPopulation(800, 9, true);
  RunningStat varopt_est, priority_est;
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    const uint64_t seed = 5000 + static_cast<uint64_t>(t) * 7;
    VarOptSampler vo(30, seed);
    PrioritySampler ps(30, seed + 1);
    for (const auto& it : population) {
      vo.Add(it.key, it.weight);
      ps.Add(it.key, it.weight);
    }
    double sub = 0.0;
    for (const auto& e : vo.Sample()) {
      if (e.key % 2 == 0) sub += e.adjusted_weight;
    }
    varopt_est.Add(sub);
    priority_est.Add(HtSubsetSum(ps.Sample(),
                                 [](uint64_t k) { return k % 2 == 0; }));
  }
  EXPECT_LT(varopt_est.SampleVariance(),
            1.15 * priority_est.SampleVariance());
}

TEST(VarOpt, HugeItemIsAlwaysRetainedExactly) {
  VarOptSampler sampler(5, 11);
  Xoshiro256 rng(12);
  for (uint64_t i = 0; i < 200; ++i) sampler.Add(i, 1.0);
  sampler.Add(999, 1000.0);
  for (uint64_t i = 200; i < 400; ++i) sampler.Add(i, 1.0);
  bool found = false;
  for (const auto& e : sampler.Sample()) {
    if (e.key == 999) {
      found = true;
      EXPECT_DOUBLE_EQ(e.weight, 1000.0);
      EXPECT_DOUBLE_EQ(e.adjusted_weight, 1000.0);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ats
