// Statistical acceptance tests: the distributional claims behind the
// samplers, checked over thousands of seeded replicates.
//
// The differential oracles elsewhere prove bit-exact equivalences; the
// tests here prove the REFERENCE itself samples correctly -- per-item
// inclusion frequencies follow the theoretical k/n design (chi-square,
// extending the chi2 machinery of tests/stats_test.cc), and HT
// subset-sum estimates are unbiased within analytic confidence bounds.
//
// Determinism policy: every replicate uses a FIXED seed (seeds
// kSeedBase + t), so each statistic below is one deterministic number;
// the acceptance thresholds are chi-square / normal critical values at
// the ~99.9% level, Bonferroni-headroomed (the per-test alpha is far
// below 0.05 / #tests), so a re-roll of the seed base would still pass
// with overwhelming probability -- but CI never re-rolls, so these
// tests cannot flake.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "ats/core/bottom_k.h"
#include "ats/core/concurrent_sampler.h"
#include "ats/core/ht_estimator.h"
#include "ats/core/random.h"
#include "ats/samplers/multi_stratified.h"
#include "ats/samplers/variance_sized.h"
#include "ats/util/stats.h"

namespace ats {
namespace {

constexpr uint64_t kSeedBase = 1000;

// --- Inclusion-frequency chi-square tests ------------------------------
//
// With equal weights, a bottom-k sample over iid Uniform priorities is a
// simple random k-subset, so every item's inclusion probability is
// exactly k/n. Counting inclusions over R replicates and chi-squaring
// the per-item counts against the uniform expectation R*k/n detects any
// bias in priority generation, retention, or the compaction pipeline.
// (Within one replicate inclusions are negatively correlated -- the
// sample size is fixed at k -- which only shrinks the statistic's
// variance below the chi-square reference, making the test
// conservative: it can miss tiny biases, never false-alarm.)

TEST(StatisticalInclusion, PrioritySamplerFrequenciesAreUniform) {
  const size_t n = 32;
  const size_t k = 8;
  const int replicates = 2500;
  std::vector<int64_t> counts(n, 0);
  for (int t = 0; t < replicates; ++t) {
    PrioritySampler sampler(k, kSeedBase + static_cast<uint64_t>(t),
                            /*coordinated=*/false);
    for (uint64_t key = 0; key < n; ++key) sampler.Add(key, 1.0);
    for (const auto& e : sampler.Sample()) {
      counts[static_cast<size_t>(e.key)] += 1;
    }
  }
  // Every replicate retains exactly k of n items.
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  ASSERT_EQ(total, int64_t(replicates) * int64_t(k));
  EXPECT_LT(ChiSquareUniform(counts),
            ChiSquareCritical999(static_cast<int>(n) - 1));
}

TEST(StatisticalInclusion, BottomKFrequenciesAreUniform) {
  const size_t n = 40;
  const size_t k = 10;
  const int replicates = 2000;
  std::vector<int64_t> counts(n, 0);
  for (int t = 0; t < replicates; ++t) {
    Xoshiro256 rng(kSeedBase + 7919 * static_cast<uint64_t>(t));
    BottomK<uint64_t> sketch(k);
    for (uint64_t id = 0; id < n; ++id) {
      sketch.Offer(rng.NextDoubleOpenZero(), id);
    }
    for (const auto& entry : sketch.entries()) {
      counts[static_cast<size_t>(entry.payload)] += 1;
    }
  }
  EXPECT_LT(ChiSquareUniform(counts),
            ChiSquareCritical999(static_cast<int>(n) - 1));
}

TEST(StatisticalInclusion, ConcurrentMergedSampleFrequenciesAreUniform) {
  // The concurrent front-end's merged snapshot must be a bottom-k
  // sample of the whole stream, i.e. with equal weights a uniform
  // k-subset -- per shard AND after the k-way merge re-cap. Independent
  // per-shard priorities, single-threaded replicates: the statistics,
  // not the scheduler, are under test here.
  const size_t n = 32;
  const size_t k = 8;
  const int replicates = 2000;
  std::vector<int64_t> counts(n, 0);
  std::vector<PrioritySampler::Item> stream(n);
  for (uint64_t key = 0; key < n; ++key) stream[key] = {key, 1.0};
  for (int t = 0; t < replicates; ++t) {
    ConcurrentPrioritySampler conc(/*num_shards=*/4, k,
                                   /*coordinated=*/false,
                                   kSeedBase + static_cast<uint64_t>(t));
    conc.AddBatch(stream);
    for (const auto& e : conc.Sample()) {
      counts[static_cast<size_t>(e.key)] += 1;
    }
  }
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  ASSERT_EQ(total, int64_t(replicates) * int64_t(k));
  EXPECT_LT(ChiSquareUniform(counts),
            ChiSquareCritical999(static_cast<int>(n) - 1));
}

TEST(StatisticalInclusion, WriterLocalSampleFrequenciesAreUniform) {
  // The wait-free writer-local path in independent-priority mode: two
  // registered writers ingest through private mini-stores whose RNG
  // streams are salted per (writer, generation), with a mid-stream
  // Drain() forcing a generation reset -- so three distinct salted
  // streams contribute to every replicate. The drained merge must still
  // be a uniform k-subset; a salt collision or a replayed RNG stream
  // would correlate inclusions and blow up the chi-square.
  const size_t n = 32;
  const size_t k = 8;
  const int replicates = 2000;
  std::vector<int64_t> counts(n, 0);
  std::vector<PrioritySampler::Item> stream(n);
  for (uint64_t key = 0; key < n; ++key) stream[key] = {key, 1.0};
  for (int t = 0; t < replicates; ++t) {
    ConcurrentPrioritySampler conc(/*num_shards=*/4, k,
                                   /*coordinated=*/false,
                                   kSeedBase + static_cast<uint64_t>(t));
    auto a = conc.RegisterWriter();
    auto b = conc.RegisterWriter();
    a.AddBatch(std::span<const PrioritySampler::Item>(stream.data(), n / 2));
    conc.Drain();  // writer a's next batch gets a fresh generation salt
    a.AddBatch(std::span<const PrioritySampler::Item>(stream.data() + n / 2,
                                                      n / 4));
    b.AddBatch(std::span<const PrioritySampler::Item>(
        stream.data() + n / 2 + n / 4, n - n / 2 - n / 4));
    for (const auto& e : conc.Sample()) {
      counts[static_cast<size_t>(e.key)] += 1;
    }
  }
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  ASSERT_EQ(total, int64_t(replicates) * int64_t(k));
  EXPECT_LT(ChiSquareUniform(counts),
            ChiSquareCritical999(static_cast<int>(n) - 1));
}

TEST(StatisticalInclusion, MultiStratifiedFrequenciesAreUniform) {
  // 60 keys under two stratification dimensions (key % 3 and key % 4):
  // the shift k -> k+1 (mod 60) permutes the keys transitively while
  // only relabeling strata, and every dimension-0 stratum has 20
  // members, every dimension-1 stratum 15, so by symmetry every key has
  // the SAME inclusion probability (retained while in the bottom-k of
  // at least one of its strata). Chi-squaring the per-key inclusion
  // counts against uniformity therefore tests the whole retention
  // pipeline -- priority generation, per-stratum bottom-k, max-of-
  // thresholds composition -- at once.
  const size_t n = 60;
  const size_t k = 5;
  const int replicates = 1500;
  std::vector<int64_t> counts(n, 0);
  for (int t = 0; t < replicates; ++t) {
    MultiStratifiedSampler sampler(/*num_dimensions=*/2, k,
                                   kSeedBase + static_cast<uint64_t>(t));
    for (uint64_t key = 0; key < n; ++key) {
      sampler.Add(key, {key % 3, key % 4}, 1.0);
    }
    for (const auto& e : sampler.Sample()) {
      counts[static_cast<size_t>(e.key)] += 1;
    }
  }
  EXPECT_LT(ChiSquareUniform(counts),
            ChiSquareCritical999(static_cast<int>(n) - 1));
}

TEST(StatisticalInclusion, VarianceSizedFrequenciesAreUniform) {
  // With equal weights every item's priority is iid Uniform and the
  // stopping threshold treats items exchangeably, so inclusion
  // (priority below the stream's stopping threshold) is equiprobable
  // across items.
  const size_t n = 40;
  const int replicates = 2000;
  std::vector<int64_t> counts(n, 0);
  for (int t = 0; t < replicates; ++t) {
    VarianceSizedSampler sampler(/*delta_squared=*/2.0,
                                 kSeedBase + static_cast<uint64_t>(t));
    for (uint64_t key = 0; key < n; ++key) sampler.Add(key, 1.0, 1.0);
    for (const auto& e : sampler.Sample()) {
      counts[static_cast<size_t>(e.key)] += 1;
    }
  }
  EXPECT_LT(ChiSquareUniform(counts),
            ChiSquareCritical999(static_cast<int>(n) - 1));
}

// --- HT estimator unbiasedness -----------------------------------------

TEST(StatisticalHt, SubsetSumEstimatesAreUnbiasedWithinCi) {
  // Weighted population; the HT subset-sum estimate over R independent
  // replicates must center on the true subset total. Acceptance: the
  // replicate mean lies within z * SE of truth with z = 4.4 (normal
  // two-sided tail ~1e-5, ample Bonferroni headroom for this file), SE
  // from the replicate sample variance. Seeds fixed => deterministic.
  const size_t n = 200;
  const size_t k = 32;
  const int replicates = 1500;

  Xoshiro256 pop_rng(123);
  std::vector<PrioritySampler::Item> population(n);
  double subset_truth = 0.0;
  for (uint64_t key = 0; key < n; ++key) {
    const double weight = std::exp(0.8 * pop_rng.NextGaussian());
    population[key] = {key, weight};
    if (key % 3 == 0) subset_truth += weight;
  }
  const auto in_subset = [](uint64_t key) { return key % 3 == 0; };

  RunningStat estimates;
  RunningStat variance_estimates;
  for (int t = 0; t < replicates; ++t) {
    PrioritySampler sampler(k, kSeedBase + static_cast<uint64_t>(t),
                            /*coordinated=*/false);
    for (const auto& item : population) sampler.Add(item.key, item.weight);
    const auto sample = sampler.Sample();
    estimates.Add(HtSubsetSum(sample, in_subset));
    variance_estimates.Add(HtVarianceEstimate(sample));
  }

  const double se =
      estimates.StdDev() / std::sqrt(static_cast<double>(replicates));
  EXPECT_NEAR(estimates.mean(), subset_truth, 4.4 * se);

  // Sanity on the variance estimator itself: the mean of the per-sample
  // HT variance estimates (which target Var of the FULL total) must be
  // on the scale of the observed full-total variance. Loose band -- this
  // guards against gross mis-scaling, not fine calibration.
  RunningStat totals;
  for (int t = 0; t < replicates; ++t) {
    PrioritySampler sampler(k, kSeedBase + static_cast<uint64_t>(t),
                            /*coordinated=*/false);
    for (const auto& item : population) sampler.Add(item.key, item.weight);
    totals.Add(HtTotal(sampler.Sample()));
  }
  const double observed_var = totals.SampleVariance();
  ASSERT_GT(observed_var, 0.0);
  EXPECT_GT(variance_estimates.mean(), 0.5 * observed_var);
  EXPECT_LT(variance_estimates.mean(), 2.0 * observed_var);
}

TEST(StatisticalHt, ConcurrentSnapshotTotalsAreUnbiasedWithinCi) {
  // Same unbiasedness contract for the concurrent front-end's merged
  // snapshot in independent-priority mode: the HT total over replicates
  // centers on the true population total.
  const size_t n = 150;
  const size_t k = 24;
  const int replicates = 1200;

  Xoshiro256 pop_rng(321);
  std::vector<PrioritySampler::Item> population(n);
  double truth = 0.0;
  for (uint64_t key = 0; key < n; ++key) {
    const double weight = std::exp(0.6 * pop_rng.NextGaussian());
    population[key] = {key, weight};
    truth += weight;
  }

  RunningStat estimates;
  for (int t = 0; t < replicates; ++t) {
    ConcurrentPrioritySampler conc(/*num_shards=*/4, k,
                                   /*coordinated=*/false,
                                   kSeedBase + static_cast<uint64_t>(t));
    conc.AddBatch(population);
    estimates.Add(HtTotal(conc.Sample()));
  }
  const double se =
      estimates.StdDev() / std::sqrt(static_cast<double>(replicates));
  EXPECT_NEAR(estimates.mean(), truth, 4.4 * se);
}

TEST(StatisticalHt, MultiStratifiedTotalsAreUnbiasedWithinCi) {
  // Theorem 6 upgrades the max-of-substitutable-thresholds rule to full
  // substitutability, so the plain HT estimator with
  // pi_i = F(max_s tau_s) applies. Over replicates the HT total of the
  // retained sample must center on the true population total.
  const size_t n = 60;
  const size_t k = 5;
  const int replicates = 1500;

  Xoshiro256 pop_rng(77);
  std::vector<double> values(n);
  double truth = 0.0;
  for (double& v : values) {
    v = std::exp(0.5 * pop_rng.NextGaussian());
    truth += v;
  }

  RunningStat estimates;
  for (int t = 0; t < replicates; ++t) {
    MultiStratifiedSampler sampler(/*num_dimensions=*/2, k,
                                   kSeedBase + static_cast<uint64_t>(t));
    for (uint64_t key = 0; key < n; ++key) {
      sampler.Add(key, {key % 3, key % 4}, values[key]);
    }
    estimates.Add(HtTotal(sampler.Sample()));
  }
  const double se =
      estimates.StdDev() / std::sqrt(static_cast<double>(replicates));
  EXPECT_NEAR(estimates.mean(), truth, 4.4 * se);
}

TEST(StatisticalHt, VarianceSizedTotalsAreUnbiasedAndHitTheTarget) {
  // Section 3.9: the variance-sized stopping threshold is a stopping
  // time in the downward threshold scan, hence substitutable, so the
  // HT total stays unbiased -- and whenever the threshold is finite the
  // HT variance estimate at the stop equals delta^2 exactly (the scan
  // stops at the crossing).
  const size_t n = 150;
  const double delta_squared = 4.0;
  const int replicates = 1500;

  Xoshiro256 pop_rng(99);
  std::vector<double> weights(n);
  double truth = 0.0;
  for (double& w : weights) {
    w = std::exp(0.8 * pop_rng.NextGaussian());
    truth += w;  // PPS case: value == weight
  }

  RunningStat estimates;
  int finite_thresholds = 0;
  for (int t = 0; t < replicates; ++t) {
    VarianceSizedSampler sampler(delta_squared,
                                 kSeedBase + static_cast<uint64_t>(t));
    for (uint64_t key = 0; key < n; ++key) {
      sampler.Add(key, weights[key], weights[key]);
    }
    estimates.Add(HtTotal(sampler.Sample()));
    if (std::isfinite(sampler.Threshold())) {
      ++finite_thresholds;
      EXPECT_NEAR(sampler.VarianceEstimate(), delta_squared,
                  1e-9 * delta_squared);
    }
  }
  // The target must actually bind for the exactness claim to be tested.
  ASSERT_GT(finite_thresholds, replicates / 2);
  const double se =
      estimates.StdDev() / std::sqrt(static_cast<double>(replicates));
  EXPECT_NEAR(estimates.mean(), truth, 4.4 * se);
}

}  // namespace
}  // namespace ats
