// Tests for ats/sketch/kmv.h: distinct-count accuracy/unbiasedness,
// dedup, merge == single-stream, and the Section 3.4 weighted variant.
#include "ats/sketch/kmv.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "ats/core/random.h"
#include "ats/util/stats.h"

namespace ats {
namespace {

TEST(Kmv, ExactWhileUnsaturated) {
  KmvSketch sketch(100);
  for (uint64_t i = 0; i < 50; ++i) sketch.AddKey(i);
  EXPECT_EQ(sketch.size(), 50u);
  EXPECT_FALSE(sketch.saturated());
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 50.0);
}

TEST(Kmv, DuplicatesAreIgnored) {
  KmvSketch sketch(64);
  for (int rep = 0; rep < 10; ++rep) {
    for (uint64_t i = 0; i < 30; ++i) sketch.AddKey(i);
  }
  EXPECT_EQ(sketch.size(), 30u);
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 30.0);
}

struct KmvParam {
  size_t k;
  size_t n;
};

class KmvAccuracyTest : public ::testing::TestWithParam<KmvParam> {};

TEST_P(KmvAccuracyTest, EstimateWithinRelativeErrorBound) {
  const auto [k, n] = GetParam();
  RunningStat rel_err;
  for (uint64_t trial = 0; trial < 30; ++trial) {
    KmvSketch sketch(k, 1.0, trial);
    const uint64_t base = trial * (1ULL << 32);
    for (uint64_t i = 0; i < n; ++i) sketch.AddKey(base + i);
    rel_err.Add((sketch.Estimate() - double(n)) / double(n));
  }
  // Mean relative error near 0; SD near 1/sqrt(k).
  EXPECT_LT(std::abs(rel_err.mean()), 3.0 / std::sqrt(double(k)));
  EXPECT_LT(rel_err.StdDev(), 2.5 / std::sqrt(double(k)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, KmvAccuracyTest,
                         ::testing::Values(KmvParam{64, 10000},
                                           KmvParam{256, 10000},
                                           KmvParam{256, 100000},
                                           KmvParam{1024, 50000}));

TEST(Kmv, EstimateIsUnbiasedOverSalts) {
  const size_t n = 5000, k = 128;
  RunningStat est;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    KmvSketch sketch(k, 1.0, static_cast<uint64_t>(t) + 1);
    for (uint64_t i = 0; i < n; ++i) sketch.AddKey(i);
    est.Add(sketch.Estimate());
  }
  const double se = est.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(est.mean(), double(n), 4.0 * se);
}

TEST(Kmv, MergeEqualsSingleStream) {
  const size_t k = 64;
  KmvSketch whole(k), a(k), b(k);
  for (uint64_t i = 0; i < 5000; ++i) {
    whole.AddKey(i);
    // Overlapping halves: a gets [0, 3000), b gets [2000, 5000).
    if (i < 3000) a.AddKey(i);
    if (i >= 2000) b.AddKey(i);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Threshold(), whole.Threshold());
  EXPECT_EQ(a.size(), whole.size());
  EXPECT_DOUBLE_EQ(a.Estimate(), whole.Estimate());
}

TEST(Kmv, MergeIsCommutative) {
  const size_t k = 32;
  KmvSketch ab(k), ba(k), a(k), b(k);
  for (uint64_t i = 0; i < 2000; ++i) a.AddKey(i);
  for (uint64_t i = 1500; i < 4000; ++i) b.AddKey(i);
  ab = a;
  ab.Merge(b);
  ba = b;
  ba.Merge(a);
  EXPECT_DOUBLE_EQ(ab.Estimate(), ba.Estimate());
  EXPECT_DOUBLE_EQ(ab.Threshold(), ba.Threshold());
}

TEST(Kmv, InitialThresholdPreFilters) {
  KmvSketch sketch(1000, 0.01, 3);
  for (uint64_t i = 0; i < 20000; ++i) sketch.AddKey(i);
  // Roughly 1% of keys hash below 0.01.
  EXPECT_GT(sketch.size(), 120u);
  EXPECT_LT(sketch.size(), 320u);
  // Estimate still unbiased-ish around 20000.
  EXPECT_NEAR(sketch.Estimate(), 20000.0, 6000.0);
}

TEST(Kmv, AddKeysMatchesScalarAddKeyLoop) {
  // The fused hash->priority->pre-filter pipeline must be exactly an
  // AddKey loop in stream order: same members, same threshold, same
  // acceptance count -- duplicates and partial tail blocks included.
  std::vector<uint64_t> keys(20000);
  Xoshiro256 rng(77);
  for (auto& key : keys) key = rng.NextBelow(9000);  // heavy duplicates
  for (size_t n : {0u, 1u, 63u, 64u, 65u, 20000u}) {
    const std::span<const uint64_t> prefix(keys.data(), n);
    KmvSketch batched(128, 1.0, 9), scalar(128, 1.0, 9);
    const size_t batch_accepted = batched.AddKeys(prefix);
    size_t scalar_accepted = 0;
    for (uint64_t key : prefix) scalar_accepted += scalar.AddKey(key) ? 1 : 0;
    EXPECT_EQ(batch_accepted, scalar_accepted) << "n=" << n;
    EXPECT_DOUBLE_EQ(batched.Threshold(), scalar.Threshold()) << "n=" << n;
    EXPECT_EQ(batched.members(), scalar.members()) << "n=" << n;
  }
}

TEST(Kmv, AddKeysChunkingIsInvariant) {
  // Feeding the same stream in odd-sized chunks must not change anything
  // (the acceptance bound tightens at different points, but canonical
  // state is chunk-invariant).
  std::vector<uint64_t> keys(10000);
  Xoshiro256 rng(78);
  for (auto& key : keys) key = rng.NextBelow(4000);
  KmvSketch whole(64), chunked(64);
  whole.AddKeys(keys);
  size_t i = 0, chunk = 1;
  while (i < keys.size()) {
    const size_t len = std::min(chunk, keys.size() - i);
    chunked.AddKeys(std::span(keys).subspan(i, len));
    i += len;
    chunk = chunk * 2 + 1;
  }
  EXPECT_DOUBLE_EQ(chunked.Threshold(), whole.Threshold());
  EXPECT_EQ(chunked.members(), whole.members());
}

TEST(Kmv, ThresholdMonotoneDecreasing) {
  KmvSketch sketch(16);
  double prev = 1.0;
  for (uint64_t i = 0; i < 3000; ++i) {
    sketch.AddKey(i);
    ASSERT_LE(sketch.Threshold(), prev);
    prev = sketch.Threshold();
  }
}

}  // namespace
}  // namespace ats
