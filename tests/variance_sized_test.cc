// Tests for ats/samplers/variance_sized.h (Sections 3.9, 6).
#include "ats/samplers/variance_sized.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ats/core/ht_estimator.h"
#include "ats/util/stats.h"
#include "ats/workload/synthetic.h"

namespace ats {
namespace {

std::vector<VarianceSizedItem> MakeItems(size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<VarianceSizedItem> items(n);
  for (size_t i = 0; i < n; ++i) {
    items[i].key = i;
    items[i].weight = std::exp(0.5 * rng.NextGaussian());
    items[i].value = items[i].weight;  // PPS case
    items[i].priority = rng.NextDoubleOpenZero() / items[i].weight;
  }
  return items;
}

double VhatAt(const std::vector<VarianceSizedItem>& items, double t) {
  double v = 0.0;
  for (const auto& it : items) {
    if (it.priority < t) {
      const double pi = std::min(1.0, it.weight * t);
      if (pi < 1.0) v += it.value * it.value * (1.0 - pi) / pi;
    }
  }
  return v;
}

TEST(VarianceSized, OfflineStopHitsTargetExactly) {
  const double delta2 = 4.0;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto items = MakeItems(400, seed);
    const auto result = SolveVarianceSizedThreshold(items, delta2);
    ASSERT_NE(result.threshold, kInfiniteThreshold) << "seed=" << seed;
    // At the stopping threshold the variance estimate equals delta^2
    // (continuous crossing).
    EXPECT_NEAR(VhatAt(items, result.threshold), delta2, 1e-6)
        << "seed=" << seed;
    // And strictly above the threshold the estimate is below target.
    EXPECT_LT(VhatAt(items, result.threshold * 1.05), delta2 + 1e-9);
  }
}

TEST(VarianceSized, UnreachableTargetKeepsEverything) {
  auto items = MakeItems(10, 7);
  const auto result = SolveVarianceSizedThreshold(items, 1e12);
  EXPECT_EQ(result.threshold, kInfiniteThreshold);
  EXPECT_EQ(result.sample.size(), items.size());
}

TEST(VarianceSized, SmallerTargetMeansBiggerSample) {
  const auto items = MakeItems(600, 11);
  const auto loose = SolveVarianceSizedThreshold(items, 25.0);
  const auto tight = SolveVarianceSizedThreshold(items, 1.0);
  EXPECT_GT(tight.sample.size(), loose.sample.size());
  EXPECT_GT(tight.threshold, loose.threshold);
}

TEST(VarianceSized, OfflineEstimateIsUnbiased) {
  // HT total using the stopping threshold remains unbiased (the threshold
  // is substitutable: a stopping time in the sorted-priority filtration,
  // Theorem 8).
  Xoshiro256 rng(13);
  const size_t n = 300;
  std::vector<double> weights(n);
  double truth = 0.0;
  for (size_t i = 0; i < n; ++i) {
    weights[i] = std::exp(0.5 * rng.NextGaussian());
    truth += weights[i];
  }
  RunningStat est;
  const int trials = 800;
  for (int t = 0; t < trials; ++t) {
    Xoshiro256 trial_rng(10000 + static_cast<uint64_t>(t));
    std::vector<VarianceSizedItem> items(n);
    for (size_t i = 0; i < n; ++i) {
      items[i].key = i;
      items[i].weight = weights[i];
      items[i].value = weights[i];
      items[i].priority = trial_rng.NextDoubleOpenZero() / weights[i];
    }
    const auto result = SolveVarianceSizedThreshold(items, 9.0);
    est.Add(HtTotal(result.sample));
  }
  const double se = est.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(est.mean(), truth, 4.0 * se);
}

TEST(VarianceSizedSampler, PrefixThresholdIsMonotoneNonDecreasing) {
  // An absolute variance target forces the threshold to GROW with the
  // data (Vhat_n(t) grows in n at fixed t) -- the paper's caveat about
  // streaming stopping times.
  VarianceSizedSampler sampler(4.0, 3);
  Xoshiro256 rng(4);
  double prev = 0.0;
  for (uint64_t i = 0; i < 500; ++i) {
    const double w = std::exp(0.5 * rng.NextGaussian());
    sampler.Add(i, w, w);
    const double t = sampler.Threshold();
    if (t != kInfiniteThreshold) {
      ASSERT_GE(t, prev - 1e-12) << "i=" << i;
      prev = t;
    }
  }
  EXPECT_GT(prev, 0.0);
}

TEST(VarianceSizedSampler, VarianceEstimateEqualsTargetExactly) {
  const double delta2 = 9.0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    VarianceSizedSampler sampler(delta2, seed);
    Xoshiro256 rng(100 + seed);
    for (uint64_t i = 0; i < 800; ++i) {
      const double w = std::exp(0.5 * rng.NextGaussian());
      sampler.Add(i, w, w);
    }
    ASSERT_NE(sampler.Threshold(), kInfiniteThreshold);
    EXPECT_NEAR(sampler.VarianceEstimate(), delta2, 1e-6)
        << "seed=" << seed;
  }
}

TEST(VarianceSizedSampler, MatchesOfflineSolveExactly) {
  VarianceSizedSampler sampler(16.0, 21);
  Xoshiro256 rng(22);
  for (uint64_t i = 0; i < 600; ++i) {
    const double w = std::exp(0.5 * rng.NextGaussian());
    sampler.Add(i, w, w);
  }
  // Rebuild the identical item set offline from the sampler's own sample
  // is not possible (evictions never happen here), so instead check the
  // defining property against an independent recomputation at the final
  // threshold and sample size consistency.
  const auto sample = sampler.Sample();
  EXPECT_EQ(sample.size(), sampler.SampleSize());
  for (const auto& e : sample) EXPECT_LT(e.priority, sampler.Threshold());
}

TEST(VarianceSizedSampler, LooserTargetYieldsSmallerSample) {
  auto run = [](double delta2) {
    VarianceSizedSampler sampler(delta2, 5);
    Xoshiro256 rng(6);
    for (uint64_t i = 0; i < 1000; ++i) {
      const double w = std::exp(0.5 * rng.NextGaussian());
      sampler.Add(i, w, w);
    }
    return sampler.SampleSize();
  };
  const size_t loose = run(400.0);
  const size_t tight = run(4.0);
  EXPECT_LT(loose, tight);
  EXPECT_GT(loose, 0u);
  EXPECT_LT(tight, 1000u);
}

}  // namespace
}  // namespace ats
