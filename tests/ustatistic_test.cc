// Tests for ats/estimators/ustatistic.h: the generic pseudo-HT
// U-statistic machinery of Sections 2.4 / 2.6.2.
#include "ats/estimators/ustatistic.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ats/core/bottom_k.h"
#include "ats/util/stats.h"

namespace ats {
namespace {

std::vector<SampleEntry> DrawUniformSample(const std::vector<double>& values,
                                           double threshold,
                                           Xoshiro256& rng) {
  std::vector<SampleEntry> out;
  for (size_t i = 0; i < values.size(); ++i) {
    const double r = rng.NextDoubleOpenZero();
    if (r < threshold) {
      out.push_back(MakeUniformEntry(i, values[i], r, threshold));
    }
  }
  return out;
}

TEST(UStatistic, FullInclusionIsExact) {
  std::vector<double> values = {1.0, -2.0, 3.0, 0.5, -1.5};
  std::vector<SampleEntry> sample;
  for (size_t i = 0; i < values.size(); ++i) {
    sample.push_back(
        MakeUniformEntry(i, values[i], 0.5, kInfiniteThreshold));
  }
  const auto h2 = GiniMeanDifferenceKernel;
  EXPECT_NEAR(UStatistic2(sample, 5, h2), ExactUStatistic2(values, h2),
              1e-12);
  const Kernel1 h1 = [](double x) { return x * x; };
  EXPECT_NEAR(UStatistic1(sample, 5, h1), ExactUStatistic1(values, h1),
              1e-12);
}

struct UParam {
  double threshold;
  uint64_t seed;
};

class UStatSweep : public ::testing::TestWithParam<UParam> {};

TEST_P(UStatSweep, GiniMeanDifferenceIsUnbiased) {
  const auto [threshold, seed] = GetParam();
  Xoshiro256 setup(seed);
  std::vector<double> values(60);
  for (double& v : values) v = setup.NextGaussian();
  const double truth = ExactUStatistic2(values, GiniMeanDifferenceKernel);

  Xoshiro256 rng(seed + 1);
  RunningStat est;
  const int trials = 1000;
  for (int t = 0; t < trials; ++t) {
    est.Add(UStatistic2(DrawUniformSample(values, threshold, rng),
                        static_cast<int64_t>(values.size()),
                        GiniMeanDifferenceKernel));
  }
  const double se = est.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(est.mean(), truth, 4.0 * se);
}

TEST_P(UStatSweep, WilcoxonKernelIsUnbiased) {
  const auto [threshold, seed] = GetParam();
  Xoshiro256 setup(seed + 7);
  std::vector<double> values(50);
  for (double& v : values) v = setup.NextGaussian() + 0.3;  // shifted
  const double truth = ExactUStatistic2(values, WilcoxonKernel);

  Xoshiro256 rng(seed + 8);
  RunningStat est;
  const int trials = 1000;
  for (int t = 0; t < trials; ++t) {
    est.Add(UStatistic2(DrawUniformSample(values, threshold, rng),
                        static_cast<int64_t>(values.size()),
                        WilcoxonKernel));
  }
  const double se = est.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(est.mean(), truth, 4.0 * se);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UStatSweep,
                         ::testing::Values(UParam{0.3, 1}, UParam{0.5, 2},
                                           UParam{0.8, 3}));

TEST(UStatistic, Degree3KernelIsUnbiasedOnBottomK) {
  // Median-of-three sign kernel on a fully substitutable bottom-k sample.
  Xoshiro256 setup(11);
  std::vector<double> values(50);
  for (double& v : values) v = setup.NextGaussian();
  const Kernel3 h = [](double a, double b, double c) {
    return (a + b + c) / 3.0 > 0.0 ? 1.0 : 0.0;
  };
  const double truth = ExactUStatistic3(values, h);
  RunningStat est;
  const int trials = 1000;
  for (int t = 0; t < trials; ++t) {
    Xoshiro256 rng(100 + static_cast<uint64_t>(t));
    BottomK<size_t> sketch(20);
    for (size_t i = 0; i < values.size(); ++i) {
      sketch.Offer(rng.NextDoubleOpenZero(), i);
    }
    std::vector<SampleEntry> sample;
    for (const auto& e : sketch.entries()) {
      sample.push_back(MakeUniformEntry(e.payload, values[e.payload],
                                        e.priority, sketch.Threshold()));
    }
    est.Add(UStatistic3(sample, static_cast<int64_t>(values.size()), h));
  }
  const double se = est.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(est.mean(), truth, 4.0 * se);
}

TEST(UStatistic, Degree4MatchesMomentFormulation) {
  // The m4 kernel through UStatistic4 equals moments.h's estimate.
  Xoshiro256 rng(21);
  std::vector<double> values(30);
  for (double& v : values) v = rng.NextGaussian();
  const auto sample = DrawUniformSample(values, 0.6, rng);
  const Kernel4 h = [](double x, double y, double z, double w) {
    return x * x * x * x - 4.0 * x * x * x * y + 6.0 * x * x * y * z -
           3.0 * x * y * z * w;
  };
  const double via_generic =
      UStatistic4(sample, static_cast<int64_t>(values.size()), h);
  EXPECT_TRUE(std::isfinite(via_generic));
}

}  // namespace
}  // namespace ats
