// Memory-accounting tests for the MemoryFootprint() convention
// (util/memory.h): exact for SampleStore's SoA columns, monotone under
// ingest between compactions, visibly dropping at compaction and at
// checkpoint log-truncation, and nonzero/growing across every sampler,
// sketch, and front-end family that reports it.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ats/cluster/node.h"
#include "ats/core/bottom_k.h"
#include "ats/core/concurrent_sampler.h"
#include "ats/core/random.h"
#include "ats/core/sample_store.h"
#include "ats/core/sharded_sampler.h"
#include "ats/samplers/budget_sampler.h"
#include "ats/samplers/multi_objective.h"
#include "ats/samplers/multi_stratified.h"
#include "ats/samplers/sliding_window.h"
#include "ats/samplers/time_decay.h"
#include "ats/samplers/topk_sampler.h"
#include "ats/samplers/variance_sized.h"
#include "ats/sketch/group_distinct.h"
#include "ats/sketch/kmv.h"
#include "ats/sketch/lcs_merge.h"
#include "ats/sketch/theta.h"

namespace ats {
namespace {

TEST(MemoryFootprint, SampleStoreIsExactPerBufferedEntry) {
  SampleStore<uint64_t> store(4);
  Xoshiro256 rng(17);
  EXPECT_EQ(store.MemoryFootprint(), 0u);
  for (int i = 0; i < 200; ++i) {
    store.Offer(rng.NextDoubleOpenZero(), static_cast<uint64_t>(i));
    // Exactness: the SoA columns are both BufferedSize() long, so the
    // footprint is a closed form of the occupancy at every step --
    // including mid-buffer states between compactions.
    ASSERT_EQ(store.MemoryFootprint(),
              store.BufferedSize() * (sizeof(double) + sizeof(uint64_t)));
  }
  store.Canonicalize();
  EXPECT_EQ(store.MemoryFootprint(),
            store.size() * (sizeof(double) + sizeof(uint64_t)));
}

TEST(MemoryFootprint, SampleStoreGrowsUnderIngestAndShrinksAtCompaction) {
  SampleStore<uint64_t> store(8);
  Xoshiro256 rng(23);
  size_t prev = store.MemoryFootprint();
  bool saw_growth = false;
  bool saw_compaction_drop = false;
  for (int i = 0; i < 2000; ++i) {
    const bool accepted =
        store.Offer(rng.NextDoubleOpenZero(), static_cast<uint64_t>(i));
    const size_t now = store.MemoryFootprint();
    if (accepted && now > prev) saw_growth = true;
    // The only way the footprint moves down is the 2k compaction: an
    // accepted offer that lands SMALLER than before proves the drop is
    // visible through the accounting (size, not capacity).
    if (now < prev) saw_compaction_drop = true;
    if (!accepted) {
      ASSERT_EQ(now, prev) << "rejected offers must not move the footprint";
    }
    prev = now;
  }
  EXPECT_TRUE(saw_growth);
  EXPECT_TRUE(saw_compaction_drop);
  // Explicit canonicalization compacts down to <= k entries: never larger.
  const size_t before = store.MemoryFootprint();
  store.Canonicalize();
  EXPECT_LE(store.MemoryFootprint(), before);
}

TEST(MemoryFootprint, SketchFamiliesReportGrowthUnderIngest) {
  Xoshiro256 rng(31);
  std::vector<uint64_t> keys(512);
  for (auto& k : keys) k = rng.Next();

  // Hash-backed families model the bucket array, so an empty instance
  // reports a small constant rather than exactly zero; growth is the
  // contract.
  KmvSketch kmv(32, 1.0, 7);
  const size_t kmv_empty = kmv.MemoryFootprint();
  kmv.AddKeys(keys);
  EXPECT_GT(kmv.MemoryFootprint(), kmv_empty);

  ThetaSketch theta(32, 7);
  const size_t theta_empty = theta.MemoryFootprint();
  theta.AddKeys(keys);
  EXPECT_GT(theta.MemoryFootprint(), theta_empty);

  LcsSketch lcs = LcsSketch::FromKmv(kmv);
  EXPECT_GT(lcs.MemoryFootprint(), 0u);

  GroupDistinctSketch groups(8, 16, 7);
  const size_t groups_empty = groups.MemoryFootprint();
  for (uint64_t i = 0; i < 400; ++i) groups.Add(i % 8, rng.Next());
  EXPECT_GT(groups.MemoryFootprint(), groups_empty);
}

TEST(MemoryFootprint, SamplerFamiliesReportGrowthUnderIngest) {
  Xoshiro256 rng(37);

  SlidingWindowSampler window(16, /*window=*/1.0, 5);
  EXPECT_EQ(window.MemoryFootprint(), 0u);
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += 0.01;
    window.Arrive(t, static_cast<uint64_t>(i));
  }
  EXPECT_GT(window.MemoryFootprint(), 0u);

  TimeDecaySampler decay(16, 5);
  EXPECT_EQ(decay.MemoryFootprint(), 0u);
  for (int i = 0; i < 300; ++i) {
    decay.Add(static_cast<uint64_t>(i), 1.0, 1.0, 0.01 * i);
  }
  EXPECT_GT(decay.MemoryFootprint(), 0u);

  TopKSampler topk(16, 5);
  const size_t topk_empty = topk.MemoryFootprint();
  for (int i = 0; i < 300; ++i) topk.Add(rng.NextBelow(64));
  EXPECT_GT(topk.MemoryFootprint(), topk_empty);

  BudgetSampler budget(50.0, 5);
  EXPECT_EQ(budget.MemoryFootprint(), 0u);
  for (int i = 0; i < 300; ++i) {
    budget.Add(static_cast<uint64_t>(i), 1.0 + rng.NextDouble(), 1.0);
  }
  EXPECT_GT(budget.MemoryFootprint(), 0u);

  MultiObjectiveSampler multi(2, 16, 5);
  for (int i = 0; i < 300; ++i) {
    multi.Add(static_cast<uint64_t>(i), {1.0, rng.NextDoubleOpenZero()},
              1.0);
  }
  EXPECT_GT(multi.MemoryFootprint(), 0u);

  VarianceSizedSampler variance(0.01, 5);
  EXPECT_EQ(variance.MemoryFootprint(), 0u);
  for (int i = 0; i < 300; ++i) {
    variance.Add(static_cast<uint64_t>(i), rng.NextDouble(), 1.0);
  }
  EXPECT_GT(variance.MemoryFootprint(), 0u);

  MultiStratifiedSampler strat(2, 8, 5);
  const size_t strat_empty = strat.MemoryFootprint();
  for (uint64_t i = 0; i < 300; ++i) {
    strat.Add(i, {i % 4, i % 3}, 1.0);
  }
  const size_t full = strat.MemoryFootprint();
  EXPECT_GT(full, strat_empty);
  // Budget shrink is the stratified sampler's compaction: the
  // accounting must see the evictions.
  strat.ShrinkToBudget(3 * 8);
  EXPECT_LT(strat.MemoryFootprint(), full);
}

TEST(MemoryFootprint, FrontEndsSumTheirShards) {
  Xoshiro256 rng(43);

  ShardedSampler sharded(4, 16);
  const size_t sharded_empty = sharded.MemoryFootprint();
  for (int i = 0; i < 400; ++i) {
    sharded.Add(rng.Next(), rng.NextDoubleOpenZero());
  }
  EXPECT_GT(sharded.MemoryFootprint(), sharded_empty);

  ConcurrentKmvSketch concurrent(4, 32, 7);
  const size_t concurrent_empty = concurrent.MemoryFootprint();
  std::vector<uint64_t> keys(400);
  for (auto& k : keys) k = rng.Next();
  concurrent.AddKeys(keys);
  EXPECT_GT(concurrent.MemoryFootprint(), concurrent_empty);
}

TEST(MemoryFootprint, AgentLogDominatesThenDropsAtCheckpointTruncation) {
  cluster::AgentNode agent(/*id=*/0, /*k=*/64, /*salt=*/7,
                           cluster::RetryPolicy{});
  const std::string dir = ::testing::TempDir();
  agent.ConfigureCheckpoint({dir + "ats_footprint_agent.ckp",
                             /*every_epochs=*/1, /*prefer_mmap=*/true});

  Xoshiro256 rng(47);
  std::vector<uint64_t> keys(256);
  size_t after_first_batch = 0;
  for (int batch = 0; batch < 8; ++batch) {
    for (auto& k : keys) k = rng.Next();
    agent.Ingest(keys);
    if (batch == 0) after_first_batch = agent.MemoryFootprint();
  }
  // The un-checkpointed replay log dominates: cumulative growth is
  // visible through the accounting even though the sketch's own
  // compactions shed bytes along the way.
  const size_t with_log = agent.MemoryFootprint();
  ASSERT_GT(with_log, after_first_batch);
  EXPECT_GE(with_log, agent.log().size() * sizeof(uint64_t));
  agent.MaybeCheckpoint();
  ASSERT_EQ(agent.checkpoints_written(), 1u);
  EXPECT_EQ(agent.log().size(), 0u);  // truncated to the covered suffix
  // The durable file absorbed the log: the in-memory footprint drops to
  // roughly the sketch alone.
  EXPECT_LT(agent.MemoryFootprint(), with_log);
  EXPECT_EQ(agent.epochs_since_checkpoint(), 0u);
}

}  // namespace
}  // namespace ats
