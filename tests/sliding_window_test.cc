// Tests for ats/samplers/sliding_window.h (Section 3.2): space bounds,
// threshold dominance of the improved rule, uniformity of both samples,
// and the ~2x usable-sample improvement.
#include "ats/samplers/sliding_window.h"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "ats/util/stats.h"
#include "ats/workload/arrivals.h"

namespace ats {
namespace {

// Feeds a constant-rate stream and returns the sampler at time `horizon`.
SlidingWindowSampler MakeSteadySampler(size_t k, double window, double rate,
                                       double horizon, uint64_t seed) {
  SlidingWindowSampler sampler(k, window, seed);
  ArrivalProcess arrivals(RateProfile::Constant(rate), rate * 1.1, seed + 1);
  for (const Arrival& a : arrivals.Until(horizon)) {
    sampler.Arrive(a.time, a.id);
  }
  return sampler;
}

TEST(SlidingWindow, CurrentNeverExceedsK) {
  SlidingWindowSampler sampler(20, 1.0, 5);
  ArrivalProcess arrivals(RateProfile::Constant(500.0), 600.0, 6);
  for (const Arrival& a : arrivals.Until(5.0)) {
    sampler.Arrive(a.time, a.id);
    ASSERT_LE(sampler.CurrentItems(a.time).size(), 20u);
  }
}

TEST(SlidingWindow, StoredSpaceIsBounded) {
  // Current <= k and expired holds at most one window's worth of former
  // current items, so total storage stays within a small multiple of k.
  auto sampler = MakeSteadySampler(50, 1.0, 2000.0, 10.0, 7);
  EXPECT_LE(sampler.StoredCount(10.0), 3 * 50u);
}

TEST(SlidingWindow, ImprovedThresholdDominatesGl) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    auto sampler = MakeSteadySampler(100, 1.0, 3000.0, 8.0, seed);
    const double t_gl = sampler.GlThreshold(8.0);
    const double t_imp = sampler.ImprovedThreshold(8.0);
    EXPECT_GE(t_imp, t_gl) << "seed=" << seed;
  }
}

TEST(SlidingWindow, ImprovedRoughlyDoublesUsableSample) {
  // Steady state: T_GL is computed over ~2 windows of points, so it is
  // about half the per-item threshold; the improved sample has ~2x points.
  RunningStat ratio;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto sampler = MakeSteadySampler(100, 1.0, 3000.0, 8.0, seed);
    const double gl = static_cast<double>(sampler.GlSample(8.0).size());
    const double imp =
        static_cast<double>(sampler.ImprovedSample(8.0).size());
    ASSERT_GT(gl, 0.0);
    ratio.Add(imp / gl);
  }
  EXPECT_GT(ratio.mean(), 1.5);
  EXPECT_LT(ratio.mean(), 2.8);
}

TEST(SlidingWindow, SamplesContainOnlyWindowItems) {
  auto sampler = MakeSteadySampler(50, 1.0, 1000.0, 6.0, 11);
  for (const auto& e : sampler.ImprovedSample(6.0)) {
    // Ids are dense in arrival order at rate ~1000/s: items in the window
    // (5, 6] have ids roughly in (5000, 6000]. Allow Poisson slack.
    EXPECT_GT(e.key, 4500u);
  }
}

struct UniformityParam {
  size_t k;
  uint64_t seed;
};

class SlidingWindowUniformityTest
    : public ::testing::TestWithParam<UniformityParam> {};

TEST_P(SlidingWindowUniformityTest, SamplesAreUniformOverWindow) {
  // Every item in the window should appear in the final sample equally
  // often. Replay many independent streams with identical arrival times
  // and count inclusion per arrival-slot; chi-square against uniform.
  const auto [k, seed] = GetParam();
  const double window = 1.0, rate = 300.0, horizon = 3.0;
  ArrivalProcess arrivals(RateProfile::Constant(rate), rate * 1.1, 999);
  const auto times = arrivals.Until(horizon);

  // Arrival ids inside the final window:
  std::vector<uint64_t> window_ids;
  for (const Arrival& a : times) {
    if (a.time > horizon - window) window_ids.push_back(a.id);
  }
  std::map<uint64_t, int64_t> gl_counts, imp_counts;
  for (uint64_t id : window_ids) {
    gl_counts[id] = 0;
    imp_counts[id] = 0;
  }

  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    SlidingWindowSampler sampler(k, window,
                                 seed + static_cast<uint64_t>(t) * 101);
    for (const Arrival& a : times) sampler.Arrive(a.time, a.id);
    for (const auto& e : sampler.GlSample(horizon)) ++gl_counts[e.key];
    for (const auto& e : sampler.ImprovedSample(horizon)) {
      ++imp_counts[e.key];
    }
  }
  auto check_uniform = [&](const std::map<uint64_t, int64_t>& counts,
                           const char* name) {
    std::vector<int64_t> c;
    for (const auto& [id, n] : counts) c.push_back(n);
    EXPECT_LT(ChiSquareUniform(c),
              ChiSquareCritical999(static_cast<int>(c.size()) - 1))
        << name;
  };
  check_uniform(gl_counts, "G&L");
  check_uniform(imp_counts, "improved");
}

INSTANTIATE_TEST_SUITE_P(Sweep, SlidingWindowUniformityTest,
                         ::testing::Values(UniformityParam{10, 1},
                                           UniformityParam{25, 2},
                                           UniformityParam{50, 3}));

TEST(SlidingWindow, RecoverySpikeDoesNotBreakBounds) {
  SlidingWindowSampler sampler(50, 1.0, 21);
  ArrivalProcess arrivals(RateProfile::WithSpike(1000.0, 3.0, 3.5, 5.0),
                          5500.0, 22);
  for (const Arrival& a : arrivals.Until(8.0)) {
    sampler.Arrive(a.time, a.id);
    ASSERT_LE(sampler.CurrentItems(a.time).size(), 50u);
  }
  EXPECT_GT(sampler.ImprovedSample(8.0).size(), 0u);
}

TEST(SlidingWindow, UnderfullWindowKeepsEverything) {
  SlidingWindowSampler sampler(100, 10.0, 31);
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(sampler.Arrive(0.1 * static_cast<double>(i), i));
  }
  EXPECT_EQ(sampler.ImprovedSample(2.0).size(), 20u);
  EXPECT_EQ(sampler.ImprovedThreshold(2.0), 1.0);
}

}  // namespace
}  // namespace ats
