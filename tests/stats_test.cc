// Tests for ats/util/stats.h.
#include "ats/util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ats/core/random.h"

namespace ats {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.PopulationVariance(), 4.0);
  EXPECT_NEAR(s.SampleVariance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.PopulationVariance(), 0.0);
  EXPECT_EQ(s.SampleVariance(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  Xoshiro256 rng(1);
  RunningStat all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextGaussian() * 3.0 + 1.0;
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.SampleVariance(), all.SampleVariance(), 1e-8);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, RmseAroundTruth) {
  RunningStat s;
  s.Add(9.0);
  s.Add(11.0);
  // mean 10, pop var 1; around center 10: rmse = 1.
  EXPECT_DOUBLE_EQ(s.Rmse(10.0), 1.0);
  // around 8: bias 2, var 1 => sqrt(5).
  EXPECT_NEAR(s.Rmse(8.0), std::sqrt(5.0), 1e-12);
}

TEST(Quantile, Interpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({5.0}, 0.7), 5.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(KsStatistic, DetectsNonUniform) {
  std::vector<double> uniform, squashed;
  Xoshiro256 rng(2);
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.NextDouble();
    uniform.push_back(u);
    squashed.push_back(u * u);  // Beta-like, not uniform
  }
  EXPECT_GT(KsPValue(KsStatisticUniform(uniform), 5000), 1e-3);
  EXPECT_LT(KsPValue(KsStatisticUniform(squashed), 5000), 1e-6);
}

TEST(ChiSquare, UniformCountsPass) {
  std::vector<int64_t> counts = {100, 103, 98, 101, 97, 102, 99, 100};
  EXPECT_LT(ChiSquareUniform(counts), ChiSquareCritical999(7));
}

TEST(ChiSquare, SkewedCountsFail) {
  std::vector<int64_t> counts = {400, 50, 50, 50, 50, 50, 50, 100};
  EXPECT_GT(ChiSquareUniform(counts), ChiSquareCritical999(7));
}

TEST(ChiSquareCritical, MatchesTables) {
  // chi2_{0.999} reference values: df=9 -> 27.88, df=99 -> 148.23.
  EXPECT_NEAR(ChiSquareCritical999(9), 27.88, 0.5);
  EXPECT_NEAR(ChiSquareCritical999(99), 148.23, 1.5);
}

TEST(PearsonCorrelation, KnownCases) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
  std::vector<double> c = {3, 3, 3, 3, 3};
  EXPECT_EQ(PearsonCorrelation(x, c), 0.0);
}

}  // namespace
}  // namespace ats
