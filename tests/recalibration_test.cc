// Tests for ats/core/recalibration.h: the substitutability checker
// validates the paper's claims about each canonical thresholding rule
// (Sections 2.5-2.7).
#include "ats/core/recalibration.h"

#include <vector>

#include <gtest/gtest.h>

#include "ats/core/composition.h"
#include "ats/core/threshold.h"

namespace ats {
namespace {

TEST(Recalibration, BottomKThresholdUnchangedForSampledItems) {
  // Section 2.5.1: setting a sampled (bottom-k) priority to 0 does not
  // move the threshold.
  const auto rule = BottomKRule(3);
  const std::vector<double> p = {0.9, 0.1, 0.5, 0.3, 0.7, 0.2};
  const auto t = rule(p);
  // Sampled: priorities 0.1, 0.2, 0.3 (threshold = 0.5).
  EXPECT_DOUBLE_EQ(t[0], 0.5);
  const auto recal = RecalibratedThresholds(rule, p, {1, 3, 5});
  EXPECT_DOUBLE_EQ(recal[0], 0.5);
}

TEST(Recalibration, BottomKRecalibrationMovesForUnsampledItems) {
  // Recalibrating an UNSAMPLED item's priority to 0 pulls the threshold
  // down: the definition only promises equality for sampled subsets.
  const auto rule = BottomKRule(3);
  const std::vector<double> p = {0.9, 0.1, 0.5, 0.3, 0.7, 0.2};
  const auto recal = RecalibratedThresholds(rule, p, {0});  // 0.9 unsampled
  EXPECT_LT(recal[0], 0.5);
}

TEST(Recalibration, UnderfullBottomKIsInfinite) {
  const auto rule = BottomKRule(10);
  const std::vector<double> p = {0.5, 0.2};
  EXPECT_EQ(rule(p)[0], kInfiniteThreshold);
}

class RuleSubstitutabilityTest
    : public ::testing::TestWithParam<size_t> {};

TEST_P(RuleSubstitutabilityTest, BottomKIsFullySubstitutable) {
  const size_t k = GetParam();
  const auto report =
      CheckSubstitutability(BottomKRule(k), /*n=*/40, /*trials=*/300,
                            /*max_subset_size=*/6, /*seed=*/k);
  EXPECT_GT(report.trials, 0);
  EXPECT_EQ(report.violations, 0) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(KSweep, RuleSubstitutabilityTest,
                         ::testing::Values(1, 2, 5, 10, 20));

TEST(Recalibration, BudgetRuleIsFullySubstitutable) {
  Xoshiro256 rng(17);
  std::vector<double> sizes(30);
  for (double& s : sizes) s = 1.0 + 4.0 * rng.NextDouble();
  const auto report = CheckSubstitutability(
      BudgetRule(sizes, /*budget=*/25.0), sizes.size(), 300, 5);
  EXPECT_EQ(report.violations, 0);
}

TEST(Recalibration, SequentialRuleIs1Substitutable) {
  const auto report = CheckSubstitutability(SequentialBottomKRule(4),
                                            /*n=*/50, /*trials=*/500,
                                            /*max_subset_size=*/1);
  EXPECT_EQ(report.violations, 0);
}

TEST(Recalibration, SequentialRuleIsNot2Substitutable) {
  // Section 2.7's example: the "ever in the bottom-k" rule fails for
  // subsets of size 2 because an early sampled priority can define a later
  // item's threshold.
  const auto report = CheckSubstitutability(SequentialBottomKRule(4),
                                            /*n=*/50, /*trials=*/500,
                                            /*max_subset_size=*/2);
  EXPECT_GT(report.violations, 0);
}

TEST(Recalibration, MinCompositionPreservesSubstitutability) {
  // Theorem 9: min of two bottom-k rules stays fully substitutable.
  const auto rule =
      MinRule({BottomKRule(3), BottomKRule(7)});
  const auto report = CheckSubstitutability(rule, 30, 300, 5);
  EXPECT_EQ(report.violations, 0);
}

TEST(Recalibration, MaxCompositionIs1Substitutable) {
  const auto rule = MaxRule({BottomKRule(3), BottomKRule(7)});
  const auto report = CheckSubstitutability(rule, 30, 400, 1);
  EXPECT_EQ(report.violations, 0);
}

TEST(Recalibration, SubsetSubstitutableHereIsVacuousWhenNotSampled) {
  const auto rule = BottomKRule(2);
  const std::vector<double> p = {0.9, 0.1, 0.2, 0.3};
  // Index 0 (0.9) is not sampled: condition is vacuously true.
  EXPECT_TRUE(SubsetSubstitutableHere(rule, p, {0}));
}

TEST(Recalibration, ExcludeGroupRuleHasZeroInclusionForGroup) {
  // Section 2.3's pathological rule: group members can never be sampled
  // (the threshold is the group's min priority), so no unbiased estimator
  // of a group-involving total exists.
  const std::vector<bool> group = {true, false, true, false};
  const auto rule = ExcludeGroupRule(group);
  Xoshiro256 rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> p(4);
    for (double& x : p) x = rng.NextDoubleOpenZero();
    const auto t = rule(p);
    for (size_t i = 0; i < p.size(); ++i) {
      if (group[i]) {
        EXPECT_GE(p[i], t[i]);
      }
    }
  }
}

TEST(Recalibration, GlobalMinRuleBroadcastsMinimum) {
  const auto base = [](const std::vector<double>& p) {
    std::vector<double> t(p.size());
    for (size_t i = 0; i < p.size(); ++i) t[i] = 0.5 + p[i];
    return t;
  };
  const auto rule = GlobalMinRule(base);
  const std::vector<double> p = {0.3, 0.1, 0.9};
  const auto t = rule(p);
  EXPECT_DOUBLE_EQ(t[0], 0.6);
  EXPECT_DOUBLE_EQ(t[1], 0.6);
  EXPECT_DOUBLE_EQ(t[2], 0.6);
}

}  // namespace
}  // namespace ats
