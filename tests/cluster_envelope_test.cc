// Unit tests for the cluster wire protocol: ENV1 envelope encode/decode
// with typed fault classification, the FrameOutbox ack/retry/backoff
// schedule with supersession, the aggregator's dedup / re-ack / stale /
// poison handling, agent crash-replay recovery, and transport
// determinism.
#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "ats/cluster/cluster.h"
#include "ats/cluster/envelope.h"
#include "ats/cluster/node.h"
#include "ats/cluster/transport.h"
#include "ats/sketch/kmv.h"

namespace ats::cluster {
namespace {

std::string SketchFrame(const std::vector<uint64_t>& keys, size_t k = 64,
                        uint64_t salt = 7) {
  KmvSketch sketch(k, 1.0, salt);
  sketch.AddKeys(keys);
  return sketch.SerializeToString();
}

TEST(Envelope, RoundTripsDataAndAck) {
  const std::string payload = "not interpreted by the envelope";
  const std::string bytes = EncodeEnvelope(EnvelopeKind::kData, /*sender=*/3,
                                           /*incarnation=*/2, /*seq=*/17,
                                           /*epoch=*/4096, payload);
  EXPECT_EQ(bytes.size(), kEnvelopeOverhead + payload.size());
  EnvelopeView view;
  ASSERT_EQ(DecodeEnvelope(bytes, &view), FrameFault::kNone);
  EXPECT_EQ(view.kind, EnvelopeKind::kData);
  EXPECT_EQ(view.sender, 3u);
  EXPECT_EQ(view.incarnation, 2u);
  EXPECT_EQ(view.seq, 17u);
  EXPECT_EQ(view.epoch, 4096u);
  EXPECT_EQ(view.payload, payload);

  const std::string ack =
      EncodeEnvelope(EnvelopeKind::kAck, 9, 2, 17, 4096, {});
  ASSERT_EQ(DecodeEnvelope(ack, &view), FrameFault::kNone);
  EXPECT_EQ(view.kind, EnvelopeKind::kAck);
  EXPECT_TRUE(view.payload.empty());
}

TEST(Envelope, ClassifiesTypedFaults) {
  const std::string bytes =
      EncodeEnvelope(EnvelopeKind::kData, 1, 0, 0, 10, "payload");
  EnvelopeView view;

  // Every strict prefix is a short read.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_EQ(DecodeEnvelope(std::string_view(bytes).substr(0, len), &view),
              FrameFault::kTruncated)
        << "prefix length " << len;
  }
  // Foreign magic.
  std::string bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_EQ(DecodeEnvelope(bad, &view), FrameFault::kBadMagic);
  // Future version (patch the checksum so only the version is at fault).
  bad = EncodeEnvelope(EnvelopeKind::kData, 1, 0, 0, 10, "payload");
  {
    const uint32_t future = kEnvelopeVersion + 1;
    std::memcpy(bad.data() + 4, &future, sizeof(future));
    const uint32_t checksum = FrameChecksum(
        std::string_view(bad).substr(0, bad.size() - sizeof(uint32_t)));
    std::memcpy(bad.data() + bad.size() - sizeof(uint32_t), &checksum,
                sizeof(checksum));
  }
  EXPECT_EQ(DecodeEnvelope(bad, &view), FrameFault::kBadVersion);
  // Flipped payload byte: checksum mismatch.
  bad = bytes;
  bad[kEnvelopeHeaderSize] ^= 0x01;
  EXPECT_EQ(DecodeEnvelope(bad, &view), FrameFault::kCorruptBody);
  // Trailing junk past the declared length.
  bad = bytes + "x";
  EXPECT_EQ(DecodeEnvelope(bad, &view), FrameFault::kCorruptBody);
}

TEST(FrameOutbox, RetriesWithCappedExponentialBackoff) {
  RetryPolicy policy;
  policy.initial_backoff_ticks = 4;
  policy.max_backoff_ticks = 16;
  FrameOutbox outbox(/*node_id=*/0, policy);
  outbox.EnqueueSnapshot(/*epoch=*/10, "snap", /*now=*/0);

  // Expected send ticks: 0, then +4, +8, +16, +16 (capped), ...
  std::vector<uint64_t> sends;
  for (uint64_t now = 0; now <= 60; ++now) {
    if (!outbox.CollectDue(now).empty()) sends.push_back(now);
  }
  EXPECT_EQ(sends, (std::vector<uint64_t>{0, 4, 12, 28, 44, 60}));
  EXPECT_EQ(outbox.retransmissions(), 5u);
}

TEST(FrameOutbox, AckClearsAndSupersessionCancels) {
  FrameOutbox outbox(/*node_id=*/0, RetryPolicy{});
  outbox.EnqueueSnapshot(10, "old snapshot", 0);
  // The newer cumulative snapshot absorbs the unacked older one.
  outbox.EnqueueSnapshot(20, "newer", 1);
  EXPECT_EQ(outbox.superseded_cancelled(), 1u);
  const auto due = outbox.CollectDue(1);
  ASSERT_EQ(due.size(), 1u);  // only the epoch-20 frame survives
  EnvelopeView view;
  ASSERT_EQ(DecodeEnvelope(due[0], &view), FrameFault::kNone);
  EXPECT_EQ(view.epoch, 20u);

  // Acks from another incarnation are ignored; the matching one clears.
  EnvelopeView stale_ack = view;
  stale_ack.incarnation = view.incarnation + 1;
  EXPECT_FALSE(outbox.HandleAck(stale_ack));
  EXPECT_TRUE(outbox.HandleAck(view));
  EXPECT_FALSE(outbox.HandleAck(view));  // already cleared
  EXPECT_TRUE(outbox.empty());
}

TEST(Aggregator, AppliesDedupsAndReAcks) {
  const RetryPolicy policy;
  AggregatorNode root(/*id=*/100, /*k=*/64, /*salt=*/7, policy);
  const std::vector<uint64_t> keys = {1, 2, 3, 4, 5};
  const std::string env = EncodeEnvelope(EnvelopeKind::kData, /*sender=*/0,
                                         /*incarnation=*/0, /*seq=*/0,
                                         /*epoch=*/5, SketchFrame(keys));

  auto first = root.Receive(env);
  EXPECT_EQ(first.kind, ReceiveOutcome::Kind::kApplied);
  ASSERT_TRUE(first.send_ack);
  EXPECT_EQ(first.ack_to, 0u);
  EnvelopeView ack;
  ASSERT_EQ(DecodeEnvelope(first.ack_bytes, &ack), FrameFault::kNone);
  EXPECT_EQ(ack.kind, EnvelopeKind::kAck);
  EXPECT_EQ(ack.seq, 0u);
  EXPECT_EQ(ack.epoch, 5u);

  // A retransmission (the first ack may have been lost) is deduped by
  // (incarnation, seq) but STILL acked, and the merged state is
  // untouched.
  const std::string before = root.SnapshotFrame();
  auto dup = root.Receive(env);
  EXPECT_EQ(dup.kind, ReceiveOutcome::Kind::kDuplicateSeq);
  EXPECT_TRUE(dup.send_ack);
  EXPECT_EQ(root.SnapshotFrame(), before);
  EXPECT_EQ(root.rejects().duplicate_seq, 1u);

  // A delayed OLDER snapshot (fresh seq, stale epoch) is acked but not
  // merged: the applied epoch-5 snapshot already absorbs it.
  const std::vector<uint64_t> prefix = {1, 2, 3};
  auto stale = root.Receive(EncodeEnvelope(EnvelopeKind::kData, 0, 0,
                                           /*seq=*/1, /*epoch=*/3,
                                           SketchFrame(prefix)));
  EXPECT_EQ(stale.kind, ReceiveOutcome::Kind::kStaleEpoch);
  EXPECT_TRUE(stale.send_ack);
  EXPECT_EQ(root.SnapshotFrame(), before);
  EXPECT_EQ(root.AppliedEpoch(0), 5u);
}

TEST(Aggregator, CountsEnvelopeFaultsPerCauseWithoutAcking) {
  AggregatorNode root(100, 64, 7, RetryPolicy{});
  const std::string env = EncodeEnvelope(EnvelopeKind::kData, 0, 0, 0, 5,
                                         SketchFrame({1, 2, 3}));
  const std::string before = root.SnapshotFrame();

  std::string bad = env.substr(0, kEnvelopeHeaderSize / 2);
  EXPECT_EQ(root.Receive(bad).kind,
            ReceiveOutcome::Kind::kEnvelopeRejected);
  bad = env;
  bad[1] ^= 0x40;  // magic
  EXPECT_FALSE(root.Receive(bad).send_ack);
  bad = env;
  bad[env.size() - 2] ^= 0x10;  // checksum byte
  EXPECT_EQ(root.Receive(bad).fault, FrameFault::kCorruptBody);

  EXPECT_EQ(root.rejects().truncated, 1u);
  EXPECT_EQ(root.rejects().bad_magic, 1u);
  EXPECT_EQ(root.rejects().corrupt_body, 1u);
  EXPECT_EQ(root.rejects().envelope_rejected(), 3u);
  EXPECT_EQ(root.frames_applied(), 0u);
  EXPECT_EQ(root.SnapshotFrame(), before);
}

TEST(Aggregator, PoisonPayloadIsAckedCountedNeverMerged) {
  AggregatorNode root(100, 64, 7, RetryPolicy{});
  // Seed some applied state so "unchanged" is a non-trivial assertion.
  root.Receive(EncodeEnvelope(EnvelopeKind::kData, 0, 0, 0, 3,
                              SketchFrame({1, 2, 3})));
  const std::string before = root.SnapshotFrame();

  // A structurally valid envelope around a damaged sketch frame: the
  // sender itself produced these bytes, so no retry can help -- ack to
  // stop the loop, count, never merge.
  std::string frame = SketchFrame({4, 5, 6});
  frame[frame.size() / 2] ^= 0x08;
  auto outcome = root.Receive(
      EncodeEnvelope(EnvelopeKind::kData, 0, 0, /*seq=*/1, /*epoch=*/6,
                     frame));
  EXPECT_EQ(outcome.kind, ReceiveOutcome::Kind::kPayloadRejected);
  EXPECT_TRUE(outcome.send_ack);
  EXPECT_EQ(root.rejects().payload_rejected, 1u);
  EXPECT_EQ(root.SnapshotFrame(), before);
  EXPECT_EQ(root.AppliedEpoch(0), 3u);  // epoch did not advance
}

TEST(Agent, CrashLosesVolatileStateAndReplayRebuildsBitIdentically) {
  AgentNode agent(/*id=*/0, /*k=*/64, /*salt=*/7, RetryPolicy{});
  std::vector<uint64_t> keys(100);
  for (uint64_t i = 0; i < keys.size(); ++i) keys[i] = i * 17;
  agent.Ingest(keys);
  agent.EmitSnapshotIfAdvanced(/*now=*/0);
  const std::string healthy = agent.sketch().SerializeToString();

  agent.Crash(/*now=*/1, /*down_ticks=*/4);
  EXPECT_TRUE(agent.down());
  EXPECT_TRUE(agent.CollectDue(2).empty());  // dead processes don't send
  // Ingest continues upstream while the process is down: the durable
  // log grows, the volatile sketch does not.
  agent.Ingest(std::vector<uint64_t>{9999});
  agent.MaybeRestart(/*now=*/3);  // too early
  EXPECT_TRUE(agent.down());
  agent.MaybeRestart(/*now=*/5);
  EXPECT_FALSE(agent.down());
  EXPECT_EQ(agent.outbox().incarnation(), 1u);

  // Replay covers the full log, including keys that arrived while down.
  KmvSketch reference(64, 1.0, 7);
  reference.AddKeys(agent.log());
  EXPECT_EQ(agent.sketch().SerializeToString(),
            reference.SerializeToString());
  EXPECT_NE(agent.sketch().SerializeToString(), healthy);
  // The post-restart snapshot is emitted under the new incarnation.
  agent.EmitSnapshotIfAdvanced(/*now=*/6);
  auto due = agent.CollectDue(6);
  ASSERT_EQ(due.size(), 1u);
  EnvelopeView view;
  ASSERT_EQ(DecodeEnvelope(due[0], &view), FrameFault::kNone);
  EXPECT_EQ(view.incarnation, 1u);
  EXPECT_EQ(view.epoch, agent.log().size());
}

TEST(Transport, SameSeedReproducesIdenticalDeliverySchedule) {
  FaultProfile chaos;
  chaos.drop_rate = 0.2;
  chaos.duplicate_rate = 0.2;
  chaos.corrupt_rate = 0.2;
  chaos.truncate_rate = 0.1;
  chaos.max_delay_ticks = 6;

  const auto run = [&] {
    FaultyTransport transport(chaos, /*seed=*/99);
    Xoshiro256 payload_rng(5);
    std::vector<std::pair<uint64_t, std::string>> delivered;
    for (uint64_t now = 0; now < 200; ++now) {
      std::string msg(16 + payload_rng.NextBelow(64), '\0');
      for (auto& c : msg) {
        c = static_cast<char>(payload_rng.NextBelow(256));
      }
      transport.Send(now % 3, std::move(msg), now);
      for (const Delivery& d : transport.DeliverDue(now)) {
        delivered.emplace_back(d.to, d.bytes);
      }
    }
    return delivered;
  };
  EXPECT_EQ(run(), run());
}

TEST(Transport, FaultFreeProfileDeliversEverythingOnce) {
  FaultyTransport transport(FaultProfile::None(), 1);
  for (int i = 0; i < 50; ++i) transport.Send(0, "m", /*now=*/0);
  EXPECT_EQ(transport.DeliverDue(/*now=*/1).size(), 50u);
  EXPECT_TRUE(transport.Idle());
  EXPECT_EQ(transport.stats().copies_transmitted, 50u);
  EXPECT_EQ(transport.stats().dropped, 0u);
}

}  // namespace
}  // namespace ats::cluster
