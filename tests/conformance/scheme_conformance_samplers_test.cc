// Conformance-kit instantiation for the sampler-tier families:
// SlidingWindowSampler, TimeDecaySampler, MultiStratifiedSampler,
// VarianceSizedSampler, MultiObjectiveSampler, and BudgetSampler.
// Every Ingest is deterministic in `seed` and key-disjoint across
// seeds (MultiStratifiedSampler::Merge REQUIRES key-disjoint streams;
// the kit feeds seeds 1..16 through DisjointKey).
#include <cmath>
#include <cstdint>
#include <vector>

#include "ats/core/random.h"
#include "ats/samplers/budget_sampler.h"
#include "ats/samplers/multi_objective.h"
#include "ats/samplers/multi_stratified.h"
#include "ats/samplers/sliding_window.h"
#include "ats/samplers/time_decay.h"
#include "ats/samplers/variance_sized.h"
#include "tests/conformance/conformance_kit.h"

namespace ats::conformance {
namespace {

uint64_t DisjointKey(uint64_t seed, size_t i) {
  return seed * 1'000'000 + static_cast<uint64_t>(i);
}

struct SlidingWindowTraits {
  using Sketch = SlidingWindowSampler;
  static constexpr char kName[] = "sliding_window";
  static constexpr persist::SchemeKind kKind =
      persist::SchemeKind::kSlidingWindow;
  static Sketch Make() {
    return SlidingWindowSampler(/*k=*/12, /*window=*/1.0, /*seed=*/0x5eed);
  }
  static void Ingest(Sketch& s, uint64_t seed, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      s.Arrive(/*time=*/0.01 * static_cast<double>(i), DisjointKey(seed, i));
    }
  }
};

struct TimeDecayTraits {
  using Sketch = TimeDecaySampler;
  static constexpr char kName[] = "time_decay";
  static constexpr persist::SchemeKind kKind = persist::SchemeKind::kTimeDecay;
  static Sketch Make() { return TimeDecaySampler(/*k=*/12, /*seed=*/0x5eed); }
  static void Ingest(Sketch& s, uint64_t seed, size_t n) {
    Xoshiro256 rng(seed);
    for (size_t i = 0; i < n; ++i) {
      const double weight = std::exp(0.5 * rng.NextGaussian());
      s.Add(DisjointKey(seed, i), weight, /*value=*/weight,
            /*time=*/0.01 * static_cast<double>(i));
    }
  }
};

struct MultiStratifiedTraits {
  using Sketch = MultiStratifiedSampler;
  static constexpr char kName[] = "multi_stratified";
  static constexpr persist::SchemeKind kKind =
      persist::SchemeKind::kMultiStratified;
  static Sketch Make() {
    return MultiStratifiedSampler(/*num_dimensions=*/2, /*k=*/5,
                                  /*seed=*/0x5eed);
  }
  static void Ingest(Sketch& s, uint64_t seed, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const uint64_t key = DisjointKey(seed, i);
      s.Add(key, {key % 3, key % 4}, /*value=*/1.0 + 0.5 * i);
    }
  }
};

struct VarianceSizedTraits {
  using Sketch = VarianceSizedSampler;
  static constexpr char kName[] = "variance_sized";
  static constexpr persist::SchemeKind kKind =
      persist::SchemeKind::kVarianceSized;
  static Sketch Make() {
    return VarianceSizedSampler(/*delta_squared=*/0.5, /*seed=*/0x5eed);
  }
  static void Ingest(Sketch& s, uint64_t seed, size_t n) {
    Xoshiro256 rng(seed);
    for (size_t i = 0; i < n; ++i) {
      const double weight = std::exp(0.5 * rng.NextGaussian());
      s.Add(DisjointKey(seed, i), /*value=*/weight, weight);
    }
  }
};

struct MultiObjectiveTraits {
  using Sketch = MultiObjectiveSampler;
  static constexpr char kName[] = "multi_objective";
  static constexpr persist::SchemeKind kKind =
      persist::SchemeKind::kMultiObjective;
  static Sketch Make() {
    return MultiObjectiveSampler(/*num_objectives=*/3, /*k=*/8,
                                 /*seed=*/0x5eed);
  }
  static void Ingest(Sketch& s, uint64_t seed, size_t n) {
    Xoshiro256 rng(seed);
    std::vector<double> weights(3);
    for (size_t i = 0; i < n; ++i) {
      for (double& w : weights) w = std::exp(0.5 * rng.NextGaussian());
      s.Add(DisjointKey(seed, i), weights, /*value=*/1.0 + 0.25 * i);
    }
  }
};

struct BudgetTraits {
  using Sketch = BudgetSampler;
  static constexpr char kName[] = "budget";
  static constexpr persist::SchemeKind kKind = persist::SchemeKind::kBudget;
  static Sketch Make() {
    return BudgetSampler(/*budget=*/20.0, /*seed=*/0x5eed);
  }
  static void Ingest(Sketch& s, uint64_t seed, size_t n) {
    Xoshiro256 rng(seed);
    for (size_t i = 0; i < n; ++i) {
      const double size = 0.5 + rng.NextDoubleOpenZero();
      const double weight = std::exp(0.5 * rng.NextGaussian());
      s.Add(DisjointKey(seed, i), size, /*value=*/size * weight, weight);
    }
  }
};

using SamplerFamilies =
    ::testing::Types<SlidingWindowTraits, TimeDecayTraits,
                     MultiStratifiedTraits, VarianceSizedTraits,
                     MultiObjectiveTraits, BudgetTraits>;
INSTANTIATE_TYPED_TEST_SUITE_P(Samplers, SchemeConformance, SamplerFamilies);

}  // namespace
}  // namespace ats::conformance
