// Scheme-conformance kit: one shared oracle every MergeableSketch
// family plugs into via a small traits struct. A family declares
//
//   struct MyTraits {
//     using Sketch = ats::MySketch;
//     static constexpr char kName[] = "my_sketch";      // unique slug
//     static constexpr ats::persist::SchemeKind kKind = ...;
//     static Sketch Make();                      // fixed shape params
//     static void Ingest(Sketch&, uint64_t seed, size_t n);
//   };
//
// and instantiates the battery with
//
//   using MyTypes = ::testing::Types<MyTraits, ...>;
//   INSTANTIATE_TYPED_TEST_SUITE_P(My, SchemeConformance, MyTypes);
//
// Ingest MUST be deterministic in `seed` and produce key-disjoint
// streams for distinct seeds (some families -- MultiStratified --
// require key-disjointness as a Merge precondition; the kit uses
// seeds 1..16).
//
// The battery, per family:
//   * serialize -> deserialize -> serialize byte-stability (empty and
//     ingested states);
//   * DeserializeView accepts exactly what eager Deserialize accepts;
//   * every-prefix-truncation and every-single-bit-flip hostile sweeps
//     fail closed in eager, view, and DiagnoseFrame paths;
//   * MergeManyFrames == the pairwise Deserialize+Merge chain, its
//     all-or-nothing rejection leaves the target byte-identical, and
//     the empty frame list is a strict no-op;
//   * object-level MergeMany == the pairwise Merge chain;
//   * CKP1 checkpoint write -> restore bit-identity under both open
//     modes, plus wrong-kind rejection that leaves the target
//     byte-identical;
//   * MemoryFootprint sanity;
//   * ingest itself is dispatch-invariant (forced-scalar kernels build
//     a byte-identical sketch).
//
// Every leg runs twice: under the ambient SIMD dispatch level and
// again forced to scalar kernels (simd::ScopedSimdLevel), so the wire
// contract cannot silently depend on the kernel tier. Legs whose API a
// family does not expose (e.g. ThetaSketch has no FrameView) skip via
// `if constexpr` -- a skip is visible in the test output, never a
// silent pass.
#ifndef ATS_TESTS_CONFORMANCE_CONFORMANCE_KIT_H_
#define ATS_TESTS_CONFORMANCE_CONFORMANCE_KIT_H_

#include <gtest/gtest.h>

#include <concepts>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ats/core/simd/simd_dispatch.h"
#include "ats/persist/checkpoint.h"
#include "ats/util/serialize.h"

namespace ats::conformance {

// API-presence probes. A family that lacks an optional capability
// skips the corresponding leg (visibly, via GTEST_SKIP).
template <typename S>
inline constexpr bool kHasDeserializeView =
    requires(std::string_view f) { S::DeserializeView(f); };

template <typename S>
inline constexpr bool kHasDiagnoseFrame = requires(std::string_view f) {
  { S::DiagnoseFrame(f) } -> std::same_as<FrameFault>;
};

template <typename S>
inline constexpr bool kHasMergeManyFrames =
    requires(S s, std::span<const std::string_view> fs) {
      { s.MergeManyFrames(fs) } -> std::same_as<bool>;
    };

template <typename S>
inline constexpr bool kHasObjectMergeMany =
    requires(S s, std::span<const S* const> o) { s.MergeMany(o); };

template <typename Traits>
class SchemeConformance : public ::testing::Test {
 protected:
  using Sketch = typename Traits::Sketch;

  // Small enough that the O(length^2) hostile sweep stays fast under
  // sanitizers, large enough that every family retains a non-trivial
  // sample.
  static constexpr size_t kIngestN = 48;

  static Sketch MakeIngested(uint64_t seed, size_t n = kIngestN) {
    Sketch s = Traits::Make();
    Traits::Ingest(s, seed, n);
    return s;
  }

  // The uniform equality oracle: families serialize in canonical order,
  // so byte-equal frames <=> observationally equal sketches.
  static std::string Fingerprint(const Sketch& s) {
    return s.SerializeToString();
  }

  // Runs `body` under the ambient dispatch level, then again forced to
  // scalar kernels. Bodies build all state inside themselves so the
  // scalar pass exercises scalar ingest, not just scalar parsing.
  template <typename Body>
  static void ForEachDispatchLevel(Body body) {
    {
      SCOPED_TRACE("dispatch=default");
      body();
    }
    {
      SCOPED_TRACE("dispatch=forced-scalar");
      simd::ScopedSimdLevel forced(simd::SimdLevel::kScalar);
      body();
    }
  }

  static std::string TempPath(const char* leg) {
    return ::testing::TempDir() + "ats_conformance_" +
           std::string(Traits::kName) + "_" + leg + ".ckpt";
  }
};

TYPED_TEST_SUITE_P(SchemeConformance);

// Serialize -> Deserialize -> Serialize is byte-identical, for the
// fresh (empty) state and an ingested state.
TYPED_TEST_P(SchemeConformance, RoundTripIsByteStable) {
  using Sketch = typename TypeParam::Sketch;
  this->ForEachDispatchLevel([] {
    {
      const Sketch empty = TypeParam::Make();
      const std::string frame = empty.SerializeToString();
      const auto parsed = Sketch::Deserialize(std::string_view(frame));
      ASSERT_TRUE(parsed.has_value()) << "empty frame must parse";
      EXPECT_EQ(parsed->SerializeToString(), frame);
    }
    {
      const Sketch s = SchemeConformance<TypeParam>::MakeIngested(7);
      const std::string frame = s.SerializeToString();
      const auto parsed = Sketch::Deserialize(std::string_view(frame));
      ASSERT_TRUE(parsed.has_value()) << "ingested frame must parse";
      EXPECT_EQ(parsed->SerializeToString(), frame);
    }
  });
}

// DeserializeView accepts every frame eager Deserialize accepts (the
// reject half of the parity contract is swept in HostileBytesFailClosed).
TYPED_TEST_P(SchemeConformance, ViewParityOnIntactFrames) {
  using Sketch = typename TypeParam::Sketch;
  if constexpr (!kHasDeserializeView<Sketch>) {
    GTEST_SKIP() << "family has no DeserializeView";
  } else {
    this->ForEachDispatchLevel([] {
      const std::string empty_frame = TypeParam::Make().SerializeToString();
      EXPECT_TRUE(Sketch::DeserializeView(empty_frame).has_value());
      const std::string frame =
          SchemeConformance<TypeParam>::MakeIngested(7).SerializeToString();
      EXPECT_TRUE(Sketch::DeserializeView(frame).has_value());
      if constexpr (kHasDiagnoseFrame<Sketch>) {
        EXPECT_EQ(Sketch::DiagnoseFrame(frame), FrameFault::kNone);
      }
    });
  }
}

// Every strict prefix and every single-bit flip of a valid frame is
// rejected by the eager parser, the view parser, and DiagnoseFrame
// alike -- no hostile byte string parses on any path.
TYPED_TEST_P(SchemeConformance, HostileBytesFailClosed) {
  using Sketch = typename TypeParam::Sketch;
  this->ForEachDispatchLevel([] {
    const std::string frame =
        SchemeConformance<TypeParam>::MakeIngested(7).SerializeToString();
    ASSERT_TRUE(Sketch::Deserialize(std::string_view(frame)).has_value());

    const auto expect_rejected = [](std::string_view hostile, size_t pos,
                                    const char* what) {
      if (Sketch::Deserialize(hostile).has_value()) {
        FAIL() << what << " at " << pos << " parsed eagerly";
      }
      if constexpr (kHasDeserializeView<Sketch>) {
        if (Sketch::DeserializeView(hostile).has_value()) {
          FAIL() << what << " at " << pos << " parsed as a view";
        }
      }
      if constexpr (kHasDiagnoseFrame<Sketch>) {
        if (Sketch::DiagnoseFrame(hostile) == FrameFault::kNone) {
          FAIL() << what << " at " << pos << " diagnosed clean";
        }
      }
    };

    for (size_t len = 0; len < frame.size(); ++len) {
      expect_rejected(std::string_view(frame).substr(0, len), len, "prefix");
      if (::testing::Test::HasFatalFailure()) return;
    }
    std::string mutated = frame;
    for (size_t pos = 0; pos < frame.size(); ++pos) {
      const char flip = static_cast<char>(1u << (pos % 8));
      mutated[pos] ^= flip;
      expect_rejected(mutated, pos, "bit flip");
      mutated[pos] ^= flip;  // restore
      if (::testing::Test::HasFatalFailure()) return;
    }
  });
}

// MergeManyFrames is observationally the pairwise Deserialize+Merge
// chain; a single bad frame rejects the whole batch with the target
// byte-identical; the empty list is a strict no-op.
TYPED_TEST_P(SchemeConformance, MergeManyFramesMatchesPairwiseChain) {
  using Sketch = typename TypeParam::Sketch;
  if constexpr (!kHasMergeManyFrames<Sketch>) {
    GTEST_SKIP() << "family has no MergeManyFrames";
  } else {
    this->ForEachDispatchLevel([] {
      const Sketch target = SchemeConformance<TypeParam>::MakeIngested(1);
      std::vector<std::string> storage;
      for (uint64_t seed : {2u, 3u, 4u}) {
        storage.push_back(
            SchemeConformance<TypeParam>::MakeIngested(seed)
                .SerializeToString());
      }
      std::vector<std::string_view> frames(storage.begin(), storage.end());

      Sketch chain = target;
      for (std::string_view f : frames) {
        const auto parsed = Sketch::Deserialize(f);
        ASSERT_TRUE(parsed.has_value());
        chain.Merge(*parsed);
      }
      Sketch bulk = target;
      ASSERT_TRUE(bulk.MergeManyFrames(frames));
      EXPECT_EQ(bulk.SerializeToString(), chain.SerializeToString());

      // All-or-nothing: one corrupt frame in the middle rejects the
      // whole batch and leaves the target byte-identical.
      std::string bad = storage[1];
      bad[bad.size() / 2] ^= 0x20;
      frames[1] = bad;
      Sketch victim = target;
      const std::string before = victim.SerializeToString();
      EXPECT_FALSE(victim.MergeManyFrames(frames));
      EXPECT_EQ(victim.SerializeToString(), before);

      // Empty list: strict no-op that still succeeds.
      Sketch untouched = target;
      EXPECT_TRUE(untouched.MergeManyFrames({}));
      EXPECT_EQ(untouched.SerializeToString(), before);
    });
  }
}

// Object-level MergeMany equals the pairwise Merge chain.
TYPED_TEST_P(SchemeConformance, ObjectMergeManyMatchesPairwiseChain) {
  using Sketch = typename TypeParam::Sketch;
  if constexpr (!kHasObjectMergeMany<Sketch>) {
    GTEST_SKIP() << "family has no object-level MergeMany";
  } else {
    this->ForEachDispatchLevel([] {
      const Sketch target = SchemeConformance<TypeParam>::MakeIngested(1);
      const Sketch a = SchemeConformance<TypeParam>::MakeIngested(2);
      const Sketch b = SchemeConformance<TypeParam>::MakeIngested(3);

      Sketch chain = target;
      chain.Merge(a);
      chain.Merge(b);
      Sketch bulk = target;
      const Sketch* others[] = {&a, &b};
      bulk.MergeMany(others);
      EXPECT_EQ(bulk.SerializeToString(), chain.SerializeToString());
    });
  }
}

// CKP1 checkpoint write -> restore reproduces the sketch bit-for-bit
// under both open modes; restoring with the wrong expected kind fails
// with kBadKind and leaves the target byte-identical.
TYPED_TEST_P(SchemeConformance, CheckpointRestoreIsBitIdentical) {
  using Sketch = typename TypeParam::Sketch;
  namespace persist = ats::persist;
  const std::string path = this->TempPath("ckpt");
  this->ForEachDispatchLevel([&path] {
    const Sketch s = SchemeConformance<TypeParam>::MakeIngested(5);
    const std::string frame = s.SerializeToString();
    ASSERT_EQ(persist::CheckpointWriter::Write(path, TypeParam::kKind,
                                               /*epoch=*/42, frame),
              persist::CheckpointFault::kNone);

    for (const persist::OpenMode mode :
         {persist::OpenMode::kPreferMmap, persist::OpenMode::kBuffered}) {
      SCOPED_TRACE(mode == persist::OpenMode::kPreferMmap ? "mmap"
                                                          : "buffered");
      Sketch restored = TypeParam::Make();
      uint64_t epoch = 0;
      ASSERT_EQ(persist::RestoreFromCheckpoint(path, TypeParam::kKind,
                                               &restored, &epoch, mode),
                persist::CheckpointFault::kNone);
      EXPECT_EQ(epoch, 42u);
      EXPECT_EQ(restored.SerializeToString(), frame);
    }

    // Wrong expected kind: rejected before any payload parse, target
    // byte-identical.
    const persist::SchemeKind wrong =
        TypeParam::kKind == persist::SchemeKind::kKmv
            ? persist::SchemeKind::kBottomK
            : persist::SchemeKind::kKmv;
    Sketch victim = SchemeConformance<TypeParam>::MakeIngested(6);
    const std::string before = victim.SerializeToString();
    EXPECT_EQ(persist::RestoreFromCheckpoint(path, wrong, &victim),
              persist::CheckpointFault::kBadKind);
    EXPECT_EQ(victim.SerializeToString(), before);
  });
  std::filesystem::remove(path);
}

// MemoryFootprint reports live heap bytes: positive once data is
// retained, and positive again for a deserialized replica.
TYPED_TEST_P(SchemeConformance, MemoryFootprintSanity) {
  using Sketch = typename TypeParam::Sketch;
  const Sketch s = this->MakeIngested(8);
  EXPECT_GT(s.MemoryFootprint(), 0u);
  const auto replica = Sketch::Deserialize(
      std::string_view(this->Fingerprint(s)));
  ASSERT_TRUE(replica.has_value());
  EXPECT_GT(replica->MemoryFootprint(), 0u);
}

// Forced-scalar ingest builds a byte-identical sketch: the kernel tier
// cannot leak into the wire contract.
TYPED_TEST_P(SchemeConformance, IngestIsDispatchInvariant) {
  const std::string ambient =
      this->Fingerprint(this->MakeIngested(9));
  std::string scalar;
  {
    simd::ScopedSimdLevel forced(simd::SimdLevel::kScalar);
    scalar = this->Fingerprint(this->MakeIngested(9));
  }
  EXPECT_EQ(ambient, scalar);
}

REGISTER_TYPED_TEST_SUITE_P(SchemeConformance,                   //
                            RoundTripIsByteStable,               //
                            ViewParityOnIntactFrames,            //
                            HostileBytesFailClosed,              //
                            MergeManyFramesMatchesPairwiseChain, //
                            ObjectMergeManyMatchesPairwiseChain, //
                            CheckpointRestoreIsBitIdentical,     //
                            MemoryFootprintSanity,               //
                            IngestIsDispatchInvariant);

}  // namespace ats::conformance

#endif  // ATS_TESTS_CONFORMANCE_CONFORMANCE_KIT_H_
