// Conformance-kit instantiation for the core and sketch-tier families:
// BottomK<uint64_t>, PrioritySampler, KmvSketch, ThetaSketch, and
// GroupDistinctSketch. Shape parameters are fixed and small so the
// O(length^2) hostile sweeps stay fast; every Ingest is deterministic
// in `seed` and key-disjoint across seeds (kit contract).
#include <cmath>
#include <cstdint>

#include "ats/core/bottom_k.h"
#include "ats/core/random.h"
#include "ats/sketch/group_distinct.h"
#include "ats/sketch/kmv.h"
#include "ats/sketch/theta.h"
#include "tests/conformance/conformance_kit.h"

namespace ats::conformance {
namespace {

// Seed-disjoint key space: distinct seeds never produce the same key.
uint64_t DisjointKey(uint64_t seed, size_t i) {
  return seed * 1'000'000 + static_cast<uint64_t>(i);
}

struct BottomKU64Traits {
  using Sketch = BottomK<uint64_t>;
  static constexpr char kName[] = "bottom_k_u64";
  static constexpr persist::SchemeKind kKind = persist::SchemeKind::kBottomK;
  static Sketch Make() { return Sketch(12); }
  static void Ingest(Sketch& s, uint64_t seed, size_t n) {
    Xoshiro256 rng(seed);
    for (size_t i = 0; i < n; ++i) {
      s.Offer(rng.NextDoubleOpenZero(), DisjointKey(seed, i));
    }
  }
};

struct PrioritySamplerTraits {
  using Sketch = PrioritySampler;
  static constexpr char kName[] = "priority_sampler";
  static constexpr persist::SchemeKind kKind = persist::SchemeKind::kPriority;
  static Sketch Make() {
    return PrioritySampler(12, /*seed=*/0x5eed, /*coordinated=*/false);
  }
  static void Ingest(Sketch& s, uint64_t seed, size_t n) {
    Xoshiro256 rng(seed);
    for (size_t i = 0; i < n; ++i) {
      s.Add(DisjointKey(seed, i), std::exp(0.5 * rng.NextGaussian()));
    }
  }
};

struct KmvTraits {
  using Sketch = KmvSketch;
  static constexpr char kName[] = "kmv";
  static constexpr persist::SchemeKind kKind = persist::SchemeKind::kKmv;
  static Sketch Make() {
    return KmvSketch(12, /*initial_threshold=*/1.0, /*hash_salt=*/0x5eed);
  }
  static void Ingest(Sketch& s, uint64_t seed, size_t n) {
    for (size_t i = 0; i < n; ++i) s.AddKey(DisjointKey(seed, i));
  }
};

struct ThetaTraits {
  using Sketch = ThetaSketch;
  static constexpr char kName[] = "theta";
  static constexpr persist::SchemeKind kKind = persist::SchemeKind::kTheta;
  static Sketch Make() { return ThetaSketch(12, /*hash_salt=*/0x5eed); }
  static void Ingest(Sketch& s, uint64_t seed, size_t n) {
    for (size_t i = 0; i < n; ++i) s.AddKey(DisjointKey(seed, i));
  }
};

struct GroupDistinctTraits {
  using Sketch = GroupDistinctSketch;
  static constexpr char kName[] = "group_distinct";
  static constexpr persist::SchemeKind kKind =
      persist::SchemeKind::kGroupDistinct;
  static Sketch Make() {
    return GroupDistinctSketch(/*m=*/8, /*k=*/8, /*hash_salt=*/0x5eed);
  }
  static void Ingest(Sketch& s, uint64_t seed, size_t n) {
    Xoshiro256 rng(seed);
    for (size_t i = 0; i < n; ++i) {
      s.Add(/*group=*/rng.NextBelow(8), DisjointKey(seed, i));
    }
  }
};

using CoreFamilies =
    ::testing::Types<BottomKU64Traits, PrioritySamplerTraits, KmvTraits,
                     ThetaTraits, GroupDistinctTraits>;
INSTANTIATE_TYPED_TEST_SUITE_P(Core, SchemeConformance, CoreFamilies);

}  // namespace
}  // namespace ats::conformance
