// Tests for ats/sketch/group_distinct.h (Section 3.6).
#include "ats/sketch/group_distinct.h"

#include <cmath>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "ats/core/random.h"
#include "ats/util/stats.h"
#include "ats/workload/zipf.h"

namespace ats {
namespace {

TEST(GroupDistinct, ExactForFewSmallGroups) {
  GroupDistinctSketch sketch(4, 32);
  for (uint64_t g = 0; g < 3; ++g) {
    for (uint64_t i = 0; i < 20; ++i) sketch.Add(g, i);
  }
  for (uint64_t g = 0; g < 3; ++g) {
    EXPECT_DOUBLE_EQ(sketch.Estimate(g), 20.0) << "group " << g;
    EXPECT_TRUE(sketch.IsPromoted(g));
  }
  EXPECT_DOUBLE_EQ(sketch.Estimate(777), 0.0);
}

TEST(GroupDistinct, PromotesLargeGroupsFromPool) {
  // m = 2 promoted slots, but a third group grows huge: it must displace
  // one of the early (small) promoted groups.
  GroupDistinctSketch sketch(2, 16);
  // Bootstrap: groups 0 and 1 promoted with few items.
  for (uint64_t i = 0; i < 5; ++i) sketch.Add(0, i);
  for (uint64_t i = 0; i < 5; ++i) sketch.Add(1, i);
  // Group 2 arrives with many distinct items.
  for (uint64_t i = 0; i < 5000; ++i) sketch.Add(2, i);
  EXPECT_TRUE(sketch.IsPromoted(2));
  EXPECT_NEAR(sketch.Estimate(2), 5000.0, 2500.0);
}

TEST(GroupDistinct, AddBatchMatchesScalarAddLoop) {
  // The batched path (block-hashed priorities, shared routing core) must
  // be exactly an Add loop in stream order: same promotions, same pool
  // threshold, same estimates -- partial tail blocks included.
  ZipfGenerator groups(500, 1.2, 21);
  Xoshiro256 rng(22);
  std::vector<GroupDistinctSketch::Observation> stream(10000);
  for (auto& obs : stream) {
    obs.group = groups.Next();
    obs.key = rng.NextBelow(3000);
  }
  for (size_t n : {0u, 1u, 63u, 64u, 200u, 10000u}) {
    GroupDistinctSketch batched(8, 32), scalar(8, 32);
    batched.AddBatch(std::span(stream.data(), n));
    for (size_t i = 0; i < n; ++i) {
      scalar.Add(stream[i].group, stream[i].key);
    }
    EXPECT_DOUBLE_EQ(batched.PoolThreshold(), scalar.PoolThreshold())
        << "n=" << n;
    EXPECT_EQ(batched.StoredItems(), scalar.StoredItems()) << "n=" << n;
    EXPECT_EQ(batched.GroupsWithSamples(), scalar.GroupsWithSamples())
        << "n=" << n;
    for (uint64_t g : batched.GroupsWithSamples()) {
      EXPECT_DOUBLE_EQ(batched.Estimate(g), scalar.Estimate(g))
          << "n=" << n << " group=" << g;
    }
  }
}

TEST(GroupDistinct, PoolThresholdMonotoneNonIncreasing) {
  GroupDistinctSketch sketch(4, 16);
  ZipfGenerator groups(100, 1.2, 1);
  Xoshiro256 rng(2);
  double prev = 1.0;
  for (int i = 0; i < 50000; ++i) {
    sketch.Add(groups.Next(), rng.Next());
    ASSERT_LE(sketch.PoolThreshold(), prev);
    prev = sketch.PoolThreshold();
  }
  EXPECT_LT(prev, 1.0);
}

TEST(GroupDistinct, MemoryFarBelowPerGroupSketches) {
  // 2000 groups with Zipf-distributed sizes; a sketch per group would
  // store ~2000*k items if saturated, and at least one per group. The
  // grouped structure should store close to m*k + small pool.
  const size_t m = 8, k = 32;
  GroupDistinctSketch sketch(m, k);
  ZipfGenerator groups(2000, 1.1, 3);
  Xoshiro256 rng(4);
  for (int i = 0; i < 200000; ++i) {
    sketch.Add(groups.Next(), rng.Next());  // values mostly distinct
  }
  EXPECT_LT(sketch.StoredItems(), 6 * m * k);
  // Most tiny groups hold no samples at all.
  EXPECT_LT(sketch.GroupsWithSamples().size(), 600u);
}

TEST(GroupDistinct, LargeGroupEstimatesAreAccurate) {
  const size_t m = 4, k = 64;
  std::map<uint64_t, std::vector<uint64_t>> data;
  Xoshiro256 rng(5);
  // 4 big groups and 50 small ones.
  std::vector<size_t> sizes = {20000, 10000, 5000, 2500};
  for (uint64_t g = 0; g < 54; ++g) {
    const size_t n = g < 4 ? sizes[g] : 20;
    auto& keys = data[g];
    for (size_t i = 0; i < n; ++i) {
      keys.push_back((g << 40) + i);
    }
  }
  GroupDistinctSketch sketch(m, k);
  // Interleave arrivals.
  bool any = true;
  size_t round = 0;
  while (any) {
    any = false;
    for (auto& [g, keys] : data) {
      for (size_t rep = 0; rep < 50; ++rep) {
        const size_t idx = round * 50 + rep;
        if (idx < keys.size()) {
          sketch.Add(g, keys[idx]);
          any = true;
        }
      }
    }
    ++round;
  }
  (void)rng;
  for (uint64_t g = 0; g < 4; ++g) {
    const double truth = double(data[g].size());
    EXPECT_NEAR(sketch.Estimate(g), truth, 4.0 * truth / std::sqrt(double(k)))
        << "group " << g;
  }
}

TEST(GroupDistinct, PoolGroupEstimatesArePlausible) {
  const size_t m = 2, k = 32;
  GroupDistinctSketch sketch(m, k);
  // Two huge promoted groups drive the pool threshold down.
  for (uint64_t i = 0; i < 30000; ++i) sketch.Add(0, i);
  for (uint64_t i = 0; i < 30000; ++i) sketch.Add(1, i);
  // A mid-size pool group.
  for (uint64_t i = 0; i < 3000; ++i) sketch.Add(7, i);
  EXPECT_FALSE(sketch.IsPromoted(7));
  // Pool estimate has resolution ~1/T_max; just check the right order of
  // magnitude (within a factor of ~4 either way is fine at this k).
  const double est = sketch.Estimate(7);
  EXPECT_GE(est, 0.0);
  EXPECT_LT(est, 14000.0);
}

TEST(GroupDistinct, DuplicateKeysDoNotInflate) {
  GroupDistinctSketch sketch(2, 16);
  for (int rep = 0; rep < 100; ++rep) {
    for (uint64_t i = 0; i < 10; ++i) sketch.Add(0, i);
  }
  EXPECT_DOUBLE_EQ(sketch.Estimate(0), 10.0);
}

TEST(GroupDistinct, MergeOfDisjointShardsKeepsEstimatesAccurate) {
  // Two workers each see half of every group's keys; the merged sketch
  // must estimate the union sizes about as well as a single sketch that
  // saw everything.
  const size_t m = 8, k = 64;
  GroupDistinctSketch a(m, k, 3), b(m, k, 3), whole(m, k, 3);
  Xoshiro256 rng(29);
  std::map<uint64_t, uint64_t> truth;
  for (uint64_t g = 0; g < 20; ++g) {
    const uint64_t n = 50 + 400 * g;  // group sizes 50 .. 7650
    truth[g] = n;
    for (uint64_t i = 0; i < n; ++i) {
      whole.Add(g, i);
      (i % 2 == 0 ? a : b).Add(g, i);
    }
  }
  a.Merge(b);
  for (const auto& [g, n] : truth) {
    const double merged_est = a.Estimate(g);
    const double whole_est = whole.Estimate(g);
    if (whole_est == 0.0) continue;  // below resolution in both
    // Merged estimate within 50% of truth for groups the single sketch
    // also resolves (both are HT counts with sd ~ n/sqrt(k)).
    EXPECT_NEAR(merged_est, double(n), 0.5 * double(n) + 40.0)
        << "group " << g << " whole=" << whole_est;
  }
}

TEST(GroupDistinct, SelfMergeIsANoOp) {
  GroupDistinctSketch sketch(2, 16, 1);
  for (uint64_t g = 0; g < 5; ++g) {
    for (uint64_t i = 0; i < 100 * (g + 1); ++i) sketch.Add(g, i);
  }
  const double before0 = sketch.Estimate(0);
  const double before4 = sketch.Estimate(4);
  const size_t stored = sketch.StoredItems();
  sketch.Merge(sketch);
  EXPECT_DOUBLE_EQ(sketch.Estimate(0), before0);
  EXPECT_DOUBLE_EQ(sketch.Estimate(4), before4);
  EXPECT_EQ(sketch.StoredItems(), stored);
}

TEST(GroupDistinct, SerializeRoundTripPreservesEstimates) {
  GroupDistinctSketch sketch(4, 32, 7);
  ZipfGenerator groups(200, 1.2, 31);
  Xoshiro256 rng(33);
  for (int i = 0; i < 20000; ++i) sketch.Add(groups.Next(), rng.Next());

  const auto restored =
      GroupDistinctSketch::Deserialize(sketch.SerializeToString());
  ASSERT_TRUE(restored.has_value());
  EXPECT_DOUBLE_EQ(restored->PoolThreshold(), sketch.PoolThreshold());
  EXPECT_EQ(restored->StoredItems(), sketch.StoredItems());
  for (uint64_t g : sketch.GroupsWithSamples()) {
    EXPECT_DOUBLE_EQ(restored->Estimate(g), sketch.Estimate(g));
  }
}

TEST(GroupDistinct, DeserializeRejectsCorruptInput) {
  GroupDistinctSketch sketch(2, 8, 1);
  for (uint64_t i = 0; i < 500; ++i) sketch.Add(i % 5, i);
  const std::string bytes = sketch.SerializeToString();
  EXPECT_FALSE(GroupDistinctSketch::Deserialize("").has_value());
  EXPECT_FALSE(GroupDistinctSketch::Deserialize(
                   std::string_view(bytes).substr(0, 15))
                   .has_value());
  EXPECT_FALSE(GroupDistinctSketch::Deserialize(bytes + "x").has_value());
  std::string bad = bytes;
  bad[1] ^= 0x40;
  EXPECT_FALSE(GroupDistinctSketch::Deserialize(bad).has_value());
}

}  // namespace
}  // namespace ats
