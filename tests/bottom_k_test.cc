// Tests for ats/core/bottom_k.h: threshold correctness against a brute
// force oracle, merge semantics, and HT unbiasedness of priority sampling.
#include "ats/core/bottom_k.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "ats/core/ht_estimator.h"
#include "ats/util/stats.h"
#include "ats/workload/synthetic.h"

namespace ats {
namespace {

TEST(BottomK, UnderfullHasInfiniteThreshold) {
  BottomK<int> sketch(5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(sketch.Offer(0.1 * (i + 1), i));
  }
  EXPECT_EQ(sketch.Threshold(), kInfiniteThreshold);
  EXPECT_FALSE(sketch.saturated());
  EXPECT_EQ(sketch.size(), 5u);
}

TEST(BottomK, ThresholdIsKPlusOneSmallest) {
  Xoshiro256 rng(1);
  for (size_t k : {1u, 3u, 10u, 50u}) {
    BottomK<int> sketch(k);
    std::vector<double> all;
    for (int i = 0; i < 300; ++i) {
      const double p = rng.NextDoubleOpenZero();
      all.push_back(p);
      sketch.Offer(p, i);
    }
    std::sort(all.begin(), all.end());
    EXPECT_DOUBLE_EQ(sketch.Threshold(), all[k]) << "k=" << k;
    // Retained = exactly the k smallest.
    auto entries = sketch.SortedEntries();
    ASSERT_EQ(entries.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_DOUBLE_EQ(entries[i].priority, all[i]);
    }
  }
}

TEST(BottomK, RetainedIffBelowThreshold) {
  Xoshiro256 rng(2);
  BottomK<int> sketch(8);
  for (int i = 0; i < 1000; ++i) sketch.Offer(rng.NextDoubleOpenZero(), i);
  for (const auto& e : sketch.entries()) {
    EXPECT_LT(e.priority, sketch.Threshold());
  }
}

TEST(BottomK, MergeEqualsSingleStream) {
  Xoshiro256 rng(3);
  std::vector<double> stream;
  for (int i = 0; i < 500; ++i) stream.push_back(rng.NextDoubleOpenZero());

  BottomK<int> whole(16), left(16), right(16);
  for (size_t i = 0; i < stream.size(); ++i) {
    whole.Offer(stream[i], static_cast<int>(i));
    (i % 2 == 0 ? left : right).Offer(stream[i], static_cast<int>(i));
  }
  left.Merge(right);
  EXPECT_DOUBLE_EQ(left.Threshold(), whole.Threshold());
  auto a = left.SortedEntries();
  auto b = whole.SortedEntries();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].priority, b[i].priority);
    EXPECT_EQ(a[i].payload, b[i].payload);
  }
}

TEST(BottomK, LowerThresholdPurges) {
  BottomK<int> sketch(4);
  sketch.Offer(0.1, 1);
  sketch.Offer(0.2, 2);
  sketch.Offer(0.3, 3);
  sketch.LowerThreshold(0.25);
  EXPECT_EQ(sketch.size(), 2u);
  EXPECT_DOUBLE_EQ(sketch.Threshold(), 0.25);
  // Offers at/above the new threshold are rejected.
  EXPECT_FALSE(sketch.Offer(0.26, 4));
}

TEST(BottomK, DuplicatePrioritiesAllowed) {
  BottomK<int> sketch(2);
  EXPECT_TRUE(sketch.Offer(0.5, 1));
  EXPECT_TRUE(sketch.Offer(0.5, 2));
  // A third tie may still be buffered under the chunked acceptance
  // bound, but the canonical state is exact: two retained entries and
  // the tie value as the (k+1)-th-smallest threshold.
  sketch.Offer(0.5, 3);
  EXPECT_DOUBLE_EQ(sketch.Threshold(), 0.5);
  EXPECT_EQ(sketch.size(), 2u);
  // Once the bound is canonical, further ties are rejected outright.
  EXPECT_FALSE(sketch.Offer(0.5, 4));
  EXPECT_EQ(sketch.size(), 2u);
}

// --- Priority sampling (weighted bottom-k) properties ---

struct PsParam {
  size_t k;
  uint64_t seed;
};

class PrioritySamplerTest : public ::testing::TestWithParam<PsParam> {};

TEST_P(PrioritySamplerTest, HtTotalIsUnbiased) {
  const auto [k, seed] = GetParam();
  const auto population = MakeWeightedPopulation(400, 99, true);
  double truth = 0.0;
  for (const auto& it : population) truth += it.weight;

  RunningStat estimates;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    PrioritySampler sampler(k, seed + static_cast<uint64_t>(t) * 7919);
    for (const auto& it : population) sampler.Add(it.key, it.weight);
    const auto sample = sampler.Sample();
    estimates.Add(HtTotal(sample));
  }
  // Mean over trials within 4 standard errors of the truth.
  const double se = estimates.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(estimates.mean(), truth, 4.0 * se + 1e-9)
      << "k=" << k << " seed=" << seed;
}

TEST_P(PrioritySamplerTest, SampleSizeIsExactlyK) {
  const auto [k, seed] = GetParam();
  PrioritySampler sampler(k, seed);
  for (uint64_t i = 0; i < 50 + 10 * k; ++i) {
    sampler.Add(i, 1.0 + static_cast<double>(i % 7));
  }
  EXPECT_EQ(sampler.size(), k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrioritySamplerTest,
    ::testing::Values(PsParam{5, 1}, PsParam{20, 2}, PsParam{50, 3},
                      PsParam{100, 4}));

TEST(PrioritySampler, VarianceEstimateTracksEmpiricalVariance) {
  const auto population = MakeWeightedPopulation(500, 7, true);
  double truth = 0.0;
  for (const auto& it : population) truth += it.weight;

  RunningStat estimates, variance_estimates;
  for (int t = 0; t < 300; ++t) {
    PrioritySampler sampler(40, 1000 + static_cast<uint64_t>(t));
    for (const auto& it : population) sampler.Add(it.key, it.weight);
    const auto sample = sampler.Sample();
    estimates.Add(HtTotal(sample));
    variance_estimates.Add(HtVarianceEstimate(sample));
  }
  // E[variance estimate] should match the empirical estimator variance
  // within a loose factor (both are noisy).
  const double empirical = estimates.SampleVariance();
  EXPECT_GT(variance_estimates.mean(), 0.3 * empirical);
  EXPECT_LT(variance_estimates.mean(), 3.0 * empirical);
}

TEST(PrioritySampler, CoordinatedSamplesShareItems) {
  // Two coordinated samplers over the same keys retain mostly the same
  // keys (same priorities, same thresholds); independent ones do not.
  const auto population = MakeWeightedPopulation(2000, 11, true);
  PrioritySampler a(50, 1, /*coordinated=*/true);
  PrioritySampler b(50, 2, /*coordinated=*/true);
  PrioritySampler c(50, 3, /*coordinated=*/false);
  for (const auto& it : population) {
    a.Add(it.key, it.weight);
    b.Add(it.key, it.weight);
    c.Add(it.key, it.weight);
  }
  auto keys = [](const PrioritySampler& s) {
    std::vector<uint64_t> out;
    for (const auto& e : s.Sample()) out.push_back(e.key);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(keys(a), keys(b));
  EXPECT_NE(keys(a), keys(c));
}

TEST(BottomK, SelfMergeIsANoOp) {
  // Regression: Merge(*this) used to mutate the heap while iterating it.
  Xoshiro256 rng(21);
  BottomK<int> sketch(8);
  for (int i = 0; i < 200; ++i) sketch.Offer(rng.NextDoubleOpenZero(), i);
  const auto before = sketch.SortedEntries();
  const double threshold_before = sketch.Threshold();

  sketch.Merge(sketch);

  EXPECT_DOUBLE_EQ(sketch.Threshold(), threshold_before);
  const auto after = sketch.SortedEntries();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_DOUBLE_EQ(after[i].priority, before[i].priority);
    EXPECT_EQ(after[i].payload, before[i].payload);
  }
}

TEST(BottomK, MergeThroughReferenceAliasIsSafe) {
  BottomK<int> sketch(4);
  for (int i = 0; i < 50; ++i) sketch.Offer(0.01 * (i + 1), i);
  const BottomK<int>& alias = sketch;
  const size_t size_before = sketch.size();
  sketch.Merge(alias);
  EXPECT_EQ(sketch.size(), size_before);
}

TEST(BottomK, OfferBatchMatchesScalarOffers) {
  Xoshiro256 rng(22);
  std::vector<double> priorities(4000);
  std::vector<int> payloads(4000);
  for (size_t i = 0; i < priorities.size(); ++i) {
    priorities[i] = rng.NextDoubleOpenZero();
    payloads[i] = static_cast<int>(i);
  }
  BottomK<int> scalar(32), batched(32);
  for (size_t i = 0; i < priorities.size(); ++i) {
    scalar.Offer(priorities[i], payloads[i]);
  }
  batched.OfferBatch(priorities, payloads);
  EXPECT_DOUBLE_EQ(batched.Threshold(), scalar.Threshold());
  const auto a = batched.SortedEntries();
  const auto b = scalar.SortedEntries();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].priority, b[i].priority);
    EXPECT_EQ(a[i].payload, b[i].payload);
  }
}

}  // namespace
}  // namespace ats
