// Tests for ats/core/cps.h: exact Conditional Poisson Sampling
// (Section 2.2's reference fixed-size design).
#include "ats/core/cps.h"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "ats/util/stats.h"

namespace ats {
namespace {

TEST(Cps, DrawsExactlyKDistinctItems) {
  std::vector<double> p = {0.2, 0.5, 0.7, 0.3, 0.6, 0.4};
  ConditionalPoissonSampler sampler(p, 3);
  Xoshiro256 rng(1);
  for (int t = 0; t < 200; ++t) {
    const auto sample = sampler.Draw(rng);
    ASSERT_EQ(sample.size(), 3u);
    for (size_t i = 1; i < sample.size(); ++i) {
      ASSERT_LT(sample[i - 1], sample[i]);  // ascending, distinct
    }
  }
}

TEST(Cps, InclusionProbabilitiesSumToK) {
  std::vector<double> p = {0.1, 0.9, 0.4, 0.6, 0.5, 0.3, 0.8};
  for (size_t k : {1u, 3u, 5u}) {
    ConditionalPoissonSampler sampler(p, k);
    const auto& pi = sampler.InclusionProbabilities();
    double total = 0.0;
    for (double x : pi) {
      EXPECT_GT(x, 0.0);
      EXPECT_LT(x, 1.0);
      total += x;
    }
    EXPECT_NEAR(total, double(k), 1e-9) << "k=" << k;
  }
}

TEST(Cps, InclusionProbabilitiesMatchBruteForceEnumeration) {
  // n = 5, k = 2: enumerate all 10 subsets exactly.
  const std::vector<double> p = {0.3, 0.6, 0.2, 0.8, 0.5};
  ConditionalPoissonSampler sampler(p, 2);
  std::vector<double> brute(5, 0.0);
  double total = 0.0;
  for (int mask = 0; mask < 32; ++mask) {
    if (__builtin_popcount(mask) != 2) continue;
    double prob = 1.0;
    for (int i = 0; i < 5; ++i) {
      prob *= (mask >> i) & 1 ? p[i] : 1.0 - p[i];
    }
    total += prob;
    for (int i = 0; i < 5; ++i) {
      if ((mask >> i) & 1) brute[i] += prob;
    }
  }
  const auto& pi = sampler.InclusionProbabilities();
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(pi[i], brute[i] / total, 1e-12) << "item " << i;
  }
}

TEST(Cps, EmpiricalInclusionMatchesExact) {
  const std::vector<double> p = {0.15, 0.75, 0.4, 0.55, 0.3, 0.65, 0.5,
                                 0.25};
  ConditionalPoissonSampler sampler(p, 4);
  const auto& pi = sampler.InclusionProbabilities();
  std::vector<int64_t> counts(p.size(), 0);
  Xoshiro256 rng(2);
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    for (size_t i : sampler.Draw(rng)) ++counts[i];
  }
  for (size_t i = 0; i < p.size(); ++i) {
    const double freq = double(counts[i]) / trials;
    const double se = std::sqrt(pi[i] * (1.0 - pi[i]) / trials);
    EXPECT_NEAR(freq, pi[i], 5.0 * se) << "item " << i;
  }
}

TEST(Cps, EqualProbabilitiesAreUniform) {
  std::vector<double> p(6, 0.5);
  ConditionalPoissonSampler sampler(p, 3);
  const auto& pi = sampler.InclusionProbabilities();
  for (double x : pi) EXPECT_NEAR(x, 0.5, 1e-12);
}

TEST(Cps, WorkingProbabilitiesHitPpsTargets) {
  // PPS targets pi_i = k w_i / W.
  Xoshiro256 rng(3);
  const size_t n = 20, k = 5;
  std::vector<double> w(n);
  double total = 0.0;
  for (double& x : w) {
    x = 0.5 + rng.NextDouble();
    total += x;
  }
  std::vector<double> target(n);
  for (size_t i = 0; i < n; ++i) target[i] = double(k) * w[i] / total;
  const auto working = CpsWorkingProbabilities(target, k, 1e-9);
  ConditionalPoissonSampler sampler(working, k);
  const auto& pi = sampler.InclusionProbabilities();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(pi[i], target[i], 1e-7) << "item " << i;
  }
}

TEST(Cps, HtWithExactInclusionIsUnbiased) {
  // The point of computing exact CPS inclusion probabilities: plain HT
  // over CPS samples is unbiased.
  Xoshiro256 rng(4);
  const size_t n = 15, k = 5;
  std::vector<double> values(n), p(n);
  double truth = 0.0;
  for (size_t i = 0; i < n; ++i) {
    values[i] = 1.0 + rng.NextDouble();
    p[i] = 0.2 + 0.6 * rng.NextDouble();
    truth += values[i];
  }
  ConditionalPoissonSampler sampler(p, k);
  const auto& pi = sampler.InclusionProbabilities();
  RunningStat est;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    double e = 0.0;
    for (size_t i : sampler.Draw(rng)) e += values[i] / pi[i];
    est.Add(e);
  }
  const double se = est.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(est.mean(), truth, 4.0 * se);
}

}  // namespace
}  // namespace ats
