// Edge-case and degenerate-input tests across the library: k = 1,
// single-item streams, empty samples, extreme weights, and adversarial
// orderings. These guard the boundaries the property suites rarely hit.
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "ats/baselines/varopt.h"
#include "ats/core/bottom_k.h"
#include "ats/core/ht_estimator.h"
#include "ats/samplers/budget_sampler.h"
#include "ats/samplers/multi_stratified.h"
#include "ats/samplers/sliding_window.h"
#include "ats/samplers/time_decay.h"
#include "ats/samplers/topk_sampler.h"
#include "ats/sketch/group_distinct.h"
#include "ats/sketch/kmv.h"
#include "ats/util/stats.h"

namespace ats {
namespace {

TEST(EdgeCases, BottomKWithKOne) {
  BottomK<int> sketch(1);
  sketch.Offer(0.5, 1);
  sketch.Offer(0.3, 2);
  sketch.Offer(0.7, 3);
  EXPECT_EQ(sketch.size(), 1u);
  EXPECT_DOUBLE_EQ(sketch.entries()[0].priority, 0.3);
  EXPECT_DOUBLE_EQ(sketch.Threshold(), 0.5);
}

TEST(EdgeCases, BottomKDescendingStream) {
  // Every arrival evicts: the worst case for the heap.
  BottomK<int> sketch(3);
  for (int i = 100; i > 0; --i) {
    sketch.Offer(0.001 * i, i);
  }
  const auto entries = sketch.SortedEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_DOUBLE_EQ(entries[0].priority, 0.001);
  EXPECT_DOUBLE_EQ(sketch.Threshold(), 0.004);
}

TEST(EdgeCases, BottomKAscendingStream) {
  // No arrival after the k-th is ever retained in the canonical state.
  // Acceptance is chunked: arrivals 4..2k are buffered until the first
  // compaction tightens the bound to the (k+1)-th smallest; after that
  // every later (larger) arrival is rejected outright.
  BottomK<int> sketch(3);
  for (int i = 1; i <= 100; ++i) {
    const bool accepted = sketch.Offer(0.001 * i, i);
    if (i <= 3) EXPECT_TRUE(accepted);
    if (i > 6) EXPECT_FALSE(accepted) << i;  // past the 2k warm-up buffer
  }
  EXPECT_DOUBLE_EQ(sketch.Threshold(), 0.004);
  const auto entries = sketch.SortedEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_DOUBLE_EQ(entries.back().priority, 0.003);
}

TEST(EdgeCases, EmptySampleEstimatesAreZero) {
  std::vector<SampleEntry> empty;
  EXPECT_EQ(HtTotal(empty), 0.0);
  EXPECT_EQ(HtCount(empty), 0.0);
  EXPECT_EQ(HtVarianceEstimate(empty), 0.0);
  EXPECT_EQ(PairwiseHtSum(empty, [](const SampleEntry&,
                                    const SampleEntry&) { return 1.0; }),
            0.0);
}

TEST(EdgeCases, BudgetExactlyOneItem) {
  BudgetSampler sampler(5.0, 1);
  EXPECT_TRUE(sampler.Add(0, 5.0, 1.0));  // exactly fills the budget
  EXPECT_FALSE(sampler.Add(1, 5.0001, 1.0));
  EXPECT_EQ(sampler.size(), 1u);
}

TEST(EdgeCases, BudgetManyTinyItems) {
  BudgetSampler sampler(10.0, 2);
  for (uint64_t i = 0; i < 5000; ++i) sampler.Add(i, 0.01, 1.0);
  EXPECT_LE(sampler.UsedBudget(), 10.0);
  EXPECT_GE(sampler.size(), 990u);
  EXPECT_LE(sampler.size(), 1000u);
}

TEST(EdgeCases, TopKSamplerKOne) {
  TopKSampler sampler(1, 3);
  for (int i = 0; i < 1000; ++i) sampler.Add(7);
  for (int i = 0; i < 10; ++i) sampler.Add(static_cast<uint64_t>(100 + i));
  const auto top = sampler.TopK();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 7u);
}

TEST(EdgeCases, TopKSamplerSingleRepeatedItem) {
  TopKSampler sampler(5, 4);
  for (int i = 0; i < 100000; ++i) sampler.Add(42);
  EXPECT_DOUBLE_EQ(sampler.EstimatedCount(42), 100000.0);
  EXPECT_EQ(sampler.size(), 1u);
}

TEST(EdgeCases, SlidingWindowSingleArrival) {
  SlidingWindowSampler sampler(10, 1.0, 5);
  EXPECT_TRUE(sampler.Arrive(0.5, 1));
  EXPECT_EQ(sampler.ImprovedSample(1.0).size(), 1u);
  // After the item expires the sample is empty.
  EXPECT_EQ(sampler.ImprovedSample(2.0).size(), 0u);
}

TEST(EdgeCases, SlidingWindowBigGapResets) {
  SlidingWindowSampler sampler(5, 1.0, 6);
  for (uint64_t i = 0; i < 100; ++i) {
    sampler.Arrive(0.001 * static_cast<double>(i), i);
  }
  // Silence for 10 windows; everything must be gone.
  EXPECT_EQ(sampler.StoredCount(10.0), 0u);
  // The sampler resumes cleanly.
  EXPECT_TRUE(sampler.Arrive(10.5, 1000));
  EXPECT_EQ(sampler.ImprovedSample(10.6).size(), 1u);
}

TEST(EdgeCases, KmvSmallerUniverseThanK) {
  KmvSketch sketch(1000);
  for (int rep = 0; rep < 3; ++rep) {
    for (uint64_t i = 0; i < 200; ++i) sketch.AddKey(i);
  }
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 200.0);
  EXPECT_FALSE(sketch.saturated());
}

TEST(EdgeCases, KmvKOne) {
  KmvSketch sketch(1);
  for (uint64_t i = 0; i < 1000; ++i) sketch.AddKey(i);
  EXPECT_EQ(sketch.size(), 1u);
  EXPECT_GT(sketch.Estimate(), 50.0);  // 1/theta, very noisy but positive
}

TEST(EdgeCases, VarOptEqualWeightsIsUniform) {
  // With equal weights VarOpt degenerates to uniform sampling: every
  // adjusted weight equals total/k.
  VarOptSampler sampler(10, 7);
  for (uint64_t i = 0; i < 500; ++i) sampler.Add(i, 2.0);
  for (const auto& e : sampler.Sample()) {
    EXPECT_NEAR(e.adjusted_weight, 1000.0 / 10.0, 1e-9);
  }
}

TEST(EdgeCases, TimeDecayAllSameTimestamp) {
  TimeDecaySampler sampler(5, 8);
  for (uint64_t i = 0; i < 100; ++i) sampler.Add(i, 1.0, 1.0, 1.0);
  EXPECT_EQ(sampler.size(), 5u);
  // At the common timestamp the decayed total is just the count.
  RunningStat est;
  for (uint64_t s = 0; s < 200; ++s) {
    TimeDecaySampler t(5, 100 + s);
    for (uint64_t i = 0; i < 100; ++i) t.Add(i, 1.0, 1.0, 1.0);
    est.Add(t.EstimateDecayedTotal(1.0));
  }
  EXPECT_NEAR(est.mean(), 100.0, 4.0 * est.StdDev() / std::sqrt(200.0));
}

TEST(EdgeCases, MultiStratifiedSingleDimensionIsPlainStratified) {
  MultiStratifiedSampler sampler(1, 3, 9);
  for (uint64_t i = 0; i < 300; ++i) {
    sampler.Add(i, {i % 4}, 1.0);
  }
  for (uint64_t s = 0; s < 4; ++s) {
    EXPECT_EQ(sampler.StratumSize(0, s), 3u);
  }
  EXPECT_EQ(sampler.size(), 12u);
}

TEST(EdgeCases, GroupDistinctSingleGroup) {
  GroupDistinctSketch sketch(4, 32);
  for (uint64_t i = 0; i < 10000; ++i) sketch.Add(1, i);
  EXPECT_NEAR(sketch.Estimate(1), 10000.0, 10000.0);
  EXPECT_EQ(sketch.NumPromoted(), 1u);
}

TEST(EdgeCases, ExtremeWeightRatios) {
  // 12 orders of magnitude between weights: HT still behaves.
  PrioritySampler sampler(20, 10);
  sampler.Add(0, 1e9);
  for (uint64_t i = 1; i < 2000; ++i) sampler.Add(i, 1e-3);
  const auto sample = sampler.Sample();
  bool found_heavy = false;
  for (const auto& e : sample) {
    if (e.key == 0) {
      found_heavy = true;
      EXPECT_NEAR(e.InclusionProbability(), 1.0, 1e-9);
    }
  }
  EXPECT_TRUE(found_heavy);
  // The heavy item is exact; the light mass (~2.0 total) is estimated
  // from ~19 sampled light items, so allow a few units of HT noise.
  const double est = HtTotal(sample);
  EXPECT_NEAR(est, 1e9 + 1999.0 * 1e-3, 3.0);
}

TEST(EdgeCases, SampleEntryInfiniteThresholdMeansCertainInclusion) {
  const SampleEntry e = MakeWeightedEntry(1, 0.001, 500.0,
                                          kInfiniteThreshold);
  EXPECT_DOUBLE_EQ(e.InclusionProbability(), 1.0);
}

}  // namespace
}  // namespace ats
