// Tests for ats/samplers/time_decay.h (Section 2.9).
#include "ats/samplers/time_decay.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ats/util/stats.h"

namespace ats {
namespace {

TEST(TimeDecay, SizeBoundedByK) {
  TimeDecaySampler sampler(10, 1);
  for (uint64_t i = 0; i < 1000; ++i) {
    sampler.Add(i, 1.0, 1.0, static_cast<double>(i) * 0.01);
  }
  EXPECT_EQ(sampler.size(), 10u);
}

TEST(TimeDecay, RecentItemsDominateSample) {
  // With decay rate 1, items older than a few time units have negligible
  // decayed weight; the sample should consist mostly of recent arrivals.
  TimeDecaySampler sampler(20, 2);
  for (uint64_t i = 0; i < 2000; ++i) {
    sampler.Add(i, 1.0, 1.0, static_cast<double>(i) * 0.01);  // ends at t=20
  }
  int recent = 0;
  for (const auto& e : sampler.SampleAt(20.0)) {
    if (e.arrival_time > 15.0) ++recent;
  }
  EXPECT_GT(recent, 15);
}

TEST(TimeDecay, InclusionProbabilitiesAreValid) {
  TimeDecaySampler sampler(15, 3);
  Xoshiro256 rng(4);
  for (uint64_t i = 0; i < 500; ++i) {
    sampler.Add(i, std::exp(rng.NextGaussian()), 1.0,
                static_cast<double>(i) * 0.02);
  }
  for (const auto& e : sampler.SampleAt(10.0)) {
    EXPECT_GT(e.inclusion_probability, 0.0);
    EXPECT_LE(e.inclusion_probability, 1.0);
    EXPECT_GE(e.decayed_weight, 0.0);
  }
}

TEST(TimeDecay, EstimateIsUnbiasedForDecayedTotal) {
  // Fixed arrival schedule; true decayed total at query time is known.
  const size_t n = 400;
  std::vector<double> weights(n), times(n);
  Xoshiro256 setup(5);
  const double now = 8.0;
  double truth = 0.0;
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 0.5 + setup.NextDouble();
    times[i] = now * static_cast<double>(i) / static_cast<double>(n);
    truth += weights[i] * std::exp(-(now - times[i]));
  }
  RunningStat est;
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    TimeDecaySampler sampler(25, 1000 + static_cast<uint64_t>(t));
    for (size_t i = 0; i < n; ++i) {
      sampler.Add(i, weights[i], 1.0, times[i]);
    }
    est.Add(sampler.EstimateDecayedTotal(now));
  }
  const double se = est.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(est.mean(), truth, 4.0 * se);
}

TEST(TimeDecay, UnderfullSketchIsExact) {
  TimeDecaySampler sampler(100, 7);
  double truth = 0.0;
  const double now = 2.0;
  for (uint64_t i = 0; i < 20; ++i) {
    const double t = 0.1 * static_cast<double>(i);
    sampler.Add(i, 2.0, 1.0, t);
    truth += 2.0 * std::exp(-(now - t));
  }
  EXPECT_NEAR(sampler.EstimateDecayedTotal(now), truth, 1e-9);
}

TEST(TimeDecay, LateHeavyItemEvictsOldLight) {
  TimeDecaySampler sampler(5, 8);
  for (uint64_t i = 0; i < 50; ++i) {
    sampler.Add(i, 1.0, 1.0, 0.0);
  }
  // A much later arrival is effectively guaranteed in.
  EXPECT_TRUE(sampler.Add(999, 1.0, 1.0, 30.0));
}

}  // namespace
}  // namespace ats
