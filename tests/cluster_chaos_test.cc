// Chaos test matrix for the aggregation cluster (ISSUE 7 acceptance):
// sweeps fault profiles -- drop / duplicate / reorder / corrupt /
// truncate at rates up to 20%, plus agent crash/restart -- across flat
// and fan-in-tree topologies, asserting that
//   (a) with acks + retries, every scenario converges the root
//       BIT-EXACTLY to the fault-free flat merge of all agent logs,
//   (b) the root estimate stays within the Horvitz-Thompson confidence
//       bound of the exact distinct count over the applied coverage at
//       every intermediate step (graceful degradation, never a wrong
//       answer),
//   (c) corrupt/truncated frames are rejected with typed reasons and
//       never merged, and
//   (d) a fixed seed reproduces the entire run byte-identically.
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "ats/cluster/cluster.h"
#include "ats/sketch/kmv.h"

namespace ats::cluster {
namespace {

struct Scenario {
  const char* name;
  FaultProfile faults;
  double crash_rate = 0.0;
};

std::vector<Scenario> Scenarios() {
  std::vector<Scenario> s;
  s.push_back({"fault_free", FaultProfile::None()});
  {
    FaultProfile p;
    p.drop_rate = 0.2;
    s.push_back({"drop20", p});
  }
  {
    FaultProfile p;
    p.duplicate_rate = 0.2;
    s.push_back({"duplicate20", p});
  }
  {
    FaultProfile p;
    p.max_delay_ticks = 9;  // jitter window: heavy reordering
    s.push_back({"reorder", p});
  }
  {
    FaultProfile p;
    p.corrupt_rate = 0.2;
    s.push_back({"corrupt20", p});
  }
  {
    FaultProfile p;
    p.truncate_rate = 0.2;
    s.push_back({"truncate20", p});
  }
  {
    FaultProfile p;
    p.drop_rate = 0.1;
    p.duplicate_rate = 0.1;
    p.corrupt_rate = 0.1;
    p.truncate_rate = 0.1;
    p.max_delay_ticks = 5;
    s.push_back({"mixed", p});
  }
  {
    FaultProfile p;
    p.drop_rate = 0.1;
    p.max_delay_ticks = 4;
    s.push_back({"drop_and_crash", p, /*crash_rate=*/0.02});
  }
  return s;
}

ClusterConfig BaseConfig(const Scenario& scenario, uint64_t num_agents,
                         uint64_t fan_in) {
  ClusterConfig config;
  config.num_agents = num_agents;
  config.fan_in = fan_in;
  config.k = 256;  // small k: the root saturates, exercising HT bounds
  config.seed = 0xc1a05;
  config.workload = ClusterConfig::Workload::kUniform;
  config.universe = 1 << 14;
  config.keys_per_tick = 64;
  config.ingest_ticks = 32;
  config.snapshot_every = 4;
  config.faults = scenario.faults;
  config.agent_crash_rate = scenario.crash_rate;
  config.crash_down_ticks = 6;
  return config;
}

// HT accuracy: exact while unsaturated; within 6n/sqrt(k) (~6 sigma of
// the bottom-k estimator's relative error) once saturated.
void ExpectWithinHtBound(const ClusterSim& sim, uint64_t exact,
                         const char* when) {
  const double est = sim.root().Estimate();
  if (!sim.root().merged().saturated()) {
    EXPECT_NEAR(est, static_cast<double>(exact), 1e-6) << when;
  } else {
    const double slack =
        6.0 * static_cast<double>(exact) /
        std::sqrt(static_cast<double>(sim.root().merged().k()));
    EXPECT_NEAR(est, static_cast<double>(exact), slack) << when;
  }
}

class ChaosMatrix : public ::testing::TestWithParam<Scenario> {};

TEST_P(ChaosMatrix, FlatTopologyConvergesBitExactlyWithAccurateInterim) {
  const Scenario& scenario = GetParam();
  ClusterSim sim(BaseConfig(scenario, /*num_agents=*/8, /*fan_in=*/0));

  // (b): at EVERY intermediate step the root answers from its last
  // consistent snapshot, and that answer is HT-accurate for the exact
  // distinct count over the coverage it claims (the applied prefixes).
  while (!sim.IngestDone()) {
    sim.Tick();
    ExpectWithinHtBound(sim, sim.ExactDistinctApplied(), "mid-ingest");
  }
  ASSERT_TRUE(sim.RunUntilQuiescent()) << scenario.name;

  // (a): bit-exact convergence to the fault-free flat merge.
  EXPECT_EQ(sim.root().SnapshotFrame(), sim.FaultFreeRootFrame())
      << scenario.name;
  ExpectWithinHtBound(sim, sim.ExactDistinctTotal(), "after quiescence");

  // Quiescence means no subtree is stale anymore.
  for (const SubtreeStaleness& s : sim.root().Staleness()) {
    EXPECT_EQ(s.epochs_behind(), 0u) << scenario.name;
    EXPECT_EQ(s.last_applied_epoch,
              sim.agents()[s.child_id]->log().size());
  }

  // (c): injected wire damage surfaces as typed, counted rejections --
  // and none of it ever reached the merged state (the bit-exact check
  // above is the strong form of "zero corrupt frames merged").
  const ClusterMetrics m = sim.Metrics();
  if (scenario.faults.corrupt_rate > 0.0) {
    EXPECT_GT(m.root_rejects.corrupt_body + m.root_rejects.bad_magic +
                  m.root_rejects.bad_version + m.root_rejects.truncated,
              0u);
  }
  if (scenario.faults.truncate_rate > 0.0) {
    EXPECT_GT(m.root_rejects.truncated, 0u);
  }
  if (scenario.faults.drop_rate > 0.0) {
    EXPECT_GT(m.retransmissions, 0u);  // retries did the healing
  }
  if (scenario.faults.duplicate_rate > 0.0) {
    EXPECT_GT(m.transport.duplicated, 0u);
    EXPECT_GT(m.root_rejects.duplicate_seq, 0u);
  }
  if (scenario.crash_rate > 0.0) {
    EXPECT_GT(m.agent_crashes, 0u);
  }
  EXPECT_EQ(m.root_rejects.payload_rejected, 0u)
      << "agents never produce poison frames";
}

TEST_P(ChaosMatrix, FanInTreeConvergesBitExactly) {
  const Scenario& scenario = GetParam();
  ClusterSim sim(BaseConfig(scenario, /*num_agents=*/12, /*fan_in=*/3));
  ASSERT_GT(sim.num_aggregators(), 1u);  // genuinely multi-level

  sim.RunIngest();
  ASSERT_TRUE(sim.RunUntilQuiescent()) << scenario.name;
  // Tree merge == flat merge, bit for bit: the bottom-k union is
  // associative and cumulative interior snapshots absorb their history.
  EXPECT_EQ(sim.root().SnapshotFrame(), sim.FaultFreeRootFrame())
      << scenario.name;
  ExpectWithinHtBound(sim, sim.ExactDistinctTotal(), "after quiescence");
}

TEST_P(ChaosMatrix, FixedSeedReproducesRunByteIdentically) {
  // (d): the whole scenario -- faults, crashes, retries, merges -- is a
  // pure function of the config. CI reruns one scenario and diffs the
  // serialized root state; this covers the full matrix.
  const Scenario& scenario = GetParam();
  const auto run = [&] {
    ClusterSim sim(BaseConfig(scenario, 8, 3));
    sim.RunIngest();
    EXPECT_TRUE(sim.RunUntilQuiescent());
    const ClusterMetrics m = sim.Metrics();
    return std::make_tuple(sim.root().SnapshotFrame(),
                           m.transport.bytes_on_wire,
                           m.transport.copies_transmitted, m.ticks,
                           m.retransmissions, m.agent_crashes);
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Cluster, ChaosMatrix,
                         ::testing::ValuesIn(Scenarios()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---------------------------------------------------------------------
// Persistence tier under chaos (PR 8): the SAME fault matrix with
// durable checkpointing enabled. Logs stay bounded (truncated at every
// successful checkpoint), restarts restore-then-replay the suffix, and
// none of it may perturb the bit-exact convergence contract.

// A fresh, empty checkpoint directory per scenario: a stale file from a
// previous run covers a DIFFERENT key stream, and the whole point of
// the epoch-range consistency check is that such a file must never be
// restored -- so the tests start clean to make every restore meaningful.
std::string FreshCheckpointDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("ats_chaos_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// The fresh-sketch reference for one agent: the full shadow history,
// replayed in order. Restart-from-checkpoint-then-replay-suffix must be
// bit-identical to this (KMV state is a pure function of the key
// sequence and serialization is canonical).
std::string FullReplayFrame(const ClusterSim& sim, uint64_t id,
                            const ClusterConfig& config) {
  KmvSketch reference(config.k, 1.0, config.hash_salt);
  reference.AddKeys(sim.History(id));
  return reference.SerializeToString();
}

class CheckpointedChaosMatrix : public ::testing::TestWithParam<Scenario> {
};

TEST_P(CheckpointedChaosMatrix, ConvergesBitExactlyWithBoundedLogs) {
  const Scenario& scenario = GetParam();
  ClusterConfig config = BaseConfig(scenario, /*num_agents=*/8,
                                    /*fan_in=*/0);
  config.checkpoint_every_epochs = 256;
  config.checkpoint_dir =
      FreshCheckpointDir(std::string("flat_") + scenario.name);
  ClusterSim sim(config);

  sim.RunIngest();
  ASSERT_TRUE(sim.RunUntilQuiescent()) << scenario.name;

  // The convergence contract is unchanged by the persistence tier.
  EXPECT_EQ(sim.root().SnapshotFrame(), sim.FaultFreeRootFrame())
      << scenario.name;

  const ClusterMetrics m = sim.Metrics();
  EXPECT_GT(m.checkpoints_written, 0u);
  EXPECT_EQ(m.checkpoint_write_failures, 0u);
  EXPECT_GT(m.node_memory_bytes, 0u);
  // Every crash leads to exactly one restart, and every restart with
  // checkpointing configured attempts exactly one restore (a failure
  // here is the fail-closed full-log path, e.g. crashing before the
  // first checkpoint existed).
  EXPECT_EQ(m.checkpoint_restores + m.checkpoint_restore_failures,
            m.agent_crashes)
      << scenario.name;

  const uint64_t total_keys = config.keys_per_tick * config.ingest_ticks;
  for (const auto& agent : sim.agents()) {
    // Epochs are global stream offsets: truncation must not lose count.
    EXPECT_EQ(agent->epoch(), sim.History(agent->id()).size());
    EXPECT_EQ(agent->epoch(), total_keys);
    // The durable log is BOUNDED: truncated at each checkpoint, it holds
    // only the suffix since the last one -- never the whole stream.
    EXPECT_LT(agent->log().size(), total_keys) << scenario.name;
    EXPECT_EQ(agent->epochs_since_checkpoint(), agent->log().size());
    EXPECT_LE(agent->epochs_since_checkpoint(),
              config.checkpoint_every_epochs +
                  config.snapshot_every * config.keys_per_tick);
    // And the recovered/levelled sketch matches the full-history replay
    // bit for bit.
    EXPECT_EQ(agent->sketch().SerializeToString(),
              FullReplayFrame(sim, agent->id(), config))
        << scenario.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Cluster, CheckpointedChaosMatrix,
                         ::testing::ValuesIn(Scenarios()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(ClusterCheckpoint, RestartFromCheckpointIsBitIdenticalToFullReplay) {
  // Forces the restore path deterministically: run a checkpointed,
  // fault-free cluster, then crash an agent BY HAND after checkpoints
  // exist and restart it. The recovered sketch must be bit-identical to
  // a fresh full-history replay, and the restore (not the full-log
  // fallback) must be what produced it.
  ClusterConfig config;
  config.num_agents = 4;
  config.k = 256;
  config.seed = 0xd00d;
  config.keys_per_tick = 64;
  config.ingest_ticks = 16;
  config.snapshot_every = 4;
  config.checkpoint_every_epochs = 128;
  config.checkpoint_dir = FreshCheckpointDir("manual_restart");
  ClusterSim sim(config);
  sim.RunIngest();

  AgentNode& agent = *sim.agents()[0];
  ASSERT_GT(agent.checkpoints_written(), 0u);
  ASSERT_LT(agent.log().size(), agent.epoch()) << "log must be truncated";

  const std::string expected = FullReplayFrame(sim, 0, config);
  ASSERT_EQ(agent.sketch().SerializeToString(), expected)
      << "pre-crash state is the full-stream sketch";

  agent.Crash(sim.now(), /*down_ticks=*/0);
  EXPECT_NE(agent.sketch().SerializeToString(), expected)
      << "volatile state must actually be lost";
  agent.MaybeRestart(sim.now());

  EXPECT_EQ(agent.checkpoint_restores(), 1u)
      << "recovery must come from the checkpoint, not the full log";
  EXPECT_EQ(agent.checkpoint_restore_failures(), 0u);
  EXPECT_EQ(agent.sketch().SerializeToString(), expected)
      << "restore + bounded-suffix replay == full replay, bit for bit";
}

TEST(ClusterCheckpoint, MissingCheckpointFailsClosedToFullLogReplay) {
  // With checkpointing configured but no file yet (crash before the
  // first cadence point), recovery must fall back to replaying the
  // whole durable log -- and still rebuild the exact sketch.
  ClusterConfig config;
  config.num_agents = 2;
  config.k = 128;
  config.seed = 0xfee1;
  config.keys_per_tick = 32;
  config.ingest_ticks = 8;
  config.snapshot_every = 2;
  config.checkpoint_every_epochs = 1 << 20;  // never reached
  config.checkpoint_dir = FreshCheckpointDir("never_written");
  ClusterSim sim(config);
  sim.RunIngest();

  AgentNode& agent = *sim.agents()[0];
  ASSERT_EQ(agent.checkpoints_written(), 0u);
  const std::string expected = FullReplayFrame(sim, 0, config);

  agent.Crash(sim.now(), /*down_ticks=*/0);
  agent.MaybeRestart(sim.now());

  EXPECT_EQ(agent.checkpoint_restores(), 0u);
  EXPECT_EQ(agent.checkpoint_restore_failures(), 1u);
  EXPECT_EQ(agent.last_restore_fault(),
            persist::CheckpointFault::kIoError);
  EXPECT_EQ(agent.sketch().SerializeToString(), expected);
}

// The graceful-degradation contract in isolation: a root that has heard
// nothing still answers (zero), and staleness names what is missing.
TEST(ClusterDegradation, QueriesNeverFailAndStalenessIsHonest) {
  ClusterConfig config;
  config.num_agents = 4;
  config.k = 128;
  config.seed = 7;
  config.keys_per_tick = 32;
  config.ingest_ticks = 16;
  config.snapshot_every = 4;
  // Everything is dropped: the root stays at its initial snapshot.
  config.faults.drop_rate = 1.0;
  config.max_ticks = 200;
  ClusterSim sim(config);
  sim.RunIngest();
  EXPECT_EQ(sim.root().Estimate(), 0.0);  // an answer, not an error
  EXPECT_EQ(sim.ExactDistinctApplied(), 0u);
  EXPECT_FALSE(sim.RunUntilQuiescent());  // it can never drain

  // Staleness is only knowable per child once SOMETHING arrives; with a
  // total blackout the root has no children yet -- the query still
  // answers, reporting an empty coverage map.
  EXPECT_TRUE(sim.root().Staleness().empty());
}

TEST(ClusterDegradation, StalenessReportsEpochGapUnderPartialBlackout) {
  ClusterConfig config;
  config.num_agents = 2;
  config.k = 128;
  config.seed = 11;
  config.keys_per_tick = 16;
  config.ingest_ticks = 8;
  config.snapshot_every = 2;
  ClusterSim sim(config);
  sim.RunIngest();
  ASSERT_TRUE(sim.RunUntilQuiescent());

  // Hand the root a newer-epoch frame whose payload is poison: the
  // root learns the sender has MORE data (newest_seen advances) but
  // cannot apply it -- the gap is reported rather than papered over.
  auto& root = const_cast<AggregatorNode&>(sim.root());
  KmvSketch ghost(128, 1.0, config.hash_salt);
  const std::vector<uint64_t> keys = {1, 2, 3};
  ghost.AddKeys(keys);
  std::string poison = ghost.SerializeToString();
  poison[poison.size() / 2] ^= 0x04;
  const uint64_t applied_before = root.AppliedEpoch(0);
  const auto outcome = root.Receive(
      EncodeEnvelope(EnvelopeKind::kData, /*sender=*/0,
                     /*incarnation=*/9, /*seq=*/0,
                     /*epoch=*/applied_before + 1000, poison));
  EXPECT_EQ(outcome.kind, ReceiveOutcome::Kind::kPayloadRejected);
  bool found = false;
  for (const SubtreeStaleness& s : sim.root().Staleness()) {
    if (s.child_id != 0) continue;
    found = true;
    EXPECT_EQ(s.newest_seen_epoch, applied_before + 1000);
    EXPECT_EQ(s.last_applied_epoch, applied_before);
    EXPECT_EQ(s.epochs_behind(), 1000u);
    EXPECT_EQ(s.oldest_missing_epoch(), applied_before + 1);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ats::cluster
