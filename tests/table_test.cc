// Tests for ats/util/table.h.
#include "ats/util/table.h"

#include <gtest/gtest.h>

namespace ats {
namespace {

TEST(Table, TextRenderingAligns) {
  Table t({"a", "long_header"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  const std::string text = t.ToText();
  EXPECT_NE(text.find("| a   | long_header |"), std::string::npos);
  EXPECT_NE(text.find("| 333 | 4           |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvRendering) {
  Table t({"x", "y"});
  t.AddNumericRow({1.5, 2.25});
  EXPECT_EQ(t.ToCsv(), "x,y\n1.5,2.25\n");
}

TEST(Table, NumericPrecision) {
  Table t({"v"});
  t.AddNumericRow({3.14159265}, 3);
  EXPECT_EQ(t.ToCsv(), "v\n3.14\n");
}

TEST(FormatDouble, SignificantDigits) {
  EXPECT_EQ(FormatDouble(1234.5678, 6), "1234.57");
  EXPECT_EQ(FormatDouble(0.000123456, 3), "0.000123");
  EXPECT_EQ(FormatDouble(1e9, 2), "1e+09");
}

TEST(HasCsvFlag, DetectsFlag) {
  const char* argv1[] = {"prog", "--csv"};
  const char* argv2[] = {"prog", "--other"};
  EXPECT_TRUE(HasCsvFlag(2, const_cast<char**>(argv1)));
  EXPECT_FALSE(HasCsvFlag(2, const_cast<char**>(argv2)));
  EXPECT_FALSE(HasCsvFlag(1, const_cast<char**>(argv1)));
}

}  // namespace
}  // namespace ats
