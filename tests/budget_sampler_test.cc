// Tests for ats/samplers/budget_sampler.h (Section 3.1).
#include "ats/samplers/budget_sampler.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ats/core/ht_estimator.h"
#include "ats/core/recalibration.h"
#include "ats/util/stats.h"
#include "ats/workload/survey.h"

namespace ats {
namespace {

TEST(BudgetSampler, NeverExceedsBudget) {
  Xoshiro256 rng(1);
  BudgetSampler sampler(100.0, 42);
  for (uint64_t i = 0; i < 2000; ++i) {
    sampler.Add(i, 1.0 + 9.0 * rng.NextDouble(), 1.0);
    ASSERT_LE(sampler.UsedBudget(), 100.0);
  }
  EXPECT_GT(sampler.size(), 0u);
}

TEST(BudgetSampler, KeepsEverythingWhenUnderBudget) {
  BudgetSampler sampler(1000.0, 1);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(sampler.Add(i, 5.0, 1.0));
  }
  EXPECT_EQ(sampler.size(), 10u);
  EXPECT_EQ(sampler.Threshold(), kInfiniteThreshold);
  // Full sample: HT total is exact.
  EXPECT_DOUBLE_EQ(HtTotal(sampler.Sample()), 10.0);
}

TEST(BudgetSampler, RejectsOversizedItems) {
  BudgetSampler sampler(10.0, 1);
  EXPECT_FALSE(sampler.Add(0, 11.0, 1.0));
  EXPECT_EQ(sampler.size(), 0u);
}

TEST(BudgetSampler, ThresholdMatchesOfflineBudgetRule) {
  // The streaming threshold must equal the offline rule's threshold
  // (priority of the first overflow item in ascending-priority order).
  Xoshiro256 rng(2);
  const size_t n = 300;
  std::vector<double> sizes(n);
  for (double& s : sizes) s = 1.0 + 4.0 * rng.NextDouble();
  const double budget = 80.0;

  BudgetSampler sampler(budget, 77);
  for (size_t i = 0; i < n; ++i) sampler.Add(i, sizes[i], 1.0);

  // Reconstruct priorities the sampler assigned by re-deriving from its
  // retained sample plus the offline rule over those same priorities is
  // impossible without exposing internals; instead check the defining
  // property directly: retained = maximal ascending-priority prefix that
  // fits, and the threshold is below every rejected retained-priority.
  const auto sample = sampler.Sample();
  double used = 0.0;
  for (const auto& e : sample) {
    EXPECT_LT(e.priority, sampler.Threshold());
    used += 0.0;  // sizes not exposed on entries; budget asserted below
  }
  EXPECT_LE(sampler.UsedBudget(), budget);
  EXPECT_GT(sampler.UsedBudget(), budget - 6.0);  // nearly full utilization
}

struct BudgetHtParam {
  double budget;
  uint64_t seed;
};

class BudgetHtTest : public ::testing::TestWithParam<BudgetHtParam> {};

TEST_P(BudgetHtTest, HtTotalIsUnbiased) {
  const auto [budget, seed] = GetParam();
  Xoshiro256 rng(11);
  const size_t n = 200;
  std::vector<double> sizes(n), values(n);
  double truth = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sizes[i] = 1.0 + 3.0 * rng.NextDouble();
    values[i] = 1.0 + rng.NextDouble();
    truth += values[i];
  }
  RunningStat est;
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    BudgetSampler sampler(budget, seed + static_cast<uint64_t>(t) * 31);
    for (size_t i = 0; i < n; ++i) sampler.Add(i, sizes[i], values[i]);
    est.Add(HtTotal(sampler.Sample()));
  }
  const double se = est.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(est.mean(), truth, 4.0 * se) << "budget=" << budget;
}

INSTANTIATE_TEST_SUITE_P(
    BudgetSweep, BudgetHtTest,
    ::testing::Values(BudgetHtParam{30.0, 1}, BudgetHtParam{60.0, 2},
                      BudgetHtParam{120.0, 3}, BudgetHtParam{240.0, 4}));

TEST(BudgetSampler, WeightedSamplingFavorsHeavyItems) {
  // Items with large weights should be retained much more often.
  int heavy_kept = 0, light_kept = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    BudgetSampler sampler(20.0, 1000 + static_cast<uint64_t>(t));
    for (uint64_t i = 0; i < 100; ++i) {
      const double w = i == 0 ? 50.0 : 1.0;
      sampler.Add(i, 1.0, 1.0, w);
    }
    const auto sample = sampler.Sample();
    for (const auto& e : sample) {
      if (e.key == 0) ++heavy_kept;
      if (e.key == 1) ++light_kept;
    }
  }
  EXPECT_GT(heavy_kept, 2 * light_kept);
}

TEST(BudgetSampler, WeightedHtStillUnbiased) {
  Xoshiro256 rng(13);
  const size_t n = 150;
  std::vector<double> weights(n), values(n);
  double truth = 0.0;
  for (size_t i = 0; i < n; ++i) {
    weights[i] = std::exp(rng.NextGaussian());
    values[i] = weights[i];
    truth += values[i];
  }
  RunningStat est;
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    BudgetSampler sampler(40.0, 500 + static_cast<uint64_t>(t));
    for (size_t i = 0; i < n; ++i) {
      sampler.Add(i, 1.0, values[i], weights[i]);
    }
    est.Add(HtTotal(sampler.Sample()));
  }
  const double se = est.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(est.mean(), truth, 4.0 * se);
}

TEST(BudgetSampler, UtilizationBeatsConservativeBottomK) {
  // Section 3.1's headline: bottom-k with k = B / L_max is ~4x smaller
  // than the adaptive budget sample on survey-like size distributions.
  SurveyGenerator gen(3);
  const auto responses = gen.Generate(20000);
  const double budget = 40.0 * gen.max_size();

  BudgetSampler sampler(budget, 9);
  for (const auto& r : responses) sampler.Add(r.id, r.size, r.value);

  const size_t conservative_k =
      static_cast<size_t>(budget / gen.max_size());
  EXPECT_GT(sampler.size(), 3 * conservative_k);
  EXPECT_LT(sampler.size(), 6 * conservative_k);
}

}  // namespace
}  // namespace ats
