// Tests for ats/samplers/budget_sampler.h (Section 3.1).
#include "ats/samplers/budget_sampler.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "ats/core/ht_estimator.h"
#include "ats/core/recalibration.h"
#include "ats/util/stats.h"
#include "ats/workload/survey.h"

namespace ats {
namespace {

TEST(BudgetSampler, NeverExceedsBudget) {
  Xoshiro256 rng(1);
  BudgetSampler sampler(100.0, 42);
  for (uint64_t i = 0; i < 2000; ++i) {
    sampler.Add(i, 1.0 + 9.0 * rng.NextDouble(), 1.0);
    ASSERT_LE(sampler.UsedBudget(), 100.0);
  }
  EXPECT_GT(sampler.size(), 0u);
}

TEST(BudgetSampler, KeepsEverythingWhenUnderBudget) {
  BudgetSampler sampler(1000.0, 1);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(sampler.Add(i, 5.0, 1.0));
  }
  EXPECT_EQ(sampler.size(), 10u);
  EXPECT_EQ(sampler.Threshold(), kInfiniteThreshold);
  // Full sample: HT total is exact.
  EXPECT_DOUBLE_EQ(HtTotal(sampler.Sample()), 10.0);
}

TEST(BudgetSampler, RejectsOversizedItems) {
  BudgetSampler sampler(10.0, 1);
  EXPECT_FALSE(sampler.Add(0, 11.0, 1.0));
  EXPECT_EQ(sampler.size(), 0u);
}

TEST(BudgetSampler, ThresholdMatchesOfflineBudgetRule) {
  // The streaming threshold must equal the offline rule's threshold
  // (priority of the first overflow item in ascending-priority order).
  Xoshiro256 rng(2);
  const size_t n = 300;
  std::vector<double> sizes(n);
  for (double& s : sizes) s = 1.0 + 4.0 * rng.NextDouble();
  const double budget = 80.0;

  BudgetSampler sampler(budget, 77);
  for (size_t i = 0; i < n; ++i) sampler.Add(i, sizes[i], 1.0);

  // Reconstruct priorities the sampler assigned by re-deriving from its
  // retained sample plus the offline rule over those same priorities is
  // impossible without exposing internals; instead check the defining
  // property directly: retained = maximal ascending-priority prefix that
  // fits, and the threshold is below every rejected retained-priority.
  const auto sample = sampler.Sample();
  double used = 0.0;
  for (const auto& e : sample) {
    EXPECT_LT(e.priority, sampler.Threshold());
    used += 0.0;  // sizes not exposed on entries; budget asserted below
  }
  EXPECT_LE(sampler.UsedBudget(), budget);
  EXPECT_GT(sampler.UsedBudget(), budget - 6.0);  // nearly full utilization
}

struct BudgetHtParam {
  double budget;
  uint64_t seed;
};

class BudgetHtTest : public ::testing::TestWithParam<BudgetHtParam> {};

TEST_P(BudgetHtTest, HtTotalIsUnbiased) {
  const auto [budget, seed] = GetParam();
  Xoshiro256 rng(11);
  const size_t n = 200;
  std::vector<double> sizes(n), values(n);
  double truth = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sizes[i] = 1.0 + 3.0 * rng.NextDouble();
    values[i] = 1.0 + rng.NextDouble();
    truth += values[i];
  }
  RunningStat est;
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    BudgetSampler sampler(budget, seed + static_cast<uint64_t>(t) * 31);
    for (size_t i = 0; i < n; ++i) sampler.Add(i, sizes[i], values[i]);
    est.Add(HtTotal(sampler.Sample()));
  }
  const double se = est.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(est.mean(), truth, 4.0 * se) << "budget=" << budget;
}

INSTANTIATE_TEST_SUITE_P(
    BudgetSweep, BudgetHtTest,
    ::testing::Values(BudgetHtParam{30.0, 1}, BudgetHtParam{60.0, 2},
                      BudgetHtParam{120.0, 3}, BudgetHtParam{240.0, 4}));

TEST(BudgetSampler, WeightedSamplingFavorsHeavyItems) {
  // Items with large weights should be retained much more often.
  int heavy_kept = 0, light_kept = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    BudgetSampler sampler(20.0, 1000 + static_cast<uint64_t>(t));
    for (uint64_t i = 0; i < 100; ++i) {
      const double w = i == 0 ? 50.0 : 1.0;
      sampler.Add(i, 1.0, 1.0, w);
    }
    const auto sample = sampler.Sample();
    for (const auto& e : sample) {
      if (e.key == 0) ++heavy_kept;
      if (e.key == 1) ++light_kept;
    }
  }
  EXPECT_GT(heavy_kept, 2 * light_kept);
}

TEST(BudgetSampler, WeightedHtStillUnbiased) {
  Xoshiro256 rng(13);
  const size_t n = 150;
  std::vector<double> weights(n), values(n);
  double truth = 0.0;
  for (size_t i = 0; i < n; ++i) {
    weights[i] = std::exp(rng.NextGaussian());
    values[i] = weights[i];
    truth += values[i];
  }
  RunningStat est;
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    BudgetSampler sampler(40.0, 500 + static_cast<uint64_t>(t));
    for (size_t i = 0; i < n; ++i) {
      sampler.Add(i, 1.0, values[i], weights[i]);
    }
    est.Add(HtTotal(sampler.Sample()));
  }
  const double se = est.StdDev() / std::sqrt(double(trials));
  EXPECT_NEAR(est.mean(), truth, 4.0 * se);
}

TEST(BudgetSampler, UtilizationBeatsConservativeBottomK) {
  // Section 3.1's headline: bottom-k with k = B / L_max is ~4x smaller
  // than the adaptive budget sample on survey-like size distributions.
  SurveyGenerator gen(3);
  const auto responses = gen.Generate(20000);
  const double budget = 40.0 * gen.max_size();

  BudgetSampler sampler(budget, 9);
  for (const auto& r : responses) sampler.Add(r.id, r.size, r.value);

  const size_t conservative_k =
      static_cast<size_t>(budget / gen.max_size());
  EXPECT_GT(sampler.size(), 3 * conservative_k);
  EXPECT_LT(sampler.size(), 6 * conservative_k);
}


TEST(BudgetSampler, AddBatchMatchesScalarLoopExactly) {
  // The block-prefiltered batch path must be indistinguishable from the
  // scalar loop: same retained set, same threshold, same used budget,
  // same RNG stream afterwards. Oversized items (which draw no priority)
  // are interleaved to keep the draw sequences aligned.
  Xoshiro256 data(3);
  std::vector<BudgetSampler::BatchItem> items;
  for (uint64_t i = 0; i < 5000; ++i) {
    BudgetSampler::BatchItem it;
    it.key = i;
    it.size = i % 53 == 0 ? 300.0 : 1.0 + 9.0 * data.NextDouble();
    it.value = data.NextDouble();
    it.weight = 0.5 + data.NextDouble();
    items.push_back(it);
  }
  BudgetSampler scalar(200.0, 77), batched(200.0, 77);
  size_t scalar_accepted = 0;
  for (const auto& it : items) {
    scalar_accepted +=
        scalar.Add(it.key, it.size, it.value, it.weight) ? 1 : 0;
  }
  size_t batch_accepted =
      batched.AddBatch(std::span(items).subspan(0, 999));
  batch_accepted += batched.AddBatch(std::span(items).subspan(999));

  EXPECT_EQ(batch_accepted, scalar_accepted);
  EXPECT_EQ(batched.size(), scalar.size());
  EXPECT_DOUBLE_EQ(batched.Threshold(), scalar.Threshold());
  EXPECT_DOUBLE_EQ(batched.UsedBudget(), scalar.UsedBudget());
  auto sorted_sample = [](const BudgetSampler& s) {
    auto sample = s.Sample();
    std::sort(sample.begin(), sample.end(),
              [](const SampleEntry& a, const SampleEntry& b) {
                return a.key < b.key;
              });
    return sample;
  };
  const auto ss = sorted_sample(scalar);
  const auto bs = sorted_sample(batched);
  ASSERT_EQ(ss.size(), bs.size());
  for (size_t i = 0; i < ss.size(); ++i) {
    EXPECT_EQ(bs[i].key, ss[i].key);
    EXPECT_DOUBLE_EQ(bs[i].priority, ss[i].priority);
    EXPECT_DOUBLE_EQ(bs[i].value, ss[i].value);
  }
  // RNG lockstep: continued scalar ingest stays identical.
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(batched.Add(9000 + i, 2.0, 1.0),
              scalar.Add(9000 + i, 2.0, 1.0));
  }
  EXPECT_DOUBLE_EQ(batched.Threshold(), scalar.Threshold());
}

}  // namespace
}  // namespace ats
