// Tests for ats/core/priority.h: CDF/inverse consistency, sampling
// distributions, and hash-coordination.
#include "ats/core/priority.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ats/util/stats.h"

namespace ats {
namespace {

TEST(PriorityDist, UniformCdf) {
  const PriorityDist d = PriorityDist::Uniform();
  EXPECT_EQ(d.Cdf(-1.0), 0.0);
  EXPECT_EQ(d.Cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(0.25), 0.25);
  EXPECT_EQ(d.Cdf(1.0), 1.0);
  EXPECT_EQ(d.Cdf(7.0), 1.0);
}

TEST(PriorityDist, WeightedUniformCdf) {
  const PriorityDist d = PriorityDist::WeightedUniform(4.0);
  EXPECT_DOUBLE_EQ(d.Cdf(0.1), 0.4);
  EXPECT_EQ(d.Cdf(0.25), 1.0);
  EXPECT_EQ(d.Cdf(10.0), 1.0);
}

TEST(PriorityDist, ExponentialCdf) {
  const PriorityDist d = PriorityDist::Exponential(2.0);
  EXPECT_NEAR(d.Cdf(0.5), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_EQ(d.Cdf(0.0), 0.0);
}

class PriorityRoundTripTest
    : public ::testing::TestWithParam<PriorityDist> {};

TEST_P(PriorityRoundTripTest, InverseCdfIsRightInverse) {
  const PriorityDist d = GetParam();
  for (double u : {0.0, 0.01, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(d.Cdf(d.InverseCdf(u)), u, 1e-9) << "u=" << u;
  }
}

TEST_P(PriorityRoundTripTest, SampledPrioritiesHaveUniformCdf) {
  const PriorityDist d = GetParam();
  Xoshiro256 rng(31);
  std::vector<double> us;
  for (int i = 0; i < 20000; ++i) us.push_back(d.Cdf(d.Sample(rng)));
  EXPECT_GT(KsPValue(KsStatisticUniform(us), us.size()), 1e-4);
}

TEST_P(PriorityRoundTripTest, FromHashIsDeterministic) {
  const PriorityDist d = GetParam();
  EXPECT_EQ(d.FromHash(HashKey(12345)), d.FromHash(HashKey(12345)));
  EXPECT_NE(d.FromHash(HashKey(12345)), d.FromHash(HashKey(12346)));
}

INSTANTIATE_TEST_SUITE_P(
    Families, PriorityRoundTripTest,
    ::testing::Values(PriorityDist::Uniform(),
                      PriorityDist::WeightedUniform(0.25),
                      PriorityDist::WeightedUniform(3.0),
                      PriorityDist::Exponential(1.0),
                      PriorityDist::Exponential(5.0)));

TEST(PriorityDist, WeightedSampleNeverExceedsSupport) {
  const PriorityDist d = PriorityDist::WeightedUniform(2.0);
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double r = d.Sample(rng);
    EXPECT_GT(r, 0.0);
    EXPECT_LE(r, 0.5);
  }
}

TEST(PriorityDist, DualityInclusionEquivalence) {
  // Section 2.9: R = F^{-1}(U) < T  <=>  U < F(T).
  const PriorityDist d = PriorityDist::Exponential(1.5);
  Xoshiro256 rng(5);
  const double t = 0.8;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDoubleOpenZero();
    EXPECT_EQ(d.InverseCdf(u) < t, u < d.Cdf(t));
  }
}

TEST(PriorityDist, HigherWeightMeansSmallerPriorities) {
  // Stochastic dominance: heavier items should win (smaller priorities).
  Xoshiro256 rng(9);
  RunningStat light, heavy;
  const PriorityDist dl = PriorityDist::WeightedUniform(1.0);
  const PriorityDist dh = PriorityDist::WeightedUniform(10.0);
  for (int i = 0; i < 20000; ++i) {
    light.Add(dl.Sample(rng));
    heavy.Add(dh.Sample(rng));
  }
  EXPECT_GT(light.mean(), 5.0 * heavy.mean());
}

}  // namespace
}  // namespace ats
