// Persistence tier unit tests: CKP1 round-trips through both open
// paths (mmap view and buffered), atomic replacement, and the
// fail-closed recovery contract -- every rejected file leaves the
// in-memory target byte-identical and names a typed reason. The
// exhaustive hostile-bytes sweep (every prefix truncation, every
// single-bit flip) lives in fuzz_oracle_test.cc; the SIGKILL loop in
// tools/kill_and_recover.cc.
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "ats/persist/checkpoint.h"
#include "ats/samplers/budget_sampler.h"
#include "ats/samplers/multi_objective.h"
#include "ats/samplers/multi_stratified.h"
#include "ats/samplers/variance_sized.h"
#include "ats/sketch/kmv.h"

namespace ats::persist {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "ats_persist_" + name + ".ckp";
}

KmvSketch MakeSketch(uint64_t seed, int keys) {
  KmvSketch sketch(8, 1.0, /*hash_salt=*/0x5eed);
  Xoshiro256 rng(seed);
  for (int i = 0; i < keys; ++i) sketch.AddKey(rng.Next());
  return sketch;
}

void WriteRawFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.write(bytes.data(),
                        static_cast<std::streamsize>(bytes.size())));
}

TEST(CheckpointCodec, EncodeDecodeRoundTripsEveryField) {
  const std::string payload = MakeSketch(1, 200).SerializeToString();
  const std::string bytes =
      EncodeCheckpoint(SchemeKind::kKmv, /*epoch=*/12345, payload);
  EXPECT_EQ(bytes.size(), payload.size() + kCheckpointOverhead);

  CheckpointInfo info;
  ASSERT_EQ(DecodeCheckpoint(bytes, &info), CheckpointFault::kNone);
  EXPECT_EQ(info.kind, SchemeKind::kKmv);
  EXPECT_EQ(info.epoch, 12345u);
  EXPECT_EQ(info.payload, payload);
}

TEST(CheckpointCodec, FaultNamesAreStable) {
  EXPECT_STREQ(CheckpointFaultName(CheckpointFault::kNone), "none");
  EXPECT_STREQ(CheckpointFaultName(CheckpointFault::kIoError), "io_error");
  EXPECT_STREQ(CheckpointFaultName(CheckpointFault::kTruncated),
               "truncated");
  EXPECT_STREQ(CheckpointFaultName(CheckpointFault::kBadMagic),
               "bad_magic");
  EXPECT_STREQ(CheckpointFaultName(CheckpointFault::kBadVersion),
               "bad_version");
  EXPECT_STREQ(CheckpointFaultName(CheckpointFault::kBadKind), "bad_kind");
  EXPECT_STREQ(CheckpointFaultName(CheckpointFault::kCorruptBody),
               "corrupt_body");
  EXPECT_STREQ(CheckpointFaultName(CheckpointFault::kBadPayload),
               "bad_payload");
}

TEST(CheckpointFile, RoundTripsThroughBothOpenPaths) {
  const KmvSketch original = MakeSketch(2, 300);
  const std::string payload = original.SerializeToString();
  const std::string path = TempPath("roundtrip");
  ASSERT_EQ(CheckpointWriter::Write(path, SchemeKind::kKmv, /*epoch=*/300,
                                    payload),
            CheckpointFault::kNone);

  CheckpointReader view;
  ASSERT_EQ(CheckpointReader::OpenView(path, &view), CheckpointFault::kNone);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(view.mapped()) << "POSIX open should take the mmap path";
#endif
  EXPECT_EQ(view.kind(), SchemeKind::kKmv);
  EXPECT_EQ(view.epoch(), 300u);
  EXPECT_EQ(view.payload(), payload);

  // The zero-copy contract: the mapped payload feeds the family's view
  // parser directly, no intermediate materialization.
  const auto frame = KmvSketch::DeserializeView(view.payload());
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->k(), original.k());
  EXPECT_EQ(frame->size(), original.size());
  EXPECT_DOUBLE_EQ(frame->threshold(), original.Threshold());

  CheckpointReader buffered;
  ASSERT_EQ(CheckpointReader::OpenBuffered(path, &buffered),
            CheckpointFault::kNone);
  EXPECT_FALSE(buffered.mapped());
  EXPECT_EQ(buffered.payload(), view.payload());
  EXPECT_EQ(buffered.epoch(), view.epoch());
}

TEST(CheckpointFile, RestoreRebuildsByteIdenticalSketchInBothModes) {
  const KmvSketch original = MakeSketch(3, 500);
  const std::string path = TempPath("restore");
  ASSERT_EQ(CheckpointWriter::Write(path, SchemeKind::kKmv, /*epoch=*/500,
                                    original.SerializeToString()),
            CheckpointFault::kNone);
  for (const OpenMode mode : {OpenMode::kPreferMmap, OpenMode::kBuffered}) {
    KmvSketch restored(1, 1.0, 0);
    uint64_t epoch = 0;
    ASSERT_EQ(RestoreFromCheckpoint(path, SchemeKind::kKmv, &restored,
                                    &epoch, mode),
              CheckpointFault::kNone);
    EXPECT_EQ(epoch, 500u);
    EXPECT_EQ(restored.SerializeToString(), original.SerializeToString());
  }
}

TEST(CheckpointFile, WriteAtomicallyReplacesThePreviousImage) {
  const std::string path = TempPath("replace");
  ASSERT_EQ(CheckpointWriter::Write(path, SchemeKind::kKmv, /*epoch=*/10,
                                    MakeSketch(4, 100).SerializeToString()),
            CheckpointFault::kNone);
  const std::string newer = MakeSketch(5, 400).SerializeToString();
  ASSERT_EQ(CheckpointWriter::Write(path, SchemeKind::kKmv, /*epoch=*/20,
                                    newer),
            CheckpointFault::kNone);

  CheckpointReader reader;
  ASSERT_EQ(CheckpointReader::OpenView(path, &reader),
            CheckpointFault::kNone);
  EXPECT_EQ(reader.epoch(), 20u);
  EXPECT_EQ(reader.payload(), newer);
}

TEST(CheckpointFile, WriterReclaimsATornTempFromACrashedPredecessor) {
  const std::string path = TempPath("torn_temp");
  // A previous writer died mid-write: torn bytes under the temp name.
  WriteRawFile(path + ".tmp", "torn garbage from a dead writer");
  const std::string payload = MakeSketch(6, 150).SerializeToString();
  ASSERT_EQ(CheckpointWriter::Write(path, SchemeKind::kKmv, /*epoch=*/7,
                                    payload),
            CheckpointFault::kNone);
  CheckpointReader reader;
  ASSERT_EQ(CheckpointReader::OpenView(path, &reader),
            CheckpointFault::kNone);
  EXPECT_EQ(reader.payload(), payload);
}

// ------------------------------------------------- fail-closed recovery

TEST(CheckpointRecovery, MissingFileIsIoErrorAndTargetUntouched) {
  const KmvSketch before = MakeSketch(7, 250);
  KmvSketch victim = before;
  uint64_t epoch = 99;
  for (const OpenMode mode : {OpenMode::kPreferMmap, OpenMode::kBuffered}) {
    EXPECT_EQ(RestoreFromCheckpoint(TempPath("does_not_exist"),
                                    SchemeKind::kKmv, &victim, &epoch, mode),
              CheckpointFault::kIoError);
    EXPECT_EQ(victim.SerializeToString(), before.SerializeToString());
    EXPECT_EQ(epoch, 99u);  // out-params untouched on failure
  }
}

TEST(CheckpointRecovery, EmptyFileIsTruncatedOnBothPaths) {
  const std::string path = TempPath("empty");
  WriteRawFile(path, "");
  CheckpointReader reader;
  EXPECT_EQ(CheckpointReader::OpenView(path, &reader),
            CheckpointFault::kTruncated);
  EXPECT_EQ(CheckpointReader::OpenBuffered(path, &reader),
            CheckpointFault::kTruncated);
}

TEST(CheckpointRecovery, WrongExpectedKindIsBadKind) {
  // The wrapper is intact and self-consistent but wraps a different
  // family than the caller expects: kBadKind, target untouched.
  const std::string path = TempPath("wrong_kind");
  ASSERT_EQ(CheckpointWriter::Write(path, SchemeKind::kBottomK, /*epoch=*/5,
                                    MakeSketch(8, 100).SerializeToString()),
            CheckpointFault::kNone);
  const KmvSketch before = MakeSketch(9, 50);
  KmvSketch victim = before;
  EXPECT_EQ(RestoreFromCheckpoint(path, SchemeKind::kKmv, &victim),
            CheckpointFault::kBadKind);
  EXPECT_EQ(victim.SerializeToString(), before.SerializeToString());
}

TEST(CheckpointRecovery, NewSchemeKindsRejectEveryCrossRestore) {
  // One intact checkpoint per PR-9 scheme kind; opening any of them
  // with any OTHER expected kind must be kBadKind -- the wrapper's
  // kind gate fires before a single payload byte is parsed.
  MultiStratifiedSampler mss(/*num_dimensions=*/2, /*k=*/4, /*seed=*/1);
  for (uint64_t i = 0; i < 24; ++i) mss.Add(i, {i % 3, i % 4}, 1.0 + i);
  VarianceSizedSampler vsz(/*delta_squared=*/0.5, /*seed=*/1);
  for (uint64_t i = 0; i < 24; ++i) vsz.Add(i, 1.0, 1.0 + 0.1 * i);
  MultiObjectiveSampler mob(/*num_objectives=*/2, /*k=*/4, /*seed=*/1);
  for (uint64_t i = 0; i < 24; ++i) mob.Add(i, {1.0, 2.0}, 1.0);
  BudgetSampler bgt(/*budget=*/8.0, /*seed=*/1);
  for (uint64_t i = 0; i < 24; ++i) bgt.Add(i, 1.0, 1.0, 1.0);

  struct Entry {
    SchemeKind kind;
    const char* name;
    std::string payload;
  };
  const std::vector<Entry> entries = {
      {SchemeKind::kMultiStratified, "mss", mss.SerializeToString()},
      {SchemeKind::kVarianceSized, "vsz", vsz.SerializeToString()},
      {SchemeKind::kMultiObjective, "mob", mob.SerializeToString()},
      {SchemeKind::kBudget, "bgt", bgt.SerializeToString()},
  };
  for (const Entry& written : entries) {
    const std::string path =
        TempPath((std::string("cross_") + written.name).c_str());
    ASSERT_EQ(CheckpointWriter::Write(path, written.kind, /*epoch=*/1,
                                      written.payload),
              CheckpointFault::kNone);
    for (const Entry& expected : entries) {
      if (expected.kind == written.kind) continue;
      CheckpointReader reader;
      ASSERT_EQ(CheckpointReader::OpenView(path, &reader),
                CheckpointFault::kNone);
      // Typed restore: expecting the wrong new kind trips the gate and
      // leaves the target byte-identical.
      VarianceSizedSampler victim(0.5, 2);
      victim.Add(7, 1.0, 1.0);
      const std::string before = victim.SerializeToString();
      EXPECT_EQ(RestoreFromCheckpoint(path, expected.kind, &victim),
                CheckpointFault::kBadKind)
          << written.name << " opened as " << expected.name;
      EXPECT_EQ(victim.SerializeToString(), before);
    }
  }
}

TEST(CheckpointRecovery, RightKindForeignPayloadIsBadPayload) {
  // The kind field claims kVarianceSized but the wrapped frame is an
  // MSS1 body: the wrapper validates, the family parser refuses the
  // foreign magic, and the restore fails closed as kBadPayload.
  MultiStratifiedSampler mss(2, 4, 1);
  for (uint64_t i = 0; i < 16; ++i) mss.Add(i, {i % 3, i % 4}, 1.0);
  const std::string path = TempPath("foreign_payload");
  ASSERT_EQ(CheckpointWriter::Write(path, SchemeKind::kVarianceSized,
                                    /*epoch=*/2, mss.SerializeToString()),
            CheckpointFault::kNone);
  VarianceSizedSampler victim(0.5, 3);
  victim.Add(9, 2.0, 1.5);
  const std::string before = victim.SerializeToString();
  EXPECT_EQ(
      RestoreFromCheckpoint(path, SchemeKind::kVarianceSized, &victim),
      CheckpointFault::kBadPayload);
  EXPECT_EQ(victim.SerializeToString(), before);
}

TEST(CheckpointRecovery, PoisonPayloadIsBadPayloadAndFailsClosed) {
  // A checkpoint whose CKP1 wrapper validates but whose wrapped sketch
  // frame is poison (the writer checksummed the damaged bytes, so only
  // the family parser can catch it): kBadPayload, target untouched.
  std::string payload = MakeSketch(10, 300).SerializeToString();
  payload[payload.size() / 2] ^= 0x20;
  const std::string path = TempPath("poison");
  ASSERT_EQ(CheckpointWriter::Write(path, SchemeKind::kKmv, /*epoch=*/3,
                                    payload),
            CheckpointFault::kNone);

  // The wrapper alone opens fine -- the damage is inside the frame.
  CheckpointReader reader;
  ASSERT_EQ(CheckpointReader::OpenView(path, &reader),
            CheckpointFault::kNone);
  EXPECT_FALSE(KmvSketch::Deserialize(reader.payload()).has_value());

  const KmvSketch before = MakeSketch(11, 40);
  for (const OpenMode mode : {OpenMode::kPreferMmap, OpenMode::kBuffered}) {
    KmvSketch victim = before;
    EXPECT_EQ(RestoreFromCheckpoint(path, SchemeKind::kKmv, &victim,
                                    nullptr, mode),
              CheckpointFault::kBadPayload);
    EXPECT_EQ(victim.SerializeToString(), before.SerializeToString());
  }
}

TEST(CheckpointRecovery, TrailingJunkIsCorruptBody) {
  const std::string bytes = EncodeCheckpoint(
      SchemeKind::kKmv, /*epoch=*/1, MakeSketch(12, 80).SerializeToString());
  const std::string path = TempPath("trailing");
  WriteRawFile(path, bytes + "x");
  CheckpointReader reader;
  EXPECT_EQ(CheckpointReader::OpenView(path, &reader),
            CheckpointFault::kCorruptBody);
  EXPECT_EQ(CheckpointReader::OpenBuffered(path, &reader),
            CheckpointFault::kCorruptBody);
}

}  // namespace
}  // namespace ats::persist
