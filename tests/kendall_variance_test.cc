// Tests for the Kendall-tau variance estimator (Section 2.6.2's
// correlated-pairs HT variance).
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ats/estimators/kendall_tau.h"
#include "ats/util/stats.h"
#include "ats/workload/synthetic.h"

namespace ats {
namespace {

std::vector<SampleEntry> DrawUniformSample(size_t n, double threshold,
                                           Xoshiro256& rng) {
  std::vector<SampleEntry> out;
  for (size_t i = 0; i < n; ++i) {
    const double r = rng.NextDoubleOpenZero();
    if (r < threshold) out.push_back(MakeUniformEntry(i, 0.0, r, threshold));
  }
  return out;
}

TEST(KendallTauVariance, ZeroWhenFullyIncluded) {
  const size_t n = 20;
  const auto pts = MakeCorrelatedGaussian(n, 0.4, 1);
  std::vector<PairedSampleEntry> sample(n);
  for (size_t i = 0; i < n; ++i) {
    sample[i] = {pts[i].x, pts[i].y, 1.0};
  }
  EXPECT_NEAR(KendallTauVarianceEstimate(sample, int64_t(n)), 0.0, 1e-12);
}

struct VarParam {
  double rho;
  double threshold;
};

class KendallVarianceSweep : public ::testing::TestWithParam<VarParam> {};

TEST_P(KendallVarianceSweep, MatchesEmpiricalVariance) {
  const auto [rho, threshold] = GetParam();
  const size_t n = 80;
  const auto pts = MakeCorrelatedGaussian(n, rho, 7);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = pts[i].x;
    y[i] = pts[i].y;
  }
  Xoshiro256 rng(8);
  RunningStat tau_est, var_est;
  const int trials = 1200;
  for (int t = 0; t < trials; ++t) {
    const auto entries = DrawUniformSample(n, threshold, rng);
    const auto paired = MakePairedSample(entries, x, y);
    tau_est.Add(KendallTauFromSample(paired, int64_t(n)));
    var_est.Add(KendallTauVarianceEstimate(paired, int64_t(n)));
  }
  // The mean variance estimate should match the empirical variance of
  // tau_hat within sampling noise (~15% at these trial counts).
  const double empirical = tau_est.SampleVariance();
  EXPECT_NEAR(var_est.mean(), empirical, 0.25 * empirical)
      << "rho=" << rho << " threshold=" << threshold;
}

INSTANTIATE_TEST_SUITE_P(Sweep, KendallVarianceSweep,
                         ::testing::Values(VarParam{0.0, 0.5},
                                           VarParam{0.5, 0.5},
                                           VarParam{0.8, 0.4}));

TEST(KendallTauVariance, ShrinksWithThreshold) {
  // Larger thresholds = bigger samples = smaller variance estimates.
  const size_t n = 60;
  const auto pts = MakeCorrelatedGaussian(n, 0.3, 11);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = pts[i].x;
    y[i] = pts[i].y;
  }
  Xoshiro256 rng(12);
  RunningStat small_t, large_t;
  for (int t = 0; t < 300; ++t) {
    small_t.Add(KendallTauVarianceEstimate(
        MakePairedSample(DrawUniformSample(n, 0.3, rng), x, y), int64_t(n)));
    large_t.Add(KendallTauVarianceEstimate(
        MakePairedSample(DrawUniformSample(n, 0.8, rng), x, y), int64_t(n)));
  }
  EXPECT_LT(large_t.mean(), small_t.mean());
}

}  // namespace
}  // namespace ats
