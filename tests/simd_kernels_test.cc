// Differential tests for the SIMD kernel tier (src/ats/core/simd/).
//
// Every kernel is pinned to the scalar reference at every dispatch level
// the host CPU supports: bit-exact for the mask and hash kernels, and
// bit-exact for log_span (all levels evaluate the FastLog operation
// sequence with plain IEEE arithmetic in fixed order). FastLog itself is
// pinned to libm within 2 ulp across normals, denormals, and the
// boundary values the samplers can feed it.
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ats/core/random.h"
#include "ats/core/simd/fast_log.h"
#include "ats/core/simd/kernels.h"
#include "ats/core/simd/simd_dispatch.h"
#include "ats/sketch/kmv.h"

namespace ats {
namespace {

using simd::ActiveKernels;
using simd::ActiveSimdLevel;
using simd::DetectedSimdLevel;
using simd::ScopedSimdLevel;
using simd::SetSimdLevel;
using simd::SimdLevel;
using simd::SimdLevelName;

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (DetectedSimdLevel() >= SimdLevel::kSse2)
    levels.push_back(SimdLevel::kSse2);
  if (DetectedSimdLevel() >= SimdLevel::kAvx2)
    levels.push_back(SimdLevel::kAvx2);
  return levels;
}

int64_t UlpDistance(double a, double b) {
  if (a == b) return 0;
  int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(a));
  std::memcpy(&ib, &b, sizeof(b));
  // Map the sign-magnitude bit pattern onto a monotone integer line.
  if (ia < 0) ia = std::numeric_limits<int64_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<int64_t>::min() - ib;
  const int64_t d = ia - ib;
  return d < 0 ? -d : d;
}

TEST(SimdDispatch, DetectionAndNames) {
  const SimdLevel best = DetectedSimdLevel();
  EXPECT_GE(best, SimdLevel::kScalar);
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSse2), "sse2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  // The active level never exceeds detection.
  EXPECT_LE(ActiveSimdLevel(), best);
}

TEST(SimdDispatch, SetLevelClampsAboveDetected) {
  const SimdLevel best = DetectedSimdLevel();
  const SimdLevel before = ActiveSimdLevel();
  // Forcing a supported level is honored.
  EXPECT_TRUE(SetSimdLevel(SimdLevel::kScalar));
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  // Forcing above detection clamps to the detected best and reports it.
  const bool honored = SetSimdLevel(SimdLevel::kAvx2);
  EXPECT_EQ(honored, best >= SimdLevel::kAvx2);
  EXPECT_EQ(ActiveSimdLevel(), best >= SimdLevel::kAvx2
                                   ? SimdLevel::kAvx2
                                   : best);
  SetSimdLevel(before);
}

TEST(SimdDispatch, ScopedOverrideRestores) {
  const SimdLevel before = ActiveSimdLevel();
  {
    ScopedSimdLevel scoped(SimdLevel::kScalar);
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  }
  EXPECT_EQ(ActiveSimdLevel(), before);
}

// --- prefilter_mask64 -------------------------------------------------

TEST(PrefilterMask, MatchesScalarAtEveryLevelUnaligned) {
  Xoshiro256 rng(0x5eedu);
  // Offset storage so the kernel sees deliberately unaligned pointers.
  std::vector<double> storage(64 + 9);
  for (size_t offset : {0u, 1u, 3u, 7u}) {
    double* p = storage.data() + offset;
    for (size_t i = 0; i < 64; ++i) p[i] = rng.NextDouble();
    // Seed hostile values: exact-equal-to-bound, NaN, +/-inf, denormal.
    p[0] = 0.5;
    p[7] = std::numeric_limits<double>::quiet_NaN();
    p[13] = std::numeric_limits<double>::infinity();
    p[21] = -std::numeric_limits<double>::infinity();
    p[33] = 4.9e-324;  // min denormal
    p[40] = 0.0;
    p[41] = -0.0;
    for (double bound : {0.5, 0.0, 1.0,
                         std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::quiet_NaN()}) {
      uint64_t expected = 0;
      for (size_t j = 0; j < 64; ++j) {
        expected |= static_cast<uint64_t>(p[j] < bound) << j;
      }
      for (SimdLevel level : AvailableLevels()) {
        ScopedSimdLevel scoped(level);
        EXPECT_EQ(ActiveKernels().prefilter_mask64(p, bound), expected)
            << "level=" << SimdLevelName(level) << " offset=" << offset
            << " bound=" << bound;
      }
    }
  }
}

// --- hash_priority_mask64 ---------------------------------------------

TEST(HashPriorityMask, BitExactAtEveryLevelUnaligned) {
  Xoshiro256 rng(0xfeedu);
  std::vector<uint64_t> key_storage(64 + 9);
  for (size_t offset : {0u, 1u, 5u}) {
    uint64_t* keys = key_storage.data() + offset;
    for (size_t i = 0; i < 64; ++i) keys[i] = rng.Next();
    keys[0] = 0;
    keys[1] = ~0ull;
    for (uint64_t salt : {0ull, 1ull, 0xdeadbeefull, ~0ull}) {
      for (double bound : {0.0, 0.25, 1.0,
                           std::numeric_limits<double>::infinity()}) {
        double expected_p[64];
        uint64_t expected_mask = 0;
        for (size_t j = 0; j < 64; ++j) {
          expected_p[j] = HashToUnit(HashKey(keys[j], salt));
          expected_mask |=
              static_cast<uint64_t>(expected_p[j] < bound) << j;
        }
        for (SimdLevel level : AvailableLevels()) {
          ScopedSimdLevel scoped(level);
          alignas(64) double got_p[64];
          const uint64_t got_mask = ActiveKernels().hash_priority_mask64(
              keys, salt, bound, got_p);
          EXPECT_EQ(got_mask, expected_mask)
              << "level=" << SimdLevelName(level) << " salt=" << salt;
          for (size_t j = 0; j < 64; ++j) {
            // Bit-exact: compare representations, not values.
            EXPECT_EQ(std::bit_cast<uint64_t>(got_p[j]),
                      std::bit_cast<uint64_t>(expected_p[j]))
                << "level=" << SimdLevelName(level) << " j=" << j;
          }
        }
      }
    }
  }
}

// --- log_span / FastLog -----------------------------------------------

std::vector<double> LogTestInputs() {
  std::vector<double> xs;
  // Boundary and hostile values.
  xs.insert(xs.end(),
            {1.0, 0x1.fffffffffffffp-1, 0x1.0000000000001p0, 2.0, 0.5,
             std::exp(1.0), 4.9e-324, 2.2250738585072014e-308,
             2.2250738585072009e-308,  // max denormal
             1e-300, 1e300, std::numeric_limits<double>::max(),
             std::numeric_limits<double>::infinity(), 0.70710678118,
             1.4142135623730951, 3.0, 10.0, 1e-10, 1e10});
  // Random spread over the uniform-(0,1] range the samplers draw from,
  // plus wide exponents.
  Xoshiro256 rng(0xab5eedu);
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.NextDoubleOpenZero());
  for (int i = 0; i < 5000; ++i) {
    const int exp2 = static_cast<int>(rng.Next() % 2100) - 1074;
    xs.push_back(std::ldexp(1.0 + rng.NextDouble(), exp2));
  }
  return xs;
}

TEST(FastLog, Within2UlpOfLibm) {
  for (double x : LogTestInputs()) {
    const double got = simd::FastLog(x);
    const double want = std::log(x);
    if (std::isinf(want)) {
      EXPECT_EQ(got, want) << "x=" << x;
    } else {
      EXPECT_LE(UlpDistance(got, want), 2) << "x=" << x;
    }
  }
  EXPECT_EQ(simd::FastLog(1.0), 0.0);
  EXPECT_FALSE(std::signbit(simd::FastLog(1.0)));
}

TEST(LogSpan, BitExactAcrossLevelsAllTailLengths) {
  const std::vector<double> inputs = LogTestInputs();
  // Every tail length 0..63 plus offsets to force unaligned loads.
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 31u, 63u, 64u,
                   100u, 257u}) {
    for (size_t offset : {0u, 1u, 3u}) {
      ASSERT_LE(offset + n, inputs.size());
      const double* x = inputs.data() + offset;
      std::vector<double> expected(n);
      for (size_t i = 0; i < n; ++i) expected[i] = simd::FastLog(x[i]);
      for (SimdLevel level : AvailableLevels()) {
        ScopedSimdLevel scoped(level);
        std::vector<double> got(n, -1.0);
        ActiveKernels().log_span(x, got.data(), n);
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(std::bit_cast<uint64_t>(got[i]),
                    std::bit_cast<uint64_t>(expected[i]))
              << "level=" << SimdLevelName(level) << " n=" << n
              << " i=" << i << " x=" << x[i];
        }
      }
    }
  }
}

TEST(LogSpan, InPlaceAllowed) {
  const std::vector<double> inputs = LogTestInputs();
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel scoped(level);
    std::vector<double> buf(inputs.begin(), inputs.begin() + 200);
    std::vector<double> expected(200);
    for (size_t i = 0; i < 200; ++i)
      expected[i] = simd::FastLog(buf[i]);
    ActiveKernels().log_span(buf.data(), buf.data(), buf.size());
    EXPECT_EQ(buf, expected) << "level=" << SimdLevelName(level);
  }
}

// --- End-to-end: vectorized ingest parity across dispatch levels ------

// The full keyed-ingest pipeline (HashedBatchOffer through
// VisitHashedCandidates) must produce an identical sampler state at
// every dispatch level, for every tail length 0..63 relative to the
// 64-wide block size.
TEST(DispatchParity, HashedIngestIdenticalAtEveryLevelAndTail) {
  std::vector<uint64_t> keys(3 * 64 + 63);
  Xoshiro256 rng(0x1234u);
  for (auto& k : keys) k = rng.Next();

  for (size_t tail = 0; tail < 64; tail += 7) {
    const size_t n = 2 * 64 + tail;
    std::string batched_reference;
    size_t accepted_reference = 0;
    for (SimdLevel level : AvailableLevels()) {
      ScopedSimdLevel scoped(level);
      KmvSketch batched(48, 1.0, /*hash_salt=*/7);
      const size_t accepted =
          batched.AddKeys(std::span(keys.data(), n));
      const std::string state = batched.SerializeToString();
      if (level == SimdLevel::kScalar) {
        batched_reference = state;
        accepted_reference = accepted;
        // The batched pipeline must also equal the one-at-a-time path.
        KmvSketch serial(48, 1.0, /*hash_salt=*/7);
        for (size_t i = 0; i < n; ++i) serial.AddKey(keys[i]);
        EXPECT_EQ(state, serial.SerializeToString()) << "n=" << n;
      } else {
        EXPECT_EQ(state, batched_reference)
            << "level=" << SimdLevelName(level) << " n=" << n;
        EXPECT_EQ(accepted, accepted_reference)
            << "level=" << SimdLevelName(level) << " n=" << n;
      }
    }
  }
}

}  // namespace
}  // namespace ats
